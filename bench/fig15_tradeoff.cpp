// Fig. 15: trade-off between accuracy (hit rate) and false alarm (extra
// count). Pooled training sample across benchmarks, pooled testing
// layouts, decision-threshold sweep.
//
// Reproducible shape: the extra count stays low and flat through the
// ~80-85% hit-rate band and grows steeply (roughly linearly) as the hit
// rate is pushed past ~90%.
#include <random>

#include "bench_common.hpp"

int main() {
  using namespace hsd;
  bench::printHeader("Fig. 15: accuracy vs false alarm trade-off");

  // Pool training clips from all benchmarks (random sample, as the paper
  // pools all MX benchmarks and samples 5%).
  auto suite = bench::smallSuite();
  std::vector<Clip> pooledTraining;
  std::vector<data::TestLayout> tests;
  std::mt19937_64 rng(5150);
  for (auto& spec : suite) {
    spec.sites = 40;
    spec.width = 44000;
    spec.height = 42000;
    const data::Benchmark b = data::generateBenchmark(spec);
    for (const Clip& c : b.training.clips)
      if (std::uniform_real_distribution<double>(0, 1)(rng) < 0.5)
        pooledTraining.push_back(c);
    tests.push_back(b.test);
  }

  const bench::Method ours = bench::makeOurs();
  const core::Detector det =
      core::trainDetector(pooledTraining, ours.train);
  std::printf("pooled training: %zu clips -> %zu kernels\n\n",
              pooledTraining.size(), det.kernels.size());

  std::printf("%8s %10s %10s %10s\n", "bias", "hit-rate", "#extra", "#hit");
  for (const double bias :
       {2.0, 1.5, 1.2, 1.0, 0.8, 0.6, 0.4, 0.2, 0.0, -0.2, -0.4, -0.7,
        -1.0}) {
    core::EvalParams ep = ours.eval;
    ep.decisionBias = bias;
    std::size_t hits = 0, actuals = 0, extras = 0;
    for (const data::TestLayout& t : tests) {
      const core::EvalResult res = core::evaluateLayout(det, t.layout, ep);
      const core::Score s = core::scoreReports(res.reported, t.actualHotspots);
      hits += s.hits;
      actuals += s.actualHotspots;
      extras += s.extras;
    }
    std::printf("%8.2f %9.1f%% %10zu %10zu\n", bias,
                actuals ? 100.0 * double(hits) / double(actuals) : 0.0,
                extras, hits);
  }
  return 0;
}
