#!/usr/bin/env bash
# Perf-trajectory driver: runs the JSON-emitting benches and leaves
# BENCH_table1.json / BENCH_serve.json / BENCH_wire.json /
# BENCH_tiling.json / BENCH_hotpath.json / BENCH_obs.json in the output
# directory, each validated as parseable JSON and stamped with
# `git describe`. (BENCH_wire.json is the over-the-wire POST /detect
# trajectory: throughput, client-measured latency percentiles, and the
# typed-429 rate at overload. BENCH_hotpath.json is the
# scalar-vs-dispatched speedup of the per-clip hot kernels: density
# raster, SMO kernel row, SVM decision. BENCH_obs.json is the
# observability-plane overhead: span/log/propagation ns-per-op off vs
# gated vs enabled, plus the fully-observed vs bare end-to-end
# evaluation pair.)
#
#   bench/run_benches.sh [build-dir] [out-dir]
#
# Defaults: build-dir=build, out-dir=<build-dir>/bench. Exits non-zero if
# either bench fails or emits unparseable JSON.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}/bench}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found (configure+build first)" >&2
  exit 1
fi
mkdir -p "${OUT_DIR}"

run_bench() {
  local exe="$1" out="$2"
  echo "== ${exe} -> ${out}"
  "${BUILD_DIR}/bench/${exe}" --json-out "${out}"
  validate_json "${out}"
}

validate_json() {
  local out="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "${out}" >/dev/null
    echo "   ${out}: valid JSON"
  else
    echo "   (python3 unavailable; skipped JSON validation)"
  fi
}

run_bench table1_benchmarks "${OUT_DIR}/BENCH_table1.json"
echo "== serve_throughput -> BENCH_serve.json + BENCH_wire.json"
"${BUILD_DIR}/bench/serve_throughput" \
  --json-out "${OUT_DIR}/BENCH_serve.json" \
  --wire-json-out "${OUT_DIR}/BENCH_wire.json"
validate_json "${OUT_DIR}/BENCH_serve.json"
validate_json "${OUT_DIR}/BENCH_wire.json"
run_bench tiling_scaling "${OUT_DIR}/BENCH_tiling.json"
run_bench micro_kernels "${OUT_DIR}/BENCH_hotpath.json"
run_bench obs_overhead "${OUT_DIR}/BENCH_obs.json"

echo "bench trajectory written to ${OUT_DIR}"
