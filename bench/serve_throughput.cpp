// Serving throughput: the async front end (src/serve) multiplexing
// concurrent evaluation requests over a RunContext pool with one shared
// StageCache. Two scenarios on one trained detector:
//
//   cold  — every request a distinct layout (no cross-request reuse);
//   warm  — every request the same layout (repeated IP block, the
//           cache's best case: all but the first request hit);
//   tiled — the warm scenario with tiled requests: each request fans its
//           tiles across the context pool (serve/server.hpp fan-out) and
//           must stay byte-identical to the untiled runs.
//
// Each scenario prints a SERVE_STATS JSON line (requests by outcome, wall
// seconds, throughput, shared-cache hit rate) for the perf tracker,
// mirroring the ENGINE_STATS lines of the table benches. With
// `--json-out BENCH_serve.json` the run also writes one machine-readable
// trajectory record (throughput, run-latency p50/p95/p99, cache hit
// rate, git describe) — the input of bench/run_benches.sh.
//
// Over-the-wire scenarios (POST /detect through net::HttpServer +
// serve::DetectionEndpoint, concurrent real-socket clients):
//
//   wire          — concurrent GDSII posts of the warm layout; end-to-end
//                   client-measured latency percentiles and throughput;
//   wire-overload — the same posts against a one-deep admission queue on
//                   a single slow worker: most requests must come back as
//                   typed 429s (the reported rate429), never hangs/resets.
//
// `--wire-json-out BENCH_wire.json` writes their trajectory record.
#include <algorithm>
#include <chrono>
#include <future>
#include <locale>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "gds/gdsii.hpp"
#include "net/http.hpp"
#include "obs/json.hpp"
#include "serve/detect_endpoint.hpp"
#include "serve/server.hpp"

namespace {

struct ScenarioResult {
  std::string name;
  std::size_t requests = 0;
  std::size_t ok = 0;
  double wallSeconds = 0.0;
  double throughputRps = 0.0;
  double p50RunSeconds = 0.0;
  double p95RunSeconds = 0.0;
  double p99RunSeconds = 0.0;
  double cacheHitRate = 0.0;
  std::string serverStatsJson;
};

ScenarioResult runScenario(const char* name,
                           hsd::serve::DetectionServer& server,
                           const hsd::core::Detector& det,
                           const std::vector<const hsd::Layout*>& layouts,
                           const hsd::core::EvalParams& ep) {
  using namespace hsd;
  ScenarioResult out;
  out.name = name;
  out.requests = layouts.size();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(layouts.size());
  for (const Layout* l : layouts) futs.push_back(server.submit(det, *l, ep));
  for (auto& f : futs) out.ok += f.get().ok() ? 1 : 0;
  out.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.throughputRps =
      out.wallSeconds > 0.0 ? double(layouts.size()) / out.wallSeconds : 0.0;
  const obs::Histogram& run = server.runLatency();
  out.p50RunSeconds = run.quantile(0.50);
  out.p95RunSeconds = run.quantile(0.95);
  out.p99RunSeconds = run.quantile(0.99);
  const serve::DetectionServer::Stats stats = server.stats();
  const std::size_t lookups = stats.cache.hits + stats.cache.misses;
  out.cacheHitRate =
      lookups == 0 ? 0.0 : double(stats.cache.hits) / double(lookups);
  out.serverStatsJson = server.statsJson();

  std::printf("  %-5s %zu requests, %zu ok, %.2fs wall, %.2f req/s\n", name,
              out.requests, out.ok, out.wallSeconds, out.throughputRps);
  std::printf("  %-5s run latency p50 %.1fms  p95 %.1fms  p99 %.1fms\n", name,
              out.p50RunSeconds * 1e3, out.p95RunSeconds * 1e3,
              out.p99RunSeconds * 1e3);
  // statsJson() carries the same percentiles under "latency" for the
  // perf tracker.
  std::printf("SERVE_STATS %s {\"requests\": %zu, \"wallSeconds\": %.6f, "
              "\"throughputRps\": %.3f, \"server\": %s}\n",
              name, out.requests, out.wallSeconds, out.throughputRps,
              out.serverStatsJson.c_str());
  return out;
}

std::string toJson(const std::vector<ScenarioResult>& scenarios) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed;
  os << "{\"bench\": \"serve_throughput\", \"git\": \""
     << hsd::obs::jsonEscape(hsd::bench::gitDescribe())
     << "\", \"scenarios\": [";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& s = scenarios[i];
    if (i != 0) os << ",";
    os << "\n{\"name\": \"" << hsd::obs::jsonEscape(s.name)
       << "\", \"requests\": " << s.requests << ", \"ok\": " << s.ok
       << ", \"wallSeconds\": " << s.wallSeconds
       << ", \"throughputRps\": " << s.throughputRps
       << ", \"runSeconds\": {\"p50\": " << s.p50RunSeconds
       << ", \"p95\": " << s.p95RunSeconds << ", \"p99\": " << s.p99RunSeconds
       << "}, \"cacheHitRate\": " << s.cacheHitRate
       << ", \"server\": " << s.serverStatsJson << "}";
  }
  os << "\n]}\n";
  return os.str();
}

// --- Over-the-wire scenarios ----------------------------------------

struct WireResult {
  std::string name;
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t tooBusy = 0;  ///< typed 429 responses (all carried Retry-After)
  std::size_t failed = 0;   ///< any other status or transport error
  double wallSeconds = 0.0;
  double throughputRps = 0.0;
  double rate429 = 0.0;
  double p50Seconds = 0.0;  ///< client-measured, connect to full response
  double p95Seconds = 0.0;
  double p99Seconds = 0.0;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = std::min(
      sorted.size() - 1, std::size_t(q * double(sorted.size())));
  return sorted[idx];
}

WireResult runWireScenario(const char* name, const hsd::core::Detector& det,
                           const std::string& gdsBody, std::size_t posters,
                           std::size_t perPoster,
                           const hsd::serve::ServerConfig& scfg,
                           std::size_t maxQueueDepth) {
  using namespace hsd;
  serve::DetectionServer server(scfg);
  serve::DetectEndpointConfig dcfg;
  dcfg.maxQueueDepth = maxQueueDepth;
  serve::DetectionEndpoint endpoint(server, det, dcfg);
  net::HttpServerOptions ho;
  ho.maxBodyBytes = 256 << 20;
  ho.handlerThreads = posters;
  net::HttpServer http(ho);
  endpoint.mount(http);
  http.start();

  WireResult out;
  out.name = name;
  out.requests = posters * perPoster;
  std::mutex mu;
  std::vector<double> latencies;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(posters);
  for (std::size_t p = 0; p < posters; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < perPoster; ++i) {
        const auto r0 = std::chrono::steady_clock::now();
        try {
          const net::HttpResult res = net::httpPost(
              "127.0.0.1", http.port(), "/detect", gdsBody,
              "application/octet-stream", {}, 120000);
          const double sec = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - r0)
                                 .count();
          std::lock_guard<std::mutex> lock(mu);
          if (res.status == 200) {
            out.ok++;
            latencies.push_back(sec);
          } else if (res.status == 429 &&
                     res.header("retry-after") != nullptr) {
            out.tooBusy++;
          } else {
            out.failed++;
          }
        } catch (const std::exception&) {
          std::lock_guard<std::mutex> lock(mu);
          out.failed++;
        }
      }
      (void)p;
    });
  }
  for (std::thread& t : threads) t.join();
  out.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.throughputRps =
      out.wallSeconds > 0.0 ? double(out.requests) / out.wallSeconds : 0.0;
  out.rate429 =
      out.requests == 0 ? 0.0 : double(out.tooBusy) / double(out.requests);
  out.p50Seconds = percentile(latencies, 0.50);
  out.p95Seconds = percentile(latencies, 0.95);
  out.p99Seconds = percentile(latencies, 0.99);

  http.stop();
  server.shutdown();

  std::printf("  %-13s %zu requests, %zu ok, %zu busy(429), %zu failed, "
              "%.2fs wall, %.2f req/s\n",
              name, out.requests, out.ok, out.tooBusy, out.failed,
              out.wallSeconds, out.throughputRps);
  std::printf("  %-13s wire latency p50 %.1fms  p95 %.1fms  p99 %.1fms  "
              "429 rate %.0f%%\n",
              name, out.p50Seconds * 1e3, out.p95Seconds * 1e3,
              out.p99Seconds * 1e3, out.rate429 * 100.0);
  return out;
}

std::string wireToJson(const std::vector<WireResult>& scenarios) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed;
  os << "{\"bench\": \"serve_throughput_wire\", \"git\": \""
     << hsd::obs::jsonEscape(hsd::bench::gitDescribe())
     << "\", \"scenarios\": [";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const WireResult& s = scenarios[i];
    if (i != 0) os << ",";
    os << "\n{\"name\": \"" << hsd::obs::jsonEscape(s.name)
       << "\", \"requests\": " << s.requests << ", \"ok\": " << s.ok
       << ", \"tooBusy\": " << s.tooBusy << ", \"failed\": " << s.failed
       << ", \"wallSeconds\": " << s.wallSeconds
       << ", \"throughputRps\": " << s.throughputRps
       << ", \"rate429\": " << s.rate429
       << ", \"wireSeconds\": {\"p50\": " << s.p50Seconds
       << ", \"p95\": " << s.p95Seconds << ", \"p99\": " << s.p99Seconds
       << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  bench::printHeader("Serving throughput (async front end, shared cache)");
  const char* jsonOut = bench::argString(argc, argv, "--json-out", nullptr);
  const char* wireJsonOut =
      bench::argString(argc, argv, "--wire-json-out", nullptr);

  const auto spec = bench::smallSuite()[0];
  const data::Benchmark b = data::generateBenchmark(spec);
  engine::RunContext trainCtx(bench::hwThreads());
  const core::Detector det =
      core::trainDetector(b.training.clips, bench::makeOurs().train, trainCtx);
  const core::EvalParams ep = bench::makeOurs().eval;

  // Distinct layouts for the cold scenario (different seeds), one layout
  // submitted repeatedly for the warm one.
  constexpr std::size_t kRequests = 8;
  std::vector<data::TestLayout> distinct;
  distinct.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    data::GeneratorParams gp;
    gp.seed = 1000 + i;
    distinct.push_back(data::generateTestLayout(gp, spec.width, spec.height,
                                                spec.sites, spec.riskyFrac));
  }

  serve::ServerConfig cfg;
  cfg.workers = 4;
  cfg.threadsPerContext = 2;

  std::vector<ScenarioResult> scenarios;
  {
    serve::DetectionServer server(cfg);
    std::vector<const Layout*> layouts;
    for (const auto& t : distinct) layouts.push_back(&t.layout);
    scenarios.push_back(runScenario("cold", server, det, layouts, ep));
  }
  {
    serve::DetectionServer server(cfg);
    const std::vector<const Layout*> layouts(kRequests, &b.test.layout);
    scenarios.push_back(runScenario("warm", server, det, layouts, ep));
  }
  {
    // Tiled requests over the same repeated layout: the per-request tile
    // fan-out borrows idle pooled contexts, and the shared cache serves
    // warm tiles whichever request computed them first.
    serve::ServerConfig tiledCfg = cfg;
    tiledCfg.contexts = cfg.workers + 2;  // idle contexts to borrow
    serve::DetectionServer server(tiledCfg);
    core::EvalParams tiledEp = ep;
    tiledEp.tiling.tileSize = spec.width / 4;
    tiledEp.tiling.tileThreads = 4;
    const std::vector<const Layout*> layouts(kRequests, &b.test.layout);
    scenarios.push_back(runScenario("tiled", server, det, layouts, tiledEp));
  }
  if (jsonOut != nullptr &&
      !bench::writeJsonFile(jsonOut, toJson(scenarios)))
    return 1;

  // Over-the-wire scenarios: the same warm layout POSTed as raw GDSII by
  // concurrent real-socket clients.
  std::ostringstream gdsStream;
  gds::writeGdsii(gdsStream, b.test.layout);
  const std::string gdsBody = gdsStream.str();
  std::vector<WireResult> wire;
  wire.push_back(
      runWireScenario("wire", det, gdsBody, /*posters=*/4, /*perPoster=*/4,
                      cfg, /*maxQueueDepth=*/64));
  {
    // Overload: one slow worker, a one-deep admission queue, and twice the
    // posters — most requests must come back as typed 429s.
    serve::ServerConfig slow;
    slow.workers = 1;
    slow.threadsPerContext = 1;
    wire.push_back(runWireScenario("wire-overload", det, gdsBody,
                                   /*posters=*/8, /*perPoster=*/2, slow,
                                   /*maxQueueDepth=*/1));
  }
  if (wireJsonOut != nullptr &&
      !bench::writeJsonFile(wireJsonOut, wireToJson(wire)))
    return 1;
  return 0;
}
