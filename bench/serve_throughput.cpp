// Serving throughput: the async front end (src/serve) multiplexing
// concurrent evaluation requests over a RunContext pool with one shared
// StageCache. Two scenarios on one trained detector:
//
//   cold  — every request a distinct layout (no cross-request reuse);
//   warm  — every request the same layout (repeated IP block, the
//           cache's best case: all but the first request hit).
//
// Each scenario prints a SERVE_STATS JSON line (requests by outcome, wall
// seconds, throughput, shared-cache hit rate) for the perf tracker,
// mirroring the ENGINE_STATS lines of the table benches.
#include <chrono>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"

namespace {

void runScenario(const char* name, hsd::serve::DetectionServer& server,
                 const hsd::core::Detector& det,
                 const std::vector<const hsd::Layout*>& layouts,
                 const hsd::core::EvalParams& ep) {
  using namespace hsd;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(layouts.size());
  for (const Layout* l : layouts) futs.push_back(server.submit(det, *l, ep));
  std::size_t ok = 0;
  for (auto& f : futs) ok += f.get().ok() ? 1 : 0;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("  %-5s %zu requests, %zu ok, %.2fs wall, %.2f req/s\n", name,
              layouts.size(), ok, wall,
              wall > 0.0 ? double(layouts.size()) / wall : 0.0);
  const hsd::obs::Histogram& run = server.runLatency();
  std::printf("  %-5s run latency p50 %.1fms  p95 %.1fms  p99 %.1fms\n", name,
              run.quantile(0.50) * 1e3, run.quantile(0.95) * 1e3,
              run.quantile(0.99) * 1e3);
  // statsJson() carries the same percentiles under "latency" for the
  // perf tracker.
  std::printf("SERVE_STATS %s {\"requests\": %zu, \"wallSeconds\": %.6f, "
              "\"throughputRps\": %.3f, \"server\": %s}\n",
              name, layouts.size(), wall,
              wall > 0.0 ? double(layouts.size()) / wall : 0.0,
              server.statsJson().c_str());
}

}  // namespace

int main() {
  using namespace hsd;
  bench::printHeader("Serving throughput (async front end, shared cache)");

  const auto spec = bench::smallSuite()[0];
  const data::Benchmark b = data::generateBenchmark(spec);
  engine::RunContext trainCtx(bench::hwThreads());
  const core::Detector det =
      core::trainDetector(b.training.clips, bench::makeOurs().train, trainCtx);
  const core::EvalParams ep = bench::makeOurs().eval;

  // Distinct layouts for the cold scenario (different seeds), one layout
  // submitted repeatedly for the warm one.
  constexpr std::size_t kRequests = 8;
  std::vector<data::TestLayout> distinct;
  distinct.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    data::GeneratorParams gp;
    gp.seed = 1000 + i;
    distinct.push_back(data::generateTestLayout(gp, spec.width, spec.height,
                                                spec.sites, spec.riskyFrac));
  }

  serve::ServerConfig cfg;
  cfg.workers = 4;
  cfg.threadsPerContext = 2;

  {
    serve::DetectionServer server(cfg);
    std::vector<const Layout*> layouts;
    for (const auto& t : distinct) layouts.push_back(&t.layout);
    runScenario("cold", server, det, layouts, ep);
  }
  {
    serve::DetectionServer server(cfg);
    const std::vector<const Layout*> layouts(kRequests, &b.test.layout);
    runScenario("warm", server, det, layouts, ep);
  }
  return 0;
}
