// Table II: overall comparison on every benchmark — the Basic single-
// kernel SVM comparator plus our framework at its operating points
// (ours, ours_med, ours_low) and without multithreading (ours_nopara).
//
// The contest winners' binaries cannot be re-run; Basic plays the role of
// the baseline competitor. The reproducible shape: Ours dominates Basic on
// accuracy; ours_med / ours_low trade hit rate for hit/extra ratio;
// ours_nopara matches ours' quality at higher runtime.
#include <chrono>

#include "bench_common.hpp"
#include "core/fuzzy_match.hpp"

namespace {

// The [14]-style fuzzy pattern-matching comparator: same extraction and
// removal stages, matcher instead of the SVM kernels.
hsd::bench::RunResult runFuzzy(const std::vector<hsd::Clip>& training,
                               const hsd::data::TestLayout& test) {
  using namespace hsd;
  bench::RunResult out;
  out.method = "FuzzyPM";
  const auto t0 = std::chrono::steady_clock::now();
  const core::FuzzyMatcher matcher =
      core::FuzzyMatcher::train(training, core::FuzzyMatchParams{});
  out.trainSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto t1 = std::chrono::steady_clock::now();
  const Layer* l = test.layout.findLayer(1);
  const GridIndex index(l->rects(), ClipParams{}.clipSide);
  core::ExtractParams xp;
  xp.threads = bench::hwThreads();
  std::vector<ClipWindow> flagged;
  for (const ClipWindow& w : core::extractCandidateClips(index, xp)) {
    const Clip clip = extractClip({{1, &index}}, w);
    if (matcher.evaluateClip(clip)) flagged.push_back(w);
  }
  const auto reported =
      core::removeRedundantClips(flagged, index, core::RemovalParams{});
  out.evalSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  out.score = core::scoreReports(reported, test.actualHotspots);
  return out;
}

}  // namespace

int main() {
  using namespace hsd;
  bench::printHeader(
      "Table II: comparison (Basic + fuzzy-matching baselines vs ours)");

  std::vector<bench::Method> methods;
  methods.push_back(bench::makeBasic());
  methods.push_back(bench::makeOurs());
  {
    bench::Method m = bench::makeOurs(0.35);
    m.name = "Ours_med";
    methods.push_back(m);
  }
  {
    bench::Method m = bench::makeOurs(0.8);
    m.name = "Ours_low";
    methods.push_back(m);
  }
  {
    bench::Method m = bench::makeOurs(0.0, 1);
    m.name = "Ours_nopara";
    methods.push_back(m);
  }

  for (const auto& spec : bench::smallSuite()) {
    const data::Benchmark b = data::generateBenchmark(spec);
    bench::printRow(b.name, runFuzzy(b.training.clips, b.test));
    for (const bench::Method& m : methods)
      bench::printRow(b.name, bench::runMethod(m, b.training.clips, b.test));
    std::printf("\n");
  }
  return 0;
}
