// Microbenchmarks (google-benchmark) of the framework's inner loops:
// string encoding, canonical keys, MTCG construction, feature extraction,
// density distance, SMO training, oracle simulation, clip extraction,
// tracing-span overhead (disabled vs enabled), and the PR-8 hot-kernel
// pairs (scalar oracle vs dispatched SIMD path).
//
// `--json-out BENCH_hotpath.json` switches to a hand-timed mode that
// measures each scalar/dispatched kernel pair and emits one
// machine-readable trajectory file (speedups stamped with git describe)
// — the artifact bench/run_benches.sh collects.
#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <random>
#include <span>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/classify.hpp"
#include "core/extract.hpp"
#include "core/features.hpp"
#include "core/mtcg.hpp"
#include "core/topo_string.hpp"
#include "data/generator.hpp"
#include "engine/stats.hpp"
#include "geom/density_grid.hpp"
#include "geom/simd.hpp"
#include "litho/litho.hpp"
#include "obs/trace.hpp"
#include "svm/kernel_ops.hpp"
#include "svm/svm.hpp"

namespace {

using namespace hsd;

core::CorePattern samplePattern(int rects) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<Coord> c(0, 1000);
  core::CorePattern p;
  p.w = p.h = 1200;
  for (int i = 0; i < rects; ++i) {
    const Coord x = c(rng), y = c(rng);
    p.rects.push_back({x, y, x + 80 + c(rng) % 150, y + 80 + c(rng) % 150});
  }
  return p;
}

void BM_EncodeStrings(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::encodeStrings(p));
}
BENCHMARK(BM_EncodeStrings)->Arg(4)->Arg(8)->Arg(16);

void BM_CanonicalTopoKey(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::canonicalTopoKey(p));
}
BENCHMARK(BM_CanonicalTopoKey)->Arg(4)->Arg(8);

void BM_BuildCh(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(core::buildCh(p));
}
BENCHMARK(BM_BuildCh)->Arg(4)->Arg(8)->Arg(16);

void BM_FeatureVector(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  const core::FeatureParams fp;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::buildFeatureVector(p, fp));
}
BENCHMARK(BM_FeatureVector)->Arg(4)->Arg(8)->Arg(16);

void BM_DensityDistance(benchmark::State& state) {
  const core::CorePattern a = samplePattern(6);
  const core::CorePattern b = samplePattern(9);
  const DensityGrid ga(a.rects, a.window(), 12, 12);
  const DensityGrid gb(b.rects, b.window(), 12, 12);
  for (auto _ : state) benchmark::DoNotOptimize(ga.distance(gb));
}
BENCHMARK(BM_DensityDistance);

void BM_SmoTrain(benchmark::State& state) {
  std::mt19937 rng(9);
  std::normal_distribution<double> n(0.0, 1.0);
  svm::Dataset d;
  const int half = int(state.range(0)) / 2;
  for (int i = 0; i < half; ++i) {
    d.add({n(rng) - 1.2, n(rng), n(rng)}, -1);
    d.add({n(rng) + 1.2, n(rng), n(rng)}, 1);
  }
  svm::SvmParams p;
  p.C = 10;
  p.gamma = 0.5;
  for (auto _ : state) benchmark::DoNotOptimize(svm::train(d, p));
}
BENCHMARK(BM_SmoTrain)->Arg(50)->Arg(200)->Arg(600);

void BM_LithoCheck(benchmark::State& state) {
  const litho::LithoSimulator sim;
  const ClipParams cp;
  const ClipWindow win = ClipWindow::atCore({1800, 1800}, cp);
  data::GeneratorParams gp;
  data::Rng rng(3);
  const auto rects =
      data::makeMotif(data::MotifKind::kDenseLines, data::Risk::kRisky,
                      data::AmbitStyle::kDense, gp.dims, gp.clip, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim.check(rects, win.core, win.clip));
}
BENCHMARK(BM_LithoCheck);

void BM_ClipExtraction(benchmark::State& state) {
  data::GeneratorParams gp;
  gp.seed = 21;
  const auto test =
      data::generateTestLayout(gp, state.range(0), state.range(0), 10, 0.5);
  const core::ExtractParams p;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::extractCandidateClips(test.layout, 1, p));
}
BENCHMARK(BM_ClipExtraction)->Arg(20000)->Arg(40000)->Unit(benchmark::kMillisecond);

// The disabled-span path is what every instrumentation site pays when no
// tracer is attached: it must stay at a branch or two, no clock read.
void BM_SpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span(nullptr, "bench/span", "bench");
    span.arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::TraceRecorder rec;
  for (auto _ : state) {
    obs::Span span(&rec, "bench/span", "bench");
    span.arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanEnabled);

// The stage loop as the pipeline drives it — EngineStats recording plus
// (Arg(1)) a span per batch. Arg(0) vs Arg(1) is the per-batch cost of
// attaching a TraceRecorder to a RunContext.
void BM_StageTimer(benchmark::State& state) {
  engine::EngineStats stats;
  obs::TraceRecorder rec;
  obs::TraceRecorder* const tracer = state.range(0) != 0 ? &rec : nullptr;
  for (auto _ : state) {
    engine::StageTimer t(stats, "bench/stage", 32, tracer);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_StageTimer)->Arg(0)->Arg(1);

void BM_Classify(benchmark::State& state) {
  std::vector<core::CorePattern> pats;
  std::mt19937 rng(4);
  for (int i = 0; i < state.range(0); ++i)
    pats.push_back(samplePattern(3 + i % 5));
  const core::ClassifyParams cp;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::classifyPatterns(pats, cp));
}
BENCHMARK(BM_Classify)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// PR-8 hot-kernel pairs: each dispatched kernel against the scalar path it
// replaced. The pairs also back the --json-out hand-timed mode below.

// Line-heavy clip: long wires spanning the window plus scattered
// contacts — the geometry mix real layout clips rasterize (samplePattern's
// small squares model only the contact part).
core::CorePattern linePattern(int lines, int contacts) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<Coord> c(0, 1000);
  core::CorePattern p;
  p.w = p.h = 1200;
  for (int i = 0; i < lines; ++i) {
    const Coord y = Coord(i) * Coord(1100 / std::max(1, lines));
    p.rects.push_back({20, y, 1180, y + 60});
  }
  for (int i = 0; i < contacts; ++i) {
    const Coord x = c(rng), y = c(rng);
    p.rects.push_back({x, y, x + 90, y + 90});
  }
  return p;
}

svm::Dataset kernelDataset(std::size_t n, std::size_t dim) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  svm::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    svm::FeatureVector v(dim);
    for (double& x : v) x = u(rng);
    d.add(std::move(v), i % 2 ? 1 : -1);
  }
  return d;
}

// The pre-PR QMatrix inner loop: one naive dot product per stored vector.
void naiveDotRow(const std::vector<svm::FeatureVector>& xs,
                 const svm::FeatureVector& x, double* out) {
  for (std::size_t j = 0; j < xs.size(); ++j) {
    double dot = 0;
    for (std::size_t k = 0; k < x.size(); ++k) dot += xs[j][k] * x[k];
    out[j] = dot;
  }
}

void BM_DensityRasterReference(benchmark::State& state) {
  const core::CorePattern p =
      linePattern(int(state.range(0)), int(state.range(0)) * 2);
  std::vector<double> vals(16 * 16);
  for (auto _ : state) {
    rasterizeDensityReference(p.rects, p.window(), 16, 16, vals.data());
    benchmark::DoNotOptimize(vals.data());
  }
}
BENCHMARK(BM_DensityRasterReference)->Arg(4)->Arg(12);

void BM_DensityRasterDispatched(benchmark::State& state) {
  const core::CorePattern p =
      linePattern(int(state.range(0)), int(state.range(0)) * 2);
  std::vector<double> vals(16 * 16);
  for (auto _ : state) {
    rasterizeDensity(p.rects, p.window(), 16, 16, vals.data());
    benchmark::DoNotOptimize(vals.data());
  }
}
BENCHMARK(BM_DensityRasterDispatched)->Arg(4)->Arg(12);

void BM_KernelRowNaive(benchmark::State& state) {
  const svm::Dataset d = kernelDataset(std::size_t(state.range(0)), 24);
  std::vector<double> out(d.size());
  for (auto _ : state) {
    naiveDotRow(d.x, d.x[0], out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KernelRowNaive)->Arg(600);

void BM_KernelRowPacked(benchmark::State& state) {
  const svm::Dataset d = kernelDataset(std::size_t(state.range(0)), 24);
  const svm::ops::PackedVectors packed(d.x);
  std::vector<double> out(d.size());
  for (auto _ : state) {
    svm::ops::dotProducts(packed, d.x[0].data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KernelRowPacked)->Arg(600);

void BM_DecisionNaive(benchmark::State& state) {
  const svm::Dataset d = kernelDataset(std::size_t(state.range(0)), 40);
  std::vector<double> coef(d.size(), 0.25);
  for (auto _ : state) {
    double s = 0;
    for (std::size_t i = 0; i < d.size(); ++i)
      s += coef[i] * svm::rbfKernel(d.x[i], d.x[0], 0.5);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_DecisionNaive)->Arg(150);

void BM_DecisionPacked(benchmark::State& state) {
  const svm::Dataset d = kernelDataset(std::size_t(state.range(0)), 40);
  const svm::SvmModel model(std::vector<svm::FeatureVector>(d.x),
                            std::vector<double>(d.size(), 0.25), 0.0, 0.5);
  for (auto _ : state)
    benchmark::DoNotOptimize(model.decisionFrom(
        std::span<const double>(d.x[0].data(), d.x[0].size())));
}
BENCHMARK(BM_DecisionPacked)->Arg(150);

// --------------------------------------------------------------------------
// Hand-timed --json-out mode: BENCH_hotpath.json for bench/run_benches.sh.

/// Best-of-`reps` wall time of `iters` calls to `fn`, in ns per call.
template <typename Fn>
double bestNsPerCall(Fn&& fn, int reps, int iters) {
  using clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = clock::now();
    const double ns =
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
        double(iters);
    best = std::min(best, ns);
  }
  return best;
}

struct KernelTiming {
  const char* name;
  double scalarNs;
  double dispatchedNs;
  double speedup() const {
    return dispatchedNs > 0 ? scalarNs / dispatchedNs : 0.0;
  }
};

int runJsonMode(const char* path) {
  std::vector<KernelTiming> timings;
  constexpr int kReps = 15;

  {
    // Density rasterizer: the paper's density feature on a realistic clip
    // (12 window-spanning lines + 24 contacts, 16x16 grid — the shape
    // core::buildFeatureVector drives).
    const core::CorePattern p = linePattern(12, 24);
    std::vector<double> vals(16 * 16);
    const double ref = bestNsPerCall(
        [&] {
          rasterizeDensityReference(p.rects, p.window(), 16, 16, vals.data());
          benchmark::DoNotOptimize(vals.data());
        },
        kReps, 2000);
    const double opt = bestNsPerCall(
        [&] {
          rasterizeDensity(p.rects, p.window(), 16, 16, vals.data());
          benchmark::DoNotOptimize(vals.data());
        },
        kReps, 2000);
    timings.push_back({"density_raster", ref, opt});
  }
  {
    // Kernel row: one QMatrix row against 600 stored vectors (dim 24) —
    // the SMO inner loop, naive per-vector dots vs the packed kernel.
    const svm::Dataset d = kernelDataset(600, 24);
    const svm::ops::PackedVectors packed(d.x);
    std::vector<double> out(d.size());
    const double ref = bestNsPerCall(
        [&] {
          naiveDotRow(d.x, d.x[0], out.data());
          benchmark::DoNotOptimize(out.data());
        },
        kReps, 2000);
    const double opt = bestNsPerCall(
        [&] {
          svm::ops::dotProducts(packed, d.x[0].data(), out.data());
          benchmark::DoNotOptimize(out.data());
        },
        kReps, 2000);
    timings.push_back({"kernel_row", ref, opt});
  }
  {
    // Decision function: 150 SVs, dim 40 — serving's per-clip dot.
    const svm::Dataset d = kernelDataset(150, 40);
    const std::vector<double> coef(d.size(), 0.25);
    const svm::SvmModel model(std::vector<svm::FeatureVector>(d.x),
                              std::vector<double>(coef), 0.0, 0.5);
    const std::span<const double> x(d.x[0].data(), d.x[0].size());
    const double ref = bestNsPerCall(
        [&] {
          double s = 0;
          for (std::size_t i = 0; i < d.size(); ++i)
            s += coef[i] * svm::rbfKernel(d.x[i], d.x[0], 0.5);
          benchmark::DoNotOptimize(s);
        },
        kReps, 2000);
    const double opt = bestNsPerCall(
        [&] { benchmark::DoNotOptimize(model.decisionFrom(x)); }, kReps, 2000);
    timings.push_back({"svm_decision", ref, opt});
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"hotpath\",\n  \"git\": \""
       << bench::gitDescribe() << "\",\n  \"simd\": \""
       << simd::toString(simd::activeLevel()) << "\",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const KernelTiming& t = timings[i];
    json << "    {\"name\": \"" << t.name << "\", \"scalar_ns\": "
         << t.scalarNs << ", \"dispatched_ns\": " << t.dispatchedNs
         << ", \"speedup\": " << t.speedup() << "}"
         << (i + 1 < timings.size() ? "," : "") << "\n";
    std::printf("%-16s scalar %9.1f ns  dispatched %9.1f ns  speedup %.2fx\n",
                t.name, t.scalarNs, t.dispatchedNs, t.speedup());
  }
  json << "  ]\n}\n";
  return bench::writeJsonFile(path, json.str()) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* out =
          hsd::bench::argString(argc, argv, "--json-out", nullptr))
    return runJsonMode(out);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
