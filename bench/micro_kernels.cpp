// Microbenchmarks (google-benchmark) of the framework's inner loops:
// string encoding, canonical keys, MTCG construction, feature extraction,
// density distance, SMO training, oracle simulation, clip extraction,
// tracing-span overhead (disabled vs enabled).
#include <benchmark/benchmark.h>

#include <random>

#include "core/classify.hpp"
#include "core/extract.hpp"
#include "core/features.hpp"
#include "core/mtcg.hpp"
#include "core/topo_string.hpp"
#include "data/generator.hpp"
#include "engine/stats.hpp"
#include "geom/density_grid.hpp"
#include "litho/litho.hpp"
#include "obs/trace.hpp"
#include "svm/svm.hpp"

namespace {

using namespace hsd;

core::CorePattern samplePattern(int rects) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<Coord> c(0, 1000);
  core::CorePattern p;
  p.w = p.h = 1200;
  for (int i = 0; i < rects; ++i) {
    const Coord x = c(rng), y = c(rng);
    p.rects.push_back({x, y, x + 80 + c(rng) % 150, y + 80 + c(rng) % 150});
  }
  return p;
}

void BM_EncodeStrings(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::encodeStrings(p));
}
BENCHMARK(BM_EncodeStrings)->Arg(4)->Arg(8)->Arg(16);

void BM_CanonicalTopoKey(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::canonicalTopoKey(p));
}
BENCHMARK(BM_CanonicalTopoKey)->Arg(4)->Arg(8);

void BM_BuildCh(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(core::buildCh(p));
}
BENCHMARK(BM_BuildCh)->Arg(4)->Arg(8)->Arg(16);

void BM_FeatureVector(benchmark::State& state) {
  const core::CorePattern p = samplePattern(int(state.range(0)));
  const core::FeatureParams fp;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::buildFeatureVector(p, fp));
}
BENCHMARK(BM_FeatureVector)->Arg(4)->Arg(8)->Arg(16);

void BM_DensityDistance(benchmark::State& state) {
  const core::CorePattern a = samplePattern(6);
  const core::CorePattern b = samplePattern(9);
  const DensityGrid ga(a.rects, a.window(), 12, 12);
  const DensityGrid gb(b.rects, b.window(), 12, 12);
  for (auto _ : state) benchmark::DoNotOptimize(ga.distance(gb));
}
BENCHMARK(BM_DensityDistance);

void BM_SmoTrain(benchmark::State& state) {
  std::mt19937 rng(9);
  std::normal_distribution<double> n(0.0, 1.0);
  svm::Dataset d;
  const int half = int(state.range(0)) / 2;
  for (int i = 0; i < half; ++i) {
    d.add({n(rng) - 1.2, n(rng), n(rng)}, -1);
    d.add({n(rng) + 1.2, n(rng), n(rng)}, 1);
  }
  svm::SvmParams p;
  p.C = 10;
  p.gamma = 0.5;
  for (auto _ : state) benchmark::DoNotOptimize(svm::train(d, p));
}
BENCHMARK(BM_SmoTrain)->Arg(50)->Arg(200)->Arg(600);

void BM_LithoCheck(benchmark::State& state) {
  const litho::LithoSimulator sim;
  const ClipParams cp;
  const ClipWindow win = ClipWindow::atCore({1800, 1800}, cp);
  data::GeneratorParams gp;
  data::Rng rng(3);
  const auto rects =
      data::makeMotif(data::MotifKind::kDenseLines, data::Risk::kRisky,
                      data::AmbitStyle::kDense, gp.dims, gp.clip, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim.check(rects, win.core, win.clip));
}
BENCHMARK(BM_LithoCheck);

void BM_ClipExtraction(benchmark::State& state) {
  data::GeneratorParams gp;
  gp.seed = 21;
  const auto test =
      data::generateTestLayout(gp, state.range(0), state.range(0), 10, 0.5);
  const core::ExtractParams p;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::extractCandidateClips(test.layout, 1, p));
}
BENCHMARK(BM_ClipExtraction)->Arg(20000)->Arg(40000)->Unit(benchmark::kMillisecond);

// The disabled-span path is what every instrumentation site pays when no
// tracer is attached: it must stay at a branch or two, no clock read.
void BM_SpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span(nullptr, "bench/span", "bench");
    span.arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::TraceRecorder rec;
  for (auto _ : state) {
    obs::Span span(&rec, "bench/span", "bench");
    span.arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanEnabled);

// The stage loop as the pipeline drives it — EngineStats recording plus
// (Arg(1)) a span per batch. Arg(0) vs Arg(1) is the per-batch cost of
// attaching a TraceRecorder to a RunContext.
void BM_StageTimer(benchmark::State& state) {
  engine::EngineStats stats;
  obs::TraceRecorder rec;
  obs::TraceRecorder* const tracer = state.range(0) != 0 ? &rec : nullptr;
  for (auto _ : state) {
    engine::StageTimer t(stats, "bench/stage", 32, tracer);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_StageTimer)->Arg(0)->Arg(1);

void BM_Classify(benchmark::State& state) {
  std::vector<core::CorePattern> pats;
  std::mt19937 rng(4);
  for (int i = 0; i < state.range(0); ++i)
    pats.push_back(samplePattern(3 + i % 5));
  const core::ClassifyParams cp;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::classifyPatterns(pats, cp));
}
BENCHMARK(BM_Classify)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
