// Tiled-evaluation scaling: the spatial tiling layer (engine/tiler.hpp +
// core::evaluateLayout's tiled mode) against the monolithic path, on one
// trained detector and one generated layout.
//
// Three measurements, all stamped into BENCH_tiling.json via
// `--json-out` (wired into bench/run_benches.sh):
//
//   baselines — monolithic evaluation at threads=1 and threads=8
//               (p50/p95/p99 over iterations);
//   grid      — tileSize x threads matrix: per-config latency
//               percentiles, tile counts, speedup vs both baselines, and
//               the non-negotiable `identical` bit (tiled report ==
//               monolithic report, window for window);
//   cache     — a cold+warm tiled pair over one shared StageCache: the
//               warm run's hit rate (tiled runs share the monolithic
//               cache keys, so warm should be ~1.0).
//
// Speedups are honest wall-clock ratios on THIS machine; `hwThreads`
// is recorded so single-core CI numbers are not mistaken for the
// multi-core scaling the tiling layer exists to provide.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <locale>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/cache.hpp"
#include "engine/run_context.hpp"
#include "engine/tiler.hpp"
#include "obs/json.hpp"

namespace {

using namespace hsd;

struct Timing {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * double(xs.size() - 1);
  const std::size_t i = std::size_t(pos);
  if (i + 1 >= xs.size()) return xs.back();
  const double frac = pos - double(i);
  return xs[i] * (1.0 - frac) + xs[i + 1] * frac;
}

struct Measured {
  Timing timing;
  core::EvalResult result;  ///< last iteration's result (identity checks)
};

Measured measure(const core::Detector& det, const Layout& layout,
                 const core::EvalParams& ep, std::size_t threads,
                 std::size_t iters) {
  Measured out;
  std::vector<double> secs;
  secs.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    engine::RunContext ctx(threads);
    const auto t0 = std::chrono::steady_clock::now();
    out.result = core::evaluateLayout(det, layout, ep, ctx);
    secs.push_back(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  out.timing = {quantile(secs, 0.50), quantile(secs, 0.95),
                quantile(secs, 0.99)};
  return out;
}

bool sameReport(const core::EvalResult& a, const core::EvalResult& b) {
  return a.reported == b.reported && a.candidateClips == b.candidateClips &&
         a.flaggedBeforeRemoval == b.flaggedBeforeRemoval;
}

struct GridPoint {
  Coord tileSize = 0;
  std::size_t tiles = 0;       ///< plan tile count
  std::size_t activeTiles = 0; ///< tiles owning at least one anchor
  std::size_t threads = 0;
  Timing timing;
  bool identical = false;
  double speedupVsMono1 = 0.0;
  double speedupVsMono8 = 0.0;
};

void jsonTiming(std::ostringstream& os, const Timing& t) {
  os << "{\"p50\": " << t.p50 << ", \"p95\": " << t.p95
     << ", \"p99\": " << t.p99 << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bench::printHeader("Tiled evaluation scaling (tiles x threads)");
  const char* jsonOut = bench::argString(argc, argv, "--json-out", nullptr);
  constexpr std::size_t kIters = 3;

  const auto spec = bench::smallSuite()[0];
  const data::Benchmark b = data::generateBenchmark(spec);
  engine::RunContext trainCtx(bench::hwThreads());
  const core::Detector det =
      core::trainDetector(b.training.clips, bench::makeOurs().train, trainCtx);
  const core::EvalParams baseEp = bench::makeOurs(0.0, 1).eval;

  std::printf("  layout %lldx%lld dbu, hwThreads=%zu, iters=%zu\n",
              static_cast<long long>(spec.width),
              static_cast<long long>(spec.height), bench::hwThreads(), kIters);

  const Measured mono1 = measure(det, b.test.layout, baseEp, 1, kIters);
  const Measured mono8 = measure(det, b.test.layout, baseEp, 8, kIters);
  std::printf("  mono  threads=1 p50 %.3fs   threads=8 p50 %.3fs\n",
              mono1.timing.p50, mono8.timing.p50);

  std::vector<GridPoint> grid;
  for (const Coord tileSize : {spec.width / 4, spec.width / 2}) {
    core::EvalParams ep = baseEp;
    ep.tiling.tileSize = tileSize;
    const core::TiledLayout plan =
        core::prepareTiledLayout(b.test.layout, det.params.layer, ep);
    for (const std::size_t threads : {std::size_t(1), std::size_t(2),
                                      std::size_t(8)}) {
      GridPoint gp;
      gp.tileSize = tileSize;
      gp.tiles = plan.plan.tileCount();
      gp.activeTiles = plan.work.size();
      gp.threads = threads;
      const Measured m = measure(det, b.test.layout, ep, threads, kIters);
      gp.timing = m.timing;
      gp.identical = sameReport(m.result, mono1.result);
      gp.speedupVsMono1 =
          m.timing.p50 > 0.0 ? mono1.timing.p50 / m.timing.p50 : 0.0;
      gp.speedupVsMono8 =
          m.timing.p50 > 0.0 ? mono8.timing.p50 / m.timing.p50 : 0.0;
      std::printf("  tile %6lld (%2zu tiles, %2zu active) threads=%zu  "
                  "p50 %.3fs  x%.2f vs mono1  identical=%s\n",
                  static_cast<long long>(tileSize), gp.tiles, gp.activeTiles,
                  threads, gp.timing.p50, gp.speedupVsMono1,
                  gp.identical ? "true" : "false");
      grid.push_back(gp);
    }
  }

  // Cache probe: cold tiled run populates, warm tiled run should be
  // (nearly) all hits — tiled and monolithic runs share cache keys.
  core::EvalParams cachedEp = baseEp;
  cachedEp.tiling.tileSize = spec.width / 4;
  auto cache = std::make_shared<engine::StageCache>();
  double coldHitRate = 0.0;
  double warmHitRate = 0.0;
  bool warmIdentical = false;
  {
    engine::RunContext ctx(2);
    ctx.attachCache(cache);
    core::evaluateLayout(det, b.test.layout, cachedEp, ctx);
    const engine::CacheStats c = ctx.stats().cacheRollup("eval/verdict");
    const std::size_t lookups = c.hits + c.misses;
    coldHitRate = lookups ? double(c.hits) / double(lookups) : 0.0;
  }
  {
    engine::RunContext ctx(2);
    ctx.attachCache(cache);
    const core::EvalResult warm =
        core::evaluateLayout(det, b.test.layout, cachedEp, ctx);
    const engine::CacheStats c = ctx.stats().cacheRollup("eval/verdict");
    const std::size_t lookups = c.hits + c.misses;
    warmHitRate = lookups ? double(c.hits) / double(lookups) : 0.0;
    warmIdentical = sameReport(warm, mono1.result);
  }
  std::printf("  cache cold hit rate %.2f, warm hit rate %.2f, "
              "warm identical=%s\n",
              coldHitRate, warmHitRate, warmIdentical ? "true" : "false");

  bool allIdentical = warmIdentical;
  for (const GridPoint& gp : grid) allIdentical = allIdentical && gp.identical;
  std::printf("TILING_IDENTICAL %s\n", allIdentical ? "true" : "false");

  if (jsonOut != nullptr) {
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"tiling_scaling\", \"git\": \""
       << obs::jsonEscape(bench::gitDescribe())
       << "\", \"hwThreads\": " << bench::hwThreads()
       << ", \"iters\": " << kIters << ", \"layout\": {\"width\": "
       << spec.width << ", \"height\": " << spec.height
       << "}, \"baselines\": {\"mono1\": ";
    jsonTiming(os, mono1.timing);
    os << ", \"mono8\": ";
    jsonTiming(os, mono8.timing);
    os << "}, \"grid\": [";
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const GridPoint& gp = grid[i];
      if (i != 0) os << ",";
      os << "\n{\"tileSize\": " << gp.tileSize << ", \"tiles\": " << gp.tiles
         << ", \"activeTiles\": " << gp.activeTiles
         << ", \"threads\": " << gp.threads << ", \"runSeconds\": ";
      jsonTiming(os, gp.timing);
      os << ", \"identical\": " << (gp.identical ? "true" : "false")
         << ", \"speedupVsMono1\": " << gp.speedupVsMono1
         << ", \"speedupVsMono8\": " << gp.speedupVsMono8 << "}";
    }
    os << "\n], \"cache\": {\"coldHitRate\": " << coldHitRate
       << ", \"warmHitRate\": " << warmHitRate << ", \"warmIdentical\": "
       << (warmIdentical ? "true" : "false")
       << "}, \"allIdentical\": " << (allIdentical ? "true" : "false")
       << "}\n";
    if (!bench::writeJsonFile(jsonOut, os.str())) return 1;
  }
  return allIdentical ? 0 : 1;
}
