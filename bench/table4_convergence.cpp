// Table IV: accuracy vs training-data amount — rapid training convergence.
// Each benchmark is trained on nested random subsets of its training set
// (plus one cross-benchmark row, as in the paper where benchmark2 was
// trained on other benchmarks' data).
//
// Reproducible shape: accuracy saturates at a small fraction of the data;
// runtime drops with the subset size.
#include <random>

#include "bench_common.hpp"

namespace {

using namespace hsd;

// A label-stratified random subset keeping `frac` of each class (always at
// least 3 hotspots / 10 non-hotspots so training stays well-posed).
std::vector<Clip> subset(const std::vector<Clip>& clips, double frac,
                         std::uint64_t seed) {
  std::vector<const Clip*> hs, nhs;
  for (const Clip& c : clips)
    (c.label() == Label::kHotspot ? hs : nhs).push_back(&c);
  std::mt19937_64 rng(seed);
  std::shuffle(hs.begin(), hs.end(), rng);
  std::shuffle(nhs.begin(), nhs.end(), rng);
  const std::size_t nh =
      std::max<std::size_t>(3, std::size_t(double(hs.size()) * frac));
  const std::size_t nn =
      std::max<std::size_t>(10, std::size_t(double(nhs.size()) * frac));
  std::vector<Clip> out;
  for (std::size_t i = 0; i < std::min(nh, hs.size()); ++i)
    out.push_back(*hs[i]);
  for (std::size_t i = 0; i < std::min(nn, nhs.size()); ++i)
    out.push_back(*nhs[i]);
  return out;
}

}  // namespace

int main() {
  bench::printHeader("Table IV: accuracy vs training data fraction");

  const auto suite = bench::smallSuite();
  for (const auto& spec : suite) {
    const data::Benchmark b = data::generateBenchmark(spec);
    for (const double frac : {0.10, 0.25, 0.50, 1.00}) {
      const std::vector<Clip> sub = subset(b.training.clips, frac, 11);
      const bench::RunResult r =
          bench::runMethod(bench::makeOurs(), sub, b.test);
      std::printf("%-12s data %5.1f%% (%3zu clips)  #hit %3zu/%-3zu  "
                  "#extra %5zu  accuracy %6.2f%%  runtime %5.1fs\n",
                  b.name.c_str(), 100 * frac, sub.size(), r.score.hits,
                  r.score.actualHotspots, r.score.extras,
                  100.0 * r.score.accuracy(), r.runtimeSec());
    }
    std::printf("\n");
  }

  // Cross-benchmark row: test benchmark2's layout with benchmark3's
  // training data (the paper's Array_benchmark2 row used other
  // benchmarks' clips at a 0.6% fraction).
  const data::Benchmark b2 = data::generateBenchmark(suite[1]);
  const data::Benchmark b3 = data::generateBenchmark(suite[2]);
  for (const double frac : {0.25, 1.00}) {
    const std::vector<Clip> sub = subset(b3.training.clips, frac, 23);
    const bench::RunResult r =
        bench::runMethod(bench::makeOurs(), sub, b2.test);
    std::printf("%-12s cross-trained on benchmark3 %5.1f%% (%3zu clips)  "
                "#hit %3zu/%-3zu  #extra %5zu  accuracy %6.2f%%\n",
                b2.name.c_str(), 100 * frac, sub.size(), r.score.hits,
                r.score.actualHotspots, r.score.extras,
                100.0 * r.score.accuracy());
  }
  return 0;
}
