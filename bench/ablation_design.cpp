// Design-choice ablations beyond Table III (the knobs DESIGN.md calls
// out): string-only vs two-level classification, data shifting on/off,
// centroid recomputation, feedback on/off, canonical-orientation
// alignment, and the R0 / K clustering parameters.
#include "bench_common.hpp"

int main() {
  using namespace hsd;
  bench::printHeader("Design ablations (benchmark3-like workload)");

  auto spec = bench::smallSuite()[2];
  const data::Benchmark b = data::generateBenchmark(spec);

  struct Variant {
    std::string name;
    bench::Method method;
  };
  std::vector<Variant> variants;

  variants.push_back({"ours (default)", bench::makeOurs()});
  {
    bench::Method m = bench::makeOurs();
    m.train.classify.useDensity = false;
    variants.push_back({"string-level only", m});
  }
  {
    bench::Method m = bench::makeOurs();
    m.train.enableShift = false;
    variants.push_back({"no data shifting", m});
  }
  {
    bench::Method m = bench::makeOurs();
    m.train.balancePopulation = false;
    variants.push_back({"no nhs downsampling", m});
  }
  {
    bench::Method m = bench::makeOurs();
    m.train.classify.recomputeCentroid = false;
    variants.push_back({"static centroids", m});
  }
  {
    bench::Method m = bench::makeOurs();
    m.train.enableFeedback = false;
    m.eval.useFeedback = false;
    variants.push_back({"no feedback kernel", m});
  }
  {
    bench::Method m = bench::makeOurs();
    m.train.features.canonicalize = false;
    variants.push_back({"no canonical orient", m});
  }
  for (const double r0 : {4.0, 24.0}) {
    bench::Method m = bench::makeOurs();
    m.train.classify.radiusR0 = r0;
    variants.push_back({"R0=" + std::to_string(int(r0)), m});
  }
  for (const std::size_t k : {std::size_t(3), std::size_t(30)}) {
    bench::Method m = bench::makeOurs();
    m.train.classify.expectedClusters = k;
    variants.push_back({"K=" + std::to_string(k), m});
  }

  for (const Variant& v : variants) {
    const bench::RunResult r =
        bench::runMethod(v.method, b.training.clips, b.test);
    std::printf("%-22s #hit %3zu/%-3zu  #extra %5zu  accuracy %6.2f%%  "
                "runtime %5.1fs\n",
                v.name.c_str(), r.score.hits, r.score.actualHotspots,
                r.score.extras, 100.0 * r.score.accuracy(), r.runtimeSec());
  }
  return 0;
}
