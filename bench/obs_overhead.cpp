// Observability-overhead trajectory: what a span, a log record, and the
// trace-propagation machinery cost — off, gated, enabled, and enabled
// with an ambient trace id — plus an end-to-end evaluation pair (fully
// observed vs bare) on a small generated layout. Emits BENCH_obs.json
// for bench/run_benches.sh:
//
//   obs_overhead --json-out BENCH_obs.json
//
// The micro rows are ns/op best-of-N (same methodology as the hotpath
// bench); the end-to-end rows are evaluation seconds and the relative
// overhead fraction. These numbers back the "near-zero when off,
// allocation-free when on" contract pinned functionally by
// tests/test_obs_plane.cpp.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "data/generator.hpp"
#include "engine/run_context.hpp"
#include "obs/log.hpp"
#include "obs/model_stats.hpp"
#include "obs/trace.hpp"
#include "obs/trace_id.hpp"

namespace {

using namespace hsd;

/// Keep `value` alive without a memory barrier heavy enough to skew
/// sub-10ns measurements.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Best-of-`reps` wall time of `iters` calls to `fn`, ns per call.
template <typename Fn>
double bestNsPerCall(Fn&& fn, int reps, int iters) {
  using clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = clock::now();
    const double ns =
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
        double(iters);
    best = std::min(best, ns);
  }
  return best;
}

struct MicroRow {
  const char* name;
  double nsPerOp;
};

std::vector<MicroRow> microRows() {
  std::vector<MicroRow> rows;
  constexpr int kReps = 15;
  constexpr int kIters = 20000;
  const auto t = std::chrono::steady_clock::now();

  // Spans: recorder off (the production default), on, on + ambient trace.
  {
    obs::TraceRecorder* off = nullptr;
    rows.push_back({"span_off", bestNsPerCall(
        [&] {
          obs::Span s(off, "bench/span", "bench");
          s.arg("i", 1);
          keep(s);
        },
        kReps, kIters)});
  }
  {
    obs::TraceRecorder rec;
    rec.recordSpan("warmup", "bench", t, t);
    rows.push_back({"span_on", bestNsPerCall(
        [&] { rec.recordSpan("bench/span", "bench", t, t, {"i", 1}); },
        kReps, kIters)});
    const obs::ScopedTraceId scope(obs::makeTraceId());
    rows.push_back({"span_on_traced", bestNsPerCall(
        [&] { rec.recordSpan("bench/span", "bench", t, t, {"i", 1}); },
        kReps, kIters)});
  }

  // Log records: recorder off, below the level gate, enabled, enabled +
  // ambient trace.
  {
    obs::LogRecorder* off = nullptr;
    rows.push_back({"log_off", bestNsPerCall(
        [&] { obs::logTo(off, obs::LogLevel::kInfo, "bench", "msg"); },
        kReps, kIters)});
  }
  {
    obs::LogRecorder rec;  // min level info: debug is gated
    rec.log(obs::LogLevel::kInfo, "bench", "warmup");
    rows.push_back({"log_gated", bestNsPerCall(
        [&] { obs::logTo(&rec, obs::LogLevel::kDebug, "bench", "msg"); },
        kReps, kIters)});
    rows.push_back({"log_on", bestNsPerCall(
        [&] {
          rec.log(obs::LogLevel::kInfo, "bench", "steady-state record",
                  {"i", 1});
        },
        kReps, kIters)});
    const obs::ScopedTraceId scope(obs::makeTraceId());
    rows.push_back({"log_on_traced", bestNsPerCall(
        [&] {
          rec.log(obs::LogLevel::kInfo, "bench", "steady-state record",
                  {"i", 1});
        },
        kReps, kIters)});
  }

  // Model-quality records: recorder off, margin record, record + gated
  // capture check (the steady state — most margins are far from the
  // boundary), and record + actual capture (ring write included).
  {
    obs::ModelStatsRecorder* off = nullptr;
    rows.push_back({"margin_record_off", bestNsPerCall(
        [&] { obs::recordTo(off, 0, 1.25, true); },
        kReps, kIters)});
  }
  {
    obs::ModelStatsRecorder rec({"bench"});
    rec.record(0, 1.25, true);  // warm the TLS slot
    rows.push_back({"margin_record_on", bestNsPerCall(
        [&] { rec.record(0, 1.25, true); },
        kReps, kIters)});
    rows.push_back({"margin_capture_gated", bestNsPerCall(
        [&] {
          rec.record(0, 1.25, true);
          if (rec.shouldCapture(1.25)) rec.capture(0, 1.25, 0, 0, 0);
        },
        kReps, kIters)});
    rows.push_back({"margin_capture_on", bestNsPerCall(
        [&] {
          rec.record(0, 0.01, true);
          if (rec.shouldCapture(0.01)) rec.capture(0, 0.01, 1200, 3400, 0x9e3779b9u);
        },
        kReps, kIters)});
  }

  // Propagation: scope install + read, and the per-request header costs.
  {
    const obs::TraceId id = obs::makeTraceId();
    rows.push_back({"trace_scope", bestNsPerCall(
        [&] {
          const obs::ScopedTraceId scope(id);
          const obs::TraceId cur = obs::currentTraceId();
          keep(cur);
        },
        kReps, kIters)});
    const std::string header = obs::formatTraceparent(id);
    rows.push_back({"traceparent_parse", bestNsPerCall(
        [&] {
          obs::TraceId out;
          obs::parseTraceparent(header, out);
          keep(out);
        },
        kReps, kIters)});
    rows.push_back({"trace_id_format", bestNsPerCall(
        [&] {
          char buf[obs::kTraceIdChars + 1];
          obs::formatTraceId(id, buf);
          keep(buf);
        },
        kReps, kIters)});
  }
  return rows;
}

struct EndToEnd {
  double bareSec = 0.0;
  double observedSec = 0.0;
  double overhead() const {
    return bareSec > 0 ? observedSec / bareSec - 1.0 : 0.0;
  }
};

/// One evaluation of a small generated benchmark, bare vs fully observed
/// (tracer + log recorder + ambient trace id). Best-of-`reps` each.
EndToEnd endToEnd(int reps) {
  data::BenchmarkSpec spec = bench::smallSuite()[0];
  spec.targets.hotspots = std::min<std::size_t>(spec.targets.hotspots, 20);
  spec.targets.nonHotspots =
      std::min<std::size_t>(spec.targets.nonHotspots, 100);
  spec.width = std::min<Coord>(spec.width, 28000);
  spec.height = std::min<Coord>(spec.height, 28000);
  spec.sites = std::min<std::size_t>(spec.sites, 24);
  const data::Benchmark b = data::generateBenchmark(spec);
  engine::RunContext trainCtx(bench::hwThreads());
  const core::Detector det =
      core::trainDetector(b.training.clips, bench::makeOurs().train, trainCtx);
  const core::EvalParams ep = bench::makeOurs().eval;

  EndToEnd out;
  out.bareSec = std::numeric_limits<double>::infinity();
  out.observedSec = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    {
      engine::RunContext ctx(ep.threads);
      const auto t0 = std::chrono::steady_clock::now();
      const core::EvalResult res =
          core::evaluateLayout(det, b.test.layout, ep, ctx);
      const auto t1 = std::chrono::steady_clock::now();
      keep(res.reported);
      out.bareSec = std::min(
          out.bareSec, std::chrono::duration<double>(t1 - t0).count());
    }
    {
      engine::RunContext ctx(ep.threads);
      ctx.attachTracer(std::make_shared<obs::TraceRecorder>());
      auto log = std::make_shared<obs::LogRecorder>();
      log->setMinLevel(obs::LogLevel::kDebug);
      ctx.attachLog(log);
      ctx.attachModelStats(
          std::make_shared<obs::ModelStatsRecorder>(det.clusterNames()));
      const obs::ScopedTraceId scope(obs::makeTraceId());
      const auto t0 = std::chrono::steady_clock::now();
      const core::EvalResult res =
          core::evaluateLayout(det, b.test.layout, ep, ctx);
      const auto t1 = std::chrono::steady_clock::now();
      keep(res.reported);
      out.observedSec = std::min(
          out.observedSec, std::chrono::duration<double>(t1 - t0).count());
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path =
      hsd::bench::argString(argc, argv, "--json-out", "BENCH_obs.json");
  const std::vector<MicroRow> rows = microRows();
  const EndToEnd e2e = endToEnd(3);

  std::ostringstream json;
  json << "{\n  \"bench\": \"obs\",\n  \"git\": \""
       << hsd::bench::gitDescribe() << "\",\n  \"micro\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"name\": \"" << rows[i].name << "\", \"ns_per_op\": "
         << rows[i].nsPerOp << "}" << (i + 1 < rows.size() ? "," : "")
         << "\n";
    std::printf("%-18s %9.2f ns/op\n", rows[i].name, rows[i].nsPerOp);
  }
  json << "  ],\n  \"end_to_end\": {\"bare_s\": " << e2e.bareSec
       << ", \"observed_s\": " << e2e.observedSec
       << ", \"overhead_frac\": " << e2e.overhead() << "}\n}\n";
  std::printf("end-to-end: bare %.3fs observed %.3fs overhead %.1f%%\n",
              e2e.bareSec, e2e.observedSec, 100.0 * e2e.overhead());
  return hsd::bench::writeJsonFile(path, json.str()) ? 0 : 1;
}
