// Table V: clip extraction — candidate clip counts of the 50%-overlap
// sliding-window baseline vs our polygon-dissection + density-screen
// extraction, per testing layout; plus the end-to-end evaluation-time
// saving the extraction buys (the point of Sec. III-E).
//
// Reproducible shape: our extraction produces a small fraction of the
// window-scan count on every layout, and full evaluation is accordingly
// faster than window scanning. Each run also dumps its per-stage
// EngineStats JSON (ENGINE_STATS lines) for the perf tracker.
#include "bench_common.hpp"

int main() {
  using namespace hsd;
  bench::printHeader("Table V: clip extraction (window-based vs ours)");
  std::printf("%-18s %16s %14s %12s %8s\n", "Testing layout", "area",
              "#clip window", "#clip ours", "ratio");

  auto report = [](const data::TestLayout& test) {
    const auto bb = test.layout.bbox();
    core::ExtractParams p;
    engine::RunContext ctx(bench::hwThreads());
    const auto t0 = std::chrono::steady_clock::now();
    const auto ours = core::extractCandidateClips(test.layout, 1, p, ctx);
    const double oursSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto windows =
        core::windowScanClips(test.layout, 1, p.clip, 0.5);
    std::printf("%-18s %7.3fx%.3fmm %14zu %12zu %7.1f%%  (%.2fs)\n",
                test.layout.name().c_str(),
                bb ? double(bb->width()) / 1e6 : 0.0,
                bb ? double(bb->height()) / 1e6 : 0.0, windows.size(),
                ours.size(), 100.0 * double(ours.size()) /
                                 double(std::max<std::size_t>(1, windows.size())),
                oursSec);
    std::printf("ENGINE_STATS extract/%s %s\n", test.layout.name().c_str(),
                ctx.stats().toJson().c_str());
  };

  for (const auto& spec : bench::smallSuite()) {
    const data::Benchmark b = data::generateBenchmark(spec);
    report(b.test);
  }
  data::GeneratorParams gp;
  gp.dims = data::ProcessDims::node32();
  gp.seed = 999;
  report(data::generateTestLayout(gp, 64000, 40000, 70, 0.5,
                                  "MX_blind_partial"));

  // End-to-end evaluation-time comparison on one benchmark: the same
  // trained detector over extracted candidates vs a full window scan.
  // Extraction, evaluation and the scan share one context per run so the
  // ENGINE_STATS dump shows the whole stage graph.
  std::printf("\nevaluation-time saving (benchmark2-scale workload):\n");
  const data::Benchmark b = data::generateBenchmark(bench::smallSuite()[1]);
  engine::RunContext trainCtx(bench::hwThreads());
  const core::Detector det =
      core::trainDetector(b.training.clips, bench::makeOurs().train, trainCtx);
  core::EvalParams ep = bench::makeOurs().eval;
  engine::RunContext oursCtx(bench::hwThreads());
  const core::EvalResult ours =
      core::evaluateLayout(det, b.test.layout, ep, oursCtx);
  engine::RunContext scanCtx(bench::hwThreads());
  const core::EvalResult scan =
      core::evaluateLayoutWindowScan(det, b.test.layout, ep, scanCtx, 0.5);
  const core::Score so = core::scoreReports(ours.reported, b.test.actualHotspots);
  const core::Score ss = core::scoreReports(scan.reported, b.test.actualHotspots);
  std::printf("  ours:        %6zu clips evaluated in %5.1fs  (%zu/%zu hits)\n",
              ours.candidateClips, ours.evalSeconds, so.hits,
              so.actualHotspots);
  std::printf("  window scan: %6zu clips evaluated in %5.1fs  (%zu/%zu hits)\n",
              scan.candidateClips, scan.evalSeconds, ss.hits,
              ss.actualHotspots);
  std::printf("ENGINE_STATS eval/ours %s\n", oursCtx.stats().toJson().c_str());
  std::printf("ENGINE_STATS eval/window_scan %s\n",
              scanCtx.stats().toJson().c_str());
  return 0;
}
