// Extension benchmark (Sec. IV-A, no table in the paper): on two-layer
// clip data whose labels depend on the metal1 x metal2 overlap, compare
// the multilayer detector (per-layer + overlap feature sets) against a
// single-layer detector that only sees metal1.
//
// Expected shape: single-layer features cannot separate overlap-driven
// hotspots; the multilayer feature stack can.
#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/multilayer.hpp"

int main() {
  using namespace hsd;
  bench::printHeader("Extension: multilayer vs single-layer features");

  data::GeneratorParams gp;
  gp.seed = 321;
  data::MultiLayerTargets targets;
  targets.hotspots = 50;
  targets.nonHotspots = 200;
  const gds::ClipSet train = data::generateMultiLayerTrainingSet(gp, targets);
  gp.seed = 654;
  const gds::ClipSet test = data::generateMultiLayerTrainingSet(gp, targets,
                                                                "ml_test");
  std::printf("training %zu clips / testing %zu clips (two layers)\n\n",
              train.clips.size(), test.clips.size());

  const auto score = [&](auto&& classify) {
    std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
    for (const Clip& c : test.clips) {
      const bool hot = c.label() == Label::kHotspot;
      const bool pred = classify(c);
      tp += hot && pred;
      fn += hot && !pred;
      fp += !hot && pred;
      tn += !hot && !pred;
    }
    std::printf("  hit %zu/%zu (%.1f%%)  false-alarms %zu/%zu (%.1f%%)\n",
                tp, tp + fn, 100.0 * double(tp) / double(tp + fn), fp,
                fp + tn, 100.0 * double(fp) / double(fp + tn));
  };

  // Multilayer detector: layers {1,2} + overlap features.
  core::MultiLayerParams mp;
  mp.layers = {1, 2};
  const auto ml = core::MultiLayerDetector::train(train.clips, mp);
  std::printf("multilayer features (%zu kernels):\n", ml.kernels.size());
  score([&](const Clip& c) { return ml.evaluateClip(c); });

  // Single-layer detector: metal1 only.
  core::MultiLayerParams sp;
  sp.layers = {1};
  const auto sl = core::MultiLayerDetector::train(train.clips, sp);
  std::printf("metal1-only features (%zu kernels):\n", sl.kernels.size());
  score([&](const Clip& c) { return sl.evaluateClip(c); });

  // Metal2 only.
  core::MultiLayerParams sp2;
  sp2.layers = {2};
  const auto sl2 = core::MultiLayerDetector::train(train.clips, sp2);
  std::printf("metal2-only features (%zu kernels):\n", sl2.kernels.size());
  score([&](const Clip& c) { return sl2.evaluateClip(c); });
  return 0;
}
