// Shared helpers for the table/figure regeneration harness: benchmark
// suite construction, method configurations (Basic / +Topology / +Removal
// / Ours / operating points), one-shot run-and-score, and table printing.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"

// Stamped by bench/CMakeLists.txt at configure time so the BENCH_*.json
// trajectory files attribute every number to a commit.
#ifndef HSD_GIT_DESCRIBE
#define HSD_GIT_DESCRIBE "unknown"
#endif

namespace hsd::bench {

inline const char* gitDescribe() { return HSD_GIT_DESCRIBE; }

/// `--flag value` lookup for the bench binaries' tiny CLIs (same
/// convention as the hsd_* tools).
inline const char* argString(int argc, char** argv, const char* flag,
                             const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return def;
}

/// Write a machine-readable artifact (the BENCH_*.json trajectory files);
/// prints where it went. Returns false (with a stderr note) on I/O error.
inline bool writeJsonFile(const std::string& path, const std::string& json) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  os << json;
  std::printf("bench json: -> %s\n", path.c_str());
  return true;
}

/// One detection method: trainer + evaluator configuration.
struct Method {
  std::string name;
  core::TrainParams train;
  core::EvalParams eval;
};

inline std::size_t hwThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// The paper's Table III ladder plus the Table II operating points.
inline Method makeBasic() {
  Method m;
  m.name = "Basic";
  m.train.singleKernel = true;
  m.train.enableShift = false;
  m.train.balancePopulation = false;
  m.train.enableFeedback = false;
  m.train.threads = hwThreads();
  m.eval.useRemoval = false;
  m.eval.useFeedback = false;
  m.eval.threads = hwThreads();
  return m;
}

inline Method makeTopology() {
  Method m;
  m.name = "+Topology";
  m.train.enableFeedback = false;
  m.train.threads = hwThreads();
  m.eval.useRemoval = false;
  m.eval.useFeedback = false;
  m.eval.threads = hwThreads();
  return m;
}

inline Method makeRemoval() {
  Method m = makeTopology();
  m.name = "+Removal";
  m.eval.useRemoval = true;
  return m;
}

inline Method makeOurs(double bias = 0.0, std::size_t threads = 0) {
  Method m;
  m.name = "Ours";
  m.train.threads = threads ? threads : hwThreads();
  m.eval.threads = m.train.threads;
  m.eval.decisionBias = bias;
  return m;
}

/// Scored outcome of one (method, benchmark) run.
struct RunResult {
  std::string method;
  core::Score score;
  std::size_t candidates = 0;
  double hsNhsRatio = 0.0;  ///< balanced #hs / #nhs of the trained model
  double trainSec = 0.0;
  double evalSec = 0.0;
  std::string engineStats;  ///< per-stage EngineStats JSON for the run

  double runtimeSec() const { return trainSec + evalSec; }
};

/// Train `method` on `training`, evaluate `test`, score against ground
/// truth. Training and evaluation share one RunContext, so the returned
/// engineStats covers the whole train/* + extract/* + eval/* stage graph.
inline RunResult runMethod(const Method& method,
                           const std::vector<Clip>& training,
                           const data::TestLayout& test) {
  RunResult out;
  out.method = method.name;
  engine::RunContext ctx(method.eval.threads);
  const core::Detector det = core::trainDetector(training, method.train, ctx);
  const core::EvalResult res =
      core::evaluateLayout(det, test.layout, method.eval, ctx);
  out.engineStats = ctx.stats().toJson();
  out.score = core::scoreReports(res.reported, test.actualHotspots);
  out.candidates = res.candidateClips;
  out.trainSec = det.stats.trainSeconds;
  out.evalSec = res.evalSeconds;
  out.hsNhsRatio =
      det.stats.balancedNonHotspots
          ? double(det.stats.upsampledHotspots) /
                double(det.stats.balancedNonHotspots)
          : 0.0;
  return out;
}

inline void printHeader(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

inline void printRow(const std::string& bench, const RunResult& r) {
  std::printf(
      "%-12s %-10s #hit %4zu/%-4zu  #extra %5zu  accuracy %6.2f%%  "
      "hit/extra %8.3e  runtime %5.1fs\n",
      bench.c_str(), r.method.c_str(), r.score.hits, r.score.actualHotspots,
      r.score.extras, 100.0 * r.score.accuracy(), r.score.hitExtraRatio(),
      r.runtimeSec());
}

/// One-line machine-parseable per-stage dump next to a table row.
inline void printEngineStats(const std::string& bench, const RunResult& r) {
  if (r.engineStats.empty()) return;
  std::printf("ENGINE_STATS %s/%s %s\n", bench.c_str(), r.method.c_str(),
              r.engineStats.c_str());
}

/// Scaled-down suite for bench binaries that sweep many configurations.
inline std::vector<data::BenchmarkSpec> smallSuite() {
  std::vector<data::BenchmarkSpec> specs = data::iccad2012LikeSuite();
  for (auto& s : specs) {
    s.targets.hotspots = std::min<std::size_t>(s.targets.hotspots, 60);
    s.targets.nonHotspots = std::min<std::size_t>(s.targets.nonHotspots, 300);
    s.width = std::min<Coord>(s.width, 56000);
    s.height = std::min<Coord>(s.height, 54000);
    s.sites = std::min<std::size_t>(s.sites, 60);
  }
  return specs;
}

}  // namespace hsd::bench
