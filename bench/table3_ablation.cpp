// Table III: feature ablation per benchmark — Basic (single huge kernel)
// -> +Topology (classification + balancing + shifting + multi-kernel) ->
// +Removal (redundant clip removal) -> Ours (+ feedback kernel), with the
// rebalanced #hs/#nhs ratio column.
//
// Reproducible shape: +Topology lifts accuracy over Basic; +Removal cuts
// extras at unchanged hits; Ours cuts extras further.
#include "bench_common.hpp"

int main() {
  using namespace hsd;
  bench::printHeader("Table III: ablation (Basic/+Topology/+Removal/Ours)");
  std::printf("%-12s %-10s %8s  (ratio = rebalanced #hs/#nhs)\n\n", "", "",
              "");

  const std::vector<bench::Method> ladder{
      bench::makeBasic(), bench::makeTopology(), bench::makeRemoval(),
      bench::makeOurs()};

  for (const auto& spec : bench::smallSuite()) {
    const data::Benchmark b = data::generateBenchmark(spec);
    for (const bench::Method& m : ladder) {
      const bench::RunResult r =
          bench::runMethod(m, b.training.clips, b.test);
      std::printf("%-12s %-10s ratio %4.2f  ", b.name.c_str(),
                  r.method.c_str(), r.hsNhsRatio);
      std::printf("#hit %3zu/%-3zu  #extra %5zu  accuracy %6.2f%%  "
                  "runtime %5.1fs\n",
                  r.score.hits, r.score.actualHotspots, r.score.extras,
                  100.0 * r.score.accuracy(), r.runtimeSec());
    }
    std::printf("\n");
  }
  return 0;
}
