// Table I: benchmark suite statistics — training hotspot / non-hotspot
// counts, testing-layout hotspot counts, area and process node.
// (Synthetic ICCAD-2012-like suite; see DESIGN.md for the substitution.)
// With `--json-out BENCH_table1.json` also writes one machine-readable
// trajectory record: the suite rows plus the benchmark1 train+eval
// profile (accuracy, runtime, per-stage EngineStats) and git describe —
// the input of bench/run_benches.sh.
#include <cstdio>
#include <locale>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"

namespace {

struct SuiteRow {
  std::string training;
  std::size_t hs = 0;
  std::size_t nhs = 0;
  std::string layout;
  std::size_t layoutHotspots = 0;
  double areaUm2 = 0.0;
  std::size_t sites = 0;
  std::string process;
};

std::string toJson(const std::vector<SuiteRow>& rows,
                   const hsd::bench::RunResult& profile) {
  using hsd::obs::jsonEscape;
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed;
  os << "{\"bench\": \"table1\", \"git\": \""
     << jsonEscape(hsd::bench::gitDescribe()) << "\", \"benchmarks\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SuiteRow& r = rows[i];
    if (i != 0) os << ",";
    os << "\n{\"training\": \"" << jsonEscape(r.training)
       << "\", \"hotspots\": " << r.hs << ", \"nonHotspots\": " << r.nhs
       << ", \"layout\": \"" << jsonEscape(r.layout)
       << "\", \"layoutHotspots\": " << r.layoutHotspots
       << ", \"areaUm2\": " << r.areaUm2 << ", \"sites\": " << r.sites
       << ", \"process\": \"" << jsonEscape(r.process) << "\"}";
  }
  os << "\n], \"profile\": {\"benchmark\": \"benchmark1\", \"method\": \""
     << jsonEscape(profile.method)
     << "\", \"accuracy\": " << profile.score.accuracy()
     << ", \"hits\": " << profile.score.hits
     << ", \"actualHotspots\": " << profile.score.actualHotspots
     << ", \"extras\": " << profile.score.extras
     << ", \"trainSeconds\": " << profile.trainSec
     << ", \"evalSeconds\": " << profile.evalSec << ", \"engineStats\": "
     << (profile.engineStats.empty() ? std::string("null")
                                     : profile.engineStats)
     << "}}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  bench::printHeader("Table I: benchmark statistics");
  const char* jsonOut = bench::argString(argc, argv, "--json-out", nullptr);
  std::printf("%-22s %5s %6s | %-18s %5s %12s %8s %6s\n", "Training data",
              "#hs", "#nhs", "Testing layout", "#hs", "area(um^2)",
              "#sites", "proc");

  const auto specs = data::iccad2012LikeSuite();
  std::vector<SuiteRow> rows;
  data::Benchmark first;  // kept for the blind layout below
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const data::Benchmark b = data::generateBenchmark(specs[i]);
    std::size_t hs = 0;
    for (const Clip& c : b.training.clips)
      hs += c.label() == Label::kHotspot;
    std::printf("%-22s %5zu %6zu | %-18s %5zu %12.0f %8zu %6s\n",
                b.training.name.c_str(), hs, b.training.clips.size() - hs,
                b.test.layout.name().c_str(), b.test.actualHotspots.size(),
                b.test.layout.areaUm2(), b.test.motifSites,
                b.process.c_str());
    rows.push_back({b.training.name, hs, b.training.clips.size() - hs,
                    b.test.layout.name(), b.test.actualHotspots.size(),
                    b.test.layout.areaUm2(), b.test.motifSites, b.process});
    if (i == 0) first = b;
  }

  // The blind layout (scored with benchmark1's training data in Table II
  // of the paper): same generator params as benchmark1, different seed.
  data::GeneratorParams gp;
  gp.dims = data::ProcessDims::node32();
  gp.seed = 999;
  const data::TestLayout blind =
      data::generateTestLayout(gp, 64000, 40000, 70, 0.5, "MX_blind_partial");
  std::printf("%-22s %5s %6s | %-18s %5zu %12.0f %8zu %6s\n", "(benchmark1)",
              "-", "-", blind.layout.name().c_str(),
              blind.actualHotspots.size(), blind.layout.areaUm2(),
              blind.motifSites, "32nm");
  rows.push_back({"(benchmark1)", 0, 0, blind.layout.name(),
                  blind.actualHotspots.size(), blind.layout.areaUm2(),
                  blind.motifSites, "32nm"});
  std::printf("\ncore %lld x %lld nm, clip %lld x %lld nm (contest format)\n",
              static_cast<long long>(ClipParams{}.coreSide),
              static_cast<long long>(ClipParams{}.coreSide),
              static_cast<long long>(ClipParams{}.clipSide),
              static_cast<long long>(ClipParams{}.clipSide));

  // Per-stage engine profile of a full train+eval run on benchmark1, so
  // suite regeneration also tracks where detection time goes.
  std::printf("\nengine stage profile (benchmark1, ours):\n");
  const bench::RunResult r =
      bench::runMethod(bench::makeOurs(), first.training.clips, first.test);
  bench::printRow("benchmark1", r);
  bench::printEngineStats("benchmark1", r);
  if (jsonOut != nullptr && !bench::writeJsonFile(jsonOut, toJson(rows, r)))
    return 1;
  return 0;
}
