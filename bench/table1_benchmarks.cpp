// Table I: benchmark suite statistics — training hotspot / non-hotspot
// counts, testing-layout hotspot counts, area and process node.
// (Synthetic ICCAD-2012-like suite; see DESIGN.md for the substitution.)
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hsd;
  bench::printHeader("Table I: benchmark statistics");
  std::printf("%-22s %5s %6s | %-18s %5s %12s %8s %6s\n", "Training data",
              "#hs", "#nhs", "Testing layout", "#hs", "area(um^2)",
              "#sites", "proc");

  const auto specs = data::iccad2012LikeSuite();
  data::Benchmark first;  // kept for the blind layout below
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const data::Benchmark b = data::generateBenchmark(specs[i]);
    std::size_t hs = 0;
    for (const Clip& c : b.training.clips)
      hs += c.label() == Label::kHotspot;
    std::printf("%-22s %5zu %6zu | %-18s %5zu %12.0f %8zu %6s\n",
                b.training.name.c_str(), hs, b.training.clips.size() - hs,
                b.test.layout.name().c_str(), b.test.actualHotspots.size(),
                b.test.layout.areaUm2(), b.test.motifSites,
                b.process.c_str());
    if (i == 0) first = b;
  }

  // The blind layout (scored with benchmark1's training data in Table II
  // of the paper): same generator params as benchmark1, different seed.
  data::GeneratorParams gp;
  gp.dims = data::ProcessDims::node32();
  gp.seed = 999;
  const data::TestLayout blind =
      data::generateTestLayout(gp, 64000, 40000, 70, 0.5, "MX_blind_partial");
  std::printf("%-22s %5s %6s | %-18s %5zu %12.0f %8zu %6s\n", "(benchmark1)",
              "-", "-", blind.layout.name().c_str(),
              blind.actualHotspots.size(), blind.layout.areaUm2(),
              blind.motifSites, "32nm");
  std::printf("\ncore %lld x %lld nm, clip %lld x %lld nm (contest format)\n",
              static_cast<long long>(ClipParams{}.coreSide),
              static_cast<long long>(ClipParams{}.coreSide),
              static_cast<long long>(ClipParams{}.clipSide),
              static_cast<long long>(ClipParams{}.clipSide));

  // Per-stage engine profile of a full train+eval run on benchmark1, so
  // suite regeneration also tracks where detection time goes.
  std::printf("\nengine stage profile (benchmark1, ours):\n");
  const bench::RunResult r =
      bench::runMethod(bench::makeOurs(), first.training.clips, first.test);
  bench::printRow("benchmark1", r);
  bench::printEngineStats("benchmark1", r);
  return 0;
}
