// Calibration probe for the synthetic process and classifier defaults:
// prints oracle hotspot rates per risk level, topology-key diversity,
// density-distance statistics and per-kernel training behaviour.
#include <cstdio>
#include <map>
#include <set>

#include "core/classify.hpp"
#include "core/topo_string.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "geom/density_grid.hpp"
#include "litho/litho.hpp"

using namespace hsd;

int main() {
  data::GeneratorParams gp;
  gp.seed = 7;
  const litho::LithoSimulator sim(gp.litho);
  const ClipWindow win =
      ClipWindow::atCore({gp.clip.ambit(), gp.clip.ambit()}, gp.clip);

  // 1. Oracle hotspot rate per (kind, risk).
  data::Rng rng(11);
  for (int risk = 0; risk < 3; ++risk) {
    std::printf("risk=%d: ", risk);
    for (int kind = 0; kind < int(data::MotifKind::kCount); ++kind) {
      int hot = 0;
      const int trials = 40;
      for (int t = 0; t < trials; ++t) {
        const auto rects = data::makeMotif(
            data::MotifKind(kind), data::Risk(risk),
            data::AmbitStyle(t % 3), gp.dims, gp.clip, rng);
        if (sim.isHotspot(rects, win.core, win.clip)) ++hot;
      }
      std::printf("k%d=%2d/%d ", kind, hot, trials);
    }
    std::printf("\n");
  }

  // 2. Topology diversity + density distances on a training set.
  data::TrainingTargets targets;
  targets.hotspots = 40;
  targets.nonHotspots = 150;
  const gds::ClipSet ts = data::generateTrainingSet(gp, targets);
  std::vector<core::CorePattern> hsPats, nhsPats;
  for (const Clip& c : ts.clips) {
    if (c.label() == Label::kHotspot)
      hsPats.push_back(core::CorePattern::fromCore(c, 1));
    else
      nhsPats.push_back(core::CorePattern::fromCore(c, 1));
  }
  std::map<std::string, int> keys;
  for (const auto& p : hsPats) keys[core::canonicalTopoKey(p)]++;
  std::printf("hotspots: %zu patterns, %zu distinct topo keys\n",
              hsPats.size(), keys.size());
  std::map<int, int> sizes;
  for (const auto& [k, n] : keys) sizes[n]++;
  for (const auto& [sz, cnt] : sizes)
    std::printf("  key-size %d x%d\n", sz, cnt);

  // Density distances within the largest topo group and across groups.
  std::vector<DensityGrid> grids;
  for (const auto& p : hsPats)
    grids.emplace_back(p.rects, p.window(), 12, 12);
  double minD = 1e9, maxD = 0, sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < grids.size(); ++i)
    for (std::size_t j = i + 1; j < grids.size(); ++j) {
      const double d = grids[i].distance(grids[j]);
      minD = std::min(minD, d);
      maxD = std::max(maxD, d);
      sum += d;
      ++n;
    }
  std::printf("hotspot pairwise density distance: min %.2f mean %.2f max %.2f\n",
              minD, n ? sum / n : 0, maxD);

  // 3. Cluster counts under the default classifier.
  core::ClassifyParams cp;
  auto clusters = core::classifyPatterns(hsPats, cp);
  std::printf("default classify: %zu clusters from %zu hotspot patterns\n",
              clusters.size(), hsPats.size());
  for (double r0 : {2.0, 4.0, 8.0, 12.0}) {
    cp.radiusR0 = r0;
    std::printf("  R0=%.0f -> %zu clusters\n", r0,
                core::classifyPatterns(hsPats, cp).size());
  }

  // 4. Train with defaults and report kernel stats.
  engine::RunContext ctx;
  core::TrainParams tp;
  const core::Detector det = core::trainDetector(ts.clips, tp, ctx);
  std::printf("kernels: %zu, feedback=%d, extras-at-selfeval=%zu\n",
              det.kernels.size(), int(det.hasFeedback),
              det.stats.feedbackExtras);
  std::map<double, int> gammas;
  for (const auto& k : det.kernels) gammas[k.finalGamma]++;
  for (const auto& [g, c] : gammas) std::printf("  gamma %.3f x%d\n", g, c);
  return 0;
}
