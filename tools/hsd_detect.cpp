// CLI: run a trained detector over a GDSII layout and write the hotspot
// report.
//
//   hsd_detect <model> <layout.gds> <out_report.txt> [--bias B]
//              [--threads N] [--no-removal] [--no-feedback]
//              [--tile-size S] [--halo H] [--tile-threads K]
//              [--trace-out trace.json] [--log-out log.jsonl]
//              [--log-level trace|debug|info|warn|error]
//              [--model-stats-out model.json]
//
// --tile-size S partitions the layout into S-dbu grid tiles evaluated
// concurrently with halo overlap (engine/tiler.hpp) and deterministically
// merged — the report is byte-identical to an untiled run. --halo
// overrides the halo width (default: the exactness minimum, ambit + half
// core; smaller values hard-error). --tile-threads caps concurrent tiles.
//
// --trace-out records the whole run as Chrome trace-event JSON (per-batch
// stage spans, parallelFor chunk spans) — open it in Perfetto or
// chrome://tracing. The ENGINE_STATS line is the per-stage timing JSON
// (per-tile "tile<k>/..." entries plus plain-name roll-ups when tiled).
//
// --log-out records structured engine logs (eval/tile milestones) as
// JSON lines; --log-level sets the floor (default info). The run gets a
// freshly minted trace id so its spans and log records correlate the
// same way a served request's do.
//
// --model-stats-out records per-cluster SVM margin sketches, verdict
// counts and low-margin captures (obs/model_stats.hpp) and writes them as
// JSON at exit; when the model carries a drift baseline the dump includes
// the per-cluster PSI report against it.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/evaluator.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"
#include "obs/drift.hpp"
#include "obs/log.hpp"
#include "obs/model_stats.hpp"
#include "obs/trace.hpp"
#include "obs/trace_id.hpp"

namespace {

bool hasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

double argDouble(int argc, char** argv, const char* flag, double def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  return def;
}

const char* argString(int argc, char** argv, const char* flag,
                      const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <model> <layout.gds> <out_report.txt> "
                 "[--bias B] [--threads N] [--no-removal] "
                 "[--no-feedback] [--tile-size S] [--halo H] "
                 "[--tile-threads K] [--trace-out F] [--log-out F] "
                 "[--log-level L] [--model-stats-out F]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream ms(argv[1]);
    if (!ms) {
      std::fprintf(stderr, "error: cannot open model %s\n", argv[1]);
      return 1;
    }
    const core::Detector det = core::Detector::load(ms);
    const Layout layout = gds::readGdsiiFile(argv[2]);

    core::EvalParams ep;
    ep.extract.clip = det.params.clip;
    ep.removal.clip = det.params.clip;
    ep.decisionBias = argDouble(argc, argv, "--bias", 0.0);
    ep.useRemoval = !hasFlag(argc, argv, "--no-removal");
    ep.useFeedback = !hasFlag(argc, argv, "--no-feedback");
    ep.tiling.tileSize = Coord(argDouble(argc, argv, "--tile-size", 0.0));
    ep.tiling.halo = Coord(argDouble(argc, argv, "--halo", 0.0));
    ep.tiling.tileThreads =
        std::size_t(argDouble(argc, argv, "--tile-threads", 0.0));

    engine::RunContext ctx(
        std::size_t(argDouble(argc, argv, "--threads", 0.0)));
    const char* traceOut = argString(argc, argv, "--trace-out", nullptr);
    std::shared_ptr<obs::TraceRecorder> tracer;
    if (traceOut != nullptr) {
      tracer = std::make_shared<obs::TraceRecorder>();
      tracer->nameThread("hsd_detect-main");
      ctx.attachTracer(tracer);
    }
    const char* logOut = argString(argc, argv, "--log-out", nullptr);
    std::shared_ptr<obs::LogRecorder> logRec;
    if (logOut != nullptr) {
      logRec = std::make_shared<obs::LogRecorder>();
      const char* levelArg = argString(argc, argv, "--log-level", nullptr);
      if (levelArg != nullptr) {
        obs::LogLevel level;
        if (!obs::parseLogLevel(levelArg, level)) {
          std::fprintf(stderr, "error: bad --log-level '%s'\n", levelArg);
          return 2;
        }
        logRec->setMinLevel(level);
      }
      ctx.attachLog(logRec);
    }
    const char* modelStatsOut =
        argString(argc, argv, "--model-stats-out", nullptr);
    std::shared_ptr<obs::ModelStatsRecorder> modelStats;
    std::unique_ptr<obs::DriftScorer> drift;
    if (modelStatsOut != nullptr) {
      modelStats = std::make_shared<obs::ModelStatsRecorder>(det.clusterNames());
      ctx.attachModelStats(modelStats);
      if (det.hasBaseline) {
        drift = std::make_unique<obs::DriftScorer>(det.baseline);
        drift->setSource(modelStats);
        drift->sample();  // zero origin: the run is the window
      }
    }
    // Mint a run-scoped trace id so spans and log records correlate the
    // same way a served request's do.
    const obs::ScopedTraceId traceScope(obs::makeTraceId());
    const core::EvalResult res = core::evaluateLayout(det, layout, ep, ctx);
    gds::writeWindowListFile(argv[3], res.reported, det.params.clip);
    std::printf("%s: %zu candidates -> %zu flagged -> %zu reported "
                "(%.1fs) -> %s\n",
                layout.name().c_str(), res.candidateClips,
                res.flaggedBeforeRemoval, res.reported.size(),
                res.evalSeconds, argv[3]);
    std::printf("ENGINE_STATS %s\n", ctx.stats().toJson().c_str());
    if (tracer) {
      std::ofstream ts(traceOut);
      if (!ts) {
        std::fprintf(stderr, "error: cannot open trace file %s\n", traceOut);
        return 1;
      }
      tracer->writeJson(ts);
      std::printf("trace: %zu spans (%llu dropped) -> %s\n",
                  tracer->spanCount(),
                  static_cast<unsigned long long>(tracer->droppedEvents()),
                  traceOut);
    }
    if (logRec) {
      std::ofstream ls(logOut);
      if (!ls) {
        std::fprintf(stderr, "error: cannot open log file %s\n", logOut);
        return 1;
      }
      logRec->writeJsonLines(ls);
      std::printf("log: %zu records (%llu dropped) -> %s\n",
                  logRec->recordCount(),
                  static_cast<unsigned long long>(logRec->droppedRecords()),
                  logOut);
    }
    if (modelStats) {
      std::ofstream out(modelStatsOut);
      if (!out) {
        std::fprintf(stderr, "error: cannot open model stats file %s\n",
                     modelStatsOut);
        return 1;
      }
      out << "{\"model\": " << modelStats->toJson();
      if (drift) out << ", \"drift\": " << drift->sampleAndJson();
      out << "}\n";
      std::printf("model stats: %zu clusters -> %s\n", modelStats->numSlots(),
                  modelStatsOut);
    }

    // Triage view: the highest-confidence reports first.
    const Layer* l = layout.findLayer(det.params.layer);
    if (l != nullptr && !res.reported.empty()) {
      const GridIndex idx(l->rects(), det.params.clip.clipSide);
      const auto ranked = core::rankReports(det, idx, res.reported, ctx);
      const std::size_t show = std::min<std::size_t>(5, ranked.size());
      std::printf("top %zu by P(hotspot):\n", show);
      for (std::size_t i = 0; i < show; ++i)
        std::printf("  (%lld, %lld)  p=%.3f\n",
                    static_cast<long long>(ranked[i].window.core.lo.x),
                    static_cast<long long>(ranked[i].window.core.lo.y),
                    ranked[i].probability);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
