// CLI: score a hotspot report against a golden hotspot list (contest
// metric: hits / accuracy / extras / hit-extra ratio).
//
//   hsd_score <report.txt> <golden.txt> [--layout layout.gds]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/metrics.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <report.txt> <golden.txt> [--layout x.gds]\n",
                 argv[0]);
    return 2;
  }
  try {
    const auto [reports, rp] = gds::readWindowListFile(argv[1]);
    const auto [golden, gp] = gds::readWindowListFile(argv[2]);
    if (rp != gp)
      std::fprintf(stderr,
                   "warning: report and golden clip parameters differ\n");
    const core::Score s = core::scoreReports(reports, golden);
    std::printf("#report %zu  #golden %zu\n", s.reports, s.actualHotspots);
    std::printf("#hit    %zu  accuracy %.2f%%\n", s.hits,
                100.0 * s.accuracy());
    std::printf("#extra  %zu  hit/extra %.3e\n", s.extras,
                s.hitExtraRatio());
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--layout") == 0) {
        const Layout layout = gds::readGdsiiFile(argv[i + 1]);
        std::printf("false alarm: %.4f extras/um^2 (area %.0f um^2)\n",
                    s.falseAlarmPerUm2(layout.areaUm2()), layout.areaUm2());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
