// CLI: train a hotspot detector from a clip-set file.
//
//   hsd_train <training_clips.txt> <out_model> [--threads N] [--no-shift]
//             [--no-balance] [--no-feedback] [--single-kernel]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/trainer.hpp"
#include "gds/ascii.hpp"

namespace {

bool hasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

long long argValue(int argc, char** argv, const char* flag, long long def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <training_clips.txt> <out_model> [--threads N] "
                 "[--no-shift] [--no-balance] [--no-feedback] "
                 "[--single-kernel]\n",
                 argv[0]);
    return 2;
  }
  try {
    const gds::ClipSet set = gds::readClipSetFile(argv[1]);
    core::TrainParams tp;
    tp.clip = set.params;
    tp.enableShift = !hasFlag(argc, argv, "--no-shift");
    tp.balancePopulation = !hasFlag(argc, argv, "--no-balance");
    tp.enableFeedback = !hasFlag(argc, argv, "--no-feedback");
    tp.singleKernel = hasFlag(argc, argv, "--single-kernel");

    engine::RunContext ctx(std::size_t(argValue(argc, argv, "--threads", 0)));
    const core::Detector det = core::trainDetector(set.clips, tp, ctx);
    std::ofstream os(argv[2]);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[2]);
      return 1;
    }
    det.save(os);
    std::printf("trained %zu kernels (%zu hs clusters, %zu->%zu nhs "
                "downsample, feedback=%s) in %.1fs -> %s\n",
                det.kernels.size(), det.stats.hotspotClusters,
                det.stats.rawNonHotspots, det.stats.balancedNonHotspots,
                det.hasFeedback ? "yes" : "no", det.stats.trainSeconds,
                argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
