// CLI: curl-free HTTP client against the embedded admin server, the
// detection wire plane, or any plain HTTP endpoint — the scrape/POST
// client of tests/tools_smoke.sh and the verify drive steps, built on
// net::httpGet / net::httpPost.
//
//   hsd_scrape <host> <port> <path> [--post <file>] [--content-type <ct>]
//              [--timeout-ms <n>] [-H "Name: value"]... [-v]
//
// Without --post: GET <path>. With --post: POST the file's bytes as the
// request body (--content-type defaults to application/octet-stream —
// right for GDSII; use text/plain for the ASCII layout format).
// -H adds a request header (repeatable; "Name: value" form, curl-style)
// — how tools_smoke.sh sends a traceparent and X-Profile. --timeout-ms
// bounds the whole exchange (default 5000 for GET, 30000 for POST).
// -v prints the response status and headers to stderr.
//
// Prints the response body to stdout. Exit 0 on a 2xx status, 1 on any
// other status or transport failure (the status line goes to stderr so
// the body stays pipeable).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "net/http.hpp"

namespace {

const char* argString(int argc, char** argv, const char* flag,
                      const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return def;
}

bool argFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

/// Every -H occurrence, split at the first ':' (value whitespace-trimmed
/// on the left, curl-style). A malformed header is a usage error.
bool collectHeaders(int argc, char** argv,
                    std::vector<std::pair<std::string, std::string>>& out) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-H") != 0) continue;
    const std::string h = argv[i + 1];
    const std::size_t colon = h.find(':');
    if (colon == 0 || colon == std::string::npos) {
      std::fprintf(stderr, "error: bad -H header '%s' (want 'Name: value')\n",
                   h.c_str());
      return false;
    }
    std::size_t v = colon + 1;
    while (v < h.size() && h[v] == ' ') ++v;
    out.emplace_back(h.substr(0, colon), h.substr(v));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> <path> [--post <file>] "
                 "[--content-type <ct>] [--timeout-ms <n>] "
                 "[-H \"Name: value\"]... [-v]\n",
                 argv[0]);
    return 2;
  }
  const long port = std::strtol(argv[2], nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port '%s'\n", argv[2]);
    return 2;
  }
  const char* postFile = argString(argc, argv, "--post", nullptr);
  const char* contentType =
      argString(argc, argv, "--content-type", "application/octet-stream");
  const bool verbose = argFlag(argc, argv, "-v");
  const char* timeoutArg = argString(argc, argv, "--timeout-ms", nullptr);
  long timeoutMs = postFile != nullptr ? 30000 : 5000;
  if (timeoutArg != nullptr) {
    char* end = nullptr;
    timeoutMs = std::strtol(timeoutArg, &end, 10);
    if (end == timeoutArg || *end != '\0' || timeoutMs <= 0) {
      std::fprintf(stderr, "error: bad --timeout-ms '%s'\n", timeoutArg);
      return 2;
    }
  }
  std::vector<std::pair<std::string, std::string>> headers;
  if (!collectHeaders(argc, argv, headers)) return 2;
  try {
    hsd::net::HttpResult res;
    if (postFile != nullptr) {
      std::ifstream in(postFile, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", postFile);
        return 2;
      }
      std::ostringstream body;
      body << in.rdbuf();
      res = hsd::net::httpPost(argv[1], std::uint16_t(port), argv[3],
                               body.str(), contentType, headers,
                               int(timeoutMs));
    } else {
      res = hsd::net::httpGet(argv[1], std::uint16_t(port), argv[3],
                              int(timeoutMs), headers);
    }
    if (verbose) {
      std::fprintf(stderr, "< HTTP %d\n", res.status);
      for (const auto& [name, value] : res.headers)
        std::fprintf(stderr, "< %s: %s\n", name.c_str(), value.c_str());
    }
    std::fwrite(res.body.data(), 1, res.body.size(), stdout);
    if (!res.ok()) {
      std::fprintf(stderr, "hsd_scrape: HTTP %d for %s\n", res.status,
                   argv[3]);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hsd_scrape: %s\n", e.what());
    return 1;
  }
}
