// CLI: curl-free HTTP client against the embedded admin server, the
// detection wire plane, or any plain HTTP endpoint — the scrape/POST
// client of tests/tools_smoke.sh and the verify drive steps, built on
// net::httpGet / net::httpPost.
//
//   hsd_scrape <host> <port> <path> [--post <file>] [--content-type <ct>]
//
// Without --post: GET <path>. With --post: POST the file's bytes as the
// request body (--content-type defaults to application/octet-stream —
// right for GDSII; use text/plain for the ASCII layout format).
//
// Prints the response body to stdout. Exit 0 on a 2xx status, 1 on any
// other status or transport failure (the status line goes to stderr so
// the body stays pipeable).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "net/http.hpp"

namespace {

const char* argString(int argc, char** argv, const char* flag,
                      const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> <path> [--post <file>] "
                 "[--content-type <ct>]\n",
                 argv[0]);
    return 2;
  }
  const long port = std::strtol(argv[2], nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port '%s'\n", argv[2]);
    return 2;
  }
  const char* postFile = argString(argc, argv, "--post", nullptr);
  const char* contentType =
      argString(argc, argv, "--content-type", "application/octet-stream");
  try {
    hsd::net::HttpResult res;
    if (postFile != nullptr) {
      std::ifstream in(postFile, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", postFile);
        return 2;
      }
      std::ostringstream body;
      body << in.rdbuf();
      res = hsd::net::httpPost(argv[1], std::uint16_t(port), argv[3],
                               body.str(), contentType);
    } else {
      res = hsd::net::httpGet(argv[1], std::uint16_t(port), argv[3]);
    }
    std::fwrite(res.body.data(), 1, res.body.size(), stdout);
    if (!res.ok()) {
      std::fprintf(stderr, "hsd_scrape: HTTP %d for %s\n", res.status,
                   argv[3]);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hsd_scrape: %s\n", e.what());
    return 1;
  }
}
