// CLI: curl-free HTTP GET against the embedded admin server (or any
// plain HTTP endpoint) — the scrape client of tests/tools_smoke.sh and
// the verify drive steps, built on net::httpGet.
//
//   hsd_scrape <host> <port> <path>
//
// Prints the response body to stdout. Exit 0 on a 2xx status, 1 on any
// other status or transport failure (the status line goes to stderr so
// the body stays pipeable).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/http.hpp"

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: %s <host> <port> <path>\n", argv[0]);
    return 2;
  }
  const long port = std::strtol(argv[2], nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port '%s'\n", argv[2]);
    return 2;
  }
  try {
    const hsd::net::HttpGetResult res =
        hsd::net::httpGet(argv[1], std::uint16_t(port), argv[3]);
    std::fwrite(res.body.data(), 1, res.body.size(), stdout);
    if (!res.ok()) {
      std::fprintf(stderr, "hsd_scrape: HTTP %d for %s\n", res.status,
                   argv[3]);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hsd_scrape: %s\n", e.what());
    return 1;
  }
}
