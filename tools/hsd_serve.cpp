// CLI: drive the async serving front end — feed N concurrent evaluation
// requests of a layout through a DetectionServer and print one aggregate
// SERVE_STATS JSON line (throughput, per-outcome request counts, shared
// stage-cache hit rate, cross-request report identity).
//
//   hsd_serve <model> <layout.gds> [--requests N] [--workers W]
//             [--contexts C] [--threads T] [--deadline-ms D] [--no-cache]
//             [--tile-size S] [--halo H] [--tile-threads K]
//             [--trace-out trace.json] [--metrics-out metrics.prom]
//             [--admin-port P] [--linger-ms L] [--port P]
//             [--max-body-mb M] [--max-queue-depth Q]
//             [--log-out log.jsonl] [--log-level trace|debug|info|warn|error]
//             [--model-stats-out model.json]
//
// --port P opens the detection wire plane (serve::DetectionEndpoint):
// POST /detect on 127.0.0.1:P accepts a layout body and returns the
// report — P = 0 picks an ephemeral port, printed as one "DETECT_PORT
// <port>" line. --max-body-mb caps uploads (413 beyond), and
// --max-queue-depth bounds admission (429 + Retry-After at the bound).
// --requests 0 with --port turns the process into a pure wire server
// for the linger window: no in-process batch, all traffic over HTTP.
//
// --tile-size S makes every request a *tiled* evaluation: the worker
// fans the request's tiles across idle pooled contexts (non-blocking
// borrow, so fan-out can never deadlock the pool) and merges the
// per-tile hits deterministically — reportsIdentical must stay true, and
// repeated requests hit the shared cache tile by tile. --halo/
// --tile-threads as in hsd_detect.
//
// With --deadline-ms, requests whose deadline expires resolve to a typed
// timeout result (counted under "timeout") — the process never crashes on
// an expired request. Repeated submissions of one layout are the serving
// cache's best case: every request after the first should hit the shared
// verdict/screen entries ("cache" counters in the JSON).
//
// --admin-port P starts the embedded HTTP admin server (obs::AdminServer)
// on 127.0.0.1:P — P = 0 picks an ephemeral port, printed as one
// "ADMIN_PORT <port>" line so scripts can scrape it. Endpoints: /metrics
// (Prometheus), /healthz, /readyz (flips unready when the drain starts),
// /statsz (live SERVE_STATS JSON), /tracez (recent spans). --linger-ms
// keeps the process (and admin server) alive that long after the batch
// finishes, so external scrapers get a ready window; a signal cuts the
// linger short.
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, finish every
// queued and in-flight request, then print SERVE_STATS and flush
// --trace-out/--metrics-out before exiting — an interrupted run loses
// neither file.
//
// --trace-out records the whole serving run (named worker threads, one
// queued + one run span per request, per-batch stage spans, cache-lookup
// spans) as Chrome trace-event JSON for Perfetto. --metrics-out writes the
// server's Prometheus text exposition after shutdown.
//
// --log-out writes the structured log ring (obs::LogRecorder) as JSON
// lines at exit; --log-level sets the recording floor (default info).
// The recorder also backs the admin /logz endpoint when --admin-port is
// given — like /tracez, it works without any output file. The server's
// built-in SLO tracker is always mounted on /sloz (and the "slo"
// sections of /statsz and /readyz?degraded).
//
// --model-stats-out enables the model-quality plane (per-cluster SVM
// margin sketches, verdict counters, low-margin captures) and writes the
// JSON dump at exit; with --admin-port the recorder also backs the admin
// /modelz endpoint (and the "model" section of /statsz), which works
// without any output file. When the model carries a drift baseline, the
// per-cluster PSI drift report joins /modelz, /readyz?degraded and the
// dump.
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "gds/gdsii.hpp"
#include "net/http.hpp"
#include "obs/admin.hpp"
#include "obs/trace.hpp"
#include "serve/detect_endpoint.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

extern "C" void onSignal(int sig) { g_signal = sig; }

void installSignalHandlers() {
  struct sigaction sa{};
  sa.sa_handler = &onSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking waits see the interruption
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool hasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

double argDouble(int argc, char** argv, const char* flag, double def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  return def;
}

const char* argString(int argc, char** argv, const char* flag,
                      const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return def;
}

/// Sleep in short slices until `ms` elapse or a signal lands.
void interruptibleSleepMs(double ms) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  while (g_signal == 0 && std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <model> <layout.gds> [--requests N] "
                 "[--workers W] [--contexts C] [--threads T] "
                 "[--deadline-ms D] [--no-cache] [--tile-size S] "
                 "[--halo H] [--tile-threads K] [--trace-out f.json] "
                 "[--metrics-out f.prom] [--admin-port P] [--linger-ms L] "
                 "[--port P] [--max-body-mb M] [--max-queue-depth Q] "
                 "[--log-out f.jsonl] [--log-level L] "
                 "[--model-stats-out F]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream ms(argv[1]);
    if (!ms) {
      std::fprintf(stderr, "error: cannot open model %s\n", argv[1]);
      return 1;
    }
    const core::Detector det = core::Detector::load(ms);
    const Layout layout = gds::readGdsiiFile(argv[2]);

    const std::size_t requests =
        std::size_t(argDouble(argc, argv, "--requests", 8));
    serve::ServerConfig cfg;
    cfg.workers = std::size_t(argDouble(argc, argv, "--workers", 4));
    cfg.contexts = std::size_t(argDouble(argc, argv, "--contexts", 0));
    cfg.threadsPerContext =
        std::size_t(argDouble(argc, argv, "--threads", 2));
    cfg.enableCache = !hasFlag(argc, argv, "--no-cache");
    const double deadlineMs = argDouble(argc, argv, "--deadline-ms", 0.0);
    const char* traceOut = argString(argc, argv, "--trace-out", nullptr);
    const char* metricsOut = argString(argc, argv, "--metrics-out", nullptr);
    const double adminPort = argDouble(argc, argv, "--admin-port", -1.0);
    const double lingerMs = argDouble(argc, argv, "--linger-ms", 0.0);
    const bool adminEnabled = adminPort >= 0.0 && adminPort <= 65535.0;
    // The admin /tracez endpoint needs a recorder even when no trace file
    // was requested; the file is still written only with --trace-out.
    if (traceOut != nullptr || adminEnabled) {
      cfg.tracer = std::make_shared<hsd::obs::TraceRecorder>();
      cfg.tracer->nameThread("hsd_serve-main");
    }
    // Structured logging mirrors the tracer's lifecycle: a --log-out file
    // or a mounted admin /logz both need the recorder.
    const char* logOut = argString(argc, argv, "--log-out", nullptr);
    if (logOut != nullptr || adminEnabled) {
      cfg.log = std::make_shared<hsd::obs::LogRecorder>();
      if (const char* lvl = argString(argc, argv, "--log-level", nullptr)) {
        hsd::obs::LogLevel parsed;
        if (!hsd::obs::parseLogLevel(lvl, parsed)) {
          std::fprintf(stderr, "error: bad --log-level '%s'\n", lvl);
          return 2;
        }
        cfg.log->setMinLevel(parsed);
      }
    }
    // Model-quality plane mirrors the tracer/log lifecycle: a
    // --model-stats-out file or a mounted admin /modelz both need the
    // recorder; the file is written only when the flag was given.
    const char* modelStatsOut =
        argString(argc, argv, "--model-stats-out", nullptr);
    std::shared_ptr<obs::DriftScorer> drift;
    if (modelStatsOut != nullptr || adminEnabled) {
      cfg.modelStats =
          std::make_shared<obs::ModelStatsRecorder>(det.clusterNames());
      if (det.hasBaseline) {
        drift = std::make_shared<obs::DriftScorer>(det.baseline);
        drift->setSource(cfg.modelStats);
      }
    }

    installSignalHandlers();

    core::EvalParams ep;
    ep.extract.clip = det.params.clip;
    ep.removal.clip = det.params.clip;
    ep.tiling.tileSize = Coord(argDouble(argc, argv, "--tile-size", 0.0));
    ep.tiling.halo = Coord(argDouble(argc, argv, "--halo", 0.0));
    ep.tiling.tileThreads =
        std::size_t(argDouble(argc, argv, "--tile-threads", 0.0));

    serve::DetectionServer server(cfg);

    // Detection wire plane: POST /detect bridged to server.submit().
    const double detectPort = argDouble(argc, argv, "--port", -1.0);
    const bool detectEnabled = detectPort >= 0.0 && detectPort <= 65535.0;
    std::unique_ptr<serve::DetectionEndpoint> endpoint;
    std::unique_ptr<net::HttpServer> detectHttp;
    if (detectEnabled) {
      serve::DetectEndpointConfig dcfg;
      dcfg.maxQueueDepth =
          std::size_t(argDouble(argc, argv, "--max-queue-depth", 64));
      endpoint = std::make_unique<serve::DetectionEndpoint>(server, det, dcfg);
      net::HttpServerOptions ho;
      ho.port = std::uint16_t(detectPort);
      ho.maxBodyBytes =
          std::size_t(argDouble(argc, argv, "--max-body-mb", 64)) << 20;
      // Enough handler threads that the wire never starves the workers;
      // surplus requests queue in the transport's bounded accept queue.
      ho.handlerThreads = cfg.workers + 2;
      ho.ioTimeoutMs = 10000;
      detectHttp = std::make_unique<net::HttpServer>(ho);
      endpoint->mount(*detectHttp);
      detectHttp->start();
      std::printf("DETECT_PORT %u\n", unsigned(detectHttp->port()));
      std::fflush(stdout);
    }

    std::unique_ptr<obs::AdminServer> admin;
    if (adminEnabled) {
      obs::AdminOptions ao;
      ao.port = std::uint16_t(adminPort);
      admin = std::make_unique<obs::AdminServer>(ao);
      admin->addMetrics(server.metrics());
      if (endpoint) admin->addMetrics(endpoint->metrics());
      admin->setTracer(cfg.tracer);
      admin->setLog(cfg.log);
      admin->setSlo(server.slo());
      admin->setModelStats(cfg.modelStats);
      admin->setDrift(drift);
      admin->addStatsProvider("serve",
                              [&server] { return server.statsJson(); });
      if (endpoint)
        admin->addStatsProvider(
            "detect", [ep = endpoint.get()] { return ep->statsJson(); });
      admin->addReadiness("serve-accepting",
                          [&server] { return server.accepting(); });
      admin->start();
      // One greppable line; flushed so a pipe/file reader sees it while
      // the batch is still running.
      std::printf("ADMIN_PORT %u\n", unsigned(admin->port()));
      std::fflush(stdout);
    }

    std::optional<std::chrono::steady_clock::duration> timeout;
    if (deadlineMs > 0.0)
      timeout = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(deadlineMs));

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::ServeResult>> futs;
    futs.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i)
      futs.push_back(server.submit(det, layout, ep, timeout));

    // Signal-aware wait: a SIGINT/SIGTERM here starts the graceful drain
    // (stop accepting, finish queued + in-flight) instead of killing the
    // run with its stats and trace unwritten.
    bool interrupted = false;
    for (const auto& f : futs) {
      while (f.wait_for(std::chrono::milliseconds(50)) !=
             std::future_status::ready) {
        if (g_signal != 0) {
          interrupted = true;
          break;
        }
      }
      if (interrupted) break;
    }
    if (interrupted) {
      std::fprintf(stderr,
                   "hsd_serve: signal %d: draining (finishing queued and "
                   "in-flight requests)\n",
                   int(g_signal));
      // Wire plane first: its in-flight handlers block on detection
      // futures that only resolve while the DetectionServer workers are
      // still running — the reverse order would deadlock the drain.
      if (detectHttp) detectHttp->stop();
      server.shutdown();  // drains; every future below is resolved
    }

    std::vector<serve::ServeResult> results;
    results.reserve(requests);
    for (auto& f : futs) results.push_back(f.get());
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    // Concurrent submissions of one layout must agree byte-for-byte; any
    // divergence would mean the shared cache or context reuse leaks state.
    bool identical = true;
    const serve::ServeResult* first = nullptr;
    for (const serve::ServeResult& r : results) {
      if (!r.ok()) continue;
      if (first == nullptr) {
        first = &r;
        continue;
      }
      if (r.result.reported != first->result.reported ||
          r.result.candidateClips != first->result.candidateClips)
        identical = false;
    }

    // Scrape window: the server stays up (readyz "ready", live /metrics,
    // /statsz, /tracez) until the linger elapses or a signal arrives.
    if (!interrupted && lingerMs > 0.0) interruptibleSleepMs(lingerMs);

    // Same drain order as the signal path: stop the wire listener (its
    // in-flight POSTs finish and get their responses), then the workers.
    if (detectHttp) detectHttp->stop();
    server.shutdown();  // idempotent when the drain already ran
    std::printf(
        "SERVE_STATS {\"layout\": \"%s\", \"requests\": %zu, "
        "\"wallSeconds\": %.6f, \"throughputRps\": %.3f, "
        "\"reportsIdentical\": %s, \"interrupted\": %s, \"server\": %s}\n",
        layout.name().c_str(), requests, wall,
        wall > 0.0 ? double(results.size()) / wall : 0.0,
        identical ? "true" : "false", interrupted ? "true" : "false",
        server.statsJson().c_str());
    std::fflush(stdout);
    if (cfg.tracer && traceOut != nullptr) {
      std::ofstream ts(traceOut);
      if (!ts) {
        std::fprintf(stderr, "error: cannot open trace file %s\n", traceOut);
        return 1;
      }
      cfg.tracer->writeJson(ts);
      std::printf("trace: %zu spans (%llu dropped) -> %s\n",
                  cfg.tracer->spanCount(),
                  static_cast<unsigned long long>(cfg.tracer->droppedEvents()),
                  traceOut);
    }
    if (metricsOut != nullptr) {
      std::ofstream ms2(metricsOut);
      if (!ms2) {
        std::fprintf(stderr, "error: cannot open metrics file %s\n",
                     metricsOut);
        return 1;
      }
      ms2 << server.renderPrometheus();
      std::printf("metrics: -> %s\n", metricsOut);
    }
    if (cfg.log && logOut != nullptr) {
      std::ofstream ls(logOut);
      if (!ls) {
        std::fprintf(stderr, "error: cannot open log file %s\n", logOut);
        return 1;
      }
      cfg.log->writeJsonLines(ls);
      std::printf("log: %zu records (%llu dropped) -> %s\n",
                  cfg.log->recordCount(),
                  static_cast<unsigned long long>(cfg.log->droppedRecords()),
                  logOut);
    }
    if (cfg.modelStats && modelStatsOut != nullptr) {
      std::ofstream out(modelStatsOut);
      if (!out) {
        std::fprintf(stderr, "error: cannot open model stats file %s\n",
                     modelStatsOut);
        return 1;
      }
      out << "{\"model\": " << cfg.modelStats->toJson();
      if (drift) out << ", \"drift\": " << drift->sampleAndJson();
      out << "}\n";
      std::printf("model stats: %zu clusters -> %s\n",
                  cfg.modelStats->numSlots(), modelStatsOut);
    }
    if (admin) admin->stop();
    return identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
