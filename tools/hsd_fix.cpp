// CLI: detect-and-correct. Run a trained detector over a layout, confirm
// the reports with the lithography simulator, apply rule-based OPC inside
// each confirmed clip, and write the corrected layout back as GDSII.
//
//   hsd_fix <model> <layout.gds> <out_layout.gds> [--min-width NM]
//           [--min-space NM] [--bias B]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "core/evaluator.hpp"
#include "gds/gdsii.hpp"
#include "litho/opc.hpp"

namespace {

double argDouble(int argc, char** argv, const char* flag, double def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <model> <layout.gds> <out_layout.gds> "
                 "[--min-width NM] [--min-space NM] [--bias B]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream ms(argv[1]);
    if (!ms) {
      std::fprintf(stderr, "error: cannot open model %s\n", argv[1]);
      return 1;
    }
    const core::Detector det = core::Detector::load(ms);
    const Layout layout = gds::readGdsiiFile(argv[2]);

    core::EvalParams ep;
    ep.extract.clip = det.params.clip;
    ep.removal.clip = det.params.clip;
    ep.decisionBias = argDouble(argc, argv, "--bias", 0.0);
    engine::RunContext ctx;
    const core::EvalResult res = core::evaluateLayout(det, layout, ep, ctx);

    litho::OpcRules rules;
    rules.minWidth = Coord(argDouble(argc, argv, "--min-width", 170));
    rules.minSpace = Coord(argDouble(argc, argv, "--min-space", 170));
    const litho::LithoSimulator sim;

    const Layer* l = layout.findLayer(det.params.layer);
    if (l == nullptr) {
      std::fprintf(stderr, "error: layout has no layer %d\n",
                   int(det.params.layer));
      return 1;
    }
    std::vector<Rect> rects = l->rects();
    GridIndex idx(rects, det.params.clip.clipSide);

    // Correct confirmed clips; edits are applied to the affected rects
    // (identified by index) and collected into the output geometry.
    std::map<std::size_t, Rect> edits;
    std::size_t confirmed = 0, fixedCnt = 0;
    for (const ClipWindow& w : res.reported) {
      std::vector<std::size_t> ids = idx.query(w.clip);
      std::vector<Rect> local;
      local.reserve(ids.size());
      for (const std::size_t i : ids)
        local.push_back(rects[i].intersect(w.clip));
      const litho::FixOutcome out =
          litho::detectAndFix(sim, local, w.core, w.clip, rules);
      if (!out.before.hotspot()) continue;
      ++confirmed;
      if (!out.fixed()) continue;
      ++fixedCnt;
      for (std::size_t k = 0; k < ids.size(); ++k) {
        // Merge the corrected piece back: replace the in-window part.
        if (out.opc.corrected[k] != local[k])
          edits[ids[k]] = out.opc.corrected[k].unite(
              rects[ids[k]]);  // conservative: grow-only merge
      }
    }

    Layout corrected(layout.name() + "_opc");
    for (std::size_t i = 0; i < rects.size(); ++i) {
      const auto it = edits.find(i);
      corrected.addRect(det.params.layer,
                        it == edits.end() ? rects[i] : it->second);
    }
    gds::writeGdsiiFile(argv[3], corrected);
    std::printf("%zu reported, %zu litho-confirmed, %zu fixed -> %s\n",
                res.reported.size(), confirmed, fixedCnt, argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
