// CLI: generate a synthetic benchmark to disk.
//
//   hsd_genbench <out_dir> [--bench N] [--seed S] [--hs N] [--nhs N]
//                [--width NM] [--height NM] [--sites N]
//
// Writes <out_dir>/training_clips.txt, <out_dir>/layout.gds and
// <out_dir>/golden_hotspots.txt.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/generator.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"

namespace {

long long argValue(int argc, char** argv, const char* flag, long long def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <out_dir> [--bench 1..5] [--seed S] [--hs N] "
                 "[--nhs N] [--width NM] [--height NM] [--sites N]\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  const auto benchIdx =
      std::size_t(argValue(argc, argv, "--bench", 1) - 1);
  auto specs = data::iccad2012LikeSuite();
  if (benchIdx >= specs.size()) {
    std::fprintf(stderr, "error: --bench must be 1..%zu\n", specs.size());
    return 2;
  }
  data::BenchmarkSpec spec = specs[benchIdx];
  spec.seed = std::uint64_t(argValue(argc, argv, "--seed", (long long)spec.seed));
  spec.targets.hotspots = std::size_t(
      argValue(argc, argv, "--hs", (long long)spec.targets.hotspots));
  spec.targets.nonHotspots = std::size_t(
      argValue(argc, argv, "--nhs", (long long)spec.targets.nonHotspots));
  spec.width = argValue(argc, argv, "--width", spec.width);
  spec.height = argValue(argc, argv, "--height", spec.height);
  spec.sites = std::size_t(
      argValue(argc, argv, "--sites", (long long)spec.sites));

  try {
    const data::Benchmark b = data::generateBenchmark(spec);
    gds::writeClipSetFile(dir + "/training_clips.txt", b.training);
    gds::writeGdsiiFile(dir + "/layout.gds", b.test.layout);
    gds::writeWindowListFile(dir + "/golden_hotspots.txt",
                             b.test.actualHotspots, ClipParams{});
    std::size_t hs = 0;
    for (const Clip& c : b.training.clips)
      hs += c.label() == Label::kHotspot;
    std::printf("%s: %zu training clips (%zu hs / %zu nhs), layout %.0f "
                "um^2, %zu golden hotspots\n",
                b.name.c_str(), b.training.clips.size(), hs,
                b.training.clips.size() - hs, b.test.layout.areaUm2(),
                b.test.actualHotspots.size());
    std::printf("wrote %s/{training_clips.txt, layout.gds, "
                "golden_hotspots.txt}\n",
                dir.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
