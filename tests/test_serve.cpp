// Serving-level tests (ctest label: serve). Pins the DetectionServer
// contract:
//  - the same layout submitted serially vs. concurrently produces
//    byte-identical canonical reports (shared cache + context reuse leak
//    no state between requests);
//  - a repeated layout gets cross-request cache hits (the second request
//    recomputes nothing);
//  - deadline-expired requests resolve to a typed kTimeout result — both
//    the aged-out-in-queue and the cancelled-mid-run paths — and the
//    pooled context that served a timed-out run serves the next request
//    cleanly (resetCancel-on-checkin regression);
//  - callbacks fire, shutdown rejects new work, aggregate stats add up.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "engine/run_context.hpp"
#include "serve/server.hpp"

namespace hsd::serve {
namespace {

const tests::DetectorFixture& fx() { return tests::detectorFixture(); }

/// Canonical report of a plain (serverless) single-threaded evaluation —
/// the baseline every served result must match byte-for-byte.
const std::string& baselineReport() {
  static const std::string report = [] {
    engine::RunContext ctx(1);
    return tests::canonicalReport(
        core::evaluateLayout(fx().detector, fx().test.layout,
                             core::EvalParams{}, ctx));
  }();
  return report;
}

TEST(DetectionServer, SerialSubmissionsMatchBaseline) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.threadsPerContext = 2;
  DetectionServer server(cfg);
  for (int i = 0; i < 3; ++i) {
    const ServeResult r =
        server.submit(fx().detector, fx().test.layout, core::EvalParams{})
            .get();
    ASSERT_EQ(r.status, RequestStatus::kOk) << toString(r.status);
    EXPECT_EQ(tests::canonicalReport(r.result), baselineReport())
        << "serial request " << i;
    EXPECT_GE(r.queueSeconds, 0.0);
    EXPECT_GT(r.runSeconds, 0.0);
  }
  const DetectionServer::Stats s = server.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.ok, 3u);
  EXPECT_EQ(s.completed, 3u);
}

TEST(DetectionServer, ConcurrentSubmissionsByteIdenticalToSerial) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.threadsPerContext = 2;
  DetectionServer server(cfg);
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(
        server.submit(fx().detector, fx().test.layout, core::EvalParams{}));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const ServeResult r = futs[i].get();
    ASSERT_EQ(r.status, RequestStatus::kOk) << toString(r.status);
    EXPECT_EQ(tests::canonicalReport(r.result), baselineReport())
        << "concurrent request " << i;
  }
  EXPECT_EQ(server.stats().ok, 8u);
}

TEST(DetectionServer, RepeatedLayoutHitsSharedCacheAcrossRequests) {
  ServerConfig cfg;
  cfg.workers = 1;  // strict order: first populates, second must hit
  cfg.threadsPerContext = 2;
  DetectionServer server(cfg);
  const ServeResult first =
      server.submit(fx().detector, fx().test.layout, core::EvalParams{}).get();
  const ServeResult second =
      server.submit(fx().detector, fx().test.layout, core::EvalParams{}).get();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Per-request counters: the cold request misses, the warm one serves
  // every window from the shared cache and recomputes nothing.
  EXPECT_GT(first.cache("eval/verdict").misses, 0u);
  EXPECT_EQ(first.cache("eval/verdict").hits, 0u);
  EXPECT_EQ(second.cache("eval/verdict").misses, 0u);
  EXPECT_GT(second.cache("eval/verdict").hits, 0u);
  EXPECT_EQ(second.cache("extract/screen").misses, 0u);
  EXPECT_GT(second.cache("extract/screen").hits, 0u);
  EXPECT_EQ(tests::canonicalReport(second.result), baselineReport());

  // Aggregate view: cross-request hits show up in stats and the JSON.
  const DetectionServer::Stats s = server.stats();
  EXPECT_GT(s.cache.hits, 0u);
  const std::string json = server.statsJson();
  EXPECT_NE(json.find("\"hitRate\""), std::string::npos);
  EXPECT_EQ(json.find("\"hitRate\": 0.000000"), std::string::npos);
}

TEST(DetectionServer, CacheDisabledStillServesIdenticalResults) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.enableCache = false;
  DetectionServer server(cfg);
  EXPECT_EQ(server.cache(), nullptr);
  const ServeResult r =
      server.submit(fx().detector, fx().test.layout, core::EvalParams{}).get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(tests::canonicalReport(r.result), baselineReport());
  EXPECT_EQ(server.stats().cache.hits, 0u);
}

TEST(DetectionServer, AlreadyExpiredDeadlineIsTypedTimeout) {
  ServerConfig cfg;
  cfg.workers = 2;
  DetectionServer server(cfg);
  // A zero timeout is expired by the time a worker dequeues it: the
  // request must resolve (no exception, no crash) with kTimeout and must
  // never have started evaluating.
  const ServeResult r =
      server
          .submit(fx().detector, fx().test.layout, core::EvalParams{},
                  std::chrono::steady_clock::duration::zero())
          .get();
  EXPECT_EQ(r.status, RequestStatus::kTimeout);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.runSeconds, 0.0);
  EXPECT_EQ(server.stats().timeout, 1u);
}

TEST(DetectionServer, MidRunDeadlineTimesOutAndContextServesNextRequest) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.contexts = 1;  // the timed-out context is necessarily the reused one
  cfg.threadsPerContext = 4;
  DetectionServer server(cfg);
  // 200µs is far below one evaluation of the fixture layout but (usually)
  // above queue latency, exercising the cancel-mid-run path; either way
  // the result must be a typed timeout.
  const ServeResult timedOut =
      server
          .submit(fx().detector, fx().test.layout, core::EvalParams{},
                  std::chrono::microseconds(200))
          .get();
  EXPECT_EQ(timedOut.status, RequestStatus::kTimeout);

  // Cancellation-reuse regression: the pooled context just aborted a run;
  // checkin must have reset it so this request runs cleanly and matches
  // the baseline.
  const ServeResult ok =
      server.submit(fx().detector, fx().test.layout, core::EvalParams{}).get();
  ASSERT_EQ(ok.status, RequestStatus::kOk) << toString(ok.status);
  EXPECT_EQ(tests::canonicalReport(ok.result), baselineReport());
}

TEST(DetectionServer, MixedDeadlinesNeverPoisonHealthyRequests) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.contexts = 2;
  cfg.threadsPerContext = 2;
  DetectionServer server(cfg);
  std::vector<std::future<ServeResult>> doomed;
  std::vector<std::future<ServeResult>> healthy;
  for (int i = 0; i < 4; ++i) {
    doomed.push_back(server.submit(fx().detector, fx().test.layout,
                                   core::EvalParams{},
                                   std::chrono::microseconds(100)));
    healthy.push_back(
        server.submit(fx().detector, fx().test.layout, core::EvalParams{}));
  }
  for (auto& f : doomed) {
    const ServeResult r = f.get();
    EXPECT_TRUE(r.status == RequestStatus::kTimeout ||
                r.status == RequestStatus::kOk)
        << toString(r.status);
  }
  for (auto& f : healthy) {
    const ServeResult r = f.get();
    ASSERT_EQ(r.status, RequestStatus::kOk) << toString(r.status);
    EXPECT_EQ(tests::canonicalReport(r.result), baselineReport());
  }
}

TEST(DetectionServer, CallbackFiresBeforeFutureResolves) {
  ServerConfig cfg;
  cfg.workers = 1;
  DetectionServer server(cfg);
  std::atomic<int> called{0};
  const ServeResult r =
      server
          .submit(fx().detector, fx().test.layout, core::EvalParams{}, {},
                  [&called](const ServeResult& cb) {
                    called += cb.ok() ? 1 : 0;
                    throw std::runtime_error("callback throws are swallowed");
                  })
          .get();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(called.load(), 1);
}

TEST(DetectionServer, ShutdownRejectsNewWorkAndIsIdempotent) {
  ServerConfig cfg;
  cfg.workers = 2;
  DetectionServer server(cfg);
  server.shutdown();
  server.shutdown();  // idempotent
  const ServeResult r =
      server.submit(fx().detector, fx().test.layout, core::EvalParams{}).get();
  EXPECT_EQ(r.status, RequestStatus::kRejected);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(DetectionServer, MetricsAndTraceAccountForEveryRequest) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.threadsPerContext = 2;
  cfg.tracer = std::make_shared<obs::TraceRecorder>();
  DetectionServer server(cfg);
  constexpr std::size_t kN = 4;
  std::vector<std::future<ServeResult>> futs;
  for (std::size_t i = 0; i < kN; ++i)
    futs.push_back(
        server.submit(fx().detector, fx().test.layout, core::EvalParams{}));
  for (auto& f : futs) ASSERT_EQ(f.get().status, RequestStatus::kOk);
  server.shutdown();

  // Every submitted request lands in both latency histograms — the
  // _count == submitted invariant the Prometheus surface promises.
  EXPECT_EQ(server.queueLatency().count(), kN);
  EXPECT_EQ(server.runLatency().count(), kN);
  const std::string prom = server.renderPrometheus();
  EXPECT_NE(prom.find("hsd_serve_requests_submitted_total 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("hsd_serve_requests_total{status=\"ok\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("hsd_serve_run_seconds_count 4\n"), std::string::npos);
  EXPECT_NE(prom.find("hsd_serve_queue_seconds_count 4\n"),
            std::string::npos);
  // Gauges settle back to zero once the queue drains.
  EXPECT_NE(prom.find("hsd_serve_queue_depth 0\n"), std::string::npos);
  EXPECT_NE(prom.find("hsd_serve_inflight_requests 0\n"), std::string::npos);
  // Repeated submissions of one layout must hit the shared cache, and the
  // per-request deltas must roll up into the server-level counter.
  const char* const hitsLine = "\nhsd_serve_cache_hits_total ";
  const std::size_t hitsPos = prom.find(hitsLine);
  ASSERT_NE(hitsPos, std::string::npos);
  EXPECT_GT(std::atoll(prom.c_str() + hitsPos + std::strlen(hitsLine)), 0);
  // statsJson carries the same percentiles for the SERVE_STATS line.
  EXPECT_NE(server.statsJson().find("\"latency\""), std::string::npos);

  // The trace holds one queued and one run span per request, each
  // annotated with its 1-based request id, on named worker threads.
  std::vector<std::uint64_t> queuedIds;
  std::size_t runSpans = 0;
  for (const auto& se : cfg.tracer->snapshot()) {
    if (std::strcmp(se.event.cat, "serve") != 0) continue;
    if (std::strcmp(se.event.name, "serve/queued") == 0)
      queuedIds.push_back(se.event.a0.value);
    if (std::strcmp(se.event.name, "serve/run") == 0) {
      ++runSpans;
      ASSERT_NE(se.event.s0.key, nullptr);
      EXPECT_STREQ(se.event.s0.value, "ok");
    }
  }
  std::sort(queuedIds.begin(), queuedIds.end());
  EXPECT_EQ(queuedIds, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(runSpans, kN);
  const std::vector<std::string> names = cfg.tracer->threadNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "serve-worker-0"),
            names.end());
}

TEST(DetectionServer, StatusNamesAreStable) {
  EXPECT_STREQ(toString(RequestStatus::kOk), "ok");
  EXPECT_STREQ(toString(RequestStatus::kTimeout), "timeout");
  EXPECT_STREQ(toString(RequestStatus::kCancelled), "cancelled");
  EXPECT_STREQ(toString(RequestStatus::kError), "error");
  EXPECT_STREQ(toString(RequestStatus::kRejected), "rejected");
}

}  // namespace
}  // namespace hsd::serve
