// MTCG construction tests: tile counts, constraint edges, and diagonal
// edges on hand-analyzed patterns.
#include <gtest/gtest.h>

#include "core/mtcg.hpp"

namespace hsd::core {
namespace {

CorePattern pattern(Coord w, Coord h, std::vector<Rect> rects) {
  CorePattern p;
  p.w = w;
  p.h = h;
  p.rects = std::move(rects);
  return p;
}

std::size_t edgeCount(const Mtcg& g) {
  std::size_t n = 0;
  for (const auto& v : g.out) n += v.size();
  return n;
}

TEST(Mtcg, EmptyPatternOneTileNoEdges) {
  const Mtcg g = buildCh(pattern(100, 100, {}));
  ASSERT_EQ(g.tiles.size(), 1u);
  EXPECT_FALSE(g.tiles[0].isBlock);
  EXPECT_EQ(edgeCount(g), 0u);
  EXPECT_TRUE(g.diagonals.empty());
  EXPECT_EQ(g.boundaryTouches(0), 4);
}

TEST(Mtcg, CenteredBlockCh) {
  const Mtcg g = buildCh(pattern(30, 30, {{10, 10, 20, 20}}));
  // Horizontal tiling: bottom strip, left-mid, block, right-mid, top = 5.
  ASSERT_EQ(g.tiles.size(), 5u);
  // Ch edges: left->block, block->right in the middle band.
  EXPECT_EQ(edgeCount(g), 2u);
  // Find the block tile and check its neighborhood.
  std::size_t blockIdx = g.tiles.size();
  for (std::size_t i = 0; i < g.tiles.size(); ++i)
    if (g.tiles[i].isBlock) blockIdx = i;
  ASSERT_LT(blockIdx, g.tiles.size());
  EXPECT_EQ(g.in[blockIdx].size(), 1u);
  EXPECT_EQ(g.out[blockIdx].size(), 1u);
  EXPECT_EQ(g.boundaryTouches(blockIdx), 0);
}

TEST(Mtcg, CenteredBlockCv) {
  const Mtcg g = buildCv(pattern(30, 30, {{10, 10, 20, 20}}));
  ASSERT_EQ(g.tiles.size(), 5u);
  EXPECT_EQ(edgeCount(g), 2u);  // below->block, block->above
}

TEST(Mtcg, ChEdgesAreLeftToRight) {
  const Mtcg g = buildCh(pattern(30, 10, {{10, 0, 20, 10}}));
  // One band: space | block | space.
  ASSERT_EQ(g.tiles.size(), 3u);
  for (std::size_t i = 0; i < g.tiles.size(); ++i)
    for (const std::size_t j : g.out[i])
      EXPECT_LT(g.tiles[i].box.lo.x, g.tiles[j].box.lo.x);
}

TEST(Mtcg, DiagonalBlocksDetected) {
  // Two blocks in strict NE relation with an empty corner region.
  const Mtcg g =
      buildCh(pattern(100, 100, {{0, 0, 30, 30}, {60, 60, 100, 100}}));
  bool found = false;
  for (const auto& [i, j] : g.diagonals)
    if (g.tiles[i].isBlock && g.tiles[j].isBlock) found = true;
  EXPECT_TRUE(found);
}

TEST(Mtcg, DiagonalBlockedByInterveningTile) {
  // A third block inside the corner region kills the diagonal relation.
  const Mtcg g = buildCh(pattern(
      100, 100, {{0, 0, 30, 30}, {60, 60, 100, 100}, {35, 35, 55, 55}}));
  for (const auto& [i, j] : g.diagonals) {
    if (!g.tiles[i].isBlock) continue;
    // The corner pair (0..30) x (60..100) must not be directly linked.
    const bool cornerPair =
        (g.tiles[i].box.hi.x <= 30 && g.tiles[j].box.lo.x >= 60) ||
        (g.tiles[j].box.hi.x <= 30 && g.tiles[i].box.lo.x >= 60);
    EXPECT_FALSE(cornerPair && g.tiles[i].box.hi.y <= 30 &&
                 g.tiles[j].box.lo.y >= 60);
  }
}

TEST(Mtcg, SoutheastDiagonalAlsoDetected) {
  const Mtcg g =
      buildCh(pattern(100, 100, {{0, 70, 30, 100}, {60, 0, 100, 30}}));
  bool found = false;
  for (const auto& [i, j] : g.diagonals)
    if (g.tiles[i].isBlock && g.tiles[j].isBlock) found = true;
  EXPECT_TRUE(found);
}

TEST(Mtcg, CvHasNoDiagonals) {
  const Mtcg g =
      buildCv(pattern(100, 100, {{0, 0, 30, 30}, {60, 60, 100, 100}}));
  EXPECT_TRUE(g.diagonals.empty());
}

TEST(Mtcg, EdgesRequireProjectionOverlap) {
  // Two blocks side by side but at different heights, separated by space:
  // no direct Ch edge between the blocks.
  const Mtcg g =
      buildCh(pattern(100, 100, {{0, 0, 20, 20}, {40, 60, 60, 80}}));
  for (std::size_t i = 0; i < g.tiles.size(); ++i) {
    if (!g.tiles[i].isBlock) continue;
    for (const std::size_t j : g.out[i]) EXPECT_FALSE(g.tiles[j].isBlock);
    for (const std::size_t j : g.in[i]) EXPECT_FALSE(g.tiles[j].isBlock);
  }
}

TEST(Mtcg, BoundaryTouchCounts) {
  const Mtcg g = buildCh(pattern(100, 100, {{0, 0, 100, 20}}));
  for (std::size_t i = 0; i < g.tiles.size(); ++i) {
    if (g.tiles[i].isBlock)
      EXPECT_EQ(g.boundaryTouches(i), 3);  // bottom, left, right
    else
      EXPECT_EQ(g.boundaryTouches(i), 3);  // top, left, right
  }
}

}  // namespace
}  // namespace hsd::core
