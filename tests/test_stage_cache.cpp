// Stage-cache tests (ctest label: cache). Two layers of coverage:
//
//  1. StageCache unit behavior: hit/miss/evict accounting, LRU order,
//     refresh semantics, capacity clamping, type safety of lookups.
//  2. Cached evaluation runs: a warm evaluateLayout() over an attached
//     cache must hit on every unchanged window and return byte-identical
//     reports to a cold run (threads=1 and threads=8); a single-rect edit
//     invalidates only the windows that see the rect; a parameter change
//     invalidates the verdict cache but not the screen cache; a tiny
//     capacity evicts without ever changing results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "engine/cache.hpp"
#include "engine/run_context.hpp"
#include "layout/layout.hpp"

namespace hsd::engine {
namespace {

CacheKey key(std::uint64_t geometry) {
  return CacheKey::of("test/stage", /*config=*/42, geometry);
}

TEST(StageCacheUnit, MissThenInsertThenHit) {
  StageCache cache(8);
  EXPECT_EQ(cache.find<int>(key(1)), std::nullopt);
  EXPECT_EQ(cache.insert(key(1), 7), 0u);
  const auto got = cache.find<int>(key(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);

  const StageCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(StageCacheUnit, FullTripleParticipatesInEquality) {
  // Keys differing in any one component are distinct entries even if a
  // bucket collision occurs.
  StageCache cache(8);
  cache.insert(CacheKey{1, 2, 3}, 10);
  EXPECT_EQ(cache.find<int>(CacheKey{9, 2, 3}), std::nullopt);
  EXPECT_EQ(cache.find<int>(CacheKey{1, 9, 3}), std::nullopt);
  EXPECT_EQ(cache.find<int>(CacheKey{1, 2, 9}), std::nullopt);
  EXPECT_EQ(cache.find<int>(CacheKey{1, 2, 3}).value_or(-1), 10);
}

TEST(StageCacheUnit, TypeMismatchIsAMiss) {
  StageCache cache(8);
  cache.insert(key(5), 123);
  EXPECT_EQ(cache.find<double>(key(5)), std::nullopt);
  EXPECT_EQ(cache.find<int>(key(5)).value_or(-1), 123);
}

TEST(StageCacheUnit, RefreshKeepsOneEntry) {
  StageCache cache(8);
  EXPECT_EQ(cache.insert(key(1), 1), 0u);
  EXPECT_EQ(cache.insert(key(1), 2), 0u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find<int>(key(1)).value_or(-1), 2);
}

TEST(StageCacheUnit, LruEvictsLeastRecentlyUsed) {
  StageCache cache(2);
  cache.insert(key(1), 1);
  cache.insert(key(2), 2);
  // Touch key 1 so key 2 becomes the eviction victim.
  EXPECT_TRUE(cache.find<int>(key(1)).has_value());
  EXPECT_EQ(cache.insert(key(3), 3), 1u);

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.find<int>(key(1)).has_value());
  EXPECT_EQ(cache.find<int>(key(2)), std::nullopt);
  EXPECT_TRUE(cache.find<int>(key(3)).has_value());
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(StageCacheUnit, ZeroCapacityClampsToOne) {
  StageCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.insert(key(1), 1);
  EXPECT_EQ(cache.insert(key(2), 2), 1u);  // evicts key 1
  EXPECT_EQ(cache.size(), 1u);
}

TEST(StageCacheUnit, ConcurrentHammerTinyCapacityKeepsEntriesIntact) {
  // Multi-request serving audit: many threads hammering a tiny cache so
  // eviction continuously races hits on the same keys. Values are a pure
  // function of the key, so any lookup that returns a dangling, partial,
  // or foreign entry is detectable as a value mismatch. Run under the
  // TSan build (ctest -L cache) this also vets the locking itself.
  StageCache cache(16);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 4000;
  constexpr std::uint64_t kKeys = 64;  // 4x capacity: constant eviction
  const auto valueOf = [](std::uint64_t g) {
    return g * 0x9e3779b97f4a7c15ull + 17;
  };
  std::atomic<std::size_t> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        const std::uint64_t g = (t * 31 + op * 7) % kKeys;
        const CacheKey k = key(g);
        if (const auto got = cache.find<std::uint64_t>(k)) {
          if (*got != valueOf(g))
            corrupt.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.insert(k, valueOf(g));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(corrupt.load(), 0u);
  EXPECT_LE(cache.size(), 16u);
  const StageCache::Counters c = cache.counters();
  EXPECT_GT(c.evictions, 0u);  // capacity pressure actually occurred
  EXPECT_EQ(c.hits + c.misses, kThreads * kOpsPerThread);
}

TEST(StageCacheUnit, ClearDropsEntriesKeepsLifetimeCounters) {
  StageCache cache(8);
  cache.insert(key(1), 1);
  EXPECT_TRUE(cache.find<int>(key(1)).has_value());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  const StageCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);  // lifetime totals survive a clear
  EXPECT_EQ(c.entries, 0u);
}

// ---------------------------------------------------------------------------
// Cached evaluation runs. All tests share one trained fixture (memoized in
// tests/common.hpp); each builds its own cache/context so counters are
// isolated per test.

const tests::DetectorFixture& fx() { return tests::detectorFixture(); }

core::EvalResult evalWith(std::shared_ptr<StageCache> cache,
                          const Layout& layout, const core::EvalParams& p,
                          std::size_t threads) {
  RunContext ctx(threads);
  if (cache) ctx.attachCache(std::move(cache));
  return core::evaluateLayout(fx().detector, layout, p, ctx);
}

// Same as evalWith but reports the context's cache counters.
struct CountedRun {
  core::EvalResult result;
  CacheStats screen;
  CacheStats verdict;
  std::string statsJson;
};

CountedRun countedEval(std::shared_ptr<StageCache> cache, const Layout& layout,
                       const core::EvalParams& p, std::size_t threads) {
  RunContext ctx(threads);
  if (cache) ctx.attachCache(std::move(cache));
  CountedRun run;
  run.result = core::evaluateLayout(fx().detector, layout, p, ctx);
  run.screen = ctx.stats().cache("extract/screen");
  run.verdict = ctx.stats().cache("eval/verdict");
  run.statsJson = ctx.stats().toJson();
  return run;
}

TEST(StageCacheEval, WarmRunHitsEverythingAndMatchesColdByteForByte) {
  const core::EvalParams p;
  const core::EvalResult plain = evalWith(nullptr, fx().test.layout, p, 1);

  auto cache = std::make_shared<StageCache>();
  const CountedRun cold = countedEval(cache, fx().test.layout, p, 1);
  const CountedRun warm = countedEval(cache, fx().test.layout, p, 1);

  // The cold run populates; the warm run must not recompute anything.
  EXPECT_GT(cold.verdict.misses, 0u);
  EXPECT_EQ(warm.screen.misses, 0u);
  EXPECT_EQ(warm.verdict.misses, 0u);
  EXPECT_GT(warm.screen.hits, 0u);
  EXPECT_GT(warm.verdict.hits, 0u);

  // Caching must never change results: plain == cold == warm, byte-wise.
  EXPECT_EQ(tests::canonicalReport(plain), tests::canonicalReport(cold.result));
  EXPECT_EQ(tests::canonicalReport(cold.result),
            tests::canonicalReport(warm.result));

  // Counters are surfaced in the EngineStats JSON dump.
  EXPECT_NE(warm.statsJson.find("\"cache/extract/screen\""), std::string::npos);
  EXPECT_NE(warm.statsJson.find("\"cache/eval/verdict\""), std::string::npos);
}

TEST(StageCacheEval, WarmRunByteIdenticalAcrossThreadCounts) {
  const core::EvalParams p;
  const std::string plain =
      tests::canonicalReport(evalWith(nullptr, fx().test.layout, p, 1));

  auto cache = std::make_shared<StageCache>();
  const CountedRun cold8 = countedEval(cache, fx().test.layout, p, 8);
  const CountedRun warm8 = countedEval(cache, fx().test.layout, p, 8);
  const CountedRun warm1 = countedEval(cache, fx().test.layout, p, 1);

  EXPECT_EQ(warm8.verdict.misses, 0u);
  EXPECT_EQ(warm1.verdict.misses, 0u);
  EXPECT_EQ(plain, tests::canonicalReport(cold8.result));
  EXPECT_EQ(plain, tests::canonicalReport(warm8.result));
  EXPECT_EQ(plain, tests::canonicalReport(warm1.result));
}

/// Rebuild `src` from its decomposed rects, translating the rect at
/// `editIndex` on layer 1 by (dx, dy). editIndex < 0 copies unchanged.
Layout rebuiltWithEdit(const Layout& src, std::ptrdiff_t editIndex, Coord dx,
                       Coord dy) {
  Layout out(src.name());
  for (const auto& [id, layer] : src.layers()) {
    const std::vector<Rect>& rects = layer.rects();
    for (std::size_t i = 0; i < rects.size(); ++i) {
      Rect r = rects[i];
      if (id == 1 && std::ptrdiff_t(i) == editIndex) {
        r = Rect{r.lo.x + dx, r.lo.y + dy, r.hi.x + dx, r.hi.y + dy};
      }
      out.addRect(id, r);
    }
  }
  return out;
}

TEST(StageCacheEval, SingleRectEditRecomputesOnlyAffectedWindows) {
  const core::EvalParams p;
  const Layout base = rebuiltWithEdit(fx().test.layout, -1, 0, 0);
  const Layout edited = rebuiltWithEdit(fx().test.layout, 0, 160, 0);

  auto cache = std::make_shared<StageCache>();
  const CountedRun cold = countedEval(cache, base, p, 2);
  const CountedRun warm = countedEval(cache, edited, p, 2);

  // Only windows whose content sees the moved rect may miss; the bulk of
  // the layout (windows far from the edit) must be served from cache.
  EXPECT_GT(warm.verdict.misses, 0u);
  EXPECT_GT(warm.verdict.hits, 0u);
  EXPECT_LT(warm.verdict.misses, warm.verdict.hits);
  EXPECT_LT(warm.verdict.misses, cold.verdict.misses);

  // The incremental result is byte-identical to a from-scratch evaluation
  // of the edited layout.
  const core::EvalResult fresh = evalWith(nullptr, edited, p, 2);
  EXPECT_EQ(tests::canonicalReport(warm.result), tests::canonicalReport(fresh));
}

TEST(StageCacheEval, ParameterChangeInvalidatesVerdictsNotScreening) {
  core::EvalParams p;
  auto cache = std::make_shared<StageCache>();
  const CountedRun cold = countedEval(cache, fx().test.layout, p, 2);
  ASSERT_GT(cold.verdict.misses, 0u);

  // decisionBias feeds the verdict fingerprint but not the screen one, so
  // a bias change recomputes every verdict while screening still hits.
  core::EvalParams biased = p;
  biased.decisionBias = 0.25;
  const CountedRun warm = countedEval(cache, fx().test.layout, biased, 2);
  EXPECT_EQ(warm.verdict.hits, 0u);
  EXPECT_GT(warm.verdict.misses, 0u);
  EXPECT_EQ(warm.screen.misses, 0u);
  EXPECT_GT(warm.screen.hits, 0u);

  // And the biased cached run matches a biased uncached run.
  const core::EvalResult fresh = evalWith(nullptr, fx().test.layout, biased, 2);
  EXPECT_EQ(tests::canonicalReport(warm.result), tests::canonicalReport(fresh));
}

TEST(StageCacheEval, TinyCapacityEvictsWithoutChangingResults) {
  const core::EvalParams p;
  auto cache = std::make_shared<StageCache>(32);
  const CountedRun first = countedEval(cache, fx().test.layout, p, 2);
  const CountedRun second = countedEval(cache, fx().test.layout, p, 2);

  EXPECT_LE(cache->size(), 32u);
  EXPECT_GT(cache->counters().evictions, 0u);
  EXPECT_GT(first.screen.misses + first.verdict.misses, 32u);

  const core::EvalResult plain = evalWith(nullptr, fx().test.layout, p, 2);
  EXPECT_EQ(tests::canonicalReport(plain), tests::canonicalReport(first.result));
  EXPECT_EQ(tests::canonicalReport(plain),
            tests::canonicalReport(second.result));
}

}  // namespace
}  // namespace hsd::engine
