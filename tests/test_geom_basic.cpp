// Unit tests for points, rects and intervals.
#include <gtest/gtest.h>

#include "geom/interval.hpp"
#include "geom/rect.hpp"
#include "geom/types.hpp"

namespace hsd {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4};
  const Point b{-1, 2};
  EXPECT_EQ(a + b, Point(2, 6));
  EXPECT_EQ(a - b, Point(4, 2));
  EXPECT_EQ(manhattan(a, b), 4 + 2);
  EXPECT_EQ(manhattan(b, a), 6);
}

TEST(Rect, NormalizingConstructor) {
  const Rect r{10, 20, 2, 5};
  EXPECT_EQ(r.lo, Point(2, 5));
  EXPECT_EQ(r.hi, Point(10, 20));
  EXPECT_EQ(r.width(), 8);
  EXPECT_EQ(r.height(), 15);
  EXPECT_EQ(r.area(), 120);
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(r.empty());
}

TEST(Rect, DegenerateIsEmptyButValid) {
  const Rect line{0, 0, 10, 0};
  EXPECT_TRUE(line.valid());
  EXPECT_TRUE(line.empty());
  EXPECT_EQ(line.area(), 0);
}

TEST(Rect, ContainsPointIncludesBoundary) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_TRUE(r.contains(Point{5, 5}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_FALSE(r.contains(Point{5, -1}));
}

TEST(Rect, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{0, 0, 10, 10}));
  EXPECT_TRUE(outer.contains(Rect{2, 2, 8, 8}));
  EXPECT_FALSE(outer.contains(Rect{2, 2, 11, 8}));
}

TEST(Rect, OverlapVsTouch) {
  const Rect a{0, 0, 10, 10};
  const Rect edge{10, 0, 20, 10};   // shares the x=10 edge
  const Rect corner{10, 10, 20, 20};  // shares one corner
  const Rect inside{5, 5, 15, 15};
  EXPECT_FALSE(a.overlaps(edge));
  EXPECT_TRUE(a.touches(edge));
  EXPECT_FALSE(a.overlaps(corner));
  EXPECT_TRUE(a.touches(corner));
  EXPECT_TRUE(a.overlaps(inside));
  EXPECT_EQ(a.overlapArea(inside), 25);
  EXPECT_EQ(a.overlapArea(edge), 0);
}

TEST(Rect, IntersectAndUnite) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, -5, 20, 5};
  const Rect i = a.intersect(b);
  EXPECT_EQ(i, Rect(5, 0, 10, 5));
  EXPECT_EQ(a.unite(b), Rect(0, -5, 20, 10));
}

TEST(Rect, IntersectDisjointIsInvalid) {
  const Rect a{0, 0, 10, 10};
  const Rect b{20, 20, 30, 30};
  EXPECT_FALSE(a.intersect(b).valid());
}

TEST(Rect, TranslateInflate) {
  const Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.translated({3, -2}), Rect(3, -2, 13, 8));
  EXPECT_EQ(r.inflated(5), Rect(-5, -5, 15, 15));
  EXPECT_EQ(r.inflated(-2), Rect(2, 2, 8, 8));
}

TEST(Rect, BoundingBoxOfRange) {
  const std::vector<Rect> rs{{0, 0, 1, 1}, {5, -3, 6, 0}, {2, 2, 3, 9}};
  const auto bb = boundingBox(rs.begin(), rs.end());
  ASSERT_TRUE(bb.has_value());
  EXPECT_EQ(*bb, Rect(0, -3, 6, 9));
  const std::vector<Rect> empty;
  EXPECT_FALSE(boundingBox(empty.begin(), empty.end()).has_value());
}

TEST(Interval, MergeOverlappingAndTouching) {
  std::vector<Interval> iv{{5, 8}, {0, 2}, {2, 4}, {7, 10}, {20, 21}};
  const auto merged = mergeIntervals(std::move(iv));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], Interval(0, 4));
  EXPECT_EQ(merged[1], Interval(5, 10));
  EXPECT_EQ(merged[2], Interval(20, 21));
  EXPECT_EQ(totalLength(merged), 4 + 5 + 1);
}

TEST(Interval, MergeDropsEmpty) {
  std::vector<Interval> iv{{3, 3}, {5, 4}, {0, 1}};
  const auto merged = mergeIntervals(std::move(iv));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], Interval(0, 1));
}

TEST(Interval, Complement) {
  const std::vector<Interval> iv{{2, 4}, {6, 8}};
  const auto comp = complementIntervals(iv, {0, 10});
  ASSERT_EQ(comp.size(), 3u);
  EXPECT_EQ(comp[0], Interval(0, 2));
  EXPECT_EQ(comp[1], Interval(4, 6));
  EXPECT_EQ(comp[2], Interval(8, 10));
}

TEST(Interval, ComplementOfEmptyIsDomain) {
  const auto comp = complementIntervals({}, {3, 7});
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(comp[0], Interval(3, 7));
}

TEST(Interval, ComplementClipsOutOfDomain) {
  const std::vector<Interval> iv{{-5, 2}, {8, 15}};
  const auto comp = complementIntervals(iv, {0, 10});
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(comp[0], Interval(2, 8));
}

TEST(Interval, ComplementFullCoverIsEmpty) {
  const std::vector<Interval> iv{{0, 10}};
  EXPECT_TRUE(complementIntervals(iv, {0, 10}).empty());
}

}  // namespace
}  // namespace hsd
