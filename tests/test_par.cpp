// Thread pool and parallelFor tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "par/thread_pool.hpp"

namespace hsd {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t(1), std::size_t(3),
                                    std::size_t(8)}) {
    std::vector<std::atomic<int>> hits(500);
    parallelFor(500, threads, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallelFor(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, SerialPathMatchesParallel) {
  std::vector<int> a(64, 0), b(64, 0);
  parallelFor(64, 1, [&](std::size_t i) { a[i] = int(i * i); });
  parallelFor(64, 4, [&](std::size_t i) { b[i] = int(i * i); });
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, RethrowsFirstException) {
  EXPECT_THROW(
      parallelFor(100, 4,
                  [](std::size_t i) {
                    if (i == 42) throw std::logic_error("x");
                  }),
      std::logic_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> count{0};
  parallelFor(3, 16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace hsd
