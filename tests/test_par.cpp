// Thread pool and parallelFor tests. The pool under test is obtained
// through engine::RunContext — production code never constructs a
// ThreadPool directly (the context owns the one pool per run).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "engine/run_context.hpp"
#include "par/thread_pool.hpp"

namespace hsd {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  engine::RunContext ctx(4);
  ThreadPool& pool = ctx.pool();
  EXPECT_EQ(pool.threadCount(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  engine::RunContext ctx(2);
  auto fut = ctx.pool().submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, MemberParallelForChunksByGrain) {
  engine::RunContext ctx(4);
  ThreadPool& pool = ctx.pool();
  for (const std::size_t grain : {std::size_t(0), std::size_t(1),
                                  std::size_t(7), std::size_t(1000)}) {
    std::vector<std::atomic<int>> hits(500);
    pool.parallelFor(500, [&](std::size_t i) { ++hits[i]; }, grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPool, NestedMemberParallelForRunsInline) {
  engine::RunContext ctx(2);
  ThreadPool& pool = ctx.pool();
  std::atomic<int> count{0};
  pool.parallelFor(4, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::inWorker());
    pool.parallelFor(8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
  EXPECT_FALSE(ThreadPool::inWorker());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t(1), std::size_t(3),
                                    std::size_t(8)}) {
    std::vector<std::atomic<int>> hits(500);
    parallelFor(500, threads, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, GrainOverloadCoversEveryIndexExactlyOnce) {
  for (const std::size_t grain : {std::size_t(0), std::size_t(1),
                                  std::size_t(13), std::size_t(512)}) {
    std::vector<std::atomic<int>> hits(500);
    parallelFor(500, 4, grain, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ParallelFor, AutoGrainIsSaneAcrossSizes) {
  EXPECT_EQ(autoGrain(0, 4), 1u);
  EXPECT_EQ(autoGrain(1, 4), 1u);
  EXPECT_EQ(autoGrain(31, 4), 1u);   // fewer items than 8*threads
  EXPECT_EQ(autoGrain(3200, 4), 100u);
  EXPECT_GE(autoGrain(1u << 20, 8), 1u);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallelFor(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, SerialPathMatchesParallel) {
  std::vector<int> a(64, 0), b(64, 0);
  parallelFor(64, 1, [&](std::size_t i) { a[i] = int(i * i); });
  parallelFor(64, 4, [&](std::size_t i) { b[i] = int(i * i); });
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, RethrowsFirstException) {
  EXPECT_THROW(
      parallelFor(100, 4,
                  [](std::size_t i) {
                    if (i == 42) throw std::logic_error("x");
                  }),
      std::logic_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> count{0};
  parallelFor(3, 16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, CancelledErrorInWorkersPropagatesAndStopsClaiming) {
  // A CancelledError thrown inside pool workers at threads=8 must come
  // back to the submitting thread as that exact type (clean cancellation,
  // no std::terminate, no deadlock) and stop the remaining range instead
  // of grinding through it.
  engine::RunContext ctx(8);
  ThreadPool& pool = ctx.pool();
  constexpr std::size_t kN = 1 << 20;
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> cancelled{false};
  EXPECT_THROW(
      pool.parallelFor(kN,
                       [&](std::size_t i) {
                         executed.fetch_add(1, std::memory_order_relaxed);
                         if (i == 500) cancelled.store(true);
                         if (cancelled.load(std::memory_order_relaxed))
                           throw engine::CancelledError();
                       },
                       /*grain=*/256),
      engine::CancelledError);
  EXPECT_LT(executed.load(), kN);
  // The pool is still usable afterwards — workers survived the throw.
  std::atomic<std::size_t> after{0};
  pool.parallelFor(1024, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 1024u);
}

}  // namespace
}  // namespace hsd
