// Hierarchical layout tests: origin transforms, D8 composition, cell
// flattening (instances, arrays, nesting), and GDSII hierarchy round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "gds/gdsii.hpp"
#include "geom/rectset.hpp"
#include "layout/hierarchy.hpp"

namespace hsd {
namespace {

TEST(OriginTransform, KnownMappings) {
  const Point p{3, 1};
  EXPECT_EQ(applyOrigin(Orient::R0, p), Point(3, 1));
  EXPECT_EQ(applyOrigin(Orient::R90, p), Point(-1, 3));
  EXPECT_EQ(applyOrigin(Orient::R180, p), Point(-3, -1));
  EXPECT_EQ(applyOrigin(Orient::R270, p), Point(1, -3));
  EXPECT_EQ(applyOrigin(Orient::MX, p), Point(3, -1));
  EXPECT_EQ(applyOrigin(Orient::MY, p), Point(-3, 1));
  EXPECT_EQ(applyOrigin(Orient::MXR90, p), Point(1, 3));
  EXPECT_EQ(applyOrigin(Orient::MYR90, p), Point(-1, -3));
}

TEST(OriginTransform, CompositionTableIsClosedAndCorrect) {
  const Point probe{5, 2};
  for (const Orient a : kAllOrients) {
    for (const Orient b : kAllOrients) {
      const Orient c = composeOrient(a, b);
      EXPECT_EQ(applyOrigin(c, probe),
                applyOrigin(a, applyOrigin(b, probe)))
          << toString(a) << " * " << toString(b);
    }
  }
}

TEST(CellTransform, ComposeMatchesSequentialApplication) {
  const CellTransform outer{Orient::R90, {100, 50}};
  const CellTransform inner{Orient::MX, {-20, 7}};
  const CellTransform both = outer.compose(inner);
  for (const Point p : {Point{0, 0}, Point{13, -4}, Point{-7, 29}})
    EXPECT_EQ(both.apply(p), outer.apply(inner.apply(p)));
}

TEST(CellLibrary, FlattenSimpleInstance) {
  CellLibrary lib;
  Cell& unit = lib.addCell("UNIT");
  unit.addRect(1, {0, 0, 10, 20});
  Cell& top = lib.addCell("TOP");
  top.addInstance({"UNIT", {Orient::R0, {100, 0}}, 1, 1, {}, {}});
  top.addInstance({"UNIT", {Orient::R90, {0, 100}}, 1, 1, {}, {}});
  lib.setTop("TOP");

  const Layout flat = lib.flatten();
  EXPECT_EQ(flat.polygonCount(), 2u);
  EXPECT_EQ(unionArea(flat.findLayer(1)->rects()), 2 * 200);
  EXPECT_EQ(lib.flatPolygonCount(), 2u);
}

TEST(CellLibrary, FlattenArray) {
  CellLibrary lib;
  Cell& unit = lib.addCell("U");
  unit.addRect(2, {0, 0, 50, 50});
  Cell& top = lib.addCell("TOP");
  top.addInstance({"U", {Orient::R0, {0, 0}}, 4, 3, {100, 0}, {0, 200}});
  lib.setTop("TOP");

  const Layout flat = lib.flatten();
  EXPECT_EQ(flat.polygonCount(), 12u);
  EXPECT_EQ(lib.flatPolygonCount(), 12u);
  const auto bb = flat.bbox();
  ASSERT_TRUE(bb.has_value());
  EXPECT_EQ(*bb, Rect(0, 0, 300 + 50, 400 + 50));
}

TEST(CellLibrary, NestedHierarchyComposesTransforms) {
  CellLibrary lib;
  Cell& leaf = lib.addCell("LEAF");
  leaf.addRect(1, {0, 0, 10, 20});
  Cell& mid = lib.addCell("MID");
  mid.addInstance({"LEAF", {Orient::R90, {50, 0}}, 1, 1, {}, {}});
  Cell& top = lib.addCell("TOP");
  top.addInstance({"MID", {Orient::R180, {0, 0}}, 1, 1, {}, {}});
  lib.setTop("TOP");

  const Layout flat = lib.flatten();
  ASSERT_EQ(flat.polygonCount(), 1u);
  // LEAF rect under R90+(50,0): [30,50]x[0,10]; under R180: [-50,-30]x[-10,0].
  EXPECT_EQ(flat.findLayer(1)->rects()[0], Rect(-50, -10, -30, 0));
}

TEST(CellLibrary, MissingCellThrows) {
  CellLibrary lib;
  Cell& top = lib.addCell("TOP");
  top.addInstance({"NOPE", {}, 1, 1, {}, {}});
  EXPECT_THROW(lib.flatten(), std::runtime_error);
  EXPECT_THROW(lib.flatPolygonCount(), std::runtime_error);
}

TEST(CellLibrary, CycleDetected) {
  CellLibrary lib;
  Cell& a = lib.addCell("A");
  a.addInstance({"B", {}, 1, 1, {}, {}});
  Cell& b = lib.addCell("B");
  b.addInstance({"A", {}, 1, 1, {}, {}});
  lib.setTop("A");
  EXPECT_THROW(lib.flatten(), std::runtime_error);
}

TEST(GdsiiHierarchy, RoundTripPreservesStructure) {
  CellLibrary lib;
  Cell& unit = lib.addCell("UNIT");
  unit.addRect(1, {0, 0, 100, 200});
  unit.addPolygon(2, Polygon({{0, 0}, {60, 0}, {60, 30}, {30, 30},
                              {30, 60}, {0, 60}}));
  Cell& top = lib.addCell("TOP");
  top.addInstance({"UNIT", {Orient::MX, {500, 500}}, 1, 1, {}, {}});
  top.addInstance({"UNIT", {Orient::R270, {-100, 0}}, 3, 2, {300, 0},
                   {0, 400}});
  lib.setTop("TOP");

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  gds::writeGdsiiHierarchy(ss, lib);
  const CellLibrary back = gds::readGdsiiHierarchy(ss);

  EXPECT_EQ(back.cellCount(), 2u);
  EXPECT_EQ(back.top(), "TOP");
  ASSERT_NE(back.findCell("UNIT"), nullptr);
  EXPECT_EQ(back.findCell("TOP")->instances().size(), 2u);
  // Structural equivalence: the flattened layouts match exactly.
  const Layout a = lib.flatten();
  const Layout b = back.flatten();
  EXPECT_EQ(a.polygonCount(), b.polygonCount());
  EXPECT_EQ(unionArea(a.findLayer(1)->rects()),
            unionArea(b.findLayer(1)->rects()));
  EXPECT_EQ(unionArea(a.findLayer(2)->rects()),
            unionArea(b.findLayer(2)->rects()));
  EXPECT_EQ(a.bbox(), b.bbox());
}

TEST(GdsiiHierarchy, FlatReaderMatchesHierarchyFlatten) {
  CellLibrary lib;
  Cell& u = lib.addCell("U");
  u.addRect(1, {0, 0, 40, 40});
  Cell& top = lib.addCell("T");
  top.addInstance({"U", {Orient::MYR90, {200, 100}}, 2, 2, {100, 0},
                   {0, 100}});
  lib.setTop("T");

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  gds::writeGdsiiHierarchy(ss, lib);
  const Layout flat = gds::readGdsii(ss);
  EXPECT_EQ(flat.polygonCount(), 4u);
  EXPECT_EQ(unionArea(flat.findLayer(1)->rects()),
            unionArea(lib.flatten().findLayer(1)->rects()));
}

TEST(GdsiiHierarchy, AllOrientationsSurviveRoundTrip) {
  for (const Orient o : kAllOrients) {
    CellLibrary lib;
    Cell& u = lib.addCell("U");
    u.addRect(1, {0, 0, 30, 70});  // asymmetric probe
    Cell& top = lib.addCell("T");
    top.addInstance({"U", {o, {11, -7}}, 1, 1, {}, {}});
    lib.setTop("T");
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    gds::writeGdsiiHierarchy(ss, lib);
    const CellLibrary back = gds::readGdsiiHierarchy(ss);
    EXPECT_EQ(back.findCell("T")->instances()[0].transform.orient, o)
        << toString(o);
    EXPECT_EQ(back.flatten().findLayer(1)->rects(),
              lib.flatten().findLayer(1)->rects())
        << toString(o);
  }
}

}  // namespace
}  // namespace hsd
