// Critical feature extraction tests: rule-rectangle kinds on constructed
// patterns, fixed-length layout, canonical-orientation invariance, and the
// five non-topological features.
#include <gtest/gtest.h>

#include <random>

#include "core/features.hpp"

namespace hsd::core {
namespace {

CorePattern pattern(Coord w, Coord h, std::vector<Rect> rects) {
  CorePattern p;
  p.w = w;
  p.h = h;
  p.rects = std::move(rects);
  return p;
}

std::size_t countKind(const std::vector<RuleRect>& rules, FeatKind k) {
  std::size_t n = 0;
  for (const RuleRect& r : rules) n += r.kind == k;
  return n;
}

TEST(Features, IsolatedBlockYieldsInternal) {
  const auto rules =
      extractRuleRects(pattern(100, 100, {{40, 30, 60, 70}}));
  EXPECT_GE(countKind(rules, FeatKind::kInternal), 1u);
  // The internal rule records the block's dimensions.
  bool found = false;
  for (const RuleRect& r : rules)
    if (r.kind == FeatKind::kInternal && r.w == 20 && r.h == 40 &&
        r.dx == 40 && r.dy == 30)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Features, SpaceBetweenBlocksYieldsExternal) {
  // Two blocks with a 10-wide gap spanning the same band.
  const auto rules = extractRuleRects(
      pattern(100, 100, {{10, 40, 40, 60}, {50, 40, 80, 60}}));
  bool found = false;
  for (const RuleRect& r : rules)
    if (r.kind == FeatKind::kExternal && r.w == 10) found = true;
  EXPECT_TRUE(found);
}

TEST(Features, DiagonalCornerGapRecorded) {
  const auto rules = extractRuleRects(
      pattern(100, 100, {{0, 0, 30, 30}, {60, 60, 100, 100}}));
  bool found = false;
  for (const RuleRect& r : rules)
    if (r.kind == FeatKind::kDiagonal && r.w == 30 && r.h == 30)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Features, SegmentTilesAtBoundary) {
  // A block strip across the middle creates space tiles touching 3 window
  // boundaries above and below.
  const auto rules =
      extractRuleRects(pattern(100, 100, {{0, 40, 100, 60}}));
  EXPECT_EQ(countKind(rules, FeatKind::kSegment), 2u);
}

TEST(Features, EmptyPatternHasOnlySegment) {
  const auto rules = extractRuleRects(pattern(100, 100, {}));
  EXPECT_EQ(countKind(rules, FeatKind::kInternal), 0u);
  EXPECT_EQ(countKind(rules, FeatKind::kExternal), 0u);
  EXPECT_EQ(countKind(rules, FeatKind::kDiagonal), 0u);
}

TEST(Features, VectorHasConfiguredDimension) {
  FeatureParams fp;
  const CorePattern p = pattern(100, 100, {{10, 10, 40, 90}});
  EXPECT_EQ(buildFeatureVector(p, fp).size(), fp.dim());
  fp.densityGridN = 8;
  EXPECT_EQ(buildFeatureVector(p, fp).size(), fp.dim());
  EXPECT_EQ(fp.dim(), (8 + 8 + 4 + 4) * 5 + 5 + 64);
}

TEST(Features, PaddingUsesSentinel) {
  FeatureParams fp;
  const auto v = buildFeatureVector(pattern(100, 100, {}), fp);
  // No internal features: the first maxInternal*5 slots are all sentinel.
  for (std::size_t i = 0; i < fp.maxInternal * 5; ++i)
    EXPECT_EQ(v[i], -1.0);
}

TEST(Features, CanonicalizeMakesVectorOrientationInvariant) {
  FeatureParams fp;
  fp.canonicalize = true;
  const CorePattern base =
      pattern(120, 120, {{0, 0, 80, 30}, {0, 30, 30, 100}});
  const auto ref = buildFeatureVector(base, fp);
  for (const Orient o : kAllOrients)
    EXPECT_EQ(buildFeatureVector(base.transformed(o), fp), ref)
        << toString(o);
}

TEST(Features, WithoutCanonicalizeOrientationMatters) {
  FeatureParams fp;
  fp.canonicalize = false;
  const CorePattern base =
      pattern(120, 120, {{0, 0, 80, 30}, {0, 30, 30, 100}});
  EXPECT_NE(buildFeatureVector(base.transformed(Orient::R90), fp),
            buildFeatureVector(base, fp));
}

TEST(Features, SameTopologySameFeatureCounts) {
  // Two patterns with identical topology but different dimensions yield
  // the same number of rule rects of each kind (the property the per-
  // cluster kernels rely on).
  const auto a = extractRuleRects(
      pattern(100, 100, {{10, 40, 40, 60}, {50, 40, 80, 60}}));
  const auto b = extractRuleRects(
      pattern(100, 100, {{5, 35, 42, 65}, {55, 35, 85, 65}}));
  for (const FeatKind k :
       {FeatKind::kInternal, FeatKind::kExternal, FeatKind::kDiagonal,
        FeatKind::kSegment})
    EXPECT_EQ(countKind(a, k), countKind(b, k));
}

TEST(NonTopo, SingleRect) {
  const NonTopoFeatures f =
      extractNonTopo(pattern(100, 100, {{10, 10, 30, 90}}));
  EXPECT_EQ(f.corners, 4);
  EXPECT_EQ(f.touchPoints, 0);
  EXPECT_EQ(f.minInternal, 20);
  EXPECT_EQ(f.minExternal, 0);  // no facing pair
  EXPECT_NEAR(f.density, 20.0 * 80 / (100.0 * 100), 1e-12);
}

TEST(NonTopo, FacingPairSpacing) {
  const NonTopoFeatures f = extractNonTopo(
      pattern(100, 100, {{0, 0, 30, 100}, {45, 0, 100, 100}}));
  EXPECT_EQ(f.minExternal, 15);
  EXPECT_EQ(f.corners, 8);
}

TEST(NonTopo, EmptyPattern) {
  const NonTopoFeatures f = extractNonTopo(pattern(100, 100, {}));
  EXPECT_EQ(f.corners, 0);
  EXPECT_EQ(f.density, 0.0);
}

TEST(FeaturesProperty, VectorDeterministicUnderRectShuffle) {
  std::mt19937 rng(55);
  FeatureParams fp;
  std::vector<Rect> rects{{0, 0, 20, 20}, {40, 0, 60, 30}, {0, 50, 90, 70},
                          {70, 80, 100, 100}};
  const auto ref = buildFeatureVector(pattern(100, 100, rects), fp);
  for (int i = 0; i < 10; ++i) {
    std::shuffle(rects.begin(), rects.end(), rng);
    EXPECT_EQ(buildFeatureVector(pattern(100, 100, rects), fp), ref);
  }
}

}  // namespace
}  // namespace hsd::core
