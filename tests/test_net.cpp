// Transport + admin-surface tests (ctest label: net). Pins the src/net
// HTTP/1.1 listener and the obs::AdminServer built on it:
//  - routing (GET/HEAD/POST), query params, 404 endpoint listing, HEAD
//    semantics, 405-before-404 precedence with the Allow header;
//  - the parsing limits: malformed -> 400, oversized header -> 431,
//    oversized body -> 413 (Content-Length and chunked), chunked bodies
//    decoded, Content-Length+Transfer-Encoding smuggling -> 400;
//  - the connection-close contract: transport/parse errors (400 framing,
//    413, 431) close; application responses (404, 405, handler 500)
//    honor keep-alive — the request was fully read, so the stream stays
//    in sync;
//  - keep-alive serves several requests on one connection (including
//    after an application error); stop() is graceful and idempotent;
//    httpGet/httpPost fail loudly on a dead port;
//  - AdminServer endpoint contracts: /healthz, /readyz readiness flips
//    (plus the ?degraded JSON detail view), /metrics (Prometheus 0.0.4,
//    mount order + self-metrics), /statsz (JSON; throwing providers
//    degrade, never fail the scrape; SLO section when mounted), /tracez
//    (non-destructive snapshot, ?limit=, ?trace= filtering), /logz
//    (JSON-lines, ?level=/?trace= filters), /sloz, and the shared
//    query-param strictness (junk ?limit= / ?trace= -> 400, never a
//    silent default);
//  - the concurrent-scrape hammer: many client threads scraping every
//    endpoint while a DetectionServer runs real detection traffic — every
//    response parses; run under TSan via the `net` label.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "mini_json.hpp"
#include "net/http.hpp"
#include "obs/admin.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/trace_id.hpp"
#include "serve/server.hpp"

namespace hsd::net {
namespace {

using hsd::tests::parsesAsJson;

// Raw TCP client: send `request` verbatim, read until EOF. Lets the tests
// exercise wire-level cases (malformed requests, keep-alive pipelining)
// that the well-behaved httpGet client cannot produce.
std::string rawExchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t w =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (w <= 0) break;
    off += std::size_t(w);
  }
  std::string resp;
  for (;;) {
    char chunk[4096];
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    resp.append(chunk, std::size_t(r));
  }
  ::close(fd);
  return resp;
}

int countOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// ---------------------------------------------------------------------------
// HttpServer: routing and the happy path

TEST(HttpServer, RoutesRequestsAndParsesQueryParams) {
  HttpServer server;
  server.handle("/hello", [](const HttpRequest& req) {
    std::string who = req.queryParam("name");
    if (who.empty()) who = "anonymous";
    EXPECT_NE(req.header("host"), nullptr);
    return HttpResponse::text(200, "hello " + who + "\n");
  });
  server.start();
  ASSERT_NE(server.port(), 0);

  const HttpGetResult plain = httpGet("127.0.0.1", server.port(), "/hello");
  EXPECT_EQ(plain.status, 200);
  EXPECT_EQ(plain.body, "hello anonymous\n");
  EXPECT_NE(plain.contentType.find("text/plain"), std::string::npos);

  const HttpGetResult q =
      httpGet("127.0.0.1", server.port(), "/hello?name=world&x=1");
  EXPECT_EQ(q.status, 200);
  EXPECT_EQ(q.body, "hello world\n");
}

TEST(HttpServer, UnknownPathGets404ListingEndpoints) {
  HttpServer server;
  server.handle("/a", [](const HttpRequest&) {
    return HttpResponse::text(200, "a");
  });
  server.handle("/b", [](const HttpRequest&) {
    return HttpResponse::text(200, "b");
  });
  server.start();
  const HttpGetResult res = httpGet("127.0.0.1", server.port(), "/missing");
  EXPECT_EQ(res.status, 404);
  EXPECT_NE(res.body.find("/missing"), std::string::npos);
  EXPECT_NE(res.body.find("/a"), std::string::npos);
  EXPECT_NE(res.body.find("/b"), std::string::npos);
}

TEST(HttpServer, HeadReturnsHeadersWithoutBody) {
  HttpServer server;
  server.handle("/x", [](const HttpRequest&) {
    return HttpResponse::text(200, "body-bytes");
  });
  server.start();
  const std::string resp = rawExchange(
      server.port(), "HEAD /x HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Length: 10"), std::string::npos) << resp;
  // The header block ends the response: no body follows for HEAD.
  EXPECT_EQ(resp.substr(resp.find("\r\n\r\n") + 4), "");
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server;
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaboom");
  });
  server.start();
  const HttpGetResult res = httpGet("127.0.0.1", server.port(), "/boom");
  EXPECT_EQ(res.status, 500);
  EXPECT_NE(res.body.find("kaboom"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parsing limits on the wire

TEST(HttpServer, MalformedRequestLineGets400) {
  HttpServer server;
  server.start();
  const std::string resp =
      rawExchange(server.port(), "THIS IS NOT HTTP\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 400 Bad Request"), std::string::npos) << resp;
}

TEST(HttpServer, OversizedHeadersGet431) {
  HttpServerOptions opts;
  opts.maxHeaderBytes = 128;  // constructor floor; tiny on purpose
  HttpServer server(opts);
  server.start();
  const std::string resp = rawExchange(
      server.port(), "GET / HTTP/1.1\r\nX-Pad: " + std::string(4096, 'x') +
                         "\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 431 "), std::string::npos) << resp;
}

TEST(HttpServer, OversizedBodyGets413) {
  HttpServer server;  // default 1 MiB body cap
  server.start();
  const std::string resp = rawExchange(
      server.port(),
      "GET / HTTP/1.1\r\nContent-Length: 16777216\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 413 "), std::string::npos) << resp;
}

// ---------------------------------------------------------------------------
// Chunked uploads: decoded, capped, and strict about framing

TEST(HttpServer, ChunkedBodyIsDecodedAndDelivered) {
  HttpServer server;
  server.handlePost("/echo", [](const HttpRequest& req) {
    return HttpResponse::text(200, req.body);
  });
  server.start();
  // Two chunks with an extension and a trailer — all must be tolerated.
  const std::string resp = rawExchange(
      server.port(),
      "POST /echo HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n"
      "Connection: close\r\n\r\n"
      "5;ext=1\r\nhello\r\n"
      "7\r\n, world\r\n"
      "0\r\nX-Trailer: v\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_EQ(resp.substr(resp.find("\r\n\r\n") + 4), "hello, world");
}

TEST(HttpServer, MalformedChunkFramingGets400) {
  HttpServer server;
  server.handlePost("/echo", [](const HttpRequest& req) {
    return HttpResponse::text(200, req.body);
  });
  server.start();
  // Chunk data not terminated by CRLF: unrecoverable framing error.
  const std::string badData = rawExchange(
      server.port(),
      "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhelloXX0\r\n\r\n");
  EXPECT_NE(badData.find("HTTP/1.1 400 "), std::string::npos) << badData;
  // Garbage where the hex chunk size belongs.
  const std::string badSize = rawExchange(
      server.port(),
      "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "zz\r\nhello\r\n0\r\n\r\n");
  EXPECT_NE(badSize.find("HTTP/1.1 400 "), std::string::npos) << badSize;
}

TEST(HttpServer, ChunkedBodyOverCapGets413) {
  HttpServerOptions opts;
  opts.maxBodyBytes = 16;
  HttpServer server(opts);
  server.handlePost("/echo", [](const HttpRequest& req) {
    return HttpResponse::text(200, req.body);
  });
  server.start();
  const std::string resp = rawExchange(
      server.port(),
      "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "20\r\n" + std::string(32, 'x') + "\r\n0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 413 "), std::string::npos) << resp;
}

TEST(HttpServer, ContentLengthWithTransferEncodingGets400) {
  // Both framings at once is the classic request-smuggling vector.
  HttpServer server;
  server.handlePost("/echo", [](const HttpRequest& req) {
    return HttpResponse::text(200, req.body);
  });
  server.start();
  const std::string resp = rawExchange(
      server.port(),
      "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n"
      "Transfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 400 "), std::string::npos) << resp;
}

// ---------------------------------------------------------------------------
// Method routing: 405-before-404 precedence and the Allow header

TEST(HttpServer, WrongMethodOnKnownPathGets405WithAllow) {
  HttpServer server;
  server.handle("/x", [](const HttpRequest&) {
    return HttpResponse::text(200, "x");
  });
  server.handlePost("/submit", [](const HttpRequest& req) {
    return HttpResponse::text(200, req.body);
  });
  server.start();
  // POST to a GET-only path: 405 naming GET, HEAD.
  const std::string postToGet = rawExchange(
      server.port(),
      "POST /x HTTP/1.1\r\nContent-Length: 2\r\nConnection: close\r\n\r\nhi");
  EXPECT_NE(postToGet.find("HTTP/1.1 405 "), std::string::npos) << postToGet;
  EXPECT_NE(postToGet.find("Allow: GET, HEAD"), std::string::npos)
      << postToGet;
  // GET to a POST-only path: 405 naming POST.
  const HttpResult getToPost = httpGet("127.0.0.1", server.port(), "/submit");
  EXPECT_EQ(getToPost.status, 405);
  ASSERT_NE(getToPost.header("allow"), nullptr);
  EXPECT_EQ(*getToPost.header("allow"), "POST");
  // Unknown path: 404 whatever the method — 405 is reserved for known
  // paths (the precedence contract).
  const HttpResult unknown = httpPost("127.0.0.1", server.port(), "/nope",
                                      "body", "text/plain");
  EXPECT_EQ(unknown.status, 404);
}

TEST(HttpServer, GetAndPostCoexistOnOnePath) {
  HttpServer server;
  server.handle("/r", [](const HttpRequest&) {
    return HttpResponse::text(200, "got GET");
  });
  server.handlePost("/r", [](const HttpRequest& req) {
    return HttpResponse::text(200, "got POST: " + req.body);
  });
  server.start();
  EXPECT_EQ(httpGet("127.0.0.1", server.port(), "/r").body, "got GET");
  EXPECT_EQ(httpPost("127.0.0.1", server.port(), "/r", "hi", "text/plain")
                .body,
            "got POST: hi");
}

// ---------------------------------------------------------------------------
// The connection-close contract, pinned per error class

TEST(HttpServer, ParseErrorsCloseTheConnection) {
  HttpServerOptions opts;
  opts.maxHeaderBytes = 128;
  opts.maxBodyBytes = 64;
  HttpServer server(opts);
  server.handlePost("/echo", [](const HttpRequest& req) {
    return HttpResponse::text(200, req.body);
  });
  server.start();
  // Each transport-level failure must answer Connection: close — the
  // request stream cannot be resynchronized past a framing error.
  const std::string malformed =
      rawExchange(server.port(), "NOT HTTP AT ALL\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400 "), std::string::npos) << malformed;
  EXPECT_NE(malformed.find("Connection: close"), std::string::npos)
      << malformed;
  const std::string oversizedBody = rawExchange(
      server.port(), "POST /echo HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
  EXPECT_NE(oversizedBody.find("HTTP/1.1 413 "), std::string::npos)
      << oversizedBody;
  EXPECT_NE(oversizedBody.find("Connection: close"), std::string::npos)
      << oversizedBody;
  const std::string oversizedHead = rawExchange(
      server.port(),
      "GET /echo HTTP/1.1\r\nX-Pad: " + std::string(4096, 'x') + "\r\n\r\n");
  EXPECT_NE(oversizedHead.find("HTTP/1.1 431 "), std::string::npos)
      << oversizedHead;
  EXPECT_NE(oversizedHead.find("Connection: close"), std::string::npos)
      << oversizedHead;
}

TEST(HttpServer, ApplicationErrorsKeepTheConnectionAlive) {
  HttpServer server;
  server.handle("/ok", [](const HttpRequest&) {
    return HttpResponse::text(200, "fine\n");
  });
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("bang");
  });
  server.start();
  // One connection: 404, 405, handler-500 — then a 200 must still work.
  // Application errors consumed their request, so keep-alive holds.
  const std::string resp = rawExchange(
      server.port(),
      "GET /missing HTTP/1.1\r\nHost: t\r\n\r\n"
      "POST /ok HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
      "GET /boom HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /ok HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 404 "), std::string::npos) << resp;
  EXPECT_NE(resp.find("HTTP/1.1 405 "), std::string::npos) << resp;
  EXPECT_NE(resp.find("HTTP/1.1 500 "), std::string::npos) << resp;
  EXPECT_NE(resp.find("fine\n"), std::string::npos) << resp;
  EXPECT_EQ(countOccurrences(resp, "HTTP/1.1 "), 4) << resp;
  EXPECT_EQ(countOccurrences(resp, "Connection: keep-alive"), 3) << resp;
}

// ---------------------------------------------------------------------------
// The httpPost client

TEST(HttpPost, SendsBodyHeadersAndParsesResponse) {
  HttpServer server;
  server.handlePost("/in", [](const HttpRequest& req) {
    const std::string* ct = req.header("content-type");
    const std::string* extra = req.header("x-extra");
    HttpResponse res = HttpResponse::text(
        201, "ct=" + (ct ? *ct : "") + " extra=" + (extra ? *extra : "") +
                 " body=" + req.body);
    res.withHeader("X-Answer", "42");
    return res;
  });
  server.start();
  const HttpResult res =
      httpPost("127.0.0.1", server.port(), "/in", "payload", "text/plain",
               {{"X-Extra", "v1"}});
  EXPECT_EQ(res.status, 201);
  EXPECT_EQ(res.body, "ct=text/plain extra=v1 body=payload");
  ASSERT_NE(res.header("x-answer"), nullptr);
  EXPECT_EQ(*res.header("x-answer"), "42");
  EXPECT_NE(res.contentType.find("text/plain"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Keep-alive and lifecycle

TEST(HttpServer, KeepAliveServesTwoRequestsOnOneConnection) {
  std::atomic<int> hits{0};
  HttpServer server;
  server.handle("/k", [&hits](const HttpRequest&) {
    return HttpResponse::text(200,
                              "hit " + std::to_string(++hits) + "\n");
  });
  server.start();
  const std::string resp = rawExchange(
      server.port(),
      "GET /k HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /k HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(countOccurrences(resp, "HTTP/1.1 200 OK"), 2) << resp;
  EXPECT_NE(resp.find("hit 1"), std::string::npos);
  EXPECT_NE(resp.find("hit 2"), std::string::npos);
  EXPECT_EQ(hits.load(), 2);
}

TEST(HttpServer, StopIsGracefulAndIdempotentAndFreesThePort) {
  HttpServer server;
  server.handle("/x", [](const HttpRequest&) {
    return HttpResponse::text(200, "x");
  });
  server.start();
  const std::uint16_t port = server.port();
  EXPECT_TRUE(server.running());
  EXPECT_EQ(httpGet("127.0.0.1", port, "/x").status, 200);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_THROW(httpGet("127.0.0.1", port, "/x", /*timeoutMs=*/500),
               std::runtime_error);
}

TEST(HttpServer, RegisteringRoutesAfterStartThrows) {
  HttpServer server;
  server.start();
  EXPECT_THROW(server.handle("/late",
                             [](const HttpRequest&) {
                               return HttpResponse::text(200, "");
                             }),
               std::logic_error);
}

TEST(HttpGet, ConnectFailureThrows) {
  // Bind-then-stop guarantees the port was just free.
  HttpServer server;
  server.start();
  const std::uint16_t port = server.port();
  server.stop();
  EXPECT_THROW(httpGet("127.0.0.1", port, "/", /*timeoutMs=*/500),
               std::runtime_error);
  EXPECT_THROW(httpGet("not-an-ip", 1, "/"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// AdminServer endpoints

TEST(AdminServer, ServesAllEndpointsWithSelfMetrics) {
  auto reg = std::make_shared<obs::MetricsRegistry>();
  reg->counter("app_events_total", "demo").inc(5);
  auto tracer = std::make_shared<obs::TraceRecorder>();
  tracer->recordSpan("warm", "test", std::chrono::steady_clock::now(),
                     std::chrono::steady_clock::now());

  obs::AdminServer admin;
  admin.addMetrics(reg);
  admin.setTracer(tracer);
  admin.addStatsProvider("demo", [] { return std::string("{\"n\": 1}"); });
  admin.start();
  ASSERT_NE(admin.port(), 0);

  const HttpGetResult index = httpGet("127.0.0.1", admin.port(), "/");
  EXPECT_EQ(index.status, 200);
  for (const char* ep : {"/healthz", "/readyz", "/metrics", "/statsz",
                         "/tracez"})
    EXPECT_NE(index.body.find(ep), std::string::npos) << index.body;

  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/healthz").body, "ok\n");
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/readyz").body, "ready\n");

  const HttpGetResult metrics =
      httpGet("127.0.0.1", admin.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.contentType.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("app_events_total 5\n"), std::string::npos);
  // Self-metrics render last and count this very scrape.
  EXPECT_NE(metrics.body.find("hsd_admin_scrapes_total"), std::string::npos);
  EXPECT_LT(metrics.body.find("app_events_total"),
            metrics.body.find("hsd_admin_scrapes_total"));
  EXPECT_NE(
      metrics.body.find(
          "hsd_admin_scrapes_total{endpoint=\"/metrics\"} 1\n"),
      std::string::npos)
      << metrics.body;

  const HttpGetResult statsz = httpGet("127.0.0.1", admin.port(), "/statsz");
  EXPECT_EQ(statsz.status, 200);
  EXPECT_NE(statsz.contentType.find("application/json"), std::string::npos);
  EXPECT_TRUE(parsesAsJson(statsz.body)) << statsz.body;
  EXPECT_NE(statsz.body.find("\"demo\": {\"n\": 1}"), std::string::npos);
  EXPECT_NE(statsz.body.find("\"uptimeSeconds\""), std::string::npos);

  const HttpGetResult tracez = httpGet("127.0.0.1", admin.port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_TRUE(parsesAsJson(tracez.body)) << tracez.body;
  EXPECT_NE(tracez.body.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(tracez.body.find("\"warm\""), std::string::npos);
  // Non-destructive: the recorder still holds the span afterwards.
  EXPECT_EQ(tracer->spanCount(), 1u);
}

TEST(AdminServer, ReadyzReflectsEveryReadinessHook) {
  std::atomic<bool> ready{false};
  obs::AdminServer admin;
  admin.addReadiness([&ready] { return ready.load(); });
  admin.addReadiness([] { return true; });
  admin.start();
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/readyz").status, 503);
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/readyz").body, "unready\n");
  ready.store(true);
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/readyz").status, 200);
  // Liveness is independent of readiness.
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/healthz").status, 200);
}

TEST(AdminServer, ThrowingStatsProviderDegradesToErrorObject) {
  obs::AdminServer admin;
  admin.addStatsProvider("good", [] { return std::string("7"); });
  admin.addStatsProvider("bad", []() -> std::string {
    throw std::runtime_error("provider down");
  });
  admin.start();
  const HttpGetResult res = httpGet("127.0.0.1", admin.port(), "/statsz");
  EXPECT_EQ(res.status, 200);  // a broken provider never fails the scrape
  EXPECT_TRUE(parsesAsJson(res.body)) << res.body;
  EXPECT_NE(res.body.find("\"good\": 7"), std::string::npos);
  EXPECT_NE(res.body.find("provider down"), std::string::npos);
}

TEST(AdminServer, TracezHonorsLimitAndReportsDisabledWithoutTracer) {
  auto tracer = std::make_shared<obs::TraceRecorder>();
  const auto t = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i)
    tracer->recordSpan("s" + std::to_string(i), "test", t, t);
  obs::AdminServer admin;
  admin.setTracer(tracer);
  admin.start();
  const HttpGetResult limited =
      httpGet("127.0.0.1", admin.port(), "/tracez?limit=3");
  EXPECT_TRUE(parsesAsJson(limited.body)) << limited.body;
  EXPECT_NE(limited.body.find("\"spanCount\": 10"), std::string::npos);
  EXPECT_NE(limited.body.find("\"returnedSpans\": 3"), std::string::npos);
  EXPECT_EQ(countOccurrences(limited.body, "\"name\": \"s"), 3);
  admin.stop();

  obs::AdminServer bare;
  bare.start();
  const HttpGetResult off = httpGet("127.0.0.1", bare.port(), "/tracez");
  EXPECT_EQ(off.status, 200);
  EXPECT_TRUE(parsesAsJson(off.body)) << off.body;
  EXPECT_NE(off.body.find("\"enabled\": false"), std::string::npos);
}

TEST(AdminServer, SnapshotEndpointsRejectJunkQueryParams) {
  obs::AdminServer admin;
  admin.setTracer(std::make_shared<obs::TraceRecorder>());
  admin.setLog(std::make_shared<obs::LogRecorder>());
  admin.start();
  // Junk ?limit= is a 400 on both snapshot endpoints, never a silent
  // default.
  for (const char* target :
       {"/tracez?limit=abc", "/tracez?limit=-1", "/tracez?limit=0",
        "/tracez?limit=3x", "/logz?limit=abc", "/logz?limit=0"}) {
    const HttpGetResult res = httpGet("127.0.0.1", admin.port(), target);
    EXPECT_EQ(res.status, 400) << target;
    EXPECT_NE(res.body.find("limit"), std::string::npos) << target;
  }
  // Junk ?trace= likewise (wrong length, non-hex, the all-zero id).
  for (const char* target :
       {"/tracez?trace=abc", "/logz?trace=xyz",
        "/tracez?trace=00000000000000000000000000000000"}) {
    EXPECT_EQ(httpGet("127.0.0.1", admin.port(), target).status, 400)
        << target;
  }
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/logz?level=loud").status,
            400);
  // Well-formed values still work.
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/tracez?limit=5").status,
            200);
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/logz?limit=5&level=warn")
                .status,
            200);
}

TEST(AdminServer, TracezFiltersBySpanTraceId) {
  auto tracer = std::make_shared<obs::TraceRecorder>();
  const obs::TraceId wanted = obs::makeTraceId();
  const obs::TraceId other = obs::makeTraceId();
  const auto t = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    const obs::ScopedTraceId scope(wanted);
    tracer->recordSpan("hit" + std::to_string(i), "test", t, t);
  }
  {
    const obs::ScopedTraceId scope(other);
    tracer->recordSpan("miss", "test", t, t);
  }
  tracer->recordSpan("untraced", "test", t, t);
  obs::AdminServer admin;
  admin.setTracer(tracer);
  admin.start();
  const HttpGetResult res = httpGet(
      "127.0.0.1", admin.port(), "/tracez?trace=" + obs::formatTraceId(wanted));
  EXPECT_EQ(res.status, 200);
  EXPECT_TRUE(parsesAsJson(res.body)) << res.body;
  // spanCount stays the pre-filter ring total; the filter narrows only
  // what is returned, and the meta echoes it.
  EXPECT_NE(res.body.find("\"spanCount\": 5"), std::string::npos);
  EXPECT_NE(res.body.find("\"returnedSpans\": 3"), std::string::npos);
  EXPECT_NE(res.body.find("\"trace\": \"" + obs::formatTraceId(wanted) + "\""),
            std::string::npos);
  EXPECT_EQ(countOccurrences(res.body, "\"name\": \"hit"), 3);
  EXPECT_EQ(countOccurrences(res.body, "\"name\": \"miss\""), 0);
  EXPECT_EQ(countOccurrences(res.body, "\"name\": \"untraced\""), 0);
}

TEST(AdminServer, LogzServesJsonLinesWithLevelAndTraceFilters) {
  auto log = std::make_shared<obs::LogRecorder>();
  log->setMinLevel(obs::LogLevel::kDebug);
  const obs::TraceId wanted = obs::makeTraceId();
  log->log(obs::LogLevel::kDebug, "test", "quiet detail");
  log->log(obs::LogLevel::kInfo, "test", "routine");
  log->log(obs::LogLevel::kWarn, "test", "trouble", {}, {}, {}, wanted);
  log->log(obs::LogLevel::kError, "test", "boom", {}, {}, {}, wanted);
  obs::AdminServer admin;
  admin.setLog(log);
  admin.start();

  const HttpGetResult all = httpGet("127.0.0.1", admin.port(), "/logz");
  EXPECT_EQ(all.status, 200);
  EXPECT_NE(all.contentType.find("application/x-ndjson"), std::string::npos);
  // Meta line first, then one record per line; every line parses alone.
  std::istringstream lines(all.body);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(parsesAsJson(line)) << line;
  }
  EXPECT_EQ(n, 5u);  // meta + 4 records
  EXPECT_NE(all.body.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(all.body.find("\"recordCount\": 4"), std::string::npos);
  EXPECT_NE(all.body.find("\"returnedRecords\": 4"), std::string::npos);
  EXPECT_NE(all.body.find("\"minLevel\": \"debug\""), std::string::npos);

  // ?level= is a floor: warn admits warn and error.
  const HttpGetResult warns =
      httpGet("127.0.0.1", admin.port(), "/logz?level=warn");
  EXPECT_NE(warns.body.find("\"returnedRecords\": 2"), std::string::npos);
  EXPECT_EQ(countOccurrences(warns.body, "routine"), 0);
  EXPECT_EQ(countOccurrences(warns.body, "trouble"), 1);

  // ?trace= narrows to one request's records.
  const HttpGetResult traced = httpGet(
      "127.0.0.1", admin.port(), "/logz?trace=" + obs::formatTraceId(wanted));
  EXPECT_NE(traced.body.find("\"returnedRecords\": 2"), std::string::npos);
  EXPECT_NE(traced.body.find("\"trace\": \"" + obs::formatTraceId(wanted) + "\""),
            std::string::npos);
  EXPECT_EQ(countOccurrences(traced.body, "routine"), 0);

  // ?limit= keeps the most recent records.
  const HttpGetResult limited =
      httpGet("127.0.0.1", admin.port(), "/logz?limit=1");
  EXPECT_NE(limited.body.find("\"returnedRecords\": 1"), std::string::npos);
  EXPECT_EQ(countOccurrences(limited.body, "boom"), 1);
  admin.stop();

  // Without a recorder the endpoint stays up and says so.
  obs::AdminServer bare;
  bare.start();
  const HttpGetResult off = httpGet("127.0.0.1", bare.port(), "/logz");
  EXPECT_EQ(off.status, 200);
  EXPECT_NE(off.body.find("\"enabled\": false"), std::string::npos);
}

TEST(AdminServer, SlozAndStatszCarryTheSloSection) {
  auto slo = std::make_shared<obs::SloTracker>();
  std::atomic<std::uint64_t> good{99};
  std::atomic<std::uint64_t> total{100};
  slo->setAvailabilitySource([&] { return good.load(); },
                             [&] { return total.load(); });
  obs::AdminServer admin;
  admin.setSlo(slo);
  admin.start();
  const HttpGetResult sloz = httpGet("127.0.0.1", admin.port(), "/sloz");
  EXPECT_EQ(sloz.status, 200);
  EXPECT_TRUE(parsesAsJson(sloz.body)) << sloz.body;
  EXPECT_NE(sloz.body.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(sloz.body.find("\"availabilityTarget\""), std::string::npos);
  EXPECT_NE(sloz.body.find("\"windows\""), std::string::npos);
  const HttpGetResult statsz = httpGet("127.0.0.1", admin.port(), "/statsz");
  EXPECT_TRUE(parsesAsJson(statsz.body)) << statsz.body;
  EXPECT_NE(statsz.body.find("\"slo\": {"), std::string::npos);
  admin.stop();

  obs::AdminServer bare;
  bare.start();
  const HttpGetResult off = httpGet("127.0.0.1", bare.port(), "/sloz");
  EXPECT_EQ(off.status, 200);
  EXPECT_NE(off.body.find("\"enabled\": false"), std::string::npos);
  const HttpGetResult plainStats =
      httpGet("127.0.0.1", bare.port(), "/statsz");
  EXPECT_EQ(plainStats.body.find("\"slo\""), std::string::npos);
}

TEST(AdminServer, ReadyzDegradedDetailNamesEveryHook) {
  std::atomic<bool> accepting{false};
  obs::AdminServer admin;
  admin.addReadiness("serve-accepting", [&] { return accepting.load(); });
  admin.addReadiness("warmup", [] { return true; });
  admin.setSlo(std::make_shared<obs::SloTracker>());
  admin.start();
  // The bare view keeps the terse text contract.
  EXPECT_EQ(httpGet("127.0.0.1", admin.port(), "/readyz").body, "unready\n");
  // The detail view carries the same status code with a JSON body naming
  // each hook, plus the SLO burn status when a tracker is mounted.
  const HttpGetResult down =
      httpGet("127.0.0.1", admin.port(), "/readyz?degraded");
  EXPECT_EQ(down.status, 503);
  EXPECT_TRUE(parsesAsJson(down.body)) << down.body;
  EXPECT_NE(down.body.find("\"ready\": false"), std::string::npos);
  EXPECT_NE(down.body.find(
                "{\"name\": \"serve-accepting\", \"ready\": false}"),
            std::string::npos);
  EXPECT_NE(down.body.find("{\"name\": \"warmup\", \"ready\": true}"),
            std::string::npos);
  EXPECT_NE(down.body.find("\"degraded\": false"), std::string::npos);
  EXPECT_NE(down.body.find("\"slo\""), std::string::npos);
  accepting.store(true);
  const HttpGetResult up =
      httpGet("127.0.0.1", admin.port(), "/readyz?degraded");
  EXPECT_EQ(up.status, 200);
  EXPECT_NE(up.body.find("\"ready\": true"), std::string::npos);
}

TEST(AdminServer, MountingAfterStartThrows) {
  obs::AdminServer admin;
  admin.start();
  EXPECT_THROW(admin.addMetrics(std::make_shared<obs::MetricsRegistry>()),
               std::logic_error);
  EXPECT_THROW(admin.addStatsProvider("x", [] { return std::string("1"); }),
               std::logic_error);
  EXPECT_THROW(admin.addReadiness([] { return true; }),
               std::logic_error);
  EXPECT_THROW(admin.setTracer(nullptr), std::logic_error);
  EXPECT_THROW(admin.setLog(nullptr), std::logic_error);
  EXPECT_THROW(admin.setSlo(nullptr), std::logic_error);
}

// ---------------------------------------------------------------------------
// The concurrent-scrape hammer: every admin endpoint scraped from many
// threads while the DetectionServer runs real detection traffic. Run
// under TSan via the `net` ctest label; every response must parse.

TEST(AdminServer, ConcurrentScrapesDuringDetectionTrafficAllParse) {
  hsd::tests::FixtureSpec spec;
  spec.hotspots = 12;
  spec.nonHotspots = 48;
  spec.width = 20000;
  spec.height = 20000;
  spec.sites = 8;
  const hsd::tests::DetectorFixture& fx = hsd::tests::detectorFixture(spec);

  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.threadsPerContext = 1;
  cfg.tracer = std::make_shared<obs::TraceRecorder>();
  serve::DetectionServer server(cfg);

  obs::AdminServer admin;
  admin.addMetrics(server.metrics());
  admin.setTracer(cfg.tracer);
  admin.addStatsProvider("serve", [&server] { return server.statsJson(); });
  admin.addReadiness([&server] { return server.accepting(); });
  admin.start();
  const std::uint16_t port = admin.port();
  EXPECT_EQ(httpGet("127.0.0.1", port, "/readyz").status, 200);

  // Detection traffic: a stream of real evaluations on the fixture.
  constexpr int kRequests = 6;
  core::EvalParams ep;
  ep.threads = 1;
  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i)
    futs.push_back(server.submit(fx.detector, fx.test.layout, ep));

  // Scrapers: four threads cycling through every endpoint.
  constexpr int kScrapers = 4;
  constexpr int kRounds = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([port, &failures] {
      const char* targets[] = {"/metrics", "/tracez?limit=64", "/statsz",
                               "/healthz"};
      for (int round = 0; round < kRounds; ++round) {
        const std::string target(targets[round % 4]);
        try {
          const HttpGetResult res = httpGet("127.0.0.1", port, target);
          bool good = res.status == 200;
          if (target == "/metrics")
            good = good && res.body.find(
                               "hsd_serve_requests_submitted_total") !=
                               std::string::npos;
          else if (target != "/healthz")
            good = good && parsesAsJson(res.body);
          if (!good) ++failures;
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  std::size_t ok = 0;
  for (auto& f : futs) ok += f.get().ok() ? 1 : 0;
  EXPECT_EQ(ok, std::size_t(kRequests));
  EXPECT_EQ(failures.load(), 0);

  // Drain flips readiness off while the admin surface stays live.
  server.shutdown();
  EXPECT_EQ(httpGet("127.0.0.1", port, "/readyz").status, 503);
  EXPECT_EQ(httpGet("127.0.0.1", port, "/healthz").status, 200);
  const HttpGetResult finalStats = httpGet("127.0.0.1", port, "/statsz");
  EXPECT_TRUE(parsesAsJson(finalStats.body)) << finalStats.body;
  EXPECT_NE(finalStats.body.find("\"submitted\": 6"), std::string::npos);
}

}  // namespace
}  // namespace hsd::net
