// Synthetic benchmark generator tests: determinism, label consistency with
// the oracle, suite shape, and layout ground-truth sanity.
#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "geom/rectset.hpp"

namespace hsd::data {
namespace {

TEST(Motifs, AllKindsProduceGeometryInsideClip) {
  GeneratorParams gp;
  Rng rng(1);
  const Rect win{0, 0, gp.clip.clipSide, gp.clip.clipSide};
  for (int k = 0; k < int(MotifKind::kCount); ++k) {
    for (const Risk r : {Risk::kSafe, Risk::kMarginal, Risk::kRisky}) {
      const auto rects = makeMotif(MotifKind(k), r, AmbitStyle::kSparse,
                                   gp.dims, gp.clip, rng);
      EXPECT_FALSE(rects.empty()) << k;
      for (const Rect& rect : rects) {
        EXPECT_TRUE(win.contains(rect)) << k;
        EXPECT_FALSE(rect.empty());
      }
    }
  }
}

TEST(Motifs, WireFabricRespectsRegion) {
  const auto rects = wireFabric({100, 200, 2000, 3000}, 180, 400, 50);
  EXPECT_FALSE(rects.empty());
  for (const Rect& r : rects) {
    EXPECT_GE(r.lo.x, 100);
    EXPECT_LE(r.hi.x, 2000);
    EXPECT_EQ(r.lo.y, 200);
    EXPECT_EQ(r.hi.y, 3000);
    EXPECT_EQ(r.width(), 180);
  }
}

TEST(Motifs, DeterministicGivenSeed) {
  GeneratorParams gp;
  Rng a(77), b(77);
  const auto r1 = makeMotif(MotifKind::kUShape, Risk::kRisky,
                            AmbitStyle::kDense, gp.dims, gp.clip, a);
  const auto r2 = makeMotif(MotifKind::kUShape, Risk::kRisky,
                            AmbitStyle::kDense, gp.dims, gp.clip, b);
  EXPECT_EQ(r1, r2);
}

TEST(TrainingSet, MeetsTargetsAndLabelsMatchOracle) {
  GeneratorParams gp;
  gp.seed = 4;
  TrainingTargets t;
  t.hotspots = 15;
  t.nonHotspots = 50;
  const auto set = generateTrainingSet(gp, t);
  std::size_t hs = 0, nhs = 0;
  const litho::LithoSimulator sim(gp.litho);
  for (const Clip& c : set.clips) {
    ASSERT_NE(c.label(), Label::kUnknown);
    (c.label() == Label::kHotspot ? hs : nhs) += 1;
    // Label must agree with a fresh oracle run.
    EXPECT_EQ(c.label() == Label::kHotspot,
              sim.isHotspot(c.rectsOn(gp.layer), c.window().core,
                            c.window().clip));
  }
  EXPECT_EQ(hs, 15u);
  EXPECT_EQ(nhs, 50u);
}

TEST(TrainingSet, DeterministicGivenSeed) {
  GeneratorParams gp;
  gp.seed = 9;
  TrainingTargets t;
  t.hotspots = 5;
  t.nonHotspots = 20;
  const auto a = generateTrainingSet(gp, t);
  const auto b = generateTrainingSet(gp, t);
  ASSERT_EQ(a.clips.size(), b.clips.size());
  for (std::size_t i = 0; i < a.clips.size(); ++i) {
    EXPECT_EQ(a.clips[i].label(), b.clips[i].label());
    EXPECT_EQ(a.clips[i].rectsOn(1), b.clips[i].rectsOn(1));
  }
}

TEST(TestLayoutGen, GroundTruthMatchesOracleResimulation) {
  GeneratorParams gp;
  gp.seed = 6;
  const auto test = generateTestLayout(gp, 25000, 25000, 9, 0.7);
  EXPECT_GT(test.motifSites, 0u);
  EXPECT_GT(test.layout.polygonCount(), 10u);
  // Every listed hotspot must re-verify against the full layout geometry.
  const litho::LithoSimulator sim(gp.litho);
  const auto& rects = test.layout.findLayer(gp.layer)->rects();
  for (const ClipWindow& w : test.actualHotspots) {
    std::vector<Rect> local;
    for (const Rect& r : rects)
      if (r.overlaps(w.clip)) local.push_back(r.intersect(w.clip));
    EXPECT_TRUE(sim.isHotspot(local, w.core, w.clip));
  }
}

TEST(TestLayoutGen, BackgroundIsMostlySafe) {
  // Sample background cores away from motif sites: the oracle should call
  // them non-hotspots (the fabric is drawn at safe dimensions).
  GeneratorParams gp;
  gp.seed = 13;
  const auto test = generateTestLayout(gp, 25000, 25000, 0, 0.0);
  EXPECT_TRUE(test.actualHotspots.empty());
  const litho::LithoSimulator sim(gp.litho);
  const auto& rects = test.layout.findLayer(gp.layer)->rects();
  int hot = 0, checked = 0;
  for (Coord x = 4000; x < 20000; x += 5000) {
    for (Coord y = 4000; y < 20000; y += 5000) {
      const ClipWindow w = ClipWindow::atCore({x, y}, gp.clip);
      std::vector<Rect> local;
      for (const Rect& r : rects)
        if (r.overlaps(w.clip)) local.push_back(r.intersect(w.clip));
      if (local.empty()) continue;
      ++checked;
      hot += sim.isHotspot(local, w.core, w.clip) ? 1 : 0;
    }
  }
  EXPECT_GT(checked, 4);
  EXPECT_EQ(hot, 0) << "background fabric produced hotspots";
}

TEST(Suite, FiveBenchmarksShapedLikeTableI) {
  const auto specs = iccad2012LikeSuite();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_TRUE(specs[0].node32);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_FALSE(specs[i].node32);
  // Training imbalance: non-hotspots outnumber hotspots everywhere.
  for (const auto& s : specs)
    EXPECT_GT(s.targets.nonHotspots, s.targets.hotspots);
  // benchmark3 is the largest training set, benchmark5 the smallest,
  // mirroring Table I's ordering.
  EXPECT_GT(specs[2].targets.hotspots, specs[0].targets.hotspots);
  EXPECT_LT(specs[4].targets.hotspots, specs[3].targets.hotspots);
}

TEST(Suite, GenerateBenchmarkEndToEnd) {
  auto spec = iccad2012LikeSuite()[4];  // smallest
  spec.targets.hotspots = 8;
  spec.targets.nonHotspots = 30;
  spec.width = 24000;
  spec.height = 24000;
  spec.sites = 6;
  const Benchmark b = generateBenchmark(spec);
  EXPECT_EQ(b.process, "28nm");
  EXPECT_EQ(b.training.clips.size(), 38u);
  EXPECT_GT(b.test.layout.polygonCount(), 0u);
}

}  // namespace
}  // namespace hsd::data
