// The paper's worked examples, executed against the implementation:
// Fig. 4 (two-level classification of A, B, C, D), Fig. 5 (directional
// slice codes), Fig. 8 (the "mountain" pattern's critical features), and
// Fig. 10 (identical cores, different ambit -> different verdicts).
#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "core/features.hpp"
#include "core/topo_string.hpp"
#include "geom/density_grid.hpp"
#include "litho/litho.hpp"

namespace hsd::core {
namespace {

CorePattern pattern(Coord w, Coord h, std::vector<Rect> rects) {
  CorePattern p;
  p.w = w;
  p.h = h;
  p.rects = std::move(rects);
  return p;
}

// Fig. 4: A and D share one topology (single bar, different dimensions);
// B and C are both crosses (same topology) but with different polygon
// distribution. String level -> {A, D}, {B, C}; density level splits
// {B}, {C}.
TEST(PaperFig4, TwoLevelClassification) {
  const CorePattern A = pattern(1200, 1200, {{200, 0, 400, 1200}});
  const CorePattern D = pattern(1200, 1200, {{500, 0, 900, 1200}});
  // Crosses: same topology, very different arm mass distribution.
  const CorePattern B = pattern(
      1200, 1200, {{500, 0, 700, 1200}, {0, 500, 1200, 700}});
  const CorePattern C = pattern(
      1200, 1200, {{100, 0, 220, 1200}, {0, 980, 1200, 1100}});

  // String level: two groups.
  EXPECT_EQ(canonicalTopoKey(A), canonicalTopoKey(D));
  EXPECT_EQ(canonicalTopoKey(B), canonicalTopoKey(C));
  EXPECT_NE(canonicalTopoKey(A), canonicalTopoKey(B));

  // Density level: {A, D} stay together, {B, C} split. The paper's
  // premise is that A/D are closer in density space than B/C; place the
  // radius between the two measured distances.
  const auto gridOf = [](const CorePattern& p) {
    return DensityGrid(p.rects, p.window(), 12, 12);
  };
  const double dAD = gridOf(A).distance(gridOf(D));
  const double dBC = gridOf(B).distance(gridOf(C));
  ASSERT_LT(dAD, dBC);
  ClassifyParams cp;
  cp.radiusR0 = (dAD + dBC) / 2.0;
  const auto clusters = classifyPatterns({A, B, C, D}, cp);
  ASSERT_EQ(clusters.size(), 3u);
  // Find A's cluster: it must contain D (indices 0 and 3).
  bool adTogether = false, bcApart = true;
  for (const Cluster& cl : clusters) {
    const bool hasA = std::count(cl.members.begin(), cl.members.end(), 0u);
    const bool hasD = std::count(cl.members.begin(), cl.members.end(), 3u);
    const bool hasB = std::count(cl.members.begin(), cl.members.end(), 1u);
    const bool hasC = std::count(cl.members.begin(), cl.members.end(), 2u);
    if (hasA && hasD) adTogether = true;
    if (hasB && hasC) bcApart = false;
  }
  EXPECT_TRUE(adTogether);
  EXPECT_TRUE(bcApart);
}

// Fig. 5(a): a core whose left half is fully covered and whose right half
// holds a floating block yields the downward string <3, 10> — in binary
// <11, 1010> reading boundary-then-runs from the bottom.
TEST(PaperFig5, DownwardStringCodes) {
  const CorePattern p =
      pattern(100, 100, {{0, 0, 50, 100}, {50, 40, 100, 60}});
  const DirectionalStrings s = encodeStrings(p);
  ASSERT_EQ(s.bottom.size(), 2u);
  // "3" = 11b: boundary bit + one block run.
  EXPECT_EQ(s.bottom[0].len, 2);
  EXPECT_EQ(s.bottom[0].bits, 0b11u);
  // "10" (decimal) = 1010b: boundary, space, block, space (LSB-first
  // storage: bit0=1 boundary, bit1=0, bit2=1, bit3=0).
  EXPECT_EQ(s.bottom[1].len, 4);
  EXPECT_EQ(s.bottom[1].bits, 0b0101u);
}

// Theorem 1 mechanics: two adjacent side strings of a pattern are found in
// the ccw or cw composite of every orientation of the same pattern, and in
// no composite of a different topology.
TEST(PaperTheorem1, CompositeSearchSemantics) {
  const CorePattern base = pattern(
      1200, 1200, {{100, 100, 400, 900}, {600, 300, 1100, 600}});
  for (const Orient o : kAllOrients)
    EXPECT_TRUE(sameTopology(base, base.transformed(o))) << toString(o);
  const CorePattern other =
      pattern(1200, 1200, {{100, 100, 400, 900}});
  EXPECT_FALSE(sameTopology(base, other));
}

// Fig. 8: the "mountain" pattern. The paper extracts the peak's internal
// feature, the external spacings around the foothills, and segment
// features at the boundary.
TEST(PaperFig8, MountainFeatures) {
  CorePattern p = pattern(1200, 1200,
                          {
                              {200, 100, 400, 450},    // left foothill
                              {500, 100, 700, 850},    // peak ("h")
                              {800, 100, 1000, 550},   // right foothill
                          });
  const auto rules = extractRuleRects(p);

  // Internal feature with the peak's dimensions.
  bool peakInternal = false;
  for (const RuleRect& r : rules)
    if (r.kind == FeatKind::kInternal && r.w == 200 && r.h == 750)
      peakInternal = true;
  EXPECT_TRUE(peakInternal);

  // External features: the two 100nm gaps between foothills and peak.
  int gaps = 0;
  for (const RuleRect& r : rules)
    if (r.kind == FeatKind::kExternal && r.w == 100) ++gaps;
  EXPECT_EQ(gaps, 2);

  // Segment features at the window boundary exist.
  bool segment = false;
  for (const RuleRect& r : rules)
    if (r.kind == FeatKind::kSegment) segment = true;
  EXPECT_TRUE(segment);
}

// Fig. 10: an identical core pattern whose *ambit* decides the verdict —
// the reason the feedback kernel uses core+ambit features.
TEST(PaperFig10, AmbitDistinguishesIdenticalCores) {
  const litho::LithoSimulator sim;
  const ClipParams cp;
  const ClipWindow cw = ClipWindow::atCore({1800, 1800}, cp);
  // A marginal wire hugging the core's left edge: pinches when isolated.
  Coord w = 0;
  for (Coord cand = 100; cand <= 220; cand += 2) {
    const std::vector<Rect> wire{{1820, 0, 1820 + cand, 4800}};
    if (!sim.check(wire, cw.core, cw.clip).pinch) {
      w = cand - 2;
      break;
    }
  }
  ASSERT_GT(w, 0);
  const Rect coreWire{1820, 0, 1820 + w, 4800};

  // Clip A: the wire alone. Clip B: the same wire plus company strictly
  // inside the *ambit* (x < 1800). The two cores are geometrically
  // identical — only the ambit differs (Fig. 10's setup).
  Clip a(cw, Label::kUnknown);
  a.setRects(1, {coreWire});
  Clip b(cw, Label::kUnknown);
  b.setRects(1, {coreWire,
                 {1600, 0, 1760, 4800},
                 {1380, 0, 1540, 4800}});
  ASSERT_EQ(a.localCoreRects(1), b.localCoreRects(1));

  const bool hotspotA =
      sim.check(a.rectsOn(1), cw.core, cw.clip).hotspot();
  const bool hotspotB =
      sim.check(b.rectsOn(1), cw.core, cw.clip).hotspot();
  EXPECT_TRUE(hotspotA);
  EXPECT_FALSE(hotspotB) << "ambit company should rescue the edge wire";
}

}  // namespace
}  // namespace hsd::core
