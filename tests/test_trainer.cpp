// Trainer tests: shift derivatives, population balancing, multi-kernel
// learning, feedback kernel, detector persistence, and learning sanity
// (detects what it was trained on, generalizes to unseen variants).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "common.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"

namespace hsd::core {
namespace {

using tests::lineClip;
using tests::lineTrainingSet;

TEST(ShiftDerivatives, FourWayPlusOriginal) {
  const Clip c = lineClip(100, Label::kHotspot);
  const auto d = shiftDerivatives(c, 120);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d[0].window(), c.window());
  // Derivative windows are shifted; geometry stays in place.
  EXPECT_EQ(d[1].window().core.lo, Point(1920, 1800));
  EXPECT_EQ(d[1].rectsOn(1), c.rectsOn(1));
  // Zero shift degenerates to just the original.
  EXPECT_EQ(shiftDerivatives(c, 0).size(), 1u);
}

TEST(Trainer, ThrowsWithoutBothClasses) {
  std::vector<Clip> onlyHs{lineClip(100, Label::kHotspot)};
  EXPECT_THROW(trainDetector(onlyHs, {}), std::invalid_argument);
}

TEST(Trainer, LearnsWidthBoundary) {
  TrainParams tp;
  const Detector det = trainDetector(lineTrainingSet(), tp);
  EXPECT_GE(det.kernels.size(), 1u);
  EXPECT_GT(det.stats.upsampledHotspots, det.stats.rawHotspots);

  // Training-like patterns classify correctly.
  EXPECT_TRUE(det.evaluateClip(lineClip(100, Label::kUnknown)));
  EXPECT_FALSE(det.evaluateClip(lineClip(220, Label::kUnknown)));
  // Unseen jitter positions generalize (the fuzziness property).
  EXPECT_TRUE(det.evaluateClip(lineClip(104, Label::kUnknown, 57)));
}

TEST(Trainer, StatsArePopulated) {
  const Detector det = trainDetector(lineTrainingSet(), {});
  EXPECT_EQ(det.stats.rawHotspots, 12u);
  EXPECT_EQ(det.stats.rawNonHotspots, 40u);
  EXPECT_EQ(det.stats.upsampledHotspots, 60u);
  EXPECT_GE(det.stats.hotspotClusters, 1u);
  EXPECT_LE(det.stats.balancedNonHotspots, 40u);
  EXPECT_GT(det.stats.trainSeconds, 0.0);
}

TEST(Trainer, ShiftDisabledKeepsRawCount) {
  TrainParams tp;
  tp.enableShift = false;
  const Detector det = trainDetector(lineTrainingSet(), tp);
  EXPECT_EQ(det.stats.upsampledHotspots, det.stats.rawHotspots);
}

TEST(Trainer, BalancingOffUsesAllNonHotspots) {
  TrainParams tp;
  tp.balancePopulation = false;
  const Detector det = trainDetector(lineTrainingSet(), tp);
  EXPECT_EQ(det.stats.balancedNonHotspots, 40u);
}

TEST(Trainer, DecisionValueOrdersByRisk) {
  const Detector det = trainDetector(lineTrainingSet(), {});
  const double risky =
      det.decisionValue(CorePattern::fromCore(lineClip(100, Label::kUnknown), 1));
  const double safe =
      det.decisionValue(CorePattern::fromCore(lineClip(220, Label::kUnknown), 1));
  EXPECT_GT(risky, safe);
}

TEST(Trainer, BiasTradesRecallForPrecision) {
  const Detector det = trainDetector(lineTrainingSet(), {});
  // With a huge positive bias nothing is flagged.
  EXPECT_FALSE(det.evaluateClip(lineClip(100, Label::kUnknown), 1e6));
  // With a huge negative bias everything is flagged (before feedback).
  EXPECT_TRUE(det.evaluateCore(
      CorePattern::fromCore(lineClip(220, Label::kUnknown), 1), -1e6));
}

TEST(Trainer, SaveLoadRoundTrip) {
  const Detector det = trainDetector(lineTrainingSet(), {});
  std::stringstream ss;
  det.save(ss);
  const Detector back = Detector::load(ss);
  ASSERT_EQ(back.kernels.size(), det.kernels.size());
  EXPECT_EQ(back.hasFeedback, det.hasFeedback);
  EXPECT_EQ(back.params.clip, det.params.clip);
  EXPECT_EQ(back.params.layer, det.params.layer);
  // Decisions identical after reload.
  for (const Coord w : {90, 120, 160, 200, 240}) {
    const Clip probe = lineClip(w, Label::kUnknown, 33);
    EXPECT_EQ(back.evaluateClip(probe), det.evaluateClip(probe)) << w;
  }
}

TEST(Trainer, LoadRejectsGarbage) {
  std::stringstream ss("garbage");
  EXPECT_THROW(Detector::load(ss), std::runtime_error);
}

TEST(Trainer, FeedbackKernelTrainsOnOracleLabeledData) {
  // On a realistic generated set the self-evaluation usually finds extras;
  // verify the feedback path runs and the detector still works.
  data::GeneratorParams gp;
  gp.seed = 19;
  data::TrainingTargets t;
  t.hotspots = 25;
  t.nonHotspots = 100;
  const auto set = data::generateTrainingSet(gp, t);
  TrainParams tp;
  const Detector det = trainDetector(set.clips, tp);
  EXPECT_GE(det.kernels.size(), 1u);
  // Self-consistency: most hotspot training clips are detected.
  std::size_t hit = 0, hs = 0;
  for (const Clip& c : set.clips) {
    if (c.label() != Label::kHotspot) continue;
    ++hs;
    hit += det.evaluateClip(c) ? 1 : 0;
  }
  EXPECT_GE(double(hit) / double(hs), 0.8);
}

TEST(Trainer, MultithreadMatchesSingleThread) {
  TrainParams t1;
  t1.threads = 1;
  TrainParams t4 = t1;
  t4.threads = 4;
  const Detector a = trainDetector(lineTrainingSet(), t1);
  const Detector b = trainDetector(lineTrainingSet(), t4);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (const Coord w : {95, 130, 180, 230}) {
    const Clip probe = lineClip(w, Label::kUnknown, -41);
    EXPECT_EQ(a.evaluateClip(probe), b.evaluateClip(probe)) << w;
  }
}

}  // namespace
}  // namespace hsd::core
