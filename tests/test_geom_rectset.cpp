// Rect-set operation tests: clipping, union area (vs brute-force pixel
// counting), band normalization, boundary statistics, spacing metrics.
#include <gtest/gtest.h>

#include <random>

#include "geom/rectset.hpp"

namespace hsd {
namespace {

TEST(ClipRects, DropsDisjointKeepsOverlap) {
  const Rect win{0, 0, 100, 100};
  const std::vector<Rect> in{{-10, -10, 5, 5}, {200, 200, 210, 210},
                             {90, 90, 120, 120}, {100, 0, 110, 10}};
  const std::vector<Rect> out = clipRects(in, win);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Rect(0, 0, 5, 5));
  EXPECT_EQ(out[1], Rect(90, 90, 100, 100));
}

TEST(UnionArea, OverlapCountedOnce) {
  const std::vector<Rect> rs{{0, 0, 10, 10}, {5, 5, 15, 15}};
  EXPECT_EQ(unionArea(rs), 100 + 100 - 25);
}

TEST(UnionArea, DisjointSums) {
  const std::vector<Rect> rs{{0, 0, 10, 10}, {20, 0, 30, 10}};
  EXPECT_EQ(unionArea(rs), 200);
}

TEST(UnionArea, ContainedRectIgnored) {
  const std::vector<Rect> rs{{0, 0, 10, 10}, {2, 2, 8, 8}};
  EXPECT_EQ(unionArea(rs), 100);
}

TEST(UnionAreaProperty, MatchesBruteForceOnRandomSets) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<Coord> c(0, 30);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rect> rs;
    for (int i = 0; i < 6; ++i) {
      Coord x1 = c(rng), x2 = c(rng), y1 = c(rng), y2 = c(rng);
      if (x1 == x2 || y1 == y2) continue;
      rs.push_back({x1, y1, x2, y2});
    }
    // Brute force: count unit cells.
    Area brute = 0;
    for (Coord x = 0; x < 30; ++x)
      for (Coord y = 0; y < 30; ++y) {
        const Rect cell{x, y, x + 1, y + 1};
        for (const Rect& r : rs)
          if (r.overlaps(cell)) {
            ++brute;
            break;
          }
      }
    EXPECT_EQ(unionArea(rs), brute);
  }
}

TEST(NormalizeBands, ProducesDisjointCover) {
  const std::vector<Rect> rs{{0, 0, 10, 10}, {5, 5, 15, 15}, {0, 5, 3, 20}};
  const std::vector<Rect> bands = normalizeBands(rs);
  Area total = 0;
  for (std::size_t i = 0; i < bands.size(); ++i) {
    total += bands[i].area();
    for (std::size_t j = i + 1; j < bands.size(); ++j)
      EXPECT_FALSE(bands[i].overlaps(bands[j]));
  }
  EXPECT_EQ(total, unionArea(rs));
}

TEST(BoundaryStats, SingleRect) {
  const BoundaryStats st = boundaryStats({{0, 0, 10, 10}});
  EXPECT_EQ(st.convexCorners, 4);
  EXPECT_EQ(st.concaveCorners, 0);
  EXPECT_EQ(st.touchPoints, 0);
}

TEST(BoundaryStats, LShapeHasConcaveCorner) {
  // L from two rects sharing an edge.
  const BoundaryStats st =
      boundaryStats({{0, 0, 10, 5}, {0, 5, 5, 10}});
  EXPECT_EQ(st.convexCorners, 5);
  EXPECT_EQ(st.concaveCorners, 1);
  EXPECT_EQ(st.touchPoints, 0);
}

TEST(BoundaryStats, CornerTouchDetected) {
  // Two rects meeting only at (10,10).
  const BoundaryStats st =
      boundaryStats({{0, 0, 10, 10}, {10, 10, 20, 20}});
  EXPECT_EQ(st.touchPoints, 1);
  EXPECT_EQ(st.convexCorners, 6);  // the shared corner is a touch, not convex
}

TEST(BoundaryStats, MergedRectsNoInternalCorners) {
  // Two abutting rects forming one 20x10 rect: interior edge invisible.
  const BoundaryStats st =
      boundaryStats({{0, 0, 10, 10}, {10, 0, 20, 10}});
  EXPECT_EQ(st.convexCorners, 4);
  EXPECT_EQ(st.concaveCorners, 0);
  EXPECT_EQ(st.touchPoints, 0);
}

TEST(MinExternalSpacing, TwoFacingRects) {
  const Rect win{0, 0, 100, 100};
  EXPECT_EQ(minExternalSpacing({{0, 0, 10, 50}, {25, 0, 40, 50}}, win), 15);
  // Vertical facing pair.
  EXPECT_EQ(minExternalSpacing({{0, 0, 50, 10}, {0, 18, 50, 30}}, win), 8);
}

TEST(MinExternalSpacing, NoPairReturnsMinusOne) {
  const Rect win{0, 0, 100, 100};
  EXPECT_EQ(minExternalSpacing({{0, 0, 10, 10}}, win), -1);
  EXPECT_EQ(minExternalSpacing({}, win), -1);
}

TEST(MinInternalWidth, ThinWire) {
  EXPECT_EQ(minInternalWidth({{0, 0, 5, 100}}), 5);
  EXPECT_EQ(minInternalWidth({{0, 0, 100, 7}}), 7);
}

TEST(MinInternalWidth, NeckBetweenPlates) {
  // Dumbbell: two 20-wide plates joined by a 4-wide neck.
  const std::vector<Rect> rs{
      {0, 0, 20, 20}, {8, 20, 12, 40}, {0, 40, 20, 60}};
  EXPECT_EQ(minInternalWidth(rs), 4);
}

TEST(CoveredX, RequiresFullBandSpan) {
  const std::vector<Rect> rs{{0, 0, 10, 5}, {20, 2, 30, 8}};
  // Band [0,5): only the first rect spans it fully.
  const auto iv = coveredX(rs, 0, 5);
  ASSERT_EQ(iv.size(), 1u);
  EXPECT_EQ(iv[0], Interval(0, 10));
  // Band [2,5): both span.
  EXPECT_EQ(coveredX(rs, 2, 5).size(), 2u);
}

}  // namespace
}  // namespace hsd
