// GDSII robustness tests: malformed streams must fail with GdsError, not
// crash or hang; benign unknown records are skipped.
#include <gtest/gtest.h>

#include <sstream>

#include "gds/gdsii.hpp"
#include "gds/real8.hpp"

namespace hsd::gds {
namespace {

void putU16(std::ostream& os, std::uint16_t v) {
  const char b[2] = {char(v >> 8), char(v & 0xff)};
  os.write(b, 2);
}
void putRec(std::ostream& os, std::uint16_t type,
            const std::vector<std::uint8_t>& d = {}) {
  putU16(os, std::uint16_t(4 + d.size()));
  putU16(os, type);
  os.write(reinterpret_cast<const char*>(d.data()), std::streamsize(d.size()));
}
std::vector<std::uint8_t> i16s(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> d;
  for (int v : vals) {
    d.push_back(std::uint8_t(std::uint16_t(v) >> 8));
    d.push_back(std::uint8_t(v & 0xff));
  }
  return d;
}
std::vector<std::uint8_t> str(const std::string& s) {
  std::vector<std::uint8_t> d(s.begin(), s.end());
  if (d.size() % 2) d.push_back(0);
  return d;
}
std::vector<std::uint8_t> real8(double v) {
  std::vector<std::uint8_t> d;
  const std::uint64_t raw = encodeReal8(v);
  for (int b = 7; b >= 0; --b) d.push_back(std::uint8_t((raw >> (8 * b)) & 0xff));
  return d;
}

std::stringstream binaryStream() {
  return std::stringstream(std::ios::in | std::ios::out | std::ios::binary);
}

TEST(GdsRobust, EmptyStreamThrows) {
  auto ss = binaryStream();
  EXPECT_THROW(readGdsii(ss), GdsError);
}

TEST(GdsRobust, TruncatedRecordThrows) {
  auto ss = binaryStream();
  putU16(ss, 100);  // claims 100 bytes, provides none
  putU16(ss, 0x0002);
  EXPECT_THROW(readGdsii(ss), GdsError);
}

TEST(GdsRobust, RecordLengthBelowHeaderThrows) {
  auto ss = binaryStream();
  putU16(ss, 2);  // < 4
  putU16(ss, 0x0002);
  EXPECT_THROW(readGdsii(ss), GdsError);
}

TEST(GdsRobust, ElementOutsideStructureThrows) {
  auto ss = binaryStream();
  putRec(ss, 0x0002, i16s({600}));
  putRec(ss, 0x0800);           // BOUNDARY with no BGNSTR
  putRec(ss, 0x1100);           // ENDEL
  putRec(ss, 0x0400);           // ENDLIB
  EXPECT_THROW(readGdsii(ss), GdsError);
}

TEST(GdsRobust, UndefinedReferenceThrows) {
  auto ss = binaryStream();
  putRec(ss, 0x0002, i16s({600}));
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("TOP"));
  putRec(ss, 0x0A00);
  putRec(ss, 0x1206, str("MISSING"));
  putRec(ss, 0x1003, i16s({0, 0, 0, 0}));
  putRec(ss, 0x1100);
  putRec(ss, 0x0700);
  putRec(ss, 0x0400);
  EXPECT_THROW(readGdsii(ss), std::runtime_error);
}

TEST(GdsRobust, NonManhattanAngleThrows) {
  auto ss = binaryStream();
  putRec(ss, 0x0002, i16s({600}));
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("A"));
  putRec(ss, 0x0700);
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("TOP"));
  putRec(ss, 0x0A00);
  putRec(ss, 0x1206, str("A"));
  putRec(ss, 0x1C05, real8(45.0));  // 45 degrees: unsupported
  putRec(ss, 0x1003, i16s({0, 0, 0, 0}));
  putRec(ss, 0x1100);
  putRec(ss, 0x0700);
  putRec(ss, 0x0400);
  EXPECT_THROW(readGdsii(ss), GdsError);
}

TEST(GdsRobust, MagnificationRejected) {
  auto ss = binaryStream();
  putRec(ss, 0x0002, i16s({600}));
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("A"));
  putRec(ss, 0x0700);
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("TOP"));
  putRec(ss, 0x0A00);
  putRec(ss, 0x1206, str("A"));
  putRec(ss, 0x1B05, real8(2.0));  // MAG != 1
  putRec(ss, 0x1003, i16s({0, 0, 0, 0}));
  putRec(ss, 0x1100);
  putRec(ss, 0x0700);
  putRec(ss, 0x0400);
  EXPECT_THROW(readGdsii(ss), GdsError);
}

TEST(GdsRobust, UnknownRecordsSkipped) {
  auto ss = binaryStream();
  putRec(ss, 0x0002, i16s({600}));
  putRec(ss, 0x1F02, i16s({42}));  // unknown record type: must be ignored
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("TOP"));
  putRec(ss, 0x0800);
  putRec(ss, 0x0D02, i16s({1}));
  putRec(ss, 0x0E02, i16s({0}));
  putRec(ss, 0x1003, [] {
    std::vector<std::uint8_t> d;
    for (int v : {0, 0, 10, 0, 10, 10, 0, 10, 0, 0}) {
      const auto u = std::uint32_t(v);
      d.push_back(std::uint8_t(u >> 24));
      d.push_back(std::uint8_t((u >> 16) & 0xff));
      d.push_back(std::uint8_t((u >> 8) & 0xff));
      d.push_back(std::uint8_t(u & 0xff));
    }
    return d;
  }());
  putRec(ss, 0x1100);
  putRec(ss, 0x0700);
  putRec(ss, 0x0400);
  const Layout out = readGdsii(ss);
  EXPECT_EQ(out.polygonCount(), 1u);
}

TEST(GdsRobust, MissingFileThrows) {
  EXPECT_THROW(readGdsiiFile("/nonexistent/nope.gds"), GdsError);
  EXPECT_THROW(readGdsiiHierarchyFile("/nonexistent/nope.gds"), GdsError);
  EXPECT_THROW(writeGdsiiFile("/nonexistent/dir/out.gds", Layout{}),
               GdsError);
}

}  // namespace
}  // namespace hsd::gds
