// Redundant clip removal tests: the key safety property (no actual hotspot
// whose core was overlapped before can be lost), reduction behavior, and
// the individual passes.
#include <gtest/gtest.h>

#include <random>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/removal.hpp"

namespace hsd::core {
namespace {

using tests::at;
using tests::emptyIndex;

TEST(Removal, EmptyInput) {
  const GridIndex idx = emptyIndex();
  EXPECT_TRUE(removeRedundantClips({}, idx, {}).empty());
}

TEST(Removal, SingleReportSurvives) {
  const GridIndex idx = emptyIndex();
  const auto out = removeRedundantClips({at(0, 0)}, idx, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], at(0, 0));
}

TEST(Removal, DisjointReportsUntouched) {
  const GridIndex idx = emptyIndex();
  const auto out =
      removeRedundantClips({at(0, 0), at(10000, 0), at(0, 10000)}, idx, {});
  EXPECT_EQ(out.size(), 3u);
}

TEST(Removal, PileOfOverlappingCoresShrinks) {
  // 25 reports piled on the same spot (cores overlapping heavily) must
  // come out as far fewer reframed cores.
  std::vector<ClipWindow> pile;
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) pile.push_back(at(i * 100, j * 100));
  const GridIndex idx = emptyIndex();
  const auto out = removeRedundantClips(pile, idx, {});
  EXPECT_LT(out.size(), pile.size());
  EXPECT_GE(out.size(), 1u);
}

TEST(Removal, CoverageGuarantee) {
  // Safety: any point covered by some input core stays covered by some
  // output core (so a hit on an actual hotspot cannot be lost).
  std::mt19937 rng(12);
  std::uniform_int_distribution<Coord> c(0, 20000);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ClipWindow> reports;
    for (int i = 0; i < 30; ++i) reports.push_back(at(c(rng), c(rng)));
    const GridIndex idx = emptyIndex();
    const auto out = removeRedundantClips(reports, idx, {});
    for (const ClipWindow& r : reports) {
      const Point center = r.core.center();
      bool covered = false;
      for (const ClipWindow& o : out)
        if (o.core.contains(center)) {
          covered = true;
          break;
        }
      EXPECT_TRUE(covered) << "lost coverage of a reported core center";
    }
  }
}

TEST(Removal, HitPreservation) {
  // Score before and after removal against synthetic actual hotspots:
  // hits must not decrease.
  std::mt19937 rng(23);
  std::uniform_int_distribution<Coord> c(0, 15000);
  std::vector<ClipWindow> actual;
  for (int i = 0; i < 6; ++i) actual.push_back(at(c(rng), c(rng)));
  // Reports: several noisy reports near each actual.
  std::vector<ClipWindow> reports;
  std::uniform_int_distribution<Coord> n(-300, 300);
  for (const ClipWindow& a : actual)
    for (int k = 0; k < 8; ++k)
      reports.push_back(at(a.core.lo.x + n(rng), a.core.lo.y + n(rng)));
  const Score before = scoreReports(reports, actual);
  const GridIndex idx = emptyIndex();
  const auto filtered = removeRedundantClips(reports, idx, {});
  const Score after = scoreReports(filtered, actual);
  EXPECT_GE(after.hits, before.hits);
  EXPECT_LE(filtered.size(), reports.size());
}

TEST(Removal, ReframePitchRespectsCoreSide) {
  // A long strip of >4 overlapping cores gets reframed at l_s < l_c; the
  // output cores must still tile the strip without gaps larger than l_c.
  std::vector<ClipWindow> strip;
  for (int i = 0; i < 12; ++i) strip.push_back(at(i * 200, 0));
  const GridIndex idx = emptyIndex();
  RemovalParams rp;
  const auto out = removeRedundantClips(strip, idx, rp);
  EXPECT_LT(out.size(), strip.size());
  // Strip x-extent [0, 200*11 + 1200]; all original core centers covered.
  for (const ClipWindow& r : strip) {
    bool covered = false;
    for (const ClipWindow& o : out)
      if (o.core.contains(r.core.center())) covered = true;
    EXPECT_TRUE(covered);
  }
}

TEST(Removal, ShiftRecentersOffsetClip) {
  // A report whose clip hugs the polygons on one side gets recentered
  // toward the geometry's center of gravity.
  // Geometry: a dense blob hugging the right edge of the reported clip.
  std::vector<Rect> geom;
  for (int i = 0; i < 5; ++i)
    geom.push_back({2500 + i * 150, 1000, 2600 + i * 150, 3800});
  const GridIndex idx(geom, tests::kClip.clipSide);
  RemovalParams rp;
  rp.maxMargin = 1440;
  const ClipWindow rep = at(300, 1800);  // clip [-1500..3300]: 4000nm left margin
  const auto out = removeRedundantClips({rep}, idx, rp);
  ASSERT_EQ(out.size(), 1u);
  // The surviving clip center moved toward the blob (x grew).
  EXPECT_GT(out[0].core.center().x, rep.core.center().x);
}

TEST(Removal, IdempotentOnCleanReports) {
  // Already-sparse reports pass through unchanged by a second application.
  const GridIndex idx = emptyIndex();
  const std::vector<ClipWindow> in{at(0, 0), at(8000, 2000), at(2000, 9000)};
  const auto once = removeRedundantClips(in, idx, {});
  const auto twice = removeRedundantClips(once, idx, {});
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace hsd::core
