// Property tests of the D8 orientation group: window closure, inverses,
// distinctness, and agreement between point- and rect-level transforms.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "geom/orientation.hpp"

namespace hsd {
namespace {

constexpr Coord kW = 120;
constexpr Coord kH = 80;

TEST(Orient, IdentityIsNoop) {
  EXPECT_EQ(apply(Orient::R0, Point(7, 9), kW, kH), Point(7, 9));
}

TEST(Orient, KnownMappings) {
  // Lower-left corner of the window under each orientation.
  const Point p{0, 0};
  EXPECT_EQ(apply(Orient::R90, p, kW, kH), Point(kH, 0));
  EXPECT_EQ(apply(Orient::R180, p, kW, kH), Point(kW, kH));
  EXPECT_EQ(apply(Orient::R270, p, kW, kH), Point(0, kW));
  EXPECT_EQ(apply(Orient::MX, p, kW, kH), Point(0, kH));
  EXPECT_EQ(apply(Orient::MY, p, kW, kH), Point(kW, 0));
  EXPECT_EQ(apply(Orient::MXR90, p, kW, kH), Point(0, 0));
  EXPECT_EQ(apply(Orient::MYR90, p, kW, kH), Point(kH, kW));
}

TEST(Orient, SwapsAxesIsConsistent) {
  EXPECT_FALSE(swapsAxes(Orient::R0));
  EXPECT_TRUE(swapsAxes(Orient::R90));
  EXPECT_FALSE(swapsAxes(Orient::R180));
  EXPECT_TRUE(swapsAxes(Orient::R270));
  EXPECT_FALSE(swapsAxes(Orient::MX));
  EXPECT_FALSE(swapsAxes(Orient::MY));
  EXPECT_TRUE(swapsAxes(Orient::MXR90));
  EXPECT_TRUE(swapsAxes(Orient::MYR90));
}

class OrientProperty : public ::testing::TestWithParam<Orient> {};

TEST_P(OrientProperty, StaysInsideTransformedWindow) {
  const Orient o = GetParam();
  std::mt19937 rng(7);
  std::uniform_int_distribution<Coord> dx(0, kW), dy(0, kH);
  const Coord tw = swapsAxes(o) ? kH : kW;
  const Coord th = swapsAxes(o) ? kW : kH;
  for (int i = 0; i < 200; ++i) {
    const Point p{dx(rng), dy(rng)};
    const Point q = apply(o, p, kW, kH);
    EXPECT_GE(q.x, 0);
    EXPECT_LE(q.x, tw);
    EXPECT_GE(q.y, 0);
    EXPECT_LE(q.y, th);
  }
}

TEST_P(OrientProperty, InverseRoundTripsPoints) {
  const Orient o = GetParam();
  const Orient inv = inverse(o);
  std::mt19937 rng(13);
  std::uniform_int_distribution<Coord> dx(0, kW), dy(0, kH);
  const Coord tw = swapsAxes(o) ? kH : kW;
  const Coord th = swapsAxes(o) ? kW : kH;
  for (int i = 0; i < 200; ++i) {
    const Point p{dx(rng), dy(rng)};
    const Point q = apply(o, p, kW, kH);
    EXPECT_EQ(apply(inv, q, tw, th), p) << toString(o);
  }
}

TEST_P(OrientProperty, RectTransformMatchesCornerTransform) {
  const Orient o = GetParam();
  std::mt19937 rng(21);
  std::uniform_int_distribution<Coord> dx(0, kW - 1), dy(0, kH - 1);
  for (int i = 0; i < 200; ++i) {
    Coord x1 = dx(rng), x2 = dx(rng) + 1;
    Coord y1 = dy(rng), y2 = dy(rng) + 1;
    const Rect r{x1, y1, x2, y2};
    const Rect t = apply(o, r, kW, kH);
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.area(), r.area()) << toString(o);
    // Corners map onto the transformed rect's corner set.
    const Point c = apply(o, r.lo, kW, kH);
    EXPECT_TRUE(c == t.lo || c == t.hi || c == Point(t.lo.x, t.hi.y) ||
                c == Point(t.hi.x, t.lo.y));
  }
}

TEST_P(OrientProperty, IsBijectiveOnLattice) {
  const Orient o = GetParam();
  std::set<Point> image;
  for (Coord x = 0; x <= 6; ++x)
    for (Coord y = 0; y <= 4; ++y) image.insert(apply(o, {x, y}, 6, 4));
  EXPECT_EQ(image.size(), 7u * 5u) << toString(o);
}

INSTANTIATE_TEST_SUITE_P(AllOrients, OrientProperty,
                         ::testing::ValuesIn(kAllOrients),
                         [](const auto& info) {
                           return toString(info.param);
                         });

TEST(Orient, EightDistinctTransforms) {
  // On an asymmetric probe point the eight orientations give 8 images.
  std::set<Point> images;
  for (const Orient o : kAllOrients)
    images.insert(apply(o, {1, 2}, 10, 20));
  EXPECT_EQ(images.size(), 8u);
}

}  // namespace
}  // namespace hsd
