// SMO kernel-row cache tests (ctest label: hotpath). Pins the PR-8 fixes
// on svm::QMatrix:
//  - the use-after-free regression: a tiny cache (two resident rows) plus
//    the solver's hold-qi-across-row(j) pattern used to evict row i's
//    storage while the solver still read it. Training with
//    kernelCacheBytes=1 crashes under ASan on the old code; here it must
//    run clean AND produce the byte-identical model a big cache produces
//    (eviction may cost recomputation, never correctness);
//  - true LRU: a cache *hit* refreshes recency (the old deque was FIFO —
//    a hot row could sit at the eviction front);
//  - pinned eviction: row(j, pinned=i) never selects i as the victim, and
//    the reference the caller holds to row i stays valid and unchanged.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "svm/qmatrix.hpp"
#include "svm/svm.hpp"

namespace hsd::svm {
namespace {

Dataset makeDataset(std::size_t n, std::size_t dim, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (double& x : v) x = u(rng);
    // Separable-ish labels with noise so SMO iterates a while (lots of
    // row() traffic, lots of eviction under a tiny cache).
    const int label = v[0] + 0.3 * v[1] > 0.5 + 0.1 * (u(rng) - 0.5) ? 1 : -1;
    d.add(std::move(v), label);
  }
  if (d.countLabel(1) == 0) d.y[0] = 1;
  if (d.countLabel(-1) == 0) d.y[0] = -1;
  return d;
}

// --------------------------------------------------------------------------
// The UAF regression: tiny cache, full SMO run.

TEST(QMatrixSolver, TinyCacheTrainsCleanAndMatchesBigCache) {
  const Dataset data = makeDataset(120, 6, 7u);

  SvmParams big;
  big.C = 10.0;
  big.gamma = 0.5;
  const TrainResult ref = train(data, big);

  SvmParams tiny = big;
  tiny.kernelCacheBytes = 1;  // clamps to the 2-row minimum: maximal churn
  const TrainResult out = train(data, tiny);

  // Eviction changes *when* rows are recomputed, never their values: the
  // solver must walk the identical iterate sequence to the identical model.
  EXPECT_EQ(out.iterations, ref.iterations);
  EXPECT_EQ(out.converged, ref.converged);
  ASSERT_EQ(out.model.supportVectorCount(), ref.model.supportVectorCount());
  EXPECT_EQ(out.model.rho(), ref.model.rho());
  EXPECT_EQ(out.model.coefficients(), ref.model.coefficients());
  EXPECT_EQ(out.model.supportVectors(), ref.model.supportVectors());
}

TEST(QMatrixSolver, TinyCacheBothWssVariants) {
  const Dataset data = makeDataset(80, 4, 21u);
  for (const bool wss2 : {false, true}) {
    SvmParams p;
    p.C = 5.0;
    p.gamma = 1.0;
    p.secondOrderWss = wss2;
    p.kernelCacheBytes = 1;
    const TrainResult out = train(data, p);
    EXPECT_TRUE(out.converged);
    EXPECT_GT(out.model.supportVectorCount(), 0u);
  }
}

// --------------------------------------------------------------------------
// Cache-policy units on QMatrix directly.

TEST(QMatrixCache, CapacityClampsToTwoRows) {
  const Dataset data = makeDataset(10, 3, 3u);
  QMatrix q(data, 0.5, /*cacheBytes=*/1);
  EXPECT_EQ(q.maxRows(), 2u);
}

TEST(QMatrixCache, HitRefreshesLruRecency) {
  const Dataset data = makeDataset(8, 3, 5u);
  QMatrix q(data, 0.5, /*cacheBytes=*/2 * data.size() * sizeof(float));
  ASSERT_EQ(q.maxRows(), 2u);

  q.row(0);
  q.row(1);  // LRU order: 0 (oldest), 1
  q.row(0);  // hit must refresh: order becomes 1 (oldest), 0
  q.row(2);  // eviction: victim must be 1, not the recently hit 0
  EXPECT_TRUE(q.cached(0));
  EXPECT_FALSE(q.cached(1));
  EXPECT_TRUE(q.cached(2));
  EXPECT_EQ(q.computedRows(), 3u);
  EXPECT_EQ(q.evictedRows(), 1u);

  // A re-hit on the evicted row recomputes it (counted), no crash.
  q.row(1);
  EXPECT_EQ(q.computedRows(), 4u);
}

TEST(QMatrixCache, PinnedRowSurvivesEvictionAndStaysValid) {
  const Dataset data = makeDataset(8, 3, 9u);
  QMatrix q(data, 0.5, /*cacheBytes=*/2 * data.size() * sizeof(float));
  ASSERT_EQ(q.maxRows(), 2u);

  const std::vector<float>& qi = q.row(0);
  const std::vector<float> snapshot = qi;  // copy before churn
  q.row(1);
  // 0 is the LRU victim candidate, but the caller still holds qi — the
  // pin must divert eviction to 1.
  const std::vector<float>& qj = q.row(2, /*pinned=*/0);
  EXPECT_TRUE(q.cached(0));
  EXPECT_FALSE(q.cached(1));
  EXPECT_TRUE(q.cached(2));
  EXPECT_EQ(qi, snapshot);  // reference still points at intact storage
  EXPECT_EQ(qj.size(), data.size());
}

TEST(QMatrixCache, RowValuesMatchRbfKernel) {
  const Dataset data = makeDataset(12, 4, 11u);
  QMatrix q(data, 0.7, 1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::vector<float>& r = q.row(i);
    ASSERT_EQ(r.size(), data.size());
    for (std::size_t j = 0; j < data.size(); ++j) {
      const double kij = rbfKernel(data.x[i], data.x[j], 0.7);
      EXPECT_NEAR(r[j], float(data.y[i] * data.y[j] * kij), 1e-6);
    }
    EXPECT_EQ(q.diag(i), 1.0f);
  }
}

}  // namespace
}  // namespace hsd::svm
