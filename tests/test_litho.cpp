// Lithography-oracle tests: printability physics (wide prints, narrow
// pinches, tight spaces bridge), tip handling, ambit influence on the core
// (the effect the feedback kernel exploits), and invariances.
#include <gtest/gtest.h>

#include "litho/litho.hpp"

namespace hsd::litho {
namespace {

const Rect kWin{0, 0, 4800, 4800};
const Rect kCore{1800, 1800, 3000, 3000};

// A long vertical wire of the given width centered in the window.
std::vector<Rect> wire(Coord w, Coord cx = 2400) {
  return {{cx - w / 2, 0, cx + w / 2, 4800}};
}

TEST(Litho, WideWirePrints) {
  const LithoSimulator sim;
  const Verdict v = sim.check(wire(200), kCore, kWin);
  EXPECT_FALSE(v.pinch) << v.minDrawnI;
  EXPECT_FALSE(v.bridge);
  EXPECT_FALSE(v.hotspot());
  EXPECT_EQ(v.severity, 0.0);
}

TEST(Litho, NarrowWirePinches) {
  const LithoSimulator sim;
  const Verdict v = sim.check(wire(100), kCore, kWin);
  EXPECT_TRUE(v.pinch) << v.minDrawnI;
  EXPECT_GT(v.severity, 0.0);
}

TEST(Litho, WidthMonotonicity) {
  // Wider wires never print worse.
  const LithoSimulator sim;
  double last = 0;
  for (const Coord w : {80, 120, 160, 200, 260}) {
    const Verdict v = sim.check(wire(w), kCore, kWin);
    EXPECT_GE(v.minDrawnI, last - 1e-9) << w;
    last = v.minDrawnI;
  }
}

TEST(Litho, TightSpaceBridges) {
  const LithoSimulator sim;
  // Two wide plates separated by a 100 nm vertical slit through the core.
  const std::vector<Rect> plates{{0, 0, 2350, 4800}, {2450, 0, 4800, 4800}};
  const Verdict v = sim.check(plates, kCore, kWin);
  EXPECT_TRUE(v.bridge) << v.maxSpaceI;
}

TEST(Litho, RelaxedSpaceDoesNotBridge) {
  const LithoSimulator sim;
  const std::vector<Rect> plates{{0, 0, 2250, 4800}, {2550, 0, 4800, 4800}};
  const Verdict v = sim.check(plates, kCore, kWin);
  EXPECT_FALSE(v.bridge) << v.maxSpaceI;
}

TEST(Litho, LineEndTipIsNotFlagged) {
  // A safe-width wire ending mid-core: line-end roll-off must not count as
  // a pinch (the longitudinal-interior rule).
  const LithoSimulator sim;
  const std::vector<Rect> stub{{2300, 0, 2500, 2400}};
  const Verdict v = sim.check(stub, kCore, kWin);
  EXPECT_FALSE(v.pinch) << v.minDrawnI;
}

TEST(Litho, EmptyCoreIsClean) {
  const LithoSimulator sim;
  const Verdict v = sim.check({}, kCore, kWin);
  EXPECT_FALSE(v.hotspot());
}

TEST(Litho, AmbitGeometryAffectsCoreVerdict) {
  // A marginal-width wire through the core: neighbors in the *ambit only*
  // add background light and rescue it. This is exactly the core/ambit
  // interaction of Fig. 10 that motivates the feedback kernel.
  const LithoSimulator sim;
  Coord marginal = 0;
  for (Coord w = 90; w <= 220; w += 2) {
    if (!sim.check(wire(w), kCore, kWin).pinch) {
      marginal = w;  // first width that just prints in isolation
      break;
    }
  }
  ASSERT_GT(marginal, 0);
  const Coord w = marginal - 2;  // pinches when isolated
  ASSERT_TRUE(sim.check(wire(w), kCore, kWin).pinch);

  std::vector<Rect> withNeighbors = wire(w);
  // Dense company at moderate distance (still outside the wire itself).
  for (const Coord dx : {-400, -200, 200, 400}) {
    const auto n = wire(180, 2400 + dx);
    withNeighbors.insert(withNeighbors.end(), n.begin(), n.end());
  }
  const Verdict v = sim.check(withNeighbors, kCore, kWin);
  EXPECT_FALSE(v.pinch) << "neighbors should rescue a marginal wire, minI="
                        << v.minDrawnI;
}

TEST(Litho, VerdictInvariantToWindowPadding) {
  // The checked region's verdict must not depend on how much extra window
  // is supplied beyond the optical halo.
  const LithoSimulator sim;
  const std::vector<Rect> g = wire(100);
  const Verdict a = sim.check(g, kCore, kWin);
  const Verdict b = sim.check(g, kCore, kWin.inflated(-300));
  EXPECT_EQ(a.pinch, b.pinch);
  EXPECT_EQ(a.bridge, b.bridge);
  EXPECT_NEAR(a.minDrawnI, b.minDrawnI, 1e-6);
}

TEST(Litho, SimulateImageDimensions) {
  const LithoSimulator sim;
  const AerialImage img = sim.simulate(wire(200), {0, 0, 2000, 1000});
  EXPECT_EQ(img.nx, 100u);
  EXPECT_EQ(img.ny, 50u);
  EXPECT_EQ(img.intensity.size(), 5000u);
  for (const double v : img.intensity) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(Litho, IntensityPeaksOnWire) {
  const LithoSimulator sim;
  const AerialImage img = sim.simulate(wire(300), kWin);
  // Intensity at the wire center column exceeds intensity far away.
  const std::size_t cx = img.nx / 2;
  const std::size_t cy = img.ny / 2;
  EXPECT_GT(img.at(cx, cy), img.at(cx / 4, cy) + 0.3);
}

class LithoThreshold : public ::testing::TestWithParam<double> {};

TEST_P(LithoThreshold, HigherThresholdNeverReducesPinch) {
  // Pinch verdicts are monotone in the resist threshold.
  LithoParams p;
  p.threshold = GetParam();
  const LithoSimulator sim(p);
  LithoParams stricter = p;
  stricter.threshold = p.threshold + 0.05;
  const LithoSimulator sim2(stricter);
  for (const Coord w : {100, 130, 160, 200}) {
    const bool loose = sim.check(wire(w), kCore, kWin).pinch;
    const bool strict = sim2.check(wire(w), kCore, kWin).pinch;
    EXPECT_LE(int(loose), int(strict)) << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LithoThreshold,
                         ::testing::Values(0.38, 0.42, 0.46, 0.50));

}  // namespace
}  // namespace hsd::litho
