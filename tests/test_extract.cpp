// Clip extraction tests: coverage of geometry-bearing regions, the
// density/margin screen, dedup, and the window-scan baseline counts.
#include <gtest/gtest.h>

#include "core/extract.hpp"
#include "data/generator.hpp"

namespace hsd::core {
namespace {

TEST(Extract, EmptyLayoutNoClips) {
  const Layout l;
  EXPECT_TRUE(extractCandidateClips(l, 1, {}).empty());
}

TEST(Extract, SingleWireProducesClips) {
  Layout l;
  l.addRect(1, {0, 0, 200, 20000});
  ExtractParams p;
  p.minRectCount = 1;
  p.minDensity = 0.0005;
  // An isolated wire leaves >1440 nm empty margins in every clip; the
  // default margin screen would (correctly, per Sec. III-E) drop them.
  p.maxMargin = 100000;
  const auto clips = extractCandidateClips(l, 1, p);
  EXPECT_FALSE(clips.empty());
  // Every candidate core must contain some geometry.
  for (const ClipWindow& w : clips)
    EXPECT_TRUE(w.clip.overlaps(Rect(0, 0, 200, 20000)));
}

TEST(Extract, EveryPolygonCoveredByAClip) {
  // Sec. III-E: if the screen passes, each polygon is included in at least
  // one extracted clip.
  data::GeneratorParams gp;
  gp.seed = 3;
  const auto test = data::generateTestLayout(gp, 25000, 25000, 9, 0.5);
  ExtractParams p;
  p.minRectCount = 1;
  p.minDensity = 0.0;
  p.maxDensity = 1.0;
  p.maxMargin = 100000;  // effectively no screen
  const auto clips = extractCandidateClips(test.layout, 1, p);
  const auto& rects = test.layout.findLayer(1)->rects();
  for (const Rect& r : rects) {
    bool covered = false;
    for (const ClipWindow& w : clips)
      if (w.clip.overlaps(r)) {
        covered = true;
        break;
      }
    EXPECT_TRUE(covered) << r;
  }
}

TEST(Extract, DensityScreenDropsSparseClips) {
  Layout l;
  l.addRect(1, {0, 0, 50, 50});  // a tiny speck
  ExtractParams loose;
  loose.minRectCount = 1;
  loose.minDensity = 0.0;
  loose.maxMargin = 100000;
  EXPECT_FALSE(extractCandidateClips(l, 1, loose).empty());
  ExtractParams strict = loose;
  strict.minDensity = 0.05;  // the speck can't reach 5% clip density
  EXPECT_TRUE(extractCandidateClips(l, 1, strict).empty());
}

TEST(Extract, MarginScreenDropsCornerHuggers) {
  // Geometry confined to one corner of its clip fails the margin test.
  Layout l;
  l.addRect(1, {0, 0, 600, 600});
  ExtractParams p;
  p.minRectCount = 1;
  p.minDensity = 0.0;
  p.maxMargin = 1440;
  // The clip anchored at this rect has ~4200nm empty on two sides.
  EXPECT_TRUE(extractCandidateClips(l, 1, p).empty());
}

TEST(Extract, AnchorsDeduplicated) {
  Layout l;
  // Two identical overlapping rects: same anchor, one candidate.
  l.addRect(1, {1000, 1000, 1200, 1200});
  l.addRect(1, {1000, 1000, 1200, 1200});
  ExtractParams p;
  p.minRectCount = 1;
  p.minDensity = 0.0;
  p.maxMargin = 100000;
  EXPECT_EQ(extractCandidateClips(l, 1, p).size(), 1u);
}

TEST(Extract, FewerClipsThanWindowScan) {
  // The paper's Table V claim: density-screened extraction produces far
  // fewer clips than 50%-overlap window scanning.
  data::GeneratorParams gp;
  gp.seed = 5;
  const auto test = data::generateTestLayout(gp, 30000, 30000, 12, 0.5);
  ExtractParams p;
  const auto ours = extractCandidateClips(test.layout, 1, p);
  const auto windows = windowScanClips(test.layout, 1, p.clip, 0.5);
  EXPECT_LT(ours.size(), windows.size());
  EXPECT_GT(ours.size(), 0u);
}

TEST(WindowScan, CountMatchesGrid) {
  Layout l;
  l.addRect(1, {0, 0, 6000, 6000});
  const ClipParams cp;
  // Step = 600 (50% of 1200 core): 10x10 grid.
  EXPECT_EQ(windowScanClips(l, 1, cp, 0.5).size(), 100u);
  // 0% overlap: step 1200 -> 5x5.
  EXPECT_EQ(windowScanClips(l, 1, cp, 0.0).size(), 25u);
}

TEST(Extract, ThreadedMatchesSerial) {
  data::GeneratorParams gp;
  gp.seed = 8;
  const auto test = data::generateTestLayout(gp, 25000, 25000, 8, 0.5);
  ExtractParams p1;
  p1.threads = 1;
  ExtractParams p4 = p1;
  p4.threads = 4;
  const auto a = extractCandidateClips(test.layout, 1, p1);
  const auto b = extractCandidateClips(test.layout, 1, p4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hsd::core
