// Directional-string encoding and Theorem-1 matching tests, including the
// key property check: the composite-string matcher agrees with brute-force
// D8 comparison, and the canonical key is orientation-invariant.
#include <gtest/gtest.h>

#include <random>

#include "core/pattern.hpp"
#include "core/topo_string.hpp"

namespace hsd::core {
namespace {

CorePattern pattern(Coord w, Coord h, std::vector<Rect> rects) {
  CorePattern p;
  p.w = w;
  p.h = h;
  p.rects = std::move(rects);
  return p;
}

TEST(TopoString, EmptyPatternSingleSpaceSlices) {
  const DirectionalStrings s = encodeStrings(pattern(100, 100, {}));
  ASSERT_EQ(s.bottom.size(), 1u);
  // Code "10": boundary bit then one space run -> bits 0b01, len 2.
  EXPECT_EQ(s.bottom[0].len, 2);
  EXPECT_EQ(s.bottom[0].bits & 0x3, 0x1u);
  EXPECT_EQ(s.top, s.bottom);
  EXPECT_EQ(s.left, s.right);
}

TEST(TopoString, FullBlockSlice) {
  const DirectionalStrings s =
      encodeStrings(pattern(100, 100, {{0, 0, 100, 100}}));
  ASSERT_EQ(s.bottom.size(), 1u);
  // Code "11": boundary + one block run.
  EXPECT_EQ(s.bottom[0].len, 2);
  EXPECT_EQ(s.bottom[0].bits & 0x3, 0x3u);
}

TEST(TopoString, Figure5StyleSliceCodes) {
  // A pattern with two distinct vertical slices: left half fully covered,
  // right half with a floating mid block (space-block-space from bottom).
  const CorePattern p =
      pattern(100, 100, {{0, 0, 50, 100}, {50, 40, 100, 60}});
  const DirectionalStrings s = encodeStrings(p);
  ASSERT_EQ(s.bottom.size(), 2u);
  // Slice 1 = <11b> = decimal 3 in the paper's notation.
  EXPECT_EQ(s.bottom[0].len, 2);
  EXPECT_EQ(s.bottom[0].bits, 0x3u);
  // Slice 2 = boundary, space, block, space = <1010b> read from bottom.
  EXPECT_EQ(s.bottom[1].len, 4);
  // bits are packed LSB-first per run: boundary(1),space(0),block(1),space(0)
  EXPECT_EQ(s.bottom[1].bits, 0b0101u);
}

TEST(TopoString, DimensionChangesDontChangeTopology) {
  const CorePattern a = pattern(100, 100, {{10, 10, 40, 90}});
  const CorePattern b = pattern(100, 100, {{20, 5, 45, 80}});
  EXPECT_EQ(canonicalTopoKey(a), canonicalTopoKey(b));
  EXPECT_TRUE(sameTopology(a, b));
}

TEST(TopoString, DifferentTopologyDetected) {
  const CorePattern one = pattern(100, 100, {{10, 10, 40, 90}});
  const CorePattern two =
      pattern(100, 100, {{10, 10, 30, 90}, {60, 10, 80, 90}});
  EXPECT_NE(canonicalTopoKey(one), canonicalTopoKey(two));
  EXPECT_FALSE(sameTopology(one, two));
}

TEST(TopoString, RotatedPatternsMatch) {
  const CorePattern base =
      pattern(120, 120, {{0, 0, 80, 30}, {0, 30, 30, 100}});
  for (const Orient o : kAllOrients) {
    const CorePattern t = base.transformed(o);
    EXPECT_TRUE(sameTopology(base, t)) << toString(o);
    EXPECT_EQ(canonicalTopoKey(base), canonicalTopoKey(t)) << toString(o);
  }
}

// Random rectilinear patterns for property testing.
CorePattern randomPattern(std::mt19937& rng, int maxRects = 4) {
  std::uniform_int_distribution<Coord> c(0, 100);
  std::uniform_int_distribution<int> n(1, maxRects);
  std::vector<Rect> rects;
  const int k = n(rng);
  for (int i = 0; i < k; ++i) {
    const Coord x1 = c(rng), x2 = c(rng), y1 = c(rng), y2 = c(rng);
    if (x1 == x2 || y1 == y2) continue;
    rects.push_back({x1, y1, x2, y2});
  }
  return pattern(100, 100, std::move(rects));
}

// Ground truth: same topology iff the full 4-string tuples are equal under
// some orientation of one pattern.
bool bruteForceSame(const CorePattern& a, const CorePattern& b) {
  const DirectionalStrings sb = encodeStrings(b);
  for (const Orient o : kAllOrients)
    if (encodeStrings(a.transformed(o)) == sb) return true;
  return false;
}

TEST(TopoStringProperty, CompositeMatcherAgreesWithBruteForce) {
  std::mt19937 rng(77);
  int positives = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const CorePattern a = randomPattern(rng);
    // Mix of related (transformed) and unrelated patterns.
    const CorePattern b =
        (trial % 3 == 0)
            ? a.transformed(kAllOrients[std::size_t(trial) % 8])
            : randomPattern(rng);
    const bool brute = bruteForceSame(a, b);
    const bool composite = sameTopology(a, b);
    if (brute) {
      ++positives;
      // Theorem 1 (completeness): equal topology must always be found.
      EXPECT_TRUE(composite);
    }
    // Soundness: the composite matcher and the canonical keys must agree
    // with brute force in both directions.
    EXPECT_EQ(canonicalTopoKey(a) == canonicalTopoKey(b), brute);
  }
  EXPECT_GT(positives, 50);  // the test actually exercised matches
}

TEST(TopoStringProperty, CanonicalKeyInvariantUnderD8) {
  std::mt19937 rng(91);
  for (int trial = 0; trial < 100; ++trial) {
    const CorePattern a = randomPattern(rng);
    const std::string key = canonicalTopoKey(a);
    for (const Orient o : kAllOrients)
      EXPECT_EQ(canonicalTopoKey(a.transformed(o)), key);
  }
}

TEST(TopoStringProperty, CanonicalOrientAttainsKey) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const CorePattern a = randomPattern(rng);
    const Orient o = canonicalOrient(a);
    EXPECT_EQ(serializeStrings(encodeStrings(a.transformed(o))),
              canonicalTopoKey(a));
  }
}

TEST(TopoString, SliceCountMatchesCutLines) {
  // Three non-aligned rects: bottom string has one slice per x-interval
  // between distinct edge coordinates (including window margins).
  const CorePattern p = pattern(
      100, 100, {{10, 0, 20, 50}, {30, 20, 60, 80}, {70, 10, 90, 90}});
  const DirectionalStrings s = encodeStrings(p);
  // Cut xs: 0,10,20,30,60,70,90,100 -> 7 slices.
  EXPECT_EQ(s.bottom.size(), 7u);
  EXPECT_EQ(s.top.size(), 7u);
}

TEST(TopoString, SerializeIsInjectiveOnExamples) {
  const CorePattern a = pattern(100, 100, {{0, 0, 50, 100}});
  const CorePattern b = pattern(100, 100, {{50, 0, 100, 100}});
  // Same topology (mirror), different raw serialization.
  EXPECT_NE(serializeStrings(encodeStrings(a)),
            serializeStrings(encodeStrings(b)));
  EXPECT_EQ(canonicalTopoKey(a), canonicalTopoKey(b));
}

}  // namespace
}  // namespace hsd::core
