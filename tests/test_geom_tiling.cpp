// Tiling tests: exact cover, disjointness, block/space typing and
// maximal-merge structure for the horizontal and vertical tilings.
#include <gtest/gtest.h>

#include <random>

#include "geom/rectset.hpp"
#include "geom/tiling.hpp"

namespace hsd {
namespace {

void expectExactCover(const std::vector<Tile>& tiles, const Rect& window,
                      const std::vector<Rect>& blocks) {
  Area total = 0;
  Area blockArea = 0;
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    EXPECT_TRUE(window.contains(tiles[i].box));
    EXPECT_FALSE(tiles[i].box.empty());
    total += tiles[i].box.area();
    if (tiles[i].isBlock) blockArea += tiles[i].box.area();
    for (std::size_t j = i + 1; j < tiles.size(); ++j)
      EXPECT_FALSE(tiles[i].box.overlaps(tiles[j].box));
  }
  EXPECT_EQ(total, window.area());
  EXPECT_EQ(blockArea, unionArea(clipRects(blocks, window)));
}

TEST(Tiling, EmptyWindowIsOneSpaceTile) {
  const Rect win{0, 0, 100, 100};
  const auto tiles = horizontalTiling({}, win);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_FALSE(tiles[0].isBlock);
  EXPECT_EQ(tiles[0].box, win);
}

TEST(Tiling, FullBlockIsOneBlockTile) {
  const Rect win{0, 0, 100, 100};
  const auto tiles = horizontalTiling({win}, win);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_TRUE(tiles[0].isBlock);
}

TEST(Tiling, CenteredBlockNineTilesHorizontal) {
  const Rect win{0, 0, 30, 30};
  const std::vector<Rect> blocks{{10, 10, 20, 20}};
  const auto tiles = horizontalTiling(blocks, win);
  // Horizontal tiling: bottom strip, middle band (3 tiles), top strip = 5.
  ASSERT_EQ(tiles.size(), 5u);
  expectExactCover(tiles, win, blocks);
  int blockTiles = 0;
  for (const Tile& t : tiles) blockTiles += t.isBlock;
  EXPECT_EQ(blockTiles, 1);
}

TEST(Tiling, CenteredBlockNineTilesVertical) {
  const Rect win{0, 0, 30, 30};
  const std::vector<Rect> blocks{{10, 10, 20, 20}};
  const auto tiles = verticalTiling(blocks, win);
  ASSERT_EQ(tiles.size(), 5u);  // left strip, middle column x3, right strip
  expectExactCover(tiles, win, blocks);
}

TEST(Tiling, HorizontalTilesAreMaximalInX) {
  const Rect win{0, 0, 40, 30};
  // Two blocks in the same band: space tiles between/beside them.
  const std::vector<Rect> blocks{{5, 10, 10, 20}, {25, 10, 30, 20}};
  const auto tiles = horizontalTiling(blocks, win);
  expectExactCover(tiles, win, blocks);
  // The middle band has 5 tiles: space, block, space, block, space.
  int midBand = 0;
  for (const Tile& t : tiles)
    if (t.box.lo.y == 10 && t.box.hi.y == 20) ++midBand;
  EXPECT_EQ(midBand, 5);
  // Bottom and top strips must each be a single merged space tile.
  for (const Tile& t : tiles) {
    if (t.box.hi.y <= 10 || t.box.lo.y >= 20) {
      EXPECT_EQ(t.box.width(), 40);
      EXPECT_FALSE(t.isBlock);
    }
  }
}

TEST(Tiling, VerticalMergeAcrossBands) {
  const Rect win{0, 0, 30, 30};
  // Tall block: vertical tiling gives left space, block, right space.
  const std::vector<Rect> blocks{{10, 0, 20, 30}};
  const auto tiles = verticalTiling(blocks, win);
  ASSERT_EQ(tiles.size(), 3u);
  expectExactCover(tiles, win, blocks);
}

TEST(Tiling, OverlappingInputBlocksHandled) {
  const Rect win{0, 0, 30, 30};
  const std::vector<Rect> blocks{{0, 0, 20, 20}, {10, 10, 30, 30}};
  expectExactCover(horizontalTiling(blocks, win), win, blocks);
  expectExactCover(verticalTiling(blocks, win), win, blocks);
}

TEST(Tiling, BlocksOutsideWindowClipped) {
  const Rect win{0, 0, 30, 30};
  const std::vector<Rect> blocks{{-10, -10, 10, 10}, {25, 25, 50, 50}};
  const auto tiles = horizontalTiling(blocks, win);
  expectExactCover(tiles, win, blocks);
}

TEST(TilingProperty, RandomSetsCoverExactly) {
  std::mt19937 rng(17);
  std::uniform_int_distribution<Coord> c(0, 50);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect win{0, 0, 50, 50};
    std::vector<Rect> blocks;
    for (int i = 0; i < 5; ++i) {
      Coord x1 = c(rng), x2 = c(rng), y1 = c(rng), y2 = c(rng);
      if (x1 == x2 || y1 == y2) continue;
      blocks.push_back({x1, y1, x2, y2});
    }
    expectExactCover(horizontalTiling(blocks, win), win, blocks);
    expectExactCover(verticalTiling(blocks, win), win, blocks);
  }
}

}  // namespace
}  // namespace hsd
