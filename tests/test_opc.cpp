// Rule-based OPC tests: width biasing, space opening, budget limits, and
// the detect-and-fix loop closing real oracle failures.
#include <gtest/gtest.h>

#include "litho/opc.hpp"

namespace hsd::litho {
namespace {

const Rect kWin{0, 0, 4800, 4800};
const Rect kCore{1800, 1800, 3000, 3000};

TEST(Opc, WidensNarrowIsolatedWire) {
  OpcRules rules;
  rules.minWidth = 150;
  const std::vector<Rect> in{{2350, 0, 2450, 4800}};  // 100 wide
  const OpcResult r = applyRuleOpc(in, rules);
  EXPECT_EQ(r.widened, 1u);
  EXPECT_GE(r.corrected[0].width(), 150);
  // Height untouched (already above minWidth).
  EXPECT_EQ(r.corrected[0].height(), 4800);
}

TEST(Opc, WideningRespectsNeighborSpace) {
  OpcRules rules;
  rules.minWidth = 200;
  rules.minSpace = 100;
  // Narrow wire with a close left neighbor: left growth limited.
  const std::vector<Rect> in{{0, 0, 1000, 4800}, {1150, 0, 1250, 4800}};
  const OpcResult r = applyRuleOpc(in, rules);
  const Rect& fixed = r.corrected[1];
  EXPECT_GE(fixed.lo.x - r.corrected[0].hi.x, rules.minSpace);
  EXPECT_GT(fixed.width(), 100);
}

TEST(Opc, OpensTightSpace) {
  OpcRules rules;
  rules.minWidth = 100;
  rules.minSpace = 160;
  const std::vector<Rect> in{{0, 0, 2350, 4800}, {2450, 0, 4800, 4800}};
  const OpcResult r = applyRuleOpc(in, rules);
  EXPECT_EQ(r.opened, 1u);
  EXPECT_GE(r.corrected[1].lo.x - r.corrected[0].hi.x, rules.minSpace);
}

TEST(Opc, SpaceOpeningRespectsWidthFloor) {
  OpcRules rules;
  rules.minWidth = 100;
  rules.minSpace = 400;
  rules.maxBiasPerEdge = 1000;
  // Two 110-wide wires 100 apart: each side can only give up 10.
  const std::vector<Rect> in{{0, 0, 110, 4800}, {210, 0, 320, 4800}};
  const OpcResult r = applyRuleOpc(in, rules);
  EXPECT_GE(r.corrected[0].width(), rules.minWidth);
  EXPECT_GE(r.corrected[1].width(), rules.minWidth);
}

TEST(Opc, CleanLayoutUntouched) {
  OpcRules rules;
  const std::vector<Rect> in{{0, 0, 300, 4800}, {600, 0, 900, 4800}};
  const OpcResult r = applyRuleOpc(in, rules);
  EXPECT_FALSE(r.changed());
  EXPECT_EQ(r.corrected, in);
}

TEST(Opc, MaxBiasPerEdgeHonored) {
  OpcRules rules;
  rules.minWidth = 500;
  rules.maxBiasPerEdge = 30;
  const std::vector<Rect> in{{2000, 0, 2100, 4800}};
  const OpcResult r = applyRuleOpc(in, rules);
  EXPECT_LE(r.corrected[0].width(), 100 + 2 * 30);
}

TEST(DetectAndFix, PinchingWireGetsFixed) {
  const LithoSimulator sim;
  // 100nm isolated wire pinches; rules widen it to printable width.
  const std::vector<Rect> in{{2350, 0, 2450, 4800}};
  OpcRules rules;
  rules.minWidth = 170;
  rules.maxBiasPerEdge = 60;
  const FixOutcome out = detectAndFix(sim, in, kCore, kWin, rules);
  EXPECT_TRUE(out.before.pinch);
  EXPECT_TRUE(out.fixed()) << "after minI=" << out.after.minDrawnI;
}

TEST(DetectAndFix, BridgingSpaceGetsFixed) {
  const LithoSimulator sim;
  const std::vector<Rect> in{{0, 0, 2350, 4800}, {2455, 0, 4800, 4800}};
  OpcRules rules;
  rules.minWidth = 150;
  rules.minSpace = 200;
  rules.maxBiasPerEdge = 60;
  const FixOutcome out = detectAndFix(sim, in, kCore, kWin, rules);
  EXPECT_TRUE(out.before.bridge);
  EXPECT_TRUE(out.fixed()) << "after maxI=" << out.after.maxSpaceI;
}

TEST(DetectAndFix, CleanRegionIsNoop) {
  const LithoSimulator sim;
  const std::vector<Rect> in{{2300, 0, 2600, 4800}};
  const FixOutcome out = detectAndFix(sim, in, kCore, kWin, OpcRules{});
  EXPECT_FALSE(out.before.hotspot());
  EXPECT_FALSE(out.opc.changed());
  EXPECT_EQ(out.opc.corrected, in);
}

}  // namespace
}  // namespace hsd::litho
