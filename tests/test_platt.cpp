// Platt scaling tests: sigmoid fitting, monotonicity, calibration quality
// and process-window litho tests sharing the same file for convenience.
#include <gtest/gtest.h>

#include <random>

#include "litho/litho.hpp"
#include "svm/platt.hpp"

namespace hsd {
namespace {

using svm::fitPlatt;
using svm::PlattModel;

TEST(Platt, PerfectlySeparatedDecisions) {
  std::vector<double> f;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    f.push_back(2.0 + 0.1 * i);
    y.push_back(1);
    f.push_back(-2.0 - 0.1 * i);
    y.push_back(-1);
  }
  const PlattModel m = fitPlatt(f, y);
  EXPECT_GT(m.probability(3.0), 0.9);
  EXPECT_LT(m.probability(-3.0), 0.1);
  EXPECT_NEAR(m.probability(0.0), 0.5, 0.15);
}

TEST(Platt, ProbabilityMonotoneInDecision) {
  std::mt19937 rng(2);
  std::normal_distribution<double> n(0, 0.7);
  std::vector<double> f;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    f.push_back(1.0 + n(rng));
    y.push_back(1);
    f.push_back(-1.0 + n(rng));
    y.push_back(-1);
  }
  const PlattModel m = fitPlatt(f, y);
  double last = -1;
  for (double v = -4; v <= 4; v += 0.5) {
    const double p = m.probability(v);
    EXPECT_GE(p, last);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    last = p;
  }
}

TEST(Platt, CalibrationRoughlyMatchesEmpirical) {
  // Decisions drawn so that P(y=1|f) is a known logistic: the fit should
  // recover probabilities within a loose tolerance.
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> uf(-3, 3);
  std::uniform_real_distribution<double> u01(0, 1);
  std::vector<double> f;
  std::vector<int> y;
  for (int i = 0; i < 3000; ++i) {
    const double v = uf(rng);
    const double p = 1.0 / (1.0 + std::exp(-2.0 * v));  // A=-2, B=0
    f.push_back(v);
    y.push_back(u01(rng) < p ? 1 : -1);
  }
  const PlattModel m = fitPlatt(f, y);
  EXPECT_NEAR(m.probability(0.0), 0.5, 0.05);
  EXPECT_NEAR(m.probability(1.0), 1.0 / (1.0 + std::exp(-2.0)), 0.06);
  EXPECT_NEAR(m.probability(-1.5), 1.0 / (1.0 + std::exp(3.0)), 0.06);
}

TEST(Platt, ImbalancedPriorShiftsMidpoint) {
  // With 10x more negatives, the probability at decision 0 drops.
  std::vector<double> f;
  std::vector<int> y;
  std::mt19937 rng(4);
  std::normal_distribution<double> n(0, 1.0);
  for (int i = 0; i < 10; ++i) {
    f.push_back(0.7 + n(rng));
    y.push_back(1);
  }
  for (int i = 0; i < 100; ++i) {
    f.push_back(-0.7 + n(rng));
    y.push_back(-1);
  }
  const PlattModel m = fitPlatt(f, y);
  EXPECT_LT(m.probability(0.0), 0.5);
}

TEST(Platt, ThrowsOnDegenerateInput) {
  EXPECT_THROW(fitPlatt(std::vector<double>{}, std::vector<int>{}),
               std::invalid_argument);
  EXPECT_THROW(fitPlatt({1.0, 2.0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(fitPlatt({1.0}, {1, -1}), std::invalid_argument);
}

// ---- process-window litho ----

const Rect kWin{0, 0, 4800, 4800};
const Rect kCore{1800, 1800, 3000, 3000};

TEST(ProcessWindow, WorstCaseDominatesNominal) {
  const litho::LithoParams nominal;
  const litho::ProcessWindow pw;
  // A comfortably printable wire stays clean across the window.
  const std::vector<Rect> fat{{2250, 0, 2550, 4800}};
  EXPECT_FALSE(
      litho::checkProcessWindow(nominal, pw, fat, kCore, kWin).hotspot());
  // A marginal wire that prints at nominal fails at a defocus corner.
  Coord marginal = 0;
  const litho::LithoSimulator sim(nominal);
  for (Coord w = 100; w <= 240; w += 4) {
    const std::vector<Rect> wire{{2400 - w / 2, 0, 2400 + w / 2, 4800}};
    if (!sim.check(wire, kCore, kWin).pinch) {
      marginal = w;
      break;
    }
  }
  ASSERT_GT(marginal, 0);
  const std::vector<Rect> wire{{2400 - marginal / 2, 0,
                                2400 + marginal / 2, 4800}};
  const litho::Verdict nominalV = sim.check(wire, kCore, kWin);
  const litho::Verdict pwV =
      litho::checkProcessWindow(nominal, pw, wire, kCore, kWin);
  EXPECT_FALSE(nominalV.pinch);
  EXPECT_LE(pwV.minDrawnI, nominalV.minDrawnI);
  EXPECT_TRUE(pwV.pinch) << "marginal wire should fail at a corner";
}

TEST(ProcessWindow, NominalOnlyWindowEqualsPlainCheck) {
  const litho::LithoParams nominal;
  litho::ProcessWindow pw;
  pw.corners = {{0.0, 1.0}};
  const std::vector<Rect> wire{{2350, 0, 2450, 4800}};
  const litho::Verdict a =
      litho::checkProcessWindow(nominal, pw, wire, kCore, kWin);
  const litho::Verdict b =
      litho::LithoSimulator(nominal).check(wire, kCore, kWin);
  EXPECT_EQ(a.pinch, b.pinch);
  EXPECT_EQ(a.bridge, b.bridge);
  EXPECT_DOUBLE_EQ(a.minDrawnI, b.minDrawnI);
}

}  // namespace
}  // namespace hsd
