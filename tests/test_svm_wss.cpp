// Working-set-selection tests: WSS1 (maximal violating pair) and WSS2
// (second order) must reach the same optimum of the convex dual, with
// WSS2 typically needing no more iterations.
#include <gtest/gtest.h>

#include <random>

#include "svm/svm.hpp"

namespace hsd::svm {
namespace {

Dataset randomBlobs(double sep, int perClass, std::uint32_t seed, int dim) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> n(0.0, 0.8);
  Dataset d;
  for (int i = 0; i < perClass; ++i) {
    FeatureVector a(std::size_t(dim), 0.0);
    FeatureVector b(std::size_t(dim), 0.0);
    for (int k = 0; k < dim; ++k) {
      a[std::size_t(k)] = n(rng) - (k == 0 ? sep : 0);
      b[std::size_t(k)] = n(rng) + (k == 0 ? sep : 0);
    }
    d.add(a, -1);
    d.add(b, 1);
  }
  return d;
}

class WssComparison : public ::testing::TestWithParam<double> {};

TEST_P(WssComparison, SameOptimumBothSelections) {
  const double C = GetParam();
  for (const std::uint32_t seed : {11u, 22u, 33u}) {
    const Dataset d = randomBlobs(1.0, 25, seed, 3);
    SvmParams p1;
    p1.C = C;
    p1.gamma = 0.7;
    p1.secondOrderWss = false;
    SvmParams p2 = p1;
    p2.secondOrderWss = true;
    const TrainResult r1 = train(d, p1);
    const TrainResult r2 = train(d, p2);
    ASSERT_TRUE(r1.converged);
    ASSERT_TRUE(r2.converged);
    // Same dual optimum (convex problem) up to the KKT tolerance.
    EXPECT_NEAR(r1.objective, r2.objective,
                1e-2 * (1.0 + std::abs(r1.objective)));
    // Same decisions on probes.
    std::mt19937 rng(seed + 7);
    std::normal_distribution<double> n(0.0, 1.5);
    for (int i = 0; i < 30; ++i) {
      const FeatureVector x{n(rng), n(rng), n(rng)};
      EXPECT_NEAR(r1.model.decision(x), r2.model.decision(x), 0.05)
          << "C=" << C << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cs, WssComparison,
                         ::testing::Values(0.5, 10.0, 1000.0));

TEST(Wss, SecondOrderNotSlower) {
  // Aggregate iteration counts over a few problems: WSS2 should win or
  // roughly tie (it never pathologically loses on these smooth problems).
  std::size_t it1 = 0, it2 = 0;
  for (const std::uint32_t seed : {1u, 2u, 3u, 4u}) {
    const Dataset d = randomBlobs(0.7, 40, seed, 4);
    SvmParams p;
    p.C = 50;
    p.gamma = 0.5;
    p.secondOrderWss = false;
    it1 += train(d, p).iterations;
    p.secondOrderWss = true;
    it2 += train(d, p).iterations;
  }
  EXPECT_LE(it2, it1 * 3 / 2);
}

}  // namespace
}  // namespace hsd::svm
