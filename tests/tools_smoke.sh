#!/bin/sh
# End-to-end smoke test of the CLI tool chain:
# genbench -> train -> detect -> score, plus the serving front end and the
# observability surfaces (ENGINE_STATS / SERVE_STATS JSON, Chrome trace
# JSON, structured log JSON lines, Prometheus exposition, wire trace
# propagation: traceparent in -> X-Trace-Id out -> /tracez?trace= +
# /logz?trace= correlation) — every machine-readable line is piped
# through a real parser, not just grepped.
set -e
BIN="$1"
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT
"$BIN/tools/hsd_genbench" "$OUT" --bench 5 --hs 8 --nhs 30 --width 24000 --height 24000 --sites 8
"$BIN/tools/hsd_train" "$OUT/training_clips.txt" "$OUT/model.txt"
"$BIN/tools/hsd_detect" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/report.txt" \
  --trace-out "$OUT/detect_trace.json" \
  --log-out "$OUT/detect_log.jsonl" \
  --model-stats-out "$OUT/detect_model.json" | tee "$OUT/detect.out"
# The model-quality dump is valid JSON carrying per-cluster sketches and —
# because hsd_train persists a margin baseline with the model — the
# per-cluster PSI drift report.
python3 -m json.tool < "$OUT/detect_model.json" > /dev/null
grep -q '"clusters"' "$OUT/detect_model.json"
grep -q '"drift"' "$OUT/detect_model.json"
grep -q '"psi"' "$OUT/detect_model.json"
# The structured log sink is JSON lines: every line parses, and the
# evaluator lifecycle records are present.
python3 -c 'import json,sys; [json.loads(l) for l in sys.stdin if l.strip()]' \
  < "$OUT/detect_log.jsonl"
grep -q '"eval done"' "$OUT/detect_log.jsonl"
"$BIN/tools/hsd_score" "$OUT/report.txt" "$OUT/golden_hotspots.txt" --layout "$OUT/layout.gds" | grep -q accuracy
# Tiled detection must emit a report byte-identical to the untiled one
# (the deterministic-merge contract), with per-tile stage namespaces plus
# plain-name roll-ups in the ENGINE_STATS JSON.
"$BIN/tools/hsd_detect" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/report_tiled.txt" \
  --tile-size 8000 --threads 2 | tee "$OUT/detect_tiled.out"
cmp "$OUT/report.txt" "$OUT/report_tiled.txt"
grep '^ENGINE_STATS ' "$OUT/detect_tiled.out" | sed 's/^ENGINE_STATS //' \
  | python3 -m json.tool > /dev/null
grep -q '"tile0/extract/screen"' "$OUT/detect_tiled.out"
grep -q '"eval/svm"' "$OUT/detect_tiled.out"
# An undersized halo must hard-error, not silently degrade.
if "$BIN/tools/hsd_detect" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/bad.txt" \
  --tile-size 8000 --halo 100 2>"$OUT/halo_err.txt"; then
  echo "undersized halo unexpectedly succeeded" >&2
  exit 1
fi
grep -q 'halo' "$OUT/halo_err.txt"
"$BIN/tools/hsd_fix" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/fixed.gds"
test -s "$OUT/fixed.gds"
# The ENGINE_STATS payload and the trace file must be valid JSON.
grep '^ENGINE_STATS ' "$OUT/detect.out" | sed 's/^ENGINE_STATS //' \
  | python3 -m json.tool > /dev/null
python3 -m json.tool < "$OUT/detect_trace.json" > /dev/null
# The trace must contain per-batch stage spans.
grep -q '"cat": "stage"' "$OUT/detect_trace.json"
# Serving front end: concurrent repeated requests must agree byte-for-byte
# (reportsIdentical) and hit the shared cache; an already-expired deadline
# must surface typed timeouts, not a crash. --trace-out/--metrics-out
# exercise the full observability path end to end.
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 4 --workers 2 --threads 2 \
  --trace-out "$OUT/serve_trace.json" --metrics-out "$OUT/serve.prom" \
  | tee "$OUT/serve.out"
grep -q '"reportsIdentical": true' "$OUT/serve.out"
grep '^SERVE_STATS ' "$OUT/serve.out" | sed 's/^SERVE_STATS //' \
  | python3 -m json.tool > /dev/null
python3 -m json.tool < "$OUT/serve_trace.json" > /dev/null
# The serve trace must carry named workers and per-request lifecycle spans.
grep -q 'serve-worker-' "$OUT/serve_trace.json"
grep -q 'serve/queued' "$OUT/serve_trace.json"
grep -q 'serve/run' "$OUT/serve_trace.json"
# Prometheus exposition: HELP/TYPE headers present, every submitted
# request accounted for in the run-latency histogram (_count == 4).
grep -q '^# HELP hsd_serve_queue_depth ' "$OUT/serve.prom"
grep -q '^# TYPE hsd_serve_run_seconds histogram' "$OUT/serve.prom"
grep -q '^hsd_serve_requests_submitted_total 4$' "$OUT/serve.prom"
grep -q '^hsd_serve_run_seconds_count 4$' "$OUT/serve.prom"
grep -q '^hsd_serve_requests_total{status="ok"} 4$' "$OUT/serve.prom"
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 3 --workers 2 --deadline-ms 0.001 \
  | grep -q '"timeout": 3'
# Tiled serving: each request fans its tiles across the context pool;
# concurrent tiled requests must still agree byte-for-byte.
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 4 --workers 2 --contexts 3 --threads 2 --tile-size 8000 \
  | grep -q '"reportsIdentical": true'
# Live admin surface: hsd_serve with --admin-port 0 picks an ephemeral
# port and prints it; --linger-ms keeps the process (and /readyz "ready")
# up after the batch so we can scrape every endpoint with the curl-free
# hsd_scrape client. SIGTERM then triggers the graceful drain — the
# process must still exit 0 with SERVE_STATS printed and both
# observability files flushed.
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 2 --workers 2 --admin-port 0 --linger-ms 60000 \
  --trace-out "$OUT/admin_trace.json" --metrics-out "$OUT/admin.prom" \
  --log-out "$OUT/serve_log.jsonl" \
  --model-stats-out "$OUT/serve_model.json" \
  > "$OUT/admin_serve.out" 2>&1 &
SERVE_PID=$!
tries=0
while ! grep -q '^ADMIN_PORT ' "$OUT/admin_serve.out" 2>/dev/null; do
  tries=$((tries + 1))
  if [ "$tries" -gt 150 ]; then
    echo "hsd_serve never printed ADMIN_PORT" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.2
done
PORT=$(sed -n 's/^ADMIN_PORT //p' "$OUT/admin_serve.out" | head -1)
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" /healthz | grep -q '^ok$'
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" /readyz | grep -q '^ready$'
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" /metrics > "$OUT/scraped.prom"
grep -q '^# TYPE hsd_serve_run_seconds histogram' "$OUT/scraped.prom"
grep -q '^hsd_serve_requests_submitted_total 2$' "$OUT/scraped.prom"
grep -q '^hsd_admin_scrapes_total{endpoint="/metrics"} 1$' "$OUT/scraped.prom"
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" /statsz > "$OUT/statsz.json"
python3 -m json.tool < "$OUT/statsz.json" > /dev/null
grep -q '"model"' "$OUT/statsz.json"
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" '/tracez?limit=100' > "$OUT/tracez.json"
python3 -m json.tool < "$OUT/tracez.json" > /dev/null
grep -q '"enabled": true' "$OUT/tracez.json"
# The structured-log and SLO admin surfaces mount alongside /tracez.
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" '/logz?limit=100' > "$OUT/logz.jsonl"
python3 -c 'import json,sys; [json.loads(l) for l in sys.stdin if l.strip()]' \
  < "$OUT/logz.jsonl"
grep -q '"enabled": true' "$OUT/logz.jsonl"
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" /sloz > "$OUT/sloz.json"
python3 -m json.tool < "$OUT/sloz.json" > /dev/null
grep -q '"windows"' "$OUT/sloz.json"
# The model-quality plane rides the same admin server: /modelz serves the
# per-cluster margin sketches plus the drift report, the ?cluster= filter
# accepts the always-present feedback pseudo-cluster, and junk parameters
# are typed 400s.
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" /modelz > "$OUT/modelz.json"
python3 -m json.tool < "$OUT/modelz.json" > /dev/null
grep -q '"enabled": true' "$OUT/modelz.json"
grep -q '"psiThreshold"' "$OUT/modelz.json"
"$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" '/modelz?cluster=feedback&limit=8' \
  | python3 -m json.tool > /dev/null
if "$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" '/modelz?limit=abc' \
  > /dev/null 2>&1; then
  echo "modelz?limit=abc unexpectedly succeeded" >&2
  exit 1
fi
if "$BIN/tools/hsd_scrape" 127.0.0.1 "$PORT" '/modelz?cluster=no-such-cluster' \
  > /dev/null 2>&1; then
  echo "modelz?cluster=no-such-cluster unexpectedly succeeded" >&2
  exit 1
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q '"reportsIdentical": true' "$OUT/admin_serve.out"
grep '^SERVE_STATS ' "$OUT/admin_serve.out" | sed 's/^SERVE_STATS //' \
  | python3 -m json.tool > /dev/null
python3 -m json.tool < "$OUT/admin_trace.json" > /dev/null
grep -q '^# TYPE hsd_serve_run_seconds histogram' "$OUT/admin.prom"
# The --model-stats-out dump flushed on drain, and the per-cluster verdict
# counters joined the Prometheus exposition.
python3 -m json.tool < "$OUT/serve_model.json" > /dev/null
grep -q '"clusters"' "$OUT/serve_model.json"
grep -q 'hsd_model_verdicts_total' "$OUT/admin.prom"
# The --log-out sink flushed on drain: JSON lines, evaluator lifecycle in.
python3 -c 'import json,sys; [json.loads(l) for l in sys.stdin if l.strip()]' \
  < "$OUT/serve_log.jsonl"
grep -q '"eval done"' "$OUT/serve_log.jsonl"
# Detection over the wire: hsd_serve with --port 0 and --requests 0 runs a
# pure wire server (no in-process batch). POST the layout with hsd_scrape's
# POST mode; the streamed report must be byte-identical to the offline
# hsd_detect report, monolithic AND tiled, and the wire-plane counters must
# show up in the admin /metrics exposition. SIGTERM while a POST is in
# flight must drain gracefully: the in-flight request completes with the
# identical report and the process exits 0.
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 0 --workers 2 --port 0 --admin-port 0 --linger-ms 60000 \
  > "$OUT/wire_serve.out" 2>&1 &
WIRE_PID=$!
tries=0
while ! grep -q '^DETECT_PORT ' "$OUT/wire_serve.out" 2>/dev/null; do
  tries=$((tries + 1))
  if [ "$tries" -gt 150 ]; then
    echo "hsd_serve never printed DETECT_PORT" >&2
    kill "$WIRE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.2
done
DPORT=$(sed -n 's/^DETECT_PORT //p' "$OUT/wire_serve.out" | head -1)
APORT=$(sed -n 's/^ADMIN_PORT //p' "$OUT/wire_serve.out" | head -1)
"$BIN/tools/hsd_scrape" 127.0.0.1 "$DPORT" /detect \
  --post "$OUT/layout.gds" > "$OUT/wire_report.txt"
cmp "$OUT/report.txt" "$OUT/wire_report.txt"
"$BIN/tools/hsd_scrape" 127.0.0.1 "$DPORT" '/detect?tile-size=8000' \
  --post "$OUT/layout.gds" > "$OUT/wire_report_tiled.txt"
cmp "$OUT/report.txt" "$OUT/wire_report_tiled.txt"
# The wire-plane metrics ride the same admin /metrics exposition.
"$BIN/tools/hsd_scrape" 127.0.0.1 "$APORT" /metrics > "$OUT/wire.prom"
grep -q '^hsd_detect_requests_total{status="200"} 2$' "$OUT/wire.prom"
grep -q '^# TYPE hsd_detect_seconds histogram' "$OUT/wire.prom"
grep -q '^hsd_detect_seconds_count 2$' "$OUT/wire.prom"
# The /statsz blob gained a "detect" section (valid JSON overall).
"$BIN/tools/hsd_scrape" 127.0.0.1 "$APORT" /statsz > "$OUT/wire_statsz.json"
python3 -m json.tool < "$OUT/wire_statsz.json" > /dev/null
grep -q '"detect"' "$OUT/wire_statsz.json"
# End-to-end trace correlation over the wire: POST with a caller-minted
# W3C traceparent plus the X-Profile opt-in; the report stays
# byte-identical, the same 32-hex id comes back in the X-Trace-Id
# response header (hsd_scrape -v), the X-Profile header parses as the
# per-request profile JSON, and the id filters spans in /tracez?trace=
# and records in /logz?trace= on the admin plane. --timeout-ms rides
# along to exercise the client deadline path.
TRACE_ID=0af7651916cd43dd8448eb211c80319c
"$BIN/tools/hsd_scrape" 127.0.0.1 "$DPORT" /detect \
  --post "$OUT/layout.gds" --timeout-ms 30000 -v \
  -H "traceparent: 00-${TRACE_ID}-00f067aa0ba902b7-01" \
  -H "X-Profile: 1" \
  > "$OUT/wire_traced.txt" 2> "$OUT/wire_traced_hdrs.txt"
cmp "$OUT/report.txt" "$OUT/wire_traced.txt"
grep -qi "x-trace-id: ${TRACE_ID}" "$OUT/wire_traced_hdrs.txt"
sed -n 's/^< [Xx]-[Pp]rofile: //p' "$OUT/wire_traced_hdrs.txt" | head -1 \
  | python3 -m json.tool > /dev/null
"$BIN/tools/hsd_scrape" 127.0.0.1 "$APORT" "/tracez?trace=${TRACE_ID}" \
  > "$OUT/wire_tracez.json"
python3 -m json.tool < "$OUT/wire_tracez.json" > /dev/null
grep -q "$TRACE_ID" "$OUT/wire_tracez.json"
grep -q 'serve/run' "$OUT/wire_tracez.json"
"$BIN/tools/hsd_scrape" 127.0.0.1 "$APORT" "/logz?trace=${TRACE_ID}" \
  > "$OUT/wire_logz.jsonl"
python3 -c 'import json,sys; [json.loads(l) for l in sys.stdin if l.strip()]' \
  < "$OUT/wire_logz.jsonl"
grep -q "$TRACE_ID" "$OUT/wire_logz.jsonl"
grep -q 'request complete' "$OUT/wire_logz.jsonl"
# Junk snapshot-query parameters are typed 400s, not silent defaults.
if "$BIN/tools/hsd_scrape" 127.0.0.1 "$APORT" '/tracez?limit=abc' \
  > /dev/null 2>&1; then
  echo "tracez?limit=abc unexpectedly succeeded" >&2
  exit 1
fi
if "$BIN/tools/hsd_scrape" 127.0.0.1 "$APORT" '/logz?trace=nothex' \
  > /dev/null 2>&1; then
  echo "logz?trace=nothex unexpectedly succeeded" >&2
  exit 1
fi
# SIGTERM-during-POST drain: start a POST in the background, send TERM,
# and require both the in-flight response (byte-identical) and exit 0.
"$BIN/tools/hsd_scrape" 127.0.0.1 "$DPORT" /detect \
  --post "$OUT/layout.gds" > "$OUT/wire_drain.txt" &
SCRAPE_PID=$!
sleep 0.1
kill -TERM "$WIRE_PID"
wait "$SCRAPE_PID"
wait "$WIRE_PID"
cmp "$OUT/report.txt" "$OUT/wire_drain.txt"
grep '^SERVE_STATS ' "$OUT/wire_serve.out" | sed 's/^SERVE_STATS //' \
  | python3 -m json.tool > /dev/null
echo "tools smoke OK"
