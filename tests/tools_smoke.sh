#!/bin/sh
# End-to-end smoke test of the CLI tool chain:
# genbench -> train -> detect -> score.
set -e
BIN="$1"
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT
"$BIN/tools/hsd_genbench" "$OUT" --bench 5 --hs 8 --nhs 30 --width 24000 --height 24000 --sites 8
"$BIN/tools/hsd_train" "$OUT/training_clips.txt" "$OUT/model.txt"
"$BIN/tools/hsd_detect" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/report.txt"
"$BIN/tools/hsd_score" "$OUT/report.txt" "$OUT/golden_hotspots.txt" --layout "$OUT/layout.gds" | grep -q accuracy
"$BIN/tools/hsd_fix" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/fixed.gds"
test -s "$OUT/fixed.gds"
# Serving front end: concurrent repeated requests must agree byte-for-byte
# (reportsIdentical) and hit the shared cache; an already-expired deadline
# must surface typed timeouts, not a crash.
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 4 --workers 2 --threads 2 \
  | grep -q '"reportsIdentical": true'
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 3 --workers 2 --deadline-ms 0.001 \
  | grep -q '"timeout": 3'
echo "tools smoke OK"
