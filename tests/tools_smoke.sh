#!/bin/sh
# End-to-end smoke test of the CLI tool chain:
# genbench -> train -> detect -> score, plus the serving front end and the
# observability surfaces (ENGINE_STATS / SERVE_STATS JSON, Chrome trace
# JSON, Prometheus exposition) — every machine-readable line is piped
# through a real parser, not just grepped.
set -e
BIN="$1"
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT
"$BIN/tools/hsd_genbench" "$OUT" --bench 5 --hs 8 --nhs 30 --width 24000 --height 24000 --sites 8
"$BIN/tools/hsd_train" "$OUT/training_clips.txt" "$OUT/model.txt"
"$BIN/tools/hsd_detect" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/report.txt" \
  --trace-out "$OUT/detect_trace.json" | tee "$OUT/detect.out"
"$BIN/tools/hsd_score" "$OUT/report.txt" "$OUT/golden_hotspots.txt" --layout "$OUT/layout.gds" | grep -q accuracy
"$BIN/tools/hsd_fix" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/fixed.gds"
test -s "$OUT/fixed.gds"
# The ENGINE_STATS payload and the trace file must be valid JSON.
grep '^ENGINE_STATS ' "$OUT/detect.out" | sed 's/^ENGINE_STATS //' \
  | python3 -m json.tool > /dev/null
python3 -m json.tool < "$OUT/detect_trace.json" > /dev/null
# The trace must contain per-batch stage spans.
grep -q '"cat": "stage"' "$OUT/detect_trace.json"
# Serving front end: concurrent repeated requests must agree byte-for-byte
# (reportsIdentical) and hit the shared cache; an already-expired deadline
# must surface typed timeouts, not a crash. --trace-out/--metrics-out
# exercise the full observability path end to end.
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 4 --workers 2 --threads 2 \
  --trace-out "$OUT/serve_trace.json" --metrics-out "$OUT/serve.prom" \
  | tee "$OUT/serve.out"
grep -q '"reportsIdentical": true' "$OUT/serve.out"
grep '^SERVE_STATS ' "$OUT/serve.out" | sed 's/^SERVE_STATS //' \
  | python3 -m json.tool > /dev/null
python3 -m json.tool < "$OUT/serve_trace.json" > /dev/null
# The serve trace must carry named workers and per-request lifecycle spans.
grep -q 'serve-worker-' "$OUT/serve_trace.json"
grep -q 'serve/queued' "$OUT/serve_trace.json"
grep -q 'serve/run' "$OUT/serve_trace.json"
# Prometheus exposition: HELP/TYPE headers present, every submitted
# request accounted for in the run-latency histogram (_count == 4).
grep -q '^# HELP hsd_serve_queue_depth ' "$OUT/serve.prom"
grep -q '^# TYPE hsd_serve_run_seconds histogram' "$OUT/serve.prom"
grep -q '^hsd_serve_requests_submitted_total 4$' "$OUT/serve.prom"
grep -q '^hsd_serve_run_seconds_count 4$' "$OUT/serve.prom"
grep -q '^hsd_serve_requests_total{status="ok"} 4$' "$OUT/serve.prom"
"$BIN/tools/hsd_serve" "$OUT/model.txt" "$OUT/layout.gds" \
  --requests 3 --workers 2 --deadline-ms 0.001 \
  | grep -q '"timeout": 3'
echo "tools smoke OK"
