#!/bin/sh
# End-to-end smoke test of the CLI tool chain:
# genbench -> train -> detect -> score.
set -e
BIN="$1"
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT
"$BIN/tools/hsd_genbench" "$OUT" --bench 5 --hs 8 --nhs 30 --width 24000 --height 24000 --sites 8
"$BIN/tools/hsd_train" "$OUT/training_clips.txt" "$OUT/model.txt"
"$BIN/tools/hsd_detect" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/report.txt"
"$BIN/tools/hsd_score" "$OUT/report.txt" "$OUT/golden_hotspots.txt" --layout "$OUT/layout.gds" | grep -q accuracy
"$BIN/tools/hsd_fix" "$OUT/model.txt" "$OUT/layout.gds" "$OUT/fixed.gds"
test -s "$OUT/fixed.gds"
echo "tools smoke OK"
