// Two-level topological classification tests: string grouping, density
// subdivision, Eq. (2) radius behavior and the ablation switch.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "common.hpp"
#include "core/classify.hpp"
#include "core/topo_string.hpp"

namespace hsd::core {
namespace {

using tests::corePattern;

CorePattern pattern(std::vector<Rect> rects) {
  return corePattern(std::move(rects));
}

// A vertical line pattern at position x with width w.
CorePattern line(Coord x, Coord w) { return tests::linePattern(x, w); }

TEST(Classify, IdenticalPatternsOneCluster) {
  const std::vector<CorePattern> pats(5, line(500, 120));
  const auto clusters = classifyPatterns(pats, {});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 5u);
}

TEST(Classify, DifferentTopologiesSplit) {
  std::vector<CorePattern> pats{line(500, 120),
                                pattern({{100, 0, 220, 1200},
                                         {500, 0, 620, 1200}})};
  const auto clusters = classifyPatterns(pats, {});
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(Classify, RotatedPatternsShareStringCluster) {
  const CorePattern base = pattern({{0, 0, 700, 300}, {0, 300, 300, 900}});
  std::vector<CorePattern> pats;
  for (const Orient o : kAllOrients) pats.push_back(base.transformed(o));
  ClassifyParams cp;
  cp.useDensity = false;
  const auto clusters = classifyPatterns(pats, cp);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 8u);
}

TEST(Classify, DensityLevelSplitsSameTopology) {
  // Same topology (one vertical line) but far apart in density space.
  std::vector<CorePattern> pats;
  for (int i = 0; i < 4; ++i) pats.push_back(line(100, 150));
  for (int i = 0; i < 4; ++i) pats.push_back(line(900, 150));
  ClassifyParams cp;
  cp.radiusR0 = 2.0;  // tight radius: the two positions must split
  cp.useDensity = true;
  const auto clusters = classifyPatterns(pats, cp);
  EXPECT_EQ(clusters.size(), 2u);
  for (const Cluster& c : clusters) EXPECT_EQ(c.members.size(), 4u);
  // String level alone would keep them together.
  cp.useDensity = false;
  EXPECT_EQ(classifyPatterns(pats, cp).size(), 1u);
}

TEST(Classify, LargeRadiusMergesEverythingSameTopology) {
  std::vector<CorePattern> pats;
  for (int i = 0; i < 6; ++i) pats.push_back(line(100 + 150 * i, 150));
  ClassifyParams cp;
  cp.radiusR0 = 1000.0;
  const auto clusters = classifyPatterns(pats, cp);
  ASSERT_EQ(clusters.size(), 1u);
}

TEST(Classify, RepresentativeIsMember) {
  std::mt19937 rng(6);
  std::uniform_int_distribution<Coord> c(0, 1100);
  std::vector<CorePattern> pats;
  for (int i = 0; i < 20; ++i) pats.push_back(line(c(rng), 100));
  const auto clusters = classifyPatterns(pats, {});
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const Cluster& cl : clusters) {
    total += cl.members.size();
    EXPECT_FALSE(cl.members.empty());
    // Representative must be one of the members.
    EXPECT_NE(std::find(cl.members.begin(), cl.members.end(),
                        cl.representative),
              cl.members.end());
    for (const std::size_t m : cl.members) {
      EXPECT_TRUE(seen.insert(m).second) << "pattern in two clusters";
    }
  }
  EXPECT_EQ(total, pats.size());  // partition covers everything exactly once
}

TEST(Classify, ClusterKeysMatchMembers) {
  std::vector<CorePattern> pats{line(100, 120), line(800, 150),
                                pattern({{0, 0, 1200, 500}})};
  const auto clusters = classifyPatterns(pats, {});
  for (const Cluster& cl : clusters)
    for (const std::size_t m : cl.members)
      EXPECT_EQ(canonicalTopoKey(pats[m]), cl.topoKey);
}

TEST(Classify, EmptyInput) {
  EXPECT_TRUE(classifyPatterns({}, {}).empty());
}

TEST(Classify, DeterministicAcrossRuns) {
  std::mt19937 rng(9);
  std::uniform_int_distribution<Coord> c(0, 1000);
  std::vector<CorePattern> pats;
  for (int i = 0; i < 30; ++i)
    pats.push_back(pattern({{c(rng), c(rng), c(rng) + 150, c(rng) + 150}}));
  const auto a = classifyPatterns(pats, {});
  const auto b = classifyPatterns(pats, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members);
    EXPECT_EQ(a[i].representative, b[i].representative);
  }
}

class ExpectedClusterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExpectedClusterSweep, LargerKNeverCoarsensClusters) {
  // Eq. (2): radius = max(R0, maxPair/K). Growing K shrinks the radius,
  // so the cluster count is nondecreasing in K.
  std::mt19937 rng(31);
  std::uniform_int_distribution<Coord> c(0, 1000);
  std::vector<CorePattern> pats;
  for (int i = 0; i < 25; ++i) pats.push_back(line(c(rng), 150));
  ClassifyParams cp;
  cp.radiusR0 = 0.5;
  cp.expectedClusters = GetParam();
  const std::size_t n1 = classifyPatterns(pats, cp).size();
  cp.expectedClusters = GetParam() * 4;
  const std::size_t n2 = classifyPatterns(pats, cp).size();
  EXPECT_LE(n1, n2);
}

INSTANTIATE_TEST_SUITE_P(Ks, ExpectedClusterSweep,
                         ::testing::Values<std::size_t>(2, 5, 10));

}  // namespace
}  // namespace hsd::core
