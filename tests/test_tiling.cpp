// Tiling-layer tests (ctest label: tile). Three layers of coverage:
//
//  1. GridTiling / TilePlan / ReportMerger unit behavior: row-major ids,
//     half-open seam ownership (total and unique), halo floor hard errors
//     (anything below ambit + half core refuses to plan — a halo of just
//     the ambit is NOT enough), ownership dedup and sequence-ordered
//     merge.
//  2. Tiled evaluateLayout() vs the monolithic path: byte-identical
//     reports (canonicalReport) and identical counters at threads=1 and
//     8, across tile sizes from "clip spans four tiles" to "one tile
//     holds everything", on seam-aligned geometry and on layouts with
//     empty tiles; a warm shared cache serves tiled runs from entries a
//     monolithic run populated (same keys in both modes).
//  3. Tiled requests through serve::DetectionServer: fan-out across the
//     context pool returns results byte-identical to untiled requests,
//     and repeated tiled submissions hit the shared cache.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "engine/cache.hpp"
#include "engine/run_context.hpp"
#include "engine/stats.hpp"
#include "engine/tiler.hpp"
#include "geom/tiling.hpp"
#include "serve/server.hpp"

namespace hsd::engine {
namespace {

using tests::kClip;

// ---------------------------------------------------------------------------
// GridTiling: deterministic row-major grid with half-open seam ownership.

TEST(GridTilingUnit, OverComputesCeilGridShape) {
  const Rect b{0, 0, 10000, 7000};
  const GridTiling g = GridTiling::over(b, 4000);
  EXPECT_EQ(g.nx, 3u);  // ceil(10000 / 4000)
  EXPECT_EQ(g.ny, 2u);  // ceil(7000 / 4000)
  EXPECT_EQ(g.tileCount(), 6u);
}

TEST(GridTilingUnit, DegenerateBoundsStillYieldOneTile) {
  const GridTiling g = GridTiling::over(Rect{5, 5, 5, 5}, 100);
  EXPECT_EQ(g.tileCount(), 1u);
  EXPECT_EQ(g.ownerOf({5, 5}), 0u);
}

TEST(GridTilingUnit, TileBoxesAreRowMajorAndClampedToBounds) {
  const Rect b{1000, 2000, 10000, 9000};
  const GridTiling g = GridTiling::over(b, 4000);
  ASSERT_EQ(g.nx, 3u);
  ASSERT_EQ(g.ny, 2u);
  // id 0 is the lower-left tile; ids walk x first (row-major).
  EXPECT_EQ(g.tileBox(0), (Rect{1000, 2000, 5000, 6000}));
  EXPECT_EQ(g.tileBox(1), (Rect{5000, 2000, 9000, 6000}));
  EXPECT_EQ(g.tileBox(2), (Rect{9000, 2000, 10000, 6000}));  // x-clamped
  EXPECT_EQ(g.tileBox(3), (Rect{1000, 6000, 5000, 9000}));   // y-clamped
  EXPECT_EQ(g.tileBox(5), (Rect{9000, 6000, 10000, 9000}));
}

TEST(GridTilingUnit, SeamPointsHaveExactlyOneOwner) {
  const Rect b{0, 0, 8000, 8000};
  const GridTiling g = GridTiling::over(b, 4000);  // 2x2
  // Interior points.
  EXPECT_EQ(g.ownerOf({1, 1}), 0u);
  EXPECT_EQ(g.ownerOf({4001, 1}), 1u);
  EXPECT_EQ(g.ownerOf({1, 4001}), 2u);
  EXPECT_EQ(g.ownerOf({4001, 4001}), 3u);
  // A point exactly on an interior seam belongs to the tile above/right
  // of it (half-open tiles), never to two tiles.
  EXPECT_EQ(g.ownerOf({4000, 100}), 1u);
  EXPECT_EQ(g.ownerOf({100, 4000}), 2u);
  EXPECT_EQ(g.ownerOf({4000, 4000}), 3u);  // four-corner point: one owner
  // The bounds' own edges are owned by the first/last row and column —
  // ownership is total over the bounds (and clamps outside them).
  EXPECT_EQ(g.ownerOf({0, 0}), 0u);
  EXPECT_EQ(g.ownerOf({8000, 8000}), 3u);
  EXPECT_EQ(g.ownerOf({-50, 9000}), 2u);
}

TEST(GridTilingUnit, OwnershipMatchesContainingTileBox) {
  // For strictly interior points, the owner's box contains the point.
  const Rect b{-3000, -3000, 9000, 9000};
  const GridTiling g = GridTiling::over(b, 5000);
  for (Coord x = -2999; x < 9000; x += 1357) {
    for (Coord y = -2999; y < 9000; y += 1777) {
      const Rect box = g.tileBox(g.ownerOf({x, y}));
      EXPECT_TRUE(box.lo.x <= x && x <= box.hi.x) << x << "," << y;
      EXPECT_TRUE(box.lo.y <= y && y <= box.hi.y) << x << "," << y;
    }
  }
}

// ---------------------------------------------------------------------------
// TilePlan: halo floor enforcement and tile geometry.

TEST(TilePlanUnit, AutoHaloIsTheExactnessMinimum) {
  TilingParams tp;
  tp.tileSize = 6000;
  const TilePlan plan = TilePlan::make(Rect{0, 0, 20000, 20000}, tp, kClip);
  EXPECT_EQ(plan.halo(), minTileHalo(kClip));
  EXPECT_GT(minTileHalo(kClip), kClip.ambit());  // strictly beyond ambit
}

TEST(TilePlanUnit, UndersizedHaloIsAHardError) {
  TilingParams tp;
  tp.tileSize = 6000;
  const Rect b{0, 0, 20000, 20000};
  // A halo of the ambit alone silently changes seam verdicts — it must
  // refuse to plan, not degrade.
  tp.halo = kClip.ambit();
  EXPECT_THROW(TilePlan::make(b, tp, kClip), std::invalid_argument);
  tp.halo = minTileHalo(kClip) - 1;
  EXPECT_THROW(TilePlan::make(b, tp, kClip), std::invalid_argument);
  tp.halo = minTileHalo(kClip);
  EXPECT_NO_THROW(TilePlan::make(b, tp, kClip));
  // Disabled tiling cannot be planned either.
  tp.tileSize = 0;
  tp.halo = 0;
  EXPECT_THROW(TilePlan::make(b, tp, kClip), std::invalid_argument);
}

TEST(TilePlanUnit, ExpandedRegionIsOwnedInflatedByHalo) {
  TilingParams tp;
  tp.tileSize = 5000;
  const TilePlan plan = TilePlan::make(Rect{0, 0, 12000, 12000}, tp, kClip);
  for (std::size_t id = 0; id < plan.tileCount(); ++id) {
    const TileSpec t = plan.tile(id);
    EXPECT_EQ(t.id, id);
    EXPECT_EQ(t.expanded, t.owned.inflated(plan.halo()));
  }
}

// ---------------------------------------------------------------------------
// ReportMerger: ownership dedup + global anchor-sequence order.

TEST(ReportMergerUnit, DropsNonOwnedDuplicatesAndSortsBySequence) {
  TilingParams tp;
  tp.tileSize = 4000;
  const TilePlan plan = TilePlan::make(Rect{0, 0, 8000, 8000}, tp, kClip);
  ASSERT_EQ(plan.tileCount(), 4u);

  const Point a0{1000, 1000};  // owned by tile 0
  const Point a1{5000, 1000};  // owned by tile 1
  ASSERT_EQ(plan.ownerOf(a0), 0u);
  ASSERT_EQ(plan.ownerOf(a1), 1u);

  ReportMerger merger(plan);
  // Tile 1 reports its own hit plus a halo duplicate of tile 0's anchor;
  // tile 0 reports its hit late and out of sequence order.
  merger.add(1, {{7, a1, tests::at(a1.x, a1.y)},
                 {3, a0, tests::at(a0.x, a0.y)}});
  merger.add(0, {{3, a0, tests::at(a0.x, a0.y)}});

  EXPECT_EQ(merger.droppedNonOwned(), 1u);
  const std::vector<ClipWindow> out = merger.finish();
  ASSERT_EQ(out.size(), 2u);
  // Sequence order, not arrival order: seq 3 before seq 7.
  EXPECT_EQ(out[0], tests::at(a0.x, a0.y));
  EXPECT_EQ(out[1], tests::at(a1.x, a1.y));
}

// ---------------------------------------------------------------------------
// EngineStats tile namespacing: roll-ups and JSON aggregates.

TEST(EngineStatsTiling, RollupSumsTileNamespacedEntries) {
  EngineStats s;
  s.record("tile0/eval/svm", 10, 0.25);
  s.record("tile12/eval/svm", 5, 0.5);
  s.record("eval/svm", 1, 0.125);          // plain entry folds in too
  s.record("tile0/extract/screen", 3, 0.0625);
  s.record("tileX/eval/svm", 99, 9.0);     // not a tile namespace: ignored
  s.record("tile/eval/svm", 99, 9.0);      // no digits: ignored

  const StageStats r = s.rollup("eval/svm");
  EXPECT_EQ(r.calls, 3u);
  EXPECT_EQ(r.items, 16u);
  EXPECT_DOUBLE_EQ(r.seconds, 0.875);

  s.recordCache("tile0/eval/verdict", 4, 2, 0);
  s.recordCache("tile1/eval/verdict", 1, 3, 1);
  const CacheStats c = s.cacheRollup("eval/verdict");
  EXPECT_EQ(c.hits, 5u);
  EXPECT_EQ(c.misses, 5u);
  EXPECT_EQ(c.evictions, 1u);
}

TEST(EngineStatsTiling, ToJsonAppendsAggregatesAfterRawEntries) {
  EngineStats s;
  s.record("tile0/eval/svm", 2, 0.0);
  s.record("tile1/eval/svm", 3, 0.0);
  const std::string json = s.toJson();
  const auto raw0 = json.find("\"tile0/eval/svm\"");
  const auto raw1 = json.find("\"tile1/eval/svm\"");
  const auto agg = json.find("\"eval/svm\"");
  ASSERT_NE(raw0, std::string::npos);
  ASSERT_NE(raw1, std::string::npos);
  ASSERT_NE(agg, std::string::npos);
  EXPECT_LT(raw0, raw1);
  EXPECT_LT(raw1, agg);  // roll-up follows the raw per-tile entries
  EXPECT_NE(json.find("\"items\": 5"), std::string::npos);
}

TEST(EngineStatsTiling, MonolithicJsonHasNoAggregates) {
  EngineStats s;
  s.record("eval/svm", 2, 0.0);
  s.record("eval/clip", 1, 0.0);
  const std::string json = s.toJson();
  // Exactly one occurrence of each key: no duplicate roll-up entries for
  // untiled runs (byte-compat with the pre-tiling ENGINE_STATS format).
  EXPECT_EQ(json.find("\"eval/svm\""), json.rfind("\"eval/svm\""));
  EXPECT_EQ(json.find("\"eval/clip\""), json.rfind("\"eval/clip\""));
}

TEST(EngineStatsTiling, MergeFromFoldsIntoExistingSlots) {
  EngineStats a;
  a.declare("tile0/eval/svm");
  a.declare("tile1/eval/svm");
  a.record("tile0/eval/svm", 2, 0.5);

  EngineStats b;
  b.record("tile1/eval/svm", 7, 0.25);
  b.recordCache("tile1/eval/verdict", 3, 1, 0);
  a.mergeFrom(b);

  EXPECT_EQ(a.stage("tile1/eval/svm").items, 7u);
  EXPECT_EQ(a.cache("tile1/eval/verdict").hits, 3u);
  // Declared order is preserved: tile0 still reports before tile1.
  const auto snap = a.snapshot();
  ASSERT_GE(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "tile0/eval/svm");
  EXPECT_EQ(snap[1].first, "tile1/eval/svm");
}

// ---------------------------------------------------------------------------
// Tiled evaluateLayout vs monolithic: byte identity at every shape.

const tests::DetectorFixture& fx() { return tests::detectorFixture(); }

core::EvalResult runEval(const Layout& layout, const core::EvalParams& p,
                         std::size_t threads,
                         std::shared_ptr<StageCache> cache = nullptr) {
  RunContext ctx(threads);
  if (cache) ctx.attachCache(std::move(cache));
  return core::evaluateLayout(fx().detector, layout, p, ctx);
}

core::EvalParams tiledParams(Coord tileSize, std::size_t tileThreads = 0) {
  core::EvalParams p;
  p.tiling.tileSize = tileSize;
  p.tiling.tileThreads = tileThreads;
  return p;
}

TEST(TiledEval, ByteIdenticalToMonolithicAcrossTileSizesAndThreads) {
  const core::EvalResult mono = runEval(fx().test.layout, {}, 1);
  ASSERT_GT(mono.candidateClips, 0u);
  const std::string monoCanon = tests::canonicalReport(mono);

  // 3000 dbu tiles are smaller than one clip window (4800 dbu): every
  // clip spans at least four tiles. 100000 dbu collapses to one tile.
  for (const Coord tileSize : {Coord(3000), Coord(9000), Coord(100000)}) {
    for (const std::size_t threads : {std::size_t(1), std::size_t(8)}) {
      const core::EvalResult tiled =
          runEval(fx().test.layout, tiledParams(tileSize), threads);
      // Exact identity: same windows in the same order, same counters.
      EXPECT_EQ(tiled.reported, mono.reported)
          << "tileSize=" << tileSize << " threads=" << threads;
      EXPECT_EQ(tiled.candidateClips, mono.candidateClips);
      EXPECT_EQ(tiled.flaggedBeforeRemoval, mono.flaggedBeforeRemoval);
      EXPECT_EQ(tests::canonicalReport(tiled), monoCanon);
    }
  }
}

TEST(TiledEval, SeamAlignedGeometryMatchesMonolithic) {
  // Rect corners — hence candidate anchors — sit exactly on tile seams
  // (multiples of the tile size), the worst case for ownership: every
  // seam anchor is claimed by exactly one tile or the merge breaks.
  const Coord tileSize = 4000;
  Layout layout("seam_aligned");
  for (Coord x = 0; x <= 20000; x += tileSize)
    layout.addRect(1, Rect{x, 0, x + 120, 20000});
  for (Coord y = 0; y <= 20000; y += tileSize)
    layout.addRect(1, Rect{0, y, 20000, y + 120});

  const core::EvalResult mono = runEval(layout, {}, 1);
  ASSERT_GT(mono.candidateClips, 0u);
  for (const std::size_t threads : {std::size_t(1), std::size_t(8)}) {
    const core::EvalResult tiled =
        runEval(layout, tiledParams(tileSize), threads);
    EXPECT_EQ(tiled.reported, mono.reported) << "threads=" << threads;
    EXPECT_EQ(tiled.candidateClips, mono.candidateClips);
  }
}

TEST(TiledEval, EmptyTilesAreSkippedAndHarmless) {
  // Geometry only in two opposite corners of a wide extent: most tiles
  // own no anchors and must neither run nor perturb the merge.
  Layout layout("sparse_corners");
  for (Coord i = 0; i < 3; ++i) {
    layout.addRect(1, Rect{i * 400, 0, i * 400 + 150, 5000});
    layout.addRect(1, Rect{40000 + i * 400, 40000, 40000 + i * 400 + 150,
                           45000});
  }

  const core::EvalParams tp = tiledParams(5000);
  const core::TiledLayout tiled =
      core::prepareTiledLayout(layout, fx().detector.params.layer, tp);
  EXPECT_GT(tiled.plan.tileCount(), tiled.work.size())
      << "expected some tiles to own no anchors";
  EXPECT_GT(tiled.anchorCount, 0u);

  const core::EvalResult mono = runEval(layout, {}, 1);
  const core::EvalResult t1 = runEval(layout, tp, 1);
  const core::EvalResult t8 = runEval(layout, tp, 8);
  EXPECT_EQ(t1.reported, mono.reported);
  EXPECT_EQ(t8.reported, mono.reported);
  EXPECT_EQ(t1.candidateClips, mono.candidateClips);
}

TEST(TiledEval, EmptyLayoutYieldsNothing) {
  const Layout empty;
  const core::EvalResult res = runEval(empty, tiledParams(4000), 2);
  EXPECT_TRUE(res.reported.empty());
  EXPECT_EQ(res.candidateClips, 0u);
}

TEST(TiledEval, TileThreadsCapPreservesIdentity) {
  const core::EvalResult mono = runEval(fx().test.layout, {}, 1);
  for (const std::size_t cap : {std::size_t(1), std::size_t(3)}) {
    const core::EvalResult tiled =
        runEval(fx().test.layout, tiledParams(6000, cap), 8);
    EXPECT_EQ(tiled.reported, mono.reported) << "tileThreads=" << cap;
  }
}

TEST(TiledEval, UndersizedHaloOverrideThrowsFromEvaluate) {
  core::EvalParams p = tiledParams(6000);
  p.tiling.halo = kClip.ambit();  // below the exactness minimum
  RunContext ctx(1);
  EXPECT_THROW(core::evaluateLayout(fx().detector, fx().test.layout, p, ctx),
               std::invalid_argument);
}

TEST(TiledEval, SharedCacheServesTiledRunsFromMonolithicEntries) {
  // Cache keys are canonical (translation-invariant content hashes, no
  // tile namespace): a monolithic run's entries must serve a tiled run
  // and vice versa.
  auto cache = std::make_shared<StageCache>();
  const core::EvalResult mono = runEval(fx().test.layout, {}, 1, cache);

  RunContext ctx(2);
  ctx.attachCache(cache);
  const core::EvalResult tiled = core::evaluateLayout(
      fx().detector, fx().test.layout, tiledParams(8000), ctx);
  EXPECT_EQ(tiled.reported, mono.reported);

  const CacheStats verdict = ctx.stats().cacheRollup("eval/verdict");
  EXPECT_EQ(verdict.misses, 0u);  // every window already cached
  EXPECT_GT(verdict.hits, 0u);
  const CacheStats screen = ctx.stats().cacheRollup("extract/screen");
  EXPECT_EQ(screen.misses, 0u);
  EXPECT_GT(screen.hits, 0u);
}

TEST(TiledEval, WarmTiledRunIsByteIdenticalAndAllHits) {
  auto cache = std::make_shared<StageCache>();
  const core::EvalParams tp = tiledParams(7000);
  const core::EvalResult cold = runEval(fx().test.layout, tp, 8, cache);

  RunContext ctx(8);
  ctx.attachCache(cache);
  const core::EvalResult warm =
      core::evaluateLayout(fx().detector, fx().test.layout, tp, ctx);
  EXPECT_EQ(tests::canonicalReport(cold), tests::canonicalReport(warm));
  EXPECT_EQ(ctx.stats().cacheRollup("eval/verdict").misses, 0u);
  EXPECT_GT(ctx.stats().cacheRollup("eval/verdict").hits, 0u);
}

// ---------------------------------------------------------------------------
// Serving: tiled requests fan across the pool, results stay identical.

TEST(ServeTiled, TiledRequestMatchesUntiledRequest) {
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.contexts = 3;  // fan-out has idle contexts to borrow
  cfg.threadsPerContext = 2;
  serve::DetectionServer server(cfg);

  core::EvalParams plain;
  auto fut0 = server.submit(fx().detector, fx().test.layout, plain);
  const serve::ServeResult untiled = fut0.get();
  ASSERT_TRUE(untiled.ok()) << untiled.error;

  auto futs = std::vector<std::future<serve::ServeResult>>{};
  for (const Coord tileSize : {Coord(5000), Coord(12000)})
    futs.push_back(server.submit(fx().detector, fx().test.layout,
                                 tiledParams(tileSize)));
  for (auto& f : futs) {
    const serve::ServeResult tiled = f.get();
    ASSERT_TRUE(tiled.ok()) << tiled.error;
    EXPECT_EQ(tiled.result.reported, untiled.result.reported);
    EXPECT_EQ(tiled.result.candidateClips, untiled.result.candidateClips);
    // The request's stats JSON covers every tile (helpers merged back).
    EXPECT_NE(tiled.statsJson.find("tile0/"), std::string::npos);
  }
  // Tiled and untiled requests shared one cache: the later tiled runs
  // were served from entries the first request populated.
  EXPECT_GT(server.stats().cache.hits, 0u);
  server.shutdown();
}

TEST(ServeTiled, SingleContextPoolStillCompletesTiledRequests) {
  // No idle contexts to borrow: the fan-out must degrade to the primary
  // context draining every tile itself, never deadlock.
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.contexts = 1;
  serve::DetectionServer server(cfg);

  auto fut = server.submit(fx().detector, fx().test.layout,
                           tiledParams(6000));
  const serve::ServeResult r = fut.get();
  ASSERT_TRUE(r.ok()) << r.error;

  auto fut2 = server.submit(fx().detector, fx().test.layout, {});
  const serve::ServeResult untiled = fut2.get();
  ASSERT_TRUE(untiled.ok()) << untiled.error;
  EXPECT_EQ(r.result.reported, untiled.result.reported);
  server.shutdown();
}

TEST(ServeTiled, ConcurrentTiledRequestsStayIdentical) {
  serve::ServerConfig cfg;
  cfg.workers = 3;
  cfg.contexts = 4;
  cfg.threadsPerContext = 2;
  serve::DetectionServer server(cfg);

  std::vector<std::future<serve::ServeResult>> futs;
  for (int i = 0; i < 6; ++i)
    futs.push_back(server.submit(fx().detector, fx().test.layout,
                                 tiledParams(6000, /*tileThreads=*/2)));
  const serve::ServeResult first = futs[0].get();
  ASSERT_TRUE(first.ok()) << first.error;
  for (std::size_t i = 1; i < futs.size(); ++i) {
    const serve::ServeResult r = futs[i].get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.result.reported, first.result.reported) << "request " << i;
  }
  server.shutdown();
}

}  // namespace
}  // namespace hsd::engine
