// Multilayer extension tests (Sec. IV-A): overlap geometry, feature
// stacking, and end-to-end learning of a two-layer hotspot that is only
// visible in the layer overlap.
#include <gtest/gtest.h>

#include <random>

#include "core/multilayer.hpp"

namespace hsd::core {
namespace {

const ClipParams kP;

TEST(Overlap, BasicIntersections) {
  const auto ov = overlapGeometry({{0, 0, 10, 10}, {20, 0, 30, 10}},
                                  {{5, 5, 25, 15}});
  ASSERT_EQ(ov.size(), 2u);
  EXPECT_EQ(ov[0], Rect(5, 5, 10, 10));
  EXPECT_EQ(ov[1], Rect(20, 5, 25, 10));
}

TEST(Overlap, DisjointLayersEmpty) {
  EXPECT_TRUE(overlapGeometry({{0, 0, 10, 10}}, {{20, 20, 30, 30}}).empty());
}

TEST(MultiLayerFeatures, DimensionMatchesFormula) {
  MultiLayerParams p;
  p.layers = {1, 2, 3};
  Clip c(ClipWindow::atCore({1800, 1800}, kP), Label::kUnknown);
  c.setRects(1, {{2000, 2000, 2300, 2800}});
  c.setRects(2, {{2100, 1900, 2400, 2600}});
  c.setRects(3, {{2000, 2400, 2800, 2700}});
  const auto v = buildMultiLayerFeatureVector(c, p);
  EXPECT_EQ(v.size(), multiLayerFeatureDim(p));
  // 3 per-layer sets + 2 overlap sets (internal+diagonal only).
  const FeatureParams base;
  EXPECT_EQ(multiLayerFeatureDim(p),
            3 * base.dim() + 2 * ((base.maxInternal + base.maxDiagonal) * 5 + 5));
}

TEST(MultiLayerFeatures, MissingLayerGeometryIsPadded) {
  MultiLayerParams p;
  Clip c(ClipWindow::atCore({1800, 1800}, kP), Label::kUnknown);
  c.setRects(1, {{2000, 2000, 2300, 2800}});
  // Layer 2 absent: the vector still has full dimension.
  EXPECT_EQ(buildMultiLayerFeatureVector(c, p).size(),
            multiLayerFeatureDim(p));
}

// Two-layer clips where the label depends ONLY on the via-style overlap
// area between the layers: single-layer features cannot separate them.
Clip twoLayerClip(Coord overlapSize, Label label, Coord jx = 0) {
  Clip c(ClipWindow::atCore({1800, 1800}, kP), label);
  // Metal1: horizontal bar; Metal2: vertical bar crossing it.
  c.setRects(1, {{1900, 2300 , 2900, 2500}});
  const Coord x = 2300 + jx;
  c.setRects(2, {{x, 1900, x + overlapSize, 2900}});
  return c;
}

TEST(MultiLayerDetector, LearnsOverlapDrivenLabel) {
  std::vector<Clip> training;
  std::mt19937 rng(4);
  std::uniform_int_distribution<Coord> j(-150, 150);
  for (int i = 0; i < 10; ++i)
    training.push_back(twoLayerClip(80, Label::kHotspot, j(rng)));
  for (int i = 0; i < 30; ++i)
    training.push_back(twoLayerClip(300, Label::kNonHotspot, j(rng)));

  MultiLayerParams mp;
  const MultiLayerDetector det = MultiLayerDetector::train(training, mp);
  EXPECT_GE(det.kernels.size(), 1u);
  EXPECT_TRUE(det.evaluateClip(twoLayerClip(85, Label::kUnknown, 40)));
  EXPECT_FALSE(det.evaluateClip(twoLayerClip(290, Label::kUnknown, -30)));
}

TEST(MultiLayerDetector, ThrowsOnMissingClass) {
  MultiLayerParams mp;
  std::vector<Clip> onlyHs{twoLayerClip(80, Label::kHotspot)};
  EXPECT_THROW(MultiLayerDetector::train(onlyHs, mp), std::invalid_argument);
  mp.layers.clear();
  EXPECT_THROW(MultiLayerDetector::train({}, mp), std::invalid_argument);
}

TEST(MultiLayerDetector, BiasControlsStrictness) {
  std::vector<Clip> training;
  for (int i = 0; i < 8; ++i)
    training.push_back(twoLayerClip(80, Label::kHotspot, i * 20 - 80));
  for (int i = 0; i < 20; ++i)
    training.push_back(twoLayerClip(300, Label::kNonHotspot, i * 10 - 100));
  const MultiLayerDetector det =
      MultiLayerDetector::train(training, MultiLayerParams{});
  EXPECT_FALSE(det.evaluateClip(twoLayerClip(80, Label::kUnknown), 1e9));
}

}  // namespace
}  // namespace hsd::core
