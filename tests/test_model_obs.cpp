// Model-quality observability tests (ctest label: modelobs) for the
// margin-sketch / drift / low-margin-capture plane (obs/model_stats.hpp,
// obs/drift.hpp) and its wiring through the trainer, evaluator, server
// and admin surface. Pins:
//  - MarginSketch bucket layout: signed ordering, NaN and near-zero land
//    in the center bucket, bounds tile the real line, quantile
//    interpolation with open-bucket clamping;
//  - ModelStatsRecorder merge semantics: per-thread partitioning never
//    changes the merged sketch (threads=1 vs threads=8 identical), the
//    capture ring drops oldest and counts everything, out-of-range slots
//    are counted drops, steady-state recording never allocates;
//  - evaluation with the plane enabled stays byte-identical to the bare
//    run across {1,8} threads x {monolithic, tiled}, and all four
//    configurations produce the identical /modelz quantile/count JSON;
//  - the training-time baseline: consistent with the kernels, round-trips
//    through Detector::save/load (including cluster-name recovery, since
//    topoKey is not serialized), never perturbs fingerprint(), and a
//    garbage trailer is rejected;
//  - DriftScorer: steady traffic scores ~0 PSI, a shifted distribution
//    flips past the threshold, the rolling window selects the newest
//    sample at least windowSeconds old (boundary inclusive), the sample
//    ring stays bounded;
//  - the acceptance scenario end to end: traffic replayed through
//    DetectionServer with the plane mounted — steady replay keeps every
//    cluster un-drifted, a geometrically scaled layout flips the score;
//  - admin surfacing: /modelz (strict params, cluster filter), the
//    /statsz "model" section, /readyz?degraded carrying modelDrift.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "engine/run_context.hpp"
#include "mini_json.hpp"
#include "net/http.hpp"
#include "obs/admin.hpp"
#include "obs/drift.hpp"
#include "obs/metrics.hpp"
#include "obs/model_stats.hpp"
#include "serve/server.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it.
namespace {
std::atomic<std::uint64_t> g_allocCount{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace hsd::obs {
namespace {

using hsd::tests::parsesAsJson;

constexpr std::size_t kCenter = MarginSketch::kBucketsPerSide;

const tests::DetectorFixture& fx() { return tests::detectorFixture(); }

/// Canonical report of a bare (plane-off) single-threaded evaluation —
/// the byte-for-byte reference for every observed run.
const std::string& bareReport() {
  static const std::string report = [] {
    engine::RunContext ctx(1);
    return tests::canonicalReport(core::evaluateLayout(
        fx().detector, fx().test.layout, core::EvalParams{}, ctx));
  }();
  return report;
}

core::EvalParams tiledParams(Coord tileSize) {
  core::EvalParams p;
  p.tiling.tileSize = tileSize;
  return p;
}

/// Evaluate the fixture layout with a recorder attached (no stage cache:
/// every window must actually reach the SVM and record).
core::EvalResult runObserved(const core::EvalParams& p, std::size_t threads,
                             std::shared_ptr<ModelStatsRecorder> rec) {
  engine::RunContext ctx(threads);
  ctx.attachModelStats(std::move(rec));
  return core::evaluateLayout(fx().detector, fx().test.layout, p, ctx);
}

/// Freeze a live snapshot as a drift baseline (the shapes are identical
/// by design; this is also how the serve-path tests pin "steady traffic
/// does not drift" without depending on training/evaluation margins
/// agreeing to within a log bucket).
ModelBaseline baselineFromSnapshot(const ModelStatsRecorder::Snapshot& snap) {
  ModelBaseline base;
  base.clusters.reserve(snap.clusters.size());
  for (const ModelStatsRecorder::ClusterCounts& cc : snap.clusters) {
    ModelBaseline::Cluster c;
    c.name = cc.name;
    c.hot = cc.hot;
    c.cold = cc.cold;
    c.buckets = cc.buckets;
    base.clusters.push_back(std::move(c));
  }
  return base;
}

/// The fixture layout with every rectangle scaled by num/den — the
/// "injected distribution shift": all widths and spacings move together,
/// so live feature vectors no longer look like the baseline's.
Layout scaledLayout(const Layout& src, Coord num, Coord den) {
  Layout out(src.name() + "-scaled");
  for (const auto& [id, layer] : src.layers())
    for (const Rect& r : layer.rects())
      out.addRect(id, Rect{r.lo.x * num / den, r.lo.y * num / den,
                           r.hi.x * num / den, r.hi.y * num / den});
  return out;
}

// ---------------------------------------------------------------------------
// MarginSketch bucket layout

TEST(MarginSketch, BucketsOrderSignedMarginsAndAbsorbNaN) {
  // Near-boundary values and NaN (an SVM decision on garbage input) land
  // in the center bucket.
  EXPECT_EQ(MarginSketch::bucketOf(0.0), kCenter);
  EXPECT_EQ(MarginSketch::bucketOf(5e-4), kCenter);
  EXPECT_EQ(MarginSketch::bucketOf(-5e-4), kCenter);
  EXPECT_EQ(MarginSketch::bucketOf(std::nan("")), kCenter);
  // First resolved magnitudes sit immediately beside the center.
  EXPECT_EQ(MarginSketch::bucketOf(1.5e-3), kCenter + 1);
  EXPECT_EQ(MarginSketch::bucketOf(-1.5e-3), kCenter - 1);
  // Outermost buckets absorb arbitrarily large magnitudes.
  EXPECT_EQ(MarginSketch::bucketOf(1e12), MarginSketch::kNumBuckets - 1);
  EXPECT_EQ(MarginSketch::bucketOf(-1e12), 0u);
  // Bucket index follows value order, and the layout is symmetric.
  std::size_t prev = 0;
  for (double v = -2e4; v <= 2e4; v += 137.0) {
    const std::size_t b = MarginSketch::bucketOf(v);
    EXPECT_GE(b, prev) << "v=" << v;
    prev = b;
    if (v > 0) {
      EXPECT_EQ(MarginSketch::bucketOf(-v),
                MarginSketch::kNumBuckets - 1 - b)
          << "v=" << v;
    }
  }
}

TEST(MarginSketch, BucketBoundsTileTheRealLine) {
  EXPECT_EQ(MarginSketch::lowerBound(0),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(MarginSketch::upperBound(MarginSketch::kNumBuckets - 1),
            std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(MarginSketch::lowerBound(kCenter), -MarginSketch::kStart);
  EXPECT_DOUBLE_EQ(MarginSketch::upperBound(kCenter), MarginSketch::kStart);
  for (std::size_t b = 0; b + 1 < MarginSketch::kNumBuckets; ++b)
    EXPECT_DOUBLE_EQ(MarginSketch::upperBound(b), MarginSketch::lowerBound(b + 1))
        << "bucket " << b;
  // A value strictly inside a finite bucket's range maps back to it.
  for (std::size_t b = 1; b + 1 < MarginSketch::kNumBuckets; ++b) {
    const double mid =
        0.5 * (MarginSketch::lowerBound(b) + MarginSketch::upperBound(b));
    EXPECT_EQ(MarginSketch::bucketOf(mid), b) << "bucket " << b;
  }
}

TEST(MarginSketch, QuantileInterpolatesWithinBucketsAndClampsOpenEnds) {
  MarginSketch::Counts c{};
  EXPECT_EQ(MarginSketch::total(c), 0u);
  EXPECT_DOUBLE_EQ(MarginSketch::quantile(c, 0.5), 0.0);  // empty: 0

  // Everything in one finite bucket: quantiles stay inside its range.
  const std::size_t b = kCenter + 1;  // [1e-3, 2e-3)
  c[b] = 100;
  EXPECT_EQ(MarginSketch::total(c), 100u);
  EXPECT_DOUBLE_EQ(MarginSketch::quantile(c, 0.0), MarginSketch::lowerBound(b));
  for (const double q : {0.1, 0.5, 0.9, 1.0}) {
    const double v = MarginSketch::quantile(c, q);
    EXPECT_GE(v, MarginSketch::lowerBound(b)) << "q=" << q;
    EXPECT_LE(v, MarginSketch::upperBound(b)) << "q=" << q;
  }
  // Split across two buckets: the top quartile sits in the higher one.
  c = {};
  c[kCenter + 1] = 50;  // [1e-3, 2e-3)
  c[kCenter + 3] = 50;  // [4e-3, 8e-3)
  EXPECT_LT(MarginSketch::quantile(c, 0.25), 2e-3);
  EXPECT_GE(MarginSketch::quantile(c, 0.75), 4e-3);
  EXPECT_LE(MarginSketch::quantile(c, 0.75), 8e-3);
  // Open-ended outer buckets clamp to their finite bound instead of
  // reporting infinity.
  c = {};
  c[MarginSketch::kNumBuckets - 1] = 10;
  const double top = MarginSketch::quantile(c, 0.99);
  EXPECT_TRUE(std::isfinite(top));
  EXPECT_DOUBLE_EQ(top,
                   MarginSketch::lowerBound(MarginSketch::kNumBuckets - 1));
  c = {};
  c[0] = 10;
  const double bottom = MarginSketch::quantile(c, 0.01);
  EXPECT_TRUE(std::isfinite(bottom));
  EXPECT_DOUBLE_EQ(bottom, MarginSketch::upperBound(0));
}

// ---------------------------------------------------------------------------
// ModelStatsRecorder mechanics

TEST(ModelStatsRecorder, NamesSlotsAndCountsMergeAcrossThreads) {
  ModelStatsRecorder rec({"a", ""});
  ASSERT_EQ(rec.numSlots(), 3u);  // a, k1, trailing feedback pseudo-slot
  EXPECT_EQ(rec.clusterNames()[0], "a");
  EXPECT_EQ(rec.clusterNames()[1], "k1");  // empty names render as k<i>
  EXPECT_EQ(rec.clusterNames()[2], "feedback");
  EXPECT_EQ(rec.feedbackSlot(), 2u);

  constexpr int kThreads = 8;
  constexpr int kEach = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kEach; ++i)
        rec.record(std::size_t(t) % 2, t % 2 == 0 ? 1.5 : -1.5, t % 2 == 0);
    });
  for (std::thread& th : threads) th.join();

  const ModelStatsRecorder::Snapshot snap = rec.snapshot();
  ASSERT_EQ(snap.clusters.size(), 3u);
  EXPECT_EQ(snap.clusters[0].hot, std::uint64_t(4 * kEach));
  EXPECT_EQ(snap.clusters[0].cold, 0u);
  EXPECT_EQ(snap.clusters[1].hot, 0u);
  EXPECT_EQ(snap.clusters[1].cold, std::uint64_t(4 * kEach));
  EXPECT_EQ(snap.clusters[2].count(), 0u);
  EXPECT_EQ(snap.clusters[0].buckets[MarginSketch::bucketOf(1.5)],
            std::uint64_t(4 * kEach));
  EXPECT_EQ(snap.clusters[1].buckets[MarginSketch::bucketOf(-1.5)],
            std::uint64_t(4 * kEach));
  EXPECT_EQ(snap.droppedRecords, 0u);

  // bucketCounts() (the drift scorer's cheap view) agrees with snapshot.
  const std::vector<MarginSketch::Counts> counts = rec.bucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  for (std::size_t s = 0; s < counts.size(); ++s)
    EXPECT_EQ(counts[s], snap.clusters[s].buckets) << "slot " << s;
}

TEST(ModelStatsRecorder, ThreadPartitioningNeverChangesTheMergedSketch) {
  // The same multiset of (slot, margin, verdict) observations, recorded
  // single-threaded vs scattered over 8 threads, must merge to the
  // identical sketch — bucketing is a pure function and merging is
  // addition, so the JSON (quantiles included) matches byte for byte.
  constexpr int kN = 4096;
  const auto obsAt = [](int i) {
    const std::size_t slot = std::size_t(i) % 2;
    const double margin = (i % 7 - 3) * 0.37 + double(i % 13) * 1e-3;
    return std::tuple<std::size_t, double, bool>(slot, margin, margin > 0);
  };

  ModelStatsRecorder serial({"a", "b"});
  for (int i = 0; i < kN; ++i) {
    const auto [slot, margin, hot] = obsAt(i);
    serial.record(slot, margin, hot);
  }

  ModelStatsRecorder parallel({"a", "b"});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&parallel, &obsAt, t] {
      for (int i = t; i < kN; i += kThreads) {
        const auto [slot, margin, hot] = obsAt(i);
        parallel.record(slot, margin, hot);
      }
    });
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(serial.bucketCounts(), parallel.bucketCounts());
  EXPECT_EQ(serial.toJson(0), parallel.toJson(0));
}

TEST(ModelStatsRecorder, CaptureRingDropsOldestAndCountsEverything) {
  ModelStatsRecorder::Options opts;
  opts.captureWidth = 0.25;
  opts.captureCapacity = 4;
  ModelStatsRecorder rec({"a"}, opts);
  for (int i = 0; i < 7; ++i)
    rec.capture(0, 0.01 * i, 100 * i, 200 * i, std::uint64_t(i));
  const ModelStatsRecorder::Snapshot snap = rec.snapshot();
  EXPECT_EQ(snap.capturedTotal, 7u);
  EXPECT_EQ(snap.droppedCaptures, 3u);
  ASSERT_EQ(snap.captures.size(), 4u);
  // Survivors are exactly the newest four, in ring order.
  std::vector<std::uint64_t> hashes;
  for (const ModelStatsRecorder::Capture& c : snap.captures) {
    hashes.push_back(c.contentHash);
    EXPECT_EQ(c.anchorX, std::int64_t(100 * c.contentHash));
    EXPECT_EQ(c.anchorY, std::int64_t(200 * c.contentHash));
    EXPECT_EQ(c.cluster, 0u);
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(hashes, (std::vector<std::uint64_t>{3, 4, 5, 6}));
}

TEST(ModelStatsRecorder, CaptureGateHonorsWidth) {
  ModelStatsRecorder::Options opts;
  opts.captureWidth = 0.25;
  ModelStatsRecorder rec({"a"}, opts);
  EXPECT_TRUE(rec.shouldCapture(0.1));
  EXPECT_TRUE(rec.shouldCapture(-0.1));
  EXPECT_FALSE(rec.shouldCapture(0.25));  // strict: exactly-at-width is out
  EXPECT_FALSE(rec.shouldCapture(-3.0));

  ModelStatsRecorder::Options off;
  off.captureWidth = 0.0;  // capture disabled entirely
  ModelStatsRecorder none({"a"}, off);
  EXPECT_FALSE(none.shouldCapture(0.0));
}

TEST(ModelStatsRecorder, OutOfRangeSlotsAreCountedDrops) {
  ModelStatsRecorder rec({"a"});
  rec.record(rec.numSlots(), 1.0, true);
  rec.capture(99, 0.0, 0, 0, 0);
  const ModelStatsRecorder::Snapshot snap = rec.snapshot();
  EXPECT_EQ(snap.droppedRecords, 2u);
  for (const ModelStatsRecorder::ClusterCounts& cc : snap.clusters)
    EXPECT_EQ(cc.count(), 0u);
  EXPECT_EQ(snap.capturedTotal, 0u);
}

TEST(ModelStatsRecorder, ToJsonParsesFiltersByClusterAndCapsCaptures) {
  ModelStatsRecorder::Options opts;
  opts.captureWidth = 0.25;
  ModelStatsRecorder rec({"alpha", "beta"}, opts);
  rec.record(0, 2.0, true);
  rec.record(1, -2.0, false);
  rec.record(1, -1.0, false);
  for (int i = 0; i < 5; ++i) rec.capture(i % 2, 0.01, i, i, std::uint64_t(i));

  const std::string all = rec.toJson();
  EXPECT_TRUE(parsesAsJson(all)) << all;
  EXPECT_NE(all.find("\"alpha\""), std::string::npos);
  EXPECT_NE(all.find("\"beta\""), std::string::npos);
  EXPECT_NE(all.find("\"feedback\""), std::string::npos);
  EXPECT_NE(all.find("\"p50\""), std::string::npos);
  EXPECT_NE(all.find("\"capturedTotal\": 5"), std::string::npos);

  // Cluster filter: one cluster object, only that cluster's captures.
  const std::string beta = rec.toJson(64, "beta");
  EXPECT_TRUE(parsesAsJson(beta)) << beta;
  EXPECT_EQ(beta.find("\"alpha\""), std::string::npos);
  EXPECT_NE(beta.find("\"beta\""), std::string::npos);
  EXPECT_NE(beta.find("\"cold\": 2"), std::string::npos);

  // Capture cap: at most `captureLimit` capture objects survive (the
  // newest win); counting anchors is enough to see the cap.
  const std::string capped = rec.toJson(2);
  EXPECT_TRUE(parsesAsJson(capped)) << capped;
  std::size_t nCaptures = 0;
  for (std::size_t pos = capped.find("\"x\": "); pos != std::string::npos;
       pos = capped.find("\"x\": ", pos + 1))
    ++nCaptures;
  EXPECT_EQ(nCaptures, 2u);
  const std::string none = rec.toJson(0);
  EXPECT_TRUE(parsesAsJson(none)) << none;
  EXPECT_NE(none.find("\"captures\": []"), std::string::npos);
}

TEST(ModelStatsRecorder, BindMetricsExportsPerClusterVerdictCounters) {
  MetricsRegistry registry;
  ModelStatsRecorder rec({"alpha"});
  rec.bindMetrics(registry);
  rec.record(0, 1.0, true);
  rec.record(0, 1.0, true);
  rec.record(0, -1.0, false);
  rec.record(rec.feedbackSlot(), -0.5, false);
  const std::string prom = registry.renderPrometheus();
  EXPECT_NE(prom.find("hsd_model_verdicts_total{cluster=\"alpha\","
                      "verdict=\"hot\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("hsd_model_verdicts_total{cluster=\"alpha\","
                      "verdict=\"cold\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("hsd_model_verdicts_total{cluster=\"feedback\","
                      "verdict=\"cold\"} 1"),
            std::string::npos);
}

TEST(ModelStatsRecorder, SteadyStateRecordingDoesNotAllocate) {
  ModelStatsRecorder::Options opts;
  opts.captureWidth = 0.25;
  opts.captureCapacity = 64;
  ModelStatsRecorder rec({"a", "b"}, opts);
  rec.record(0, 1.0, true);            // warm this thread's state
  rec.capture(0, 0.01, 1, 2, 3);       // and the capture path
  const std::uint64_t before = g_allocCount.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    rec.record(std::size_t(i) % 2, (i % 5 - 2) * 0.4, i % 2 == 0);
    if (rec.shouldCapture(0.01)) rec.capture(0, 0.01, i, i, std::uint64_t(i));
  }
  EXPECT_EQ(g_allocCount.load(std::memory_order_relaxed) - before, 0u);
}

// ---------------------------------------------------------------------------
// Evaluation integration: byte-identical reports, deterministic merge

TEST(ModelPlane, EvaluationStaysByteIdenticalAndSketchesMergeDeterministically) {
  // Big per-thread rings so tiled/threaded runs never drop captures —
  // then every configuration's merged counters must agree exactly.
  ModelStatsRecorder::Options opts;
  opts.captureWidth = 0.25;
  opts.captureCapacity = 1 << 16;
  struct Config {
    const char* name;
    std::size_t threads;
    Coord tileSize;
  };
  const Config configs[] = {
      {"mono-1", 1, 0},
      {"mono-8", 8, 0},
      {"tiled-1", 1, 9000},
      {"tiled-8", 8, 9000},
  };
  std::vector<std::string> modelJson;
  std::vector<std::uint64_t> totals;
  for (const Config& c : configs) {
    auto rec = std::make_shared<ModelStatsRecorder>(
        fx().detector.clusterNames(), opts);
    const core::EvalParams p =
        c.tileSize > 0 ? tiledParams(c.tileSize) : core::EvalParams{};
    const core::EvalResult res = runObserved(p, c.threads, rec);
    EXPECT_EQ(tests::canonicalReport(res), bareReport())
        << "report changed with the plane enabled: " << c.name;
    const ModelStatsRecorder::Snapshot snap = rec->snapshot();
    std::uint64_t total = 0;
    for (const ModelStatsRecorder::ClusterCounts& cc : snap.clusters)
      total += cc.count();
    EXPECT_GT(total, 0u) << c.name;
    EXPECT_EQ(snap.droppedCaptures, 0u) << c.name;
    EXPECT_EQ(snap.droppedRecords, 0u) << c.name;
    totals.push_back(total);
    // captureLimit 0: the per-run capture timestamps are excluded, so the
    // remaining body (per-cluster counts, quantiles, capturedTotal) is
    // the deterministic /modelz surface.
    modelJson.push_back(rec->toJson(0));
    EXPECT_TRUE(parsesAsJson(modelJson.back())) << modelJson.back();
  }
  for (std::size_t i = 1; i < modelJson.size(); ++i) {
    EXPECT_EQ(totals[i], totals[0])
        << configs[i].name << " vs " << configs[0].name;
    EXPECT_EQ(modelJson[i], modelJson[0])
        << configs[i].name << " vs " << configs[0].name;
  }
}

// ---------------------------------------------------------------------------
// Training-time baseline: consistency, persistence, fingerprint

TEST(DetectorBaseline, TrainedDetectorCarriesAConsistentBaseline) {
  const core::Detector& det = fx().detector;
  ASSERT_TRUE(det.hasBaseline);
  ASSERT_EQ(det.baseline.clusters.size(), det.kernels.size());
  const std::vector<std::string> names = det.clusterNames();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < det.baseline.clusters.size(); ++i) {
    const ModelBaseline::Cluster& c = det.baseline.clusters[i];
    EXPECT_EQ(c.name, names[i]);
    // Every attributed training vector lands in exactly one bucket.
    EXPECT_EQ(MarginSketch::total(c.buckets), c.hot + c.cold);
    total += c.hot + c.cold;
  }
  // Every training vector (hotspots incl. shift-derivative upsampling,
  // plus all non-hotspots) was attributed to some cluster.
  EXPECT_GT(total, 0u);
}

TEST(DetectorBaseline, RoundTripsThroughSaveLoadAndPreservesFingerprint) {
  const core::Detector& det = fx().detector;
  ASSERT_TRUE(det.hasBaseline);

  std::stringstream ss;
  det.save(ss);
  const core::Detector loaded = core::Detector::load(ss);
  ASSERT_TRUE(loaded.hasBaseline);
  ASSERT_EQ(loaded.baseline.clusters.size(), det.baseline.clusters.size());
  for (std::size_t i = 0; i < det.baseline.clusters.size(); ++i) {
    EXPECT_EQ(loaded.baseline.clusters[i].name, det.baseline.clusters[i].name);
    EXPECT_EQ(loaded.baseline.clusters[i].hot, det.baseline.clusters[i].hot);
    EXPECT_EQ(loaded.baseline.clusters[i].cold, det.baseline.clusters[i].cold);
    EXPECT_EQ(loaded.baseline.clusters[i].buckets,
              det.baseline.clusters[i].buckets);
  }
  // topoKey is not serialized; cluster names must survive through the
  // baseline section so a loaded model still labels its /modelz slots.
  EXPECT_EQ(loaded.clusterNames(), det.clusterNames());
  // The baseline is excluded from the fingerprint: cached verdict keys
  // survive attaching or dropping it.
  EXPECT_EQ(loaded.fingerprint(), det.fingerprint());
  core::Detector stripped = det;
  stripped.hasBaseline = false;
  EXPECT_EQ(stripped.fingerprint(), det.fingerprint());

  // A baseline-free save (the pre-baseline format) still loads.
  std::stringstream bare;
  stripped.save(bare);
  const core::Detector old = core::Detector::load(bare);
  EXPECT_FALSE(old.hasBaseline);
  EXPECT_EQ(old.fingerprint(), det.fingerprint());
}

TEST(DetectorBaseline, LoadRejectsAGarbageTrailer) {
  core::Detector stripped = fx().detector;
  stripped.hasBaseline = false;
  std::stringstream ss;
  stripped.save(ss);
  ss << "garbage 1 2\n";
  EXPECT_THROW(core::Detector::load(ss), std::runtime_error);
}

// ---------------------------------------------------------------------------
// DriftScorer

TEST(DriftScorer, SteadyTrafficScoresNearZeroAndShiftedTrafficFlips) {
  // Build a baseline from one recorder's traffic, then replay (a) the
  // identical distribution and (b) the same margins scaled 8x (three log
  // buckets) against it.
  const auto feed = [](ModelStatsRecorder& rec, double scale) {
    for (int i = 0; i < 400; ++i) {
      const double m = ((i % 9) - 4) * 0.31 * scale;
      rec.record(0, m, m > 0);
    }
  };
  ModelStatsRecorder ref({"a"});
  feed(ref, 1.0);
  const ModelBaseline base = baselineFromSnapshot(ref.snapshot());

  DriftConfig cfg;
  cfg.minWindowCount = 1;
  {
    auto live = std::make_shared<ModelStatsRecorder>(
        std::vector<std::string>{"a"});
    feed(*live, 1.0);
    DriftScorer scorer(base, cfg);
    scorer.setSource(live);
    const DriftScorer::Status st = scorer.status();
    ASSERT_EQ(st.clusters.size(), 2u);  // "a" + feedback
    EXPECT_EQ(st.clusters[0].windowCount, 400u);
    EXPECT_TRUE(st.clusters[0].scored);
    EXPECT_LT(st.clusters[0].psi, 0.01);
    EXPECT_FALSE(st.clusters[0].drifted);
    // The feedback pseudo-slot has no baseline cluster: never scored.
    EXPECT_FALSE(st.clusters[1].scored);
    EXPECT_FALSE(st.anyDrifted);
    const std::string json = scorer.toJson(st);
    EXPECT_TRUE(parsesAsJson(json)) << json;
    EXPECT_NE(json.find("\"psiThreshold\""), std::string::npos);
    EXPECT_NE(json.find("\"drifted\": false"), std::string::npos);
  }
  {
    auto live = std::make_shared<ModelStatsRecorder>(
        std::vector<std::string>{"a"});
    feed(*live, 8.0);
    DriftScorer scorer(base, cfg);
    scorer.setSource(live);
    const DriftScorer::Status st = scorer.status();
    EXPECT_TRUE(st.clusters[0].scored);
    EXPECT_GT(st.clusters[0].psi, cfg.psiThreshold);
    EXPECT_TRUE(st.clusters[0].drifted);
    EXPECT_TRUE(st.anyDrifted);
  }
}

TEST(DriftScorer, MinWindowCountGatesScoring) {
  ModelStatsRecorder ref({"a"});
  ref.record(0, 1.0, true);
  const ModelBaseline base = baselineFromSnapshot(ref.snapshot());
  DriftConfig cfg;
  cfg.minWindowCount = 50;
  auto live = std::make_shared<ModelStatsRecorder>(
      std::vector<std::string>{"a"});
  for (int i = 0; i < 49; ++i) live->record(0, -100.0, false);
  DriftScorer scorer(base, cfg);
  scorer.setSource(live);
  DriftScorer::Status st = scorer.status();
  // Heavily shifted but under the count floor: reported, never scored.
  EXPECT_EQ(st.clusters[0].windowCount, 49u);
  EXPECT_FALSE(st.clusters[0].scored);
  EXPECT_FALSE(st.anyDrifted);
  live->record(0, -100.0, false);
  st = scorer.status();
  EXPECT_TRUE(st.clusters[0].scored);
  EXPECT_TRUE(st.clusters[0].drifted);
}

TEST(DriftScorer, WindowBoundarySampleIsInclusiveAndRingStaysBounded) {
  using Clock = DriftScorer::Clock;
  using std::chrono::seconds;
  ModelStatsRecorder ref({"a"});
  for (int i = 0; i < 100; ++i) ref.record(0, 0.5, true);
  const ModelBaseline base = baselineFromSnapshot(ref.snapshot());

  DriftConfig cfg;
  cfg.windowSeconds = 60.0;
  cfg.minWindowCount = 1;
  auto live = std::make_shared<ModelStatsRecorder>(
      std::vector<std::string>{"a"});
  DriftScorer scorer(base, cfg);
  scorer.setSource(live);

  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 100; ++i) live->record(0, 0.5, true);   // baseline-like
  scorer.sample(t0);
  for (int i = 0; i < 100; ++i) live->record(0, -64.0, false);  // shifted

  // Early life (no sample windowSeconds old yet): zero-origin fallback —
  // the window covers everything, half steady half shifted.
  DriftScorer::Status st = scorer.status(t0 + seconds(1));
  EXPECT_EQ(st.clusters[0].windowCount, 200u);
  EXPECT_LE(st.clusters[0].coveredSeconds, cfg.windowSeconds);

  // At exactly the window boundary the t0 sample is selected (>= is
  // inclusive): the window is only the shifted tail, and drifts.
  st = scorer.status(t0 + seconds(60));
  EXPECT_EQ(st.clusters[0].windowCount, 100u);
  EXPECT_DOUBLE_EQ(st.clusters[0].coveredSeconds, 60.0);
  EXPECT_TRUE(st.clusters[0].drifted);

  // Scrape flood with a tiny ring: stays bounded (no growth, no crash)
  // and still scores.
  DriftConfig small = cfg;
  small.maxSamples = 4;
  DriftScorer flooded(base, small);
  flooded.setSource(live);
  for (int i = 0; i < 1000; ++i)
    flooded.sample(t0 + std::chrono::milliseconds(i));
  st = flooded.status(t0 + seconds(1));
  EXPECT_EQ(st.clusters[0].windowCount, 200u);  // zero-origin fallback

  // Re-pointing the source resets accumulated history.
  auto other = std::make_shared<ModelStatsRecorder>(
      std::vector<std::string>{"a"});
  other->record(0, 0.5, true);
  scorer.setSource(other);
  st = scorer.status(t0 + seconds(120));
  EXPECT_EQ(st.clusters[0].windowCount, 1u);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: drift through the serve path

TEST(ModelPlane, ServedTrafficShiftFlipsDriftWhileSteadyReplayDoesNot) {
  // Freeze the baseline from one served pass over the fixture layout.
  // (Caches are disabled throughout: a cache hit never reaches the SVM,
  // so a warm replay would otherwise record nothing.)
  const auto serveOnce = [](const Layout& layout)
      -> std::pair<std::shared_ptr<ModelStatsRecorder>, std::string> {
    serve::ServerConfig cfg;
    cfg.workers = 2;
    cfg.threadsPerContext = 2;
    cfg.enableCache = false;
    cfg.modelStats =
        std::make_shared<ModelStatsRecorder>(fx().detector.clusterNames());
    serve::DetectionServer server(cfg);
    const serve::ServeResult r =
        server.submit(fx().detector, layout, core::EvalParams{}).get();
    EXPECT_EQ(r.status, serve::RequestStatus::kOk) << toString(r.status);
    return {cfg.modelStats, tests::canonicalReport(r.result)};
  };

  const auto [refRec, refReport] = serveOnce(fx().test.layout);
  EXPECT_EQ(refReport, bareReport());  // plane-on serving stays exact
  const ModelBaseline base = baselineFromSnapshot(refRec->snapshot());

  DriftConfig cfg;
  cfg.minWindowCount = 1;

  // Steady replay of the identical layout: every scored cluster stays
  // under the threshold.
  const auto [steadyRec, steadyReport] = serveOnce(fx().test.layout);
  EXPECT_EQ(steadyReport, refReport);
  DriftScorer steady(base, cfg);
  steady.setSource(steadyRec);
  const DriftScorer::Status steadyStatus = steady.status();
  EXPECT_FALSE(steadyStatus.anyDrifted);
  std::uint64_t steadyScored = 0;
  for (const DriftScorer::ClusterStatus& c : steadyStatus.clusters) {
    if (!c.scored) continue;
    ++steadyScored;
    EXPECT_LT(c.psi, cfg.psiThreshold) << c.name;
  }
  EXPECT_GT(steadyScored, 0u);

  // The injected shift: the same design scaled 1.3x in both axes. Every
  // width and spacing moves, live margins no longer look like the
  // baseline, and at least one cluster's PSI flips past the threshold.
  const Layout shifted = scaledLayout(fx().test.layout, 13, 10);
  const auto [shiftRec, shiftReport] = serveOnce(shifted);
  (void)shiftReport;
  DriftScorer drifted(base, cfg);
  drifted.setSource(shiftRec);
  const DriftScorer::Status shiftStatus = drifted.status();
  EXPECT_TRUE(shiftStatus.anyDrifted);
  double maxPsi = 0.0;
  for (const DriftScorer::ClusterStatus& c : shiftStatus.clusters)
    if (c.scored) maxPsi = std::max(maxPsi, c.psi);
  EXPECT_GT(maxPsi, cfg.psiThreshold);
}

// ---------------------------------------------------------------------------
// Admin surfacing: /modelz, /statsz model section, /readyz?degraded

TEST(ModelPlane, AdminModelzServesSketchesDriftAndStrictParams) {
  auto rec = std::make_shared<ModelStatsRecorder>(
      std::vector<std::string>{"alpha", "beta"});
  rec->record(0, 2.0, true);
  rec->record(1, -2.0, false);
  ModelStatsRecorder ref({"alpha", "beta"});
  ref.record(0, 2.0, true);
  ref.record(1, -2.0, false);
  auto drift = std::make_shared<DriftScorer>(
      baselineFromSnapshot(ref.snapshot()));
  drift->setSource(rec);

  AdminServer admin;
  admin.setModelStats(rec);
  admin.setDrift(drift);
  admin.start();

  const net::HttpResult res =
      net::httpGet("127.0.0.1", admin.port(), "/modelz");
  EXPECT_EQ(res.status, 200);
  EXPECT_TRUE(parsesAsJson(res.body)) << res.body;
  EXPECT_NE(res.body.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(res.body.find("\"alpha\""), std::string::npos);
  EXPECT_NE(res.body.find("\"psiThreshold\""), std::string::npos);

  // Cluster filter narrows the view; strict parsers reject junk.
  const net::HttpResult beta =
      net::httpGet("127.0.0.1", admin.port(), "/modelz?cluster=beta");
  EXPECT_EQ(beta.status, 200);
  // The filter narrows the model section only; the drift section that
  // follows always reports every cluster.
  const std::string modelPart = beta.body.substr(0, beta.body.find("\"drift\""));
  EXPECT_EQ(modelPart.find("\"alpha\""), std::string::npos) << beta.body;
  EXPECT_NE(modelPart.find("\"beta\""), std::string::npos);
  EXPECT_EQ(
      net::httpGet("127.0.0.1", admin.port(), "/modelz?cluster=nope").status,
      400);
  EXPECT_EQ(
      net::httpGet("127.0.0.1", admin.port(), "/modelz?limit=abc").status,
      400);
  EXPECT_EQ(net::httpGet("127.0.0.1", admin.port(), "/modelz?limit=2").status,
            200);

  // /statsz carries the model section; /readyz?degraded the drift state.
  const net::HttpResult statsz =
      net::httpGet("127.0.0.1", admin.port(), "/statsz");
  EXPECT_TRUE(parsesAsJson(statsz.body)) << statsz.body;
  EXPECT_NE(statsz.body.find("\"model\""), std::string::npos);
  EXPECT_NE(statsz.body.find("\"modelDrift\""), std::string::npos);
  const net::HttpResult ready =
      net::httpGet("127.0.0.1", admin.port(), "/readyz?degraded");
  EXPECT_EQ(ready.status, 200);
  EXPECT_TRUE(parsesAsJson(ready.body)) << ready.body;
  EXPECT_NE(ready.body.find("\"modelDrift\""), std::string::npos);
  EXPECT_NE(ready.body.find("\"degraded\": false"), std::string::npos);
}

TEST(ModelPlane, AdminWithoutRecorderReportsDisabledAndDriftFlipsDegraded) {
  {
    AdminServer bare;
    bare.start();
    const net::HttpResult off =
        net::httpGet("127.0.0.1", bare.port(), "/modelz");
    EXPECT_EQ(off.status, 200);
    EXPECT_EQ(off.body, "{\"enabled\": false}\n");
    // No drift mounted: the degraded view has no modelDrift section.
    const net::HttpResult ready =
        net::httpGet("127.0.0.1", bare.port(), "/readyz?degraded");
    EXPECT_EQ(ready.body.find("\"modelDrift\""), std::string::npos);
  }
  // A drifted source flips /readyz?degraded while readiness stays 200:
  // degraded-not-dead, same contract as the SLO burn.
  ModelStatsRecorder ref({"a"});
  for (int i = 0; i < 100; ++i) ref.record(0, 0.5, true);
  auto live = std::make_shared<ModelStatsRecorder>(
      std::vector<std::string>{"a"});
  for (int i = 0; i < 100; ++i) live->record(0, -64.0, false);
  DriftConfig cfg;
  cfg.minWindowCount = 1;
  auto drift = std::make_shared<DriftScorer>(
      baselineFromSnapshot(ref.snapshot()), cfg);
  drift->setSource(live);
  AdminServer admin;
  admin.setModelStats(live);
  admin.setDrift(drift);
  admin.start();
  const net::HttpResult ready =
      net::httpGet("127.0.0.1", admin.port(), "/readyz?degraded");
  EXPECT_EQ(ready.status, 200);
  EXPECT_TRUE(parsesAsJson(ready.body)) << ready.body;
  EXPECT_NE(ready.body.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(ready.body.find("\"drifted\": true"), std::string::npos);
}

}  // namespace
}  // namespace hsd::obs
