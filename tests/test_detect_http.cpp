// Wire-level conformance suite for the detection-over-HTTP plane (ctest
// label: wire; part of the TSan label set). Pins the full POST /detect
// contract of serve::DetectionEndpoint mounted on net::HttpServer:
//
//  - the identity guarantee: the report fetched over the wire is
//    byte-identical to the in-process/offline report for the same layout
//    and config — ASCII and GDSII bodies, monolithic and tiled
//    (tile-size set), with a warm-cache second POST showing nonzero
//    shared-cache hits in the response headers;
//  - chunked upload of a layout through the raw socket;
//  - typed failures: oversize body 413, malformed layout/GDSII/query
//    400, undersized halo 400, unknown content-type 415, deadline 504,
//    queue-full 429 carrying Retry-After;
//  - keep-alive reuse of one connection across an error response and a
//    successful detection;
//  - client disconnect cancelling the server-side run (observable via
//    the serve cancellation counters and the endpoint's
//    disconnect-cancel counter);
//  - 405-vs-404 precedence on the detect server (GET /detect -> 405
//    Allow: POST; unknown path -> 404);
//  - a concurrent POST hammer with every response strictly parsed and
//    byte-compared;
//  - end-to-end request observability: the client's traceparent id (or a
//    freshly minted one) echoes back as X-Trace-Id and correlates the
//    request's spans (/tracez?trace=) and log records (/logz?trace=),
//    including across the tiled fan-out's borrowed helper contexts; the
//    X-Profile opt-in returns a per-request breakdown header; and a fully
//    observed plane (tracer + log + propagation) keeps reports
//    byte-identical across threads {1,8} x {monolithic, tiled}.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "engine/run_context.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"
#include "mini_json.hpp"
#include "net/http.hpp"
#include "obs/admin.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "obs/trace_id.hpp"
#include "serve/detect_endpoint.hpp"
#include "serve/server.hpp"

namespace hsd::serve {
namespace {

// One shared fixture spec for the whole binary (memoized training run).
tests::FixtureSpec wireSpec() {
  tests::FixtureSpec spec;
  spec.seed = 21;
  spec.hotspots = 12;
  spec.nonHotspots = 48;
  spec.width = 20000;
  spec.height = 20000;
  spec.sites = 8;
  return spec;
}

/// The offline reference: exactly the bytes hsd_detect would write for
/// the fixture layout with default EvalParams.
const std::string& offlineReport() {
  static const std::string report = [] {
    const tests::DetectorFixture& f = tests::detectorFixture(wireSpec());
    engine::RunContext ctx(1);
    core::EvalParams ep;
    ep.extract.clip = f.detector.params.clip;
    ep.removal.clip = f.detector.params.clip;
    const core::EvalResult res =
        core::evaluateLayout(f.detector, f.test.layout, ep, ctx);
    std::ostringstream os;
    gds::writeWindowList(os, res.reported, f.detector.params.clip);
    return os.str();
  }();
  return report;
}

std::string asciiLayoutBody() {
  const tests::DetectorFixture& f = tests::detectorFixture(wireSpec());
  std::ostringstream os;
  gds::writeAsciiLayout(os, f.test.layout);
  return os.str();
}

std::string gdsiiLayoutBody() {
  const tests::DetectorFixture& f = tests::detectorFixture(wireSpec());
  std::ostringstream os;
  gds::writeGdsii(os, f.test.layout);
  return os.str();
}

/// A DetectionServer + endpoint + transport, wired the way hsd_serve
/// does it.
struct WirePlane {
  explicit WirePlane(DetectEndpointConfig dcfg = {},
                     net::HttpServerOptions ho = defaultHttpOptions(),
                     ServerConfig scfg = defaultServerConfig()) {
    server = std::make_unique<DetectionServer>(scfg);
    endpoint = std::make_unique<DetectionEndpoint>(
        *server, tests::detectorFixture(wireSpec()).detector, dcfg);
    http = std::make_unique<net::HttpServer>(ho);
    endpoint->mount(*http);
    http->start();
  }

  static ServerConfig defaultServerConfig() {
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.threadsPerContext = 1;
    return cfg;
  }

  static net::HttpServerOptions defaultHttpOptions() {
    net::HttpServerOptions ho;
    ho.maxBodyBytes = 64 << 20;  // fixture layouts exceed the 1 MiB default
    ho.handlerThreads = 4;
    return ho;
  }

  ~WirePlane() {
    // The production drain order (tools/hsd_serve): transport first, so
    // in-flight handlers resolve while workers still run.
    http->stop();
    server->shutdown();
  }

  std::uint16_t port() const { return http->port(); }

  std::unique_ptr<DetectionServer> server;
  std::unique_ptr<DetectionEndpoint> endpoint;
  std::unique_ptr<net::HttpServer> http;
};

net::HttpResult postLayout(const WirePlane& w, const std::string& target,
                           const std::string& body,
                           const std::string& contentType = "text/plain") {
  return net::httpPost("127.0.0.1", w.port(), target, body, contentType, {},
                       /*timeoutMs=*/60000);
}

/// Raw TCP exchange (verbatim request, read to EOF) for wire cases the
/// well-behaved client cannot produce.
std::string rawExchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  timeval tv{};
  tv.tv_sec = 60;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t w =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (w <= 0) break;
    off += std::size_t(w);
  }
  std::string resp;
  for (;;) {
    char chunk[8192];
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    resp.append(chunk, std::size_t(r));
  }
  ::close(fd);
  return resp;
}

std::string bodyOf(const std::string& rawResponse) {
  const std::size_t headEnd = rawResponse.find("\r\n\r\n");
  return headEnd == std::string::npos ? std::string()
                                      : rawResponse.substr(headEnd + 4);
}

// ---------------------------------------------------------------------------
// Identity: the wire report is the offline report, byte for byte

TEST(DetectHttp, ReportIsByteIdenticalToOfflineForAsciiAndGdsii) {
  WirePlane w;
  const net::HttpResult ascii = postLayout(w, "/detect", asciiLayoutBody());
  ASSERT_EQ(ascii.status, 200) << ascii.body;
  EXPECT_EQ(ascii.body, offlineReport());
  ASSERT_NE(ascii.header("x-request-id"), nullptr);
  ASSERT_NE(ascii.header("x-serve-request"), nullptr);
  ASSERT_NE(ascii.header("x-candidate-clips"), nullptr);

  const net::HttpResult gds = postLayout(w, "/detect", gdsiiLayoutBody(),
                                         "application/octet-stream");
  ASSERT_EQ(gds.status, 200) << gds.body;
  EXPECT_EQ(gds.body, offlineReport());

  // Warm-cache second POST: the shared StageCache has seen this exact
  // layout, so the report must repeat AND the hit counter must be live.
  const net::HttpResult warm = postLayout(w, "/detect", asciiLayoutBody());
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(warm.body, offlineReport());
  ASSERT_NE(warm.header("x-cache-hits"), nullptr);
  EXPECT_GT(std::stoull(*warm.header("x-cache-hits")), 0u)
      << "second POST of one layout should hit the shared cache";
}

TEST(DetectHttp, TiledPostMatchesMonolithicBytes) {
  WirePlane w;
  const net::HttpResult mono = postLayout(w, "/detect", asciiLayoutBody());
  ASSERT_EQ(mono.status, 200);
  for (const char* target :
       {"/detect?tile-size=8000", "/detect?tile-size=5000&tile-threads=2"}) {
    const net::HttpResult tiled = postLayout(w, target, asciiLayoutBody());
    ASSERT_EQ(tiled.status, 200) << tiled.body;
    EXPECT_EQ(tiled.body, mono.body) << "tiled wire report diverged for "
                                     << target;
    EXPECT_EQ(tiled.body, offlineReport());
    // The funnel counters ride the same identity contract.
    ASSERT_NE(tiled.header("x-candidate-clips"), nullptr);
    EXPECT_EQ(*tiled.header("x-candidate-clips"),
              *mono.header("x-candidate-clips"));
  }
}

// ---------------------------------------------------------------------------
// Chunked upload through the raw socket

TEST(DetectHttp, ChunkedUploadDetectsIdentically) {
  WirePlane w;
  const std::string layout = asciiLayoutBody();
  // De-frame the layout into uneven chunks; the transport must reassemble
  // the exact bytes before the endpoint parses them.
  std::ostringstream req;
  req << "POST /detect HTTP/1.1\r\nHost: t\r\nContent-Type: text/plain\r\n"
         "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  std::size_t pos = 0;
  const std::size_t sizes[] = {1, 700, 13, 4096, 257};
  std::size_t i = 0;
  while (pos < layout.size()) {
    const std::size_t n =
        std::min(sizes[i++ % 5], layout.size() - pos);
    req << std::hex << n << std::dec << "\r\n"
        << layout.substr(pos, n) << "\r\n";
    pos += n;
  }
  req << "0\r\n\r\n";
  const std::string resp = rawExchange(w.port(), req.str());
  ASSERT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos)
      << resp.substr(0, 200);
  EXPECT_EQ(bodyOf(resp), offlineReport());
}

// ---------------------------------------------------------------------------
// Typed failures

TEST(DetectHttp, OversizeBodyGets413) {
  net::HttpServerOptions ho;
  ho.maxBodyBytes = 1024;
  WirePlane w({}, ho);
  const net::HttpResult res =
      postLayout(w, "/detect", std::string(4096, 'x'));
  EXPECT_EQ(res.status, 413);
}

TEST(DetectHttp, MalformedInputsGet400) {
  WirePlane w;
  // Garbage where the ASCII layout grammar belongs.
  EXPECT_EQ(postLayout(w, "/detect", "this is not a layout\n").status, 400);
  // Garbage where a GDSII stream belongs.
  EXPECT_EQ(postLayout(w, "/detect", "\x00\x01\x02garbage",
                       "application/octet-stream")
                .status,
            400);
  // Empty body.
  EXPECT_EQ(postLayout(w, "/detect", "").status, 400);
  // Bad numeric query parameter, rejected before any parsing work.
  EXPECT_EQ(postLayout(w, "/detect?bias=wat", asciiLayoutBody()).status,
            400);
  // Undersized halo: the tiling-exactness violation is a client error.
  const net::HttpResult halo =
      postLayout(w, "/detect?tile-size=8000&halo=100", asciiLayoutBody());
  EXPECT_EQ(halo.status, 400);
  EXPECT_NE(halo.body.find("halo"), std::string::npos) << halo.body;
}

TEST(DetectHttp, UnknownContentTypeGets415) {
  WirePlane w;
  EXPECT_EQ(
      postLayout(w, "/detect", asciiLayoutBody(), "application/json").status,
      415);
}

TEST(DetectHttp, ExpiredDeadlineGets504) {
  WirePlane w;
  const net::HttpResult res =
      postLayout(w, "/detect?deadline-ms=0.001", asciiLayoutBody());
  EXPECT_EQ(res.status, 504);
  // The header spelling of the deadline behaves identically.
  const net::HttpResult viaHeader = net::httpPost(
      "127.0.0.1", w.port(), "/detect", asciiLayoutBody(), "text/plain",
      {{"X-Deadline-Ms", "0.001"}}, 60000);
  EXPECT_EQ(viaHeader.status, 504);
}

TEST(DetectHttp, QueueFullGets429WithRetryAfter) {
  // maxQueueDepth = 0 makes admission deterministic: every POST is over
  // the bound, none reaches the queue.
  DetectEndpointConfig dcfg;
  dcfg.maxQueueDepth = 0;
  WirePlane w(dcfg);
  const net::HttpResult res = postLayout(w, "/detect", asciiLayoutBody());
  ASSERT_EQ(res.status, 429) << res.body;
  ASSERT_NE(res.header("retry-after"), nullptr)
      << "429 must carry Retry-After";
  EXPECT_GE(std::stoll(*res.header("retry-after")), 1);

  // And a plane with headroom accepts the identical request.
  WirePlane open;
  EXPECT_EQ(postLayout(open, "/detect", asciiLayoutBody()).status, 200);
}

// ---------------------------------------------------------------------------
// Keep-alive across an error response

TEST(DetectHttp, ConnectionSurvivesErrorResponseThenServes200) {
  WirePlane w;
  const std::string bad = "not a layout\n";
  const std::string good = asciiLayoutBody();
  std::ostringstream req;
  req << "POST /detect HTTP/1.1\r\nHost: t\r\nContent-Type: text/plain\r\n"
      << "Content-Length: " << bad.size() << "\r\n\r\n" << bad
      << "POST /detect HTTP/1.1\r\nHost: t\r\nContent-Type: text/plain\r\n"
      << "Content-Length: " << good.size() << "\r\nConnection: close\r\n\r\n"
      << good;
  const std::string resp = rawExchange(w.port(), req.str());
  // First response: 400, keep-alive honored; second: the real report.
  EXPECT_NE(resp.find("HTTP/1.1 400 "), std::string::npos)
      << resp.substr(0, 300);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos)
      << resp.substr(0, 300);
  EXPECT_NE(resp.find("Connection: keep-alive"), std::string::npos);
  // The 200 body closes the stream, so the report is the tail bytes.
  const std::size_t okAt = resp.find("HTTP/1.1 200 OK");
  EXPECT_EQ(bodyOf(resp.substr(okAt)), offlineReport());
}

// ---------------------------------------------------------------------------
// Client disconnect cancels the server-side run

TEST(DetectHttp, ClientDisconnectCancelsQueuedRun) {
  // One worker, blocked by in-process submissions; the wire request
  // queues behind them. Closing the client socket must cancel it — the
  // handler's disconnect probe fires the CancelSource, and the queued
  // fast-fail path resolves kCancelled without ever running.
  ServerConfig scfg;
  scfg.workers = 1;
  scfg.threadsPerContext = 1;
  WirePlane w({}, {}, scfg);
  const tests::DetectorFixture& f = tests::detectorFixture(wireSpec());
  core::EvalParams ep;
  ep.extract.clip = f.detector.params.clip;
  ep.removal.clip = f.detector.params.clip;
  std::vector<std::future<ServeResult>> blockers;
  for (int i = 0; i < 3; ++i)
    blockers.push_back(w.server->submit(f.detector, f.test.layout, ep));

  // Full request, then immediate close: the handler sees EOF on its
  // MSG_PEEK probe while the request waits for the busy worker.
  const std::string body = asciiLayoutBody();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(w.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::ostringstream req;
  req << "POST /detect HTTP/1.1\r\nHost: t\r\nContent-Type: text/plain\r\n"
      << "Content-Length: " << body.size() << "\r\n\r\n" << body;
  const std::string text = req.str();
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += std::size_t(n);
  }
  ::close(fd);  // client walks away

  // The cancellation must become observable in the counters.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (w.server->stats().cancelled < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(w.server->stats().cancelled, 1u)
      << "client disconnect never surfaced as a cancelled request";
  EXPECT_NE(w.endpoint->statsJson().find("\"disconnectCancels\": 1"),
            std::string::npos)
      << w.endpoint->statsJson();
  for (auto& b : blockers) EXPECT_TRUE(b.get().ok());
}

// ---------------------------------------------------------------------------
// Routing precedence on the detect plane

TEST(DetectHttp, MethodAndPathPrecedence) {
  WirePlane w;
  // GET on the known POST path: 405 naming POST.
  const net::HttpResult get = net::httpGet("127.0.0.1", w.port(), "/detect");
  EXPECT_EQ(get.status, 405);
  ASSERT_NE(get.header("allow"), nullptr);
  EXPECT_EQ(*get.header("allow"), "POST");
  // POST on an unknown path: 404, never 405.
  EXPECT_EQ(postLayout(w, "/nope", asciiLayoutBody()).status, 404);
}

// ---------------------------------------------------------------------------
// Concurrent POST hammer, every response strictly parsed

TEST(DetectHttp, ConcurrentPostsAllSucceedByteIdentically) {
  WirePlane w;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::vector<std::thread> posters;
  std::vector<int> badStatus(kThreads, 0);
  std::vector<int> badBody(kThreads, 0);
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&w, t, &badStatus, &badBody] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          // Alternate ASCII and GDSII bodies; all must agree.
          const bool gds = (t + i) % 2 == 0;
          const net::HttpResult res = postLayout(
              w, "/detect", gds ? gdsiiLayoutBody() : asciiLayoutBody(),
              gds ? "application/octet-stream" : "text/plain");
          if (res.status != 200) ++badStatus[std::size_t(t)];
          if (res.body != offlineReport()) ++badBody[std::size_t(t)];
        } catch (const std::exception&) {
          ++badStatus[std::size_t(t)];
        }
      }
    });
  }
  for (std::thread& p : posters) p.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(badStatus[std::size_t(t)], 0) << "thread " << t;
    EXPECT_EQ(badBody[std::size_t(t)], 0) << "thread " << t;
  }
  // Every wire request flowed through the serve path.
  EXPECT_GE(w.server->stats().ok, std::size_t(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// End-to-end request observability

/// A fully observed server config: tracer + log recorder attached the way
/// tools/hsd_serve wires them.
ServerConfig observedServerConfig(std::shared_ptr<obs::TraceRecorder> tracer,
                                  std::shared_ptr<obs::LogRecorder> log,
                                  std::size_t workers = 2,
                                  std::size_t threadsPerContext = 1) {
  ServerConfig cfg;
  cfg.workers = workers;
  cfg.threadsPerContext = threadsPerContext;
  cfg.tracer = std::move(tracer);
  cfg.log = std::move(log);
  return cfg;
}

TEST(DetectHttp, TraceparentEchoesAndCorrelatesSpansAndLogs) {
  auto tracer = std::make_shared<obs::TraceRecorder>();
  auto log = std::make_shared<obs::LogRecorder>();
  WirePlane w({}, WirePlane::defaultHttpOptions(),
              observedServerConfig(tracer, log));
  const obs::TraceId sent = obs::makeTraceId();
  const std::string hex = obs::formatTraceId(sent);

  const net::HttpResult res = net::httpPost(
      "127.0.0.1", w.port(), "/detect", asciiLayoutBody(), "text/plain",
      {{"traceparent", obs::formatTraceparent(sent)}}, 60000);
  ASSERT_EQ(res.status, 200) << res.body;
  EXPECT_EQ(res.body, offlineReport());
  ASSERT_NE(res.header("x-trace-id"), nullptr);
  EXPECT_EQ(*res.header("x-trace-id"), hex);

  // The request's story is visible from both admin sides, keyed by the
  // same id the client holds.
  obs::AdminServer admin;
  admin.setTracer(tracer);
  admin.setLog(log);
  admin.start();
  const net::HttpResult tracez =
      net::httpGet("127.0.0.1", admin.port(), "/tracez?trace=" + hex);
  ASSERT_EQ(tracez.status, 200);
  EXPECT_TRUE(hsd::tests::parsesAsJson(tracez.body)) << tracez.body;
  EXPECT_EQ(tracez.body.find("\"returnedSpans\": 0"), std::string::npos)
      << tracez.body;
  EXPECT_NE(tracez.body.find("serve/run"), std::string::npos);
  EXPECT_NE(tracez.body.find("\"cat\": \"stage\""), std::string::npos)
      << "engine stage spans should carry the request trace";
  const net::HttpResult logz =
      net::httpGet("127.0.0.1", admin.port(), "/logz?trace=" + hex);
  ASSERT_EQ(logz.status, 200);
  EXPECT_NE(logz.body.find("detect request"), std::string::npos)
      << logz.body;
  EXPECT_NE(logz.body.find("request complete"), std::string::npos);
  EXPECT_EQ(logz.body.find("\"returnedRecords\": 0"), std::string::npos);

  // No traceparent: a fresh id is minted and echoed.
  const net::HttpResult fresh = postLayout(w, "/detect", asciiLayoutBody());
  ASSERT_NE(fresh.header("x-trace-id"), nullptr);
  obs::TraceId minted;
  ASSERT_TRUE(obs::parseTraceId(*fresh.header("x-trace-id"), minted));
  EXPECT_NE(minted, sent);

  // An invalid traceparent restarts the trace (W3C rule) — never a 400.
  const net::HttpResult bad = net::httpPost(
      "127.0.0.1", w.port(), "/detect", asciiLayoutBody(), "text/plain",
      {{"traceparent", "garbage-header"}}, 60000);
  ASSERT_EQ(bad.status, 200);
  ASSERT_NE(bad.header("x-trace-id"), nullptr);
  EXPECT_TRUE(obs::parseTraceId(*bad.header("x-trace-id"), minted));
}

TEST(DetectHttp, TiledFanoutCorrelatesAcrossBorrowedContexts) {
  auto tracer = std::make_shared<obs::TraceRecorder>();
  auto log = std::make_shared<obs::LogRecorder>();
  log->setMinLevel(obs::LogLevel::kDebug);  // admit per-tile records
  // Three pool contexts: the tiled run borrows the two idle ones as
  // helpers, so tile work lands on threads the request never owned.
  WirePlane w({}, WirePlane::defaultHttpOptions(),
              observedServerConfig(tracer, log, /*workers=*/3));
  const obs::TraceId sent = obs::makeTraceId();
  const net::HttpResult res = net::httpPost(
      "127.0.0.1", w.port(), "/detect?tile-size=5000&tile-threads=3",
      asciiLayoutBody(), "text/plain",
      {{"traceparent", obs::formatTraceparent(sent)}}, 60000);
  ASSERT_EQ(res.status, 200) << res.body;
  EXPECT_EQ(res.body, offlineReport());
  ASSERT_NE(res.header("x-trace-id"), nullptr);
  EXPECT_EQ(*res.header("x-trace-id"), obs::formatTraceId(sent));

  // Spans carrying this trace must span multiple recorder threads: the
  // serve worker plus at least one borrowed helper drain.
  std::set<std::uint32_t> tids;
  std::size_t traced = 0;
  for (const auto& se : tracer->snapshot())
    if (se.event.trace == sent) {
      ++traced;
      tids.insert(se.tid);
    }
  EXPECT_GT(traced, 1u);
  EXPECT_GE(tids.size(), 2u)
      << "tile fan-out should stamp the trace across borrowed contexts";

  // Per-tile log records carry the id too — from more than one thread.
  std::set<std::uint32_t> logTids;
  std::size_t tileRecords = 0;
  for (const auto& sr : log->snapshot())
    if (sr.record.trace == sent &&
        std::strncmp(sr.record.message, "tile eval", 9) == 0) {
      ++tileRecords;
      logTids.insert(sr.tid);
    }
  EXPECT_GT(tileRecords, 1u);
  EXPECT_GE(logTids.size(), 2u);
}

TEST(DetectHttp, ProfileHeaderOptInReturnsPerRequestBreakdown) {
  WirePlane w;
  // Off by default: no X-Profile header on a plain POST.
  const net::HttpResult plain = postLayout(w, "/detect", asciiLayoutBody());
  ASSERT_EQ(plain.status, 200);
  EXPECT_EQ(plain.header("x-profile"), nullptr);

  const net::HttpResult res = net::httpPost(
      "127.0.0.1", w.port(), "/detect", asciiLayoutBody(), "text/plain",
      {{"X-Profile", "1"}}, 60000);
  ASSERT_EQ(res.status, 200) << res.body;
  EXPECT_EQ(res.body, offlineReport());  // profiling never perturbs output
  ASSERT_NE(res.header("x-profile"), nullptr);
  const std::string& profile = *res.header("x-profile");
  EXPECT_TRUE(hsd::tests::parsesAsJson(profile)) << profile;
  for (const char* field :
       {"\"wireId\"", "\"status\"", "\"queueSeconds\"", "\"runSeconds\"",
        "\"arenaReservedBytes\"", "\"cache\"", "\"stages\""})
    EXPECT_NE(profile.find(field), std::string::npos) << profile;
  // The profile is also kept in the endpoint's recent-profiles ring.
  const std::string stats = w.endpoint->statsJson();
  EXPECT_TRUE(hsd::tests::parsesAsJson(stats)) << stats;
  EXPECT_NE(stats.find("\"recentProfiles\""), std::string::npos);
  EXPECT_NE(stats.find("\"runSeconds\""), std::string::npos);
}

TEST(DetectHttp, ObservedPlaneKeepsReportsByteIdentical) {
  // Full observability on (tracer + log + trace propagation): reports
  // stay byte-identical to the unobserved offline run across thread
  // counts and the monolithic/tiled split.
  for (const std::size_t threads : {std::size_t(1), std::size_t(8)}) {
    auto tracer = std::make_shared<obs::TraceRecorder>();
    auto log = std::make_shared<obs::LogRecorder>();
    log->setMinLevel(obs::LogLevel::kTrace);
    WirePlane w({}, WirePlane::defaultHttpOptions(),
                observedServerConfig(tracer, log, /*workers=*/2, threads));
    for (const char* target : {"/detect", "/detect?tile-size=5000"}) {
      const net::HttpResult res = net::httpPost(
          "127.0.0.1", w.port(), target, asciiLayoutBody(), "text/plain",
          {{"traceparent", obs::formatTraceparent(obs::makeTraceId())}},
          60000);
      ASSERT_EQ(res.status, 200) << target << " threads=" << threads;
      EXPECT_EQ(res.body, offlineReport())
          << "observed report diverged for " << target << " at threads="
          << threads;
    }
    EXPECT_GT(log->recordCount(), 0u);
  }
}

}  // namespace
}  // namespace hsd::serve
