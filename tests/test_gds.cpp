// GDSII and ASCII format tests: real8 codec, stream round trips,
// hierarchy flattening with Manhattan transforms, clip-set persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"
#include "gds/real8.hpp"
#include "geom/rectset.hpp"

namespace hsd::gds {
namespace {

TEST(Real8, RoundTripCommonValues) {
  for (const double v : {0.0, 1.0, -1.0, 0.001, 1e-9, 1e-3, 2.5, -1234.5,
                         6.25e-10, 1e12}) {
    const double back = decodeReal8(encodeReal8(v));
    EXPECT_NEAR(back, v, std::abs(v) * 1e-12 + 1e-300) << v;
  }
}

TEST(Real8, KnownEncoding) {
  // 1.0 = 16^1 * (1/16): exponent 65, mantissa 0x10000000000000.
  EXPECT_EQ(encodeReal8(1.0), 0x4110000000000000ULL);
  EXPECT_DOUBLE_EQ(decodeReal8(0x4110000000000000ULL), 1.0);
  // Sign bit.
  EXPECT_DOUBLE_EQ(decodeReal8(0xC110000000000000ULL), -1.0);
}

Layout sampleLayout() {
  Layout l("TESTTOP");
  l.addRect(1, {0, 0, 100, 200});
  l.addRect(1, {300, 0, 400, 500});
  l.addRect(2, {-50, -50, 20, 20});
  l.addPolygon(1, Polygon({{500, 0}, {700, 0}, {700, 100}, {600, 100},
                           {600, 300}, {500, 300}}));
  return l;
}

TEST(Gdsii, WriteReadRoundTrip) {
  const Layout in = sampleLayout();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  writeGdsii(ss, in);
  const Layout out = readGdsii(ss);

  EXPECT_EQ(out.name(), "TESTTOP");
  ASSERT_NE(out.findLayer(1), nullptr);
  ASSERT_NE(out.findLayer(2), nullptr);
  EXPECT_EQ(out.findLayer(1)->polygonCount(), 3u);
  EXPECT_EQ(out.findLayer(2)->polygonCount(), 1u);
  // Geometry identical: compare union areas per layer.
  EXPECT_EQ(unionArea(out.findLayer(1)->rects()),
            unionArea(in.findLayer(1)->rects()));
  EXPECT_EQ(out.bbox(), in.bbox());
}

TEST(Gdsii, RejectsGarbage) {
  std::stringstream ss("this is not a gds stream at all............");
  EXPECT_THROW(readGdsii(ss), GdsError);
}

TEST(Gdsii, EmptyLayoutRoundTrips) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  writeGdsii(ss, Layout("EMPTY"));
  const Layout out = readGdsii(ss);
  EXPECT_EQ(out.polygonCount(), 0u);
}

// Hand-build a tiny hierarchical GDS: child structure with one rect,
// parent referencing it twice (translated; one rotated 90).
void putU16(std::ostream& os, std::uint16_t v) {
  const char b[2] = {char(v >> 8), char(v & 0xff)};
  os.write(b, 2);
}
void putRec(std::ostream& os, std::uint16_t type,
            const std::vector<std::uint8_t>& d = {}) {
  putU16(os, std::uint16_t(4 + d.size()));
  putU16(os, type);
  os.write(reinterpret_cast<const char*>(d.data()), std::streamsize(d.size()));
}
std::vector<std::uint8_t> i16s(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> d;
  for (int v : vals) {
    d.push_back(std::uint8_t(std::uint16_t(v) >> 8));
    d.push_back(std::uint8_t(v & 0xff));
  }
  return d;
}
std::vector<std::uint8_t> i32s(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> d;
  for (int v : vals) {
    const auto u = std::uint32_t(v);
    d.push_back(std::uint8_t(u >> 24));
    d.push_back(std::uint8_t((u >> 16) & 0xff));
    d.push_back(std::uint8_t((u >> 8) & 0xff));
    d.push_back(std::uint8_t(u & 0xff));
  }
  return d;
}
std::vector<std::uint8_t> str(const std::string& s) {
  std::vector<std::uint8_t> d(s.begin(), s.end());
  if (d.size() % 2) d.push_back(0);
  return d;
}
std::vector<std::uint8_t> real8(double v) {
  std::vector<std::uint8_t> d;
  const std::uint64_t raw = encodeReal8(v);
  for (int b = 7; b >= 0; --b) d.push_back(std::uint8_t((raw >> (8 * b)) & 0xff));
  return d;
}

TEST(Gdsii, SrefFlatteningWithRotation) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  putRec(ss, 0x0002, i16s({600}));
  putRec(ss, 0x0102, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0206, str("LIB"));
  putRec(ss, 0x0305, [&] {
    auto d = real8(1e-3);
    auto d2 = real8(1e-9);
    d.insert(d.end(), d2.begin(), d2.end());
    return d;
  }());
  // child CELL: rect 0..10 x 0..20 on layer 1
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("CELL"));
  putRec(ss, 0x0800);
  putRec(ss, 0x0D02, i16s({1}));
  putRec(ss, 0x0E02, i16s({0}));
  putRec(ss, 0x1003, i32s({0, 0, 10, 0, 10, 20, 0, 20, 0, 0}));
  putRec(ss, 0x1100);
  putRec(ss, 0x0700);
  // parent TOP: SREF at (100,0), SREF rotated 90 at (0,100)
  putRec(ss, 0x0502, i16s({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}));
  putRec(ss, 0x0606, str("TOP"));
  putRec(ss, 0x0A00);
  putRec(ss, 0x1206, str("CELL"));
  putRec(ss, 0x1003, i32s({100, 0}));
  putRec(ss, 0x1100);
  putRec(ss, 0x0A00);
  putRec(ss, 0x1206, str("CELL"));
  putRec(ss, 0x1A01, i16s({0}));
  putRec(ss, 0x1C05, real8(90.0));
  putRec(ss, 0x1003, i32s({0, 100}));
  putRec(ss, 0x1100);
  putRec(ss, 0x0700);
  putRec(ss, 0x0400);

  const Layout out = readGdsii(ss);
  EXPECT_EQ(out.name(), "TOP");
  ASSERT_NE(out.findLayer(1), nullptr);
  EXPECT_EQ(out.findLayer(1)->polygonCount(), 2u);
  const auto& rects = out.findLayer(1)->rects();
  // Instance 1: translated to [100,110]x[0,20]; instance 2: rotated 90 ccw
  // then shifted to (0,100): (x,y)->(-y,x)+(0,100) = [-20,0]x[100,110].
  EXPECT_EQ(unionArea(rects), 2 * 200);
  Rect bb = rects.front();
  for (const Rect& r : rects) bb = bb.unite(r);
  EXPECT_EQ(bb, Rect(-20, 0, 110, 110));
}

TEST(AsciiLayout, RoundTrip) {
  const Layout in = sampleLayout();
  std::stringstream ss;
  writeAsciiLayout(ss, in);
  const Layout out = readAsciiLayout(ss);
  EXPECT_EQ(out.name(), in.name());
  EXPECT_EQ(out.polygonCount(), in.polygonCount());
  EXPECT_EQ(unionArea(out.findLayer(1)->rects()),
            unionArea(in.findLayer(1)->rects()));
}

TEST(AsciiLayout, BadLineThrows) {
  std::stringstream ss("layout X\nrect 1 2 3\n");
  EXPECT_THROW(readAsciiLayout(ss), GdsError);
}

TEST(ClipSet, RoundTrip) {
  ClipSet set;
  set.name = "train";
  set.params = ClipParams{};
  Clip a(ClipWindow::atCore({1800, 1800}, set.params), Label::kHotspot);
  a.setRects(1, {{0, 0, 200, 4800}, {1900, 1900, 2100, 2500}});
  Clip b(ClipWindow::atCore({1800, 1800}, set.params), Label::kNonHotspot);
  b.setRects(1, {{100, 100, 4700, 300}});
  b.setRects(3, {{0, 0, 50, 50}});
  set.clips = {a, b};

  std::stringstream ss;
  writeClipSet(ss, set);
  const ClipSet out = readClipSet(ss);
  EXPECT_EQ(out.name, "train");
  EXPECT_EQ(out.params, set.params);
  ASSERT_EQ(out.clips.size(), 2u);
  EXPECT_EQ(out.clips[0].label(), Label::kHotspot);
  EXPECT_EQ(out.clips[1].label(), Label::kNonHotspot);
  EXPECT_EQ(out.clips[0].window(), a.window());
  EXPECT_EQ(out.clips[0].rectsOn(1), a.rectsOn(1));
  EXPECT_EQ(out.clips[1].rectsOn(3), b.rectsOn(3));
}

TEST(ClipSet, MissingEndclipThrows) {
  std::stringstream ss("clipset x 1200 4800\nclip 1 0 0\nrect 0 0 1 1\n");
  EXPECT_THROW(readClipSet(ss), GdsError);
}

}  // namespace
}  // namespace hsd::gds
