// Hit / extra scoring tests against the Sec. II definitions.
#include <gtest/gtest.h>

#include "core/metrics.hpp"

namespace hsd::core {
namespace {

const ClipParams kP;  // 1200 core / 4800 clip

ClipWindow at(Coord x, Coord y) { return ClipWindow::atCore({x, y}, kP); }

TEST(Score, ExactMatchIsHit) {
  const Score s = scoreReports({at(0, 0)}, {at(0, 0)});
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.extras, 0u);
  EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(Score, SlightlyShiftedStillHits) {
  // Cores overlap, the report's clip still covers the actual core.
  const Score s = scoreReports({at(400, 300)}, {at(0, 0)});
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.extras, 0u);
}

TEST(Score, CoreTouchingIsNotOverlap) {
  // Cores share only an edge: no hit.
  const Score s = scoreReports({at(1200, 0)}, {at(0, 0)});
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.extras, 1u);
}

TEST(Score, CoreOverlapButClipNotCoveringFails) {
  // Shift so cores still overlap but the reported clip no longer fully
  // covers the actual core: shift by just under core side; the clip
  // boundary is 1800 from the core, so this still covers -> pick a huge
  // shift with tiny core overlap instead via a small custom clip.
  const ClipParams tight{1200, 1400};  // ambit only 100
  const ClipWindow rep = ClipWindow::atCore({1100, 0}, tight);
  const ClipWindow act = ClipWindow::atCore({0, 0}, tight);
  const Score s = scoreReports({rep}, {act}, {});
  // Cores overlap (100 wide), but rep.clip (x in [1000, 2500]) does not
  // contain act.core (x in [0,1200]).
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.extras, 1u);
}

TEST(Score, MultipleReportsOneHotspotCountOnce) {
  const Score s =
      scoreReports({at(0, 0), at(100, 0), at(0, 100)}, {at(0, 0)});
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.extras, 0u);  // all three reports are hit-reports
  EXPECT_EQ(s.reports, 3u);
}

TEST(Score, OneReportTwoHotspots) {
  // Two actual hotspots close together: one report can hit both.
  const Score s = scoreReports({at(300, 0)}, {at(0, 0), at(600, 0)});
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.extras, 0u);
  EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(Score, MissedHotspotLowersAccuracy) {
  const Score s = scoreReports({at(0, 0)}, {at(0, 0), at(50000, 50000)});
  EXPECT_EQ(s.hits, 1u);
  EXPECT_DOUBLE_EQ(s.accuracy(), 0.5);
}

TEST(Score, NoActualHotspots) {
  const Score s = scoreReports({at(0, 0)}, {});
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.extras, 1u);
  EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);  // vacuous
}

TEST(Score, FalseAlarmPerArea) {
  Score s;
  s.extras = 50;
  EXPECT_DOUBLE_EQ(s.falseAlarmPerUm2(100.0), 0.5);
  EXPECT_DOUBLE_EQ(s.falseAlarmPerUm2(0.0), 0.0);
}

TEST(Score, HitExtraRatio) {
  Score s;
  s.hits = 10;
  s.extras = 40;
  EXPECT_DOUBLE_EQ(s.hitExtraRatio(), 0.25);
  s.extras = 0;
  EXPECT_DOUBLE_EQ(s.hitExtraRatio(), 10.0);
}

TEST(Score, MinClipOverlapEnforced) {
  // With an extreme overlap requirement even an exact match clip overlap
  // (100%) passes, but a far-shifted one fails.
  ScoreParams sp;
  sp.minClipOverlapFrac = 0.9;
  EXPECT_EQ(scoreReports({at(0, 0)}, {at(0, 0)}, sp).hits, 1u);
  EXPECT_EQ(scoreReports({at(1100, 1100)}, {at(0, 0)}, sp).hits, 0u);
}

}  // namespace
}  // namespace hsd::core
