// SVM engine tests: the SMO solver on analytically known problems,
// KKT/optimality sanity, class weighting, scaling, and persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "svm/scaler.hpp"
#include "svm/svm.hpp"

namespace hsd::svm {
namespace {

TEST(RbfKernel, BasicValues) {
  EXPECT_DOUBLE_EQ(rbfKernel({0, 0}, {0, 0}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(rbfKernel({1, 0}, {0, 0}, 0.5), std::exp(-0.5));
  EXPECT_DOUBLE_EQ(rbfKernel({1, 1}, {0, 0}, 1.0), std::exp(-2.0));
}

TEST(Train, ThrowsOnDegenerateInput) {
  Dataset d;
  EXPECT_THROW(train(d, {}), std::invalid_argument);
  d.add({0.0}, 1);
  EXPECT_THROW(train(d, {}), std::invalid_argument);  // single class
  EXPECT_THROW(d.add({0.0, 1.0}, -1), std::invalid_argument);  // bad dim
  EXPECT_THROW(d.add({0.0}, 3), std::invalid_argument);  // bad label
}

TEST(Train, SeparableTwoPoints) {
  Dataset d;
  d.add({0.0}, -1);
  d.add({1.0}, 1);
  SvmParams p;
  p.C = 10;
  p.gamma = 1.0;
  const TrainResult r = train(d, p);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.model.predict({0.0}), -1);
  EXPECT_EQ(r.model.predict({1.0}), 1);
  // By symmetry the boundary is at 0.5.
  EXPECT_NEAR(r.model.decision({0.5}), 0.0, 1e-6);
  EXPECT_EQ(r.model.predict({-3.0}), -1);
  EXPECT_EQ(r.model.predict({4.0}), 1);
}

TEST(Train, XorNeedsNonlinearKernel) {
  Dataset d;
  d.add({0, 0}, -1);
  d.add({1, 1}, -1);
  d.add({0, 1}, 1);
  d.add({1, 0}, 1);
  SvmParams p;
  p.C = 100;
  p.gamma = 2.0;
  const TrainResult r = train(d, p);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(trainingAccuracy(r.model, d), 1.0);
}

TEST(Train, NoisyDataRespectsSlack) {
  // One mislabeled point inside the other class: with small C the model
  // should tolerate it rather than contort the boundary.
  std::mt19937 rng(1);
  std::normal_distribution<double> n(0.0, 0.3);
  Dataset d;
  for (int i = 0; i < 40; ++i) {
    d.add({n(rng) - 2.0, n(rng)}, -1);
    d.add({n(rng) + 2.0, n(rng)}, 1);
  }
  d.add({-2.0, 0.0}, 1);  // noise
  SvmParams p;
  p.C = 1.0;
  p.gamma = 0.5;
  const TrainResult r = train(d, p);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.model.predict({-2.0, 0.1}), -1);  // noise point overruled
  EXPECT_EQ(r.model.predict({2.0, -0.1}), 1);
  EXPECT_GE(trainingAccuracy(r.model, d), 0.95);
}

TEST(Train, AlphaWithinBoxConstraints) {
  std::mt19937 rng(2);
  std::normal_distribution<double> n(0.0, 1.0);
  Dataset d;
  for (int i = 0; i < 30; ++i) {
    d.add({n(rng) - 1.0, n(rng)}, -1);
    d.add({n(rng) + 1.0, n(rng)}, 1);
  }
  SvmParams p;
  p.C = 5.0;
  p.gamma = 0.7;
  const TrainResult r = train(d, p);
  // coef_i = alpha_i * y_i with 0 < alpha_i <= C.
  for (const double c : r.model.coefficients()) {
    EXPECT_GT(std::abs(c), 0.0);
    EXPECT_LE(std::abs(c), p.C + 1e-9);
  }
  // Sum of coefficients ~ 0 (equality constraint).
  double sum = 0;
  for (const double c : r.model.coefficients()) sum += c;
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(Train, ObjectiveImprovesWithLooserC) {
  // The dual optimum f(a) is nondecreasing in C (larger feasible box).
  std::mt19937 rng(3);
  std::normal_distribution<double> n(0.0, 1.0);
  Dataset d;
  for (int i = 0; i < 25; ++i) {
    d.add({n(rng) - 0.6}, -1);
    d.add({n(rng) + 0.6}, 1);
  }
  double last = -1;
  for (const double c : {0.1, 1.0, 10.0}) {
    SvmParams p;
    p.C = c;
    p.gamma = 1.0;
    const TrainResult r = train(d, p);
    EXPECT_GE(r.objective, last - 1e-6);
    last = r.objective;
  }
}

TEST(Train, ClassWeightsShiftBoundary) {
  // Imbalanced data: weighting the minority class pushes the boundary out.
  std::mt19937 rng(4);
  std::normal_distribution<double> n(0.0, 0.4);
  Dataset d;
  d.add({1.5}, 1);
  for (int i = 0; i < 50; ++i) d.add({n(rng) - 1.0}, -1);
  SvmParams pw;
  pw.C = 1.0;
  pw.gamma = 0.5;
  pw.weightPos = 50.0;
  const TrainResult weighted = train(d, pw);
  EXPECT_EQ(weighted.model.predict({1.5}), 1);
  // Decision value at the positive sample grows with its weight.
  SvmParams pu = pw;
  pu.weightPos = 1.0;
  const TrainResult unweighted = train(d, pu);
  EXPECT_GE(weighted.model.decision({1.5}),
            unweighted.model.decision({1.5}) - 1e-9);
}

TEST(Train, GammaControlsLocality) {
  // With huge gamma, the decision collapses to near-neighbors: a probe far
  // from every SV lands on the majority-bias side (rho).
  Dataset d;
  d.add({0.0}, 1);
  d.add({1.0}, -1);
  SvmParams p;
  p.C = 10;
  p.gamma = 100.0;
  const TrainResult r = train(d, p);
  EXPECT_NEAR(r.model.decision({50.0}), -r.model.rho(), 1e-6);
}

TEST(Model, SaveLoadRoundTrip) {
  std::mt19937 rng(5);
  std::normal_distribution<double> n(0.0, 1.0);
  Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.add({n(rng) - 1.0, n(rng) + 0.3}, -1);
    d.add({n(rng) + 1.0, n(rng) - 0.3}, 1);
  }
  SvmParams p;
  p.C = 3.0;
  p.gamma = 0.9;
  const SvmModel m = train(d, p).model;
  std::stringstream ss;
  m.save(ss);
  const SvmModel back = SvmModel::load(ss);
  EXPECT_EQ(back.supportVectorCount(), m.supportVectorCount());
  for (int i = 0; i < 10; ++i) {
    const FeatureVector x{n(rng), n(rng)};
    EXPECT_NEAR(back.decision(x), m.decision(x), 1e-12);
  }
}

TEST(Model, LoadRejectsBadHeader) {
  std::stringstream ss("not_a_model 1\n");
  EXPECT_THROW(SvmModel::load(ss), std::runtime_error);
}

TEST(Model, PredictBiasShiftsThreshold) {
  Dataset d;
  d.add({0.0}, -1);
  d.add({1.0}, 1);
  SvmParams p;
  p.C = 10;
  p.gamma = 1.0;
  const SvmModel m = train(d, p).model;
  const double mid = m.decision({0.6});
  EXPECT_EQ(m.predict({0.6}, mid - 0.01), 1);
  EXPECT_EQ(m.predict({0.6}, mid + 0.01), -1);
}

TEST(Scaler, MapsToUnitBox) {
  Scaler s;
  s.fit({{0, 10}, {5, 20}, {10, 30}});
  EXPECT_EQ(s.transform({0, 10}), (FeatureVector{0.0, 0.0}));
  EXPECT_EQ(s.transform({10, 30}), (FeatureVector{1.0, 1.0}));
  EXPECT_EQ(s.transform({5, 20}), (FeatureVector{0.5, 0.5}));
}

TEST(Scaler, ClampsOutOfRange) {
  Scaler s;
  s.fit({{0.0}, {1.0}});
  EXPECT_EQ(s.transform({-5})[0], 0.0);
  EXPECT_EQ(s.transform({9})[0], 1.0);
}

TEST(Scaler, ConstantFeatureMapsToHalf) {
  Scaler s;
  s.fit({{7.0, 1.0}, {7.0, 3.0}});
  EXPECT_EQ(s.transform({7.0, 2.0}), (FeatureVector{0.5, 0.5}));
}

TEST(Scaler, DimensionMismatchThrows) {
  Scaler s;
  s.fit({{1.0, 2.0}});
  EXPECT_THROW(s.transform({1.0}), std::invalid_argument);
}

class SvmAccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmAccuracySweep, GaussianBlobsSeparate) {
  const double sep = GetParam();
  std::mt19937 rng(std::uint64_t(sep * 100));
  std::normal_distribution<double> n(0.0, 0.5);
  Dataset train_d, test_d;
  for (int i = 0; i < 60; ++i) {
    train_d.add({n(rng) - sep, n(rng)}, -1);
    train_d.add({n(rng) + sep, n(rng)}, 1);
    test_d.add({n(rng) - sep, n(rng)}, -1);
    test_d.add({n(rng) + sep, n(rng)}, 1);
  }
  SvmParams p;
  p.C = 10;
  p.gamma = 0.5;
  const SvmModel m = train(train_d, p).model;
  // Generalization improves with separation; even sep=1 should beat 85%.
  EXPECT_GE(trainingAccuracy(m, test_d), sep >= 2.0 ? 0.97 : 0.85);
}

INSTANTIATE_TEST_SUITE_P(Separations, SvmAccuracySweep,
                         ::testing::Values(1.0, 2.0, 3.0));

}  // namespace
}  // namespace hsd::svm
