// Cross-validation and grid-search tests.
#include <gtest/gtest.h>

#include <random>

#include "svm/model_selection.hpp"

namespace hsd::svm {
namespace {

Dataset blobs(double sep, int perClass, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> n(0.0, 0.5);
  Dataset d;
  for (int i = 0; i < perClass; ++i) {
    d.add({n(rng) - sep, n(rng)}, -1);
    d.add({n(rng) + sep, n(rng)}, 1);
  }
  return d;
}

TEST(StratifiedFolds, EveryFoldHasBothClasses) {
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) labels.push_back(1);
  for (int i = 0; i < 40; ++i) labels.push_back(-1);
  const auto fold = stratifiedFolds(labels, 5, 3);
  ASSERT_EQ(fold.size(), labels.size());
  for (std::size_t f = 0; f < 5; ++f) {
    int pos = 0, neg = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (fold[i] != f) continue;
      (labels[i] > 0 ? pos : neg) += 1;
    }
    EXPECT_EQ(pos, 2) << f;  // 10 positives over 5 folds
    EXPECT_EQ(neg, 8) << f;
  }
}

TEST(StratifiedFolds, DeterministicPerSeed) {
  const std::vector<int> labels{1, 1, 1, -1, -1, -1, -1, -1};
  EXPECT_EQ(stratifiedFolds(labels, 3, 7), stratifiedFolds(labels, 3, 7));
  EXPECT_NE(stratifiedFolds(labels, 3, 7), stratifiedFolds(labels, 3, 8));
}

TEST(StratifiedFolds, ZeroFoldsThrows) {
  EXPECT_THROW(stratifiedFolds({1, -1}, 0), std::invalid_argument);
}

TEST(CrossValidate, SeparableDataScoresHigh) {
  const Dataset d = blobs(3.0, 30, 1);
  SvmParams p;
  p.C = 10;
  p.gamma = 0.5;
  const CvResult r = crossValidate(d, p, 5);
  EXPECT_EQ(r.evaluated, d.size());
  EXPECT_GE(r.accuracy, 0.95);
  EXPECT_GE(r.posRecall, 0.9);
  EXPECT_GE(r.negRecall, 0.9);
}

TEST(CrossValidate, OverlappingDataScoresLower) {
  const Dataset far = blobs(3.0, 30, 2);
  const Dataset near = blobs(0.3, 30, 2);
  SvmParams p;
  p.C = 10;
  p.gamma = 0.5;
  EXPECT_GT(crossValidate(far, p, 5).accuracy,
            crossValidate(near, p, 5).accuracy);
}

TEST(CrossValidate, EmptyThrows) {
  EXPECT_THROW(crossValidate(Dataset{}, SvmParams{}, 5),
               std::invalid_argument);
}

TEST(GridSearch, FindsWorkingHyperparameters) {
  const Dataset d = blobs(1.5, 25, 3);
  GridSearchSpec spec;
  spec.Cs = {0.01, 1.0, 100.0};
  spec.gammas = {0.001, 0.5, 50.0};
  spec.folds = 4;
  const GridSearchResult r = gridSearch(d, spec);
  EXPECT_EQ(r.all.size(), 9u);
  EXPECT_GE(std::min(r.best.cv.posRecall, r.best.cv.negRecall), 0.85);
  // The best point's balanced score is max over the grid.
  for (const GridPoint& gp : r.all)
    EXPECT_GE(std::min(r.best.cv.posRecall, r.best.cv.negRecall),
              std::min(gp.cv.posRecall, gp.cv.negRecall) - 1e-12);
}

TEST(GridSearch, BalancedScorePrefersMinorityRecall) {
  // Imbalanced set: accuracy-optimal can mean "ignore the minority";
  // the balanced score must not.
  std::mt19937 rng(4);
  std::normal_distribution<double> n(0.0, 0.4);
  Dataset d;
  for (int i = 0; i < 6; ++i) d.add({n(rng) + 1.6, n(rng)}, 1);
  for (int i = 0; i < 60; ++i) d.add({n(rng) - 1.0, n(rng)}, -1);
  GridSearchSpec spec;
  spec.folds = 3;
  const GridSearchResult r = gridSearch(d, spec);
  EXPECT_GT(r.best.cv.posRecall, 0.5);
}

}  // namespace
}  // namespace hsd::svm
