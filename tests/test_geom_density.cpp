// Density grid tests: exact pixel fractions, mean density, and the D8
// minimum-distance metric of Eq. (1).
#include <gtest/gtest.h>

#include <random>

#include "geom/density_grid.hpp"

namespace hsd {
namespace {

TEST(DensityGrid, FullCoverIsAllOnes) {
  const Rect win{0, 0, 120, 120};
  const DensityGrid g({{0, 0, 120, 120}}, win, 12, 12);
  for (double v : g.values()) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(g.mean(), 1.0);
}

TEST(DensityGrid, EmptyIsAllZeros) {
  const DensityGrid g({}, {0, 0, 120, 120}, 12, 12);
  for (double v : g.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DensityGrid, PartialPixelFraction) {
  // One rect covering exactly half of pixel (0,0): pixel is 10x10, rect 10x5.
  const DensityGrid g({{0, 0, 10, 5}}, {0, 0, 100, 100}, 10, 10);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 0.0);
}

TEST(DensityGrid, MeanMatchesAreaFraction) {
  const Rect win{0, 0, 100, 100};
  const DensityGrid g({{0, 0, 50, 100}}, win, 10, 10);
  EXPECT_NEAR(g.mean(), 0.5, 1e-12);
}

TEST(DensityGrid, DistanceToSelfIsZero) {
  const Rect win{0, 0, 120, 120};
  const DensityGrid g({{10, 10, 60, 110}}, win, 12, 12);
  EXPECT_DOUBLE_EQ(g.distance(g), 0.0);
}

TEST(DensityGrid, DistanceIsSymmetric) {
  const Rect win{0, 0, 120, 120};
  const DensityGrid a({{10, 10, 60, 110}}, win, 12, 12);
  const DensityGrid b({{30, 0, 80, 90}, {0, 100, 120, 120}}, win, 12, 12);
  EXPECT_DOUBLE_EQ(a.distance(b), b.distance(a));
}

TEST(DensityGrid, RotatedPatternHasZeroDistance) {
  const Rect win{0, 0, 120, 120};
  // An L-shaped pattern and its 90-degree rotation.
  const std::vector<Rect> l{{0, 0, 80, 30}, {0, 30, 30, 100}};
  std::vector<Rect> rot;
  for (const Rect& r : l) rot.push_back(apply(Orient::R90, r, 120, 120));
  const DensityGrid a(l, win, 12, 12);
  const DensityGrid b(rot, win, 12, 12);
  EXPECT_NEAR(a.distance(b), 0.0, 1e-9);
  // But the plain R0 distance is nonzero (the pattern is asymmetric).
  EXPECT_GT(a.l1Distance(b, Orient::R0), 1.0);
}

TEST(DensityGrid, MirroredPatternHasZeroDistance) {
  const Rect win{0, 0, 120, 120};
  const std::vector<Rect> p{{0, 0, 50, 20}, {0, 20, 20, 90}};
  std::vector<Rect> mir;
  for (const Rect& r : p) mir.push_back(apply(Orient::MY, r, 120, 120));
  const DensityGrid a(p, win, 12, 12);
  const DensityGrid b(mir, win, 12, 12);
  EXPECT_NEAR(a.distance(b), 0.0, 1e-9);
}

TEST(DensityGridProperty, AllOrientationTransformsPreserveDistance) {
  // d(p, tau(q)) under the metric == d(p, q) because the metric minimizes
  // over the whole group.
  std::mt19937 rng(3);
  std::uniform_int_distribution<Coord> c(0, 119);
  const Rect win{0, 0, 120, 120};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Rect> p, q;
    for (int i = 0; i < 4; ++i) {
      p.push_back(Rect{c(rng), c(rng), c(rng), c(rng)});
      q.push_back(Rect{c(rng), c(rng), c(rng), c(rng)});
    }
    const DensityGrid gp(p, win, 12, 12);
    const DensityGrid gq(q, win, 12, 12);
    const double base = gp.distance(gq);
    for (const Orient o : kAllOrients) {
      std::vector<Rect> tq;
      for (const Rect& r : q) tq.push_back(apply(o, r, 120, 120));
      const DensityGrid gtq(tq, win, 12, 12);
      EXPECT_NEAR(gp.distance(gtq), base, 1e-9);
    }
  }
}

TEST(DensityGrid, TriangleInequalityHolds) {
  std::mt19937 rng(8);
  std::uniform_int_distribution<Coord> c(0, 119);
  const Rect win{0, 0, 120, 120};
  for (int trial = 0; trial < 20; ++trial) {
    const auto mk = [&] {
      std::vector<Rect> rs;
      for (int i = 0; i < 3; ++i)
        rs.push_back(Rect{c(rng), c(rng), c(rng), c(rng)});
      return DensityGrid(rs, win, 12, 12);
    };
    const DensityGrid a = mk(), b = mk(), cgrid = mk();
    EXPECT_LE(a.distance(cgrid), a.distance(b) + b.distance(cgrid) + 1e-9);
  }
}

}  // namespace
}  // namespace hsd
