// DRC engine tests: width/space/area rules, violation merging, connected
// shapes, and the generator's background fabric being rule-clean.
#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "drc/drc.hpp"

namespace hsd::drc {
namespace {

std::size_t countKind(const std::vector<Violation>& v, ViolationKind k) {
  std::size_t n = 0;
  for (const Violation& x : v) n += x.kind == k;
  return n;
}

TEST(Drc, CleanLayoutNoViolations) {
  DrcRules r;
  r.minWidth = 100;
  r.minSpace = 100;
  const std::vector<Rect> rects{{0, 0, 200, 1000}, {400, 0, 600, 1000}};
  EXPECT_TRUE(checkRects(rects, r).empty());
}

TEST(Drc, NarrowWireIsWidthViolation) {
  DrcRules r;
  r.minWidth = 120;
  const auto v = checkRects({{0, 0, 80, 1000}}, r);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::kWidth);
  EXPECT_EQ(v[0].value, 80);
  EXPECT_EQ(v[0].limit, 120);
  EXPECT_EQ(v[0].where, Rect(0, 0, 80, 1000));
}

TEST(Drc, TightGapIsSpaceViolation) {
  DrcRules r;
  r.minWidth = 50;
  r.minSpace = 150;
  const auto v = checkRects({{0, 0, 200, 1000}, {290, 0, 500, 1000}}, r);
  ASSERT_EQ(countKind(v, ViolationKind::kSpace), 1u);
  const Violation& sv = v.front();
  EXPECT_EQ(sv.value, 90);
  EXPECT_EQ(sv.where, Rect(200, 0, 290, 1000));
}

TEST(Drc, ViolationBoxesMergeAcrossBands) {
  // A skinny vertical wire crossed by other geometry producing many bands
  // must still report one merged width violation for the skinny part.
  DrcRules r;
  r.minWidth = 120;
  r.minSpace = 10;
  const std::vector<Rect> rects{
      {0, 0, 80, 3000},          // skinny wire
      {500, 1000, 900, 1200},    // unrelated far geometry (new band cuts)
      {500, 2000, 900, 2300},
  };
  const auto v = checkRects(rects, r);
  EXPECT_EQ(countKind(v, ViolationKind::kWidth), 1u);
  for (const Violation& x : v) {
    if (x.kind == ViolationKind::kWidth) {
      EXPECT_EQ(x.where, Rect(0, 0, 80, 3000));
    }
  }
}

TEST(Drc, LShapeMeasuresBothArms) {
  DrcRules r;
  r.minWidth = 150;
  // L with a 100-wide vertical arm and a 300-tall foot: only the arm's
  // horizontal width violates.
  const std::vector<Rect> rects{{0, 0, 1000, 300}, {0, 300, 100, 1200}};
  const auto v = checkRects(rects, r);
  ASSERT_GE(v.size(), 1u);
  for (const Violation& x : v) {
    EXPECT_EQ(x.kind, ViolationKind::kWidth);
    EXPECT_LE(x.where.hi.x, 100);  // confined to the arm
    EXPECT_GE(x.where.lo.y, 300);
  }
}

TEST(Drc, JogGapMeasuredOncePerAxis) {
  DrcRules r;
  r.minWidth = 50;
  r.minSpace = 200;
  // Vertical gap of 120 between stacked plates.
  const auto v = checkRects({{0, 0, 1000, 400}, {0, 520, 1000, 900}}, r);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::kSpace);
  EXPECT_EQ(v[0].value, 120);
}

TEST(Drc, AreaRule) {
  DrcRules r;
  r.minWidth = 10;
  r.minSpace = 10;
  r.minArea = 100 * 100;
  const auto v = checkRects({{0, 0, 50, 50}, {1000, 0, 1300, 1300}}, r);
  ASSERT_EQ(countKind(v, ViolationKind::kArea), 1u);
  for (const Violation& x : v)
    if (x.kind == ViolationKind::kArea) {
      EXPECT_EQ(x.value, 2500);
      EXPECT_EQ(x.where, Rect(0, 0, 50, 50));
    }
}

TEST(Drc, AbuttingRectsFormOneShape) {
  DrcRules r;
  r.minWidth = 10;
  r.minSpace = 10;
  r.minArea = 60 * 60;
  // Two 50x50 squares sharing an edge: combined 5000 >= 3600 -> clean.
  const auto v = checkRects({{0, 0, 50, 50}, {50, 0, 100, 50}}, r);
  EXPECT_EQ(countKind(v, ViolationKind::kArea), 0u);
}

TEST(Drc, CornerTouchDoesNotConnect) {
  const auto shapes =
      connectedShapes({{0, 0, 50, 50}, {50, 50, 100, 100}});
  EXPECT_EQ(shapes.size(), 2u);
}

TEST(Drc, ConnectedShapesTransitive) {
  const auto shapes = connectedShapes(
      {{0, 0, 50, 50}, {50, 0, 100, 50}, {100, 0, 150, 50}, {500, 0, 550, 50}});
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0].size() + shapes[1].size(), 4u);
}

TEST(Drc, MaxViolationsCap) {
  DrcRules r;
  r.minWidth = 200;
  std::vector<Rect> rects;
  for (int i = 0; i < 20; ++i)
    rects.push_back({i * 1000, 0, i * 1000 + 50, 500});
  EXPECT_EQ(checkRects(rects, r, 5).size(), 5u);
  EXPECT_EQ(checkRects(rects, r).size(), 20u);
}

TEST(Drc, GeneratorBackgroundIsRuleClean) {
  // The synthetic background fabric must satisfy the process's safe rules
  // (the hotspots come from motifs, not sloppy background).
  data::GeneratorParams gp;
  gp.seed = 41;
  const auto test = data::generateTestLayout(gp, 25000, 25000, 0, 0.0);
  DrcRules r;
  r.minWidth = gp.dims.safeWidth - gp.dims.jitter;
  r.minSpace = gp.dims.safeSpace - gp.dims.jitter;
  const auto v = checkLayout(test.layout, gp.layer, r, 10);
  EXPECT_TRUE(v.empty()) << v.size() << " violations, first at "
                         << v.front().where;
}

TEST(Drc, LayoutWithoutLayerIsClean) {
  const Layout empty;
  EXPECT_TRUE(checkLayout(empty, 1, DrcRules{}).empty());
}

}  // namespace
}  // namespace hsd::drc
