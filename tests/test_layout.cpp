// Layout database, spatial index and clip tests. The grid index is
// property-tested against brute-force overlap queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "layout/clip.hpp"
#include "layout/layout.hpp"
#include "layout/spatial_index.hpp"

namespace hsd {
namespace {

TEST(Layout, LayerRectCacheInvalidation) {
  Layout l;
  l.addRect(1, {0, 0, 10, 10});
  EXPECT_EQ(l.layer(1).rects().size(), 1u);
  l.addRect(1, {20, 0, 30, 10});
  EXPECT_EQ(l.layer(1).rects().size(), 2u);  // cache rebuilt
}

TEST(Layout, ConcurrentRectsOnColdCacheIsSafe) {
  // Regression (caught by TSan via the detection server): many threads
  // calling rects() on a shared const Layer used to race on the lazy
  // cache fill. All callers must see the same fully-built decomposition.
  Layout l;
  for (int i = 0; i < 64; ++i) l.addRect(1, {i * 100, 0, i * 100 + 50, 50});
  const Layer* layer = l.findLayer(1);
  ASSERT_NE(layer, nullptr);
  std::vector<std::thread> threads;
  std::vector<std::size_t> sizes(8, 0);
  for (std::size_t t = 0; t < sizes.size(); ++t)
    threads.emplace_back(
        [&, t] { sizes[t] = layer->rects().size(); });
  for (auto& th : threads) th.join();
  for (const std::size_t s : sizes) EXPECT_EQ(s, 64u);
}

TEST(Layout, CopiedLayerRebuildsItsOwnRectCache) {
  Layout l;
  l.addRect(1, {0, 0, 10, 10});
  EXPECT_EQ(l.layer(1).rects().size(), 1u);  // warm the cache
  Layout copy = l;
  copy.addRect(1, {20, 0, 30, 10});
  EXPECT_EQ(copy.layer(1).rects().size(), 2u);
  EXPECT_EQ(l.layer(1).rects().size(), 1u);  // original untouched
}

TEST(Layout, BboxAcrossLayers) {
  Layout l;
  EXPECT_FALSE(l.bbox().has_value());
  l.addRect(1, {0, 0, 10, 10});
  l.addRect(5, {-20, 30, -10, 40});
  ASSERT_TRUE(l.bbox().has_value());
  EXPECT_EQ(*l.bbox(), Rect(-20, 0, 10, 40));
  EXPECT_EQ(l.polygonCount(), 2u);
}

TEST(Layout, AreaUm2) {
  Layout l;
  l.addRect(1, {0, 0, 1000, 2000});  // 1um x 2um
  EXPECT_DOUBLE_EQ(l.areaUm2(), 2.0);
}

TEST(Layout, FindLayerMissingReturnsNull) {
  Layout l;
  l.addRect(1, {0, 0, 1, 1});
  EXPECT_EQ(l.findLayer(2), nullptr);
  EXPECT_NE(l.findLayer(1), nullptr);
}

TEST(GridIndex, EmptyIndex) {
  const GridIndex idx({}, 100);
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(idx.query({0, 0, 10, 10}).empty());
  EXPECT_FALSE(idx.anyOverlap({0, 0, 10, 10}));
}

TEST(GridIndex, BasicQuery) {
  const GridIndex idx({{0, 0, 10, 10}, {100, 100, 110, 110}}, 50);
  EXPECT_EQ(idx.query({5, 5, 6, 6}).size(), 1u);
  EXPECT_EQ(idx.query({-5, -5, 200, 200}).size(), 2u);
  EXPECT_TRUE(idx.query({50, 50, 60, 60}).empty());
  EXPECT_TRUE(idx.anyOverlap({105, 105, 106, 106}));
}

TEST(GridIndex, TouchingIsNotOverlap) {
  const GridIndex idx({{0, 0, 10, 10}}, 50);
  EXPECT_TRUE(idx.query({10, 0, 20, 10}).empty());
}

class GridIndexProperty : public ::testing::TestWithParam<Coord> {};

TEST_P(GridIndexProperty, MatchesBruteForce) {
  const Coord bin = GetParam();
  std::mt19937 rng(42);
  std::uniform_int_distribution<Coord> c(0, 1000);
  std::vector<Rect> rects;
  for (int i = 0; i < 200; ++i) {
    Coord x1 = c(rng), y1 = c(rng);
    rects.push_back({x1, y1, x1 + 1 + c(rng) % 80, y1 + 1 + c(rng) % 80});
  }
  const GridIndex idx(rects, bin);
  for (int q = 0; q < 100; ++q) {
    Coord x1 = c(rng), y1 = c(rng);
    const Rect query{x1 - 40, y1 - 40, x1 + 40, y1 + 40};
    std::vector<std::size_t> expect;
    for (std::size_t i = 0; i < rects.size(); ++i)
      if (rects[i].overlaps(query)) expect.push_back(i);
    std::vector<std::size_t> got = idx.query(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
    EXPECT_EQ(idx.anyOverlap(query), !expect.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(BinSizes, GridIndexProperty,
                         ::testing::Values<Coord>(10, 64, 300, 5000));

TEST(ClipWindow, AtCoreGeometry) {
  const ClipParams p;  // 1200 core / 4800 clip
  const ClipWindow w = ClipWindow::atCore({1800, 1800}, p);
  EXPECT_EQ(w.core, Rect(1800, 1800, 3000, 3000));
  EXPECT_EQ(w.clip, Rect(0, 0, 4800, 4800));
  EXPECT_EQ(p.ambit(), 1800);
}

TEST(ClipWindow, CenteredOn) {
  const ClipParams p;
  const ClipWindow w = ClipWindow::centeredOn({2400, 2400}, p);
  EXPECT_EQ(w.core.center(), Point(2400, 2400));
  EXPECT_EQ(w.clip.center(), Point(2400, 2400));
}

TEST(Clip, LocalCoordinates) {
  const ClipParams p;
  Clip c(ClipWindow::atCore({1800, 1800}, p), Label::kHotspot);
  c.setRects(1, {{-100, 2000, 2000, 2200},  // sticks out of the clip
                 {1900, 1900, 2100, 2900}});
  const auto clipLocal = c.localClipRects(1);
  ASSERT_EQ(clipLocal.size(), 2u);
  EXPECT_EQ(clipLocal[0], Rect(0, 2000, 2000, 2200));  // clipped to window
  const auto coreLocal = c.localCoreRects(1);
  ASSERT_EQ(coreLocal.size(), 2u);
  // Core-local: origin at (1800,1800); the first rect ends at x=2000.
  EXPECT_EQ(coreLocal[0], Rect(0, 200, 200, 400));
  EXPECT_EQ(coreLocal[1], Rect(100, 100, 300, 1100));
}

TEST(Clip, TranslatedMovesEverything) {
  const ClipParams p;
  Clip c(ClipWindow::atCore({0, 0}, p), Label::kNonHotspot);
  c.setRects(2, {{0, 0, 10, 10}});
  const Clip t = c.translated({100, -50});
  EXPECT_EQ(t.window().core.lo, Point(100, -50));
  EXPECT_EQ(t.rectsOn(2)[0], Rect(100, -50, 110, -40));
  EXPECT_EQ(t.label(), Label::kNonHotspot);
}

TEST(Clip, LayerAccessors) {
  Clip c;
  EXPECT_FALSE(c.hasGeometry());
  c.setRects(3, {{0, 0, 1, 1}});
  c.setRects(1, {{0, 0, 2, 2}});
  EXPECT_TRUE(c.hasGeometry());
  EXPECT_EQ(c.layerIds(), (std::vector<LayerId>{1, 3}));
  EXPECT_TRUE(c.rectsOn(7).empty());
  c.setRects(3, {});  // replace
  EXPECT_TRUE(c.rectsOn(3).empty());
}

TEST(ExtractClip, PullsGeometryFromIndex) {
  const ClipParams p;
  const GridIndex idx(
      {{100, 100, 200, 5000}, {6000, 0, 6100, 100}}, p.clipSide);
  const ClipWindow win = ClipWindow::atCore({1800, 1800}, p);
  const Clip c = extractClip({{1, &idx}}, win, Label::kUnknown);
  ASSERT_EQ(c.rectsOn(1).size(), 1u);
  EXPECT_EQ(c.rectsOn(1)[0], Rect(100, 100, 200, 4800));  // clipped
}

}  // namespace
}  // namespace hsd
