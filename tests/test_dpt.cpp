// Double-patterning extension tests (Sec. IV-B): conflict-graph coloring,
// native-conflict detection, and the three-set feature vector.
#include <gtest/gtest.h>

#include "core/dpt.hpp"

namespace hsd::core {
namespace {

TEST(Dpt, AlternatingStripesTwoColor) {
  // Four stripes at spacing 100 < limit 160: must alternate masks.
  std::vector<Rect> stripes;
  for (int i = 0; i < 4; ++i)
    stripes.push_back({i * 200, 0, i * 200 + 100, 1000});
  const DptDecomposition d = decomposeDpt(stripes, 160);
  EXPECT_TRUE(d.decomposable);
  EXPECT_EQ(d.mask1.size(), 2u);
  EXPECT_EQ(d.mask2.size(), 2u);
  // No two same-mask stripes are adjacent.
  for (const auto& mask : {d.mask1, d.mask2})
    for (std::size_t i = 0; i < mask.size(); ++i)
      for (std::size_t j = i + 1; j < mask.size(); ++j)
        EXPECT_GE(std::abs(mask[i].lo.x - mask[j].lo.x), 400);
}

TEST(Dpt, WellSpacedStaysOnOneMask) {
  const DptDecomposition d =
      decomposeDpt({{0, 0, 100, 100}, {500, 0, 600, 100}}, 160);
  EXPECT_TRUE(d.decomposable);
  EXPECT_EQ(d.mask1.size(), 2u);  // no conflict edge: both default color
  EXPECT_TRUE(d.mask2.empty());
}

TEST(Dpt, TouchingRectsShareAMask) {
  // Two abutting rects are one polygon: same mask even under conflicts.
  const DptDecomposition d = decomposeDpt(
      {{0, 0, 100, 100}, {100, 0, 200, 100}, {260, 0, 360, 100}}, 160);
  EXPECT_TRUE(d.decomposable);
  // The first two (touching) share a mask; the third conflicts with #2.
  EXPECT_EQ(d.mask1.size(), 2u);
  EXPECT_EQ(d.mask2.size(), 1u);
}

TEST(Dpt, OddCycleIsNativeConflict) {
  // Three mutually-close squares: triangle in the conflict graph.
  const DptDecomposition d = decomposeDpt(
      {{0, 0, 100, 100}, {150, 0, 250, 100}, {75, 150, 175, 250}}, 160);
  EXPECT_FALSE(d.decomposable);
}

TEST(Dpt, EmptyInput) {
  const DptDecomposition d = decomposeDpt({}, 160);
  EXPECT_TRUE(d.decomposable);
  EXPECT_TRUE(d.mask1.empty());
  EXPECT_TRUE(d.mask2.empty());
}

TEST(DptFeatures, DimensionAndFlag) {
  DptParams p;
  CorePattern pat;
  pat.w = pat.h = 1200;
  pat.rects = {{0, 0, 100, 1200}, {220, 0, 320, 1200}};
  const auto v = buildDptFeatureVector(pat, p);
  EXPECT_EQ(v.size(), dptFeatureDim(p));
  EXPECT_EQ(v.back(), 1.0);  // decomposable

  CorePattern conflict;
  conflict.w = conflict.h = 1200;
  conflict.rects = {{0, 0, 100, 100}, {150, 0, 250, 100}, {75, 150, 175, 250}};
  EXPECT_EQ(buildDptFeatureVector(conflict, p).back(), 0.0);
}

TEST(DptFeatures, MaskSetsDifferFromFullSet) {
  // For an alternating array, each mask sees relaxed pitch: its feature
  // segment must differ from the full-pattern segment.
  DptParams p;
  CorePattern pat;
  pat.w = pat.h = 1200;
  for (int i = 0; i < 4; ++i)
    pat.rects.push_back({i * 200, 0, i * 200 + 100, 1200});
  const auto v = buildDptFeatureVector(pat, p);
  const std::size_t d = p.features.dim();
  const std::vector<double> mask1(v.begin(), v.begin() + d);
  const std::vector<double> full(v.begin() + 2 * d, v.begin() + 3 * d);
  EXPECT_NE(mask1, full);
}

}  // namespace
}  // namespace hsd::core
