// Minimal strict JSON parser shared by the test binaries — enough to
// *reject* malformed output, which substring checks cannot. Used to
// validate every JSON surface the repo emits (trace files, EngineStats,
// /statsz, /tracez, bench trajectory records).
#pragma once

#include <cctype>
#include <cstring>
#include <string>

namespace hsd::tests {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control byte: invalid
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               s_[start] == '-' ? s_[start + 1] : s_[start]));
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool parsesAsJson(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace hsd::tests
