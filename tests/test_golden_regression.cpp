// Golden end-to-end regression harness. Two deterministic seeded layouts
// (src/data generator) are trained on and evaluated; the canonicalized
// report (tests/common.hpp canonicalReport: summary counters + sorted
// windows) is byte-compared against goldens committed under tests/golden/.
//
// Any change to generation, training, extraction, evaluation, or removal
// that alters reported hotspots fails here with a first-difference excerpt
// naming the exact line that moved.
//
// Regenerating goldens after an *intentional* behavior change:
//
//   HSD_UPDATE_GOLDEN=1 ctest -R Golden --output-on-failure
//
// (or run the test_golden_regression binary directly with the variable
// set). The test then rewrites tests/golden/*.txt in the source tree and
// reports the refreshed paths; commit the diff alongside the change that
// caused it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "engine/run_context.hpp"
#include "gds/ascii.hpp"
#include "net/http.hpp"
#include "serve/detect_endpoint.hpp"
#include "serve/server.hpp"

#ifndef HSD_GOLDEN_DIR
#error "test_golden_regression.cpp requires HSD_GOLDEN_DIR (see CMakeLists)"
#endif

namespace hsd::core {
namespace {

struct GoldenCase {
  const char* name;  ///< golden file stem under tests/golden/
  tests::FixtureSpec spec;
};

// Two different seeds so a regression that happens to cancel out on one
// arrangement still trips on the other.
const GoldenCase kCases[] = {
    {"eval_seed5",
     {.seed = 5, .hotspots = 20, .nonHotspots = 80, .width = 24000,
      .height = 24000, .sites = 12}},
    {"eval_seed11",
     {.seed = 11, .hotspots = 24, .nonHotspots = 90, .width = 26000,
      .height = 26000, .sites = 14}},
};

std::string goldenPath(const GoldenCase& c) {
  return std::string(HSD_GOLDEN_DIR) + "/" + c.name + ".txt";
}

std::string actualReport(const GoldenCase& c) {
  const tests::DetectorFixture& f = tests::detectorFixture(c.spec);
  engine::RunContext ctx(2);
  const EvalResult res = evaluateLayout(f.detector, f.test.layout,
                                        EvalParams{}, ctx);
  return tests::canonicalReport(res);
}

class GoldenRegression : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenRegression, ReportMatchesCommittedGolden) {
  const GoldenCase& c = GetParam();
  const std::string actual = actualReport(c);
  const std::string path = goldenPath(c);

  if (std::getenv("HSD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to golden " << path;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — generate it with HSD_UPDATE_GOLDEN=1 and commit it";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  EXPECT_EQ(golden, actual)
      << "report diverged from " << path << "\n"
      << tests::firstDiff(golden, actual) << "\n"
      << "If this change is intentional, regenerate with "
         "HSD_UPDATE_GOLDEN=1 (see header).";
}

TEST_P(GoldenRegression, TiledEvaluationMatchesCommittedGolden) {
  // The tiled path must reproduce the SAME committed goldens as the
  // monolithic path — tiling is a schedule, never a behavior change, so
  // goldens are shared and never regenerated for it (the
  // HSD_UPDATE_GOLDEN writer above stays monolithic-only).
  const GoldenCase& c = GetParam();
  if (std::getenv("HSD_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "goldens regenerate from the monolithic path only";

  const std::string path = goldenPath(c);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  const tests::DetectorFixture& f = tests::detectorFixture(c.spec);
  for (const Coord tileSize : {Coord(5000), Coord(11000)}) {
    for (const std::size_t threads : {std::size_t(1), std::size_t(8)}) {
      EvalParams ep;
      ep.tiling.tileSize = tileSize;
      engine::RunContext ctx(threads);
      const std::string actual = tests::canonicalReport(
          evaluateLayout(f.detector, f.test.layout, ep, ctx));
      EXPECT_EQ(golden, actual)
          << "tiled run (tileSize=" << tileSize << ", threads=" << threads
          << ") diverged from " << path << "\n"
          << tests::firstDiff(golden, actual);
    }
  }
}

TEST_P(GoldenRegression, WireEvaluationMatchesCommittedGolden) {
  // The over-the-wire variant: POST /detect against the same committed
  // goldens. Like the tiled variant, the wire plane is transport, never a
  // behavior change — goldens are shared with the monolithic path and the
  // HSD_UPDATE_GOLDEN writer stays monolithic-only. The canonical report
  // is reconstructed from the response: reported windows from the body
  // (windows format), funnel counters from the X-Candidate-Clips /
  // X-Flagged-Before-Removal headers.
  const GoldenCase& c = GetParam();
  if (std::getenv("HSD_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "goldens regenerate from the monolithic path only";

  const std::string path = goldenPath(c);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  const tests::DetectorFixture& f = tests::detectorFixture(c.spec);
  serve::ServerConfig scfg;
  scfg.workers = 2;
  scfg.threadsPerContext = 1;
  serve::DetectionServer server(scfg);
  serve::DetectionEndpoint endpoint(server, f.detector);
  net::HttpServerOptions ho;
  ho.maxBodyBytes = 64 << 20;
  net::HttpServer http(ho);
  endpoint.mount(http);
  http.start();

  std::ostringstream layoutBody;
  gds::writeAsciiLayout(layoutBody, f.test.layout);

  for (const char* target : {"/detect", "/detect?tile-size=8000"}) {
    const net::HttpResult res =
        net::httpPost("127.0.0.1", http.port(), target, layoutBody.str(),
                      "text/plain", {}, 120000);
    ASSERT_EQ(res.status, 200) << target << ": " << res.body;
    ASSERT_NE(res.header("x-candidate-clips"), nullptr);
    ASSERT_NE(res.header("x-flagged-before-removal"), nullptr);

    std::istringstream body(res.body);
    EvalResult wire;
    wire.reported = gds::readWindowList(body).first;
    wire.candidateClips = std::stoull(*res.header("x-candidate-clips"));
    wire.flaggedBeforeRemoval =
        std::stoull(*res.header("x-flagged-before-removal"));
    const std::string actual = tests::canonicalReport(wire);
    EXPECT_EQ(golden, actual)
        << "wire run (" << target << ") diverged from " << path << "\n"
        << tests::firstDiff(golden, actual);
  }

  http.stop();
  server.shutdown();
}

TEST_P(GoldenRegression, EvaluationIsRunToRunDeterministic) {
  // The harness is only meaningful if two in-process runs agree with each
  // other (threads=1 vs threads=8 included — the engine's determinism
  // guarantee).
  const GoldenCase& c = GetParam();
  const tests::DetectorFixture& f = tests::detectorFixture(c.spec);
  engine::RunContext serial(1);
  engine::RunContext wide(8);
  const std::string a = tests::canonicalReport(
      evaluateLayout(f.detector, f.test.layout, EvalParams{}, serial));
  const std::string b = tests::canonicalReport(
      evaluateLayout(f.detector, f.test.layout, EvalParams{}, wide));
  EXPECT_EQ(a, b) << tests::firstDiff(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenRegression, ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(GoldenRegression, InjectedChangeFailsLoudlyWithExcerpt) {
  // Self-test of the failure path: a one-byte perturbation of a canonical
  // report must produce a non-empty, line-pinpointing diff excerpt.
  const std::string golden = actualReport(kCases[0]);
  ASSERT_FALSE(golden.empty());
  std::string mutated = golden;
  mutated[mutated.size() / 2] ^= 1;
  const std::string diff = tests::firstDiff(golden, mutated);
  EXPECT_NE(diff.find("first difference at line"), std::string::npos) << diff;
  EXPECT_NE(diff.find("golden:"), std::string::npos);
  EXPECT_NE(diff.find("actual:"), std::string::npos);
  // And identical inputs report no difference.
  EXPECT_TRUE(tests::firstDiff(golden, golden).empty());
}

}  // namespace
}  // namespace hsd::core
