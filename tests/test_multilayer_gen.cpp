// Multilayer training-set generator tests + window-list format tests +
// Platt-calibrated detector probability tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/multilayer.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"

namespace hsd {
namespace {

TEST(MultiLayerGen, MeetsTargetsWithTwoLayers) {
  data::GeneratorParams gp;
  gp.seed = 31;
  data::MultiLayerTargets t;
  t.hotspots = 20;
  t.nonHotspots = 60;
  const gds::ClipSet set = data::generateMultiLayerTrainingSet(gp, t);
  std::size_t hs = 0;
  for (const Clip& c : set.clips) {
    hs += c.label() == Label::kHotspot;
    EXPECT_FALSE(c.rectsOn(t.layer1).empty());
    EXPECT_FALSE(c.rectsOn(t.layer2).empty());
  }
  EXPECT_EQ(hs, 20u);
  EXPECT_EQ(set.clips.size(), 80u);
}

TEST(MultiLayerGen, DetectorLearnsTheOverlapSignal) {
  data::GeneratorParams gp;
  gp.seed = 32;
  data::MultiLayerTargets t;
  t.hotspots = 30;
  t.nonHotspots = 120;
  const gds::ClipSet train = data::generateMultiLayerTrainingSet(gp, t);
  gp.seed = 33;
  const gds::ClipSet test = data::generateMultiLayerTrainingSet(gp, t);

  core::MultiLayerParams mp;
  mp.layers = {t.layer1, t.layer2};
  const auto det = core::MultiLayerDetector::train(train.clips, mp);
  std::size_t tp = 0, hsAll = 0, fp = 0, nhsAll = 0;
  for (const Clip& c : test.clips) {
    const bool hot = c.label() == Label::kHotspot;
    const bool pred = det.evaluateClip(c);
    if (hot) {
      ++hsAll;
      tp += pred;
    } else {
      ++nhsAll;
      fp += pred;
    }
  }
  EXPECT_GE(double(tp) / double(hsAll), 0.85);
  EXPECT_LE(double(fp) / double(nhsAll), 0.5);
}

TEST(MultiLayerGen, RoundTripsThroughClipSetFormat) {
  data::GeneratorParams gp;
  gp.seed = 35;
  data::MultiLayerTargets t;
  t.hotspots = 4;
  t.nonHotspots = 8;
  const gds::ClipSet set = data::generateMultiLayerTrainingSet(gp, t);
  std::stringstream ss;
  gds::writeClipSet(ss, set);
  const gds::ClipSet back = gds::readClipSet(ss);
  ASSERT_EQ(back.clips.size(), set.clips.size());
  for (std::size_t i = 0; i < set.clips.size(); ++i) {
    EXPECT_EQ(back.clips[i].rectsOn(1), set.clips[i].rectsOn(1));
    EXPECT_EQ(back.clips[i].rectsOn(2), set.clips[i].rectsOn(2));
  }
}

TEST(WindowList, RoundTrip) {
  const ClipParams p;
  const std::vector<ClipWindow> wins{ClipWindow::atCore({0, 0}, p),
                                     ClipWindow::atCore({-500, 9000}, p)};
  std::stringstream ss;
  gds::writeWindowList(ss, wins, p);
  const auto [back, params] = gds::readWindowList(ss);
  EXPECT_EQ(params, p);
  EXPECT_EQ(back, wins);
}

TEST(WindowList, MissingHeaderThrows) {
  std::stringstream ss("at 0 0\n");
  EXPECT_THROW(gds::readWindowList(ss), gds::GdsError);
}

TEST(WindowList, BadLineThrows) {
  std::stringstream ss("windows 1200 4800\nat nope\n");
  EXPECT_THROW(gds::readWindowList(ss), gds::GdsError);
}

// ---- Platt-calibrated detector probabilities ----

Clip lineClip(Coord w, Label label, Coord jx = 0) {
  const ClipParams p;
  Clip c(ClipWindow::atCore({1800, 1800}, p), label);
  const Coord x = 2400 - w / 2 + jx;
  c.setRects(1, {{x, 0, x + w, 4800}});
  return c;
}

TEST(DetectorPlatt, ProbabilityTracksRisk) {
  std::vector<Clip> training;
  for (int i = 0; i < 10; ++i)
    training.push_back(lineClip(100, Label::kHotspot, i * 30 - 150));
  for (int i = 0; i < 40; ++i)
    training.push_back(lineClip(220, Label::kNonHotspot, i * 8 - 160));
  const core::Detector det = core::trainDetector(training, {});
  ASSERT_TRUE(det.hasPlatt);
  const double pRisky = det.hotspotProbability(
      core::CorePattern::fromCore(lineClip(100, Label::kUnknown, 40), 1));
  const double pSafe = det.hotspotProbability(
      core::CorePattern::fromCore(lineClip(220, Label::kUnknown, -40), 1));
  EXPECT_GT(pRisky, 0.5);
  EXPECT_LT(pSafe, 0.5);
  EXPECT_GT(pRisky, pSafe + 0.3);
}

TEST(DetectorPlatt, SurvivesSaveLoad) {
  std::vector<Clip> training;
  for (int i = 0; i < 8; ++i)
    training.push_back(lineClip(100, Label::kHotspot, i * 40 - 160));
  for (int i = 0; i < 30; ++i)
    training.push_back(lineClip(220, Label::kNonHotspot, i * 10 - 150));
  const core::Detector det = core::trainDetector(training, {});
  std::stringstream ss;
  det.save(ss);
  const core::Detector back = core::Detector::load(ss);
  EXPECT_EQ(back.hasPlatt, det.hasPlatt);
  const auto probe =
      core::CorePattern::fromCore(lineClip(130, Label::kUnknown, 25), 1);
  EXPECT_NEAR(back.hotspotProbability(probe), det.hotspotProbability(probe),
              1e-9);
}

}  // namespace
}  // namespace hsd
