// Hot-path mechanical-sympathy tests (ctest label: hotpath). Pins the
// PR-8 contracts:
//  - SIMD byte-identity: the dispatched density rasterizer and SVM kernel
//    primitives produce bit-for-bit the scalar oracles' outputs on
//    randomized inputs (every window shape, ragged pack blocks, all eight
//    orientations of the rect sets) — vectorization must never
//    reassociate a reduction;
//  - SvmModel::decisionFrom equals the naive per-SV rbfKernel loop it
//    replaced, exactly, and rbfKernel/Scaler reject dimension mismatches
//    with the same error contract;
//  - the per-clip Arena: alignment, scope rewind, reset-keeps-capacity,
//    and zero steady-state heap allocations through the arena-backed
//    scale→decide and rasterize paths (global operator-new counter, the
//    test_obs.cpp harness);
//  - StageCache sharding: serving-scale capacity shards (approximate
//    global capacity still exact), small capacity stays one shard so LRU
//    order is globally exact;
//  - cache-line layout: CachePadded and the aligned obs counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <random>
#include <vector>

#include "engine/arena.hpp"
#include "engine/cache.hpp"
#include "geom/density_grid.hpp"
#include "geom/orientation.hpp"
#include "geom/simd.hpp"
#include "obs/metrics.hpp"
#include "par/cacheline.hpp"
#include "svm/kernel_ops.hpp"
#include "svm/scaler.hpp"
#include "svm/svm.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it.
// Used to pin the zero-steady-state-allocation guarantee of the arena
// paths.
namespace {
std::atomic<std::uint64_t> g_allocCount{0};
}  // namespace

// GCC pairs these replacement operators with the default ones and flags
// the malloc/free backing as mismatched; the pairing is consistent here
// (both sides are replaced), so silence that one diagnostic.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace hsd {
namespace {

// ---------------------------------------------------------------------------
// Density rasterizer: dispatched == reference, bit for bit.

std::vector<Rect> randomRects(std::mt19937& rng, const Rect& window,
                              std::size_t n) {
  std::uniform_int_distribution<Coord> dx(window.lo.x - 50, window.hi.x + 50);
  std::uniform_int_distribution<Coord> dy(window.lo.y - 50, window.hi.y + 50);
  std::vector<Rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.emplace_back(dx(rng), dy(rng), dx(rng), dy(rng));  // some degenerate,
  return out;  // some outside the window — the rasterizer must skip both
}

std::vector<Rect> orientRects(const std::vector<Rect>& rects, Orient o,
                              Coord w, Coord h) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    const Point a = apply(o, r.lo, w, h);
    const Point b = apply(o, r.hi, w, h);
    out.emplace_back(a.x, a.y, b.x, b.y);  // ctor normalizes corners
  }
  return out;
}

TEST(DensityRaster, DispatchedMatchesReferenceRandomized) {
  std::mt19937 rng(12345u);
  const std::size_t grids[] = {1, 3, 4, 5, 7, 8, 13, 16};
  for (int trial = 0; trial < 40; ++trial) {
    const Coord w = 40 + Coord(rng() % 400);
    const Coord h = 40 + Coord(rng() % 400);
    const Rect window(0, 0, w, h);
    const std::vector<Rect> rects =
        randomRects(rng, window, 1 + rng() % 30);
    const std::size_t nx = grids[rng() % 8];
    const std::size_t ny = grids[rng() % 8];
    std::vector<double> got(nx * ny), want(nx * ny);
    rasterizeDensity(rects, window, nx, ny, got.data());
    rasterizeDensityReference(rects, window, nx, ny, want.data());
    ASSERT_EQ(std::memcmp(got.data(), want.data(), nx * ny * sizeof(double)),
              0)
        << "trial " << trial << " nx=" << nx << " ny=" << ny
        << " simd=" << simd::toString(simd::activeLevel());
  }
}

TEST(DensityRaster, AllOrientationsMatchReference) {
  std::mt19937 rng(777u);
  const Coord w = 200, h = 120;
  const Rect window(0, 0, w, h);
  const std::vector<Rect> base = randomRects(rng, window, 25);
  for (const Orient o : kAllOrients) {
    const Coord ow = swapsAxes(o) ? h : w;
    const Coord oh = swapsAxes(o) ? w : h;
    const Rect owin(0, 0, ow, oh);
    const std::vector<Rect> rects = orientRects(base, o, w, h);
    const std::size_t nx = 11, ny = 6;  // odd/non-multiple-of-4 on purpose
    std::vector<double> got(nx * ny), want(nx * ny);
    rasterizeDensity(rects, owin, nx, ny, got.data());
    rasterizeDensityReference(rects, owin, nx, ny, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), nx * ny * sizeof(double)),
              0)
        << "orient " << toString(o);
  }
}

TEST(DensityRaster, GridCtorMatchesFreeFunction) {
  std::mt19937 rng(31u);
  const Rect window(-30, -20, 170, 140);
  const std::vector<Rect> rects = randomRects(rng, window, 20);
  const DensityGrid g(rects, window, 9, 9);
  std::vector<double> want(81);
  rasterizeDensityReference(rects, window, 9, 9, want.data());
  EXPECT_EQ(std::memcmp(g.values().data(), want.data(), 81 * sizeof(double)),
            0);
}

TEST(DensityRaster, DegenerateDims) {
  const std::vector<Rect> rects = {{0, 0, 10, 10}};
  std::vector<double> buf(4, 42.0);
  rasterizeDensity(rects, Rect(0, 0, 0, 0), 2, 2, buf.data());  // empty window
  for (const double v : buf) EXPECT_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// Packed kernel primitives: dispatched == scalar oracle == naive loop.

TEST(KernelOps, PackedMatchesScalarAndNaive) {
  std::mt19937 rng(99u);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  for (const std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u}) {
    for (const std::size_t dim : {1u, 2u, 5u, 16u, 17u}) {
      std::vector<hsd::svm::FeatureVector> vs(count,
                                              hsd::svm::FeatureVector(dim));
      hsd::svm::FeatureVector x(dim);
      for (auto& v : vs)
        for (double& e : v) e = u(rng);
      for (double& e : x) e = u(rng);
      const hsd::svm::ops::PackedVectors packed(vs);
      EXPECT_EQ(packed.count(), count);
      EXPECT_EQ(packed.dim(), dim);

      std::vector<double> dotD(count), dotS(count), d2D(count), d2S(count);
      hsd::svm::ops::dotProducts(packed, x.data(), dotD.data());
      hsd::svm::ops::dotProductsScalar(packed, x.data(), dotS.data());
      hsd::svm::ops::squaredDistances(packed, x.data(), d2D.data());
      hsd::svm::ops::squaredDistancesScalar(packed, x.data(), d2S.data());
      for (std::size_t j = 0; j < count; ++j) {
        // The naive sequential reductions every pre-PR loop performed.
        double dot = 0, d2 = 0;
        for (std::size_t k = 0; k < dim; ++k) {
          dot += vs[j][k] * x[k];
          const double d = vs[j][k] - x[k];
          d2 += d * d;
        }
        EXPECT_EQ(dotD[j], dotS[j]) << "dispatched vs oracle, j=" << j;
        EXPECT_EQ(d2D[j], d2S[j]) << "dispatched vs oracle, j=" << j;
        EXPECT_EQ(dotS[j], dot) << "oracle vs naive, j=" << j;
        EXPECT_EQ(d2S[j], d2) << "oracle vs naive, j=" << j;
      }
    }
  }
}

TEST(KernelOps, RaggedBlockLanesZeroFilled) {
  const std::vector<hsd::svm::FeatureVector> vs = {{1.0, 2.0}, {3.0, 4.0},
                                                   {5.0, 6.0}};
  const hsd::svm::ops::PackedVectors packed(vs);
  ASSERT_EQ(packed.blockCount(), 1u);
  const double* blk = packed.block(0);
  EXPECT_EQ(blk[3], 0.0);  // lane 3 of component 0
  EXPECT_EQ(blk[7], 0.0);  // lane 3 of component 1
}

TEST(KernelOps, InconsistentDimensionThrows) {
  const std::vector<hsd::svm::FeatureVector> vs = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW(hsd::svm::ops::PackedVectors{vs}, std::invalid_argument);
}

TEST(SvmDecision, DecisionFromMatchesNaiveRbfLoopExactly) {
  std::mt19937 rng(4242u);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  const std::size_t nsv = 19, dim = 7;
  std::vector<hsd::svm::FeatureVector> sv(nsv, hsd::svm::FeatureVector(dim));
  std::vector<double> coef(nsv);
  for (auto& v : sv)
    for (double& e : v) e = u(rng);
  for (double& c : coef) c = u(rng);
  const double rho = 0.37, gamma = 0.8;
  const hsd::svm::SvmModel model(sv, coef, rho, gamma);

  for (int trial = 0; trial < 25; ++trial) {
    hsd::svm::FeatureVector x(dim);
    for (double& e : x) e = u(rng);
    // The pre-PR decision(): a naive per-SV rbfKernel sum.
    double s = 0;
    for (std::size_t i = 0; i < nsv; ++i)
      s += coef[i] * hsd::svm::rbfKernel(sv[i], x, gamma);
    EXPECT_EQ(model.decision(x), s - rho);
    EXPECT_EQ(model.decisionFrom({x.data(), x.size()}), s - rho);
  }
}

TEST(SvmDecision, DimensionMismatchErrorContract) {
  EXPECT_THROW(hsd::svm::rbfKernel({1.0, 2.0}, {1.0}, 0.5),
               std::invalid_argument);
  const hsd::svm::SvmModel model({{1.0, 2.0}}, {0.5}, 0.0, 0.5);
  EXPECT_THROW(model.decision({1.0}), std::invalid_argument);
  hsd::svm::Scaler sc;
  sc.fit({{0.0, 0.0}, {1.0, 2.0}});
  EXPECT_THROW(sc.transform({1.0}), std::invalid_argument);
  double out[2];
  EXPECT_THROW(sc.transformInto({1.0}, out), std::invalid_argument);
  sc.transformInto({0.5, 1.0}, out);
  EXPECT_EQ(out[0], 0.5);
  EXPECT_EQ(out[1], 0.5);
}

// ---------------------------------------------------------------------------
// Arena.

TEST(Arena, AlignmentAndGrowth) {
  engine::Arena a;
  EXPECT_EQ(a.capacity(), 0u);
  void* p1 = a.allocate(3, 1);
  void* p2 = a.allocate(8, 8);
  void* p3 = a.allocate(1, 64);
  EXPECT_EQ(std::uintptr_t(p2) % 8, 0u);
  EXPECT_EQ(std::uintptr_t(p3) % 64, 0u);
  EXPECT_NE(p1, p2);
  EXPECT_GE(a.capacity(), engine::Arena::kDefaultBlockBytes);
  EXPECT_EQ(a.blockCount(), 1u);
  // An oversized request grows the chain instead of failing.
  const std::span<double> big =
      a.allocSpan<double>(engine::Arena::kDefaultBlockBytes);
  EXPECT_EQ(big.size(), engine::Arena::kDefaultBlockBytes);
  EXPECT_GE(a.blockCount(), 2u);
}

TEST(Arena, ScopeRewindReusesStorage) {
  engine::Arena a;
  void* first = nullptr;
  {
    engine::ArenaScope scope(a);
    first = scope.arena().allocate(128, 8);
  }
  {
    engine::ArenaScope scope(a);
    // Same storage comes back after the rewind.
    EXPECT_EQ(scope.arena().allocate(128, 8), first);
  }
  EXPECT_EQ(a.used(), 0u);
  EXPECT_GE(a.highWater(), 128u);
}

TEST(Arena, NestedScopes) {
  engine::Arena a;
  engine::ArenaScope outer(a);
  a.allocSpan<double>(10);
  const std::size_t usedOuter = a.used();
  {
    engine::ArenaScope inner(a);
    a.allocSpan<double>(100);
    EXPECT_GT(a.used(), usedOuter);
  }
  EXPECT_EQ(a.used(), usedOuter);  // inner rewound, outer intact
}

TEST(Arena, ResetKeepsCapacity) {
  engine::Arena a;
  a.allocSpan<double>(5000);  // forces growth past the first block
  const std::size_t cap = a.capacity();
  const std::size_t blocks = a.blockCount();
  a.reset();
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.capacity(), cap);
  EXPECT_EQ(a.blockCount(), blocks);
  a.allocSpan<double>(5000);
  EXPECT_EQ(a.capacity(), cap);  // reused, not re-grown
}

TEST(Arena, SteadyStateScaleAndDecideAllocatesNothing) {
  std::mt19937 rng(5u);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t nsv = 10, dim = 12;
  std::vector<hsd::svm::FeatureVector> sv(nsv, hsd::svm::FeatureVector(dim));
  std::vector<double> coef(nsv, 0.5);
  for (auto& v : sv)
    for (double& e : v) e = u(rng);
  const hsd::svm::SvmModel model(sv, coef, 0.1, 0.5);
  hsd::svm::Scaler sc;
  sc.fit(sv);
  const hsd::svm::FeatureVector x(dim, 0.25);

  engine::Arena& arena = engine::threadScratch();
  const auto evalOnce = [&] {
    engine::ArenaScope scope(arena);
    const std::span<double> buf = scope.arena().allocSpan<double>(dim);
    sc.transformInto(x, buf.data());
    return model.decisionFrom(buf);
  };
  const double want = evalOnce();  // warm-up: arena block, d2 scratch
  const std::uint64_t before = g_allocCount.load();
  double got = 0;
  for (int i = 0; i < 1000; ++i) got = evalOnce();
  EXPECT_EQ(g_allocCount.load(), before) << "hot path touched the heap";
  EXPECT_EQ(got, want);
}

TEST(Arena, SteadyStateRasterizeAllocatesNothing) {
  std::mt19937 rng(6u);
  const Rect window(0, 0, 300, 300);
  const std::vector<Rect> rects = randomRects(rng, window, 40);
  engine::Arena& arena = engine::threadScratch();
  const auto rasterOnce = [&] {
    engine::ArenaScope scope(arena);
    const std::span<double> g = scope.arena().allocSpan<double>(16 * 16);
    rasterizeDensity(rects, window, 16, 16, g.data());
    return g[0];
  };
  rasterOnce();  // warm-up: arena block + rasterizer's x-overlap scratch
  const std::uint64_t before = g_allocCount.load();
  for (int i = 0; i < 200; ++i) rasterOnce();
  EXPECT_EQ(g_allocCount.load(), before) << "rasterize path touched the heap";
}

// ---------------------------------------------------------------------------
// StageCache sharding.

TEST(StageCacheShards, SmallCapacityStaysSingleShard) {
  engine::StageCache c(16);
  EXPECT_EQ(c.shardCount(), 1u);
}

TEST(StageCacheShards, LargeCapacityShardsAndKeepsTotals) {
  engine::StageCache c(engine::StageCache::kShardThreshold);
  EXPECT_EQ(c.shardCount(), engine::StageCache::kMaxShards);
  // Insert more keys than capacity: residency must never exceed the
  // global budget, and the counters must aggregate across shards.
  const std::size_t n = engine::StageCache::kShardThreshold * 2;
  for (std::size_t i = 0; i < n; ++i)
    c.insert(engine::CacheKey{i, i * 31, i * 131}, int(i));
  EXPECT_LE(c.size(), c.capacity());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (c.find<int>(engine::CacheKey{i, i * 31, i * 131})) ++hits;
  const engine::StageCache::Counters tallies = c.counters();
  EXPECT_EQ(tallies.hits, hits);
  EXPECT_EQ(tallies.misses, n - hits);
  EXPECT_GT(tallies.evictions, 0u);
  EXPECT_EQ(tallies.entries, c.size());
  c.clear();
  EXPECT_EQ(c.size(), 0u);
}

// ---------------------------------------------------------------------------
// Cache-line layout.

TEST(CacheLine, PaddedTypesAreLineAligned) {
  EXPECT_EQ(alignof(par::CachePadded<std::atomic<void*>>),
            par::kCacheLineSize);
  EXPECT_EQ(sizeof(par::CachePadded<std::atomic<void*>>),
            par::kCacheLineSize);
  EXPECT_EQ(alignof(obs::Counter), par::kCacheLineSize);
  EXPECT_EQ(alignof(obs::Gauge), par::kCacheLineSize);
  // Individually heap-allocated counters land on distinct lines (aligned
  // operator new honors the class alignment).
  const auto a = std::make_unique<obs::Counter>();
  const auto b = std::make_unique<obs::Counter>();
  EXPECT_EQ(std::uintptr_t(a.get()) % par::kCacheLineSize, 0u);
  EXPECT_EQ(std::uintptr_t(b.get()) % par::kCacheLineSize, 0u);
}

}  // namespace
}  // namespace hsd
