// Engine-layer tests: RunContext ownership/cancellation, stage
// composition order, batch boundaries, exception propagation,
// cancellation mid-stream, and thread-count independence of the staged
// evaluation pipeline (the determinism regression guard for the
// extract/eval/removal refactor).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "data/generator.hpp"
#include "engine/pipeline.hpp"
#include "engine/run_context.hpp"
#include "engine/stats.hpp"

namespace hsd::engine {
namespace {

TEST(RunContext, ResolvesThreadCountAndBatchSize) {
  RunContext ctx(3, 7);
  EXPECT_EQ(ctx.threadCount(), 3u);
  EXPECT_EQ(ctx.batchSize(), 7u);
  ctx.setBatchSize(0);
  EXPECT_EQ(ctx.batchSize(), 1u);

  RunContext def;
  EXPECT_GE(def.threadCount(), 1u);
}

TEST(RunContext, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t threads : {std::size_t(1), std::size_t(4)}) {
    RunContext ctx(threads);
    std::vector<std::atomic<int>> hits(1000);
    ctx.parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(RunContext, ParallelForReusesOnePool) {
  RunContext ctx(4);
  EXPECT_EQ(ctx.pool().threadCount(), 4u);
  ThreadPool* first = &ctx.pool();
  ctx.parallelFor(64, [](std::size_t) {});
  EXPECT_EQ(&ctx.pool(), first);
}

TEST(RunContext, NestedParallelForRunsInlineWithoutDeadlock) {
  RunContext ctx(2);
  std::atomic<int> count{0};
  ctx.parallelFor(4, [&](std::size_t) {
    ctx.parallelFor(8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(RunContext, CancellationStopsParallelFor) {
  RunContext ctx(2);
  ctx.requestCancel();
  EXPECT_TRUE(ctx.cancelRequested());
  EXPECT_THROW(ctx.parallelFor(10, [](std::size_t) {}), CancelledError);
}

TEST(RunContext, ResetCancelMakesACancelledContextReusable) {
  // Regression: cancellation used to be one-shot — a pooled context that
  // served a cancelled run rejected every subsequent run.
  RunContext ctx(2);
  ctx.requestCancel();
  EXPECT_THROW(ctx.parallelFor(10, [](std::size_t) {}), CancelledError);
  ctx.resetCancel();
  EXPECT_FALSE(ctx.cancelRequested());
  std::atomic<int> count{0};
  ctx.parallelFor(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(RunContext, CancelMidParallelForPropagatesCleanlyAtEightThreads) {
  // A CancelledError thrown inside pool workers must surface on the
  // submitting thread (not terminate the process or deadlock the pool)
  // and must stop the remaining range promptly.
  RunContext ctx(8);
  constexpr std::size_t kN = 1 << 20;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(ctx.parallelFor(kN,
                               [&](std::size_t i) {
                                 executed.fetch_add(
                                     1, std::memory_order_relaxed);
                                 if (i == 1000) ctx.requestCancel();
                               }),
               CancelledError);
  EXPECT_GT(executed.load(), 0u);
  EXPECT_LT(executed.load(), kN);  // workers stopped claiming chunks
  // The pool survives and the context runs again after a reset.
  ctx.resetCancel();
  std::atomic<std::size_t> after{0};
  ctx.parallelFor(1000, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 1000u);
}

TEST(RunContext, ExpiredDeadlineBehavesAsCancellation) {
  RunContext ctx(2);
  EXPECT_FALSE(ctx.hasDeadline());
  ctx.setDeadline(std::chrono::steady_clock::now() +
                  std::chrono::hours(1));
  EXPECT_TRUE(ctx.hasDeadline());
  EXPECT_FALSE(ctx.deadlineExpired());
  EXPECT_FALSE(ctx.cancelRequested());
  std::atomic<int> count{0};
  ctx.parallelFor(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);

  ctx.setDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.deadlineExpired());
  EXPECT_TRUE(ctx.cancelRequested());
  EXPECT_THROW(ctx.parallelFor(8, [](std::size_t) {}), CancelledError);
  // resetCancel clears the deadline along with the flag.
  ctx.resetCancel();
  EXPECT_FALSE(ctx.hasDeadline());
  EXPECT_FALSE(ctx.cancelRequested());
}

TEST(EngineStats, RecordsAndDumpsJson) {
  EngineStats stats;
  stats.record("alpha", 10, 0.5);
  stats.record("alpha", 5, 0.25);
  stats.record("beta", 1, 0.125);
  const StageStats a = stats.stage("alpha");
  EXPECT_EQ(a.calls, 2u);
  EXPECT_EQ(a.items, 15u);
  EXPECT_DOUBLE_EQ(a.seconds, 0.75);
  EXPECT_EQ(stats.stage("missing"), StageStats{});

  const std::string json = stats.toJson();
  EXPECT_NE(json.find("\"alpha\": {\"calls\": 2, \"items\": 15"),
            std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  stats.clear();
  EXPECT_TRUE(stats.snapshot().empty());
}

TEST(EngineStats, JsonAndSnapshotsFollowRegistrationOrder) {
  // Keys come out in first-record order, not name order, so ENGINE_STATS
  // JSON lines stay byte-stable run over run.
  EngineStats stats;
  stats.record("zeta", 1, 0.0);
  stats.record("alpha", 1, 0.0);
  stats.record("zeta", 1, 0.0);
  stats.recordCache("mu", 2, 1, 0);
  stats.recordCache("kappa", 1, 1, 0);

  const auto snap = stats.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "zeta");
  EXPECT_EQ(snap[1].first, "alpha");
  const auto cacheSnap = stats.cacheSnapshot();
  ASSERT_EQ(cacheSnap.size(), 2u);
  EXPECT_EQ(cacheSnap[0].first, "mu");
  EXPECT_EQ(cacheSnap[1].first, "kappa");
  EXPECT_EQ(stats.cache("mu").hits, 2u);

  const std::string json = stats.toJson();
  EXPECT_LT(json.find("\"zeta\""), json.find("\"alpha\""));
  EXPECT_LT(json.find("\"alpha\""), json.find("\"cache/mu\""));
  EXPECT_LT(json.find("\"cache/mu\""), json.find("\"cache/kappa\""));
  EXPECT_NE(json.find("\"cache/mu\": {\"hits\": 2, \"misses\": 1"),
            std::string::npos);
}

TEST(Pipeline, ComposesStagesInOrderPerBatch) {
  RunContext ctx(1, 4);  // batch size 4 over 10 items -> batches 4,4,2
  std::vector<std::string> log;
  Stage<int, int> first{"first",
                        [&log](RunContext&, std::vector<int>&& b) {
                          log.push_back("first:" + std::to_string(b.size()));
                          for (int& v : b) v += 1;
                          return std::move(b);
                        }};
  Stage<int, int> second{"second",
                         [&log](RunContext&, std::vector<int>&& b) {
                           log.push_back("second:" + std::to_string(b.size()));
                           for (int& v : b) v *= 10;
                           return std::move(b);
                         }};
  std::vector<int> in(10);
  for (int i = 0; i < 10; ++i) in[std::size_t(i)] = i;
  const std::vector<int> out = runPipeline(ctx, in, first, second);

  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[std::size_t(i)], (i + 1) * 10);
  // Each batch flows through the full stage chain before the next starts
  // (bounded batching), and stages run in composition order within it.
  const std::vector<std::string> want{"first:4", "second:4", "first:4",
                                      "second:4", "first:2", "second:2"};
  EXPECT_EQ(log, want);
  EXPECT_EQ(ctx.stats().stage("first").calls, 3u);
  EXPECT_EQ(ctx.stats().stage("first").items, 10u);
  EXPECT_EQ(ctx.stats().stage("second").calls, 3u);
}

TEST(Pipeline, MapAndFilterStagesKeepOrder) {
  RunContext ctx(4, 3);
  auto dbl = mapStage<int>("dbl", [](const int& v) { return v * 2; });
  auto odd = filterMapStage<int>("odd", [](const int& v) -> std::optional<int> {
    if (v % 4 == 0) return std::nullopt;
    return v;
  });
  std::vector<int> in(100);
  for (int i = 0; i < 100; ++i) in[std::size_t(i)] = i;
  const std::vector<int> out = runPipeline(ctx, in, dbl, odd);
  // Doubled values not divisible by 4, in input order: 2, 6, 10, ...
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], int(4 * i + 2));
}

TEST(Pipeline, ExceptionInStagePropagatesAndStopsStream) {
  RunContext ctx(2, 8);
  std::atomic<int> seen{0};
  auto boom = mapStage<int>("boom", [&seen](const int& v) {
    ++seen;
    if (v == 11) throw std::invalid_argument("poisoned item");
    return v;
  });
  std::vector<int> in(64);
  for (int i = 0; i < 64; ++i) in[std::size_t(i)] = i;
  EXPECT_THROW(runPipeline(ctx, in, boom), std::invalid_argument);
  // The poisoned batch is the second one; later batches never start.
  EXPECT_LT(seen.load(), 64);
}

TEST(Pipeline, CancellationMidStreamStopsBeforeNextBatch) {
  RunContext ctx(1, 10);
  std::size_t batches = 0;
  Stage<int, int> cancelAfterFirst{
      "cancel", [&batches](RunContext& c, std::vector<int>&& b) {
        if (++batches == 1) c.requestCancel();
        return std::move(b);
      }};
  std::vector<int> in(100, 1);
  EXPECT_THROW(runPipeline(ctx, in, cancelAfterFirst), CancelledError);
  // Cancel was requested inside batch 1; the check before batch 2 fires.
  EXPECT_EQ(batches, 1u);
}

TEST(Pipeline, EmptyInputRunsNoStages) {
  RunContext ctx(2);
  auto id = mapStage<int>("id", [](const int& v) { return v; });
  EXPECT_TRUE(runPipeline(ctx, std::vector<int>{}, id).empty());
  EXPECT_EQ(ctx.stats().stage("id").calls, 0u);
}

// ---------------------------------------------------------------------------
// Determinism regression: the staged evaluator must report byte-identical
// sorted ClipWindow lists for threads=1 vs threads=8 on a seeded layout
// (guards the refactor against reduction-order bugs).

using EvalFixture = tests::DetectorFixture;

const EvalFixture& evalFixture() { return tests::detectorFixture(); }

TEST(EngineDeterminism, EvaluateLayoutSingleVsEightThreadsByteIdentical) {
  const EvalFixture& f = evalFixture();
  core::EvalParams p;
  RunContext serial(1);
  RunContext wide(8);
  core::EvalResult a = core::evaluateLayout(f.detector, f.test.layout, p,
                                            serial);
  core::EvalResult b = core::evaluateLayout(f.detector, f.test.layout, p,
                                            wide);
  ASSERT_FALSE(a.reported.empty());
  std::sort(a.reported.begin(), a.reported.end());
  std::sort(b.reported.begin(), b.reported.end());
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (std::size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.reported[i], &b.reported[i], sizeof(ClipWindow)),
              0)
        << "report " << i << " differs between 1 and 8 threads";
  }
  EXPECT_EQ(a.candidateClips, b.candidateClips);
  EXPECT_EQ(a.flaggedBeforeRemoval, b.flaggedBeforeRemoval);
}

TEST(EngineDeterminism, BatchSizeDoesNotChangeReports) {
  const EvalFixture& f = evalFixture();
  core::EvalParams p;
  RunContext small(4, 16);
  RunContext large(4, 4096);
  const core::EvalResult a =
      core::evaluateLayout(f.detector, f.test.layout, p, small);
  const core::EvalResult b =
      core::evaluateLayout(f.detector, f.test.layout, p, large);
  EXPECT_EQ(a.reported, b.reported);
  EXPECT_EQ(a.candidateClips, b.candidateClips);
}

TEST(EngineDeterminism, StagedPipelineEmitsStats) {
  const EvalFixture& f = evalFixture();
  RunContext ctx(4);
  const core::EvalResult res =
      core::evaluateLayout(f.detector, f.test.layout, core::EvalParams{}, ctx);
  ASSERT_FALSE(res.reported.empty());
  for (const char* stage :
       {"extract/screen", "extract/candidates", "eval/clip", "eval/features",
        "eval/svm", "eval/feedback", "eval/removal"}) {
    EXPECT_GT(ctx.stats().stage(stage).calls, 0u) << stage;
  }
  EXPECT_EQ(ctx.stats().stage("extract/candidates").items,
            res.candidateClips);
  EXPECT_EQ(ctx.stats().stage("eval/svm").items,
            ctx.stats().stage("eval/clip").items);
}

TEST(EngineDeterminism, CancelledEvaluationThrows) {
  const EvalFixture& f = evalFixture();
  RunContext ctx(2);
  ctx.requestCancel();
  EXPECT_THROW(core::evaluateLayout(f.detector, f.test.layout,
                                    core::EvalParams{}, ctx),
               CancelledError);
}

TEST(EngineDeterminism, ContextRunsCleanlyAfterCancelledEvaluation) {
  // The pool-checkin contract end to end: cancel an evaluation, reset the
  // context, and the same context must produce the same report as a fresh
  // one (no cancellation residue, no stats bleed changing behavior).
  const EvalFixture& f = evalFixture();
  RunContext fresh(2);
  const core::EvalResult want =
      core::evaluateLayout(f.detector, f.test.layout, core::EvalParams{},
                           fresh);

  RunContext reused(2);
  reused.requestCancel();
  EXPECT_THROW(core::evaluateLayout(f.detector, f.test.layout,
                                    core::EvalParams{}, reused),
               CancelledError);
  reused.resetCancel();
  reused.stats().clear();
  const core::EvalResult got = core::evaluateLayout(
      f.detector, f.test.layout, core::EvalParams{}, reused);
  EXPECT_EQ(got.reported, want.reported);
  EXPECT_EQ(got.candidateClips, want.candidateClips);
  EXPECT_EQ(got.flaggedBeforeRemoval, want.flaggedBeforeRemoval);
}

TEST(EngineDeterminism, DeadlineExpiryCancelsEvaluationMidRun) {
  const EvalFixture& f = evalFixture();
  RunContext ctx(4);
  ctx.setDeadline(std::chrono::steady_clock::now() +
                  std::chrono::microseconds(200));
  EXPECT_THROW(core::evaluateLayout(f.detector, f.test.layout,
                                    core::EvalParams{}, ctx),
               CancelledError);
  EXPECT_TRUE(ctx.deadlineExpired());
}

TEST(EngineDeterminism, TrainerStatsAndSharedContext) {
  const EvalFixture& f = evalFixture();
  RunContext ctx(2);
  const core::Detector det =
      core::trainDetector(f.training.clips, core::TrainParams{}, ctx);
  EXPECT_FALSE(det.kernels.empty());
  for (const char* stage :
       {"train/classify", "train/features", "train/kernels", "train/platt"}) {
    EXPECT_GT(ctx.stats().stage(stage).calls, 0u) << stage;
  }
}

}  // namespace
}  // namespace hsd::engine
