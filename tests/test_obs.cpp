// Observability-layer tests (ctest label: obs). Pins the src/obs
// contracts:
//  - jsonEscape produces valid JSON string bodies for any byte sequence;
//  - TraceRecorder rings drop the *oldest* events when full and count the
//    drops; span record order and timestamps nest correctly;
//  - writeJson() emits parseable Chrome trace-event JSON (validated with
//    a real recursive-descent parser, not substring checks) with named
//    threads;
//  - the canonical stage-span multiset of a pipeline run is byte-identical
//    at threads=1 and threads=8 (tracing never perturbs what runs);
//  - Histogram bucket/quantile math and MetricsRegistry's Prometheus
//    exposition (registration-order stability, type-mismatch rejection,
//    hostile HELP/label-value escaping per the 0.0.4 text format);
//  - the disabled-span fast path performs zero heap allocations (global
//    operator-new counter) — the "near-zero overhead when off" guarantee;
//  - EngineStats::toJson stays valid JSON under a hostile global locale.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <locale>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "engine/pipeline.hpp"
#include "engine/run_context.hpp"
#include "engine/stats.hpp"
#include "mini_json.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it.
// Used to pin the no-allocation guarantee of the disabled-span path.
namespace {
std::atomic<std::uint64_t> g_allocCount{0};
}  // namespace

// GCC pairs these replacement operators with the default ones and flags
// the malloc/free backing as mismatched; the pairing is consistent here
// (both sides are replaced), so silence that one diagnostic.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace hsd::obs {
namespace {

// Strict mini JSON parser shared with test_net.cpp (tests/mini_json.hpp).
using hsd::tests::parsesAsJson;

int countOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// ---------------------------------------------------------------------------
// jsonEscape

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 passthrough
}

TEST(JsonEscape, AnyBytesBecomeAValidJsonString) {
  std::string nasty;
  for (int c = 0; c < 0x20; ++c) nasty.push_back(char(c));
  nasty += "\"\\end";
  const std::string doc = "{\"k\": \"" + jsonEscape(nasty) + "\"}";
  EXPECT_TRUE(parsesAsJson(doc)) << doc;
}

// ---------------------------------------------------------------------------
// TraceRecorder rings

std::chrono::steady_clock::time_point now() {
  return std::chrono::steady_clock::now();
}

TEST(TraceRecorder, FullRingDropsOldestAndCountsDrops) {
  TraceRecorder rec(4);
  const auto t = now();
  for (int i = 0; i < 10; ++i)
    rec.recordSpan("s" + std::to_string(i), "test", t, t);
  EXPECT_EQ(rec.spanCount(), 4u);
  EXPECT_EQ(rec.droppedEvents(), 6u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Newest data wins; surviving events stay in record order.
  for (int i = 0; i < 4; ++i)
    EXPECT_STREQ(events[std::size_t(i)].event.name,
                 ("s" + std::to_string(6 + i)).c_str());
}

TEST(TraceRecorder, NestedSpansRecordInnermostFirstAndNestTimestamps) {
  TraceRecorder rec;
  {
    Span outer(&rec, "outer", "test");
    {
      Span inner(&rec, "inner", "test");
      inner.arg("depth", 1);
    }
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes (and records) before outer.
  EXPECT_STREQ(events[0].event.name, "inner");
  EXPECT_STREQ(events[1].event.name, "outer");
  const auto& in = events[0].event;
  const auto& out = events[1].event;
  EXPECT_LE(out.tsNs, in.tsNs);
  EXPECT_GE(out.tsNs + out.durNs, in.tsNs + in.durNs);
  ASSERT_NE(in.a0.key, nullptr);
  EXPECT_STREQ(in.a0.key, "depth");
  EXPECT_EQ(in.a0.value, 1u);
}

TEST(TraceRecorder, LongNamesTruncateWithoutOverflow) {
  TraceRecorder rec;
  const std::string huge(500, 'x');
  rec.recordSpan(huge, "test", now(), now());
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].event.name),
            TraceRecorder::kNameCapacity - 1);
}

TEST(TraceRecorder, WriteJsonIsParseableWithNamedThreads) {
  TraceRecorder rec;
  rec.nameThread("obs-test-main");
  {
    Span s(&rec, "work", "test");
    s.arg("items", 3);
    s.strArg("status", "ok");
  }
  const std::string json = rec.toJson();
  EXPECT_TRUE(parsesAsJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("obs-test-main"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing a real pipeline: the canonical stage-span multiset must be
// byte-identical at any thread count (chunk spans are scheduling-dependent
// and excluded by category).

std::string canonicalStageSpans(const TraceRecorder& rec) {
  std::vector<std::string> lines;
  for (const auto& se : rec.snapshot()) {
    if (std::strcmp(se.event.cat, "stage") != 0) continue;
    std::string line = std::string(se.event.name);
    for (const TraceArg& a : {se.event.a0, se.event.a1})
      if (a.key != nullptr)
        line += std::string("|") + a.key + "=" + std::to_string(a.value);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string joined;
  for (const std::string& l : lines) joined += l + "\n";
  return joined;
}

std::string tracedPipelineRun(std::size_t threads) {
  auto rec = std::make_shared<TraceRecorder>();
  engine::RunContext ctx(threads, /*batchSize=*/16);
  ctx.attachTracer(rec);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[std::size_t(i)] = i;
  auto square = engine::mapStage<int>("obs/square",
                                      [](const int& v) { return v * v; });
  auto keepEven = engine::filterMapStage<int>(
      "obs/keep_even", [](const int& v) -> std::optional<int> {
        if (v % 2 == 0) return v;
        return std::nullopt;
      });
  const auto out = engine::runPipeline(ctx, std::move(items), square,
                                       keepEven);
  EXPECT_EQ(out.size(), 50u);
  return canonicalStageSpans(*rec);
}

TEST(TraceRecorder, StageSpansAreByteIdenticalAcrossThreadCounts) {
  const std::string serial = tracedPipelineRun(1);
  const std::string parallel = tracedPipelineRun(8);
  EXPECT_FALSE(serial.empty());
  // 100 items in batches of 16 -> 7 batches x 2 stages = 14 spans.
  EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 14);
  EXPECT_EQ(serial, parallel);
}

TEST(TraceRecorder, ParallelForChunksAreTraced) {
  auto rec = std::make_shared<TraceRecorder>();
  engine::RunContext ctx(4);
  ctx.attachTracer(rec);
  ctx.parallelFor(256, [](std::size_t) {});
  std::size_t chunkSpans = 0;
  std::uint64_t covered = 0;
  for (const auto& se : rec->snapshot())
    if (std::strcmp(se.event.cat, "par") == 0) {
      ++chunkSpans;
      ASSERT_NE(se.event.a1.key, nullptr);
      covered += se.event.a1.value;  // "count"
    }
  EXPECT_GT(chunkSpans, 0u);
  EXPECT_EQ(covered, 256u);  // chunks tile the index space exactly
}

// ---------------------------------------------------------------------------
// The disabled path: no allocation, and tracing never changes results.

TEST(Span, DisabledPathPerformsNoHeapAllocation) {
  const std::uint64_t before = g_allocCount.load();
  for (int i = 0; i < 1000; ++i) {
    Span s(nullptr, "hot/loop", "test");
    s.arg("i", std::uint64_t(i));
    s.strArg("k", "v");
  }
  EXPECT_EQ(g_allocCount.load() - before, 0u);
}

TEST(Span, EnabledSteadyStatePerformsNoHeapAllocation) {
  TraceRecorder rec;
  // Warm-up: the thread's first event registers its ring (one-time cost).
  rec.recordSpan("warmup", "test", now(), now());
  const std::uint64_t before = g_allocCount.load();
  for (int i = 0; i < 100; ++i) {
    Span s(&rec, "hot/loop", "test");
    s.arg("i", std::uint64_t(i));
  }
  EXPECT_EQ(g_allocCount.load() - before, 0u);
}

// ---------------------------------------------------------------------------
// Histogram math

TEST(Histogram, BucketsFollowPrometheusLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.0);  // boundary lands in the le=1 bucket
  h.observe(1.5);
  h.observe(3.0);
  h.observe(8.0);  // +Inf
  const auto counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 4.0);
  // +Inf observations clamp to the largest finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, EmptyReportsZeroAndBadBoundsThrow) {
  Histogram h(Histogram::defaultLatencySeconds());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram::exponentialBuckets(0.0, 2.0, 4),
               std::invalid_argument);
}

TEST(Histogram, ExponentialBucketsDouble) {
  const auto b = Histogram::exponentialBuckets(1e-3, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1e-3);
  EXPECT_DOUBLE_EQ(b[3], 8e-3);
}

// ---------------------------------------------------------------------------
// MetricsRegistry / Prometheus exposition

TEST(MetricsRegistry, RendersInRegistrationOrderAndIsStable) {
  MetricsRegistry reg;
  reg.counter("zulu_total", "registered first").inc(7);
  reg.gauge("alpha_depth", "registered second").set(-3);
  const std::string first = reg.renderPrometheus();
  const std::string second = reg.renderPrometheus();
  EXPECT_EQ(first, second);  // scrape-to-scrape byte stability
  EXPECT_LT(first.find("zulu_total"), first.find("alpha_depth"));
  EXPECT_NE(first.find("# TYPE zulu_total counter"), std::string::npos);
  EXPECT_NE(first.find("zulu_total 7\n"), std::string::npos);
  EXPECT_NE(first.find("alpha_depth -3\n"), std::string::npos);
}

TEST(MetricsRegistry, LabeledSamplesShareOneFamilyHeader) {
  MetricsRegistry reg;
  reg.counter("req_total", "by status", {{"status", "ok"}}).inc(2);
  reg.counter("req_total", "by status", {{"status", "error"}}).inc(1);
  const std::string text = reg.renderPrometheus();
  EXPECT_EQ(countOccurrences(text, "# TYPE req_total counter"), 1);
  EXPECT_NE(text.find("req_total{status=\"ok\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{status=\"error\"} 1\n"), std::string::npos);
}

TEST(MetricsRegistry, HistogramExpositionIsCumulativeWithInf) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_seconds", "latency", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 5.550000\n"), std::string::npos);
}

TEST(MetricsRegistry, ReRegistrationReturnsSameMetricMismatchThrows) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", "help");
  Counter& b = reg.counter("x_total", "help");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("x_total", "other type"), std::invalid_argument);
}

TEST(MetricsRegistry, SanitizesInvalidNames) {
  EXPECT_EQ(MetricsRegistry::sanitizeName("9bad-name.x"), "_9bad_name_x");
  EXPECT_EQ(MetricsRegistry::sanitizeName("good:name_1"), "good:name_1");
  // Label names are stricter than metric names: no colons allowed.
  EXPECT_EQ(MetricsRegistry::sanitizeLabelName("good:name_1"), "good_name_1");
  EXPECT_EQ(MetricsRegistry::sanitizeLabelName("9bad-label"), "_9bad_label");
}

// Prometheus 0.0.4 text-format escaping: HELP escapes backslash and
// newline (quotes stay raw); label values escape backslash, quote and
// newline. A hostile help string must not be able to smuggle an extra
// exposition line or truncate the comment.
TEST(MetricsRegistry, HostileHelpStringsEscapePerSpec) {
  MetricsRegistry reg;
  reg.counter("evil_total",
              "line1\nline2 \"quoted\" back\\slash\n# HELP fake_metric x")
      .inc(1);
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(
      text.find("# HELP evil_total line1\\nline2 \"quoted\" "
                "back\\\\slash\\n# HELP fake_metric x\n"),
      std::string::npos)
      << text;
  // The embedded "# HELP fake_metric" stays inside the one escaped
  // comment line: exactly one real HELP line in the exposition.
  EXPECT_EQ(countOccurrences(text, "\n# HELP"), 0);
  EXPECT_EQ(text.rfind("# HELP", 0), 0u);
  EXPECT_NE(text.find("evil_total 1\n"), std::string::npos);
}

TEST(MetricsRegistry, HostileLabelValuesEscapePerSpec) {
  MetricsRegistry reg;
  reg.counter("req_total", "by path", {{"path", "a\"b\\c\nd"}}).inc(3);
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("req_total{path=\"a\\\"b\\\\c\\nd\"} 3\n"),
            std::string::npos)
      << text;
  // No raw newline escaped the label value.
  for (std::size_t pos = text.find('{'); pos < text.find('}'); ++pos)
    EXPECT_NE(text[pos], '\n');
}

TEST(MetricsRegistry, HostileLabelNamesAreSanitized) {
  MetricsRegistry reg;
  reg.counter("c_total", "h", {{"bad:label-name", "v"}}).inc(1);
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("c_total{bad_label_name=\"v\"} 1\n"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// EngineStats JSON under a hostile locale

struct GermanNumpunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST(TraceRecorder, WriteJsonIsLocaleIndependent) {
  TraceRecorder rec;
  rec.recordSpan("locale-span", "test", now(), now(), {"items", 123456});
  std::ostringstream os;
  os.imbue(std::locale(std::locale::classic(), new GermanNumpunct));
  rec.writeJson(os);
  EXPECT_TRUE(parsesAsJson(os.str())) << os.str();
  EXPECT_NE(os.str().find("123456"), std::string::npos);  // ungrouped
}

TEST(EngineStats, ToJsonIsLocaleIndependent) {
  const std::locale saved = std::locale::global(
      std::locale(std::locale::classic(), new GermanNumpunct));
  engine::EngineStats stats;
  stats.record("obs/stage", 1234, 0.5);
  const std::string json = stats.toJson();
  std::locale::global(saved);
  EXPECT_TRUE(parsesAsJson(json)) << json;
  EXPECT_EQ(json.find(','), json.find(", "));  // no numeric commas
  EXPECT_NE(json.find("1234"), std::string::npos);  // no grouping dots
}

}  // namespace
}  // namespace hsd::obs
