// Fuzzy pattern-matching baseline tests: template building, tolerance
// behavior, orientation invariance, and the precise-on-seen /
// limited-on-unseen contrast the paper draws against pattern matching.
#include <gtest/gtest.h>

#include "core/fuzzy_match.hpp"

namespace hsd::core {
namespace {

const ClipParams kP;

Clip lineClip(Coord w, Label label, Coord jx = 0) {
  Clip c(ClipWindow::atCore({1800, 1800}, kP), label);
  const Coord x = 2400 - w / 2 + jx;
  c.setRects(1, {{x, 0, x + w, 4800}});
  return c;
}

Clip lClip(Label label) {
  Clip c(ClipWindow::atCore({1800, 1800}, kP), label);
  c.setRects(1, {{1900, 1900, 2800, 2100}, {1900, 2100, 2100, 2900}});
  return c;
}

TEST(FuzzyMatch, MatchesSeenPatternExactly) {
  const std::vector<Clip> training{lineClip(110, Label::kHotspot)};
  const FuzzyMatcher m = FuzzyMatcher::train(training, {});
  EXPECT_EQ(m.templateCount(), 1u);
  EXPECT_TRUE(m.evaluateClip(lineClip(110, Label::kUnknown)));
  EXPECT_DOUBLE_EQ(
      m.nearestDistance(CorePattern::fromCore(training[0], 1)), 0.0);
}

TEST(FuzzyMatch, ToleranceAbsorbsSmallPerturbations) {
  const std::vector<Clip> training{lineClip(110, Label::kHotspot)};
  FuzzyMatchParams p;
  p.tolerance = 9.0;
  const FuzzyMatcher m = FuzzyMatcher::train(training, p);
  EXPECT_TRUE(m.evaluateClip(lineClip(118, Label::kUnknown, 20)));
}

TEST(FuzzyMatch, UnseenTopologyRejected) {
  const std::vector<Clip> training{lineClip(110, Label::kHotspot)};
  const FuzzyMatcher m = FuzzyMatcher::train(training, {});
  EXPECT_FALSE(m.evaluateClip(lClip(Label::kUnknown)));
}

TEST(FuzzyMatch, NonHotspotsIgnoredInTraining) {
  const std::vector<Clip> training{lineClip(110, Label::kNonHotspot),
                                   lClip(Label::kNonHotspot)};
  const FuzzyMatcher m = FuzzyMatcher::train(training, {});
  EXPECT_EQ(m.templateCount(), 0u);
  EXPECT_FALSE(m.evaluateClip(lineClip(110, Label::kUnknown)));
}

TEST(FuzzyMatch, DedupeCollapsesNearDuplicates) {
  std::vector<Clip> training;
  for (int i = 0; i < 10; ++i)
    training.push_back(lineClip(110, Label::kHotspot, i));  // ~identical
  FuzzyMatchParams p;
  p.dedupeTemplates = true;
  EXPECT_EQ(FuzzyMatcher::train(training, p).templateCount(), 1u);
  p.dedupeTemplates = false;
  EXPECT_EQ(FuzzyMatcher::train(training, p).templateCount(), 10u);
}

TEST(FuzzyMatch, OrientationInvariantViaD8Distance) {
  const std::vector<Clip> training{lClip(Label::kHotspot)};
  const FuzzyMatcher m = FuzzyMatcher::train(training, {});
  const CorePattern base = CorePattern::fromCore(training[0], 1);
  for (const Orient o : kAllOrients)
    EXPECT_TRUE(m.matches(base.transformed(o))) << toString(o);
}

TEST(FuzzyMatch, ZeroToleranceOnlyExact) {
  const std::vector<Clip> training{lineClip(110, Label::kHotspot)};
  FuzzyMatchParams p;
  p.tolerance = 0.0;
  p.dedupeTemplates = false;
  const FuzzyMatcher m = FuzzyMatcher::train(training, p);
  EXPECT_TRUE(m.evaluateClip(lineClip(110, Label::kUnknown)));
  EXPECT_FALSE(m.evaluateClip(lineClip(150, Label::kUnknown)));
}

}  // namespace
}  // namespace hsd::core
