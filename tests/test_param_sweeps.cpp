// Parameterized sweeps over the framework's main knobs: every
// configuration must keep the pipeline's invariants (determinism,
// monotone bias behavior, score sanity) even where quality varies.
#include <gtest/gtest.h>

#include <tuple>

#include "core/evaluator.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"

namespace hsd::core {
namespace {

struct SweepFixture {
  gds::ClipSet training;
  data::TestLayout test;
};

const SweepFixture& fixture() {
  static const SweepFixture f = [] {
    SweepFixture out;
    data::GeneratorParams gp;
    gp.seed = 777;
    data::TrainingTargets t;
    t.hotspots = 25;
    t.nonHotspots = 100;
    out.training = data::generateTrainingSet(gp, t);
    out.test = data::generateTestLayout(gp, 26000, 26000, 14, 0.6);
    return out;
  }();
  return f;
}

// (enableShift, balancePopulation, enableFeedback, singleKernel)
using Knobs = std::tuple<bool, bool, bool, bool>;

class TrainerKnobs : public ::testing::TestWithParam<Knobs> {};

TEST_P(TrainerKnobs, PipelineRunsAndScores) {
  const auto [shift, balance, feedback, single] = GetParam();
  TrainParams tp;
  tp.enableShift = shift;
  tp.balancePopulation = balance;
  tp.enableFeedback = feedback;
  tp.singleKernel = single;
  const Detector det = trainDetector(fixture().training.clips, tp);
  EXPECT_GE(det.kernels.size(), 1u);
  if (single) {
    EXPECT_EQ(det.kernels.size(), 1u);
  }

  const EvalResult res = evaluateLayout(det, fixture().test.layout, {});
  const Score s = scoreReports(res.reported, fixture().test.actualHotspots);
  // Sanity, not quality: scoring identities hold in every configuration.
  EXPECT_LE(s.hits, s.actualHotspots);
  EXPECT_EQ(s.reports, res.reported.size());
  EXPECT_LE(s.extras, s.reports);
}

TEST_P(TrainerKnobs, TrainingIsDeterministic) {
  const auto [shift, balance, feedback, single] = GetParam();
  TrainParams tp;
  tp.enableShift = shift;
  tp.balancePopulation = balance;
  tp.enableFeedback = feedback;
  tp.singleKernel = single;
  const Detector a = trainDetector(fixture().training.clips, tp);
  const Detector b = trainDetector(fixture().training.clips, tp);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  const Clip& probe = fixture().training.clips.front();
  EXPECT_EQ(a.evaluateClip(probe), b.evaluateClip(probe));
  EXPECT_DOUBLE_EQ(a.decisionValue(CorePattern::fromCore(probe, 1)),
                   b.decisionValue(CorePattern::fromCore(probe, 1)));
}

std::string knobName(const ::testing::TestParamInfo<Knobs>& info) {
  std::string name;
  name += std::get<0>(info.param) ? "Shift" : "NoShift";
  name += std::get<1>(info.param) ? "Bal" : "NoBal";
  name += std::get<2>(info.param) ? "Fb" : "NoFb";
  name += std::get<3>(info.param) ? "Single" : "Multi";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    KnobMatrix, TrainerKnobs,
    ::testing::Values(Knobs{true, true, true, false},
                      Knobs{false, true, true, false},
                      Knobs{true, false, true, false},
                      Knobs{true, true, false, false},
                      Knobs{false, false, false, true},
                      Knobs{true, false, false, true}),
    knobName);

class FeatureCapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FeatureCapSweep, DimensionFollowsCaps) {
  FeatureParams fp;
  fp.maxInternal = GetParam();
  fp.maxExternal = GetParam();
  CorePattern p;
  p.w = p.h = 1200;
  p.rects = {{100, 100, 300, 1100}, {500, 100, 700, 1100}};
  EXPECT_EQ(buildFeatureVector(p, fp).size(), fp.dim());
}

INSTANTIATE_TEST_SUITE_P(Caps, FeatureCapSweep,
                         ::testing::Values<std::size_t>(1, 4, 16));

class GridNSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridNSweep, ClassifierPartitionsAtAnyPixelation) {
  ClassifyParams cp;
  cp.gridN = GetParam();
  std::vector<CorePattern> pats;
  for (int i = 0; i < 12; ++i) {
    CorePattern p;
    p.w = p.h = 1200;
    p.rects = {{100 + 80 * (i % 4), 0, 250 + 80 * (i % 4), 1200}};
    pats.push_back(std::move(p));
  }
  const auto clusters = classifyPatterns(pats, cp);
  std::size_t total = 0;
  for (const Cluster& c : clusters) total += c.members.size();
  EXPECT_EQ(total, pats.size());
  EXPECT_GE(clusters.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Grids, GridNSweep,
                         ::testing::Values<std::size_t>(6, 12, 20));

}  // namespace
}  // namespace hsd::core
