// End-to-end integration tests: train on a generated set, evaluate a
// generated layout, score; checks the paper's qualitative claims (decent
// accuracy, removal reduces reports without losing hits, feedback reduces
// extras, bias trades accuracy for extras).
#include <gtest/gtest.h>

#include "common.hpp"
#include "core/evaluator.hpp"
#include "core/metrics.hpp"
#include "data/generator.hpp"

namespace hsd::core {
namespace {

using Fixture = tests::DetectorFixture;

const Fixture& fixture() {
  return tests::detectorFixture({.seed = 2024,
                                 .hotspots = 40,
                                 .nonHotspots = 160,
                                 .width = 36000,
                                 .height = 36000,
                                 .sites = 25});
}

TEST(Evaluator, EndToEndAccuracy) {
  const Fixture& f = fixture();
  ASSERT_GE(f.test.actualHotspots.size(), 3u);
  const EvalResult res = evaluateLayout(f.detector, f.test.layout, {});
  const Score s = scoreReports(res.reported, f.test.actualHotspots);
  // The paper reports 85-98% accuracy; demand a solid floor here.
  EXPECT_GE(s.accuracy(), 0.7)
      << s.hits << "/" << s.actualHotspots << " extras=" << s.extras;
  EXPECT_GT(res.candidateClips, 0u);
}

TEST(Evaluator, RemovalReducesReportsKeepsHits) {
  const Fixture& f = fixture();
  EvalParams with;
  EvalParams without = with;
  without.useRemoval = false;
  const EvalResult a = evaluateLayout(f.detector, f.test.layout, with);
  const EvalResult b = evaluateLayout(f.detector, f.test.layout, without);
  const Score sa = scoreReports(a.reported, f.test.actualHotspots);
  const Score sb = scoreReports(b.reported, f.test.actualHotspots);
  EXPECT_LE(a.reported.size(), b.reported.size());
  EXPECT_GE(sa.hits + 1, sb.hits);  // at most one borderline hit lost
}

TEST(Evaluator, BiasSweepIsMonotoneInReports) {
  const Fixture& f = fixture();
  std::size_t last = std::size_t(-1);
  for (const double bias : {-0.5, 0.0, 0.5, 2.0}) {
    EvalParams ep;
    ep.decisionBias = bias;
    ep.useRemoval = false;
    const EvalResult res = evaluateLayout(f.detector, f.test.layout, ep);
    EXPECT_LE(res.flaggedBeforeRemoval, last);
    last = res.flaggedBeforeRemoval;
  }
}

TEST(Evaluator, EmptyLayoutYieldsNothing) {
  const Fixture& f = fixture();
  const Layout empty;
  const EvalResult res = evaluateLayout(f.detector, empty, {});
  EXPECT_TRUE(res.reported.empty());
  EXPECT_EQ(res.candidateClips, 0u);
}

TEST(Evaluator, ThreadedEvaluationMatchesSerial) {
  const Fixture& f = fixture();
  EvalParams p1;
  p1.threads = 1;
  EvalParams p4 = p1;
  p4.threads = 4;
  const EvalResult a = evaluateLayout(f.detector, f.test.layout, p1);
  const EvalResult b = evaluateLayout(f.detector, f.test.layout, p4);
  EXPECT_EQ(a.reported, b.reported);
}

TEST(Evaluator, CandidateReuseMatchesFullRun) {
  const Fixture& f = fixture();
  const Layer* l = f.test.layout.findLayer(1);
  ASSERT_NE(l, nullptr);
  EvalParams ep;
  const GridIndex index(l->rects(), ep.extract.clip.clipSide);
  const auto candidates = extractCandidateClips(index, ep.extract);
  const EvalResult viaCandidates =
      evaluateCandidates(f.detector, index, candidates, ep);
  const EvalResult full = evaluateLayout(f.detector, f.test.layout, ep);
  EXPECT_EQ(viaCandidates.reported, full.reported);
}

TEST(Evaluator, RankedReportsSortedAndComplete) {
  const Fixture& f = fixture();
  const Layer* l = f.test.layout.findLayer(1);
  ASSERT_NE(l, nullptr);
  const GridIndex idx(l->rects(), 4800);
  const EvalResult res = evaluateLayout(f.detector, f.test.layout, {});
  const auto ranked = rankReports(f.detector, idx, res.reported);
  ASSERT_EQ(ranked.size(), res.reported.size());
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i)
    EXPECT_GE(ranked[i].probability, ranked[i + 1].probability);
  for (const auto& r : ranked) {
    EXPECT_GE(r.probability, 0.0);
    EXPECT_LE(r.probability, 1.0);
  }
}

TEST(Evaluator, WindowScanFindsAtLeastAsManyHits) {
  // Full scanning is the slow superset of extraction: it must not miss
  // hotspots that extraction-based evaluation finds.
  const Fixture& f = fixture();
  EvalParams ep;
  const EvalResult fast = evaluateLayout(f.detector, f.test.layout, ep);
  const EvalResult scan =
      evaluateLayoutWindowScan(f.detector, f.test.layout, ep, 0.5);
  const Score sf = scoreReports(fast.reported, f.test.actualHotspots);
  const Score ss = scoreReports(scan.reported, f.test.actualHotspots);
  EXPECT_GE(ss.hits + 1, sf.hits);  // allow one boundary-alignment wobble
  EXPECT_GT(scan.candidateClips, fast.candidateClips);
}

TEST(Evaluator, DetectorPersistenceKeepsResults) {
  const Fixture& f = fixture();
  std::stringstream ss;
  f.detector.save(ss);
  const Detector re = Detector::load(ss);
  EvalParams ep;
  const EvalResult a = evaluateLayout(f.detector, f.test.layout, ep);
  const EvalResult b = evaluateLayout(re, f.test.layout, ep);
  EXPECT_EQ(a.reported, b.reported);
}

}  // namespace
}  // namespace hsd::core
