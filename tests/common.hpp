// Shared test fixture library: the layout/clip/pattern builders, trained
// end-to-end fixtures, report canonicalization, and tmp-dir plumbing that
// used to be copy-pasted across the test_*.cpp files. Header-only; every
// test links the same libraries, so inline definitions suffice.
//
// Conventions:
//  - builders use the default ICCAD-2012 ClipParams (kClip);
//  - detectorFixture() memoizes by spec, so several test files can share
//    one (expensive) train-and-generate run within a binary;
//  - canonicalReport() is the byte-comparison format of the golden
//    regression harness: sorted windows, fixed integer formatting, one
//    record per line — see test_golden_regression.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/pattern.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "gds/ascii.hpp"
#include "layout/clip.hpp"
#include "layout/spatial_index.hpp"

namespace hsd::tests {

inline const ClipParams kClip{};

/// Window whose core's lower-left corner sits at (x, y), contest geometry.
inline ClipWindow at(Coord x, Coord y) {
  return ClipWindow::atCore({x, y}, kClip);
}

/// A geometry-free grid index (removal tests that only exercise the
/// merge/reframe passes).
inline GridIndex emptyIndex() { return GridIndex({}, kClip.clipSide); }

/// A labeled clip with a vertical line of width `w` through the core.
inline Clip lineClip(Coord w, Label label, Coord jitterX = 0) {
  Clip c(ClipWindow::atCore({1800, 1800}, kClip), label);
  const Coord x = 2400 - w / 2 + jitterX;
  c.setRects(1, {{x, 0, x + w, 4800}});
  return c;
}

/// Small linearly separable training set: narrow lines are hotspots, wide
/// lines are not, with jittered positions for generalization checks.
inline std::vector<Clip> lineTrainingSet(std::uint32_t seed = 3,
                                         int hotspots = 12,
                                         int nonHotspots = 40) {
  std::vector<Clip> clips;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Coord> j(-200, 200);
  for (int i = 0; i < hotspots; ++i)
    clips.push_back(lineClip(100, Label::kHotspot, j(rng)));
  for (int i = 0; i < nonHotspots; ++i)
    clips.push_back(lineClip(220, Label::kNonHotspot, j(rng)));
  return clips;
}

/// Core-sized window-local pattern from explicit rects.
inline core::CorePattern corePattern(std::vector<Rect> rects) {
  core::CorePattern p;
  p.w = kClip.coreSide;
  p.h = kClip.coreSide;
  p.rects = std::move(rects);
  return p;
}

/// A vertical line pattern at position x with width w.
inline core::CorePattern linePattern(Coord x, Coord w) {
  return corePattern({{x, 0, x + w, kClip.coreSide}});
}

/// Spec of a seeded end-to-end fixture: generated training set + testing
/// layout + detector trained on them. Equal specs share one fixture.
struct FixtureSpec {
  std::uint64_t seed = 77;
  std::size_t hotspots = 30;
  std::size_t nonHotspots = 120;
  Coord width = 30000;
  Coord height = 30000;
  std::size_t sites = 20;
  double riskyFrac = 0.6;
  std::size_t trainThreads = 2;

  friend auto operator<=>(const FixtureSpec&, const FixtureSpec&) = default;
};

struct DetectorFixture {
  gds::ClipSet training;
  data::TestLayout test;
  core::Detector detector;
};

/// Memoized fixture builder — training dominates end-to-end test runtime,
/// so tests sharing a spec within one binary pay for it once.
inline const DetectorFixture& detectorFixture(const FixtureSpec& spec = {}) {
  static std::mutex mu;
  static std::map<FixtureSpec, std::unique_ptr<DetectorFixture>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<DetectorFixture>& slot = cache[spec];
  if (!slot) {
    auto f = std::make_unique<DetectorFixture>();
    data::GeneratorParams gp;
    gp.seed = spec.seed;
    data::TrainingTargets t;
    t.hotspots = spec.hotspots;
    t.nonHotspots = spec.nonHotspots;
    f->training = data::generateTrainingSet(gp, t);
    f->test = data::generateTestLayout(gp, spec.width, spec.height,
                                       spec.sites, spec.riskyFrac);
    engine::RunContext ctx(spec.trainThreads);
    f->detector =
        core::trainDetector(f->training.clips, core::TrainParams{}, ctx);
    slot = std::move(f);
  }
  return *slot;
}

/// One window as a canonical text record: fixed field order, plain
/// integers, no locale dependence.
inline std::string canonicalWindow(const ClipWindow& w) {
  std::ostringstream os;
  os << "core " << w.core.lo.x << ' ' << w.core.lo.y << ' ' << w.core.hi.x
     << ' ' << w.core.hi.y << " clip " << w.clip.lo.x << ' ' << w.clip.lo.y
     << ' ' << w.clip.hi.x << ' ' << w.clip.hi.y;
  return os.str();
}

/// Canonical, byte-comparable serialization of an evaluation result:
/// summary counters followed by the reported windows in sorted order (so
/// the encoding is independent of report emission order).
inline std::string canonicalReport(const core::EvalResult& res) {
  std::vector<ClipWindow> sorted = res.reported;
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream os;
  os << "candidates " << res.candidateClips << '\n';
  os << "flagged " << res.flaggedBeforeRemoval << '\n';
  os << "reported " << sorted.size() << '\n';
  for (std::size_t i = 0; i < sorted.size(); ++i)
    os << i << ' ' << canonicalWindow(sorted[i]) << '\n';
  return os.str();
}

/// First differing line between two canonical reports, formatted as a
/// loud, greppable diff excerpt. Empty string when the inputs are equal.
inline std::string firstDiff(const std::string& golden,
                             const std::string& actual) {
  if (golden == actual) return {};
  std::istringstream g(golden);
  std::istringstream a(actual);
  std::string gl;
  std::string al;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool gok = static_cast<bool>(std::getline(g, gl));
    const bool aok = static_cast<bool>(std::getline(a, al));
    if (!gok && !aok) break;  // differ only in trailing bytes
    if (!gok || !aok || gl != al) {
      std::ostringstream os;
      os << "first difference at line " << line << ":\n"
         << "  golden: " << (gok ? gl : std::string("<end of file>")) << '\n'
         << "  actual: " << (aok ? al : std::string("<end of file>"));
      return os.str();
    }
  }
  return "inputs differ in whitespace/trailing bytes only";
}

/// RAII temporary directory (removed recursively on scope exit).
class TmpDir {
 public:
  TmpDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "hsd_test_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr)
      throw std::runtime_error("TmpDir: mkdtemp failed");
    path_ = tmpl;
  }
  TmpDir(const TmpDir&) = delete;
  TmpDir& operator=(const TmpDir&) = delete;
  ~TmpDir() {
    std::error_code ec;  // best-effort cleanup; never throw in a dtor
    std::filesystem::remove_all(path_, ec);
  }

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

}  // namespace hsd::tests
