// Polygon slicing and area tests, including property checks that both
// slicing directions reproduce the shoelace area on random rectilinear
// polygons.
#include <gtest/gtest.h>

#include <random>

#include "geom/polygon.hpp"
#include "geom/rectset.hpp"

namespace hsd {
namespace {

Polygon lShape() {
  // L: 10x10 with a 5x5 notch removed at the top-right.
  return Polygon({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
}

TEST(Polygon, RectConstructor) {
  const Polygon p(Rect{1, 2, 5, 7});
  EXPECT_TRUE(p.isRectilinear());
  EXPECT_EQ(p.area(), 20);
  EXPECT_EQ(p.bbox(), Rect(1, 2, 5, 7));
}

TEST(Polygon, LShapeArea) {
  const Polygon p = lShape();
  EXPECT_TRUE(p.isRectilinear());
  EXPECT_EQ(p.area(), 75);
  EXPECT_EQ(p.bbox(), Rect(0, 0, 10, 10));
}

TEST(Polygon, LShapeHorizontalSlices) {
  const std::vector<Rect> rs = lShape().sliceHorizontal();
  ASSERT_EQ(rs.size(), 2u);
  Area total = 0;
  for (const Rect& r : rs) total += r.area();
  EXPECT_EQ(total, 75);
  // Slices must be disjoint.
  EXPECT_FALSE(rs[0].overlaps(rs[1]));
}

TEST(Polygon, ClockwiseWindingGivesSameArea) {
  std::vector<Point> pts = lShape().points();
  std::reverse(pts.begin(), pts.end());
  const Polygon p(std::move(pts));
  EXPECT_EQ(p.area(), 75);
  EXPECT_EQ(unionArea(p.sliceHorizontal()), 75);
}

TEST(Polygon, UShapeSlices) {
  // U: outer 12x10, inner notch 4 wide x 6 deep from the top.
  const Polygon u({{0, 0}, {12, 0}, {12, 10}, {8, 10}, {8, 4}, {4, 4},
                   {4, 10}, {0, 10}});
  EXPECT_EQ(u.area(), 12 * 10 - 4 * 6);
  EXPECT_EQ(unionArea(u.sliceHorizontal()), u.area());
  EXPECT_EQ(unionArea(u.sliceVertical()), u.area());
  // The top band must produce two separate rects (the two prongs).
  int topBandRects = 0;
  for (const Rect& r : u.sliceHorizontal())
    if (r.hi.y == 10) ++topBandRects;
  EXPECT_EQ(topBandRects, 2);
}

TEST(Polygon, NonRectilinearDetected) {
  const Polygon diag({{0, 0}, {10, 10}, {0, 10}});
  EXPECT_FALSE(diag.isRectilinear());
  const Polygon odd({{0, 0}, {10, 0}, {10, 10}, {5, 10}, {5, 5}});
  EXPECT_FALSE(odd.isRectilinear());
}

TEST(Polygon, EmptyPolygon) {
  const Polygon p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.area(), 0);
  EXPECT_TRUE(p.sliceHorizontal().empty());
}

// Random staircase polygons: both slicings must reproduce the shoelace
// area with disjoint rects.
TEST(PolygonProperty, RandomStaircaseSliceAreasAgree) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<Coord> step(1, 8);
  for (int trial = 0; trial < 60; ++trial) {
    // Monotone staircase from (0,0): right/up k steps, then close.
    std::vector<Point> pts{{0, 0}};
    Coord x = 0, y = 0;
    const int k = 3 + trial % 5;
    for (int i = 0; i < k; ++i) {
      x += step(rng);
      pts.push_back({x, y});
      y += step(rng);
      pts.push_back({x, y});
    }
    pts.push_back({0, y});
    const Polygon p(std::move(pts));
    ASSERT_TRUE(p.isRectilinear());
    const Area shoelace = p.area();
    const std::vector<Rect> hs = p.sliceHorizontal();
    const std::vector<Rect> vs = p.sliceVertical();
    Area hsum = 0, vsum = 0;
    for (const Rect& r : hs) hsum += r.area();
    for (const Rect& r : vs) vsum += r.area();
    EXPECT_EQ(hsum, shoelace);
    EXPECT_EQ(vsum, shoelace);
    // Disjointness of horizontal slices.
    for (std::size_t i = 0; i < hs.size(); ++i)
      for (std::size_t j = i + 1; j < hs.size(); ++j)
        EXPECT_FALSE(hs[i].overlaps(hs[j]));
  }
}

}  // namespace
}  // namespace hsd
