// Compile-level test: the umbrella header is self-contained and the whole
// public API is reachable through it.
#include "hsd.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ApiReachable) {
  // Touch one symbol from each major module so the include graph is
  // actually exercised.
  hsd::Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.area(), 100);

  hsd::Layout layout;
  layout.addRect(1, r);
  EXPECT_EQ(layout.polygonCount(), 1u);

  const hsd::litho::LithoSimulator sim;
  EXPECT_GT(sim.params().sigmaNm, 0.0);

  hsd::drc::DrcRules rules;
  EXPECT_TRUE(hsd::drc::checkRects({{0, 0, 500, 500}}, rules).empty());

  hsd::svm::Dataset d;
  d.add({0.0}, 1);
  EXPECT_EQ(d.size(), 1u);

  hsd::core::TrainParams tp;
  EXPECT_EQ(tp.clip.coreSide, 1200);

  hsd::data::GeneratorParams gp;
  EXPECT_EQ(gp.layer, 1);

  EXPECT_EQ(hsd::core::FuzzyMatchParams{}.gridN, 12u);
}

}  // namespace
