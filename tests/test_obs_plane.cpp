// Observability-plane tests (ctest label: obs) for the request-correlation
// stack added on top of src/obs: trace ids, structured logging, and SLO
// tracking. Pins:
//  - TraceId format/parse round-trips and the W3C traceparent grammar
//    (version handling, the all-zero "invalid" id, hex strictness);
//  - thread-local propagation: ScopedTraceId nests/restores, recording
//    sites pick the ambient id up, and RunContext::parallelFor carries it
//    into pool workers;
//  - LogRecorder ring mechanics (drop-oldest + counted drops, level gate,
//    message truncation), trace stamping, and JSON-lines serialization
//    (every line parses; trace field present iff the id is valid);
//  - the no-allocation guarantees: steady-state log records, traced
//    spans, and ScopedTraceId installs perform zero heap allocations
//    (global operator-new counter);
//  - SloTracker window arithmetic with injected time (availability and
//    latency burn rates, bucket-snapped objectives, degraded flag,
//    zero-origin early-life fallback, inclusive window-boundary sample
//    selection, flood-pruned rings degrading to the zero origin);
//  - jsonEscape hostility: embedded NUL and every other control byte
//    escape to \u00xx, DEL included, while UTF-8 bytes pass through —
//    and a log message carrying an embedded NUL survives to /logz JSON
//    instead of truncating at it;
//  - Histogram quantile edge cases (single observation, everything in one
//    bucket) and an 8-thread exemplar hammer (TSan-clean last-writer-wins).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/run_context.hpp"
#include "mini_json.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/trace_id.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it.
namespace {
std::atomic<std::uint64_t> g_allocCount{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace hsd::obs {
namespace {

using hsd::tests::parsesAsJson;

// ---------------------------------------------------------------------------
// TraceId format/parse

TEST(TraceId, FormatParseRoundTrip) {
  const TraceId id{0x0af7651916cd43ddull, 0x8448eb211c80319cull};
  EXPECT_EQ(formatTraceId(id), "0af7651916cd43dd8448eb211c80319c");
  TraceId back;
  ASSERT_TRUE(parseTraceId("0af7651916cd43dd8448eb211c80319c", back));
  EXPECT_EQ(back, id);
  // Case-insensitive parse, lower-case render.
  ASSERT_TRUE(parseTraceId("0AF7651916CD43DD8448EB211C80319C", back));
  EXPECT_EQ(back, id);
  // Buffer form matches the string form and NUL-terminates.
  char buf[kTraceIdChars + 1];
  formatTraceId(id, buf);
  EXPECT_STREQ(buf, "0af7651916cd43dd8448eb211c80319c");
}

TEST(TraceId, ParseRejectsBadLengthNonHexAndZero) {
  TraceId out{1, 1};
  EXPECT_FALSE(parseTraceId("", out));
  EXPECT_FALSE(parseTraceId("abc", out));
  EXPECT_FALSE(parseTraceId(std::string(33, 'a'), out));
  EXPECT_FALSE(parseTraceId("0af7651916cd43dd8448eb211c80319g", out));
  EXPECT_FALSE(parseTraceId(std::string(32, '0'), out));  // W3C invalid id
  EXPECT_EQ(out, (TraceId{1, 1}));  // untouched on every failure
}

TEST(TraceId, TraceparentGrammar) {
  TraceId out;
  ASSERT_TRUE(parseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", out));
  EXPECT_EQ(formatTraceId(out), "0af7651916cd43dd8448eb211c80319c");
  // Future versions must keep the first four fields: 01 parses too.
  ASSERT_TRUE(parseTraceparent(
      "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", out));
  // Version ff is forbidden by the spec.
  EXPECT_FALSE(parseTraceparent(
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", out));
  // Malformed shapes.
  EXPECT_FALSE(parseTraceparent("", out));
  EXPECT_FALSE(parseTraceparent("00-abc-def-01", out));
  EXPECT_FALSE(parseTraceparent(
      "00-00000000000000000000000000000000-b7ad6b7169203331-01", out));
}

TEST(TraceId, FormatTraceparentRoundTrips) {
  const TraceId id = makeTraceId();
  const std::string header = formatTraceparent(id);
  TraceId back;
  ASSERT_TRUE(parseTraceparent(header, back)) << header;
  EXPECT_EQ(back, id);
}

TEST(TraceId, MakeTraceIdIsValidAndUnique) {
  const TraceId a = makeTraceId();
  const TraceId b = makeTraceId();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Thread-local propagation

TEST(ScopedTraceId, NestsAndRestores) {
  EXPECT_FALSE(currentTraceId().valid());
  const TraceId outer = makeTraceId();
  const TraceId inner = makeTraceId();
  {
    ScopedTraceId a(outer);
    EXPECT_EQ(currentTraceId(), outer);
    {
      ScopedTraceId b(inner);
      EXPECT_EQ(currentTraceId(), inner);
      {
        ScopedTraceId mask({});  // invalid id masks the outer one
        EXPECT_FALSE(currentTraceId().valid());
      }
      EXPECT_EQ(currentTraceId(), inner);
    }
    EXPECT_EQ(currentTraceId(), outer);
  }
  EXPECT_FALSE(currentTraceId().valid());
}

TEST(ScopedTraceId, ParallelForWorkersInheritTheCallersId) {
  engine::RunContext ctx(4);
  const TraceId id = makeTraceId();
  std::atomic<std::uint64_t> matches{0};
  {
    ScopedTraceId scope(id);
    ctx.parallelFor(64, [&](std::size_t) {
      if (currentTraceId() == id) matches.fetch_add(1);
    });
  }
  EXPECT_EQ(matches.load(), 64u);
  // The workers restored their slots: a second run with no ambient id
  // sees none.
  std::atomic<std::uint64_t> stale{0};
  ctx.parallelFor(64, [&](std::size_t) {
    if (currentTraceId().valid()) stale.fetch_add(1);
  });
  EXPECT_EQ(stale.load(), 0u);
}

TEST(TraceRecorder, SpansPickUpTheAmbientTraceId) {
  TraceRecorder rec;
  const TraceId id = makeTraceId();
  const auto t = std::chrono::steady_clock::now();
  {
    ScopedTraceId scope(id);
    rec.recordSpan("traced", "test", t, t);
  }
  rec.recordSpan("untraced", "test", t, t);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event.trace, id);
  EXPECT_FALSE(events[1].event.trace.valid());
  // JSON: the trace field appears exactly once (only the traced span).
  const std::string json = rec.toJson();
  EXPECT_TRUE(parsesAsJson(json)) << json;
  EXPECT_NE(json.find("\"trace\": \"" + formatTraceId(id) + "\""),
            std::string::npos);
  std::size_t traceFields = 0;
  for (std::size_t pos = json.find("\"trace\""); pos != std::string::npos;
       pos = json.find("\"trace\"", pos + 1))
    ++traceFields;
  EXPECT_EQ(traceFields, 1u);
}

// ---------------------------------------------------------------------------
// LogRecorder

TEST(LogRecorder, RecordsFieldsAndGatesOnLevel) {
  LogRecorder rec;
  EXPECT_EQ(rec.minLevel(), LogLevel::kInfo);
  rec.log(LogLevel::kDebug, "test", "dropped below the gate");
  rec.log(LogLevel::kWarn, "test", "kept", {"n", 7}, {"m", 9},
          {"state", "hot"});
  ASSERT_EQ(rec.recordCount(), 1u);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 1u);
  const LogRecorder::Record& r = records[0].record;
  EXPECT_EQ(r.level, LogLevel::kWarn);
  EXPECT_STREQ(r.component, "test");
  EXPECT_STREQ(r.message, "kept");
  ASSERT_NE(r.a0.key, nullptr);
  EXPECT_STREQ(r.a0.key, "n");
  EXPECT_EQ(r.a0.value, 7u);
  EXPECT_EQ(r.a1.value, 9u);
  ASSERT_NE(r.s0.key, nullptr);
  EXPECT_STREQ(r.s0.value, "hot");
  // Lowering the gate admits the debug record.
  rec.setMinLevel(LogLevel::kTrace);
  rec.log(LogLevel::kDebug, "test", "now kept");
  EXPECT_EQ(rec.recordCount(), 2u);
}

TEST(LogRecorder, FullRingDropsOldestAndCountsDrops) {
  LogRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.log(LogLevel::kInfo, "test", "m" + std::to_string(i));
  EXPECT_EQ(rec.recordCount(), 4u);
  EXPECT_EQ(rec.droppedRecords(), 6u);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_STREQ(records[std::size_t(i)].record.message,
                 ("m" + std::to_string(6 + i)).c_str());
}

TEST(LogRecorder, LongMessagesTruncateWithoutOverflow) {
  LogRecorder rec;
  rec.log(LogLevel::kInfo, "test", std::string(500, 'x'));
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::strlen(records[0].record.message),
            LogRecorder::kMessageCapacity - 1);
}

TEST(LogRecorder, StampsTheAmbientTraceIdAndExplicitWins) {
  LogRecorder rec;
  const TraceId ambient = makeTraceId();
  const TraceId explicitId = makeTraceId();
  {
    ScopedTraceId scope(ambient);
    rec.log(LogLevel::kInfo, "test", "ambient");
    rec.log(LogLevel::kInfo, "test", "explicit", {}, {}, {}, explicitId);
  }
  rec.log(LogLevel::kInfo, "test", "none");
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].record.trace, ambient);
  EXPECT_EQ(records[1].record.trace, explicitId);
  EXPECT_FALSE(records[2].record.trace.valid());
}

TEST(LogRecorder, JsonLinesParseAndCarryTheTraceField) {
  LogRecorder rec;
  const TraceId id = makeTraceId();
  rec.log(LogLevel::kInfo, "test", "plain \"quoted\"\nline");
  rec.log(LogLevel::kError, "test", "traced", {"n", 3}, {}, {}, id);
  std::ostringstream os;
  rec.writeJsonLines(os);
  const std::string text = os.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::istringstream lines(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(parsesAsJson(line)) << line;
  }
  EXPECT_EQ(n, 2u);
  EXPECT_NE(text.find("\"trace\": \"" + formatTraceId(id) + "\""),
            std::string::npos);
  // The untraced record has no trace field: exactly one across both lines.
  std::size_t traceFields = 0;
  for (std::size_t pos = text.find("\"trace\""); pos != std::string::npos;
       pos = text.find("\"trace\"", pos + 1))
    ++traceFields;
  EXPECT_EQ(traceFields, 1u);
  EXPECT_NE(text.find("\"level\": \"error\""), std::string::npos);
}

TEST(LogRecorder, ConcurrentWritersLandInPerThreadRings) {
  LogRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kEach = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&rec] {
      for (int i = 0; i < kEach; ++i)
        rec.log(LogLevel::kInfo, "test", "hammer", {"i", std::uint64_t(i)});
    });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(rec.recordCount(), std::size_t(kThreads * kEach));
  EXPECT_EQ(rec.droppedRecords(), 0u);
}

TEST(LogLevel, ParseAcceptsAliasesCaseInsensitively) {
  LogLevel out;
  ASSERT_TRUE(parseLogLevel("WARN", out));
  EXPECT_EQ(out, LogLevel::kWarn);
  ASSERT_TRUE(parseLogLevel("warning", out));
  EXPECT_EQ(out, LogLevel::kWarn);
  ASSERT_TRUE(parseLogLevel("Trace", out));
  EXPECT_EQ(out, LogLevel::kTrace);
  EXPECT_FALSE(parseLogLevel("loud", out));
  EXPECT_STREQ(toString(LogLevel::kError), "error");
}

// ---------------------------------------------------------------------------
// No-allocation proofs

TEST(LogRecorder, SteadyStateLoggingPerformsNoHeapAllocation) {
  LogRecorder rec;
  rec.log(LogLevel::kInfo, "test", "warmup");  // registers this thread's ring
  const TraceId id = makeTraceId();
  const ScopedTraceId scope(id);
  const std::uint64_t before = g_allocCount.load();
  for (int i = 0; i < 1000; ++i)
    rec.log(LogLevel::kInfo, "test", "steady", {"i", std::uint64_t(i)}, {},
            {"k", "v"});
  EXPECT_EQ(g_allocCount.load() - before, 0u);
}

TEST(LogRecorder, GatedRecordsPerformNoHeapAllocation) {
  LogRecorder rec;  // min level info: debug records cost one relaxed load
  const std::uint64_t before = g_allocCount.load();
  for (int i = 0; i < 1000; ++i)
    logTo(&rec, LogLevel::kDebug, "test", "below the gate");
  logTo(nullptr, LogLevel::kError, "test", "recorder off");
  EXPECT_EQ(g_allocCount.load() - before, 0u);
}

TEST(ScopedTraceId, PropagationMachineryPerformsNoHeapAllocation) {
  const TraceId id = makeTraceId();  // warm the generator's first-call path
  const std::uint64_t before = g_allocCount.load();
  for (int i = 0; i < 1000; ++i) {
    const ScopedTraceId scope(id);
    const TraceId cur = currentTraceId();
    ASSERT_TRUE(cur.valid());
    char buf[kTraceIdChars + 1];
    formatTraceId(cur, buf);
  }
  EXPECT_EQ(g_allocCount.load() - before, 0u);
}

TEST(TraceRecorder, TracedSpansPerformNoHeapAllocationSteadyState) {
  TraceRecorder rec;
  const auto t = std::chrono::steady_clock::now();
  rec.recordSpan("warmup", "test", t, t);
  const TraceId id = makeTraceId();
  const ScopedTraceId scope(id);
  const std::uint64_t before = g_allocCount.load();
  for (int i = 0; i < 1000; ++i)
    rec.recordSpan("steady", "test", t, t, {"i", std::uint64_t(i)});
  EXPECT_EQ(g_allocCount.load() - before, 0u);
}

// ---------------------------------------------------------------------------
// SloTracker (injected time: deterministic window arithmetic)

using Clock = SloTracker::Clock;
using std::chrono::seconds;

TEST(SloTracker, AvailabilityWindowsAndBurnRates) {
  SloConfig cfg;
  cfg.availabilityTarget = 0.9;  // 10% error budget: easy arithmetic
  cfg.windowsSeconds = {60.0, 300.0};
  SloTracker slo(cfg);
  std::atomic<std::uint64_t> good{0};
  std::atomic<std::uint64_t> total{0};
  slo.setAvailabilitySource([&] { return good.load(); },
                            [&] { return total.load(); });
  const Clock::time_point t0 = Clock::now();
  slo.sample(t0);  // baseline: 0/0
  // 100 requests, 80 good, in the first minute: availability 0.8,
  // burn (1-0.8)/(1-0.9) = 2.
  good = 80;
  total = 100;
  slo.sample(t0 + seconds(60));
  const SloTracker::Status st = slo.status(t0 + seconds(60));
  ASSERT_EQ(st.windows.size(), 2u);
  const SloTracker::Window& w60 = st.windows[0];
  EXPECT_DOUBLE_EQ(w60.seconds, 60.0);
  EXPECT_EQ(w60.total, 100u);
  EXPECT_EQ(w60.good, 80u);
  EXPECT_DOUBLE_EQ(w60.availability, 0.8);
  EXPECT_NEAR(w60.availabilityBurn, 2.0, 1e-9);
  EXPECT_TRUE(w60.burning);
  EXPECT_TRUE(st.degraded);
  // Three clean minutes later the short window has recovered while the
  // long one still covers the bad minute.
  good = 80 + 300;
  total = 100 + 300;
  slo.sample(t0 + seconds(240));
  const SloTracker::Status later = slo.status(t0 + seconds(240));
  EXPECT_DOUBLE_EQ(later.windows[0].availability, 1.0);
  EXPECT_FALSE(later.windows[0].burning);
  EXPECT_DOUBLE_EQ(later.windows[1].availability, 0.95);
}

TEST(SloTracker, EarlyLifeFallsBackToTheZeroOrigin) {
  SloTracker slo;
  std::atomic<std::uint64_t> good{5};
  std::atomic<std::uint64_t> total{10};
  slo.setAvailabilitySource([&] { return good.load(); },
                            [&] { return total.load(); });
  // No samples at all: the window degrades to "since process start".
  const SloTracker::Status st = slo.status(Clock::now());
  ASSERT_FALSE(st.windows.empty());
  EXPECT_EQ(st.windows[0].total, 10u);
  EXPECT_EQ(st.windows[0].good, 5u);
  EXPECT_DOUBLE_EQ(st.windows[0].availability, 0.5);
}

TEST(SloTracker, LatencyObjectiveSnapsDownToABucketBound) {
  Histogram hist({0.1, 0.5, 1.0, 2.0});
  SloConfig cfg;
  cfg.latencyObjectiveSeconds = 0.7;  // between bounds: snaps to 0.5
  cfg.latencyTarget = 0.5;
  SloTracker slo(cfg);
  slo.setLatencySource(&hist);
  EXPECT_DOUBLE_EQ(slo.effectiveLatencyObjective(), 0.5);
  const Clock::time_point t0 = Clock::now();
  slo.sample(t0);
  hist.observe(0.05);  // fast
  hist.observe(0.3);   // fast (<= 0.5)
  hist.observe(0.9);   // slow
  hist.observe(3.0);   // slow
  const SloTracker::Status st = slo.status(t0 + seconds(30));
  const SloTracker::Window& w = st.windows[0];
  EXPECT_EQ(w.latencyTotal, 4u);
  EXPECT_EQ(w.latencyFast, 2u);
  EXPECT_DOUBLE_EQ(w.latencyAttainment, 0.5);
  EXPECT_DOUBLE_EQ(w.latencyBurn, 1.0);   // exactly on target
  EXPECT_FALSE(w.burning);                // burn must *exceed* the threshold
}

TEST(SloTracker, UnmeasurableObjectiveReportsFullAttainment) {
  Histogram hist({1.0, 2.0});
  SloConfig cfg;
  cfg.latencyObjectiveSeconds = 0.5;  // below every bound: unmeasurable
  SloTracker slo(cfg);
  slo.setLatencySource(&hist);
  EXPECT_DOUBLE_EQ(slo.effectiveLatencyObjective(), 0.0);
  hist.observe(10.0);
  const SloTracker::Status st = slo.status();
  EXPECT_EQ(st.windows[0].latencyTotal, 0u);
  EXPECT_DOUBLE_EQ(st.windows[0].latencyAttainment, 1.0);
}

TEST(SloTracker, ToJsonParsesAndNamesEveryWindow) {
  SloTracker slo;
  std::atomic<std::uint64_t> good{99};
  std::atomic<std::uint64_t> total{100};
  slo.setAvailabilitySource([&] { return good.load(); },
                            [&] { return total.load(); });
  const std::string json = slo.toJson(slo.status());
  EXPECT_TRUE(parsesAsJson(json)) << json;
  EXPECT_NE(json.find("\"availabilityTarget\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"burning\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);
}

TEST(SloTracker, SampleRingStaysBoundedUnderScrapeFloods) {
  SloConfig cfg;
  cfg.windowsSeconds = {1.0};
  cfg.maxSamples = 8;
  SloTracker slo(cfg);
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 1000; ++i)
    slo.sample(t0 + std::chrono::milliseconds(i));
  // No direct ring accessor: the bound is observable as bounded memory and
  // a still-correct recent window.
  const SloTracker::Status st = slo.status(t0 + std::chrono::milliseconds(999));
  EXPECT_EQ(st.windows.size(), 1u);
}

TEST(SloTracker, WindowBoundarySampleIsSelectedInclusively) {
  // A sample aged *exactly* windowSeconds is the window origin ("newest
  // sample at least w old" is >=, not >): the window must cover precisely
  // the traffic after it, not fall back to the zero origin.
  SloConfig cfg;
  cfg.availabilityTarget = 0.9;
  cfg.windowsSeconds = {60.0};
  SloTracker slo(cfg);
  std::atomic<std::uint64_t> good{50};
  std::atomic<std::uint64_t> total{100};
  slo.setAvailabilitySource([&] { return good.load(); },
                            [&] { return total.load(); });
  const Clock::time_point t0 = Clock::now();
  slo.sample(t0);  // 50/100 before the window
  good = 150;      // 100 more requests, all good, inside the window
  total = 200;
  const SloTracker::Status st = slo.status(t0 + seconds(60));
  ASSERT_EQ(st.windows.size(), 1u);
  // Boundary sample selected: the window sees only the clean 100. A
  // zero-origin fallback would report 150/200 = 0.75 and degrade.
  EXPECT_EQ(st.windows[0].total, 100u);
  EXPECT_EQ(st.windows[0].good, 100u);
  EXPECT_DOUBLE_EQ(st.windows[0].availability, 1.0);
  EXPECT_DOUBLE_EQ(st.windows[0].coveredSeconds, 60.0);
  EXPECT_FALSE(st.degraded);
}

TEST(SloTracker, FloodPrunedRingDegradesToTheZeroOrigin) {
  // When maxSamples evicts every sample old enough to serve as a window
  // origin (a scrape flood against a tiny ring), the window degrades to
  // the zero origin — full-life counts — instead of picking a too-young
  // origin and silently under-reporting.
  SloConfig cfg;
  cfg.windowsSeconds = {60.0};
  cfg.maxSamples = 4;
  SloTracker slo(cfg);
  std::atomic<std::uint64_t> good{80};
  std::atomic<std::uint64_t> total{100};
  slo.setAvailabilitySource([&] { return good.load(); },
                            [&] { return total.load(); });
  const Clock::time_point t0 = Clock::now();
  slo.sample(t0);  // would be the 60s origin, if it survived
  good = 180;
  total = 200;
  // Flood: 100 samples in the last second evict the t0 sample.
  for (int i = 0; i < 100; ++i)
    slo.sample(t0 + seconds(59) + std::chrono::milliseconds(i));
  const SloTracker::Status st = slo.status(t0 + seconds(60));
  ASSERT_EQ(st.windows.size(), 1u);
  EXPECT_EQ(st.windows[0].total, 200u);  // zero origin: everything
  EXPECT_EQ(st.windows[0].good, 180u);
  EXPECT_DOUBLE_EQ(st.windows[0].availability, 0.9);
}

// ---------------------------------------------------------------------------
// jsonEscape and /logz emission under hostile bytes

TEST(JsonEscape, EscapesEveryControlByteIncludingEmbeddedNul) {
  // Embedded NUL must escape, not terminate: the string_view length is
  // the contract, not the first zero byte.
  EXPECT_EQ(jsonEscape(std::string_view("a\0b", 3)), "a\\u0000b");
  // Named short escapes keep their JSON spellings.
  EXPECT_EQ(jsonEscape("\"\\\b\f\n\r\t"), "\\\"\\\\\\b\\f\\n\\r\\t");
  // Every remaining C0 byte and DEL become \u00xx.
  for (unsigned c = 1; c < 0x20; ++c) {
    if (c == '\b' || c == '\f' || c == '\n' || c == '\r' || c == '\t')
      continue;
    const char raw[2] = {char(c), '\0'};
    char expect[8];
    std::snprintf(expect, sizeof expect, "\\u%04x", c);
    EXPECT_EQ(jsonEscape(std::string_view(raw, 1)), expect) << "byte " << c;
  }
  EXPECT_EQ(jsonEscape("\x7f"), "\\u007f");
  // Bytes >= 0x80 pass through untouched — escaping them would corrupt
  // multi-byte UTF-8 sequences.
  EXPECT_EQ(jsonEscape("h\xc3\xa9llo \xe2\x86\x92"), "h\xc3\xa9llo \xe2\x86\x92");
  // A quoted escaped hostile string is valid JSON.
  const std::string hostile =
      "\"" + jsonEscape(std::string_view("x\0\x01\x1f\x7f\"\\\n", 8)) + "\"";
  EXPECT_TRUE(parsesAsJson(hostile)) << hostile;
}

TEST(LogRecorder, MessageWithEmbeddedNulSurvivesToJson) {
  LogRecorder rec;
  rec.log(LogLevel::kInfo, "test", std::string_view("ab\0cd", 5));
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  // The copied length is the record's contract; strlen would lie here.
  EXPECT_EQ(snap[0].record.msgLen, 5u);
  std::ostringstream os;
  rec.writeJsonLines(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("ab\\u0000cd"), std::string::npos) << line;
  EXPECT_TRUE(parsesAsJson(line.substr(0, line.find('\n')))) << line;
}

TEST(LogRecorder, HostileControlBytesNeverBreakTheJsonLines) {
  LogRecorder rec;
  rec.log(LogLevel::kWarn, "test", "tab\there \x01 and \x7f del");
  rec.log(LogLevel::kError, "test", std::string_view("nul\0nul", 7));
  // Oversized message with trailing hostile bytes: truncation keeps the
  // prefix and the line still parses.
  std::string big(200, 'x');
  big[10] = '\0';
  big[11] = '\x1f';
  rec.log(LogLevel::kInfo, "test", big);
  std::ostringstream os;
  rec.writeJsonLines(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(parsesAsJson(line)) << line;
  }
  EXPECT_EQ(n, 3u);
  EXPECT_NE(os.str().find("\\u0001"), std::string::npos);
  EXPECT_NE(os.str().find("\\u007f"), std::string::npos);
  EXPECT_NE(os.str().find("nul\\u0000nul"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram quantile edges and exemplars

TEST(Histogram, SingleObservationDrivesEveryQuantile) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(1.5);
  EXPECT_EQ(h.count(), 1u);
  // Every quantile lands in the (1, 2] bucket.
  EXPECT_GT(h.quantile(0.01), 1.0);
  EXPECT_LE(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, AllObservationsInOneBucketInterpolateInside) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  const double q50 = h.quantile(0.5);
  EXPECT_GT(q50, 1.0);
  EXPECT_LE(q50, 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);  // bucket upper bound
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);  // bucket lower bound
}

TEST(Histogram, ExemplarsRecordTheLastTracedObservationPerBucket) {
  Histogram h({1.0, 2.0});
  const TraceId a = makeTraceId();
  const TraceId b = makeTraceId();
  h.observe(0.5);            // untraced: no exemplar
  h.observe(1.5, a);
  h.observe(1.7, b);         // same bucket: last writer wins
  h.observe(5.0, TraceId{});  // invalid trace: counts, no exemplar
  const auto ex = h.exemplars();
  ASSERT_EQ(ex.size(), 3u);  // bounds + Inf
  EXPECT_FALSE(ex[0].valid());
  ASSERT_TRUE(ex[1].valid());
  EXPECT_EQ(ex[1].trace, b);
  EXPECT_DOUBLE_EQ(ex[1].value, 1.7);
  EXPECT_GT(ex[1].unixMs, 0);
  EXPECT_FALSE(ex[2].valid());
  EXPECT_EQ(h.count(), 4u);  // exemplars never change the counts
}

TEST(Histogram, ExemplarHammerEightThreadsStaysCoherent) {
  Histogram h({0.5, 1.0, 2.0});
  constexpr int kThreads = 8;
  constexpr int kEach = 500;
  std::vector<TraceId> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) ids[std::size_t(t)] = makeTraceId();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, &ids, t] {
      const double v = 0.25 * double(t % 4) + 0.1;  // spread across buckets
      for (int i = 0; i < kEach; ++i) h.observe(v, ids[std::size_t(t)]);
    });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(h.count(), std::uint64_t(kThreads * kEach));
  const auto ex = h.exemplars();
  ASSERT_EQ(ex.size(), 4u);
  // Every touched bucket ends with some thread's id and a value that maps
  // to that bucket (torn writes would break this).
  const std::vector<double>& bounds = h.bounds();
  for (std::size_t bkt = 0; bkt < ex.size(); ++bkt) {
    if (!ex[bkt].valid()) continue;
    EXPECT_NE(std::find(ids.begin(), ids.end(), ex[bkt].trace), ids.end());
    if (bkt < bounds.size()) {
      EXPECT_LE(ex[bkt].value, bounds[bkt]);
    }
    if (bkt > 0) {
      EXPECT_GT(ex[bkt].value, bounds[bkt - 1]);
    }
  }
}

}  // namespace
}  // namespace hsd::obs
