// Closing the DFM loop: detect hotspots with the trained ML framework,
// correct the reported clips with rule-based OPC, and re-verify with the
// lithography simulator — the "detected and corrected before mask
// synthesis" flow of the paper's introduction.
//
//   $ ./hotspot_fix
#include <cstdio>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "litho/opc.hpp"

int main() {
  using namespace hsd;

  // Train a detector on a synthetic set.
  data::GeneratorParams gp;
  gp.seed = 77;
  data::TrainingTargets targets;
  targets.hotspots = 30;
  targets.nonHotspots = 120;
  const auto training = data::generateTrainingSet(gp, targets);
  const core::Detector det =
      core::trainDetector(training.clips, core::TrainParams{});

  // Scan a testing layout.
  const data::TestLayout test =
      data::generateTestLayout(gp, 30000, 30000, 25, 0.7);
  const core::EvalResult res =
      core::evaluateLayout(det, test.layout, core::EvalParams{});
  std::printf("detector reported %zu hotspot clips on a %.0f um^2 layout\n",
              res.reported.size(), test.layout.areaUm2());

  // For each reported clip, verify with the simulator; when it confirms a
  // printability failure, apply rule-based OPC and re-check.
  const litho::LithoSimulator sim(gp.litho);
  litho::OpcRules rules;
  rules.minWidth = 170;
  rules.minSpace = 170;
  const auto& rects = test.layout.findLayer(gp.layer)->rects();
  const GridIndex idx(rects, 4800);

  std::size_t confirmed = 0, fixed = 0, residual = 0;
  for (const ClipWindow& w : res.reported) {
    std::vector<Rect> local;
    for (const std::size_t i : idx.query(w.clip))
      local.push_back(idx.rects()[i].intersect(w.clip));
    const litho::FixOutcome out =
        litho::detectAndFix(sim, local, w.core, w.clip, rules);
    if (!out.before.hotspot()) continue;  // ML false alarm
    ++confirmed;
    if (out.fixed())
      ++fixed;
    else
      ++residual;
  }
  std::printf("simulator confirmed %zu of them as printability failures\n",
              confirmed);
  std::printf("rule-based OPC fixed %zu, %zu need manual work\n", fixed,
              residual);
  if (confirmed > 0)
    std::printf("fix rate: %.0f%%\n", 100.0 * double(fixed) / double(confirmed));
  return 0;
}
