// Full production flow on one ICCAD-2012-style benchmark:
//   generate -> persist (GDSII + clip set) -> train -> save model ->
//   reload -> evaluate at three operating points -> score.
//
//   $ ./full_flow [output_dir]
//
// Demonstrates the persistence formats (GDSII stream, ASCII clip set,
// detector model file) and the ours/ours_med/ours_low operating points of
// Table II.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/evaluator.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  const std::string dir = argc > 1 ? argv[1] : ".";

  // 1. Generate a benchmark (spec shaped like Table I's benchmark5).
  data::BenchmarkSpec spec = data::iccad2012LikeSuite()[4];
  spec.targets.hotspots = 25;
  spec.targets.nonHotspots = 120;
  spec.width = 36000;
  spec.height = 36000;
  spec.sites = 30;
  const data::Benchmark bench = data::generateBenchmark(spec);
  std::printf("benchmark %s (%s): %zu training clips, layout %.0f um^2, "
              "%zu actual hotspots\n",
              bench.name.c_str(), bench.process.c_str(),
              bench.training.clips.size(), bench.test.layout.areaUm2(),
              bench.test.actualHotspots.size());

  // 2. Persist the data the way a real flow would.
  gds::writeGdsiiFile(dir + "/testing_layout.gds", bench.test.layout);
  gds::writeClipSetFile(dir + "/training_clips.txt", bench.training);
  std::printf("wrote %s/testing_layout.gds and %s/training_clips.txt\n",
              dir.c_str(), dir.c_str());

  // 3. Reload from disk (round trip) and train.
  const Layout layout = gds::readGdsiiFile(dir + "/testing_layout.gds");
  const gds::ClipSet training =
      gds::readClipSetFile(dir + "/training_clips.txt");
  engine::RunContext ctx;
  core::TrainParams tp;
  const core::Detector det = core::trainDetector(training.clips, tp, ctx);
  std::printf("trained %zu kernels in %.1fs (feedback=%s)\n",
              det.kernels.size(), det.stats.trainSeconds,
              det.hasFeedback ? "yes" : "no");

  // 4. Save + reload the detector model.
  {
    std::ofstream os(dir + "/detector.model");
    det.save(os);
  }
  std::ifstream is(dir + "/detector.model");
  const core::Detector reloaded = core::Detector::load(is);
  std::printf("model round-tripped through %s/detector.model\n", dir.c_str());

  // 5. Evaluate at the three operating points of Table II.
  struct Op {
    const char* name;
    double bias;
  };
  for (const Op op : {Op{"ours", 0.0}, Op{"ours_med", 0.3},
                      Op{"ours_low", 0.8}}) {
    core::EvalParams ep;
    ep.decisionBias = op.bias;
    const core::EvalResult res =
        core::evaluateLayout(reloaded, layout, ep, ctx);
    const core::Score s =
        core::scoreReports(res.reported, bench.test.actualHotspots);
    std::printf(
        "%-9s #hit %3zu/%zu  #extra %4zu  accuracy %5.1f%%  hit/extra %.3f "
        " (%.1fs)\n",
        op.name, s.hits, s.actualHotspots, s.extras, 100 * s.accuracy(),
        s.hitExtraRatio(), res.evalSeconds);
  }
  return 0;
}
