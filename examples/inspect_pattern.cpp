// Pattern-anatomy walkthrough: encode a clip core with the paper's
// machinery and print everything — directional strings, canonical
// topology key, MTCG tiles, rule rectangles and non-topological features.
// Useful for understanding what the detector actually "sees".
//
//   $ ./inspect_pattern
#include <cstdio>

#include "core/features.hpp"
#include "core/mtcg.hpp"
#include "core/topo_string.hpp"

namespace {

using namespace hsd;
using namespace hsd::core;

void printSide(const char* name, const std::vector<SliceCode>& side) {
  std::printf("  %-6s <", name);
  for (std::size_t i = 0; i < side.size(); ++i) {
    // Decode bits LSB-first into the paper's binary notation.
    std::printf("%s", i ? ", " : "");
    for (int b = 0; b < side[i].len; ++b)
      std::printf("%d", int((side[i].bits >> b) & 1));
  }
  std::printf(">\n");
}

const char* kindName(FeatKind k) {
  switch (k) {
    case FeatKind::kInternal: return "internal";
    case FeatKind::kExternal: return "external";
    case FeatKind::kDiagonal: return "diagonal";
    case FeatKind::kSegment:  return "segment";
  }
  return "?";
}

}  // namespace

int main() {
  // The paper's Fig. 8 "mountain": stacked blocks plus a plate above.
  CorePattern p;
  p.w = p.h = 1200;
  p.rects = {
      {200, 100, 400, 450},    // left foothill
      {500, 100, 700, 850},    // peak
      {800, 100, 1000, 550},   // right foothill
      {150, 1000, 1050, 1150}, // plate above
  };

  std::printf("== directional strings (Sec. III-B1) ==\n");
  const DirectionalStrings s = encodeStrings(p);
  printSide("bottom", s.bottom);
  printSide("right", s.right);
  printSide("top", s.top);
  printSide("left", s.left);
  std::printf("canonical orientation: %s\n",
              toString(canonicalOrient(p)));

  std::printf("\n== MTCG (Sec. III-C) ==\n");
  const Mtcg ch = buildCh(p);
  const Mtcg cv = buildCv(p);
  std::size_t blocks = 0;
  for (const Tile& t : ch.tiles) blocks += t.isBlock;
  std::printf("Ch: %zu tiles (%zu block), %zu diagonal edges\n",
              ch.tiles.size(), blocks, ch.diagonals.size());
  std::printf("Cv: %zu tiles\n", cv.tiles.size());

  std::printf("\n== critical features (Fig. 7/8) ==\n");
  for (const RuleRect& r : extractRuleRects(p))
    std::printf("  %-8s w=%-5lld h=%-5lld at (+%lld,+%lld) boundary=%d\n",
                kindName(r.kind), static_cast<long long>(r.w),
                static_cast<long long>(r.h), static_cast<long long>(r.dx),
                static_cast<long long>(r.dy), r.boundaryMark);

  const NonTopoFeatures nt = extractNonTopo(p);
  std::printf("\n== non-topological features (Fig. 7e) ==\n");
  std::printf("  corners=%d touch-points=%d min-width=%lld nm "
              "min-space=%lld nm density=%.3f\n",
              nt.corners, nt.touchPoints,
              static_cast<long long>(nt.minInternal),
              static_cast<long long>(nt.minExternal), nt.density);

  FeatureParams fp;
  std::printf("\nfixed-length SVM vector: %zu dims\n",
              buildFeatureVector(p, fp).size());
  return 0;
}
