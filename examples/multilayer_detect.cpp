// Multilayer hotspot detection (Sec. IV-A): hotspots formed by the
// interaction of two metal layers — a small metal1/metal2 crossing overlap
// is the hotspot signature; either layer alone looks harmless.
//
//   $ ./multilayer_detect
#include <cstdio>
#include <random>

#include "core/multilayer.hpp"

namespace {

using namespace hsd;

// Metal1 horizontal bar crossed by a metal2 vertical bar of width
// `overlapSize`; the label tracks the landing-pad overlap margin.
Clip crossing(Coord overlapSize, Label label, Coord jx, Coord jy) {
  const ClipParams p;
  Clip c(ClipWindow::atCore({1800, 1800}, p), label);
  c.setRects(1, {{1900 + jx, 2300 + jy, 2900 + jx, 2500 + jy}});
  c.setRects(2, {{2300 + jx, 1900 + jy, 2300 + jx + overlapSize, 2900 + jy}});
  return c;
}

}  // namespace

int main() {
  using namespace hsd;
  std::mt19937 rng(11);
  std::uniform_int_distribution<Coord> j(-150, 150);

  std::vector<Clip> training;
  for (int i = 0; i < 12; ++i)
    training.push_back(crossing(80, Label::kHotspot, j(rng), j(rng)));
  for (int i = 0; i < 40; ++i)
    training.push_back(crossing(320, Label::kNonHotspot, j(rng), j(rng)));

  core::MultiLayerParams mp;
  mp.layers = {1, 2};
  const auto det = core::MultiLayerDetector::train(training, mp);
  std::printf("multilayer detector: %zu kernels, feature dim %zu "
              "(2 layer sets + 1 overlap set)\n",
              det.kernels.size(), core::multiLayerFeatureDim(mp));

  int correct = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    const bool hot = i % 2 == 0;
    const Clip probe =
        crossing(hot ? 90 : 300, Label::kUnknown, j(rng), j(rng));
    const bool flagged = det.evaluateClip(probe);
    correct += (flagged == hot);
    ++total;
  }
  std::printf("unseen two-layer probes: %d/%d classified correctly\n",
              correct, total);
  std::printf("note: the overlap geometry is the only separating signal —\n"
              "each individual layer is identical between the classes.\n");
  return correct >= total * 3 / 4 ? 0 : 1;
}
