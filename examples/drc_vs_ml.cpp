// The paper's opening motivation, demonstrated: design-rule checking is
// not enough. We sweep generated clips, keep only the DRC-CLEAN ones, and
// show that a meaningful fraction of them still fail lithography — and
// that the trained ML detector catches most of those, which a rule deck
// cannot.
//
//   $ ./drc_vs_ml
#include <cstdio>

#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "drc/drc.hpp"
#include "litho/litho.hpp"

int main() {
  using namespace hsd;

  data::GeneratorParams gp;
  gp.seed = 2013;  // DAC'13

  // A rule deck at the synthetic process's risky limits: everything the
  // fab can express as simple width/space rules.
  drc::DrcRules rules;
  rules.minWidth = gp.dims.riskyWidth;   // 105 nm
  rules.minSpace = gp.dims.riskySpace;   // 110 nm

  // Train the detector on an independent training set.
  data::TrainingTargets t;
  t.hotspots = 40;
  t.nonHotspots = 160;
  const auto training = data::generateTrainingSet(gp, t);
  const core::Detector det =
      core::trainDetector(training.clips, core::TrainParams{});

  // Fresh evaluation clips.
  gp.seed = 4242;
  t.hotspots = 60;
  t.nonHotspots = 240;
  const auto eval = data::generateTrainingSet(gp, t);

  std::size_t drcClean = 0, cleanButHotspot = 0, mlCaught = 0;
  std::size_t drcDirty = 0, dirtyHotspot = 0;
  for (const Clip& c : eval.clips) {
    const auto violations =
        drc::checkRects(c.localCoreRects(gp.layer), rules, 1);
    const bool hotspot = c.label() == Label::kHotspot;
    if (violations.empty()) {
      ++drcClean;
      if (hotspot) {
        ++cleanButHotspot;
        if (det.evaluateClip(c)) ++mlCaught;
      }
    } else {
      ++drcDirty;
      dirtyHotspot += hotspot;
    }
  }

  std::printf("evaluated %zu clips against a %lld/%lld nm width/space rule "
              "deck:\n",
              eval.clips.size(), (long long)rules.minWidth,
              (long long)rules.minSpace);
  std::printf("  DRC-dirty clips: %zu (%zu of them are litho hotspots)\n",
              drcDirty, dirtyHotspot);
  std::printf("  DRC-clean clips: %zu\n", drcClean);
  std::printf("  ... of which %zu STILL fail lithography "
              "(rule decks can't see them)\n",
              cleanButHotspot);
  if (cleanButHotspot > 0)
    std::printf("  ... and the ML detector catches %zu of those (%.0f%%)\n",
                mlCaught, 100.0 * double(mlCaught) / double(cleanButHotspot));
  return 0;
}
