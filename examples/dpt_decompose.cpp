// Double-patterning extension (Sec. IV-B): decompose dense patterns onto
// two masks, detect native conflicts, and build the three-set DPT feature
// vector used for DPT-aware hotspot detection.
//
//   $ ./dpt_decompose
#include <cstdio>

#include "core/dpt.hpp"

int main() {
  using namespace hsd;
  core::DptParams dp;
  dp.minSameMaskSpacing = 160;

  // Case 1: a dense alternating line array (decomposable).
  core::CorePattern lines;
  lines.w = lines.h = 1200;
  for (int i = 0; i < 5; ++i)
    lines.rects.push_back({i * 220, 0, i * 220 + 110, 1200});
  const core::DptDecomposition d1 =
      core::decomposeDpt(lines.rects, dp.minSameMaskSpacing);
  std::printf("dense line array: decomposable=%s, mask1=%zu rects, "
              "mask2=%zu rects\n",
              d1.decomposable ? "yes" : "no", d1.mask1.size(),
              d1.mask2.size());

  // Case 2: a triangle of mutually-close features (native conflict).
  core::CorePattern tri;
  tri.w = tri.h = 1200;
  tri.rects = {{0, 0, 100, 100}, {150, 0, 250, 100}, {75, 150, 175, 250}};
  const core::DptDecomposition d2 =
      core::decomposeDpt(tri.rects, dp.minSameMaskSpacing);
  std::printf("conflict triangle: decomposable=%s (native DPT conflict)\n",
              d2.decomposable ? "yes" : "no");

  // Feature vectors: mask1 | mask2 | full | decomposable-flag.
  const auto v1 = core::buildDptFeatureVector(lines, dp);
  const auto v2 = core::buildDptFeatureVector(tri, dp);
  std::printf("DPT feature dim: %zu (3 x %zu + flag)\n", v1.size(),
              dp.features.dim());
  std::printf("flags: lines=%.0f triangle=%.0f\n", v1.back(), v2.back());

  // Per-mask pitch relaxation: min external spacing doubles on each mask.
  const core::NonTopoFeatures full = core::extractNonTopo(lines);
  core::CorePattern m1{1200, 1200, d1.mask1};
  const core::NonTopoFeatures mask1 = core::extractNonTopo(m1);
  std::printf("min space: full pattern %lld nm -> mask1 %lld nm\n",
              static_cast<long long>(full.minExternal),
              static_cast<long long>(mask1.minExternal));
  return 0;
}
