// Hierarchical design flow: build an arrayed design as a cell library
// (the structure of the contest's Array_benchmark layouts), write it as
// hierarchical GDSII with AREF records, read it back, flatten, and run
// hotspot detection over the flattened geometry.
//
//   $ ./hierarchical_design
#include <cstdio>
#include <sstream>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "gds/gdsii.hpp"
#include "layout/hierarchy.hpp"

int main() {
  using namespace hsd;

  // A unit tile: safe wire fabric with one risky U-shape motif inside.
  data::GeneratorParams gp;
  gp.seed = 77;
  data::Rng rng(9);
  CellLibrary lib;
  Cell& tile = lib.addCell("TILE");
  for (const Rect& r : data::wireFabric({0, 0, 1400, 8000}, gp.dims.safeWidth,
                                        gp.dims.safeWidth + gp.dims.safeSpace))
    tile.addRect(gp.layer, r);
  Cell& motif = lib.addCell("MOTIF");
  for (const Rect& r :
       data::makeMotif(data::MotifKind::kUShape, data::Risk::kRisky,
                       data::AmbitStyle::kEmpty, gp.dims, gp.clip, rng))
    motif.addRect(gp.layer, r);

  // Top: an 8x3 tile array with two motif placements (one mirrored).
  Cell& top = lib.addCell("TOP");
  top.addInstance({"TILE", {Orient::R0, {0, 0}}, 16, 3, {1400, 0}, {0, 8200}});
  top.addInstance({"MOTIF", {Orient::R0, {5600, 8600}}, 1, 1, {}, {}});
  top.addInstance({"MOTIF", {Orient::MY, {22000, 300}}, 1, 1, {}, {}});
  lib.setTop("TOP");

  std::printf("cell library: %zu cells, %zu flat polygons\n",
              lib.cellCount(), lib.flatPolygonCount());

  // Hierarchical GDSII round trip.
  std::stringstream gds(std::ios::in | std::ios::out | std::ios::binary);
  gds::writeGdsiiHierarchy(gds, lib);
  const CellLibrary back = gds::readGdsiiHierarchy(gds);
  const Layout flat = back.flatten();
  std::printf("GDSII round trip: %zu cells -> flattened %zu polygons, "
              "%.0f um^2\n",
              back.cellCount(), flat.polygonCount(), flat.areaUm2());

  // Detect over the flattened design.
  data::TrainingTargets t;
  t.hotspots = 30;
  t.nonHotspots = 120;
  const auto training = data::generateTrainingSet(gp, t);
  const core::Detector det =
      core::trainDetector(training.clips, core::TrainParams{});
  const core::EvalResult res =
      core::evaluateLayout(det, flat, core::EvalParams{});
  std::printf("detection: %zu candidates, %zu reported hotspot clips\n",
              res.candidateClips, res.reported.size());

  // The two motif placements should both be found.
  std::size_t nearMotifs = 0;
  for (const ClipWindow& w : res.reported) {
    for (const Point origin : {Point{5600, 8600}, Point{22000, 300}}) {
      const Rect zone{origin.x, origin.y, origin.x + 4800, origin.y + 4800};
      if (w.core.overlaps(zone)) {
        ++nearMotifs;
        break;
      }
    }
  }
  std::printf("%zu reports land on the two placed motifs\n", nearMotifs);
  return nearMotifs >= 2 ? 0 : 1;
}
