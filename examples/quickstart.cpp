// Quickstart: generate a small synthetic benchmark, train the hotspot
// detector, evaluate a testing layout and score the result.
//
//   $ ./quickstart
//
// This walks the whole public API surface: data generation -> training
// (topological classification, multiple SVM kernels, feedback kernel) ->
// evaluation (clip extraction, kernel voting, redundant clip removal) ->
// hit/extra scoring.
#include <cstdio>

#include "core/evaluator.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"

int main() {
  using namespace hsd;

  // 1. Synthetic benchmark: ~30 hotspot / 120 non-hotspot training clips
  //    and a 30x30 um testing layout with 25 embedded motif sites.
  data::GeneratorParams gp;
  gp.seed = 42;
  data::TrainingTargets targets;
  targets.hotspots = 30;
  targets.nonHotspots = 120;
  const gds::ClipSet training = data::generateTrainingSet(gp, targets);
  const data::TestLayout test =
      data::generateTestLayout(gp, 30000, 30000, 25, 0.6);

  std::size_t hs = 0;
  for (const Clip& c : training.clips)
    if (c.label() == Label::kHotspot) ++hs;
  std::printf("training: %zu clips (%zu hotspot / %zu non-hotspot)\n",
              training.clips.size(), hs, training.clips.size() - hs);
  std::printf("testing layout: %.0f um^2, %zu motif sites, %zu actual hotspots\n",
              test.layout.areaUm2(), test.motifSites,
              test.actualHotspots.size());

  // 2. Train the detector. One RunContext (thread pool + per-stage stats)
  //    is shared by training and evaluation.
  engine::RunContext ctx;
  core::TrainParams tp;
  const core::Detector det = core::trainDetector(training.clips, tp, ctx);
  std::printf(
      "trained %zu kernels (%zu hotspot clusters, %zu->%zu non-hotspot "
      "downsampling), feedback=%s, %.1fs\n",
      det.kernels.size(), det.stats.hotspotClusters,
      det.stats.rawNonHotspots, det.stats.balancedNonHotspots,
      det.hasFeedback ? "yes" : "no", det.stats.trainSeconds);

  // 3. Evaluate the layout (streams extraction -> kernels -> feedback ->
  //    removal as one staged pipeline on the shared context).
  core::EvalParams ep;
  const core::EvalResult res = core::evaluateLayout(det, test.layout, ep, ctx);
  std::printf("evaluation: %zu candidate clips, %zu flagged, %zu reported, %.1fs\n",
              res.candidateClips, res.flaggedBeforeRemoval,
              res.reported.size(), res.evalSeconds);
  std::printf("engine stages: %s\n", ctx.stats().toJson().c_str());

  // 4. Score.
  const core::Score score =
      core::scoreReports(res.reported, test.actualHotspots);
  std::printf("score: %zu/%zu hits (accuracy %.1f%%), %zu extras, h/e %.3f\n",
              score.hits, score.actualHotspots, 100.0 * score.accuracy(),
              score.extras, score.hitExtraRatio());
  return 0;
}
