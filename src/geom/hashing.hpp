// Stable 64-bit geometry hashing for content-addressed caching. The stage
// cache (engine/cache.hpp) keys results on (stage, config fingerprint,
// window-content hash); this header supplies the geometry half: a strong
// mixer, an order-independent rect-set hash (so query/decomposition order
// never changes the key), and grid snapping to canonicalize window
// placement. All hashes are pure functions of the coordinate values —
// stable across runs, platforms and thread counts, never pointer- or
// iteration-order-dependent.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

#include "geom/rect.hpp"

namespace hsd {

/// splitmix64 finalizer: a full-avalanche 64-bit mix. Zero maps away from
/// zero, so absent/empty inputs still produce distinctive hashes.
constexpr std::uint64_t hashMix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-*dependent* combine (for sequences whose order is meaningful).
constexpr std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t v) {
  return hashMix(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

/// FNV-1a over a byte string (stage names, config text).
constexpr std::uint64_t hashString(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= std::uint64_t(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t hashCoord(Coord c) {
  return hashMix(static_cast<std::uint64_t>(c));
}

/// Exact-bit hash of a double (no rounding: 1e-12 parameter nudges
/// produce distinct fingerprints, which is what cache invalidation wants).
constexpr std::uint64_t hashDouble(double d) {
  return hashMix(std::bit_cast<std::uint64_t>(d));
}

constexpr std::uint64_t hashPoint(const Point& p) {
  return hashCombine(hashCoord(p.x), hashCoord(p.y));
}

constexpr std::uint64_t hashRect(const Rect& r) {
  return hashCombine(hashPoint(r.lo), hashPoint(r.hi));
}

/// Order-independent hash of a rect set: commutative accumulation (sum and
/// xor of per-rect mixes, plus the count), so the same set of rects hashes
/// identically no matter how a spatial query or band decomposition ordered
/// them. Duplicated rects *do* change the hash (multiset semantics).
std::uint64_t hashRectsUnordered(const std::vector<Rect>& rects);

/// Largest multiple of `grid` that is <= c (floor snapping; grid <= 0 is
/// identity).
constexpr Coord snapDown(Coord c, Coord grid) {
  if (grid <= 0) return c;
  const Coord q = c / grid;
  return (c % grid != 0 && c < 0) ? (q - 1) * grid : q * grid;
}

/// Smallest multiple of `grid` that is >= c.
constexpr Coord snapUp(Coord c, Coord grid) {
  if (grid <= 0) return c;
  const Coord q = c / grid;
  return (c % grid != 0 && c > 0) ? (q + 1) * grid : q * grid;
}

/// Canonical grid-aligned cover of `r`: lo floored, hi ceiled to `grid`.
/// Snapping windows before hashing makes near-identical anchor placements
/// share one canonical key (and one cache entry).
constexpr Rect snappedToGrid(const Rect& r, Coord grid) {
  return {Point{snapDown(r.lo.x, grid), snapDown(r.lo.y, grid)},
          Point{snapUp(r.hi.x, grid), snapUp(r.hi.y, grid)}};
}

/// Content hash of `rects` viewed from window `window`: every rect is
/// translated so the window's lower-left corner becomes the origin, then
/// hashed order-independently together with the window's dimensions. Two
/// windows at different absolute positions with identical local geometry
/// (the repeated-pattern case) produce the same hash — the property that
/// makes the stage cache content-addressed rather than position-addressed.
std::uint64_t hashWindowContent(const Rect& window,
                                const std::vector<Rect>& rects);

}  // namespace hsd
