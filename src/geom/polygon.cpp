#include "geom/polygon.hpp"

#include <algorithm>
#include <cstdlib>

#include "geom/interval.hpp"

namespace hsd {

bool Polygon::isRectilinear() const {
  const std::size_t n = pts_.size();
  if (n < 4 || n % 2 != 0) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = pts_[i];
    const Point& b = pts_[(i + 1) % n];
    const bool horiz = a.y == b.y && a.x != b.x;
    const bool vert = a.x == b.x && a.y != b.y;
    if (!horiz && !vert) return false;
  }
  return true;
}

Rect Polygon::bbox() const {
  if (pts_.empty()) return {};
  Rect bb{pts_.front(), pts_.front()};
  for (const Point& p : pts_) {
    bb.lo.x = std::min(bb.lo.x, p.x);
    bb.lo.y = std::min(bb.lo.y, p.y);
    bb.hi.x = std::max(bb.hi.x, p.x);
    bb.hi.y = std::max(bb.hi.y, p.y);
  }
  return bb;
}

Area Polygon::area() const {
  // Shoelace formula; rectilinear edges make every term exact.
  const std::size_t n = pts_.size();
  if (n < 4) return 0;
  Area twice = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = pts_[i];
    const Point& b = pts_[(i + 1) % n];
    twice += Area(a.x) * b.y - Area(b.x) * a.y;
  }
  return std::abs(twice) / 2;
}

namespace {

// Vertical edge of the polygon: x position and its y-span (lo < hi).
struct VEdge {
  Coord x;
  Coord ylo;
  Coord yhi;
};

}  // namespace

std::vector<Rect> Polygon::sliceHorizontal() const {
  const std::size_t n = pts_.size();
  std::vector<Rect> out;
  if (n < 4) return out;

  std::vector<VEdge> edges;
  std::vector<Coord> ys;
  edges.reserve(n / 2);
  ys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = pts_[i];
    const Point& b = pts_[(i + 1) % n];
    if (a.x == b.x && a.y != b.y)
      edges.push_back({a.x, std::min(a.y, b.y), std::max(a.y, b.y)});
    ys.push_back(a.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // For each horizontal band between consecutive cut lines, the vertical
  // edges spanning the band cross it exactly; pairing their sorted x
  // positions (even-odd rule) yields the interior intervals.
  for (std::size_t bi = 0; bi + 1 < ys.size(); ++bi) {
    const Coord y1 = ys[bi];
    const Coord y2 = ys[bi + 1];
    std::vector<Coord> xs;
    for (const VEdge& e : edges)
      if (e.ylo <= y1 && e.yhi >= y2) xs.push_back(e.x);
    std::sort(xs.begin(), xs.end());
    for (std::size_t k = 0; k + 1 < xs.size(); k += 2)
      if (xs[k] < xs[k + 1]) out.push_back({xs[k], y1, xs[k + 1], y2});
  }
  return out;
}

std::vector<Rect> Polygon::sliceVertical() const {
  const std::size_t n = pts_.size();
  std::vector<Rect> out;
  if (n < 4) return out;

  struct HEdge {
    Coord y;
    Coord xlo;
    Coord xhi;
  };
  std::vector<HEdge> edges;
  std::vector<Coord> xs;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = pts_[i];
    const Point& b = pts_[(i + 1) % n];
    if (a.y == b.y && a.x != b.x)
      edges.push_back({a.y, std::min(a.x, b.x), std::max(a.x, b.x)});
    xs.push_back(a.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  for (std::size_t bi = 0; bi + 1 < xs.size(); ++bi) {
    const Coord x1 = xs[bi];
    const Coord x2 = xs[bi + 1];
    std::vector<Coord> ys;
    for (const HEdge& e : edges)
      if (e.xlo <= x1 && e.xhi >= x2) ys.push_back(e.y);
    std::sort(ys.begin(), ys.end());
    for (std::size_t k = 0; k + 1 < ys.size(); k += 2)
      if (ys[k] < ys[k + 1]) out.push_back({x1, ys[k], x2, ys[k + 1]});
  }
  return out;
}

}  // namespace hsd
