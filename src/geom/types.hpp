// Basic integer geometry types for layout manipulation.
//
// All coordinates are in database units (1 dbu = 1 nm for this project).
// Signed 64-bit coordinates: a full-reticle layout at 1 nm resolution is
// ~1e8 dbu, so products of two coordinates (areas) still fit comfortably.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace hsd {

/// Database-unit coordinate (1 dbu = 1 nm).
using Coord = std::int64_t;
/// Area in dbu^2. Large enough for full-chip areas at nm resolution.
using Area = std::int64_t;

/// A 2-D point in database units.
struct Point {
  Coord x = 0;
  Coord y = 0;

  constexpr Point() = default;
  constexpr Point(Coord x_, Coord y_) : x(x_), y(y_) {}

  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

/// Manhattan distance between two points.
constexpr Coord manhattan(const Point& a, const Point& b) {
  const Coord dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

}  // namespace hsd

template <>
struct std::hash<hsd::Point> {
  std::size_t operator()(const hsd::Point& p) const noexcept {
    const std::uint64_t h1 = std::hash<hsd::Coord>{}(p.x);
    const std::uint64_t h2 = std::hash<hsd::Coord>{}(p.y);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
