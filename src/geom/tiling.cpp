#include "geom/tiling.hpp"

#include <algorithm>

#include "geom/interval.hpp"
#include "geom/rectset.hpp"

namespace hsd {

namespace {

// Merge vertically adjacent tiles with identical x-span and type.
std::vector<Tile> mergeVertically(std::vector<Tile> tiles) {
  std::sort(tiles.begin(), tiles.end(), [](const Tile& a, const Tile& b) {
    if (a.box.lo.x != b.box.lo.x) return a.box.lo.x < b.box.lo.x;
    if (a.box.hi.x != b.box.hi.x) return a.box.hi.x < b.box.hi.x;
    if (a.isBlock != b.isBlock) return a.isBlock < b.isBlock;
    return a.box.lo.y < b.box.lo.y;
  });
  std::vector<Tile> out;
  for (const Tile& t : tiles) {
    if (!out.empty()) {
      Tile& p = out.back();
      if (p.box.lo.x == t.box.lo.x && p.box.hi.x == t.box.hi.x &&
          p.isBlock == t.isBlock && p.box.hi.y == t.box.lo.y) {
        p.box.hi.y = t.box.hi.y;
        continue;
      }
    }
    out.push_back(t);
  }
  return out;
}

// Merge horizontally adjacent tiles with identical y-span and type.
std::vector<Tile> mergeHorizontally(std::vector<Tile> tiles) {
  std::sort(tiles.begin(), tiles.end(), [](const Tile& a, const Tile& b) {
    if (a.box.lo.y != b.box.lo.y) return a.box.lo.y < b.box.lo.y;
    if (a.box.hi.y != b.box.hi.y) return a.box.hi.y < b.box.hi.y;
    if (a.isBlock != b.isBlock) return a.isBlock < b.isBlock;
    return a.box.lo.x < b.box.lo.x;
  });
  std::vector<Tile> out;
  for (const Tile& t : tiles) {
    if (!out.empty()) {
      Tile& p = out.back();
      if (p.box.lo.y == t.box.lo.y && p.box.hi.y == t.box.hi.y &&
          p.isBlock == t.isBlock && p.box.hi.x == t.box.lo.x) {
        p.box.hi.x = t.box.hi.x;
        continue;
      }
    }
    out.push_back(t);
  }
  return out;
}

}  // namespace

std::vector<Tile> horizontalTiling(const std::vector<Rect>& blocksIn,
                                   const Rect& window) {
  const std::vector<Rect> blocks = clipRects(blocksIn, window);
  // Cut lines: every block edge y plus the window bounds.
  std::vector<Coord> ys{window.lo.y, window.hi.y};
  for (const Rect& r : blocks) {
    ys.push_back(r.lo.y);
    ys.push_back(r.hi.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Tile> tiles;
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    const Coord y1 = ys[i];
    const Coord y2 = ys[i + 1];
    if (y1 < window.lo.y || y2 > window.hi.y || y1 >= y2) continue;
    const std::vector<Interval> cov = coveredX(blocks, y1, y2);
    for (const Interval& iv : cov) {
      const Coord lo = std::max(iv.lo, window.lo.x);
      const Coord hi = std::min(iv.hi, window.hi.x);
      if (lo < hi) tiles.push_back({Rect{lo, y1, hi, y2}, true});
    }
    for (const Interval& iv :
         complementIntervals(cov, {window.lo.x, window.hi.x}))
      tiles.push_back({Rect{iv.lo, y1, iv.hi, y2}, false});
  }
  return mergeVertically(std::move(tiles));
}

std::vector<Tile> verticalTiling(const std::vector<Rect>& blocksIn,
                                 const Rect& window) {
  const std::vector<Rect> blocks = clipRects(blocksIn, window);
  std::vector<Coord> xs{window.lo.x, window.hi.x};
  for (const Rect& r : blocks) {
    xs.push_back(r.lo.x);
    xs.push_back(r.hi.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<Tile> tiles;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const Coord x1 = xs[i];
    const Coord x2 = xs[i + 1];
    if (x1 < window.lo.x || x2 > window.hi.x || x1 >= x2) continue;
    const std::vector<Interval> cov = coveredY(blocks, x1, x2);
    for (const Interval& iv : cov) {
      const Coord lo = std::max(iv.lo, window.lo.y);
      const Coord hi = std::min(iv.hi, window.hi.y);
      if (lo < hi) tiles.push_back({Rect{x1, lo, x2, hi}, true});
    }
    for (const Interval& iv :
         complementIntervals(cov, {window.lo.y, window.hi.y}))
      tiles.push_back({Rect{x1, iv.lo, x2, iv.hi}, false});
  }
  return mergeHorizontally(std::move(tiles));
}

namespace {

std::size_t tilesAlong(Coord extent, Coord tileSize) {
  if (extent <= 0) return 1;
  return std::size_t((extent + tileSize - 1) / tileSize);
}

std::size_t axisIndex(Coord p, Coord lo, Coord tileSize, std::size_t n) {
  if (p <= lo) return 0;
  const std::size_t i = std::size_t((p - lo) / tileSize);
  return std::min(i, n - 1);
}

}  // namespace

GridTiling GridTiling::over(const Rect& bounds, Coord tileSize) {
  assert(tileSize > 0);
  GridTiling g;
  g.bounds = bounds;
  g.tileSize = tileSize;
  g.nx = tilesAlong(bounds.width(), tileSize);
  g.ny = tilesAlong(bounds.height(), tileSize);
  return g;
}

Rect GridTiling::tileBox(std::size_t id) const {
  assert(id < tileCount());
  const std::size_t ix = id % nx;
  const std::size_t iy = id / nx;
  const Point lo{bounds.lo.x + Coord(ix) * tileSize,
                 bounds.lo.y + Coord(iy) * tileSize};
  return {lo, Point{std::min(lo.x + tileSize, bounds.hi.x),
                    std::min(lo.y + tileSize, bounds.hi.y)}};
}

std::size_t GridTiling::ownerOf(const Point& p) const {
  return axisIndex(p.y, bounds.lo.y, tileSize, ny) * nx +
         axisIndex(p.x, bounds.lo.x, tileSize, nx);
}

}  // namespace hsd
