// Pixelated polygon-density representation of a window (Sec. III-B2).
// Each pixel stores the fraction of its area covered by polygons — the
// d_k values of Eq. (1). Also used by the litho simulator's rasterizer and
// by the clip-extraction density screen.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/orientation.hpp"
#include "geom/rect.hpp"

namespace hsd {

/// Rasterize `rects` (clipped to `window`) onto `vals` — nx*ny doubles,
/// row-major from the window's lower-left, overwritten (zeroed first,
/// saturated to 1.0 after). The allocation-free core of the DensityGrid
/// ctor: callers on the hot path hand in arena scratch. Dispatched (AVX2
/// across pixels of a row when available; HSD_SIMD=scalar forces the
/// portable path) and byte-identical to rasterizeDensityReference at
/// every input — tests/test_hotpath.cpp pins this.
void rasterizeDensity(const std::vector<Rect>& rects, const Rect& window,
                      std::size_t nx, std::size_t ny, double* vals);

/// The scalar oracle: the original pixel-at-a-time overlap loop,
/// unchanged. Kept for the byte-identity tests.
void rasterizeDensityReference(const std::vector<Rect>& rects,
                               const Rect& window, std::size_t nx,
                               std::size_t ny, double* vals);

/// A nx-by-ny grid of polygon densities over a window.
class DensityGrid {
 public:
  DensityGrid() = default;
  /// Rasterize `rects` (clipped to `window`) onto an nx-by-ny grid.
  /// Overlapping rects saturate: density is of the union when inputs are
  /// disjoint; callers pass decomposed (disjoint) rects for exactness.
  DensityGrid(const std::vector<Rect>& rects, const Rect& window,
              std::size_t nx, std::size_t ny);

  /// Wrap precomputed pixel values (e.g. a cluster-centroid mean grid).
  DensityGrid(const Rect& window, std::size_t nx, std::size_t ny,
              std::vector<double> values)
      : nx_(nx), ny_(ny), window_(window), vals_(std::move(values)) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  const Rect& window() const { return window_; }

  /// Density of pixel (ix, iy), row-major from the window's lower-left.
  double at(std::size_t ix, std::size_t iy) const {
    return vals_[iy * nx_ + ix];
  }
  const std::vector<double>& values() const { return vals_; }

  /// Mean density over all pixels (== union area / window area when the
  /// input rects are disjoint).
  double mean() const;

  /// L1 distance to `other` under orientation `o` applied to *other*:
  /// sum_k |d_k(this) - d_k(o(other))|. Grids must have square-compatible
  /// dimensions when o swaps axes.
  double l1Distance(const DensityGrid& other, Orient o) const;

  /// Eq. (1): min over the eight orientations of the L1 pixel distance.
  double distance(const DensityGrid& other) const;

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  Rect window_;
  std::vector<double> vals_;
};

}  // namespace hsd
