// 1-D closed intervals and merged interval sets. Used by polygon slicing,
// tiling and union-area computation.
#pragma once

#include <algorithm>
#include <compare>
#include <vector>

#include "geom/types.hpp"

namespace hsd {

/// Closed 1-D interval [lo, hi]; empty when hi <= lo.
struct Interval {
  Coord lo = 0;
  Coord hi = 0;

  constexpr Interval() = default;
  constexpr Interval(Coord l, Coord h) : lo(l), hi(h) {}

  friend constexpr auto operator<=>(const Interval&, const Interval&) = default;

  constexpr Coord length() const { return hi - lo; }
  constexpr bool empty() const { return hi <= lo; }
  constexpr bool overlaps(const Interval& o) const {
    return lo < o.hi && o.lo < hi;
  }
  constexpr bool touches(const Interval& o) const {
    return lo <= o.hi && o.lo <= hi;
  }
  constexpr bool contains(Coord v) const { return v >= lo && v <= hi; }
};

/// Sort and merge touching/overlapping intervals into a disjoint ascending
/// list; drops empty intervals.
inline std::vector<Interval> mergeIntervals(std::vector<Interval> iv) {
  std::erase_if(iv, [](const Interval& i) { return i.empty(); });
  std::sort(iv.begin(), iv.end());
  std::vector<Interval> out;
  for (const Interval& i : iv) {
    if (!out.empty() && i.lo <= out.back().hi)
      out.back().hi = std::max(out.back().hi, i.hi);
    else
      out.push_back(i);
  }
  return out;
}

/// Complement of a merged interval list within [domain.lo, domain.hi].
/// `iv` must already be disjoint and ascending (see mergeIntervals).
inline std::vector<Interval> complementIntervals(
    const std::vector<Interval>& iv, const Interval& domain) {
  std::vector<Interval> out;
  Coord cursor = domain.lo;
  for (const Interval& i : iv) {
    if (i.hi <= domain.lo || i.lo >= domain.hi) continue;
    const Coord lo = std::max(i.lo, domain.lo);
    const Coord hi = std::min(i.hi, domain.hi);
    if (lo > cursor) out.push_back({cursor, lo});
    cursor = std::max(cursor, hi);
  }
  if (cursor < domain.hi) out.push_back({cursor, domain.hi});
  return out;
}

/// Total length covered by a merged interval list.
inline Coord totalLength(const std::vector<Interval>& iv) {
  Coord sum = 0;
  for (const Interval& i : iv) sum += i.length();
  return sum;
}

}  // namespace hsd
