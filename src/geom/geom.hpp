// Umbrella header for the hsd geometry library.
#pragma once

#include "geom/density_grid.hpp"
#include "geom/interval.hpp"
#include "geom/orientation.hpp"
#include "geom/polygon.hpp"
#include "geom/rect.hpp"
#include "geom/rectset.hpp"
#include "geom/tiling.hpp"
#include "geom/types.hpp"
