#include "geom/hashing.hpp"

namespace hsd {

std::uint64_t hashRectsUnordered(const std::vector<Rect>& rects) {
  // Commutative accumulators: per-rect mixes combined by + and ^ are
  // independent of iteration order; folding both (plus the count) keeps
  // collision resistance close to an ordered combine.
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  for (const Rect& r : rects) {
    const std::uint64_t h = hashRect(r);
    sum += h;
    xr ^= hashMix(h);
  }
  std::uint64_t out = hashMix(rects.size());
  out = hashCombine(out, sum);
  out = hashCombine(out, xr);
  return out;
}

std::uint64_t hashWindowContent(const Rect& window,
                                const std::vector<Rect>& rects) {
  const Point origin = window.lo;
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  for (const Rect& r : rects) {
    const std::uint64_t h = hashRect(r.translated({-origin.x, -origin.y}));
    sum += h;
    xr ^= hashMix(h);
  }
  std::uint64_t out =
      hashCombine(hashCoord(window.width()), hashCoord(window.height()));
  out = hashCombine(out, hashMix(rects.size()));
  out = hashCombine(out, sum);
  out = hashCombine(out, xr);
  return out;
}

}  // namespace hsd
