// Axis-aligned rectangle with closed-open-free semantics: a Rect stores its
// lower-left and upper-right corners; geometric predicates distinguish
// "overlap" (positive-area intersection) from "touch" (shared edge/corner).
#pragma once

#include <algorithm>
#include <cassert>
#include <compare>
#include <limits>
#include <optional>
#include <ostream>

#include "geom/types.hpp"

namespace hsd {

/// Axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
/// A Rect is *valid* when lo.x <= hi.x and lo.y <= hi.y; a valid Rect with
/// lo == hi on an axis is degenerate (zero width/height) but still usable
/// for interval bookkeeping.
struct Rect {
  Point lo;
  Point hi;

  constexpr Rect() = default;
  constexpr Rect(Point lo_, Point hi_) : lo(lo_), hi(hi_) {}
  constexpr Rect(Coord x1, Coord y1, Coord x2, Coord y2)
      : lo{std::min(x1, x2), std::min(y1, y2)},
        hi{std::max(x1, x2), std::max(y1, y2)} {}

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  constexpr Coord width() const { return hi.x - lo.x; }
  constexpr Coord height() const { return hi.y - lo.y; }
  constexpr Area area() const { return Area(width()) * Area(height()); }
  constexpr bool valid() const { return lo.x <= hi.x && lo.y <= hi.y; }
  constexpr bool empty() const { return lo.x >= hi.x || lo.y >= hi.y; }
  constexpr Point center() const {
    return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  }

  /// True if `p` lies inside or on the boundary.
  constexpr bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  /// True if `r` lies fully inside this rect (boundaries may touch).
  constexpr bool contains(const Rect& r) const {
    return r.lo.x >= lo.x && r.hi.x <= hi.x && r.lo.y >= lo.y && r.hi.y <= hi.y;
  }
  /// Positive-area intersection.
  constexpr bool overlaps(const Rect& r) const {
    return lo.x < r.hi.x && r.lo.x < hi.x && lo.y < r.hi.y && r.lo.y < hi.y;
  }
  /// Intersection including shared edges/corners.
  constexpr bool touches(const Rect& r) const {
    return lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y && r.lo.y <= hi.y;
  }

  /// Geometric intersection; empty-width/height result possible.
  constexpr Rect intersect(const Rect& r) const {
    Rect out;
    out.lo = {std::max(lo.x, r.lo.x), std::max(lo.y, r.lo.y)};
    out.hi = {std::min(hi.x, r.hi.x), std::min(hi.y, r.hi.y)};
    return out;
  }

  /// Area of overlap with `r` (0 when disjoint).
  constexpr Area overlapArea(const Rect& r) const {
    const Coord w = std::min(hi.x, r.hi.x) - std::max(lo.x, r.lo.x);
    const Coord h = std::min(hi.y, r.hi.y) - std::max(lo.y, r.lo.y);
    return (w > 0 && h > 0) ? Area(w) * Area(h) : 0;
  }

  /// Minimal bounding box of this and `r`.
  constexpr Rect unite(const Rect& r) const {
    return {Point{std::min(lo.x, r.lo.x), std::min(lo.y, r.lo.y)},
            Point{std::max(hi.x, r.hi.x), std::max(hi.y, r.hi.y)}};
  }

  constexpr Rect translated(const Point& d) const {
    return {lo + d, hi + d};
  }
  /// Outward expansion by `m` on all four sides (negative shrinks).
  constexpr Rect inflated(Coord m) const {
    return {Point{lo.x - m, lo.y - m}, Point{hi.x + m, hi.y + m}};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << ".." << r.hi << ']';
}

/// Bounding box of a range of rects; nullopt for an empty range.
template <typename It>
std::optional<Rect> boundingBox(It first, It last) {
  if (first == last) return std::nullopt;
  Rect bb = *first;
  for (++first; first != last; ++first) bb = bb.unite(*first);
  return bb;
}

}  // namespace hsd
