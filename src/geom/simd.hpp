// Runtime SIMD dispatch for the hot-path kernels (density rasterizer,
// RBF kernel rows, decision-function dot products). Header-only so the
// bottom layers (geom, svm) can share one dispatch decision without a
// link-time dependency.
//
// Byte-identity contract: every SIMD code path in this codebase must
// produce bit-identical results to its scalar oracle. The kernels achieve
// this by vectorizing *across independent outputs* (one lane = one pixel
// run / one support vector / one Q-row column) while keeping each output's
// reduction sequential in the scalar order, and by restricting themselves
// to per-lane IEEE mul/div/add/sub (no FMA contraction — the AVX2 target
// attribute deliberately excludes FMA, and the baseline x86-64 scalar code
// cannot contract either). tests/test_hotpath.cpp pins the contract.
#pragma once

#include <cstdlib>

namespace hsd::simd {

enum class Level {
  kScalar = 0,  ///< portable restrict/contiguous-span loops (the oracle)
  kAvx2 = 1,    ///< explicit AVX2 path, byte-identical to kScalar
};

inline const char* toString(Level l) {
  return l == Level::kAvx2 ? "avx2" : "scalar";
}

namespace detail {
inline Level detect() {
  // HSD_SIMD=scalar forces the oracle path at any capability level —
  // the escape hatch for A/B byte-identity checks on real workloads.
  if (const char* env = std::getenv("HSD_SIMD")) {
    if (env[0] == 's' || env[0] == 'S' || env[0] == '0')
      return Level::kScalar;
  }
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}
}  // namespace detail

/// The process-wide dispatch decision, detected once on first use.
inline Level activeLevel() {
  static const Level level = detail::detect();
  return level;
}

}  // namespace hsd::simd
