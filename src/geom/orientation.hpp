// The dihedral group D8 of pattern orientations used throughout the paper:
// four rotations (0/90/180/270 degrees) times optional mirroring.
// Transforms are defined *within a window*: a point of a pattern living in
// [0,w] x [0,h] maps to a point of the transformed pattern living in
// [0,w'] x [0,h'] where (w',h') is (w,h) or (h,w) depending on rotation.
#pragma once

#include <array>
#include <cstdint>

#include "geom/rect.hpp"
#include "geom/types.hpp"

namespace hsd {

/// The eight orientations of the dihedral group D8.
/// MXR90/MYR90 are mirror-then-rotate-90 (transpose / anti-transpose).
enum class Orient : std::uint8_t {
  R0 = 0,   ///< identity
  R90,      ///< rotate 90 ccw
  R180,     ///< rotate 180
  R270,     ///< rotate 270 ccw
  MX,       ///< mirror about the x-axis (flip y)
  MY,       ///< mirror about the y-axis (flip x)
  MXR90,    ///< MX then R90 == transpose (x<->y)
  MYR90,    ///< MY then R90 == anti-transpose
};

/// All eight orientations, iteration order R0 first.
inline constexpr std::array<Orient, 8> kAllOrients = {
    Orient::R0, Orient::R90,   Orient::R180,  Orient::R270,
    Orient::MX, Orient::MY,    Orient::MXR90, Orient::MYR90};

/// True when the orientation swaps the window's width and height.
constexpr bool swapsAxes(Orient o) {
  return o == Orient::R90 || o == Orient::R270 || o == Orient::MXR90 ||
         o == Orient::MYR90;
}

/// Transform a point of a pattern in window (w,h) into the equivalent point
/// of the transformed pattern (whose window is (h,w) when swapsAxes(o)).
constexpr Point apply(Orient o, const Point& p, Coord w, Coord h) {
  switch (o) {
    case Orient::R0:    return {p.x, p.y};
    case Orient::R90:   return {h - p.y, p.x};
    case Orient::R180:  return {w - p.x, h - p.y};
    case Orient::R270:  return {p.y, w - p.x};
    case Orient::MX:    return {p.x, h - p.y};
    case Orient::MY:    return {w - p.x, p.y};
    case Orient::MXR90: return {p.y, p.x};
    case Orient::MYR90: return {h - p.y, w - p.x};
  }
  return p;  // unreachable
}

/// Transform a rect within window (w,h); result is a valid rect.
constexpr Rect apply(Orient o, const Rect& r, Coord w, Coord h) {
  const Point a = apply(o, r.lo, w, h);
  const Point b = apply(o, r.hi, w, h);
  return Rect{a.x, a.y, b.x, b.y};  // ctor normalizes corner order
}

/// The inverse element of `o` in D8 (mirrors and R0/R180 are involutions).
constexpr Orient inverse(Orient o) {
  switch (o) {
    case Orient::R90:  return Orient::R270;
    case Orient::R270: return Orient::R90;
    default:           return o;
  }
}

constexpr const char* toString(Orient o) {
  switch (o) {
    case Orient::R0:    return "R0";
    case Orient::R90:   return "R90";
    case Orient::R180:  return "R180";
    case Orient::R270:  return "R270";
    case Orient::MX:    return "MX";
    case Orient::MY:    return "MY";
    case Orient::MXR90: return "MXR90";
    case Orient::MYR90: return "MYR90";
  }
  return "?";
}

}  // namespace hsd
