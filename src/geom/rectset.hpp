// Operations on collections of (possibly overlapping) rectangles: clipping
// to a window, union area, band-wise normalization, corner/touch counting.
// These are the geometric workhorses behind pattern encoding and feature
// extraction.
#pragma once

#include <vector>

#include "geom/interval.hpp"
#include "geom/rect.hpp"

namespace hsd {

/// Clip every rect to `window`, dropping rects with no positive-area
/// intersection.
std::vector<Rect> clipRects(const std::vector<Rect>& rects,
                            const Rect& window);

/// Exact area of the union of `rects` (overlaps counted once).
Area unionArea(const std::vector<Rect>& rects);

/// Decompose the union of `rects` into disjoint rects, one per
/// (y-band, merged x-interval): the canonical band representation.
/// Bands are split at every distinct rect edge y.
std::vector<Rect> normalizeBands(const std::vector<Rect>& rects);

/// Merged x-intervals covered by `rects` within the horizontal band
/// [y1, y2]; only rects fully spanning the band contribute (callers pass
/// band edges from the rects' own y-coordinates, so spans are exact).
std::vector<Interval> coveredX(const std::vector<Rect>& rects, Coord y1,
                               Coord y2);

/// Merged y-intervals covered by `rects` within the vertical band [x1, x2].
std::vector<Interval> coveredY(const std::vector<Rect>& rects, Coord x1,
                               Coord x2);

/// Statistics of the union boundary of a rect set (computed on the
/// normalized band decomposition):
struct BoundaryStats {
  int convexCorners = 0;    ///< 90-degree outward corners
  int concaveCorners = 0;   ///< 270-degree (reflex) corners
  int touchPoints = 0;      ///< points where two shapes meet only at a corner
};

/// Count convex/concave corners and corner-touch points of the union of
/// `rects`. Corner classification looks at the 4 quadrants around each
/// candidate vertex: 1 covered quadrant = convex, 3 = concave, 2 diagonal =
/// touch point (the paper's non-topological features #1 and #2).
BoundaryStats boundaryStats(const std::vector<Rect>& rects);

/// Minimum positive horizontal or vertical distance between two facing
/// polygon edges *across empty space* (external spacing) within `window`.
/// Returns -1 when no such pair exists.
Coord minExternalSpacing(const std::vector<Rect>& rects, const Rect& window);

/// Minimum width of the union measured band-wise: the smallest dimension of
/// any maximal band segment (internal spacing between internally facing
/// edges, i.e. min feature width). Returns -1 for an empty set.
Coord minInternalWidth(const std::vector<Rect>& rects);

}  // namespace hsd
