#include "geom/density_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hsd {

DensityGrid::DensityGrid(const std::vector<Rect>& rects, const Rect& window,
                         std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny), window_(window), vals_(nx * ny, 0.0) {
  if (nx == 0 || ny == 0 || window.empty()) return;
  const double pw = double(window.width()) / double(nx);
  const double ph = double(window.height()) / double(ny);
  const double pixArea = pw * ph;
  for (const Rect& raw : rects) {
    const Rect r = raw.intersect(window);
    if (!r.valid() || r.empty()) continue;
    // Pixel index ranges touched by r.
    const auto ix0 = std::size_t(std::floor(double(r.lo.x - window.lo.x) / pw));
    const auto iy0 = std::size_t(std::floor(double(r.lo.y - window.lo.y) / ph));
    auto ix1 = std::size_t(std::ceil(double(r.hi.x - window.lo.x) / pw));
    auto iy1 = std::size_t(std::ceil(double(r.hi.y - window.lo.y) / ph));
    ix1 = std::min(ix1, nx);
    iy1 = std::min(iy1, ny);
    for (std::size_t iy = iy0; iy < iy1; ++iy) {
      const double py0 = double(window.lo.y) + ph * double(iy);
      const double py1 = py0 + ph;
      const double oy = std::min(py1, double(r.hi.y)) -
                        std::max(py0, double(r.lo.y));
      if (oy <= 0) continue;
      for (std::size_t ix = ix0; ix < ix1; ++ix) {
        const double px0 = double(window.lo.x) + pw * double(ix);
        const double px1 = px0 + pw;
        const double ox = std::min(px1, double(r.hi.x)) -
                          std::max(px0, double(r.lo.x));
        if (ox <= 0) continue;
        vals_[iy * nx_ + ix] += ox * oy / pixArea;
      }
    }
  }
  for (double& v : vals_) v = std::min(v, 1.0);
}

double DensityGrid::mean() const {
  if (vals_.empty()) return 0.0;
  double s = 0;
  for (double v : vals_) s += v;
  return s / double(vals_.size());
}

namespace {

// Map the pixel index (ix, iy) of the *transformed* grid back to the pixel
// of the original grid (dims nx, ny) under orientation o.
std::pair<std::size_t, std::size_t> sourcePixel(Orient o, std::size_t ix,
                                                std::size_t iy, std::size_t nx,
                                                std::size_t ny) {
  // Transformed dims: (ny, nx) when swapsAxes(o), else (nx, ny).
  switch (o) {
    case Orient::R0:    return {ix, iy};
    case Orient::R90:   return {iy, ny - 1 - ix};
    case Orient::R180:  return {nx - 1 - ix, ny - 1 - iy};
    case Orient::R270:  return {nx - 1 - iy, ix};
    case Orient::MX:    return {ix, ny - 1 - iy};
    case Orient::MY:    return {nx - 1 - ix, iy};
    case Orient::MXR90: return {iy, ix};
    case Orient::MYR90: return {nx - 1 - iy, ny - 1 - ix};
  }
  return {ix, iy};
}

}  // namespace

double DensityGrid::l1Distance(const DensityGrid& other, Orient o) const {
  const std::size_t onx = swapsAxes(o) ? other.ny_ : other.nx_;
  const std::size_t ony = swapsAxes(o) ? other.nx_ : other.ny_;
  if (onx != nx_ || ony != ny_)
    return std::numeric_limits<double>::infinity();
  double sum = 0;
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const auto [sx, sy] = sourcePixel(o, ix, iy, other.nx_, other.ny_);
      sum += std::abs(at(ix, iy) - other.at(sx, sy));
    }
  }
  return sum;
}

double DensityGrid::distance(const DensityGrid& other) const {
  double best = std::numeric_limits<double>::infinity();
  for (Orient o : kAllOrients) best = std::min(best, l1Distance(other, o));
  return best;
}

}  // namespace hsd
