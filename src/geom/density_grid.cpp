#include "geom/density_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HSD_DENSITY_AVX2 1
#include <immintrin.h>
#endif

namespace hsd {

namespace {

// The x-overlap of rect r with every pixel column in [ix0, ix1) depends
// only on ix, not on the row — hoisting it out of the row loop is the
// main rasterizer win (the per-pixel expressions are unchanged, so the
// accumulated values stay byte-identical to the reference loop).
thread_local std::vector<double> g_xovScratch;

inline void accumulateRowsScalar(double* __restrict vals,
                                 const double* __restrict xov, std::size_t ix0,
                                 std::size_t ix1, double oy, double pixArea) {
  for (std::size_t ix = ix0; ix < ix1; ++ix) {
    const double ox = xov[ix - ix0];
    if (ox <= 0) continue;
    vals[ix] += ox * oy / pixArea;
  }
}

#ifdef HSD_DENSITY_AVX2

// The whole rect in one call (amortizes the call and the pixArea
// broadcast over every row); four pixels per step, per-lane mul/div/add
// only (no FMA — the avx2 target attribute does not enable it), with a
// compare/blend standing in for the scalar `ox <= 0` skip. Each lane
// computes exactly the scalar expression `vals[ix] + ox * oy / pixArea`,
// and oy is the identical per-row expression of the scalar loop.
__attribute__((target("avx2"))) void accumulateRectAvx2(
    double* vals, std::size_t nx, const double* xov, std::size_t ix0,
    std::size_t ix1, std::size_t iy0, std::size_t iy1, double winLoY,
    double ph, double rectLoY, double rectHiY, double pixArea) {
  const __m256d areav = _mm256_set1_pd(pixArea);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t iy = iy0; iy < iy1; ++iy) {
    const double py0 = winLoY + ph * double(iy);
    const double py1 = py0 + ph;
    const double oy = std::min(py1, rectHiY) - std::max(py0, rectLoY);
    if (oy <= 0) continue;
    double* const row = vals + iy * nx;
    const __m256d oyv = _mm256_set1_pd(oy);
    std::size_t ix = ix0;
    for (; ix + 4 <= ix1; ix += 4) {
      const __m256d ox = _mm256_loadu_pd(xov + (ix - ix0));
      const __m256d cur = _mm256_loadu_pd(row + ix);
      const __m256d term = _mm256_div_pd(_mm256_mul_pd(ox, oyv), areav);
      const __m256d next = _mm256_add_pd(cur, term);
      const __m256d mask = _mm256_cmp_pd(ox, zero, _CMP_GT_OQ);
      _mm256_storeu_pd(row + ix, _mm256_blendv_pd(cur, next, mask));
    }
    for (; ix < ix1; ++ix) {
      const double ox = xov[ix - ix0];
      if (ox <= 0) continue;
      row[ix] += ox * oy / pixArea;
    }
  }
}

#endif  // HSD_DENSITY_AVX2

}  // namespace

void rasterizeDensityReference(const std::vector<Rect>& rects,
                               const Rect& window, std::size_t nx,
                               std::size_t ny, double* vals) {
  std::fill(vals, vals + nx * ny, 0.0);
  if (nx == 0 || ny == 0 || window.empty()) return;
  const double pw = double(window.width()) / double(nx);
  const double ph = double(window.height()) / double(ny);
  const double pixArea = pw * ph;
  for (const Rect& raw : rects) {
    const Rect r = raw.intersect(window);
    if (!r.valid() || r.empty()) continue;
    // Pixel index ranges touched by r.
    const auto ix0 = std::size_t(std::floor(double(r.lo.x - window.lo.x) / pw));
    const auto iy0 = std::size_t(std::floor(double(r.lo.y - window.lo.y) / ph));
    auto ix1 = std::size_t(std::ceil(double(r.hi.x - window.lo.x) / pw));
    auto iy1 = std::size_t(std::ceil(double(r.hi.y - window.lo.y) / ph));
    ix1 = std::min(ix1, nx);
    iy1 = std::min(iy1, ny);
    for (std::size_t iy = iy0; iy < iy1; ++iy) {
      const double py0 = double(window.lo.y) + ph * double(iy);
      const double py1 = py0 + ph;
      const double oy = std::min(py1, double(r.hi.y)) -
                        std::max(py0, double(r.lo.y));
      if (oy <= 0) continue;
      for (std::size_t ix = ix0; ix < ix1; ++ix) {
        const double px0 = double(window.lo.x) + pw * double(ix);
        const double px1 = px0 + pw;
        const double ox = std::min(px1, double(r.hi.x)) -
                          std::max(px0, double(r.lo.x));
        if (ox <= 0) continue;
        vals[iy * nx + ix] += ox * oy / pixArea;
      }
    }
  }
  for (std::size_t i = 0; i < nx * ny; ++i) vals[i] = std::min(vals[i], 1.0);
}

void rasterizeDensity(const std::vector<Rect>& rects, const Rect& window,
                      std::size_t nx, std::size_t ny, double* vals) {
  std::fill(vals, vals + nx * ny, 0.0);
  if (nx == 0 || ny == 0 || window.empty()) return;
#ifdef HSD_DENSITY_AVX2
  const bool avx2 = simd::activeLevel() == simd::Level::kAvx2;
#endif
  const double pw = double(window.width()) / double(nx);
  const double ph = double(window.height()) / double(ny);
  const double pixArea = pw * ph;
  const double invPw = double(nx) / double(window.width());
  const double invPh = double(ny) / double(window.height());
  // x-overlaps live on the stack for typical spans (grids are 8..16 wide
  // in the pipeline); the thread_local scratch only backs huge grids.
  constexpr std::size_t kStackSpan = 64;
  double xovStack[kStackSpan];
  for (const Rect& raw : rects) {
    const Rect r = raw.intersect(window);
    if (!r.valid() || r.empty()) continue;
    // Conservative pixel ranges via reciprocal multiply: up to one pixel
    // wider per side than the exact floor/ceil ranges (reciprocal
    // rounding is << 1 index unit). Widened pixels have non-positive
    // overlap and take the same `<= 0` skip as always, so the
    // accumulated values are unchanged — this trades a few dead pixel
    // iterations for four scalar divides and a floor/ceil per rect.
    auto ix0 = std::size_t(double(r.lo.x - window.lo.x) * invPw);
    auto iy0 = std::size_t(double(r.lo.y - window.lo.y) * invPh);
    ix0 -= ix0 > 0;
    iy0 -= iy0 > 0;
    const auto ix1 =
        std::min(nx, std::size_t(double(r.hi.x - window.lo.x) * invPw) + 2);
    const auto iy1 =
        std::min(ny, std::size_t(double(r.hi.y - window.lo.y) * invPh) + 2);
    if (ix0 >= ix1) continue;
    const std::size_t span = ix1 - ix0;
    double* xov = xovStack;
    if (span > kStackSpan) {
      g_xovScratch.resize(span);
      xov = g_xovScratch.data();
    }
    for (std::size_t ix = ix0; ix < ix1; ++ix) {
      const double px0 = double(window.lo.x) + pw * double(ix);
      const double px1 = px0 + pw;
      xov[ix - ix0] = std::min(px1, double(r.hi.x)) -
                      std::max(px0, double(r.lo.x));
    }
#ifdef HSD_DENSITY_AVX2
    // Narrow rects (contacts, via farms) never reach a full 4-lane step;
    // the scalar loop beats the vector entry there.
    if (avx2 && span >= 4) {
      accumulateRectAvx2(vals, nx, xov, ix0, ix1, iy0, iy1,
                         double(window.lo.y), ph, double(r.lo.y),
                         double(r.hi.y), pixArea);
      continue;
    }
#endif
    for (std::size_t iy = iy0; iy < iy1; ++iy) {
      const double py0 = double(window.lo.y) + ph * double(iy);
      const double py1 = py0 + ph;
      const double oy = std::min(py1, double(r.hi.y)) -
                        std::max(py0, double(r.lo.y));
      if (oy <= 0) continue;
      accumulateRowsScalar(vals + iy * nx, xov, ix0, ix1, oy, pixArea);
    }
  }
  for (std::size_t i = 0; i < nx * ny; ++i) vals[i] = std::min(vals[i], 1.0);
}

DensityGrid::DensityGrid(const std::vector<Rect>& rects, const Rect& window,
                         std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny), window_(window), vals_(nx * ny) {
  rasterizeDensity(rects, window, nx, ny, vals_.data());
}

double DensityGrid::mean() const {
  if (vals_.empty()) return 0.0;
  double s = 0;
  for (double v : vals_) s += v;
  return s / double(vals_.size());
}

namespace {

// Map the pixel index (ix, iy) of the *transformed* grid back to the pixel
// of the original grid (dims nx, ny) under orientation o.
std::pair<std::size_t, std::size_t> sourcePixel(Orient o, std::size_t ix,
                                                std::size_t iy, std::size_t nx,
                                                std::size_t ny) {
  // Transformed dims: (ny, nx) when swapsAxes(o), else (nx, ny).
  switch (o) {
    case Orient::R0:    return {ix, iy};
    case Orient::R90:   return {iy, ny - 1 - ix};
    case Orient::R180:  return {nx - 1 - ix, ny - 1 - iy};
    case Orient::R270:  return {nx - 1 - iy, ix};
    case Orient::MX:    return {ix, ny - 1 - iy};
    case Orient::MY:    return {nx - 1 - ix, iy};
    case Orient::MXR90: return {iy, ix};
    case Orient::MYR90: return {nx - 1 - iy, ny - 1 - ix};
  }
  return {ix, iy};
}

}  // namespace

double DensityGrid::l1Distance(const DensityGrid& other, Orient o) const {
  const std::size_t onx = swapsAxes(o) ? other.ny_ : other.nx_;
  const std::size_t ony = swapsAxes(o) ? other.nx_ : other.ny_;
  if (onx != nx_ || ony != ny_)
    return std::numeric_limits<double>::infinity();
  double sum = 0;
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const auto [sx, sy] = sourcePixel(o, ix, iy, other.nx_, other.ny_);
      sum += std::abs(at(ix, iy) - other.at(sx, sy));
    }
  }
  return sum;
}

double DensityGrid::distance(const DensityGrid& other) const {
  double best = std::numeric_limits<double>::infinity();
  for (Orient o : kAllOrients) best = std::min(best, l1Distance(other, o));
  return best;
}

}  // namespace hsd
