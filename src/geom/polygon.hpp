// Rectilinear (Manhattan) polygons and their decomposition into rectangles.
//
// The paper's clip-extraction step (Sec. III-E) horizontally slices every
// layout polygon into rectangles; the same decomposition feeds tiling,
// rasterization and feature extraction. Polygons are simple (no self
// intersection) and rectilinear: consecutive vertices share an x or a y.
#pragma once

#include <vector>

#include "geom/rect.hpp"
#include "geom/types.hpp"

namespace hsd {

/// A simple rectilinear polygon given by its vertex loop (implicitly closed,
/// no repeated final vertex). Winding direction does not matter.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> pts) : pts_(std::move(pts)) {}
  /// Convenience: axis-aligned rectangle as a polygon.
  explicit Polygon(const Rect& r)
      : pts_{{r.lo.x, r.lo.y}, {r.hi.x, r.lo.y}, {r.hi.x, r.hi.y},
             {r.lo.x, r.hi.y}} {}

  const std::vector<Point>& points() const { return pts_; }
  bool empty() const { return pts_.size() < 4; }
  std::size_t size() const { return pts_.size(); }

  /// True when every consecutive edge is axis-parallel and the loop closes
  /// rectilinearly (vertex count even, >= 4).
  bool isRectilinear() const;

  /// Bounding box; degenerate Rect for an empty polygon.
  Rect bbox() const;

  /// Polygon area (positive regardless of winding).
  Area area() const;

  /// Decompose into non-overlapping rectangles by horizontal slicing:
  /// the polygon is cut at every distinct vertex y; each horizontal band
  /// contributes one rect per covered x-interval. This is exactly the
  /// "horizontally sliced into rectangles" step of Fig. 11(a).
  std::vector<Rect> sliceHorizontal() const;

  /// Same, slicing along vertical cut lines at every distinct vertex x.
  std::vector<Rect> sliceVertical() const;

 private:
  std::vector<Point> pts_;
};

}  // namespace hsd
