// Maximal horizontal / vertical tilings of a window into block tiles
// (covered by polygons) and space tiles (empty), as required by the MTCG
// construction of Sec. III-C (Fig. 6). A horizontal tiling first maximizes
// tiles in x within each band, then merges vertically adjacent tiles with
// identical x-span and type; the vertical tiling is the transpose.
#pragma once

#include <vector>

#include "geom/rect.hpp"

namespace hsd {

/// One tile of a tiling: its extent and whether it is polygon (block) or
/// empty space.
struct Tile {
  Rect box;
  bool isBlock = false;

  friend constexpr auto operator<=>(const Tile&, const Tile&) = default;
};

/// Horizontally tiled decomposition of `window` given the block rects
/// (clipped to the window internally). Tiles are disjoint, cover the window
/// exactly, and are maximal-in-x then merged-in-y.
std::vector<Tile> horizontalTiling(const std::vector<Rect>& blocks,
                                   const Rect& window);

/// Vertically tiled decomposition (maximal-in-y then merged-in-x).
std::vector<Tile> verticalTiling(const std::vector<Rect>& blocks,
                                 const Rect& window);

}  // namespace hsd
