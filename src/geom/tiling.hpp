// Two unrelated tilings share this header:
//
//  1. Maximal horizontal / vertical tilings of a window into block tiles
//     (covered by polygons) and space tiles (empty), as required by the
//     MTCG construction of Sec. III-C (Fig. 6). A horizontal tiling first
//     maximizes tiles in x within each band, then merges vertically
//     adjacent tiles with identical x-span and type; the vertical tiling
//     is the transpose.
//
//  2. GridTiling: a uniform spatial partition of a layout bounding box
//     into grid tiles, the geometry half of the engine's tiled-evaluation
//     plan (engine/tiler.hpp). It owns the canonical ownership rule: every
//     point of the plane maps to exactly one tile id.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/rect.hpp"

namespace hsd {

/// One tile of a tiling: its extent and whether it is polygon (block) or
/// empty space.
struct Tile {
  Rect box;
  bool isBlock = false;

  friend constexpr auto operator<=>(const Tile&, const Tile&) = default;
};

/// Horizontally tiled decomposition of `window` given the block rects
/// (clipped to the window internally). Tiles are disjoint, cover the window
/// exactly, and are maximal-in-x then merged-in-y.
std::vector<Tile> horizontalTiling(const std::vector<Rect>& blocks,
                                   const Rect& window);

/// Vertically tiled decomposition (maximal-in-y then merged-in-x).
std::vector<Tile> verticalTiling(const std::vector<Rect>& blocks,
                                 const Rect& window);

/// Uniform grid partition of `bounds` into up-to-`tileSize`-sided tiles.
///
/// Tile ids are row-major (x fastest, bottom row first) and depend only on
/// (bounds, tileSize) — deterministic across runs, thread counts and
/// machines. Ownership is half-open: tile (ix, iy) owns points with
/// lo + i*tileSize <= p < lo + (i+1)*tileSize per axis, except that the
/// last row/column also owns the bounds' upper edge, so `ownerOf` is a
/// total function over `bounds` (and clamps points outside it). A point
/// exactly on an interior tile boundary therefore belongs to the tile
/// *above/right* of the seam — one owner, never two.
struct GridTiling {
  Rect bounds;
  Coord tileSize = 0;
  std::size_t nx = 1;  ///< number of tile columns
  std::size_t ny = 1;  ///< number of tile rows

  /// Partition `bounds` into ceil(extent / tileSize) tiles per axis
  /// (at least one even for degenerate bounds). tileSize must be > 0.
  static GridTiling over(const Rect& bounds, Coord tileSize);

  std::size_t tileCount() const { return nx * ny; }

  /// Owned (un-haloed) region of tile `id`; the last row/column is clipped
  /// to `bounds`, so tile boxes exactly cover the bounding box.
  Rect tileBox(std::size_t id) const;

  /// Row-major id of the tile owning `p` (clamped into the grid, so every
  /// point of the plane has exactly one owner).
  std::size_t ownerOf(const Point& p) const;
};

}  // namespace hsd
