#include "geom/rectset.hpp"

#include <algorithm>
#include <limits>

namespace hsd {

std::vector<Rect> clipRects(const std::vector<Rect>& rects,
                            const Rect& window) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    const Rect c = r.intersect(window);
    if (c.valid() && !c.empty()) out.push_back(c);
  }
  return out;
}

namespace {

// Distinct y (or x) cut coordinates of a rect set.
std::vector<Coord> cutCoordsY(const std::vector<Rect>& rects) {
  std::vector<Coord> ys;
  ys.reserve(rects.size() * 2);
  for (const Rect& r : rects) {
    ys.push_back(r.lo.y);
    ys.push_back(r.hi.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  return ys;
}

std::vector<Coord> cutCoordsX(const std::vector<Rect>& rects) {
  std::vector<Coord> xs;
  xs.reserve(rects.size() * 2);
  for (const Rect& r : rects) {
    xs.push_back(r.lo.x);
    xs.push_back(r.hi.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

}  // namespace

std::vector<Interval> coveredX(const std::vector<Rect>& rects, Coord y1,
                               Coord y2) {
  std::vector<Interval> iv;
  for (const Rect& r : rects)
    if (r.lo.y <= y1 && r.hi.y >= y2 && r.lo.x < r.hi.x)
      iv.push_back({r.lo.x, r.hi.x});
  return mergeIntervals(std::move(iv));
}

std::vector<Interval> coveredY(const std::vector<Rect>& rects, Coord x1,
                               Coord x2) {
  std::vector<Interval> iv;
  for (const Rect& r : rects)
    if (r.lo.x <= x1 && r.hi.x >= x2 && r.lo.y < r.hi.y)
      iv.push_back({r.lo.y, r.hi.y});
  return mergeIntervals(std::move(iv));
}

Area unionArea(const std::vector<Rect>& rects) {
  const std::vector<Coord> ys = cutCoordsY(rects);
  Area total = 0;
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    const Coord y1 = ys[i];
    const Coord y2 = ys[i + 1];
    if (y1 >= y2) continue;
    total += Area(totalLength(coveredX(rects, y1, y2))) * (y2 - y1);
  }
  return total;
}

std::vector<Rect> normalizeBands(const std::vector<Rect>& rects) {
  std::vector<Rect> out;
  const std::vector<Coord> ys = cutCoordsY(rects);
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    const Coord y1 = ys[i];
    const Coord y2 = ys[i + 1];
    if (y1 >= y2) continue;
    for (const Interval& iv : coveredX(rects, y1, y2))
      out.push_back({iv.lo, y1, iv.hi, y2});
  }
  return out;
}

namespace {

// Whether some rect covers an open neighborhood in the given quadrant of p.
// dx/dy in {-1, +1} select the quadrant.
bool quadrantCovered(const std::vector<Rect>& rects, const Point& p, int dx,
                     int dy) {
  for (const Rect& r : rects) {
    const bool xok = dx > 0 ? (r.lo.x <= p.x && p.x < r.hi.x)
                            : (r.lo.x < p.x && p.x <= r.hi.x);
    const bool yok = dy > 0 ? (r.lo.y <= p.y && p.y < r.hi.y)
                            : (r.lo.y < p.y && p.y <= r.hi.y);
    if (xok && yok) return true;
  }
  return false;
}

}  // namespace

BoundaryStats boundaryStats(const std::vector<Rect>& rects) {
  BoundaryStats st;
  if (rects.empty()) return st;
  const std::vector<Coord> xs = cutCoordsX(rects);
  const std::vector<Coord> ys = cutCoordsY(rects);
  for (const Coord x : xs) {
    for (const Coord y : ys) {
      const Point p{x, y};
      const bool ne = quadrantCovered(rects, p, +1, +1);
      const bool nw = quadrantCovered(rects, p, -1, +1);
      const bool se = quadrantCovered(rects, p, +1, -1);
      const bool sw = quadrantCovered(rects, p, -1, -1);
      const int cnt = int(ne) + int(nw) + int(se) + int(sw);
      if (cnt == 1) {
        ++st.convexCorners;
      } else if (cnt == 3) {
        ++st.concaveCorners;
      } else if (cnt == 2 && ((ne && sw) || (nw && se))) {
        ++st.touchPoints;
      }
    }
  }
  return st;
}

Coord minExternalSpacing(const std::vector<Rect>& rects, const Rect& window) {
  Coord best = -1;
  auto consider = [&best](Coord gap) {
    if (gap > 0 && (best < 0 || gap < best)) best = gap;
  };

  // Horizontal gaps between facing vertical edges, scanned band by band.
  const std::vector<Coord> ys = cutCoordsY(rects);
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    const Coord y1 = std::max(ys[i], window.lo.y);
    const Coord y2 = std::min(ys[i + 1], window.hi.y);
    if (y1 >= y2) continue;
    const std::vector<Interval> iv = coveredX(rects, ys[i], ys[i + 1]);
    for (std::size_t k = 0; k + 1 < iv.size(); ++k)
      consider(iv[k + 1].lo - iv[k].hi);
  }
  // Vertical gaps between facing horizontal edges.
  const std::vector<Coord> xs = cutCoordsX(rects);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const Coord x1 = std::max(xs[i], window.lo.x);
    const Coord x2 = std::min(xs[i + 1], window.hi.x);
    if (x1 >= x2) continue;
    const std::vector<Interval> iv = coveredY(rects, xs[i], xs[i + 1]);
    for (std::size_t k = 0; k + 1 < iv.size(); ++k)
      consider(iv[k + 1].lo - iv[k].hi);
  }
  return best;
}

Coord minInternalWidth(const std::vector<Rect>& rects) {
  Coord best = -1;
  auto consider = [&best](Coord w) {
    if (w > 0 && (best < 0 || w < best)) best = w;
  };
  const std::vector<Coord> ys = cutCoordsY(rects);
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    if (ys[i] >= ys[i + 1]) continue;
    for (const Interval& iv : coveredX(rects, ys[i], ys[i + 1]))
      consider(iv.length());
  }
  const std::vector<Coord> xs = cutCoordsX(rects);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i] >= xs[i + 1]) continue;
    for (const Interval& iv : coveredY(rects, xs[i], xs[i + 1]))
      consider(iv.length());
  }
  return best;
}

}  // namespace hsd
