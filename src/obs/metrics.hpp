// Metrics: a MetricsRegistry of counters, gauges, and log-bucketed
// histograms with a Prometheus text-exposition renderer. Registration is
// mutex-guarded and *ordered* — renderPrometheus() emits metric families
// in first-registration order, never sorted, so repeated scrapes and
// golden diffs are byte-stable as metrics are added. Updates after
// registration are lock-free (relaxed atomics); registered metric
// references stay valid for the registry's lifetime.
//
// Labels are baked in at registration: counter(name, help, {{"status",
// "ok"}}) registers one sample of the `name` family. All samples of a
// family share its HELP/TYPE header; re-registering an existing
// (name, labels) pair returns the same metric object.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_id.hpp"
#include "par/cacheline.hpp"

namespace hsd::obs {

/// Monotonically increasing counter. Cache-line aligned: counters are
/// individually heap-allocated by the registry and bumped from every
/// worker thread; line alignment (honored by aligned operator new)
/// guarantees two hot counters never share — and therefore never
/// ping-pong — a line.
class alignas(par::kCacheLineSize) Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Settable up/down gauge (queue depths, in-flight counts). Aligned for
/// the same false-sharing reason as Counter.
class alignas(par::kCacheLineSize) Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void inc(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void dec(std::int64_t delta = 1) {
    v_.fetch_sub(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram (Prometheus `le` semantics: an observation
/// lands in the first bucket whose upper bound is >= the value; values
/// above every bound land in the implicit +Inf bucket). Observation is
/// lock-free; bounds are immutable after construction.
class Histogram {
 public:
  /// `upperBounds` must be strictly increasing; empty means +Inf only.
  explicit Histogram(std::vector<double> upperBounds);

  /// Log-spaced bounds: start, start*factor, ... (count bounds total).
  static std::vector<double> exponentialBuckets(double start, double factor,
                                                std::size_t count);
  /// The registry default for latency-in-seconds histograms:
  /// 10µs .. ~21s, doubling per bucket.
  static std::vector<double> defaultLatencySeconds() {
    return exponentialBuckets(1e-5, 2.0, 22);
  }

  void observe(double value);

  /// One recent traced observation per bucket — the breadcrumb that links
  /// a latency percentile back to a concrete request's spans and logs
  /// (OpenMetrics-style exemplars; surfaced in statsJson blobs, not in
  /// the 0.0.4 text exposition, which predates exemplar syntax).
  struct Exemplar {
    double value = 0.0;
    TraceId trace;          ///< invalid => this bucket has no exemplar yet
    std::int64_t unixMs = 0;  ///< wall-clock stamp of the observation
    bool valid() const { return trace.valid(); }
  };

  /// observe() plus, when `trace` is valid, recording it as the bucket's
  /// exemplar (last writer wins). The exemplar slot is mutex-guarded —
  /// acceptable because traced observations are request-grained, not
  /// item-grained; the no-trace observe() path stays lock-free.
  void observe(double value, TraceId trace);

  /// Exemplar per bucket (bounds().size() + 1 entries, +Inf last);
  /// entries with an invalid trace were never written.
  std::vector<Exemplar> exemplars() const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts; the last entry is +Inf.
  std::vector<std::uint64_t> bucketCounts() const;

  /// Estimated q-quantile (q in [0, 1]) via linear interpolation inside
  /// the bucket holding the target rank — the same estimate Prometheus's
  /// histogram_quantile() computes. Observations in the +Inf bucket clamp
  /// to the largest finite bound; an empty histogram reports 0.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable std::mutex exemplarMu_;
  std::vector<Exemplar> exemplars_;  ///< one per bucket, guarded by mu
};

/// Ordered, thread-safe registry. The counter/gauge/histogram getters
/// register on first use and return a reference that stays valid for the
/// registry's lifetime (entries are never removed).
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric. `name` is sanitized to a valid
  /// Prometheus identifier ([a-zA-Z_:][a-zA-Z0-9_:]*, invalid bytes
  /// become '_'). Registering an existing name with a different metric
  /// type throws std::invalid_argument.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upperBounds =
                           Histogram::defaultLatencySeconds(),
                       const Labels& labels = {});

  /// Prometheus text exposition (version 0.0.4): families in registration
  /// order, samples within a family in registration order, histogram
  /// buckets cumulative with a +Inf bucket, _sum and _count.
  std::string renderPrometheus() const;

  static std::string sanitizeName(const std::string& name);
  /// Label names are stricter than metric names: [a-zA-Z_][a-zA-Z0-9_]*
  /// — colons are reserved for metric names and become '_' here.
  static std::string sanitizeLabelName(const std::string& name);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Sample {
    std::string labels;  ///< rendered label block, e.g. {status="ok"}
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    Type type;
    std::vector<Sample> samples;  ///< registration order
  };

  Family& familyOf(const std::string& name, const std::string& help,
                   Type type);
  Sample& sampleOf(Family& fam, const Labels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  ///< registration order
};

}  // namespace hsd::obs
