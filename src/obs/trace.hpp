// Span tracing: a TraceRecorder collects begin/end span events into
// per-thread ring buffers and serializes them to Chrome trace-event JSON
// ("X" complete events), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Design goals, in order:
//
//  1. Near-zero overhead when disabled. Instrumentation sites hold a
//     TraceRecorder* that is nullptr when tracing is off; a disabled
//     obs::Span is one branch — no clock read, no allocation, no copy
//     (pinned by the operator-new-counting test in tests/test_obs.cpp
//     and the BM_SpanDisabled micro-bench).
//  2. Lock-free recording when enabled. Each thread appends to its own
//     fixed-capacity ring buffer (single writer, no CAS loop); a mutex is
//     taken only once per (thread, recorder) pair to register the buffer.
//     A full ring drops the *oldest* events — newest data wins — and
//     counts the drops (droppedEvents(), also surfaced in the JSON).
//  3. Bounded memory. perThreadCapacity events per thread, period.
//
// Quiescence contract: snapshot()/writeJson() may run concurrently with
// recording without corrupting memory (indices are acquire/release), but
// spans recorded while serializing may be missed or torn between buffers;
// call them after runs finish (tools do so at exit). The recorder must
// outlive every thread that records into it — the same lifetime rule as
// StageCache vs. RunContext.
//
// Event names are truncated to kNameCapacity-1 bytes (no allocation per
// span); categories, arg keys, and string arg values must be string
// literals (static storage) — the ring stores the pointers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/trace_id.hpp"

namespace hsd::obs {

/// One optional numeric span argument (key must be a string literal).
struct TraceArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

/// One optional string span argument (key AND value must be literals).
struct TraceStrArg {
  const char* key = nullptr;
  const char* value = nullptr;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kNameCapacity = 48;
  static constexpr std::size_t kDefaultCapacity = 1 << 15;  ///< per thread

  /// A recorded span, fixed-size so ring slots never allocate.
  struct Event {
    char name[kNameCapacity];
    const char* cat;       ///< category (string literal)
    std::int64_t tsNs;     ///< span begin, ns since recorder construction
    std::int64_t durNs;    ///< span duration in ns
    TraceArg a0, a1;       ///< numeric args (key == nullptr -> absent)
    TraceStrArg s0;        ///< string arg (key == nullptr -> absent)
    TraceId trace;         ///< request correlation ({0,0} = uncorrelated)
  };

  /// A serialization-ready view of one event plus its thread attribution.
  struct SnapshotEvent {
    Event event;
    std::uint32_t tid = 0;    ///< dense per-recorder thread id
  };

  /// `perThreadCapacity` == 0 is clamped to 1.
  explicit TraceRecorder(std::size_t perThreadCapacity = kDefaultCapacity);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Record one completed span [t0, t1). Name is truncated to fit a ring
  /// slot; cat/arg keys/string values must be literals. Lock-free after
  /// the calling thread's first event. An invalid `trace` (the default)
  /// is replaced by the calling thread's currentTraceId(), so spans
  /// recorded under a ScopedTraceId are correlated automatically.
  void recordSpan(std::string_view name, const char* cat,
                  std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1,
                  TraceArg a0 = {}, TraceArg a1 = {}, TraceStrArg s0 = {},
                  TraceId trace = {});

  /// Name the calling thread in the trace (Perfetto track label). Last
  /// call wins. Takes the registry mutex — call once per thread, not per
  /// span.
  void nameThread(const std::string& name);

  /// Total events overwritten because a ring was full (drop-oldest).
  std::uint64_t droppedEvents() const;

  /// Events currently resident across all rings (drops excluded).
  std::size_t spanCount() const;

  std::size_t perThreadCapacity() const { return capacity_; }

  /// Resident events in (tid, record order), oldest first per thread.
  /// Subject to the quiescence contract above.
  std::vector<SnapshotEvent> snapshot() const;

  /// Names of registered threads, indexed by tid ("" when never named).
  std::vector<std::string> threadNames() const;

  /// Chrome trace-event JSON: thread_name metadata events followed by one
  /// "X" event per span; "droppedEvents" is included as a top-level key.
  void writeJson(std::ostream& os) const;
  std::string toJson() const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t cap, std::uint32_t id)
        : events(cap), tid(id) {}
    std::vector<Event> events;
    std::atomic<std::uint64_t> writeIndex{0};  ///< total appends, unwrapped
    std::uint32_t tid;
    std::string name;  ///< guarded by the recorder's mu_
  };

  ThreadBuffer& bufferForThisThread();

  const std::size_t capacity_;
  const std::uint64_t id_;  ///< process-unique, keys the TLS fast path
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::unordered_map<std::thread::id, ThreadBuffer*> byThread_;
};

/// RAII span guard. With a null recorder this is a stored nullptr and
/// nothing else — no clock read, no name copy, no allocation; arg() is a
/// no-op. With a recorder, the span covers construction to destruction.
class Span {
 public:
  Span(TraceRecorder* rec, std::string_view name, const char* cat)
      : rec_(rec) {
    if (rec_ == nullptr) return;
    len_ = std::min(name.size(), TraceRecorder::kNameCapacity - 1);
    std::memcpy(name_, name.data(), len_);
    cat_ = cat;
    t0_ = std::chrono::steady_clock::now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric arg (first two calls stick; keys must be literals).
  void arg(const char* key, std::uint64_t value) {
    if (rec_ == nullptr) return;
    if (a0_.key == nullptr) {
      a0_ = {key, value};
    } else if (a1_.key == nullptr) {
      a1_ = {key, value};
    }
  }

  /// Attach the string arg (first call sticks; key and value literals).
  void strArg(const char* key, const char* value) {
    if (rec_ == nullptr || s0_.key != nullptr) return;
    s0_ = {key, value};
  }

  ~Span() {
    if (rec_ == nullptr) return;
    rec_->recordSpan(std::string_view(name_, len_), cat_, t0_,
                     std::chrono::steady_clock::now(), a0_, a1_, s0_);
  }

 private:
  TraceRecorder* rec_;
  char name_[TraceRecorder::kNameCapacity];
  std::size_t len_ = 0;
  const char* cat_ = nullptr;
  std::chrono::steady_clock::time_point t0_;
  TraceArg a0_, a1_;
  TraceStrArg s0_;
};

}  // namespace hsd::obs
