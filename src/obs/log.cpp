#include "obs/log.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <locale>
#include <ostream>

#include "obs/json.hpp"

namespace hsd::obs {

namespace {

std::uint64_t nextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Single-slot per-thread cache of the last (recorder, buffer) pair — the
// same dangling-proof scheme as the trace recorder's: keyed by a
// process-unique id, so a destroyed recorder's pointer can never be
// revived by a lookalike.
struct TlsSlot {
  std::uint64_t recorderId = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot tlsSlot;

}  // namespace

const char* toString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

bool parseLogLevel(std::string_view name, LogLevel& out) {
  std::string lower(name);
  for (char& c : lower) c = char(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") {
    out = LogLevel::kTrace;
  } else if (lower == "debug") {
    out = LogLevel::kDebug;
  } else if (lower == "info") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    out = LogLevel::kWarn;
  } else if (lower == "error") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogRecorder::LogRecorder(std::size_t perThreadCapacity)
    : capacity_(perThreadCapacity == 0 ? 1 : perThreadCapacity),
      id_(nextRecorderId()),
      epoch_(std::chrono::steady_clock::now()),
      wallEpochNs_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count()) {}

LogRecorder::~LogRecorder() = default;

LogRecorder::ThreadBuffer& LogRecorder::bufferForThisThread() {
  if (tlsSlot.recorderId == id_)
    return *static_cast<ThreadBuffer*>(tlsSlot.buffer);
  const std::lock_guard<std::mutex> lock(mu_);
  ThreadBuffer*& slot = byThread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        capacity_, static_cast<std::uint32_t>(buffers_.size())));
    slot = buffers_.back().get();
  }
  tlsSlot = {id_, slot};
  return *slot;
}

void LogRecorder::log(LogLevel level, const char* component,
                      std::string_view message, TraceArg a0, TraceArg a1,
                      TraceStrArg s0, TraceId trace) {
  if (!enabled(level)) return;
  if (!trace.valid()) trace = currentTraceId();
  ThreadBuffer& buf = bufferForThisThread();
  const std::uint64_t w = buf.writeIndex.load(std::memory_order_relaxed);
  Record& r = buf.records[w % capacity_];
  const std::size_t len = std::min(message.size(), kMessageCapacity - 1);
  std::memcpy(r.message, message.data(), len);
  r.message[len] = '\0';
  r.msgLen = std::uint8_t(len);
  r.component = component;
  r.tsNs = std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
             .count());
  r.trace = trace;
  r.a0 = a0;
  r.a1 = a1;
  r.s0 = s0;
  r.level = level;
  // Release-publish: a reader that acquires w+1 sees this slot complete.
  buf.writeIndex.store(w + 1, std::memory_order_release);
}

std::uint64_t LogRecorder::droppedRecords() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    const std::uint64_t w = buf->writeIndex.load(std::memory_order_acquire);
    if (w > capacity_) dropped += w - capacity_;
  }
  return dropped;
}

std::size_t LogRecorder::recordCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_)
    n += std::size_t(std::min<std::uint64_t>(
        buf->writeIndex.load(std::memory_order_acquire), capacity_));
  return n;
}

std::vector<LogRecorder::SnapshotRecord> LogRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotRecord> out;
  for (const auto& buf : buffers_) {
    const std::uint64_t w = buf->writeIndex.load(std::memory_order_acquire);
    const std::uint64_t resident = std::min<std::uint64_t>(w, capacity_);
    out.reserve(out.size() + resident);
    for (std::uint64_t k = w - resident; k < w; ++k)
      out.push_back({buf->records[k % capacity_], buf->tid});
  }
  return out;
}

void LogRecorder::appendRecordJson(std::ostream& os,
                                   const SnapshotRecord& sr) const {
  const Record& r = sr.record;
  os << "{\"tsNs\": " << r.tsNs
     << ", \"unixMs\": " << (wallEpochNs_ + r.tsNs) / 1000000
     << ", \"level\": \"" << toString(r.level) << "\", \"component\": \""
     << jsonEscape(r.component != nullptr ? r.component : "") << "\", \"tid\": "
     << sr.tid << ", \"message\": \""
     << jsonEscape(std::string_view(
            r.message, std::min<std::size_t>(r.msgLen, kMessageCapacity - 1)))
     << '"';
  if (r.trace.valid()) {
    char trace[kTraceIdChars + 1];
    formatTraceId(r.trace, trace);
    os << ", \"trace\": \"" << trace << '"';
  }
  for (const TraceArg* a : {&r.a0, &r.a1})
    if (a->key != nullptr)
      os << ", \"" << jsonEscape(a->key) << "\": " << a->value;
  if (r.s0.key != nullptr)
    os << ", \"" << jsonEscape(r.s0.key) << "\": \"" << jsonEscape(r.s0.value)
       << '"';
  os << '}';
}

void LogRecorder::writeJsonLines(std::ostream& os) const {
  std::vector<SnapshotRecord> records = snapshot();
  std::sort(records.begin(), records.end(),
            [](const SnapshotRecord& a, const SnapshotRecord& b) {
              return a.record.tsNs < b.record.tsNs;
            });
  // A grouping locale on the caller's stream would corrupt the numbers;
  // pin the classic locale, restore on exit.
  const std::locale saved = os.imbue(std::locale::classic());
  for (const SnapshotRecord& sr : records) {
    appendRecordJson(os, sr);
    os << '\n';
  }
  os.imbue(saved);
}

}  // namespace hsd::obs
