// Tiny JSON string-escape helper shared by every serializer that emits
// hand-rolled JSON (EngineStats::toJson, the Chrome trace writer, the
// SERVE_STATS dumps). Escapes the two structural characters (" and \)
// plus control characters, so a stage or metric name containing a quote
// or backslash can never produce syntactically invalid JSON. Everything
// else — including multi-byte UTF-8 sequences — passes through untouched.
#pragma once

#include <string>
#include <string_view>

namespace hsd::obs {

/// `s` escaped for inclusion inside a double-quoted JSON string literal
/// (the quotes themselves are the caller's business).
std::string jsonEscape(std::string_view s);

}  // namespace hsd::obs
