// Structured logging: a LogRecorder collects fixed-size, trace-correlated
// log records into per-thread ring buffers — the same design as
// TraceRecorder (obs/trace.hpp), applied to discrete events instead of
// spans. Design goals, in order:
//
//  1. Near-zero overhead when disabled. Sites hold a LogRecorder* that is
//     nullptr when logging is off; the logTo() helper is one branch. With
//     a recorder attached, records below the atomic min-level gate cost
//     one relaxed load.
//  2. Lock-free, allocation-free recording when enabled. Each thread
//     appends to its own fixed-capacity ring (single writer, release-
//     published index); the message is copied into the slot (truncated to
//     kMessageCapacity-1), component/arg keys/string values must be
//     string literals. A full ring drops the *oldest* records and counts
//     the drops. Pinned by the operator-new-counter proof in
//     tests/test_obs_plane.cpp and the log-cost rows of BENCH_obs.json.
//  3. Request correlation for free: a record stamped while a
//     ScopedTraceId is installed carries that trace id, so
//     `/logz?trace=<id>` and `/tracez?trace=<id>` tell one request's
//     story from both sides.
//
// Serialization is JSON lines (one object per record — the --log-out file
// sink and the admin /logz body): steady-clock-relative tsNs for exact
// ordering plus a wall-clock unixMs anchor for humans.
//
// Quiescence contract: snapshot()/writeJsonLines() may run concurrently
// with recording (indices are acquire/release) but records landing
// mid-copy may be missed; the recorder must outlive every thread that
// logs into it — same rules as TraceRecorder.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_id.hpp"

namespace hsd::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
};

/// Lower-case level name ("trace".."error"; "unknown" out of range).
const char* toString(LogLevel level);

/// Parse a level name (case-insensitive: "warn", "WARN", "warning").
/// Returns false on anything else, leaving `out` untouched.
bool parseLogLevel(std::string_view name, LogLevel& out);

class LogRecorder {
 public:
  static constexpr std::size_t kMessageCapacity = 88;
  static constexpr std::size_t kDefaultCapacity = 1 << 13;  ///< per thread

  /// One recorded log line, fixed-size so ring slots never allocate.
  struct Record {
    char message[kMessageCapacity];  ///< truncated copy, NUL-terminated
    const char* component;           ///< subsystem (string literal)
    std::int64_t tsNs;               ///< ns since recorder construction
    TraceId trace;                   ///< correlation ({0,0} = none)
    TraceArg a0, a1;                 ///< numeric args (key nullptr = absent)
    TraceStrArg s0;                  ///< string arg (key nullptr = absent)
    LogLevel level;
    /// Copied message length — serialization emits exactly this many
    /// bytes, so an embedded NUL in the message survives (escaped)
    /// instead of silently truncating the JSON string.
    std::uint8_t msgLen;
  };

  /// A serialization-ready view of one record plus thread attribution.
  struct SnapshotRecord {
    Record record;
    std::uint32_t tid = 0;  ///< dense per-recorder thread id
  };

  /// `perThreadCapacity` == 0 is clamped to 1.
  explicit LogRecorder(std::size_t perThreadCapacity = kDefaultCapacity);
  ~LogRecorder();

  LogRecorder(const LogRecorder&) = delete;
  LogRecorder& operator=(const LogRecorder&) = delete;

  /// Records below this level are dropped at the call site (one relaxed
  /// load). Settable at any time from any thread.
  void setMinLevel(LogLevel level) {
    minLevel_.store(int(level), std::memory_order_relaxed);
  }
  LogLevel minLevel() const {
    return LogLevel(minLevel_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const { return int(level) >= int(minLevel()); }

  /// Record one log line. `component`, arg keys, and the string arg value
  /// must be literals; `message` is copied (truncated) into the ring
  /// slot. An invalid `trace` is replaced by currentTraceId(). Lock-free
  /// and allocation-free after the calling thread's first record.
  void log(LogLevel level, const char* component, std::string_view message,
           TraceArg a0 = {}, TraceArg a1 = {}, TraceStrArg s0 = {},
           TraceId trace = {});

  /// Total records overwritten because a ring was full (drop-oldest).
  std::uint64_t droppedRecords() const;

  /// Records currently resident across all rings (drops excluded).
  std::size_t recordCount() const;

  std::size_t perThreadCapacity() const { return capacity_; }

  /// Resident records in (tid, record order), oldest first per thread.
  std::vector<SnapshotRecord> snapshot() const;

  /// Wall-clock ns at recorder construction; unixNs of a record is
  /// wallEpochNs() + record.tsNs (steady and wall clocks drift, but over
  /// a process lifetime the anchor is plenty for log reading).
  std::int64_t wallEpochNs() const { return wallEpochNs_; }

  /// One JSON object (no trailing newline) for a snapshot record —
  /// {"tsNs":..,"unixMs":..,"level":"..","component":"..","tid":N,
  ///  "message":"..","trace":"..hex..", <args...>}. Shared by the /logz
  /// handler and the file sink.
  void appendRecordJson(std::ostream& os, const SnapshotRecord& sr) const;

  /// JSON-lines dump of the whole snapshot, sorted by tsNs (the
  /// hsd_serve/hsd_detect --log-out format); ends with a newline.
  void writeJsonLines(std::ostream& os) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t cap, std::uint32_t id)
        : records(cap), tid(id) {}
    std::vector<Record> records;
    std::atomic<std::uint64_t> writeIndex{0};  ///< total appends, unwrapped
    std::uint32_t tid;
  };

  ThreadBuffer& bufferForThisThread();

  const std::size_t capacity_;
  const std::uint64_t id_;  ///< process-unique, keys the TLS fast path
  const std::chrono::steady_clock::time_point epoch_;
  const std::int64_t wallEpochNs_;
  std::atomic<int> minLevel_{int(LogLevel::kInfo)};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::unordered_map<std::thread::id, ThreadBuffer*> byThread_;
};

/// One-branch-when-off convenience: every call site in engine/serve holds
/// a LogRecorder* that is nullptr when logging is disabled.
inline void logTo(LogRecorder* rec, LogLevel level, const char* component,
                  std::string_view message, TraceArg a0 = {}, TraceArg a1 = {},
                  TraceStrArg s0 = {}) {
  if (rec != nullptr && rec->enabled(level))
    rec->log(level, component, message, a0, a1, s0);
}

}  // namespace hsd::obs
