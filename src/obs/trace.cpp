#include "obs/trace.hpp"

#include <algorithm>
#include <locale>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace hsd::obs {

namespace {

std::uint64_t nextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Single-slot per-thread cache of the last (recorder, buffer) pair, so the
// hot recording path never touches the registry mutex. Keyed by the
// recorder's process-unique id: a dangling pointer from a destroyed
// recorder can never be revived, because a new recorder always carries a
// fresh id and misses this cache.
struct TlsSlot {
  std::uint64_t recorderId = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot tlsSlot;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t perThreadCapacity)
    : capacity_(perThreadCapacity == 0 ? 1 : perThreadCapacity),
      id_(nextRecorderId()),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer& TraceRecorder::bufferForThisThread() {
  if (tlsSlot.recorderId == id_)
    return *static_cast<ThreadBuffer*>(tlsSlot.buffer);
  const std::lock_guard<std::mutex> lock(mu_);
  ThreadBuffer*& slot = byThread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        capacity_, static_cast<std::uint32_t>(buffers_.size())));
    slot = buffers_.back().get();
  }
  tlsSlot = {id_, slot};
  return *slot;
}

void TraceRecorder::recordSpan(std::string_view name, const char* cat,
                               std::chrono::steady_clock::time_point t0,
                               std::chrono::steady_clock::time_point t1,
                               TraceArg a0, TraceArg a1, TraceStrArg s0,
                               TraceId trace) {
  if (!trace.valid()) trace = currentTraceId();
  ThreadBuffer& buf = bufferForThisThread();
  const std::uint64_t w = buf.writeIndex.load(std::memory_order_relaxed);
  Event& e = buf.events[w % capacity_];
  const std::size_t len = std::min(name.size(), kNameCapacity - 1);
  std::memcpy(e.name, name.data(), len);
  e.name[len] = '\0';
  e.cat = cat;
  // Clamp to the recorder's lifetime: a span whose begin predates the
  // recorder (e.g. a request submitted before tracing was attached) lands
  // at ts 0 instead of emitting a negative timestamp the writer can't
  // format.
  e.tsNs = std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - epoch_)
             .count());
  e.durNs = std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count());
  e.a0 = a0;
  e.a1 = a1;
  e.s0 = s0;
  e.trace = trace;
  // Release-publish: a reader that acquires w+1 sees this slot complete.
  buf.writeIndex.store(w + 1, std::memory_order_release);
}

void TraceRecorder::nameThread(const std::string& name) {
  ThreadBuffer& buf = bufferForThisThread();
  const std::lock_guard<std::mutex> lock(mu_);
  buf.name = name;
}

std::uint64_t TraceRecorder::droppedEvents() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    const std::uint64_t w = buf->writeIndex.load(std::memory_order_acquire);
    if (w > capacity_) dropped += w - capacity_;
  }
  return dropped;
}

std::size_t TraceRecorder::spanCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_)
    n += std::size_t(std::min<std::uint64_t>(
        buf->writeIndex.load(std::memory_order_acquire), capacity_));
  return n;
}

std::vector<TraceRecorder::SnapshotEvent> TraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEvent> out;
  for (const auto& buf : buffers_) {
    const std::uint64_t w = buf->writeIndex.load(std::memory_order_acquire);
    const std::uint64_t resident = std::min<std::uint64_t>(w, capacity_);
    out.reserve(out.size() + resident);
    // Oldest resident event first: with a wrapped ring that is the slot
    // the next append would overwrite.
    for (std::uint64_t k = w - resident; k < w; ++k)
      out.push_back({buf->events[k % capacity_], buf->tid});
  }
  return out;
}

std::vector<std::string> TraceRecorder::threadNames() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names(buffers_.size());
  for (const auto& buf : buffers_) names[buf->tid] = buf->name;
  return names;
}

void TraceRecorder::writeJson(std::ostream& os) const {
  const std::vector<SnapshotEvent> events = snapshot();
  const std::vector<std::string> names = threadNames();
  // A grouping locale on the caller's stream would corrupt the numbers
  // ("1.234" for tid 1234); pin the classic locale, restore on exit.
  const std::locale saved = os.imbue(std::locale::classic());
  os << "{\"traceEvents\": [";
  bool first = true;
  for (std::size_t tid = 0; tid < names.size(); ++tid) {
    if (names[tid].empty()) continue;
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << jsonEscape(names[tid]) << "\"}}";
  }
  for (const SnapshotEvent& se : events) {
    if (!first) os << ",";
    first = false;
    const Event& e = se.event;
    os << "\n{\"ph\": \"X\", \"pid\": 1, \"tid\": " << se.tid
       << ", \"name\": \"" << jsonEscape(e.name) << "\", \"cat\": \""
       << jsonEscape(e.cat) << "\", \"ts\": " << e.tsNs / 1000 << '.'
       << char('0' + e.tsNs / 100 % 10) << char('0' + e.tsNs / 10 % 10)
       << char('0' + e.tsNs % 10) << ", \"dur\": " << e.durNs / 1000 << '.'
       << char('0' + e.durNs / 100 % 10) << char('0' + e.durNs / 10 % 10)
       << char('0' + e.durNs % 10);
    if (e.a0.key != nullptr || e.s0.key != nullptr || e.trace.valid()) {
      os << ", \"args\": {";
      bool firstArg = true;
      for (const TraceArg* a : {&e.a0, &e.a1}) {
        if (a->key == nullptr) continue;
        if (!firstArg) os << ", ";
        firstArg = false;
        os << '"' << jsonEscape(a->key) << "\": " << a->value;
      }
      if (e.s0.key != nullptr) {
        if (!firstArg) os << ", ";
        firstArg = false;
        os << '"' << jsonEscape(e.s0.key) << "\": \"" << jsonEscape(e.s0.value)
           << '"';
      }
      if (e.trace.valid()) {
        if (!firstArg) os << ", ";
        char trace[kTraceIdChars + 1];
        formatTraceId(e.trace, trace);
        os << "\"trace\": \"" << trace << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n], \"displayTimeUnit\": \"ms\", \"droppedEvents\": "
     << droppedEvents() << "}\n";
  os.imbue(saved);
}

std::string TraceRecorder::toJson() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

}  // namespace hsd::obs
