#include "obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace hsd::obs {

namespace {

constexpr std::size_t kNone = std::size_t(-1);

/// PSI between baseline counts `p` and live window counts `q` with
/// Laplace smoothing: every bucket gets `alpha` pseudo-observations, so
/// proportions are strictly positive and the logs are finite.
double psiOf(const MarginSketch::Counts& p, const MarginSketch::Counts& q,
             double alpha) {
  const double pn =
      double(MarginSketch::total(p)) + alpha * double(MarginSketch::kNumBuckets);
  const double qn =
      double(MarginSketch::total(q)) + alpha * double(MarginSketch::kNumBuckets);
  if (pn <= 0.0 || qn <= 0.0) return 0.0;
  double psi = 0.0;
  for (std::size_t b = 0; b < MarginSketch::kNumBuckets; ++b) {
    const double pi = (double(p[b]) + alpha) / pn;
    const double qi = (double(q[b]) + alpha) / qn;
    psi += (qi - pi) * std::log(qi / pi);
  }
  return psi;
}

}  // namespace

void ModelBaseline::save(std::ostream& os) const {
  os << "baseline " << clusters.size() << ' ' << MarginSketch::kNumBuckets
     << '\n';
  for (const Cluster& c : clusters) {
    os << c.name << '\n';
    os << c.hot << ' ' << c.cold;
    for (const std::uint64_t v : c.buckets) os << ' ' << v;
    os << '\n';
  }
}

ModelBaseline ModelBaseline::load(std::istream& is) {
  std::size_t n = 0;
  std::size_t buckets = 0;
  is >> n >> buckets;
  if (!is || buckets != MarginSketch::kNumBuckets)
    throw std::runtime_error("ModelBaseline::load: bad header");
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  ModelBaseline out;
  out.clusters.resize(n);
  for (Cluster& c : out.clusters) {
    std::getline(is, c.name);
    is >> c.hot >> c.cold;
    for (std::uint64_t& v : c.buckets) is >> v;
    is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
  if (!is) throw std::runtime_error("ModelBaseline::load: truncated");
  return out;
}

DriftScorer::DriftScorer(ModelBaseline baseline, DriftConfig cfg)
    : baseline_(std::move(baseline)), cfg_(cfg), epoch_(Clock::now()) {}

void DriftScorer::setSource(std::shared_ptr<const ModelStatsRecorder> source) {
  const std::lock_guard<std::mutex> lock(mu_);
  source_ = std::move(source);
  ring_.clear();
  baselineOf_.clear();
  if (!source_) return;
  const std::vector<std::string>& names = source_->clusterNames();
  baselineOf_.assign(names.size(), kNone);
  // Slot order is the canonical alignment: the baseline is persisted in
  // kernel order and recorders are built from Detector::clusterNames() in
  // the same order. Topology keys can repeat across kernels (clusters are
  // per-kernel, not per-key), so a name search alone would map every
  // duplicate onto the first key match; positional match wins, with name
  // search only as the fallback for reshaped recorders.
  for (std::size_t s = 0; s < names.size(); ++s) {
    if (s < baseline_.clusters.size() && baseline_.clusters[s].name == names[s]) {
      baselineOf_[s] = s;
      continue;
    }
    for (std::size_t b = 0; b < baseline_.clusters.size(); ++b)
      if (baseline_.clusters[b].name == names[s]) {
        baselineOf_[s] = b;
        break;
      }
  }
}

void DriftScorer::sample(Clock::time_point now) {
  std::shared_ptr<const ModelStatsRecorder> src;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    src = source_;
  }
  if (!src) return;
  Sample s;
  s.tNs = std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
              .count();
  s.cumulative = src->bucketCounts();
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(s));
  // Prune like SloTracker: keep one sample older than the window (the
  // delta baseline) and bound the ring size.
  const double keepNs = cfg_.windowSeconds * 1e9 * 1.25;
  while (ring_.size() > 2 &&
         double(ring_.back().tNs - ring_[1].tNs) >= keepNs)
    ring_.pop_front();
  while (ring_.size() > cfg_.maxSamples) ring_.pop_front();
}

DriftScorer::Status DriftScorer::status(Clock::time_point now) const {
  std::shared_ptr<const ModelStatsRecorder> src;
  std::vector<std::size_t> baselineOf;
  std::deque<Sample> ring;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    src = source_;
    baselineOf = baselineOf_;
    ring = ring_;
  }
  Status st;
  if (!src) return st;
  const std::int64_t nowNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count();
  const std::vector<MarginSketch::Counts> cur = src->bucketCounts();
  // Window origin: the newest sample at least windowSeconds old; with no
  // sample that old the zero origin serves — the window degrades to
  // "since scoring started", honest while history is short.
  const Sample* base = nullptr;
  for (const Sample& s : ring) {
    if (double(nowNs - s.tNs) >= cfg_.windowSeconds * 1e9) {
      base = &s;
    } else {
      break;  // ring is time-ordered; later samples are younger
    }
  }
  const std::vector<std::string>& names = src->clusterNames();
  st.clusters.resize(names.size());
  for (std::size_t s = 0; s < names.size(); ++s) {
    ClusterStatus& cs = st.clusters[s];
    cs.name = names[s];
    cs.coveredSeconds = std::min(
        cfg_.windowSeconds,
        double(nowNs - (base != nullptr ? base->tNs : 0)) / 1e9);
    MarginSketch::Counts window = cur[s];
    if (base != nullptr && s < base->cumulative.size())
      for (std::size_t b = 0; b < MarginSketch::kNumBuckets; ++b)
        window[b] -= base->cumulative[s][b];
    cs.windowCount = MarginSketch::total(window);
    const std::size_t bi = s < baselineOf.size() ? baselineOf[s] : kNone;
    if (bi == kNone) continue;  // unscored: no baseline for this slot
    cs.psi = psiOf(baseline_.clusters[bi].buckets, window, cfg_.smoothing);
    cs.scored = cs.windowCount >= cfg_.minWindowCount;
    cs.drifted = cs.scored && cs.psi > cfg_.psiThreshold;
    st.anyDrifted = st.anyDrifted || cs.drifted;
  }
  return st;
}

std::string DriftScorer::toJson(const Status& st) const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << "{\"psiThreshold\": " << cfg_.psiThreshold
     << ", \"windowSeconds\": " << cfg_.windowSeconds
     << ", \"minWindowCount\": " << cfg_.minWindowCount
     << ", \"drifted\": " << (st.anyDrifted ? "true" : "false")
     << ", \"clusters\": [";
  bool first = true;
  for (const ClusterStatus& c : st.clusters) {
    if (!first) os << ", ";
    first = false;
    os << "{\"cluster\": \"" << jsonEscape(c.name)
       << "\", \"windowCount\": " << c.windowCount
       << ", \"coveredSeconds\": " << c.coveredSeconds
       << ", \"psi\": " << c.psi
       << ", \"scored\": " << (c.scored ? "true" : "false")
       << ", \"drifted\": " << (c.drifted ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hsd::obs
