#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <locale>
#include <sstream>
#include <stdexcept>

namespace hsd::obs {

namespace {

/// Escape a HELP line or label value per the exposition format: backslash,
/// newline (and for label values, double quote).
std::string expositionEscape(const std::string& s, bool labelValue) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (labelValue && c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

/// Deterministic, locale-independent float formatting for bounds/sums.
std::string formatDouble(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << v;
  return os.str();
}

const char* typeName(bool isCounter, bool isGauge) {
  return isCounter ? "counter" : isGauge ? "gauge" : "histogram";
}

}  // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)),
      buckets_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
}

std::vector<double> Histogram::exponentialBuckets(double start, double factor,
                                                  std::size_t count) {
  if (start <= 0.0 || factor <= 1.0)
    throw std::invalid_argument(
        "Histogram::exponentialBuckets: need start > 0 and factor > 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[std::size_t(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::observe(double value, TraceId trace) {
  observe(value);
  if (!trace.valid()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = std::size_t(it - bounds_.begin());
  const std::int64_t unixMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const std::lock_guard<std::mutex> lock(exemplarMu_);
  exemplars_[bucket] = Exemplar{value, trace, unixMs};
}

std::vector<Histogram::Exemplar> Histogram::exemplars() const {
  const std::lock_guard<std::mutex> lock(exemplarMu_);
  return exemplars_;
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * double(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t prevCum = cum;
    cum += counts[i];
    if (double(cum) < rank) continue;
    if (i == bounds_.size())  // +Inf bucket: clamp to largest finite bound
      return bounds_.empty() ? 0.0 : bounds_.back();
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const double within = (rank - double(prevCum)) / double(counts[i]);
    return lo + within * (hi - lo);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::string MetricsRegistry::sanitizeName(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (char& c : out)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':'))
      c = '_';
  if (std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, 1, '_');
  return out;
}

std::string MetricsRegistry::sanitizeLabelName(const std::string& name) {
  std::string out = sanitizeName(name);
  for (char& c : out)
    if (c == ':') c = '_';
  return out;
}

MetricsRegistry::Family& MetricsRegistry::familyOf(const std::string& name,
                                                   const std::string& help,
                                                   Type type) {
  const std::string clean = sanitizeName(name);
  for (const auto& fam : families_)
    if (fam->name == clean) {
      if (fam->type != type)
        throw std::invalid_argument("MetricsRegistry: metric '" + clean +
                                    "' re-registered with a different type");
      return *fam;
    }
  families_.push_back(
      std::make_unique<Family>(Family{clean, help, type, {}}));
  return *families_.back();
}

MetricsRegistry::Sample& MetricsRegistry::sampleOf(Family& fam,
                                                   const Labels& labels) {
  std::string rendered;
  for (const auto& [k, v] : labels) {
    if (!rendered.empty()) rendered += ',';
    rendered += sanitizeLabelName(k) + "=\"" + expositionEscape(v, true) + '"';
  }
  for (auto& s : fam.samples)
    if (s.labels == rendered) return s;
  fam.samples.push_back(Sample{rendered, nullptr, nullptr, nullptr});
  return fam.samples.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Sample& s = sampleOf(familyOf(name, help, Type::kCounter), labels);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Sample& s = sampleOf(familyOf(name, help, Type::kGauge), labels);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upperBounds,
                                      const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Sample& s = sampleOf(familyOf(name, help, Type::kHistogram), labels);
  if (!s.histogram)
    s.histogram = std::make_unique<Histogram>(std::move(upperBounds));
  return *s.histogram;
}

std::string MetricsRegistry::renderPrometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os.imbue(std::locale::classic());
  for (const auto& fam : families_) {
    if (!fam->help.empty())
      os << "# HELP " << fam->name << ' ' << expositionEscape(fam->help, false)
         << '\n';
    os << "# TYPE " << fam->name << ' '
       << typeName(fam->type == Type::kCounter, fam->type == Type::kGauge)
       << '\n';
    for (const auto& s : fam->samples) {
      const std::string block =
          s.labels.empty() ? std::string() : '{' + s.labels + '}';
      switch (fam->type) {
        case Type::kCounter:
          os << fam->name << block << ' ' << s.counter->value() << '\n';
          break;
        case Type::kGauge:
          os << fam->name << block << ' ' << s.gauge->value() << '\n';
          break;
        case Type::kHistogram: {
          const Histogram& h = *s.histogram;
          const std::vector<std::uint64_t> counts = h.bucketCounts();
          const std::vector<double>& bounds = h.bounds();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < bounds.size(); ++i) {
            cum += counts[i];
            os << fam->name << "_bucket{"
               << (s.labels.empty() ? std::string() : s.labels + ",")
               << "le=\"" << formatDouble(bounds[i]) << "\"} " << cum << '\n';
          }
          cum += counts[bounds.size()];
          os << fam->name << "_bucket{"
             << (s.labels.empty() ? std::string() : s.labels + ",")
             << "le=\"+Inf\"} " << cum << '\n';
          std::ostringstream sum;
          sum.imbue(std::locale::classic());
          sum.precision(6);
          sum << std::fixed << h.sum();
          os << fam->name << "_sum" << block << ' ' << sum.str() << '\n';
          os << fam->name << "_count" << block << ' ' << h.count() << '\n';
          break;
        }
      }
    }
  }
  return os.str();
}

}  // namespace hsd::obs
