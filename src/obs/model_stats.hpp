// Model-quality observability: what the detector's SVM kernels are
// actually deciding, per topology cluster, while traffic flows — the
// telemetry layer that the active-learning roadmap item builds on.
//
// Three pieces, one recorder:
//
//  1. MarginSketch — a fixed-size, mergeable quantile sketch over signed
//     SVM decision values. Symmetric log-spaced buckets mirrored around
//     zero (the same exponential-bucket idea as obs::Histogram, extended
//     to negative values, which decision margins mostly are). Bucketing
//     is a pure function of the value and merging is bucket-count
//     addition, so any partition of the same observations — per thread,
//     per tile, per context — sums to the identical sketch. That is what
//     makes /modelz quantiles byte-stable across threads {1,8} and
//     tiled-vs-monolithic runs.
//
//  2. ModelStatsRecorder — per-cluster margin sketches plus hot/cold
//     verdict counters, accumulated lock-free into per-thread slots
//     (TraceRecorder/LogRecorder memory discipline: a process-unique id
//     keys a TLS fast path, per-thread state is allocated once on the
//     thread's first record and never again; recording is relaxed-atomic
//     increments only). Optionally bound to a MetricsRegistry, where each
//     cluster contributes hsd_model_verdicts_total{cluster=,verdict=}
//     counters to the Prometheus exposition.
//
//  3. The low-margin capture ring — fixed-size records (anchor coords,
//     window content hash, margin, trace id) of decisions that landed
//     within `captureWidth` of the decision boundary, drop-oldest per
//     thread, zero steady-state allocation. These borderline windows are
//     exactly the batch-active-learning candidate feed.
//
// Quiescence contract (same as the other recorders): snapshot() may run
// concurrently with recording — counts are relaxed reads and capture
// records landing mid-copy may be missed; the recorder must outlive every
// thread that records into it. Bind metrics before recording starts.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_id.hpp"

namespace hsd::obs {

/// Fixed symmetric log-bucket layout for signed decision values, plus the
/// arithmetic over a bucket-count array. Stateless: the recorder, the
/// persisted baseline, and the drift scorer all share one layout, so
/// their counts are directly comparable.
struct MarginSketch {
  /// Smallest magnitude resolved; |v| below it lands in the center
  /// ("near-boundary") bucket.
  static constexpr double kStart = 1e-3;
  static constexpr double kFactor = 2.0;
  static constexpr std::size_t kBucketsPerSide = 24;  ///< up to |v| ~ 1.6e4
  static constexpr std::size_t kNumBuckets = 2 * kBucketsPerSide + 1;

  using Counts = std::array<std::uint64_t, kNumBuckets>;

  /// Bucket index of a signed margin: [0, kBucketsPerSide) negative
  /// magnitudes largest-first, kBucketsPerSide the center, then positive
  /// magnitudes smallest-first. NaN maps to the center bucket (a NaN
  /// decision predicts -1 at the boundary; see SvmModel::predict).
  static std::size_t bucketOf(double margin);

  /// [lower, upper) value range represented by a bucket (the outermost
  /// buckets clamp to +-infinity on the open side).
  static double lowerBound(std::size_t bucket);
  static double upperBound(std::size_t bucket);

  static std::uint64_t total(const Counts& c);

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank — obs::Histogram::quantile extended
  /// to the signed layout. Empty counts report 0.
  static double quantile(const Counts& c, double q);
};

class ModelStatsRecorder {
 public:
  struct Options {
    /// |margin - bias| below this captures the decision into the
    /// low-margin ring (0 disables capture).
    double captureWidth = 0.25;
    /// Capture-ring capacity per recording thread.
    std::size_t captureCapacity = 256;
  };

  /// Name of the reserved pseudo-cluster recording the feedback kernel's
  /// reclaim decisions (the evaluation fallback path — appended after the
  /// per-kernel cluster slots).
  static constexpr const char* kFeedbackCluster = "feedback";

  /// One slot per kernel cluster, in kernel order, plus the trailing
  /// feedback slot. Empty names render as "k<i>". (Two overloads rather
  /// than `opts = {}`: gcc rejects brace-defaulting a nested class with
  /// member initializers before the enclosing class is complete.)
  explicit ModelStatsRecorder(std::vector<std::string> clusterNames)
      : ModelStatsRecorder(std::move(clusterNames), Options{}) {}
  ModelStatsRecorder(std::vector<std::string> clusterNames, Options opts);
  ~ModelStatsRecorder();

  ModelStatsRecorder(const ModelStatsRecorder&) = delete;
  ModelStatsRecorder& operator=(const ModelStatsRecorder&) = delete;

  std::size_t numSlots() const { return names_.size(); }
  std::size_t feedbackSlot() const { return names_.size() - 1; }
  const std::vector<std::string>& clusterNames() const { return names_; }
  const Options& options() const { return opts_; }

  /// Register hsd_model_verdicts_total{cluster=,verdict=} counters for
  /// every slot; record() then bumps them alongside the sketch. Call
  /// before any thread records (the pointers are installed unguarded).
  void bindMetrics(MetricsRegistry& registry);

  /// Record one decision: `margin` lands in the slot's sketch, `hot`
  /// bumps the slot's verdict counter. Out-of-range slots are dropped
  /// (counted). Lock-free and allocation-free after the calling thread's
  /// first record.
  void record(std::size_t slot, double margin, bool hot);

  /// True when a decision this close to the boundary should be captured —
  /// the caller computes the (possibly expensive) content hash only then.
  bool shouldCapture(double distanceToBoundary) const;

  /// Append one low-margin record to the calling thread's capture ring
  /// (drop-oldest). The trace id is the calling thread's current one.
  void capture(std::size_t slot, double margin, std::int64_t anchorX,
               std::int64_t anchorY, std::uint64_t contentHash);

  /// One captured borderline decision (fixed-size ring slot).
  struct Capture {
    std::int64_t anchorX = 0;
    std::int64_t anchorY = 0;
    std::uint64_t contentHash = 0;
    std::int64_t tsNs = 0;  ///< since recorder construction
    TraceId trace;
    double margin = 0.0;
    std::uint32_t cluster = 0;
  };

  struct ClusterCounts {
    std::string name;
    std::uint64_t hot = 0;
    std::uint64_t cold = 0;
    MarginSketch::Counts buckets{};
    std::uint64_t count() const { return hot + cold; }
  };

  /// Merged view: per-cluster counts summed across threads (order
  /// independent — identical whatever the thread layout), captures in
  /// per-thread ring order.
  struct Snapshot {
    std::vector<ClusterCounts> clusters;
    std::vector<Capture> captures;
    std::uint64_t capturedTotal = 0;    ///< lifetime captures (incl. dropped)
    std::uint64_t droppedCaptures = 0;  ///< overwritten by ring wrap
    std::uint64_t droppedRecords = 0;   ///< out-of-range slot drops
  };
  Snapshot snapshot() const;

  /// Merged per-cluster cumulative bucket counts only (the drift scorer's
  /// sampling input; cheaper than a full snapshot).
  std::vector<MarginSketch::Counts> bucketCounts() const;

  /// JSON object for /modelz, the /statsz "model" section and the
  /// --model-stats-out file: per-cluster counts and margin quantiles plus
  /// a capture-ring summary with at most `captureLimit` records (most
  /// recent win), oldest first. A non-empty `clusterFilter` restricts
  /// both the cluster list and the captures to that cluster (callers
  /// validate the name against clusterNames() first).
  std::string toJson(std::size_t captureLimit = 64,
                     std::string_view clusterFilter = {}) const;

 private:
  struct ThreadState {
    ThreadState(std::size_t slots, std::size_t captureCapacity);
    /// slots * kNumBuckets relaxed counters, then slots * 2 verdict
    /// counters (hot, cold) — one flat allocation per thread, made once.
    std::vector<std::atomic<std::uint64_t>> counts;
    std::vector<Capture> ring;
    std::atomic<std::uint64_t> captureWrite{0};
  };

  ThreadState& stateForThisThread();
  std::size_t bucketBase(std::size_t slot) const {
    return slot * MarginSketch::kNumBuckets;
  }
  std::size_t verdictBase(std::size_t slot) const {
    return names_.size() * MarginSketch::kNumBuckets + slot * 2;
  }

  const std::vector<std::string> names_;  ///< incl. trailing feedback slot
  const Options opts_;
  const std::uint64_t id_;  ///< process-unique, keys the TLS fast path
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> droppedRecords_{0};

  /// Bound metric counters per slot ({hot, cold}); nullptr when unbound.
  std::vector<std::pair<Counter*, Counter*>> metricCounters_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadState>> states_;
  std::unordered_map<std::thread::id, ThreadState*> byThread_;
};

/// One-branch-when-off convenience, mirroring obs::logTo — evaluation
/// sites hold a ModelStatsRecorder* that is nullptr when the plane is off.
inline void recordTo(ModelStatsRecorder* rec, std::size_t slot, double margin,
                     bool hot) {
  if (rec != nullptr) rec->record(slot, margin, hot);
}

}  // namespace hsd::obs
