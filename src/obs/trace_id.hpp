// Request-correlation ids: a 128-bit TraceId compatible with the W3C
// Trace Context `traceparent` header, plus the thread-local propagation
// machinery that carries one id across the serving stack without
// touching every call signature.
//
// Propagation model: the wire endpoint parses (or mints) a TraceId and
// installs it in a thread-local slot with a ScopedTraceId guard; every
// boundary that moves work to another thread re-installs the caller's id
// there (ThreadPool::parallelFor worker tasks, the DetectionServer
// worker, the tiled fan-out's helper drains). Recording sites
// (TraceRecorder::recordSpan, LogRecorder::log) read currentTraceId()
// when no explicit id is passed, so existing instrumentation gains
// correlation for free — and emits nothing trace-related when the slot
// is empty, keeping untraced output byte-identical to pre-propagation
// builds.
//
// Everything here is allocation-free: ids are two u64s, the TLS slot is
// a plain thread_local (single-thread access by construction), and
// formatting writes into a caller buffer. formatTraceId() returning
// std::string is a response-header convenience, not a hot-path API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hsd::obs {

/// 128-bit trace id, {0, 0} meaning "absent" (the W3C invalid id).
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId&, const TraceId&) = default;
};

/// Bytes needed by formatTraceId's buffer form (32 hex chars + NUL).
inline constexpr std::size_t kTraceIdChars = 32;

/// Lower-case 32-hex rendering (the traceparent trace-id field). The
/// buffer form writes kTraceIdChars digits plus a terminating NUL into
/// `out` (which must hold >= kTraceIdChars + 1 bytes) — no allocation.
void formatTraceId(const TraceId& id, char* out);
std::string formatTraceId(const TraceId& id);

/// Parse a bare 32-hex trace id (case-insensitive). Returns false — and
/// leaves `out` untouched — on any other length, a non-hex byte, or the
/// all-zero id (invalid per W3C).
bool parseTraceId(std::string_view hex, TraceId& out);

/// Parse a W3C `traceparent` header value:
///   version "-" trace-id "-" parent-id "-" flags
///   e.g. 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01
/// Any 2-hex version except "ff" is accepted (per spec, future versions
/// must keep the first four fields); only the trace-id is extracted.
bool parseTraceparent(std::string_view header, TraceId& out);

/// Render a full traceparent value (version 00, the given trace id, a
/// fresh parent/span id, flags 01 "sampled").
std::string formatTraceparent(const TraceId& id);

/// Mint a process-unique random trace id (never the invalid zero id).
/// Lock-free and allocation-free after the first call.
TraceId makeTraceId();

/// The calling thread's current trace id ({0,0} when none is installed).
TraceId currentTraceId();

namespace detail {
TraceId& currentTraceSlot();
}  // namespace detail

/// RAII guard that installs `id` as the calling thread's current trace
/// id and restores the previous value on destruction. Installing the
/// invalid id is allowed (it masks an outer id for untraced work).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(TraceId id) : prev_(detail::currentTraceSlot()) {
    detail::currentTraceSlot() = id;
  }
  ~ScopedTraceId() { detail::currentTraceSlot() = prev_; }

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  TraceId prev_;
};

}  // namespace hsd::obs
