#include "obs/json.hpp"

#include <cstdio>

namespace hsd::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Escape every control byte — C0 (incl. embedded NUL, which must
        // not truncate the string) and DEL. Bytes >= 0x80 pass through
        // untouched: they are UTF-8 continuation/lead bytes and escaping
        // them would corrupt multi-byte sequences.
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20 || u == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

}  // namespace hsd::obs
