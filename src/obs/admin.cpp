#include "obs/admin.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <locale>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/json.hpp"

namespace hsd::obs {

namespace {

enum ScrapeIndex {
  kMetrics = 0,
  kStatsz = 1,
  kTracez = 2,
  kHealthz = 3,
  kReadyz = 4,
  kLogz = 5,
  kSloz = 6,
  kModelz = 7,
};

constexpr const char* kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// Shared ?limit= parsing for the snapshot endpoints (/tracez, /logz):
/// absent keeps `out` at its default and succeeds; anything but a
/// positive integer fails with a message for the 400 body. No silent
/// defaulting on junk.
bool parseLimitParam(const net::HttpRequest& req, std::size_t& out,
                     std::string& err) {
  const std::string raw = req.queryParam("limit");
  if (raw.empty()) return true;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0' || v == 0 ||
      !std::isdigit(static_cast<unsigned char>(raw[0]))) {
    err = "bad numeric value for 'limit': " + raw;
    return false;
  }
  out = std::size_t(std::min<unsigned long long>(v, 1u << 20));
  return true;
}

/// Shared ?trace= parsing: absent leaves `has` false; a present value
/// must be a 32-hex trace id.
bool parseTraceParam(const net::HttpRequest& req, TraceId& out, bool& has,
                     std::string& err) {
  const std::string raw = req.queryParam("trace");
  if (raw.empty()) return true;
  if (!parseTraceId(raw, out)) {
    err = "bad trace id for 'trace' (want 32 hex chars): " + raw;
    return false;
  }
  has = true;
  return true;
}

/// True when `key` appears in the query string as a key (bare or with a
/// value) — HttpRequest::queryParam can't distinguish `?degraded` from
/// no query at all.
bool hasQueryKey(const net::HttpRequest& req, std::string_view key) {
  std::string_view q = req.query;
  while (!q.empty()) {
    const std::size_t amp = q.find('&');
    std::string_view part = q.substr(0, amp);
    const std::size_t eq = part.find('=');
    if (part.substr(0, eq) == key) return true;
    if (amp == std::string_view::npos) break;
    q.remove_prefix(amp + 1);
  }
  return false;
}

net::HttpResponse badRequest(const std::string& detail) {
  return net::HttpResponse::text(400, "Bad Request: " + detail + "\n");
}

}  // namespace

AdminServer::AdminServer(AdminOptions opts)
    : opts_(opts),
      http_([&opts] {
        net::HttpServerOptions h;
        h.port = opts.port;
        h.bindAddress = opts.bindAddress;
        h.handlerThreads = opts.handlerThreads;
        return h;
      }()),
      self_(std::make_shared<MetricsRegistry>()) {
  // Registration order is exposition order — keep it stable.
  uptime_ = &self_->gauge("hsd_admin_uptime_seconds",
                          "Whole seconds since the admin server started");
  const std::pair<int, const char*> endpoints[] = {
      {kMetrics, "/metrics"}, {kStatsz, "/statsz"},  {kTracez, "/tracez"},
      {kHealthz, "/healthz"}, {kReadyz, "/readyz"},  {kLogz, "/logz"},
      {kSloz, "/sloz"},       {kModelz, "/modelz"}};
  for (const auto& [idx, endpoint] : endpoints)
    scrapes_[idx] = &self_->counter("hsd_admin_scrapes_total",
                                    "Admin endpoint hits by endpoint",
                                    {{"endpoint", endpoint}});

  http_.handle("/", [this](const net::HttpRequest&) {
    std::string body = "openhsd admin server\nendpoints:\n";
    for (const std::string& r : http_.routes()) body += "  " + r + "\n";
    return net::HttpResponse::text(200, std::move(body));
  });
  http_.handle("/healthz", [this](const net::HttpRequest&) {
    scrapes_[kHealthz]->inc();
    return net::HttpResponse::text(200, "ok\n");
  });
  http_.handle("/readyz",
               [this](const net::HttpRequest& req) { return handleReadyz(req); });
  http_.handle("/metrics",
               [this](const net::HttpRequest& req) { return handleMetrics(req); });
  http_.handle("/statsz",
               [this](const net::HttpRequest& req) { return handleStatsz(req); });
  http_.handle("/tracez",
               [this](const net::HttpRequest& req) { return handleTracez(req); });
  http_.handle("/logz",
               [this](const net::HttpRequest& req) { return handleLogz(req); });
  http_.handle("/sloz",
               [this](const net::HttpRequest& req) { return handleSloz(req); });
  http_.handle("/modelz",
               [this](const net::HttpRequest& req) { return handleModelz(req); });
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::requireNotStarted(const char* what) const {
  if (http_.running())
    throw std::logic_error(std::string("AdminServer: ") + what +
                           " must happen before start()");
}

void AdminServer::addMetrics(std::shared_ptr<const MetricsRegistry> registry) {
  requireNotStarted("addMetrics");
  if (registry) registries_.push_back(std::move(registry));
}

void AdminServer::setTracer(std::shared_ptr<const TraceRecorder> tracer) {
  requireNotStarted("setTracer");
  tracer_ = std::move(tracer);
}

void AdminServer::setLog(std::shared_ptr<const LogRecorder> log) {
  requireNotStarted("setLog");
  log_ = std::move(log);
}

void AdminServer::setSlo(std::shared_ptr<SloTracker> slo) {
  requireNotStarted("setSlo");
  slo_ = std::move(slo);
}

void AdminServer::setModelStats(std::shared_ptr<const ModelStatsRecorder> rec) {
  requireNotStarted("setModelStats");
  modelStats_ = std::move(rec);
}

void AdminServer::setDrift(std::shared_ptr<DriftScorer> drift) {
  requireNotStarted("setDrift");
  drift_ = std::move(drift);
}

void AdminServer::addStatsProvider(std::string key,
                                   std::function<std::string()> fn) {
  requireNotStarted("addStatsProvider");
  stats_.emplace_back(std::move(key), std::move(fn));
}

void AdminServer::addReadiness(std::function<bool()> ready) {
  addReadiness("hook" + std::to_string(readiness_.size()), std::move(ready));
}

void AdminServer::addReadiness(std::string name, std::function<bool()> ready) {
  requireNotStarted("addReadiness");
  readiness_.emplace_back(std::move(name), std::move(ready));
}

void AdminServer::start() {
  started_ = std::chrono::steady_clock::now();
  http_.start();
}

void AdminServer::stop() { http_.stop(); }

net::HttpResponse AdminServer::handleMetrics(const net::HttpRequest&) {
  scrapes_[kMetrics]->inc();
  uptime_->set(std::chrono::duration_cast<std::chrono::seconds>(
                   std::chrono::steady_clock::now() - started_)
                   .count());
  std::string out;
  for (const auto& reg : registries_) out += reg->renderPrometheus();
  out += self_->renderPrometheus();
  net::HttpResponse res;
  res.contentType = kPromContentType;
  res.body = std::move(out);
  return res;
}

net::HttpResponse AdminServer::handleStatsz(const net::HttpRequest&) {
  scrapes_[kStatsz]->inc();
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(3);
  os << std::fixed << "{\"uptimeSeconds\": "
     << std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
  for (const auto& [key, fn] : stats_) {
    os << ", \"" << jsonEscape(key) << "\": ";
    try {
      os << fn();
    } catch (const std::exception& e) {
      os << "{\"error\": \"" << jsonEscape(e.what()) << "\"}";
    } catch (...) {
      os << "{\"error\": \"unknown\"}";
    }
  }
  if (slo_) os << ", \"slo\": " << slo_->sampleAndJson();
  if (modelStats_) {
    os << ", \"model\": " << modelStats_->toJson(opts_.modelzDefaultLimit);
    if (drift_) os << ", \"modelDrift\": " << drift_->sampleAndJson();
  }
  os << "}\n";
  return net::HttpResponse::json(os.str());
}

net::HttpResponse AdminServer::handleReadyz(const net::HttpRequest& req) {
  scrapes_[kReadyz]->inc();
  bool allReady = true;
  std::vector<std::pair<const std::string*, bool>> hooks;
  hooks.reserve(readiness_.size());
  for (const auto& [name, ready] : readiness_) {
    const bool ok = ready();
    allReady = allReady && ok;
    hooks.emplace_back(&name, ok);
  }
  const int status = allReady ? 200 : 503;
  if (!hasQueryKey(req, "degraded"))
    return net::HttpResponse::text(status, allReady ? "ready\n" : "unready\n");
  // Detail view: same status code, JSON body naming each hook plus the
  // SLO burn-rate status when a tracker is mounted — "is it up" and "is
  // it healthy enough" in one scrape.
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\"ready\": " << (allReady ? "true" : "false") << ", \"hooks\": [";
  bool first = true;
  for (const auto& [name, ok] : hooks) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << jsonEscape(*name)
       << "\", \"ready\": " << (ok ? "true" : "false") << "}";
  }
  os << "]";
  if (slo_ || drift_) {
    // Degraded = any mounted health signal firing: an SLO burn or a
    // drifted model cluster. With only an SLO mounted the body is
    // byte-identical to the pre-drift format.
    bool degraded = false;
    std::string detail;
    if (slo_) {
      const SloTracker::Status st = slo_->sampleAndStatus();
      degraded = degraded || st.degraded;
      detail += ", \"slo\": " + slo_->toJson(st);
    }
    if (drift_) {
      const DriftScorer::Status dst = drift_->sampleAndStatus();
      degraded = degraded || dst.anyDrifted;
      detail += ", \"modelDrift\": " + drift_->toJson(dst);
    }
    os << ", \"degraded\": " << (degraded ? "true" : "false") << detail;
  }
  os << "}\n";
  net::HttpResponse res = net::HttpResponse::json(os.str());
  res.status = status;
  return res;
}

net::HttpResponse AdminServer::handleSloz(const net::HttpRequest&) {
  scrapes_[kSloz]->inc();
  if (!slo_)
    return net::HttpResponse::json("{\"enabled\": false}\n");
  std::string body = "{\"enabled\": true, \"slo\": ";
  body += slo_->sampleAndJson();
  body += "}\n";
  return net::HttpResponse::json(std::move(body));
}

net::HttpResponse AdminServer::handleModelz(const net::HttpRequest& req) {
  scrapes_[kModelz]->inc();
  std::size_t limit = opts_.modelzDefaultLimit;
  std::string err;
  if (!parseLimitParam(req, limit, err)) return badRequest(err);
  if (!modelStats_)
    return net::HttpResponse::json("{\"enabled\": false}\n");
  std::string cluster;
  if (hasQueryKey(req, "cluster")) {
    cluster = req.queryParam("cluster");
    const std::vector<std::string>& names = modelStats_->clusterNames();
    if (std::find(names.begin(), names.end(), cluster) == names.end())
      return badRequest("unknown cluster for 'cluster': " + cluster);
  }
  std::string body = "{\"enabled\": true, \"model\": ";
  body += modelStats_->toJson(limit, cluster);
  if (drift_) {
    body += ", \"drift\": ";
    body += drift_->sampleAndJson();
  }
  body += "}\n";
  return net::HttpResponse::json(std::move(body));
}

net::HttpResponse AdminServer::handleLogz(const net::HttpRequest& req) {
  scrapes_[kLogz]->inc();
  std::size_t limit = opts_.logzDefaultLimit;
  TraceId traceFilter;
  bool hasTrace = false;
  std::string err;
  if (!parseLimitParam(req, limit, err) ||
      !parseTraceParam(req, traceFilter, hasTrace, err))
    return badRequest(err);
  LogLevel levelFloor = LogLevel::kTrace;
  if (const std::string raw = req.queryParam("level"); !raw.empty()) {
    if (!parseLogLevel(raw, levelFloor))
      return badRequest("bad log level for 'level': " + raw);
  }
  std::ostringstream os;
  os.imbue(std::locale::classic());
  if (!log_) {
    os << "{\"enabled\": false, \"recordCount\": 0, \"returnedRecords\": 0}\n";
    net::HttpResponse res;
    res.contentType = "application/x-ndjson";
    res.body = os.str();
    return res;
  }
  std::vector<LogRecorder::SnapshotRecord> records = log_->snapshot();
  const std::size_t total = records.size();
  records.erase(std::remove_if(records.begin(), records.end(),
                               [&](const LogRecorder::SnapshotRecord& sr) {
                                 if (int(sr.record.level) < int(levelFloor))
                                   return true;
                                 return hasTrace &&
                                        !(sr.record.trace == traceFilter);
                               }),
                records.end());
  // Most recent records win the cap; render survivors oldest-first.
  std::sort(records.begin(), records.end(),
            [](const LogRecorder::SnapshotRecord& a,
               const LogRecorder::SnapshotRecord& b) {
              return a.record.tsNs < b.record.tsNs;
            });
  if (records.size() > limit)
    records.erase(records.begin(),
                  records.end() - static_cast<std::ptrdiff_t>(limit));
  // Meta line first, then one JSON object per record: every line parses
  // on its own (JSON lines), and the meta carries the snapshot counters.
  os << "{\"enabled\": true, \"recordCount\": " << total
     << ", \"returnedRecords\": " << records.size()
     << ", \"droppedRecords\": " << log_->droppedRecords()
     << ", \"minLevel\": \"" << toString(log_->minLevel()) << '"';
  if (hasTrace) os << ", \"trace\": \"" << formatTraceId(traceFilter) << '"';
  os << "}\n";
  for (const LogRecorder::SnapshotRecord& sr : records) {
    log_->appendRecordJson(os, sr);
    os << '\n';
  }
  net::HttpResponse res;
  res.contentType = "application/x-ndjson";
  res.body = os.str();
  return res;
}

net::HttpResponse AdminServer::handleTracez(const net::HttpRequest& req) {
  scrapes_[kTracez]->inc();
  std::size_t limit = opts_.tracezDefaultLimit;
  TraceId traceFilter;
  bool hasTrace = false;
  std::string err;
  if (!parseLimitParam(req, limit, err) ||
      !parseTraceParam(req, traceFilter, hasTrace, err))
    return badRequest(err);
  std::ostringstream os;
  os.imbue(std::locale::classic());
  if (!tracer_) {
    os << "{\"enabled\": false, \"spans\": []}\n";
    return net::HttpResponse::json(os.str());
  }
  // Non-destructive: snapshot() copies the per-thread rings while
  // recording continues (spans landing mid-copy may be missed — that is
  // the documented quiescence contract, fine for a live peek).
  std::vector<TraceRecorder::SnapshotEvent> events = tracer_->snapshot();
  const std::vector<std::string> names = tracer_->threadNames();
  const std::size_t total = events.size();
  if (hasTrace)
    events.erase(std::remove_if(events.begin(), events.end(),
                                [&](const TraceRecorder::SnapshotEvent& se) {
                                  return !(se.event.trace == traceFilter);
                                }),
                 events.end());
  // Most recent spans win the cap; render the survivors oldest-first so
  // the JSON reads chronologically.
  std::sort(events.begin(), events.end(),
            [](const TraceRecorder::SnapshotEvent& a,
               const TraceRecorder::SnapshotEvent& b) {
              return a.event.tsNs + a.event.durNs <
                     b.event.tsNs + b.event.durNs;
            });
  if (events.size() > limit)
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(limit));
  os << "{\"enabled\": true, \"spanCount\": " << total
     << ", \"returnedSpans\": " << events.size() << ", \"droppedEvents\": "
     << tracer_->droppedEvents();
  if (hasTrace) os << ", \"trace\": \"" << formatTraceId(traceFilter) << '"';
  os << ", \"threads\": [";
  for (std::size_t tid = 0; tid < names.size(); ++tid) {
    if (tid != 0) os << ", ";
    os << "{\"tid\": " << tid << ", \"name\": \"" << jsonEscape(names[tid])
       << "\"}";
  }
  os << "], \"spans\": [";
  bool first = true;
  for (const TraceRecorder::SnapshotEvent& se : events) {
    if (!first) os << ",";
    first = false;
    const TraceRecorder::Event& e = se.event;
    os << "\n{\"tid\": " << se.tid << ", \"name\": \"" << jsonEscape(e.name)
       << "\", \"cat\": \"" << jsonEscape(e.cat) << "\", \"tsNs\": " << e.tsNs
       << ", \"durNs\": " << e.durNs;
    if (e.trace.valid())
      os << ", \"trace\": \"" << formatTraceId(e.trace) << '"';
    if (e.a0.key != nullptr || e.s0.key != nullptr) {
      os << ", \"args\": {";
      bool firstArg = true;
      for (const TraceArg* a : {&e.a0, &e.a1}) {
        if (a->key == nullptr) continue;
        if (!firstArg) os << ", ";
        firstArg = false;
        os << '"' << jsonEscape(a->key) << "\": " << a->value;
      }
      if (e.s0.key != nullptr) {
        if (!firstArg) os << ", ";
        os << '"' << jsonEscape(e.s0.key) << "\": \"" << jsonEscape(e.s0.value)
           << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
  return net::HttpResponse::json(os.str());
}

}  // namespace hsd::obs
