#include "obs/admin.hpp"

#include <algorithm>
#include <cstdlib>
#include <locale>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace hsd::obs {

namespace {

enum ScrapeIndex {
  kMetrics = 0,
  kStatsz = 1,
  kTracez = 2,
  kHealthz = 3,
  kReadyz = 4,
};

constexpr const char* kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

AdminServer::AdminServer(AdminOptions opts)
    : opts_(opts),
      http_([&opts] {
        net::HttpServerOptions h;
        h.port = opts.port;
        h.bindAddress = opts.bindAddress;
        h.handlerThreads = opts.handlerThreads;
        return h;
      }()),
      self_(std::make_shared<MetricsRegistry>()) {
  // Registration order is exposition order — keep it stable.
  uptime_ = &self_->gauge("hsd_admin_uptime_seconds",
                          "Whole seconds since the admin server started");
  const std::pair<int, const char*> endpoints[] = {
      {kMetrics, "/metrics"}, {kStatsz, "/statsz"},  {kTracez, "/tracez"},
      {kHealthz, "/healthz"}, {kReadyz, "/readyz"}};
  for (const auto& [idx, endpoint] : endpoints)
    scrapes_[idx] = &self_->counter("hsd_admin_scrapes_total",
                                    "Admin endpoint hits by endpoint",
                                    {{"endpoint", endpoint}});

  http_.handle("/", [this](const net::HttpRequest&) {
    std::string body = "openhsd admin server\nendpoints:\n";
    for (const std::string& r : http_.routes()) body += "  " + r + "\n";
    return net::HttpResponse::text(200, std::move(body));
  });
  http_.handle("/healthz", [this](const net::HttpRequest&) {
    scrapes_[kHealthz]->inc();
    return net::HttpResponse::text(200, "ok\n");
  });
  http_.handle("/readyz", [this](const net::HttpRequest&) {
    scrapes_[kReadyz]->inc();
    for (const auto& ready : readiness_)
      if (!ready()) return net::HttpResponse::text(503, "unready\n");
    return net::HttpResponse::text(200, "ready\n");
  });
  http_.handle("/metrics",
               [this](const net::HttpRequest& req) { return handleMetrics(req); });
  http_.handle("/statsz",
               [this](const net::HttpRequest& req) { return handleStatsz(req); });
  http_.handle("/tracez",
               [this](const net::HttpRequest& req) { return handleTracez(req); });
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::requireNotStarted(const char* what) const {
  if (http_.running())
    throw std::logic_error(std::string("AdminServer: ") + what +
                           " must happen before start()");
}

void AdminServer::addMetrics(std::shared_ptr<const MetricsRegistry> registry) {
  requireNotStarted("addMetrics");
  if (registry) registries_.push_back(std::move(registry));
}

void AdminServer::setTracer(std::shared_ptr<const TraceRecorder> tracer) {
  requireNotStarted("setTracer");
  tracer_ = std::move(tracer);
}

void AdminServer::addStatsProvider(std::string key,
                                   std::function<std::string()> fn) {
  requireNotStarted("addStatsProvider");
  stats_.emplace_back(std::move(key), std::move(fn));
}

void AdminServer::addReadiness(std::function<bool()> ready) {
  requireNotStarted("addReadiness");
  readiness_.push_back(std::move(ready));
}

void AdminServer::start() {
  started_ = std::chrono::steady_clock::now();
  http_.start();
}

void AdminServer::stop() { http_.stop(); }

net::HttpResponse AdminServer::handleMetrics(const net::HttpRequest&) {
  scrapes_[kMetrics]->inc();
  uptime_->set(std::chrono::duration_cast<std::chrono::seconds>(
                   std::chrono::steady_clock::now() - started_)
                   .count());
  std::string out;
  for (const auto& reg : registries_) out += reg->renderPrometheus();
  out += self_->renderPrometheus();
  net::HttpResponse res;
  res.contentType = kPromContentType;
  res.body = std::move(out);
  return res;
}

net::HttpResponse AdminServer::handleStatsz(const net::HttpRequest&) {
  scrapes_[kStatsz]->inc();
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(3);
  os << std::fixed << "{\"uptimeSeconds\": "
     << std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
  for (const auto& [key, fn] : stats_) {
    os << ", \"" << jsonEscape(key) << "\": ";
    try {
      os << fn();
    } catch (const std::exception& e) {
      os << "{\"error\": \"" << jsonEscape(e.what()) << "\"}";
    } catch (...) {
      os << "{\"error\": \"unknown\"}";
    }
  }
  os << "}\n";
  return net::HttpResponse::json(os.str());
}

net::HttpResponse AdminServer::handleTracez(const net::HttpRequest& req) {
  scrapes_[kTracez]->inc();
  std::size_t limit = opts_.tracezDefaultLimit;
  if (const std::string raw = req.queryParam("limit"); !raw.empty()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (end != raw.c_str() && *end == '\0' && v > 0)
      limit = std::size_t(std::min<unsigned long long>(v, 1u << 20));
  }
  std::ostringstream os;
  os.imbue(std::locale::classic());
  if (!tracer_) {
    os << "{\"enabled\": false, \"spans\": []}\n";
    return net::HttpResponse::json(os.str());
  }
  // Non-destructive: snapshot() copies the per-thread rings while
  // recording continues (spans landing mid-copy may be missed — that is
  // the documented quiescence contract, fine for a live peek).
  std::vector<TraceRecorder::SnapshotEvent> events = tracer_->snapshot();
  const std::vector<std::string> names = tracer_->threadNames();
  const std::size_t total = events.size();
  // Most recent spans win the cap; render the survivors oldest-first so
  // the JSON reads chronologically.
  std::sort(events.begin(), events.end(),
            [](const TraceRecorder::SnapshotEvent& a,
               const TraceRecorder::SnapshotEvent& b) {
              return a.event.tsNs + a.event.durNs <
                     b.event.tsNs + b.event.durNs;
            });
  if (events.size() > limit)
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(limit));
  os << "{\"enabled\": true, \"spanCount\": " << total
     << ", \"returnedSpans\": " << events.size() << ", \"droppedEvents\": "
     << tracer_->droppedEvents() << ", \"threads\": [";
  for (std::size_t tid = 0; tid < names.size(); ++tid) {
    if (tid != 0) os << ", ";
    os << "{\"tid\": " << tid << ", \"name\": \"" << jsonEscape(names[tid])
       << "\"}";
  }
  os << "], \"spans\": [";
  bool first = true;
  for (const TraceRecorder::SnapshotEvent& se : events) {
    if (!first) os << ",";
    first = false;
    const TraceRecorder::Event& e = se.event;
    os << "\n{\"tid\": " << se.tid << ", \"name\": \"" << jsonEscape(e.name)
       << "\", \"cat\": \"" << jsonEscape(e.cat) << "\", \"tsNs\": " << e.tsNs
       << ", \"durNs\": " << e.durNs;
    if (e.a0.key != nullptr || e.s0.key != nullptr) {
      os << ", \"args\": {";
      bool firstArg = true;
      for (const TraceArg* a : {&e.a0, &e.a1}) {
        if (a->key == nullptr) continue;
        if (!firstArg) os << ", ";
        firstArg = false;
        os << '"' << jsonEscape(a->key) << "\": " << a->value;
      }
      if (e.s0.key != nullptr) {
        if (!firstArg) os << ", ";
        os << '"' << jsonEscape(e.s0.key) << "\": \"" << jsonEscape(e.s0.value)
           << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
  return net::HttpResponse::json(os.str());
}

}  // namespace hsd::obs
