// AdminServer: the live observability endpoint — an embedded HTTP admin
// surface (net::HttpServer underneath) that exposes the in-process
// instrumentation of src/obs while the process runs, instead of only as
// files written at exit:
//
//   GET /          plain-text endpoint index
//   GET /healthz   liveness: 200 "ok" as long as the server thread runs
//   GET /readyz    readiness: 200 "ready" when every registered readiness
//                  hook returns true, else 503 "unready" (hsd_serve wires
//                  DetectionServer::accepting() here, so readiness flips
//                  on after the ContextPool is pre-warmed and flips off
//                  the moment a drain begins)
//   GET /metrics   Prometheus text exposition 0.0.4: every mounted
//                  MetricsRegistry in mount order, then the admin's own
//                  self-metrics registry
//   GET /statsz    one JSON object per mounted stats provider (e.g. the
//                  DetectionServer statsJson() roll-up) plus uptime
//   GET /tracez    JSON snapshot of the most recent spans in the mounted
//                  TraceRecorder (?limit=N caps the span count, default
//                  256; ?trace=<32-hex id> keeps only that request's
//                  spans) — non-destructive, recording continues
//   GET /logz      JSON-lines snapshot of the mounted LogRecorder: a meta
//                  line (counts, drops, filters) followed by one record
//                  object per line, oldest first. ?level= floors the
//                  level, ?limit= caps the record count (default 256),
//                  ?trace= keeps one request's records
//   GET /sloz      the mounted SloTracker's multi-window availability /
//                  latency burn-rate report (also folded into /statsz as
//                  the "slo" section, and into /readyz?degraded)
//   GET /modelz    the mounted ModelStatsRecorder's per-cluster verdict
//                  counts, margin quantiles and low-margin captures, plus
//                  the DriftScorer's per-cluster PSI report when one is
//                  mounted (also folded into /statsz as the "model"
//                  section, and into /readyz?degraded). ?limit= caps the
//                  capture count (default 64), ?cluster= restricts to one
//                  named cluster (unknown names are a 400)
//
// Malformed query parameters (non-numeric ?limit=, unknown ?level=, a
// ?trace= that is not a 32-hex id) are a 400, never a silent default.
// /readyz?degraded returns a JSON detail view (per-hook readiness by
// name, plus the SLO status when one is mounted) instead of the bare
// ready/unready body; the status code contract is unchanged.
//
// Mount everything before start(); the handler pool calls the hooks
// concurrently, so providers must be thread-safe (renderPrometheus,
// TraceRecorder::snapshot, LogRecorder::snapshot, SloTracker, and
// DetectionServer::statsJson all are). The admin server is transport
// only: it never mutates the serving state it reports on.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/http.hpp"
#include "obs/drift.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/model_stats.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace hsd::obs {

struct AdminOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  std::string bindAddress = "127.0.0.1";
  std::size_t handlerThreads = 2;
  std::size_t tracezDefaultLimit = 256;  ///< spans per /tracez unless ?limit=
  std::size_t logzDefaultLimit = 256;    ///< records per /logz unless ?limit=
  std::size_t modelzDefaultLimit = 64;   ///< captures per /modelz unless ?limit=
};

class AdminServer {
 public:
  explicit AdminServer(AdminOptions opts = {});
  ~AdminServer();  ///< stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Mount a registry on /metrics (rendered in mount order). Families
  /// must be unique across mounted registries — the exposition is a
  /// plain concatenation.
  void addMetrics(std::shared_ptr<const MetricsRegistry> registry);

  /// Mount the span recorder behind /tracez. At most one; pass nullptr
  /// to unmount. /tracez reports {"enabled": false} without one.
  void setTracer(std::shared_ptr<const TraceRecorder> tracer);

  /// Mount the log recorder behind /logz. At most one; pass nullptr to
  /// unmount. /logz reports an {"enabled": false} meta line without one.
  void setLog(std::shared_ptr<const LogRecorder> log);

  /// Mount the SLO tracker behind /sloz (also rendered as the "slo"
  /// section of /statsz and the "slo" object of /readyz?degraded). At
  /// most one; pass nullptr to unmount. Scrapes drive its sampling.
  void setSlo(std::shared_ptr<SloTracker> slo);

  /// Mount the model-quality recorder behind /modelz (also rendered as
  /// the "model" section of /statsz). At most one; pass nullptr to
  /// unmount. /modelz reports {"enabled": false} without one.
  void setModelStats(std::shared_ptr<const ModelStatsRecorder> rec);

  /// Mount the drift scorer: its PSI report joins /modelz and the
  /// /readyz?degraded detail view (a drifted cluster marks the process
  /// degraded, like an SLO burn). At most one; pass nullptr to unmount.
  /// Scrapes drive its sampling, like the SLO tracker's.
  void setDrift(std::shared_ptr<DriftScorer> drift);

  /// Mount a /statsz section: `fn` must return a complete JSON value
  /// (object/number/string) and be thread-safe. Sections render in mount
  /// order as {"<key>": <fn()>, ...}; a throwing provider degrades to an
  /// {"error": ...} object for its key, never a failed scrape.
  void addStatsProvider(std::string key, std::function<std::string()> fn);

  /// Add a readiness hook; /readyz is 200 only when ALL hooks return
  /// true. With no hooks readiness equals liveness. The named overload
  /// labels the hook in the /readyz?degraded detail view; the unnamed
  /// one gets "hook<index>".
  void addReadiness(std::function<bool()> ready);
  void addReadiness(std::string name, std::function<bool()> ready);

  /// Bind and serve. Throws std::runtime_error when the port can't be
  /// bound. Call after mounting; mounting after start() throws.
  void start();
  void stop();

  bool running() const { return http_.running(); }
  /// The bound port (the kernel's pick when AdminOptions::port was 0).
  std::uint16_t port() const { return http_.port(); }

  /// The admin's own registry (scrape counters, uptime) — rendered last
  /// on /metrics. Exposed so tools can add process-level metrics.
  MetricsRegistry& selfMetrics() { return *self_; }

 private:
  net::HttpResponse handleMetrics(const net::HttpRequest& req);
  net::HttpResponse handleStatsz(const net::HttpRequest& req);
  net::HttpResponse handleTracez(const net::HttpRequest& req);
  net::HttpResponse handleLogz(const net::HttpRequest& req);
  net::HttpResponse handleSloz(const net::HttpRequest& req);
  net::HttpResponse handleModelz(const net::HttpRequest& req);
  net::HttpResponse handleReadyz(const net::HttpRequest& req);
  void requireNotStarted(const char* what) const;

  AdminOptions opts_;
  net::HttpServer http_;
  std::vector<std::shared_ptr<const MetricsRegistry>> registries_;
  std::shared_ptr<const TraceRecorder> tracer_;
  std::shared_ptr<const LogRecorder> log_;
  std::shared_ptr<SloTracker> slo_;
  std::shared_ptr<const ModelStatsRecorder> modelStats_;
  std::shared_ptr<DriftScorer> drift_;
  std::vector<std::pair<std::string, std::function<std::string()>>> stats_;
  std::vector<std::pair<std::string, std::function<bool()>>> readiness_;
  std::shared_ptr<MetricsRegistry> self_;
  Counter* scrapes_[8] = {};  ///< by endpoint; see ScrapeIndex in admin.cpp
  Gauge* uptime_ = nullptr;   ///< whole seconds since start()
  std::chrono::steady_clock::time_point started_;
};

}  // namespace hsd::obs
