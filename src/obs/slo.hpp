// SLO tracking: rolling multi-window availability and latency-objective
// attainment, with error-budget burn rates, computed from the live
// MetricsRegistry counters/histograms the server already maintains — no
// second bookkeeping path on the request flow.
//
// Model (the standard SRE formulation): an availability SLO is a target
// fraction of good requests (e.g. 0.999); a latency SLO is a target
// fraction of requests completing within an objective (e.g. 95% under
// 250ms). The *burn rate* of a window is
//
//     burn = (1 - attainment) / (1 - target)
//
// i.e. how many times faster than "budget-neutral" the error budget is
// being spent: 1.0 means exactly on target, >1 means the budget shrinks.
// Multi-window tracking (default 1m/5m/30m) makes the signal both fast
// (short window catches a spike) and stable (long window resists blips).
//
// Mechanics: the tracker holds cumulative-count sources (good/total
// closures over Counter values, plus a latency Histogram whose buckets
// give "completed within objective" cumulatively). sample() pushes one
// (time, counts) tuple into a bounded ring; a window's attainment is the
// delta between now and the oldest sample at least that far back.
// Sampling is scrape-driven (the admin /sloz, /statsz and /readyz
// handlers call sampleAndStatus()), so an idle process costs nothing;
// time is injectable for deterministic tests.
//
// Thread-safe: sources are read outside any lock (they are lock-free
// atomics underneath); the sample ring is mutex-guarded (scrape-rate,
// not request-rate).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hsd::obs {

struct SloConfig {
  double availabilityTarget = 0.999;  ///< good/total objective
  /// Latency objective: `latencyTarget` of requests complete within
  /// `latencyObjectiveSeconds`. The objective is snapped DOWN to the
  /// nearest histogram bucket bound at attach time (cumulative bucket
  /// counts are only available at bounds).
  double latencyObjectiveSeconds = 1.0;
  double latencyTarget = 0.95;
  /// Rolling windows, seconds, shortest first (rendered in this order).
  std::vector<double> windowsSeconds = {60.0, 300.0, 1800.0};
  /// A window is "burning" when either burn rate exceeds this.
  double degradedBurnRate = 1.0;
  /// Sample-ring bound: oldest samples beyond the longest window (plus
  /// slack) are pruned; this caps memory under scrape floods.
  std::size_t maxSamples = 4096;
};

class SloTracker {
 public:
  using CountFn = std::function<std::uint64_t()>;
  using Clock = std::chrono::steady_clock;

  explicit SloTracker(SloConfig cfg = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Availability source: cumulative good and total completed counts
  /// (monotone; Counter::value closures). Both must stay callable for
  /// the tracker's lifetime.
  void setAvailabilitySource(CountFn good, CountFn total);

  /// Latency source: the cumulative run-latency histogram. `hist` must
  /// outlive the tracker. The effective objective (largest bound <=
  /// configured objective) is reported in the JSON.
  void setLatencySource(const Histogram* hist);

  /// Push one sample now / at `now` (injectable for tests).
  void sample() { sample(Clock::now()); }
  void sample(Clock::time_point now);

  /// Per-window SLO arithmetic over the sample ring (no new sample).
  struct Window {
    double seconds = 0.0;         ///< configured width
    double coveredSeconds = 0.0;  ///< actual history behind the delta
    std::uint64_t total = 0;      ///< completed requests in the window
    std::uint64_t good = 0;
    double availability = 1.0;    ///< good/total (1.0 when total == 0)
    double availabilityBurn = 0.0;
    std::uint64_t latencyTotal = 0;
    std::uint64_t latencyFast = 0;  ///< completed within the objective
    double latencyAttainment = 1.0;
    double latencyBurn = 0.0;
    bool burning = false;  ///< either burn > degradedBurnRate, with traffic
  };
  struct Status {
    std::vector<Window> windows;
    bool degraded = false;  ///< any window burning
  };
  Status status(Clock::time_point now) const;
  Status status() const { return status(Clock::now()); }

  /// The scrape entry point: sample, then report.
  Status sampleAndStatus() {
    const Clock::time_point now = Clock::now();
    sample(now);
    return status(now);
  }

  bool degraded() const { return status().degraded; }

  /// JSON object for /sloz and the /statsz "slo" section: targets plus
  /// one entry per window.
  std::string toJson(const Status& st) const;
  std::string sampleAndJson() { return toJson(sampleAndStatus()); }

  const SloConfig& config() const { return cfg_; }
  /// The bucket-snapped latency objective actually measured (0 when no
  /// latency source is attached).
  double effectiveLatencyObjective() const { return objectiveBound_; }

 private:
  struct Sample {
    std::int64_t tNs = 0;  ///< since epoch_
    std::uint64_t good = 0;
    std::uint64_t total = 0;
    std::uint64_t latencyTotal = 0;
    std::uint64_t latencyFast = 0;
  };

  Sample read(Clock::time_point now) const;  ///< poll the sources

  SloConfig cfg_;
  Clock::time_point epoch_;
  CountFn good_;
  CountFn total_;
  const Histogram* hist_ = nullptr;
  std::size_t objectiveBucket_ = 0;  ///< buckets [0..objectiveBucket_] fast
  double objectiveBound_ = 0.0;
  bool hasObjectiveBucket_ = false;

  mutable std::mutex mu_;
  std::deque<Sample> ring_;
};

}  // namespace hsd::obs
