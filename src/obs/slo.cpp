#include "obs/slo.hpp"

#include <algorithm>
#include <locale>
#include <sstream>

namespace hsd::obs {

namespace {

double burnRate(double attainment, double target) {
  if (target >= 1.0) return attainment >= 1.0 ? 0.0 : 1e9;  // degenerate
  return (1.0 - attainment) / (1.0 - target);
}

}  // namespace

SloTracker::SloTracker(SloConfig cfg)
    : cfg_(std::move(cfg)), epoch_(Clock::now()) {
  if (cfg_.windowsSeconds.empty()) cfg_.windowsSeconds = {60.0};
  std::sort(cfg_.windowsSeconds.begin(), cfg_.windowsSeconds.end());
  if (cfg_.maxSamples == 0) cfg_.maxSamples = 1;
}

void SloTracker::setAvailabilitySource(CountFn good, CountFn total) {
  good_ = std::move(good);
  total_ = std::move(total);
}

void SloTracker::setLatencySource(const Histogram* hist) {
  hist_ = hist;
  hasObjectiveBucket_ = false;
  objectiveBound_ = 0.0;
  if (hist_ == nullptr) return;
  const std::vector<double>& bounds = hist_->bounds();
  // Snap the objective down to a bucket bound: cumulative counts are only
  // exact there. No bound at or below the objective means the latency SLO
  // cannot be measured against this histogram — report attainment 1.
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i] <= cfg_.latencyObjectiveSeconds) {
      objectiveBucket_ = i;
      objectiveBound_ = bounds[i];
      hasObjectiveBucket_ = true;
    } else {
      break;
    }
  }
}

SloTracker::Sample SloTracker::read(Clock::time_point now) const {
  Sample s;
  s.tNs = std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
              .count();
  if (good_) s.good = good_();
  if (total_) s.total = total_();
  if (hist_ != nullptr && hasObjectiveBucket_) {
    const std::vector<std::uint64_t> counts = hist_->bucketCounts();
    std::uint64_t fast = 0;
    std::uint64_t all = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      all += counts[i];
      if (i <= objectiveBucket_) fast += counts[i];
    }
    s.latencyFast = fast;
    s.latencyTotal = all;
  }
  return s;
}

void SloTracker::sample(Clock::time_point now) {
  const Sample s = read(now);
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(s);
  // Prune: keep one sample older than the longest window (the delta
  // baseline) and bound the ring size.
  const double keepNs = cfg_.windowsSeconds.back() * 1e9 * 1.25;
  while (ring_.size() > 2 &&
         double(s.tNs - ring_[1].tNs) >= keepNs)
    ring_.pop_front();
  while (ring_.size() > cfg_.maxSamples) ring_.pop_front();
}

SloTracker::Status SloTracker::status(Clock::time_point now) const {
  const Sample cur = read(now);
  std::deque<Sample> ring;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ring = ring_;
  }
  Status st;
  st.windows.reserve(cfg_.windowsSeconds.size());
  for (const double w : cfg_.windowsSeconds) {
    Window win;
    win.seconds = w;
    // Baseline: the newest sample at least `w` old. With no sample that
    // old (early life / sparse scrapes) the zero origin serves — the
    // window degrades to "since process start", which is the honest
    // answer while history is still shorter than the window.
    Sample base;  // zero counts at epoch
    for (const Sample& s : ring) {
      if (double(cur.tNs - s.tNs) >= w * 1e9) {
        base = s;
      } else {
        break;  // ring is time-ordered; later samples are younger
      }
    }
    win.coveredSeconds = std::min(w, double(cur.tNs - base.tNs) / 1e9);
    win.total = cur.total - base.total;
    win.good = cur.good - base.good;
    win.availability =
        win.total == 0 ? 1.0 : double(win.good) / double(win.total);
    win.availabilityBurn =
        win.total == 0 ? 0.0
                       : burnRate(win.availability, cfg_.availabilityTarget);
    win.latencyTotal = cur.latencyTotal - base.latencyTotal;
    win.latencyFast = cur.latencyFast - base.latencyFast;
    win.latencyAttainment =
        win.latencyTotal == 0
            ? 1.0
            : double(win.latencyFast) / double(win.latencyTotal);
    win.latencyBurn = win.latencyTotal == 0
                          ? 0.0
                          : burnRate(win.latencyAttainment, cfg_.latencyTarget);
    win.burning = (win.total > 0 &&
                   win.availabilityBurn > cfg_.degradedBurnRate) ||
                  (win.latencyTotal > 0 &&
                   win.latencyBurn > cfg_.degradedBurnRate);
    st.degraded = st.degraded || win.burning;
    st.windows.push_back(win);
  }
  return st;
}

std::string SloTracker::toJson(const Status& st) const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed;
  os << "{\"availabilityTarget\": " << cfg_.availabilityTarget
     << ", \"latencyObjectiveSeconds\": " << cfg_.latencyObjectiveSeconds
     << ", \"effectiveLatencyObjectiveSeconds\": " << objectiveBound_
     << ", \"latencyTarget\": " << cfg_.latencyTarget
     << ", \"degradedBurnRate\": " << cfg_.degradedBurnRate
     << ", \"degraded\": " << (st.degraded ? "true" : "false")
     << ", \"windows\": [";
  bool first = true;
  for (const Window& w : st.windows) {
    if (!first) os << ", ";
    first = false;
    os << "{\"seconds\": " << w.seconds
       << ", \"coveredSeconds\": " << w.coveredSeconds
       << ", \"total\": " << w.total << ", \"good\": " << w.good
       << ", \"availability\": " << w.availability
       << ", \"availabilityBurn\": " << w.availabilityBurn
       << ", \"latencyTotal\": " << w.latencyTotal
       << ", \"latencyFast\": " << w.latencyFast
       << ", \"latencyAttainment\": " << w.latencyAttainment
       << ", \"latencyBurn\": " << w.latencyBurn
       << ", \"burning\": " << (w.burning ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hsd::obs
