#include "obs/model_stats.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <locale>
#include <sstream>

#include "obs/json.hpp"

namespace hsd::obs {

namespace {

std::uint64_t nextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Single-slot per-thread cache of the last (recorder, state) pair — the
// dangling-proof TLS scheme shared with TraceRecorder/LogRecorder.
struct TlsSlot {
  std::uint64_t recorderId = 0;
  void* state = nullptr;
};
thread_local TlsSlot tlsSlot;

/// Magnitude bucket in [0, kBucketsPerSide): 0 covers [kStart, kStart*2),
/// the last bucket absorbs everything larger.
std::size_t magnitudeBucket(double mag) {
  // Exact threshold walk instead of log2(): bucketOf must be a pure,
  // platform-stable function of the value (quantile determinism rests on
  // it), and 24 compares are nothing next to an SVM decision.
  double bound = MarginSketch::kStart * MarginSketch::kFactor;
  for (std::size_t i = 0; i + 1 < MarginSketch::kBucketsPerSide; ++i) {
    if (mag < bound) return i;
    bound *= MarginSketch::kFactor;
  }
  return MarginSketch::kBucketsPerSide - 1;
}

}  // namespace

std::size_t MarginSketch::bucketOf(double margin) {
  if (std::isnan(margin)) return kBucketsPerSide;
  const double mag = std::fabs(margin);
  if (mag < kStart) return kBucketsPerSide;
  const std::size_t m = magnitudeBucket(mag);
  // Negative side counts down from the center, so bucket order follows
  // value order: index 0 is the most negative bucket.
  return margin < 0 ? kBucketsPerSide - 1 - m : kBucketsPerSide + 1 + m;
}

double MarginSketch::lowerBound(std::size_t bucket) {
  if (bucket == 0) return -std::numeric_limits<double>::infinity();
  if (bucket < kBucketsPerSide) {
    // Negative bucket b holds (-kStart*f^(m+1), -kStart*f^m] with
    // m = kBucketsPerSide - 1 - b; its lower bound is the open end.
    const std::size_t m = kBucketsPerSide - 1 - bucket;
    return -kStart * std::pow(kFactor, double(m + 1));
  }
  if (bucket == kBucketsPerSide) return -kStart;
  const std::size_t m = bucket - kBucketsPerSide - 1;
  return kStart * std::pow(kFactor, double(m));
}

double MarginSketch::upperBound(std::size_t bucket) {
  if (bucket + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return lowerBound(bucket + 1);
}

std::uint64_t MarginSketch::total(const Counts& c) {
  std::uint64_t n = 0;
  for (const std::uint64_t v : c) n += v;
  return n;
}

double MarginSketch::quantile(const Counts& c, double q) {
  const std::uint64_t n = total(c);
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * double(n);
  double seen = 0.0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (c[b] == 0) continue;
    const double next = seen + double(c[b]);
    if (next >= rank) {
      // Interpolate inside the bucket; open-ended outer buckets clamp to
      // their finite bound, mirroring Histogram::quantile's +Inf clamp.
      double lo = lowerBound(b);
      double hi = upperBound(b);
      if (!std::isfinite(lo)) lo = hi;
      if (!std::isfinite(hi)) hi = lo;
      const double frac =
          std::min(1.0, std::max(0.0, (rank - seen) / double(c[b])));
      return lo + (hi - lo) * frac;
    }
    seen = next;
  }
  return 0.0;
}

ModelStatsRecorder::ThreadState::ThreadState(std::size_t slots,
                                             std::size_t captureCapacity)
    : counts(slots * (MarginSketch::kNumBuckets + 2)),
      ring(captureCapacity == 0 ? 1 : captureCapacity) {}

ModelStatsRecorder::ModelStatsRecorder(std::vector<std::string> clusterNames,
                                       Options opts)
    : names_([&clusterNames] {
        for (std::size_t i = 0; i < clusterNames.size(); ++i)
          if (clusterNames[i].empty())
            clusterNames[i] = "k" + std::to_string(i);
        clusterNames.push_back(kFeedbackCluster);
        return std::move(clusterNames);
      }()),
      opts_(opts),
      id_(nextRecorderId()),
      epoch_(std::chrono::steady_clock::now()) {}

ModelStatsRecorder::~ModelStatsRecorder() = default;

void ModelStatsRecorder::bindMetrics(MetricsRegistry& registry) {
  metricCounters_.resize(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    metricCounters_[i].first =
        &registry.counter("hsd_model_verdicts_total",
                          "SVM verdicts by topology cluster and outcome",
                          {{"cluster", names_[i]}, {"verdict", "hot"}});
    metricCounters_[i].second =
        &registry.counter("hsd_model_verdicts_total",
                          "SVM verdicts by topology cluster and outcome",
                          {{"cluster", names_[i]}, {"verdict", "cold"}});
  }
}

ModelStatsRecorder::ThreadState& ModelStatsRecorder::stateForThisThread() {
  if (tlsSlot.recorderId == id_)
    return *static_cast<ThreadState*>(tlsSlot.state);
  const std::lock_guard<std::mutex> lock(mu_);
  ThreadState*& slot = byThread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    states_.push_back(
        std::make_unique<ThreadState>(names_.size(), opts_.captureCapacity));
    slot = states_.back().get();
  }
  tlsSlot = {id_, slot};
  return *slot;
}

void ModelStatsRecorder::record(std::size_t slot, double margin, bool hot) {
  if (slot >= names_.size()) {
    droppedRecords_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadState& st = stateForThisThread();
  const std::size_t bucket = MarginSketch::bucketOf(margin);
  st.counts[bucketBase(slot) + bucket].fetch_add(1, std::memory_order_relaxed);
  st.counts[verdictBase(slot) + (hot ? 0 : 1)].fetch_add(
      1, std::memory_order_relaxed);
  if (slot < metricCounters_.size()) {
    Counter* const c =
        hot ? metricCounters_[slot].first : metricCounters_[slot].second;
    if (c != nullptr) c->inc();
  }
}

bool ModelStatsRecorder::shouldCapture(double distanceToBoundary) const {
  return opts_.captureWidth > 0.0 &&
         std::fabs(distanceToBoundary) < opts_.captureWidth;
}

void ModelStatsRecorder::capture(std::size_t slot, double margin,
                                 std::int64_t anchorX, std::int64_t anchorY,
                                 std::uint64_t contentHash) {
  if (slot >= names_.size()) {
    droppedRecords_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadState& st = stateForThisThread();
  const std::uint64_t w = st.captureWrite.load(std::memory_order_relaxed);
  Capture& c = st.ring[w % st.ring.size()];
  c.anchorX = anchorX;
  c.anchorY = anchorY;
  c.contentHash = contentHash;
  c.tsNs = std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
             .count());
  c.trace = currentTraceId();
  c.margin = margin;
  c.cluster = std::uint32_t(slot);
  // Release-publish: a snapshot that acquires w+1 sees this slot complete.
  st.captureWrite.store(w + 1, std::memory_order_release);
}

ModelStatsRecorder::Snapshot ModelStatsRecorder::snapshot() const {
  Snapshot out;
  out.clusters.resize(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i)
    out.clusters[i].name = names_[i];
  out.droppedRecords = droppedRecords_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& st : states_) {
    for (std::size_t s = 0; s < names_.size(); ++s) {
      ClusterCounts& cc = out.clusters[s];
      for (std::size_t b = 0; b < MarginSketch::kNumBuckets; ++b)
        cc.buckets[b] += st->counts[bucketBase(s) + b].load(
            std::memory_order_relaxed);
      cc.hot += st->counts[verdictBase(s)].load(std::memory_order_relaxed);
      cc.cold +=
          st->counts[verdictBase(s) + 1].load(std::memory_order_relaxed);
    }
    const std::uint64_t w = st->captureWrite.load(std::memory_order_acquire);
    const std::uint64_t cap = st->ring.size();
    const std::uint64_t resident = std::min(w, cap);
    out.capturedTotal += w;
    if (w > cap) out.droppedCaptures += w - cap;
    out.captures.reserve(out.captures.size() + resident);
    for (std::uint64_t k = w - resident; k < w; ++k)
      out.captures.push_back(st->ring[k % cap]);
  }
  return out;
}

std::vector<MarginSketch::Counts> ModelStatsRecorder::bucketCounts() const {
  std::vector<MarginSketch::Counts> out(names_.size());
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& st : states_)
    for (std::size_t s = 0; s < names_.size(); ++s)
      for (std::size_t b = 0; b < MarginSketch::kNumBuckets; ++b)
        out[s][b] +=
            st->counts[bucketBase(s) + b].load(std::memory_order_relaxed);
  return out;
}

std::string ModelStatsRecorder::toJson(std::size_t captureLimit,
                                       std::string_view clusterFilter) const {
  Snapshot snap = snapshot();
  if (!clusterFilter.empty()) {
    std::size_t slot = names_.size();
    for (std::size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == clusterFilter) slot = i;
    snap.captures.erase(
        std::remove_if(snap.captures.begin(), snap.captures.end(),
                       [slot](const Capture& c) { return c.cluster != slot; }),
        snap.captures.end());
    std::vector<ClusterCounts> kept;
    if (slot < snap.clusters.size()) kept.push_back(snap.clusters[slot]);
    snap.clusters = std::move(kept);
  }
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << "{\"clusters\": [";
  bool first = true;
  for (const ClusterCounts& cc : snap.clusters) {
    if (!first) os << ", ";
    first = false;
    os << "{\"cluster\": \"" << jsonEscape(cc.name)
       << "\", \"hot\": " << cc.hot << ", \"cold\": " << cc.cold
       << ", \"count\": " << cc.count() << ", \"p50\": "
       << MarginSketch::quantile(cc.buckets, 0.5) << ", \"p90\": "
       << MarginSketch::quantile(cc.buckets, 0.9) << ", \"p99\": "
       << MarginSketch::quantile(cc.buckets, 0.99) << "}";
  }
  // Most recent captures win the cap; render survivors oldest-first.
  std::sort(snap.captures.begin(), snap.captures.end(),
            [](const Capture& a, const Capture& b) { return a.tsNs < b.tsNs; });
  if (snap.captures.size() > captureLimit)
    snap.captures.erase(snap.captures.begin(),
                        snap.captures.end() -
                            static_cast<std::ptrdiff_t>(captureLimit));
  os << "], \"capturedTotal\": " << snap.capturedTotal
     << ", \"droppedCaptures\": " << snap.droppedCaptures
     << ", \"droppedRecords\": " << snap.droppedRecords
     << ", \"captureWidth\": " << opts_.captureWidth << ", \"captures\": [";
  first = true;
  for (const Capture& c : snap.captures) {
    if (!first) os << ", ";
    first = false;
    os << "{\"cluster\": \""
       << jsonEscape(c.cluster < names_.size() ? names_[c.cluster]
                                               : std::string("?"))
       << "\", \"x\": " << c.anchorX << ", \"y\": " << c.anchorY
       << ", \"contentHash\": \"" << std::hex << c.contentHash << std::dec
       << "\", \"margin\": " << c.margin << ", \"tsNs\": " << c.tsNs;
    if (c.trace.valid())
      os << ", \"trace\": \"" << formatTraceId(c.trace) << '"';
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hsd::obs
