#include "obs/trace_id.hpp"

#include <atomic>
#include <random>

namespace hsd::obs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

/// splitmix64: a fast, well-distributed 64-bit mixer. Seeding two
/// sequential states through it yields ids indistinguishable from random
/// for correlation purposes without per-call RNG state or locks.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t processSeed() {
  static const std::uint64_t seed = [] {
    std::random_device rd;
    return (std::uint64_t(rd()) << 32) ^ std::uint64_t(rd());
  }();
  return seed;
}

/// 0-15 for a hex digit, -1 otherwise.
int hexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parseHex64(std::string_view s, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (const char c : s) {
    const int d = hexValue(c);
    if (d < 0) return false;
    v = (v << 4) | std::uint64_t(d);
  }
  out = v;
  return true;
}

void writeHex64(std::uint64_t v, char* out) {
  for (int i = 15; i >= 0; --i) {
    out[i] = kHexDigits[v & 0xF];
    v >>= 4;
  }
}

}  // namespace

void formatTraceId(const TraceId& id, char* out) {
  writeHex64(id.hi, out);
  writeHex64(id.lo, out + 16);
  out[kTraceIdChars] = '\0';
}

std::string formatTraceId(const TraceId& id) {
  char buf[kTraceIdChars + 1];
  formatTraceId(id, buf);
  return std::string(buf, kTraceIdChars);
}

bool parseTraceId(std::string_view hex, TraceId& out) {
  if (hex.size() != kTraceIdChars) return false;
  TraceId id;
  if (!parseHex64(hex.substr(0, 16), id.hi) ||
      !parseHex64(hex.substr(16, 16), id.lo))
    return false;
  if (!id.valid()) return false;
  out = id;
  return true;
}

bool parseTraceparent(std::string_view header, TraceId& out) {
  // version(2) '-' traceid(32) '-' parentid(16) '-' flags(2) = 55 bytes;
  // later versions may append fields after the flags, so accept a longer
  // tail as long as it is dash-separated.
  if (header.size() < 55) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-')
    return false;
  if (header.size() > 55 && header[55] != '-') return false;
  std::uint64_t version = 0;
  if (!parseHex64(header.substr(0, 2), version)) return false;
  if (version == 0xFF) return false;  // forbidden version value
  std::uint64_t parent = 0;
  std::uint64_t flags = 0;
  if (!parseHex64(header.substr(36, 16), parent) || parent == 0)
    return false;
  if (!parseHex64(header.substr(53, 2), flags)) return false;
  return parseTraceId(header.substr(3, kTraceIdChars), out);
}

std::string formatTraceparent(const TraceId& id) {
  const TraceId span = makeTraceId();  // fresh non-zero parent id
  std::string out = "00-";
  out += formatTraceId(id);
  char buf[17];
  writeHex64(span.lo, buf);
  buf[16] = '\0';
  out += '-';
  out += buf;
  out += "-01";
  return out;
}

TraceId makeTraceId() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seed = processSeed();
  TraceId id{splitmix64(seed ^ (n * 2)), splitmix64(seed ^ (n * 2 + 1))};
  if (!id.valid()) id.lo = 1;  // astronomically unlikely; keep it valid
  return id;
}

namespace detail {
TraceId& currentTraceSlot() {
  thread_local TraceId slot;
  return slot;
}
}  // namespace detail

TraceId currentTraceId() { return detail::currentTraceSlot(); }

}  // namespace hsd::obs
