// Drift scoring: is live traffic still distributed like the traffic the
// model was trained on? A ModelBaseline freezes the per-cluster margin
// distribution at training time (persisted alongside the detector, so a
// loaded model carries its own reference); a DriftScorer compares a
// rolling window of live MarginSketch counts against it with the
// population stability index (PSI) — the standard model-monitoring
// divergence: for baseline proportions p and live proportions q over the
// shared bucket layout,
//
//     psi = sum_i (q_i - p_i) * ln(q_i / p_i)
//
// with Laplace-smoothed proportions so empty buckets never divide by
// zero. Rule of thumb (and the default threshold semantics): psi < 0.1 is
// stable, 0.1..0.25 moderate shift, above that the inputs have moved and
// the model's decisions are suspect — time to retrain or at least to look
// at the low-margin captures.
//
// Mechanics mirror SloTracker: scoring is scrape-driven (the admin
// /modelz, /statsz and /readyz handlers call sampleAndStatus()), samples
// of cumulative bucket counts land in a bounded ring, and a window's live
// distribution is the delta between now and the newest sample at least
// windowSeconds old (zero-origin fallback while history is short). An
// idle process costs nothing; time is injectable for deterministic tests.
//
// Thread-safe: the source recorder's counts are lock-free underneath; the
// sample ring is mutex-guarded (scrape-rate, not decision-rate).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/model_stats.hpp"

namespace hsd::obs {

/// Frozen per-cluster margin distribution (training-set summary). The
/// bucket layout is MarginSketch's, so live recorder counts compare
/// directly. Persisted as a text section of the detector file.
struct ModelBaseline {
  struct Cluster {
    std::string name;
    std::uint64_t hot = 0;
    std::uint64_t cold = 0;
    MarginSketch::Counts buckets{};
  };
  std::vector<Cluster> clusters;

  bool empty() const { return clusters.empty(); }

  /// Text serialization: a "baseline" keyword line, then one name line
  /// plus one counts line per cluster. Round-trips exactly.
  void save(std::ostream& os) const;
  static ModelBaseline load(std::istream& is);
};

struct DriftConfig {
  /// Rolling live window the PSI is computed over.
  double windowSeconds = 300.0;
  /// A cluster is drifted when its PSI exceeds this (0.25 = the classic
  /// "significant shift" bound).
  double psiThreshold = 0.25;
  /// Clusters with fewer live decisions than this in the window are
  /// reported unscored — PSI over a handful of samples is noise.
  std::uint64_t minWindowCount = 50;
  /// Laplace pseudo-count added per bucket when forming proportions.
  double smoothing = 0.5;
  /// Sample-ring bound (caps memory under scrape floods).
  std::size_t maxSamples = 1024;
};

class DriftScorer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Baseline clusters are matched to recorder slots by name; slots
  /// without a baseline match (e.g. the feedback pseudo-cluster) are
  /// reported unscored.
  DriftScorer(ModelBaseline baseline, DriftConfig cfg = {});

  DriftScorer(const DriftScorer&) = delete;
  DriftScorer& operator=(const DriftScorer&) = delete;

  /// The live recorder sampled on every scrape. Must outlive the scorer.
  void setSource(std::shared_ptr<const ModelStatsRecorder> source);

  void sample() { sample(Clock::now()); }
  void sample(Clock::time_point now);

  struct ClusterStatus {
    std::string name;
    std::uint64_t windowCount = 0;  ///< live decisions behind the PSI
    double coveredSeconds = 0.0;
    double psi = 0.0;
    bool scored = false;   ///< baseline matched and enough live traffic
    bool drifted = false;  ///< scored && psi > threshold
  };
  struct Status {
    std::vector<ClusterStatus> clusters;
    bool anyDrifted = false;
  };
  Status status(Clock::time_point now) const;
  Status status() const { return status(Clock::now()); }

  /// The scrape entry point: sample, then score.
  Status sampleAndStatus() {
    const Clock::time_point now = Clock::now();
    sample(now);
    return status(now);
  }

  /// Readiness-style health view: true while no cluster is drifted.
  bool healthy() const { return !status().anyDrifted; }

  /// JSON object for /modelz and the /readyz?degraded detail view.
  std::string toJson(const Status& st) const;
  std::string sampleAndJson() { return toJson(sampleAndStatus()); }

  const DriftConfig& config() const { return cfg_; }
  const ModelBaseline& baseline() const { return baseline_; }

 private:
  struct Sample {
    std::int64_t tNs = 0;  ///< since epoch_
    std::vector<MarginSketch::Counts> cumulative;  ///< per recorder slot
  };

  const ModelBaseline baseline_;
  const DriftConfig cfg_;
  const Clock::time_point epoch_;
  std::shared_ptr<const ModelStatsRecorder> source_;
  /// baselineOf_[slot]: index into baseline_.clusters, or npos.
  std::vector<std::size_t> baselineOf_;

  mutable std::mutex mu_;
  std::deque<Sample> ring_;
};

}  // namespace hsd::obs
