#include "layout/clip.hpp"

#include <algorithm>

#include "geom/rectset.hpp"

namespace hsd {

namespace {
const std::vector<Rect> kNoRects;
}

void Clip::setRects(LayerId layer, std::vector<Rect> rects) {
  for (auto& [id, rs] : layers_) {
    if (id == layer) {
      rs = std::move(rects);
      return;
    }
  }
  layers_.emplace_back(layer, std::move(rects));
}

const std::vector<Rect>& Clip::rectsOn(LayerId layer) const {
  for (const auto& [id, rs] : layers_)
    if (id == layer) return rs;
  return kNoRects;
}

std::vector<LayerId> Clip::layerIds() const {
  std::vector<LayerId> ids;
  ids.reserve(layers_.size());
  for (const auto& [id, rs] : layers_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool Clip::hasGeometry() const {
  for (const auto& [id, rs] : layers_)
    if (!rs.empty()) return true;
  return false;
}

std::vector<Rect> Clip::localClipRects(LayerId layer) const {
  std::vector<Rect> out = clipRects(rectsOn(layer), win_.clip);
  const Point d{-win_.clip.lo.x, -win_.clip.lo.y};
  for (Rect& r : out) r = r.translated(d);
  return out;
}

std::vector<Rect> Clip::localCoreRects(LayerId layer) const {
  std::vector<Rect> out = clipRects(rectsOn(layer), win_.core);
  const Point d{-win_.core.lo.x, -win_.core.lo.y};
  for (Rect& r : out) r = r.translated(d);
  return out;
}

Clip Clip::translated(const Point& d) const {
  Clip out(win_.translated(d), label_);
  for (const auto& [id, rs] : layers_) {
    std::vector<Rect> moved;
    moved.reserve(rs.size());
    for (const Rect& r : rs) moved.push_back(r.translated(d));
    out.setRects(id, std::move(moved));
  }
  return out;
}

Clip extractClip(const std::vector<std::pair<LayerId, const GridIndex*>>& idx,
                 const ClipWindow& win, Label label) {
  Clip out(win, label);
  for (const auto& [layer, gi] : idx) {
    if (gi == nullptr) continue;
    std::vector<Rect> rs;
    for (const std::size_t i : gi->query(win.clip)) {
      const Rect c = gi->rects()[i].intersect(win.clip);
      if (c.valid() && !c.empty()) rs.push_back(c);
    }
    out.setRects(layer, std::move(rs));
  }
  return out;
}

}  // namespace hsd
