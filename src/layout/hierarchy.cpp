#include "layout/hierarchy.hpp"

#include <stdexcept>

namespace hsd {

Point applyOrigin(Orient o, const Point& p) {
  switch (o) {
    case Orient::R0:    return {p.x, p.y};
    case Orient::R90:   return {-p.y, p.x};
    case Orient::R180:  return {-p.x, -p.y};
    case Orient::R270:  return {p.y, -p.x};
    case Orient::MX:    return {p.x, -p.y};
    case Orient::MY:    return {-p.x, p.y};
    case Orient::MXR90: return {p.y, p.x};
    case Orient::MYR90: return {-p.y, -p.x};
  }
  return p;
}

Rect applyOrigin(Orient o, const Rect& r) {
  const Point a = applyOrigin(o, r.lo);
  const Point b = applyOrigin(o, r.hi);
  return Rect{a.x, a.y, b.x, b.y};
}

Orient composeOrient(Orient a, Orient b) {
  // Probe two independent points; D8 elements are uniquely determined by
  // their action on them.
  const Point p1 = applyOrigin(a, applyOrigin(b, {1, 0}));
  const Point p2 = applyOrigin(a, applyOrigin(b, {0, 1}));
  for (const Orient c : kAllOrients)
    if (applyOrigin(c, Point{1, 0}) == p1 &&
        applyOrigin(c, Point{0, 1}) == p2)
      return c;
  return Orient::R0;  // unreachable: D8 is closed under composition
}

Point CellTransform::apply(const Point& p) const {
  return applyOrigin(orient, p) + offset;
}

Rect CellTransform::apply(const Rect& r) const {
  const Point a = apply(r.lo);
  const Point b = apply(r.hi);
  return Rect{a.x, a.y, b.x, b.y};
}

CellTransform CellTransform::compose(const CellTransform& inner) const {
  CellTransform out;
  out.orient = composeOrient(orient, inner.orient);
  out.offset = applyOrigin(orient, inner.offset) + offset;
  return out;
}

Cell& CellLibrary::addCell(const std::string& name) {
  auto [it, inserted] = cells_.try_emplace(name, Cell(name));
  if (top_.empty()) top_ = name;
  return it->second;
}

const Cell* CellLibrary::findCell(const std::string& name) const {
  const auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

namespace {

void flattenCell(const CellLibrary& lib, const Cell& cell,
                 const CellTransform& t, Layout& out, int depth) {
  if (depth > 64)
    throw std::runtime_error("CellLibrary::flatten: depth > 64 (cycle?)");
  for (const auto& [layer, polys] : cell.geometry()) {
    for (const Polygon& poly : polys) {
      std::vector<Point> pts;
      pts.reserve(poly.points().size());
      for (const Point& p : poly.points()) pts.push_back(t.apply(p));
      out.addPolygon(layer, Polygon(std::move(pts)));
    }
  }
  for (const Instance& inst : cell.instances()) {
    const Cell* child = lib.findCell(inst.cellName);
    if (child == nullptr)
      throw std::runtime_error("CellLibrary::flatten: missing cell " +
                               inst.cellName);
    for (std::size_t row = 0; row < inst.rows; ++row) {
      for (std::size_t col = 0; col < inst.cols; ++col) {
        CellTransform placed = inst.transform;
        placed.offset += Point{Coord(col) * inst.colStep.x +
                                   Coord(row) * inst.rowStep.x,
                               Coord(col) * inst.colStep.y +
                                   Coord(row) * inst.rowStep.y};
        flattenCell(lib, *child, t.compose(placed), out, depth + 1);
      }
    }
  }
}

std::size_t countCell(const CellLibrary& lib, const Cell& cell, int depth) {
  if (depth > 64)
    throw std::runtime_error("CellLibrary: depth > 64 (cycle?)");
  std::size_t n = 0;
  for (const auto& [layer, polys] : cell.geometry()) n += polys.size();
  for (const Instance& inst : cell.instances()) {
    const Cell* child = lib.findCell(inst.cellName);
    if (child == nullptr)
      throw std::runtime_error("CellLibrary: missing cell " + inst.cellName);
    n += inst.cols * inst.rows * countCell(lib, *child, depth + 1);
  }
  return n;
}

}  // namespace

Layout CellLibrary::flatten() const {
  Layout out(top_);
  const Cell* topCell = findCell(top_);
  if (topCell == nullptr)
    throw std::runtime_error("CellLibrary::flatten: no top cell");
  flattenCell(*this, *topCell, CellTransform{}, out, 0);
  return out;
}

std::size_t CellLibrary::flatPolygonCount() const {
  const Cell* topCell = findCell(top_);
  if (topCell == nullptr) return 0;
  return countCell(*this, *topCell, 0);
}

}  // namespace hsd
