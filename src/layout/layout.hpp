// Layout database: named layers holding rectilinear polygons, with cached
// rectangle decompositions and a bounding box. This is the in-memory form
// of a GDSII/ASCII design the detector operates on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geom/polygon.hpp"
#include "geom/rect.hpp"

namespace hsd {

/// GDSII-style layer number.
using LayerId = std::uint16_t;

/// Geometry of one layer: polygons plus their (lazily cached) horizontal
/// rectangle decomposition.
///
/// Const access is thread-safe: rects() fills its cache under a mutex
/// with double-checked locking, so many evaluation threads (e.g. server
/// workers sharing one Layout across requests) may read one Layer
/// concurrently. Mutation (addPolygon/addRect) is NOT safe against
/// concurrent readers — finish building a layout before sharing it.
class Layer {
 public:
  Layer() = default;
  Layer(const Layer& other) : polys_(other.polys_) {}
  Layer(Layer&& other) noexcept : polys_(std::move(other.polys_)) {}
  Layer& operator=(const Layer& other);
  Layer& operator=(Layer&& other) noexcept;

  void addPolygon(Polygon poly);
  void addRect(const Rect& r);

  const std::vector<Polygon>& polygons() const { return polys_; }
  /// All polygons horizontally sliced into rectangles (Fig. 11a); cached.
  const std::vector<Rect>& rects() const;
  std::size_t polygonCount() const { return polys_.size(); }
  bool empty() const { return polys_.empty(); }

 private:
  std::vector<Polygon> polys_;
  // Copies/moves transfer only polys_ and start with a cold cache (the
  // mutex and atomic are not copyable; rebuilding is cheap and lazy).
  mutable std::mutex cacheMu_;
  mutable std::vector<Rect> rectCache_;
  mutable std::atomic<bool> cacheValid_{false};
};

/// A design: layers by id, a name, and database units.
/// Unit convention: 1 dbu = 1 nm throughout this project.
class Layout {
 public:
  Layout() = default;
  explicit Layout(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  Layer& layer(LayerId id) { return layers_[id]; }
  const Layer* findLayer(LayerId id) const;
  const std::map<LayerId, Layer>& layers() const { return layers_; }

  void addPolygon(LayerId id, Polygon poly) {
    layers_[id].addPolygon(std::move(poly));
  }
  void addRect(LayerId id, const Rect& r) { layers_[id].addRect(r); }

  /// Bounding box over all layers; nullopt when the layout is empty.
  std::optional<Rect> bbox() const;

  /// Total polygon count over all layers.
  std::size_t polygonCount() const;

  /// Layout area in um^2 given 1 dbu = 1 nm (for false-alarm reporting).
  double areaUm2() const;

 private:
  std::string name_;
  std::map<LayerId, Layer> layers_;
};

}  // namespace hsd
