// Uniform-grid spatial index over a rectangle set. Clip extraction and
// hit scoring issue millions of window queries over a testing layout; the
// grid turns each into a handful of bin lookups.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/rect.hpp"

namespace hsd {

/// Grid-bucketed index of rect ids. Rects are stored by value; queries
/// return indices into the original vector.
class GridIndex {
 public:
  GridIndex() = default;
  /// Build over `rects` with roughly `targetBin` dbu bin pitch (clamped so
  /// the grid stays reasonable for tiny/huge extents).
  GridIndex(std::vector<Rect> rects, Coord targetBin);

  const std::vector<Rect>& rects() const { return rects_; }
  bool empty() const { return rects_.empty(); }

  /// Indices of rects whose bounding boxes have positive-area overlap with
  /// `query`. Each index appears exactly once (deduplicated via stamping),
  /// in bin-iteration order. Thread-safe: the dedup scratch is per-thread,
  /// so concurrent queries against the same index are race-free and return
  /// exactly what a serial caller would see.
  std::vector<std::size_t> query(const Rect& query) const;

  /// True if any rect overlaps `query` (early-out form of query()).
  bool anyOverlap(const Rect& query) const;

 private:
  std::pair<std::size_t, std::size_t> binRangeX(Coord lo, Coord hi) const;
  std::pair<std::size_t, std::size_t> binRangeY(Coord lo, Coord hi) const;

  std::vector<Rect> rects_;
  Rect extent_;
  Coord binW_ = 1;
  Coord binH_ = 1;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<std::vector<std::uint32_t>> bins_;
};

}  // namespace hsd
