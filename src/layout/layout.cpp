#include "layout/layout.hpp"

namespace hsd {

void Layer::addPolygon(Polygon poly) {
  polys_.push_back(std::move(poly));
  cacheValid_ = false;
}

void Layer::addRect(const Rect& r) {
  polys_.emplace_back(r);
  cacheValid_ = false;
}

const std::vector<Rect>& Layer::rects() const {
  if (!cacheValid_) {
    rectCache_.clear();
    for (const Polygon& p : polys_) {
      std::vector<Rect> rs = p.sliceHorizontal();
      rectCache_.insert(rectCache_.end(), rs.begin(), rs.end());
    }
    cacheValid_ = true;
  }
  return rectCache_;
}

const Layer* Layout::findLayer(LayerId id) const {
  const auto it = layers_.find(id);
  return it == layers_.end() ? nullptr : &it->second;
}

std::optional<Rect> Layout::bbox() const {
  std::optional<Rect> bb;
  for (const auto& [id, layer] : layers_) {
    for (const Polygon& p : layer.polygons()) {
      if (p.empty()) continue;
      const Rect b = p.bbox();
      bb = bb ? bb->unite(b) : b;
    }
  }
  return bb;
}

std::size_t Layout::polygonCount() const {
  std::size_t n = 0;
  for (const auto& [id, layer] : layers_) n += layer.polygonCount();
  return n;
}

double Layout::areaUm2() const {
  const std::optional<Rect> bb = bbox();
  if (!bb) return 0.0;
  // 1 dbu = 1 nm, so 1 um^2 == 1e6 dbu^2.
  return double(bb->area()) / 1e6;
}

}  // namespace hsd
