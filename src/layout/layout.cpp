#include "layout/layout.hpp"

namespace hsd {

Layer& Layer::operator=(const Layer& other) {
  if (this != &other) {
    polys_ = other.polys_;
    rectCache_.clear();
    cacheValid_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

Layer& Layer::operator=(Layer&& other) noexcept {
  if (this != &other) {
    polys_ = std::move(other.polys_);
    rectCache_.clear();
    cacheValid_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

void Layer::addPolygon(Polygon poly) {
  polys_.push_back(std::move(poly));
  cacheValid_.store(false, std::memory_order_relaxed);
}

void Layer::addRect(const Rect& r) {
  polys_.emplace_back(r);
  cacheValid_.store(false, std::memory_order_relaxed);
}

const std::vector<Rect>& Layer::rects() const {
  // Double-checked lazy fill so concurrent const readers (server workers
  // evaluating one shared Layout) never race: the builder publishes with
  // a release store only after rectCache_ is fully written, and fast-path
  // readers acquire it.
  if (!cacheValid_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(cacheMu_);
    if (!cacheValid_.load(std::memory_order_relaxed)) {
      rectCache_.clear();
      for (const Polygon& p : polys_) {
        std::vector<Rect> rs = p.sliceHorizontal();
        rectCache_.insert(rectCache_.end(), rs.begin(), rs.end());
      }
      cacheValid_.store(true, std::memory_order_release);
    }
  }
  return rectCache_;
}

const Layer* Layout::findLayer(LayerId id) const {
  const auto it = layers_.find(id);
  return it == layers_.end() ? nullptr : &it->second;
}

std::optional<Rect> Layout::bbox() const {
  std::optional<Rect> bb;
  for (const auto& [id, layer] : layers_) {
    for (const Polygon& p : layer.polygons()) {
      if (p.empty()) continue;
      const Rect b = p.bbox();
      bb = bb ? bb->unite(b) : b;
    }
  }
  return bb;
}

std::size_t Layout::polygonCount() const {
  std::size_t n = 0;
  for (const auto& [id, layer] : layers_) n += layer.polygonCount();
  return n;
}

double Layout::areaUm2() const {
  const std::optional<Rect> bb = bbox();
  if (!bb) return 0.0;
  // 1 dbu = 1 nm, so 1 um^2 == 1e6 dbu^2.
  return double(bb->area()) / 1e6;
}

}  // namespace hsd
