// Clips: the unit of training and evaluation (Fig. 1). A clip is a square
// window with a centered square core; the ring between them is the ambit.
// Clip geometry is stored in absolute layout coordinates; helpers produce
// window-local views for pattern encoding.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/hashing.hpp"
#include "geom/rect.hpp"
#include "layout/layout.hpp"
#include "layout/spatial_index.hpp"

namespace hsd {

/// Geometry parameters of the clip format. Defaults are the ICCAD-2012
/// contest values: core 1.2 x 1.2 um, clip 4.8 x 4.8 um (1 dbu = 1 nm).
struct ClipParams {
  Coord coreSide = 1200;
  Coord clipSide = 4800;

  constexpr Coord ambit() const { return (clipSide - coreSide) / 2; }

  friend constexpr auto operator<=>(const ClipParams&,
                                    const ClipParams&) = default;

  /// Stable config fingerprint for stage-cache keys (engine/cache.hpp):
  /// any change to the clip geometry invalidates every cached window.
  constexpr std::uint64_t fingerprint() const {
    return hashCombine(hashCoord(coreSide), hashCoord(clipSide));
  }
};

/// Placement of one clip: the outer window and its centered core.
struct ClipWindow {
  Rect clip;
  Rect core;

  friend constexpr auto operator<=>(const ClipWindow&,
                                    const ClipWindow&) = default;

  /// Window whose *core* lower-left corner sits at `coreLo`.
  static constexpr ClipWindow atCore(Point coreLo, const ClipParams& p) {
    const Rect core{coreLo.x, coreLo.y, coreLo.x + p.coreSide,
                    coreLo.y + p.coreSide};
    return {core.inflated(p.ambit()), core};
  }

  /// Window centered on `c`.
  static constexpr ClipWindow centeredOn(Point c, const ClipParams& p) {
    return atCore({c.x - p.coreSide / 2, c.y - p.coreSide / 2}, p);
  }

  constexpr ClipWindow translated(const Point& d) const {
    return {clip.translated(d), core.translated(d)};
  }
};

/// Classification label of a clip.
enum class Label : std::int8_t {
  kNonHotspot = -1,
  kUnknown = 0,
  kHotspot = +1,
};

/// A clip: window placement, label, and per-layer geometry (rectangles in
/// absolute coordinates, already clipped to the clip window).
class Clip {
 public:
  Clip() = default;
  Clip(ClipWindow win, Label label) : win_(win), label_(label) {}

  const ClipWindow& window() const { return win_; }
  void setWindow(const ClipWindow& w) { win_ = w; }
  Label label() const { return label_; }
  void setLabel(Label l) { label_ = l; }

  /// Set/replace geometry on a layer (absolute coords).
  void setRects(LayerId layer, std::vector<Rect> rects);
  const std::vector<Rect>& rectsOn(LayerId layer) const;
  std::vector<LayerId> layerIds() const;
  bool hasGeometry() const;

  /// Geometry clipped to the full window, translated so the window's
  /// lower-left corner becomes the origin.
  std::vector<Rect> localClipRects(LayerId layer) const;

  /// Geometry clipped to the core, translated so the core's lower-left
  /// corner becomes the origin.
  std::vector<Rect> localCoreRects(LayerId layer) const;

  /// Translate the whole clip (window + geometry) by `d`.
  Clip translated(const Point& d) const;

 private:
  ClipWindow win_;
  Label label_ = Label::kUnknown;
  std::vector<std::pair<LayerId, std::vector<Rect>>> layers_;
};

/// Extract a clip from a layout using a prebuilt per-layer index: fetch all
/// rects overlapping the window on every layer and clip them to the window.
Clip extractClip(const std::vector<std::pair<LayerId, const GridIndex*>>& idx,
                 const ClipWindow& win, Label label = Label::kUnknown);

}  // namespace hsd
