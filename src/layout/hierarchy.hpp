// Hierarchical layout: cells, Manhattan-transformed instances and arrays,
// and flattening into a plain Layout. Real designs (and the contest's
// Array_benchmark* layouts) are arrayed cell placements; this module lets
// the generator and the GDSII layer express that structure instead of
// storing every polygon flat.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "geom/orientation.hpp"
#include "geom/polygon.hpp"
#include "layout/layout.hpp"

namespace hsd {

/// D8 transform about the origin (no window): rotation/mirror + offset.
struct CellTransform {
  Orient orient = Orient::R0;
  Point offset;

  Point apply(const Point& p) const;
  Rect apply(const Rect& r) const;
  /// Composition: (this * inner).apply(p) == this->apply(inner.apply(p)).
  CellTransform compose(const CellTransform& inner) const;

  friend constexpr auto operator<=>(const CellTransform&,
                                    const CellTransform&) = default;
};

/// Origin-based orientation application (window-free counterpart of the
/// geom/orientation.hpp window transforms).
Point applyOrigin(Orient o, const Point& p);
Rect applyOrigin(Orient o, const Rect& r);
/// c such that applyOrigin(c, p) == applyOrigin(a, applyOrigin(b, p)).
Orient composeOrient(Orient a, Orient b);

/// One placement of a cell: single instance (cols == rows == 1) or an
/// array stepped by colStep/rowStep.
struct Instance {
  std::string cellName;
  CellTransform transform;
  std::size_t cols = 1;
  std::size_t rows = 1;
  Point colStep;
  Point rowStep;
};

/// A cell: own geometry per layer plus child instances.
class Cell {
 public:
  Cell() = default;
  explicit Cell(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void addPolygon(LayerId layer, Polygon poly) {
    geometry_[layer].push_back(std::move(poly));
  }
  void addRect(LayerId layer, const Rect& r) {
    geometry_[layer].emplace_back(r);
  }
  void addInstance(Instance inst) { instances_.push_back(std::move(inst)); }

  const std::map<LayerId, std::vector<Polygon>>& geometry() const {
    return geometry_;
  }
  const std::vector<Instance>& instances() const { return instances_; }

 private:
  std::string name_;
  std::map<LayerId, std::vector<Polygon>> geometry_;
  std::vector<Instance> instances_;
};

/// A design as a cell library with a designated top cell.
class CellLibrary {
 public:
  Cell& addCell(const std::string& name);
  const Cell* findCell(const std::string& name) const;
  void setTop(std::string name) { top_ = std::move(name); }
  const std::string& top() const { return top_; }
  std::size_t cellCount() const { return cells_.size(); }
  const std::map<std::string, Cell>& cells() const { return cells_; }

  /// Expand the hierarchy under the top cell into a flat Layout.
  /// Throws std::runtime_error on missing cells or reference cycles.
  Layout flatten() const;

  /// Total flat polygon count (without materializing the geometry).
  std::size_t flatPolygonCount() const;

 private:
  std::map<std::string, Cell> cells_;
  std::string top_;
};

}  // namespace hsd
