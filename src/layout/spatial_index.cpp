#include "layout/spatial_index.hpp"

#include <algorithm>

namespace hsd {

GridIndex::GridIndex(std::vector<Rect> rects, Coord targetBin)
    : rects_(std::move(rects)) {
  if (rects_.empty()) return;
  extent_ = rects_.front();
  for (const Rect& r : rects_) extent_ = extent_.unite(r);
  const Coord bin = std::max<Coord>(targetBin, 1);
  nx_ = std::max<std::size_t>(1, std::size_t((extent_.width() + bin - 1) / bin));
  ny_ = std::max<std::size_t>(1, std::size_t((extent_.height() + bin - 1) / bin));
  // Cap the grid so pathological inputs can't blow up memory.
  constexpr std::size_t kMaxBins = 1u << 22;
  while (nx_ * ny_ > kMaxBins) {
    if (nx_ > ny_)
      nx_ = (nx_ + 1) / 2;
    else
      ny_ = (ny_ + 1) / 2;
  }
  binW_ = std::max<Coord>(1, (extent_.width() + Coord(nx_) - 1) / Coord(nx_));
  binH_ = std::max<Coord>(1, (extent_.height() + Coord(ny_) - 1) / Coord(ny_));
  bins_.assign(nx_ * ny_, {});
  for (std::size_t i = 0; i < rects_.size(); ++i) {
    const Rect& r = rects_[i];
    const auto [x0, x1] = binRangeX(r.lo.x, r.hi.x);
    const auto [y0, y1] = binRangeY(r.lo.y, r.hi.y);
    for (std::size_t by = y0; by <= y1; ++by)
      for (std::size_t bx = x0; bx <= x1; ++bx)
        bins_[by * nx_ + bx].push_back(std::uint32_t(i));
  }
}

std::pair<std::size_t, std::size_t> GridIndex::binRangeX(Coord lo,
                                                         Coord hi) const {
  const Coord rlo = std::clamp(lo, extent_.lo.x, extent_.hi.x);
  const Coord rhi = std::clamp(hi, extent_.lo.x, extent_.hi.x);
  std::size_t b0 = std::size_t((rlo - extent_.lo.x) / binW_);
  std::size_t b1 = std::size_t((rhi - extent_.lo.x) / binW_);
  b0 = std::min(b0, nx_ - 1);
  b1 = std::min(b1, nx_ - 1);
  return {b0, b1};
}

std::pair<std::size_t, std::size_t> GridIndex::binRangeY(Coord lo,
                                                         Coord hi) const {
  const Coord rlo = std::clamp(lo, extent_.lo.y, extent_.hi.y);
  const Coord rhi = std::clamp(hi, extent_.lo.y, extent_.hi.y);
  std::size_t b0 = std::size_t((rlo - extent_.lo.y) / binH_);
  std::size_t b1 = std::size_t((rhi - extent_.lo.y) / binH_);
  b0 = std::min(b0, ny_ - 1);
  b1 = std::min(b1, ny_ - 1);
  return {b0, b1};
}

std::vector<std::size_t> GridIndex::query(const Rect& query) const {
  // Dedup stamping uses per-thread scratch (shared across all GridIndex
  // instances on the thread; the generation counter strictly increases per
  // query, so stale stamps from another index can never collide). This
  // keeps query() const-thread-safe: the old shared `mutable` stamp buffer
  // raced under parallel evaluation and made multithreaded runs
  // nondeterministic.
  thread_local std::vector<std::uint64_t> stamp;
  thread_local std::uint64_t stampGen = 0;

  std::vector<std::size_t> out;
  if (rects_.empty() || !extent_.overlaps(query)) return out;
  if (stamp.size() < rects_.size()) stamp.resize(rects_.size(), 0);
  ++stampGen;
  const auto [x0, x1] = binRangeX(query.lo.x, query.hi.x);
  const auto [y0, y1] = binRangeY(query.lo.y, query.hi.y);
  for (std::size_t by = y0; by <= y1; ++by) {
    for (std::size_t bx = x0; bx <= x1; ++bx) {
      for (const std::uint32_t idx : bins_[by * nx_ + bx]) {
        if (stamp[idx] == stampGen) continue;
        stamp[idx] = stampGen;
        if (rects_[idx].overlaps(query)) out.push_back(idx);
      }
    }
  }
  return out;
}

bool GridIndex::anyOverlap(const Rect& query) const {
  if (rects_.empty() || !extent_.overlaps(query)) return false;
  const auto [x0, x1] = binRangeX(query.lo.x, query.hi.x);
  const auto [y0, y1] = binRangeY(query.lo.y, query.hi.y);
  for (std::size_t by = y0; by <= y1; ++by)
    for (std::size_t bx = x0; bx <= x1; ++bx)
      for (const std::uint32_t idx : bins_[by * nx_ + bx])
        if (rects_[idx].overlaps(query)) return true;
  return false;
}

}  // namespace hsd
