#include "engine/stats.hpp"

#include <locale>
#include <sstream>

#include "obs/json.hpp"

namespace hsd::engine {

namespace {

/// Index of `name` in the (vector, index-map) registry, appending a fresh
/// slot on first sight — this is what pins registration order.
template <typename V, typename M>
std::size_t slotOf(V& vec, M& index, const std::string& name) {
  const auto it = index.find(name);
  if (it != index.end()) return it->second;
  const std::size_t slot = vec.size();
  vec.emplace_back(name, typename V::value_type::second_type{});
  index.emplace(name, slot);
  return slot;
}

}  // namespace

void EngineStats::record(const std::string& stage, std::size_t items,
                         double seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  StageStats& s = stages_[slotOf(stages_, stageIndex_, stage)].second;
  ++s.calls;
  s.items += items;
  s.seconds += seconds;
}

void EngineStats::recordCache(const std::string& stage, std::size_t hits,
                              std::size_t misses, std::size_t evictions) {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats& c = caches_[slotOf(caches_, cacheIndex_, stage)].second;
  c.hits += hits;
  c.misses += misses;
  c.evictions += evictions;
}

std::vector<std::pair<std::string, StageStats>> EngineStats::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

std::vector<std::pair<std::string, CacheStats>> EngineStats::cacheSnapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return caches_;
}

StageStats EngineStats::stage(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = stageIndex_.find(name);
  return it == stageIndex_.end() ? StageStats{} : stages_[it->second].second;
}

CacheStats EngineStats::cache(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cacheIndex_.find(name);
  return it == cacheIndex_.end() ? CacheStats{} : caches_[it->second].second;
}

std::string EngineStats::toJson() const {
  std::ostringstream os;
  // A global-locale change must not reformat numbers (0.123 -> "0,123"
  // would corrupt every ENGINE_STATS/SERVE_STATS consumer), so pin the
  // classic locale; stage names are escaped so a quote or backslash in a
  // name can't break the JSON either.
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed << '{';
  // One critical section for both registries: stage and cache counters in
  // a single dump are a consistent cut, not two snapshots a concurrent
  // recorder could land between.
  const std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (const auto& [name, s] : stages_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << obs::jsonEscape(name) << "\": {\"calls\": " << s.calls
       << ", \"items\": " << s.items << ", \"seconds\": " << s.seconds << '}';
  }
  for (const auto& [name, c] : caches_) {
    if (!first) os << ", ";
    first = false;
    os << "\"cache/" << obs::jsonEscape(name) << "\": {\"hits\": " << c.hits
       << ", \"misses\": " << c.misses << ", \"evictions\": " << c.evictions
       << '}';
  }
  os << '}';
  return os.str();
}

void EngineStats::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
  stageIndex_.clear();
  caches_.clear();
  cacheIndex_.clear();
}

}  // namespace hsd::engine
