#include "engine/stats.hpp"

#include <sstream>

namespace hsd::engine {

void EngineStats::record(const std::string& stage, std::size_t items,
                         double seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  StageStats& s = stages_[stage];
  ++s.calls;
  s.items += items;
  s.seconds += seconds;
}

std::map<std::string, StageStats> EngineStats::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

StageStats EngineStats::stage(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = stages_.find(name);
  return it == stages_.end() ? StageStats{} : it->second;
}

std::string EngineStats::toJson() const {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << '{';
  bool first = true;
  for (const auto& [name, s] : snapshot()) {
    if (!first) os << ", ";
    first = false;
    os << '"' << name << "\": {\"calls\": " << s.calls
       << ", \"items\": " << s.items << ", \"seconds\": " << s.seconds << '}';
  }
  os << '}';
  return os.str();
}

void EngineStats::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
}

}  // namespace hsd::engine
