#include "engine/stats.hpp"

#include <locale>
#include <sstream>

#include "obs/json.hpp"

namespace hsd::engine {

namespace {

/// Index of `name` in the (vector, index-map) registry, appending a fresh
/// slot on first sight — this is what pins registration order.
template <typename V, typename M>
std::size_t slotOf(V& vec, M& index, const std::string& name) {
  const auto it = index.find(name);
  if (it != index.end()) return it->second;
  const std::size_t slot = vec.size();
  vec.emplace_back(name, typename V::value_type::second_type{});
  index.emplace(name, slot);
  return slot;
}

/// Length of the "tile<k>/" prefix of a tile-namespaced stage name, or 0
/// when `name` is a plain (monolithic) stage.
std::size_t tilePrefixLen(const std::string& name) {
  if (name.rfind("tile", 0) != 0) return 0;
  std::size_t i = 4;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') ++i;
  if (i == 4 || i >= name.size() || name[i] != '/') return 0;
  return i + 1;
}

}  // namespace

void EngineStats::record(const std::string& stage, std::size_t items,
                         double seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  StageStats& s = stages_[slotOf(stages_, stageIndex_, stage)].second;
  ++s.calls;
  s.items += items;
  s.seconds += seconds;
}

void EngineStats::recordCache(const std::string& stage, std::size_t hits,
                              std::size_t misses, std::size_t evictions) {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats& c = caches_[slotOf(caches_, cacheIndex_, stage)].second;
  c.hits += hits;
  c.misses += misses;
  c.evictions += evictions;
}

void EngineStats::declare(const std::string& stage) {
  const std::lock_guard<std::mutex> lock(mu_);
  slotOf(stages_, stageIndex_, stage);
}

void EngineStats::declareCache(const std::string& stage) {
  const std::lock_guard<std::mutex> lock(mu_);
  slotOf(caches_, cacheIndex_, stage);
}

void EngineStats::mergeFrom(const EngineStats& other) {
  // Snapshot first: taking both locks at once would order them by object
  // address, and a consistent cut of `other` is all merging needs.
  const auto stages = other.snapshot();
  const auto caches = other.cacheSnapshot();
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, s] : stages) {
    StageStats& dst = stages_[slotOf(stages_, stageIndex_, name)].second;
    dst.calls += s.calls;
    dst.items += s.items;
    dst.seconds += s.seconds;
  }
  for (const auto& [name, c] : caches) {
    CacheStats& dst = caches_[slotOf(caches_, cacheIndex_, name)].second;
    dst.hits += c.hits;
    dst.misses += c.misses;
    dst.evictions += c.evictions;
  }
}

StageStats EngineStats::rollup(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  StageStats out;
  for (const auto& [n, s] : stages_) {
    const std::size_t p = tilePrefixLen(n);
    if (n == name || (p > 0 && n.compare(p, std::string::npos, name) == 0)) {
      out.calls += s.calls;
      out.items += s.items;
      out.seconds += s.seconds;
    }
  }
  return out;
}

CacheStats EngineStats::cacheRollup(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats out;
  for (const auto& [n, c] : caches_) {
    const std::size_t p = tilePrefixLen(n);
    if (n == name || (p > 0 && n.compare(p, std::string::npos, name) == 0)) {
      out.hits += c.hits;
      out.misses += c.misses;
      out.evictions += c.evictions;
    }
  }
  return out;
}

std::vector<std::pair<std::string, StageStats>> EngineStats::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

std::vector<std::pair<std::string, CacheStats>> EngineStats::cacheSnapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return caches_;
}

StageStats EngineStats::stage(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = stageIndex_.find(name);
  return it == stageIndex_.end() ? StageStats{} : stages_[it->second].second;
}

CacheStats EngineStats::cache(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cacheIndex_.find(name);
  return it == cacheIndex_.end() ? CacheStats{} : caches_[it->second].second;
}

std::string EngineStats::toJson() const {
  std::ostringstream os;
  // A global-locale change must not reformat numbers (0.123 -> "0,123"
  // would corrupt every ENGINE_STATS/SERVE_STATS consumer), so pin the
  // classic locale; stage names are escaped so a quote or backslash in a
  // name can't break the JSON either.
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed << '{';
  // One critical section for both registries: stage and cache counters in
  // a single dump are a consistent cut, not two snapshots a concurrent
  // recorder could land between.
  const std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (const auto& [name, s] : stages_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << obs::jsonEscape(name) << "\": {\"calls\": " << s.calls
       << ", \"items\": " << s.items << ", \"seconds\": " << s.seconds << '}';
  }
  for (const auto& [name, c] : caches_) {
    if (!first) os << ", ";
    first = false;
    os << "\"cache/" << obs::jsonEscape(name) << "\": {\"hits\": " << c.hits
       << ", \"misses\": " << c.misses << ", \"evictions\": " << c.evictions
       << '}';
  }
  // Tiled-run roll-ups: per-tile counters summed under the plain stage
  // name, keyed in first-appearance order of the suffix (deterministic
  // because the tiled evaluator declares tile stages up front, in tile
  // order). Absent entirely for monolithic runs.
  {
    std::vector<std::pair<std::string, StageStats>> agg;
    std::unordered_map<std::string, std::size_t> aggIndex;
    for (const auto& [name, s] : stages_) {
      const std::size_t p = tilePrefixLen(name);
      if (p == 0) continue;
      StageStats& dst =
          agg[slotOf(agg, aggIndex, name.substr(p))].second;
      dst.calls += s.calls;
      dst.items += s.items;
      dst.seconds += s.seconds;
    }
    // Fold in same-named plain entries so each aggregate matches
    // rollup(name) even when a run mixed tiled and monolithic recording.
    for (const auto& [name, s] : stages_) {
      const auto it = aggIndex.find(name);
      if (tilePrefixLen(name) != 0 || it == aggIndex.end()) continue;
      StageStats& dst = agg[it->second].second;
      dst.calls += s.calls;
      dst.items += s.items;
      dst.seconds += s.seconds;
    }
    for (const auto& [name, s] : agg) {
      if (!first) os << ", ";
      first = false;
      os << '"' << obs::jsonEscape(name) << "\": {\"calls\": " << s.calls
         << ", \"items\": " << s.items << ", \"seconds\": " << s.seconds
         << '}';
    }
    std::vector<std::pair<std::string, CacheStats>> cagg;
    std::unordered_map<std::string, std::size_t> caggIndex;
    for (const auto& [name, c] : caches_) {
      const std::size_t p = tilePrefixLen(name);
      if (p == 0) continue;
      CacheStats& dst =
          cagg[slotOf(cagg, caggIndex, name.substr(p))].second;
      dst.hits += c.hits;
      dst.misses += c.misses;
      dst.evictions += c.evictions;
    }
    for (const auto& [name, c] : caches_) {
      const auto it = caggIndex.find(name);
      if (tilePrefixLen(name) != 0 || it == caggIndex.end()) continue;
      CacheStats& dst = cagg[it->second].second;
      dst.hits += c.hits;
      dst.misses += c.misses;
      dst.evictions += c.evictions;
    }
    for (const auto& [name, c] : cagg) {
      if (!first) os << ", ";
      first = false;
      os << "\"cache/" << obs::jsonEscape(name) << "\": {\"hits\": " << c.hits
         << ", \"misses\": " << c.misses << ", \"evictions\": " << c.evictions
         << '}';
    }
  }
  os << '}';
  return os.str();
}

void EngineStats::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
  stageIndex_.clear();
  caches_.clear();
  cacheIndex_.clear();
}

}  // namespace hsd::engine
