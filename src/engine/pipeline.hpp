// Generic staged batch pipeline. A Stage<In, Out> is a named transform of
// one batch; runPipeline() streams an input range through the composed
// stages in batches of RunContext::batchSize(), so at most one batch of
// intermediate items is alive between stages (bounded memory) and every
// stage invocation lands in the context's EngineStats. Stages built with
// mapStage / filterMapStage parallelize across the batch with index-stable
// writes, which makes pipeline output independent of the thread count —
// the property the determinism regression tests pin down.
#pragma once

#include <cstddef>
#include <functional>
#include <iterator>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/run_context.hpp"
#include "engine/stats.hpp"

namespace hsd::engine {

/// One named pipeline stage: consumes a batch of In, produces a batch of
/// Out (any fan-in/fan-out; filters shrink, expanders grow). The run
/// callable itself is invoked serially per batch — intra-batch parallelism
/// is the stage's own business (see mapStage).
template <typename In, typename Out>
struct Stage {
  using in_type = In;
  using out_type = Out;

  std::string name;
  std::function<std::vector<Out>(RunContext&, std::vector<In>&&)> run;
};

/// 1:1 parallel map stage: out[i] = fn(in[i]). Output order equals input
/// order regardless of thread count.
template <typename In, typename F>
auto mapStage(std::string name, F fn) {
  using Out = std::decay_t<std::invoke_result_t<F, const In&>>;
  return Stage<In, Out>{
      std::move(name),
      [fn = std::move(fn)](RunContext& ctx, std::vector<In>&& in) {
        std::vector<Out> out(in.size());
        ctx.parallelFor(in.size(),
                        [&](std::size_t i) { out[i] = fn(in[i]); });
        return out;
      }};
}

/// Parallel map + filter stage: fn returns std::optional<Out>; empty
/// results are dropped, survivors keep batch order.
template <typename In, typename F>
auto filterMapStage(std::string name, F fn) {
  using Opt = std::decay_t<std::invoke_result_t<F, const In&>>;
  using Out = typename Opt::value_type;
  return Stage<In, Out>{
      std::move(name),
      [fn = std::move(fn)](RunContext& ctx, std::vector<In>&& in) {
        std::vector<Opt> tmp(in.size());
        ctx.parallelFor(in.size(),
                        [&](std::size_t i) { tmp[i] = fn(in[i]); });
        std::vector<Out> out;
        out.reserve(in.size());
        for (Opt& o : tmp)
          if (o.has_value()) out.push_back(std::move(*o));
        return out;
      }};
}

namespace detail {

template <typename In>
std::vector<In> applyStages(RunContext&, std::vector<In>&& batch) {
  return std::move(batch);
}

template <typename In, typename S, typename... Rest>
auto applyStages(RunContext& ctx, std::vector<In>&& batch, S& stage,
                 Rest&... rest) {
  ctx.throwIfCancelled();
  std::vector<typename S::out_type> out;
  {
    StageTimer timer(ctx.stats(), stage.name, batch.size(), ctx.tracer());
    out = stage.run(ctx, std::move(batch));
  }
  return applyStages(ctx, std::move(out), rest...);
}

}  // namespace detail

/// Stream `items` through the stages in batches of ctx.batchSize(),
/// concatenating each batch's final output in order. Exceptions from any
/// stage (including CancelledError from a cancellation request) propagate
/// to the caller; no further batches run after one throws.
template <typename In, typename... Stages>
auto runPipeline(RunContext& ctx, std::vector<In> items, Stages&... stages) {
  using OutVec =
      decltype(detail::applyStages(ctx, std::vector<In>{}, stages...));
  OutVec all;
  const std::size_t n = items.size();
  const std::size_t bs = std::max<std::size_t>(1, ctx.batchSize());
  for (std::size_t i0 = 0; i0 < n; i0 += bs) {
    const std::size_t i1 = std::min(i0 + bs, n);
    std::vector<In> batch(std::make_move_iterator(items.begin() + i0),
                          std::make_move_iterator(items.begin() + i1));
    OutVec out = detail::applyStages(ctx, std::move(batch), stages...);
    all.insert(all.end(), std::make_move_iterator(out.begin()),
               std::make_move_iterator(out.end()));
  }
  return all;
}

}  // namespace hsd::engine
