// Per-clip bump arena: the allocation substrate of the steady-state hot
// path. Evaluation stages carve feature/scratch buffers out of a
// thread-local arena and rewind it at clip end, so after warm-up the
// extract→features→svm pipeline performs zero per-clip heap allocations
// (tests/test_hotpath.cpp proves this with an operator-new counter).
//
// Shape: a singly-linked chain of cache-line-aligned blocks, each a
// 64-byte Block header followed by its payload. Allocation bumps an
// offset in the current block and walks/extends the chain when full;
// rewind()/reset() drop the offset without freeing, so capacity is
// retained across clips. Not thread-safe — use one arena per thread
// (threadScratch()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace hsd::engine {

class Arena {
 public:
  /// Payload capacity of the first block; later blocks double (capped)
  /// so pathological clips don't chain hundreds of tiny blocks.
  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;
  static constexpr std::size_t kMaxBlockBytes = 1024 * 1024;

  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bytes, aligned to `align` (power of two, at most 64). Never
  /// returns nullptr; grows the chain on demand.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// n default-uninitialized Ts (trivially destructible only — the arena
  /// never runs destructors).
  template <typename T>
  std::span<T> allocSpan(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is rewound, never destroyed");
    return {static_cast<T*>(allocate(n * sizeof(T), alignof(T))), n};
  }

  /// A rewind point. Valid until the arena is reset past it or destroyed;
  /// rewinding invalidates every allocation made after the mark.
  struct Mark {
    void* block = nullptr;
    std::size_t offset = 0;
    std::size_t used = 0;
  };
  Mark mark() const { return {cur_, offset_, used_}; }
  void rewind(const Mark& m);
  /// Rewind everything; capacity (all blocks) is retained.
  void reset();

  // Introspection (tests and stats; not hot).
  std::size_t capacity() const { return capacity_; }  ///< payload bytes held
  std::size_t used() const { return used_; }          ///< live payload bytes
  std::size_t highWater() const { return highWater_; }
  std::size_t blockCount() const { return blocks_; }

 private:
  struct Block;
  Block* grow(std::size_t bytes);

  Block* head_ = nullptr;
  void* cur_ = nullptr;        ///< current Block (void* keeps Block private)
  std::size_t offset_ = 0;     ///< bump offset within cur_'s payload
  std::size_t used_ = 0;
  std::size_t highWater_ = 0;
  std::size_t capacity_ = 0;
  std::size_t blocks_ = 0;
};

/// RAII rewind: carve allocations inside the scope, drop them on exit.
/// Nests — inner scopes rewind to their own mark, not the outer one.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a) : arena_(a), mark_(a.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// The calling thread's scratch arena (one per thread, lazily created;
/// lives until thread exit). Stage bodies running under parallelFor each
/// see their own, so no synchronization is ever needed.
Arena& threadScratch();

/// Cumulative payload bytes every arena in the process has ever reserved
/// (monotone; destruction does not subtract). Moves only when an arena
/// grows — never in steady state — so per-request deltas expose exactly
/// the allocations a request forced. Backs the /detect X-Profile report.
std::uint64_t arenaReservedBytes();

}  // namespace hsd::engine
