#include "engine/tiler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hsd::engine {

TilePlan TilePlan::make(const Rect& bounds, const TilingParams& params,
                        const ClipParams& clip) {
  if (params.tileSize <= 0)
    throw std::invalid_argument(
        "TilePlan: tileSize must be > 0 (tiling disabled)");
  const Coord need = minTileHalo(clip);
  const Coord halo = params.halo == 0 ? need : params.halo;
  if (halo < need)
    throw std::invalid_argument(
        "TilePlan: halo " + std::to_string(halo) +
        " dbu is below the exactness minimum " + std::to_string(need) +
        " dbu (ambit + half core side): clips near seams would lose "
        "context and tiled verdicts would diverge from monolithic");
  TilePlan plan;
  plan.grid_ = GridTiling::over(bounds, params.tileSize);
  plan.halo_ = halo;
  return plan;
}

void ReportMerger::add(std::size_t tileId, std::vector<TileHit> hits) {
  std::size_t dropped = 0;
  // Ownership dedup outside the lock: a hit survives only in the stream
  // of the tile owning its anchor, so redundant halo-region evaluation
  // (the distributed path evaluates seam anchors on both sides) can
  // never double-report.
  std::vector<TileHit> owned;
  owned.reserve(hits.size());
  for (TileHit& h : hits) {
    if (plan_->ownerOf(h.anchor) == tileId)
      owned.push_back(std::move(h));
    else
      ++dropped;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  hits_.insert(hits_.end(), std::make_move_iterator(owned.begin()),
               std::make_move_iterator(owned.end()));
  dropped_ += dropped;
}

std::vector<ClipWindow> ReportMerger::finish() {
  std::vector<TileHit> hits;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    hits.swap(hits_);
  }
  // Anchor sequence numbers are unique (one candidate window per anchor,
  // one owner per anchor), so sorting by seq reproduces the monolithic
  // stream order exactly regardless of tile completion order.
  std::sort(hits.begin(), hits.end(),
            [](const TileHit& a, const TileHit& b) { return a.seq < b.seq; });
  std::vector<ClipWindow> out;
  out.reserve(hits.size());
  for (const TileHit& h : hits) out.push_back(h.win);
  return out;
}

std::size_t ReportMerger::droppedNonOwned() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace hsd::engine
