// Content-addressed stage cache for incremental re-evaluation. A cache
// entry is the memoized result of one pipeline stage on one window of
// layout content, keyed by a triple of 64-bit hashes:
//
//   (stage name, stage config fingerprint, canonicalized window geometry)
//
// The geometry component is translation-invariant (hashWindowContent in
// geom/hashing.hpp), so an unchanged window re-hashes to the same key on
// the next run — and identical repeated patterns at different positions
// share one entry. Any parameter change flows into the config fingerprint
// and invalidates cleanly; a single-rect edit changes the geometry hash of
// exactly the windows that see that rect.
//
// Correctness contract: cached values must be *pure functions of the key*
// (same key -> byte-identical value no matter which thread or run computed
// it). Under that contract a warm run returns byte-identical reports to a
// cold run at any thread count; LRU scheduling only changes hit rates,
// never results. The full 192-bit key triple is stored and compared on
// lookup; residual collision risk is the 64-bit content hash itself
// (~2^-64 per pair, negligible at bounded capacity — see DESIGN.md §6).
//
// The cache is opt-in: attach one to a RunContext and the extract/* and
// eval/* stages use it; without one, nothing changes. Thread-safe; bounded
// capacity with LRU eviction; hit/miss/evict counters are tallied here and
// surfaced per-stage in EngineStats JSON by the call sites.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "geom/hashing.hpp"
#include "obs/trace.hpp"
#include "par/cacheline.hpp"

namespace hsd::engine {

/// Cache key triple. All three components are stable 64-bit hashes; the
/// whole triple participates in equality, the combined mix only buckets.
struct CacheKey {
  std::uint64_t stage = 0;     ///< hashString(stage name)
  std::uint64_t config = 0;    ///< parameter-struct fingerprint
  std::uint64_t geometry = 0;  ///< canonicalized window-content hash

  friend constexpr bool operator==(const CacheKey&, const CacheKey&) = default;

  constexpr std::uint64_t combined() const {
    return hashCombine(hashCombine(stage, config), geometry);
  }

  static CacheKey of(std::string_view stageName, std::uint64_t config,
                     std::uint64_t geometry) {
    return {hashString(stageName), config, geometry};
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return std::size_t(k.combined());
  }
};

/// Bounded, thread-safe, LRU-evicting map from CacheKey to a small
/// type-erased value. Values are returned by copy (keep them small — the
/// detection stages store verdict booleans); a type mismatch on lookup is
/// treated as a miss, so a key can never deliver a value of the wrong type.
///
/// Concurrency audit (multi-request serving): the cache is split into
/// independent shards, each a cache-line-aligned (mutex, LRU list, map,
/// counters) unit selected by the top bits of the key hash. Every
/// operation on one key — lookup, LRU promotion, insert, eviction — runs
/// under that shard's mutex and `find` copies the value out *before*
/// releasing it, so an eviction racing a hit on the same key either
/// misses cleanly or returns the complete value; no caller ever observes
/// a dangling or partially-written entry. Two requests racing on the same
/// miss both compute and insert (the second insert is a refresh, not a
/// duplicate) — harmless because values are pure functions of their key.
/// Pinned under TSan by the concurrent hammer test in
/// tests/test_stage_cache.cpp (tiny capacity, many threads, continuous
/// eviction).
///
/// Sharding kicks in only at serving-scale capacity (>= kShardThreshold):
/// small caches keep one shard, preserving exact global LRU order (which
/// the eviction-order unit tests rely on). Sharded eviction is LRU *per
/// shard* — a deliberate trade: hit rates differ negligibly at 4096+
/// entries per shard, and lookups from N serving threads stop serializing
/// on one mutex (and stop bouncing one mutex cache line between cores).
class StageCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  /// Capacities below this stay single-sharded (exact LRU).
  static constexpr std::size_t kShardThreshold = 4096;
  static constexpr std::size_t kMaxShards = 16;  // power of two

  /// `capacity` == 0 is clamped to 1 (a cache that can hold something).
  /// With a non-null `tracer`, every lookup is recorded as one
  /// "cache"-category span annotated hit=0/1 (see obs/trace.hpp). The
  /// tracer is fixed at construction — no set-while-racing hazard — and
  /// must outlive the cache.
  explicit StageCache(std::size_t capacity = kDefaultCapacity,
                      std::shared_ptr<obs::TraceRecorder> tracer = nullptr);

  StageCache(const StageCache&) = delete;
  StageCache& operator=(const StageCache&) = delete;

  /// Lifetime totals across every stage using this cache.
  struct Counters {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;  ///< current resident entry count
  };

  template <typename T>
  std::optional<T> find(const CacheKey& key) {
    std::any out;
    if (!findErased(key, out)) return std::nullopt;
    if (const T* v = std::any_cast<T>(&out)) return *v;
    return std::nullopt;  // foreign type under this key: treat as miss
  }

  /// Insert (or refresh) `key`; returns how many entries were evicted to
  /// make room (0 or 1 — capacity is enforced per insert).
  template <typename T>
  std::size_t insert(const CacheKey& key, T value) {
    return insertErased(key, std::any(std::move(value)));
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t shardCount() const { return shardCount_; }
  std::size_t size() const;
  Counters counters() const;
  void clear();

 private:
  bool findErased(const CacheKey& key, std::any& out);
  std::size_t insertErased(const CacheKey& key, std::any value);

  struct Entry {
    CacheKey key;
    std::any value;
  };

  /// One independent cache unit on its own cache line(s): concurrent
  /// lookups on different shards touch disjoint lines, so neither the
  /// mutexes nor the hot list heads false-share.
  struct alignas(par::kCacheLineSize) Shard {
    mutable std::mutex mu;
    std::size_t capacity = 0;  ///< this shard's slice of the total
    std::list<Entry> lru;      ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map;
    Counters counters;
  };
  static_assert(alignof(Shard) == par::kCacheLineSize,
                "shards must start on cache-line boundaries");
  static_assert(sizeof(Shard) % par::kCacheLineSize == 0,
                "adjacent shards must not share a line");

  Shard& shardFor(const CacheKey& key) {
    // Top bits: the map's bucketing consumes the low bits of the same
    // mix, so shard choice and bucket choice stay decorrelated.
    return shards_[(key.combined() >> 60) & (shardCount_ - 1)];
  }

  const std::size_t capacity_;
  const std::size_t shardCount_;  ///< power of two
  const std::shared_ptr<obs::TraceRecorder> tracer_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace hsd::engine
