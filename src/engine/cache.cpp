#include "engine/cache.hpp"

namespace hsd::engine {

StageCache::StageCache(std::size_t capacity,
                       std::shared_ptr<obs::TraceRecorder> tracer)
    : capacity_(capacity == 0 ? 1 : capacity),
      shardCount_(capacity_ >= kShardThreshold ? kMaxShards : 1),
      tracer_(std::move(tracer)),
      shards_(new Shard[shardCount_]) {
  // Split the budget so shard capacities sum exactly to capacity_ (the
  // first `capacity_ % shardCount_` shards take one extra entry).
  for (std::size_t s = 0; s < shardCount_; ++s)
    shards_[s].capacity =
        capacity_ / shardCount_ + (s < capacity_ % shardCount_ ? 1 : 0);
}

bool StageCache::findErased(const CacheKey& key, std::any& out) {
  obs::Span span(tracer_.get(), "cache/lookup", "cache");
  Shard& sh = shardFor(key);
  const std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) {
    ++sh.counters.misses;
    span.arg("hit", 0);
    return false;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // promote to most recent
  ++sh.counters.hits;
  span.arg("hit", 1);
  out = it->second->value;
  return true;
}

std::size_t StageCache::insertErased(const CacheKey& key, std::any value) {
  Shard& sh = shardFor(key);
  const std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it != sh.map.end()) {
    // Refresh: same key recomputed (e.g. two threads raced on one miss).
    it->second->value = std::move(value);
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return 0;
  }
  sh.lru.push_front(Entry{key, std::move(value)});
  sh.map.emplace(key, sh.lru.begin());
  std::size_t evicted = 0;
  while (sh.map.size() > sh.capacity) {
    sh.map.erase(sh.lru.back().key);
    sh.lru.pop_back();
    ++sh.counters.evictions;
    ++evicted;
  }
  sh.counters.entries = sh.map.size();
  return evicted;
}

std::size_t StageCache::size() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < shardCount_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mu);
    n += shards_[s].map.size();
  }
  return n;
}

StageCache::Counters StageCache::counters() const {
  Counters total;
  for (std::size_t s = 0; s < shardCount_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mu);
    total.hits += shards_[s].counters.hits;
    total.misses += shards_[s].counters.misses;
    total.evictions += shards_[s].counters.evictions;
    total.entries += shards_[s].map.size();
  }
  return total;
}

void StageCache::clear() {
  for (std::size_t s = 0; s < shardCount_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mu);
    shards_[s].lru.clear();
    shards_[s].map.clear();
    shards_[s].counters.entries = 0;
  }
}

}  // namespace hsd::engine
