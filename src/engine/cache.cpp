#include "engine/cache.hpp"

namespace hsd::engine {

bool StageCache::findErased(const CacheKey& key, std::any& out) {
  obs::Span span(tracer_.get(), "cache/lookup", "cache");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++counters_.misses;
    span.arg("hit", 0);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to most recent
  ++counters_.hits;
  span.arg("hit", 1);
  out = it->second->value;
  return true;
}

std::size_t StageCache::insertErased(const CacheKey& key, std::any value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh: same key recomputed (e.g. two threads raced on one miss).
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.push_front(Entry{key, std::move(value)});
  map_.emplace(key, lru_.begin());
  std::size_t evicted = 0;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
    ++evicted;
  }
  counters_.entries = map_.size();
  return evicted;
}

std::size_t StageCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

StageCache::Counters StageCache::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Counters c = counters_;
  c.entries = map_.size();
  return c;
}

void StageCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  counters_.entries = 0;
}

}  // namespace hsd::engine
