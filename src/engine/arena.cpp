#include "engine/arena.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <new>

#include "par/cacheline.hpp"

namespace hsd::engine {

namespace {
// Process-wide payload bytes reserved across every arena. Bumped only in
// grow() — i.e. never in steady state, where arenas rewind in place — so
// a request-window delta of this counter is exactly "new arena memory
// this request forced", which is what per-request profiles report.
std::atomic<std::uint64_t> gReservedBytes{0};
}  // namespace

std::uint64_t arenaReservedBytes() {
  return gReservedBytes.load(std::memory_order_relaxed);
}

// One chain link: a cache-line-sized header directly followed by its
// payload, so payloads start 64-byte aligned and a block is one
// contiguous allocation.
struct alignas(par::kCacheLineSize) Arena::Block {
  Block* next;
  std::size_t capacity;  ///< payload bytes that follow this header

  char* payload() { return reinterpret_cast<char*>(this) + sizeof(Block); }
};

Arena::~Arena() {
  Block* b = head_;
  while (b != nullptr) {
    Block* const next = b->next;
    ::operator delete(b, std::align_val_t{par::kCacheLineSize});
    b = next;
  }
}

Arena::Block* Arena::grow(std::size_t bytes) {
  static_assert(offsetof(Block, next) == 0,
                "chain pointer must lead the header");
  static_assert(offsetof(Block, capacity) == sizeof(void*),
                "header fields must stay adjacent");
  static_assert(sizeof(Block) == par::kCacheLineSize,
                "payload must start exactly one cache line in");
  Block* const cur = static_cast<Block*>(cur_);
  const std::size_t last = cur != nullptr ? cur->capacity : 0;
  const std::size_t cap =
      std::max({bytes, kDefaultBlockBytes, std::min(last * 2, kMaxBlockBytes)});
  void* const mem = ::operator new(sizeof(Block) + cap,
                                   std::align_val_t{par::kCacheLineSize});
  Block* const b = static_cast<Block*>(mem);
  b->capacity = cap;
  if (cur != nullptr) {
    // Splice after the current block so the bump walk finds it next; any
    // previously grown tail stays reachable behind it.
    b->next = cur->next;
    cur->next = b;
  } else {
    b->next = head_;
    head_ = b;
  }
  capacity_ += cap;
  ++blocks_;
  gReservedBytes.fetch_add(cap, std::memory_order_relaxed);
  return b;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  Block* b = static_cast<Block*>(cur_);
  std::size_t off = offset_;
  for (;;) {
    if (b != nullptr) {
      const std::size_t aligned = (off + align - 1) & ~(align - 1);
      if (aligned + bytes <= b->capacity) {
        cur_ = b;
        offset_ = aligned + bytes;
        used_ += offset_ - off;
        highWater_ = std::max(highWater_, used_);
        return b->payload() + aligned;
      }
      if (b->next != nullptr) {
        // Retained block from an earlier high-water run: reuse it.
        used_ += b->capacity - off;  // account the skipped tail as live
        b = b->next;
        off = 0;
        continue;
      }
    }
    b = grow(bytes);
    off = 0;
  }
}

void Arena::rewind(const Mark& m) {
  cur_ = m.block != nullptr ? m.block : head_;
  offset_ = m.block != nullptr ? m.offset : 0;
  used_ = m.used;
}

void Arena::reset() {
  cur_ = head_;
  offset_ = 0;
  used_ = 0;
}

Arena& threadScratch() {
  thread_local Arena arena;
  return arena;
}

}  // namespace hsd::engine
