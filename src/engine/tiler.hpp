// Spatial tiling plan and deterministic report merge for tiled layout
// evaluation.
//
// A TilePlan partitions a layout bounding box into grid tiles (ids from
// geom's GridTiling — row-major, deterministic) and expands each tile by a
// halo so that every stage run inside the tile (clip extraction, screen,
// feature extraction, fuzzy matching) sees the *full* geometry any owned
// anchor's clip window can reach. The halo must cover the clip's reach
// from an anchor — ambit plus half the core side (minTileHalo) — or the
// plan refuses to build: an undersized halo would silently change
// verdicts at seams, which is the one failure mode this layer exists to
// prevent.
//
// Ownership rule: a hotspot belongs to the tile that owns its anchor's
// canonical corner (GridTiling::ownerOf — half-open seams, one owner per
// point). ReportMerger enforces it: hits whose anchor the contributing
// tile does not own are dropped (halo-region duplicates from redundant
// evaluation), survivors are ordered by the global anchor sequence number
// — byte-identical to the monolithic evaluation stream no matter how many
// tiles ran, in what order, on how many threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "geom/tiling.hpp"
#include "layout/clip.hpp"

namespace hsd::engine {

/// Tiled-evaluation knobs. Tiling is off by default (tileSize == 0): the
/// monolithic path runs unchanged. Deliberately *not* part of any config
/// fingerprint — tiling must never change results, only their schedule.
struct TilingParams {
  /// Grid tile side in dbu; 0 disables tiling.
  Coord tileSize = 0;
  /// Halo width in dbu; 0 means "auto" (minTileHalo of the clip params).
  /// Anything below the minimum is a hard error at plan time.
  Coord halo = 0;
  /// Cap on concurrently evaluated tiles (0 = no cap beyond the context's
  /// thread count). Serving uses it to bound pooled-context fan-out.
  std::size_t tileThreads = 0;

  bool enabled() const { return tileSize > 0; }
};

/// Smallest halo that keeps tiled evaluation exact: the farthest a clip
/// window reaches from its anchor — the ambit ring plus (rounded-up) half
/// the core. Always larger than the ambit alone.
constexpr Coord minTileHalo(const ClipParams& clip) {
  return clip.ambit() + (clip.coreSide - clip.coreSide / 2);
}

/// One tile of a plan: its id, the owned (un-haloed) region, and the
/// halo-expanded region whose geometry the tile's stages must see.
struct TileSpec {
  std::size_t id = 0;
  Rect owned;
  Rect expanded;
};

/// Deterministic tiling of a layout bounding box. Pure function of
/// (bounds, params, clip): same inputs give the same tile ids, boxes and
/// ownership on every run, thread count and machine.
class TilePlan {
 public:
  /// Build a plan over `bounds`. Throws std::invalid_argument when tiling
  /// is disabled (tileSize <= 0) or the halo is below minTileHalo(clip).
  static TilePlan make(const Rect& bounds, const TilingParams& params,
                       const ClipParams& clip);

  const GridTiling& grid() const { return grid_; }
  Coord halo() const { return halo_; }
  std::size_t tileCount() const { return grid_.tileCount(); }

  TileSpec tile(std::size_t id) const {
    const Rect owned = grid_.tileBox(id);
    return {id, owned, owned.inflated(halo_)};
  }

  /// Id of the tile owning anchor point `p` (total: every point has
  /// exactly one owner — the ownership rule of the deterministic merge).
  std::size_t ownerOf(const Point& p) const { return grid_.ownerOf(p); }

 private:
  GridTiling grid_;
  Coord halo_ = 0;
};

/// One per-tile hit: the global anchor sequence number (position in the
/// monolithic candidateAnchors stream), the anchor's canonical corner,
/// and the flagged window.
struct TileHit {
  std::uint64_t seq = 0;
  Point anchor;
  ClipWindow win;
};

/// Canonical merge of per-tile hit streams. Thread-safe add; finish()
/// applies the ownership dedup and emits windows in global anchor-sequence
/// order — the exact order the monolithic pipeline would have produced.
class ReportMerger {
 public:
  explicit ReportMerger(const TilePlan& plan) : plan_(&plan) {}

  /// Fold in one tile's hits. Hits whose anchor `tileId` does not own are
  /// dropped (halo-region duplicates); callable concurrently from tile
  /// tasks.
  void add(std::size_t tileId, std::vector<TileHit> hits);

  /// Ownership-deduplicated windows sorted by anchor sequence. Consumes
  /// the accumulated hits.
  std::vector<ClipWindow> finish();

  /// Number of non-owned (halo-duplicate) hits dropped so far.
  std::size_t droppedNonOwned() const;

 private:
  const TilePlan* plan_;
  mutable std::mutex mu_;
  std::vector<TileHit> hits_;
  std::size_t dropped_ = 0;
};

}  // namespace hsd::engine
