// RunContext: the execution substrate of a detection/training run. Owns
// one ThreadPool shared by every phase (no more per-call pool or ad-hoc
// thread construction), the per-stage EngineStats registry, the streaming
// batch size, and a cooperative cancellation flag. Every long-running
// entry point in src/core takes a RunContext& (with a back-compat
// overload that builds a default context), so thread count, batch size,
// and per-stage wall time are controlled and observed from one place.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "engine/arena.hpp"
#include "engine/cache.hpp"
#include "engine/stats.hpp"
#include "obs/log.hpp"
#include "obs/model_stats.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace hsd::engine {

/// Thrown by RunContext::throwIfCancelled() once cancellation is
/// requested; pipelines and stage loops let it propagate to the caller.
struct CancelledError : std::runtime_error {
  CancelledError() : std::runtime_error("engine: run cancelled") {}
};

class RunContext {
 public:
  static constexpr std::size_t kDefaultBatchSize = 512;

  /// `threads` == 0 selects hardware_concurrency; 1 means fully serial
  /// (no worker threads are ever spawned). The pool itself is created
  /// lazily on first parallel use.
  explicit RunContext(std::size_t threads = 0,
                      std::size_t batchSize = kDefaultBatchSize);

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  std::size_t threadCount() const { return threads_; }
  std::size_t batchSize() const { return batch_; }
  void setBatchSize(std::size_t b) { batch_ = b == 0 ? 1 : b; }

  EngineStats& stats() { return stats_; }
  const EngineStats& stats() const { return stats_; }

  /// The calling thread's scratch arena (engine/arena.hpp). Stage bodies
  /// carve per-clip buffers here under an ArenaScope instead of touching
  /// the heap; each pool worker gets its own arena, so this is safe from
  /// inside parallelFor without locks.
  Arena& scratch() const { return threadScratch(); }

  /// Attach a content-addressed stage cache (opt-in; see engine/cache.hpp).
  /// Sharing one StageCache across contexts/runs is what makes warm
  /// re-evaluation skip unchanged windows. Pass nullptr to detach.
  void attachCache(std::shared_ptr<StageCache> cache) {
    cache_ = std::move(cache);
  }
  /// The attached stage cache, or nullptr when running uncached.
  StageCache* cache() const { return cache_.get(); }
  std::shared_ptr<StageCache> sharedCache() const { return cache_; }

  /// Attach a span trace recorder (opt-in, like the stage cache; see
  /// obs/trace.hpp). Every stage batch, parallelFor chunk, and — via the
  /// cache's own recorder — StageCache lookup then lands in the trace.
  /// The recorder may be shared across contexts (its ring buffers are
  /// per-thread); pass nullptr to detach. Attach between runs, not while
  /// one is in flight.
  void attachTracer(std::shared_ptr<obs::TraceRecorder> tracer) {
    tracer_ = std::move(tracer);
  }
  /// The attached trace recorder, or nullptr when tracing is off.
  obs::TraceRecorder* tracer() const { return tracer_.get(); }
  std::shared_ptr<obs::TraceRecorder> sharedTracer() const { return tracer_; }

  /// Attach a structured log recorder (opt-in, shareable across contexts
  /// like the tracer; see obs/log.hpp). Stage and tile milestones land
  /// here via log(); pass nullptr to detach. Attach between runs.
  void attachLog(std::shared_ptr<obs::LogRecorder> log) {
    log_ = std::move(log);
  }
  obs::LogRecorder* logRecorder() const { return log_.get(); }
  std::shared_ptr<obs::LogRecorder> sharedLog() const { return log_; }

  /// Attach a model-quality recorder (opt-in, shareable across contexts
  /// like the tracer; see obs/model_stats.hpp). The evaluator's SVM and
  /// feedback stages record per-cluster decision margins and capture
  /// low-margin windows into it. Slot order must match the detector's
  /// kernel order (build from Detector::clusterNames()). Attach between
  /// runs; pass nullptr to detach.
  void attachModelStats(std::shared_ptr<obs::ModelStatsRecorder> rec) {
    modelStats_ = std::move(rec);
  }
  obs::ModelStatsRecorder* modelStats() const { return modelStats_.get(); }
  std::shared_ptr<obs::ModelStatsRecorder> sharedModelStats() const {
    return modelStats_;
  }
  /// Record one structured log line when a recorder is attached and the
  /// level clears its floor; a no-op (two loads) otherwise. The record
  /// inherits the calling thread's current trace id.
  void log(obs::LogLevel level, const char* component,
           std::string_view message, obs::TraceArg a0 = {},
           obs::TraceArg a1 = {}, obs::TraceStrArg s0 = {}) const {
    obs::logTo(log_.get(), level, component, message, a0, a1, s0);
  }

  /// Request correlation id for the run in flight on this context. The
  /// serve layer stamps the wire trace id here before evaluate() and the
  /// pool resets it on checkin; evaluators install it as the calling
  /// thread's current id (obs::ScopedTraceId) so every span/log under
  /// the run correlates. Two relaxed atomics — borrowed helper contexts
  /// are stamped cross-thread during tile fan-out.
  void setTraceId(obs::TraceId id) {
    traceHi_.store(id.hi, std::memory_order_relaxed);
    traceLo_.store(id.lo, std::memory_order_relaxed);
  }
  obs::TraceId traceId() const {
    return {traceHi_.load(std::memory_order_relaxed),
            traceLo_.load(std::memory_order_relaxed)};
  }

  /// Shared pool (created on first call; never call with threadCount()==1
  /// code paths that want to stay thread-free).
  ThreadPool& pool();

  // Cooperative cancellation: long loops poll cancelRequested() or call
  // throwIfCancelled() at batch boundaries; parallelFor additionally polls
  // per item, so a cancel lands mid-stage, not just between stages.
  //
  // Cancellation-reuse contract: requestCancel() (and an expired deadline)
  // poisons the context until resetCancel() is called — every subsequent
  // run on it throws CancelledError. Pooled contexts (serve::ContextPool)
  // call resetCancel() on checkin so a reused context starts clean.
  void requestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return cancel_.load(std::memory_order_relaxed) || deadlineExpired();
  }
  void throwIfCancelled() const {
    if (cancelRequested()) throw CancelledError();
  }
  /// Re-arm a cancelled context for reuse: clears the flag and any armed
  /// deadline. Call only between runs (not while a run is in flight).
  void resetCancel() {
    cancel_.store(false, std::memory_order_relaxed);
    deadlineNs_.store(0, std::memory_order_relaxed);
  }

  // Deadline: an absolute steady_clock point after which the context
  // behaves as cancelled (polled wherever cancellation is polled). This is
  // what backs per-request timeouts in the serving front end; no watchdog
  // thread is involved, expiry is detected cooperatively.
  void setDeadline(std::chrono::steady_clock::time_point d) {
    deadlineNs_.store(d.time_since_epoch().count(), std::memory_order_relaxed);
  }
  void clearDeadline() { deadlineNs_.store(0, std::memory_order_relaxed); }
  bool hasDeadline() const {
    return deadlineNs_.load(std::memory_order_relaxed) != 0;
  }
  /// True once an armed deadline has passed (false when none is armed).
  /// Stays true until resetCancel()/clearDeadline(), so a caller that
  /// caught CancelledError can distinguish timeout from explicit cancel.
  bool deadlineExpired() const {
    const std::int64_t d = deadlineNs_.load(std::memory_order_relaxed);
    return d != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

  /// Run body(i) for i in [0, n) on the shared pool, chunked by `grain`
  /// (0 = auto). Serial when threadCount() == 1. Index-stable writes make
  /// results independent of the thread count.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   std::size_t grain = 0);

 private:
  std::size_t threads_;
  std::size_t batch_;
  EngineStats stats_;
  std::atomic<bool> cancel_{false};
  std::atomic<std::int64_t> deadlineNs_{0};  ///< steady_clock epoch ns; 0=none
  std::once_flag poolOnce_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<StageCache> cache_;
  std::shared_ptr<obs::TraceRecorder> tracer_;
  std::shared_ptr<obs::LogRecorder> log_;
  std::shared_ptr<obs::ModelStatsRecorder> modelStats_;
  std::atomic<std::uint64_t> traceHi_{0};  ///< request trace id (0,0 = none)
  std::atomic<std::uint64_t> traceLo_{0};
};

}  // namespace hsd::engine
