#include "engine/run_context.hpp"

#include <algorithm>
#include <thread>

namespace hsd::engine {

RunContext::RunContext(std::size_t threads, std::size_t batchSize)
    : threads_(threads == 0 ? std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())
                            : threads),
      batch_(batchSize == 0 ? 1 : batchSize) {}

ThreadPool& RunContext::pool() {
  std::call_once(poolOnce_,
                 [this] { pool_ = std::make_unique<ThreadPool>(threads_); });
  return *pool_;
}

void RunContext::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  if (n == 0) return;
  throwIfCancelled();
  if (threads_ <= 1 || n == 1 || ThreadPool::inWorker()) {
    for (std::size_t i = 0; i < n; ++i) {
      throwIfCancelled();
      body(i);
    }
    return;
  }
  // Poll cancellation per item so a requestCancel()/deadline expiry lands
  // mid-loop: the throwing worker makes ThreadPool::parallelFor stop
  // claiming further chunks and rethrow CancelledError on this thread.
  pool().parallelFor(
      n,
      [this, &body](std::size_t i) {
        throwIfCancelled();
        body(i);
      },
      grain, tracer_.get());
}

}  // namespace hsd::engine
