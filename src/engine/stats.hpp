// Per-stage instrumentation registry: every pipeline stage (and any code
// that wants coarse phase timing) records (calls, items, wall seconds)
// under a stage name. One EngineStats lives in each RunContext, so a whole
// detection run — extraction, evaluation, removal, training — is observable
// from a single object and dumpable as JSON for the bench harness.
//
// Stage and cache entries are reported in *registration order* (first
// record wins the slot), not sorted by name, so ENGINE_STATS JSON lines
// and golden-report diffs stay stable as stages are added or renamed.
#pragma once

#include <cstddef>
#include <chrono>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace hsd::engine {

/// Accumulated counters of one named stage.
struct StageStats {
  std::size_t calls = 0;    ///< number of batch invocations
  std::size_t items = 0;    ///< total items processed
  double seconds = 0.0;     ///< total wall time inside the stage

  friend constexpr auto operator<=>(const StageStats&,
                                    const StageStats&) = default;
};

/// Accumulated stage-cache counters of one cached stage (see
/// engine/cache.hpp): lookups that hit, lookups that missed (and were
/// recomputed), and entries this stage's inserts evicted.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;

  friend constexpr auto operator<=>(const CacheStats&,
                                    const CacheStats&) = default;
};

/// Thread-safe stage-name -> StageStats registry (plus per-stage cache
/// counters). Iteration order of snapshots and JSON is registration order.
///
/// Tiled runs record the same logical stage once per tile under
/// namespaced names ("tile<k>/extract/screen", "tile<k>/eval/svm", ...)
/// so per-tile timings never collide. Consumers that want the monolithic
/// view use `rollup`/`cacheRollup` (per-tile counters summed under the
/// plain stage name), and `toJson` appends those aggregates after the raw
/// entries — existing ENGINE_STATS consumers keep seeing "extract/screen"
/// whether or not the run was tiled.
class EngineStats {
 public:
  /// Add one invocation of `stage` covering `items` items in `seconds`.
  void record(const std::string& stage, std::size_t items, double seconds);

  /// Add stage-cache lookup/eviction deltas for `stage`.
  void recordCache(const std::string& stage, std::size_t hits,
                   std::size_t misses, std::size_t evictions);

  /// Pin a registration slot for `stage` without recording anything.
  /// The tiled evaluator declares every per-tile stage name up front, in
  /// tile order, so the JSON key order stays deterministic no matter
  /// which tile's worker records first.
  void declare(const std::string& stage);
  void declareCache(const std::string& stage);

  /// Fold another registry's counters into this one (serving fans one
  /// request's tiles across pooled contexts and merges their stats back
  /// into the request's primary context). Names merge into existing slots
  /// or register fresh ones in `other`'s order.
  void mergeFrom(const EngineStats& other);

  /// Copy of the current registry, in registration order.
  std::vector<std::pair<std::string, StageStats>> snapshot() const;

  /// Cache counters of every cached stage, in registration order.
  std::vector<std::pair<std::string, CacheStats>> cacheSnapshot() const;

  /// Stats of one stage (zeros when the stage never ran).
  StageStats stage(const std::string& name) const;

  /// Cache counters of one stage (zeros when never recorded).
  CacheStats cache(const std::string& name) const;

  /// Aggregated view across tiles: the exact-name counters plus every
  /// "tile<k>/<name>" instance summed in. Equals `stage(name)` for
  /// monolithic runs.
  StageStats rollup(const std::string& name) const;
  CacheStats cacheRollup(const std::string& name) const;

  /// JSON object: {"stage": {"calls": N, "items": N, "seconds": S}, ...,
  /// "cache/stage": {"hits": N, "misses": N, "evictions": N}, ...}.
  /// Keys appear in registration order; suitable for appending to
  /// BENCH_*.json trackers and for byte-stable ENGINE_STATS diffs.
  /// When tile-namespaced stages are present, their roll-ups (summed
  /// under the plain stage name, first-tile-appearance order) follow the
  /// raw entries, so existing consumers keep their keys. Monolithic runs
  /// emit exactly the pre-tiling format.
  std::string toJson() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, StageStats>> stages_;
  std::unordered_map<std::string, std::size_t> stageIndex_;
  std::vector<std::pair<std::string, CacheStats>> caches_;
  std::unordered_map<std::string, std::size_t> cacheIndex_;
};

/// RAII timer: records one invocation into `stats` on destruction.
/// `items` can be adjusted before the scope closes (e.g. filter stages
/// that only learn their output size at the end). With a non-null
/// `tracer` (pass RunContext::tracer()) each invocation additionally
/// lands in the trace as one "stage"-category span carrying the item
/// count — one span per batch invocation.
class StageTimer {
 public:
  StageTimer(EngineStats& stats, std::string stage, std::size_t items,
             obs::TraceRecorder* tracer = nullptr)
      : stats_(stats),
        stage_(std::move(stage)),
        items_(items),
        tracer_(tracer),
        t0_(std::chrono::steady_clock::now()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void setItems(std::size_t items) { items_ = items; }

  /// Record now instead of at scope exit (for mid-function stage
  /// boundaries); the destructor then does nothing.
  void stop() {
    if (done_) return;
    done_ = true;
    const auto t1 = std::chrono::steady_clock::now();
    stats_.record(stage_, items_,
                  std::chrono::duration<double>(t1 - t0_).count());
    if (tracer_ != nullptr)
      tracer_->recordSpan(stage_, "stage", t0_, t1, {"items", items_});
  }

  ~StageTimer() { stop(); }

 private:
  EngineStats& stats_;
  std::string stage_;
  std::size_t items_;
  obs::TraceRecorder* tracer_;
  std::chrono::steady_clock::time_point t0_;
  bool done_ = false;
};

}  // namespace hsd::engine
