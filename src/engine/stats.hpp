// Per-stage instrumentation registry: every pipeline stage (and any code
// that wants coarse phase timing) records (calls, items, wall seconds)
// under a stage name. One EngineStats lives in each RunContext, so a whole
// detection run — extraction, evaluation, removal, training — is observable
// from a single object and dumpable as JSON for the bench harness.
#pragma once

#include <cstddef>
#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace hsd::engine {

/// Accumulated counters of one named stage.
struct StageStats {
  std::size_t calls = 0;    ///< number of batch invocations
  std::size_t items = 0;    ///< total items processed
  double seconds = 0.0;     ///< total wall time inside the stage

  friend constexpr auto operator<=>(const StageStats&,
                                    const StageStats&) = default;
};

/// Thread-safe stage-name -> StageStats registry.
class EngineStats {
 public:
  /// Add one invocation of `stage` covering `items` items in `seconds`.
  void record(const std::string& stage, std::size_t items, double seconds);

  /// Copy of the current registry (stable, sorted by stage name).
  std::map<std::string, StageStats> snapshot() const;

  /// Stats of one stage (zeros when the stage never ran).
  StageStats stage(const std::string& name) const;

  /// JSON object: {"stage": {"calls": N, "items": N, "seconds": S}, ...}.
  /// Keys are sorted; suitable for appending to BENCH_*.json trackers.
  std::string toJson() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, StageStats> stages_;
};

/// RAII timer: records one invocation into `stats` on destruction.
/// `items` can be adjusted before the scope closes (e.g. filter stages
/// that only learn their output size at the end).
class StageTimer {
 public:
  StageTimer(EngineStats& stats, std::string stage, std::size_t items)
      : stats_(stats),
        stage_(std::move(stage)),
        items_(items),
        t0_(std::chrono::steady_clock::now()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void setItems(std::size_t items) { items_ = items; }

  /// Record now instead of at scope exit (for mid-function stage
  /// boundaries); the destructor then does nothing.
  void stop() {
    if (done_) return;
    done_ = true;
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0_)
                           .count();
    stats_.record(stage_, items_, sec);
  }

  ~StageTimer() { stop(); }

 private:
  EngineStats& stats_;
  std::string stage_;
  std::size_t items_;
  std::chrono::steady_clock::time_point t0_;
  bool done_ = false;
};

}  // namespace hsd::engine
