#include "par/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hsd {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errMu;
  std::vector<std::thread> ts;
  ts.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(errMu);
          if (!firstError) firstError = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : ts) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace hsd
