#include "par/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/trace.hpp"
#include "obs/trace_id.hpp"

namespace hsd {

namespace {
thread_local bool tlsInWorker = false;
}  // namespace

bool ThreadPool::inWorker() { return tlsInWorker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::workerLoop() {
  tlsInWorker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::size_t autoGrain(std::size_t n, std::size_t threads) {
  if (threads <= 1) return std::max<std::size_t>(1, n);
  // ~8 chunks per thread balances scheduling overhead against load skew.
  return std::max<std::size_t>(1, n / (threads * 8));
}

namespace {

// Shared chunk-claiming loop: workers grab `grain` consecutive indices per
// atomic fetch instead of one task/fetch per item (which is pathological
// for >100k-item ranges).
//
// An exception from `body` (notably engine::CancelledError) is captured
// into `firstError` for the submitting thread to rethrow, and the claim
// counter is pushed past `n` so every worker — this one included — stops
// claiming chunks instead of grinding through the remaining range. That
// makes cancellation prompt and keeps the pool reusable: no exception
// ever escapes into a worker thread (which would std::terminate).
void chunkLoop(std::atomic<std::size_t>& next, std::size_t n,
               std::size_t grain,
               const std::function<void(std::size_t)>& body,
               std::exception_ptr& firstError, std::mutex& errMu,
               obs::TraceRecorder* tracer) {
  for (;;) {
    const std::size_t i0 = next.fetch_add(grain);
    if (i0 >= n) return;
    const std::size_t i1 = std::min(i0 + grain, n);
    obs::Span span(tracer, "chunk", "par");
    span.arg("first", i0);
    span.arg("count", i1 - i0);
    try {
      for (std::size_t i = i0; i < i1; ++i) body(i);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(errMu);
        if (!firstError) firstError = std::current_exception();
      }
      next.store(n, std::memory_order_relaxed);  // drain all claimers
      return;
    }
  }
}

}  // namespace

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain, obs::TraceRecorder* tracer) {
  if (n == 0) return;
  // Running inline when called from a pool worker avoids deadlocking on
  // our own queue (the waiting task would occupy the slot its children
  // need).
  if (threadCount() <= 1 || n == 1 || inWorker()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (grain == 0) grain = autoGrain(n, threadCount());
  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errMu;
  const std::size_t tasks =
      std::min(threadCount(), (n + grain - 1) / grain);
  std::vector<std::future<void>> futs;
  futs.reserve(tasks);
  // Workers inherit the caller's request trace id for the duration of
  // their chunks, so fan-out spans/logs stay correlated to the request.
  const obs::TraceId trace = obs::currentTraceId();
  for (std::size_t t = 0; t < tasks; ++t)
    futs.push_back(submit([&, trace] {
      const obs::ScopedTraceId scope(trace);
      chunkLoop(next, n, grain, body, firstError, errMu, tracer);
    }));
  for (auto& f : futs) f.get();
  if (firstError) std::rethrow_exception(firstError);
}

void parallelFor(std::size_t n, std::size_t threads, std::size_t grain,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (grain == 0) grain = autoGrain(n, threads);
  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errMu;
  std::vector<std::thread> ts;
  ts.reserve(threads);
  const obs::TraceId trace = obs::currentTraceId();
  for (std::size_t t = 0; t < threads; ++t)
    ts.emplace_back([&, trace] {
      const obs::ScopedTraceId scope(trace);
      chunkLoop(next, n, grain, body, firstError, errMu, nullptr);
    });
  for (std::thread& t : ts) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& body) {
  parallelFor(n, threads, 0, body);
}

}  // namespace hsd
