// Cache-line layout primitives for hot shared structures. Concurrently
// touched fields that share a 64-byte line ping-pong it between cores
// (false sharing); the fix is mechanical — align each independently
// written field (or shard) to its own line and pad to a full line so
// neighbors can't move in. offsetof/sizeof static_asserts pin the layout
// at compile time so a refactor can't silently re-pack it.
#pragma once

#include <cstddef>
#include <new>

namespace hsd::par {

/// Destructive-interference granularity. Hard-wired to 64 rather than
/// std::hardware_destructive_interference_size: every x86-64 / mainstream
/// AArch64 part lines at 64, and a constant keeps the static_asserted
/// layouts identical across toolchains.
inline constexpr std::size_t kCacheLineSize = 64;

/// T on its own cache line(s): aligned to a line start and padded to a
/// line multiple, so adjacent array elements never share a line. Use for
/// arrays of per-worker counters, pool slots, shard heads.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value;
};

static_assert(sizeof(CachePadded<char>) == kCacheLineSize,
              "padding must round up to a full line");
static_assert(alignof(CachePadded<char>) == kCacheLineSize,
              "element must start on a line boundary");
static_assert(offsetof(CachePadded<char>, value) == 0,
              "value must sit at the line start");

}  // namespace hsd::par
