// Small thread pool + parallel_for, replacing the raw pthread usage of the
// paper (Sec. III-G). Kernel training, clip extraction and evaluation are
// all embarrassingly parallel over independent work items.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hsd {

/// Fixed-size pool of worker threads executing enqueued tasks FIFO.
class ThreadPool {
 public:
  /// `threads` == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes (exceptions
  /// propagate through the future).
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run body(i) for i in [0, n) across `threads` threads (0 = hardware
/// concurrency, 1 = serial in the calling thread). Blocks until all
/// iterations finish; the first exception (if any) is rethrown.
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& body);

}  // namespace hsd
