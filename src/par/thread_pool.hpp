// Small thread pool + parallel_for, replacing the raw pthread usage of the
// paper (Sec. III-G). Kernel training, clip extraction and evaluation are
// all embarrassingly parallel over independent work items.
//
// Production call sites should not construct a ThreadPool directly: one
// pool lives inside engine::RunContext and is shared by every stage of a
// detection run (see src/engine/run_context.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hsd::obs {
class TraceRecorder;
}  // namespace hsd::obs

namespace hsd {

/// Fixed-size pool of worker threads executing enqueued tasks FIFO.
class ThreadPool {
 public:
  /// `threads` == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// True when called from one of this process's pool worker threads (any
  /// pool). Used to run nested parallel_for calls inline instead of
  /// deadlocking on the pool's own queue.
  static bool inWorker();

  /// Enqueue a task; the future resolves when it completes (exceptions
  /// propagate through the future).
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n) on the pool, chunked: at most
  /// threadCount() tasks are submitted, each claiming `grain` consecutive
  /// indices at a time (0 = auto). Blocks until every worker finishes; the
  /// first exception is rethrown on the calling thread and stops all
  /// workers from claiming further chunks (prompt cancellation — a
  /// CancelledError does not grind through the remaining range). Safe to
  /// call from a worker thread (runs inline serially to avoid
  /// self-deadlock). With a non-null `tracer`, every claimed chunk is
  /// recorded as one "par"-category span (args: first index, count) on
  /// the worker that ran it — the per-thread view of how a range was
  /// scheduled.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   std::size_t grain = 0, obs::TraceRecorder* tracer = nullptr);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run body(i) for i in [0, n) across `threads` ad-hoc threads (0 =
/// hardware concurrency, 1 = serial in the calling thread), each thread
/// claiming `grain` consecutive indices per atomic fetch (0 = auto-sized
/// so a range never degenerates into per-item contention). Blocks until
/// the threads finish; the first exception (if any) is rethrown after
/// stopping all threads from claiming further chunks.
void parallelFor(std::size_t n, std::size_t threads, std::size_t grain,
                 const std::function<void(std::size_t)>& body);

/// Back-compat overload: auto grain size.
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& body);

/// Auto grain: aim for ~8 chunks per thread, at least 1 index each.
std::size_t autoGrain(std::size_t n, std::size_t threads);

}  // namespace hsd
