#include "svm/qmatrix.hpp"

#include <algorithm>
#include <cmath>

namespace hsd::svm {

QMatrix::QMatrix(const Dataset& data, double gamma, std::size_t cacheBytes)
    : data_(data), gamma_(gamma), packed_(data.x) {
  const std::size_t n = data.size();
  norms_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0;
    for (const double v : data.x[i]) s += v * v;
    norms_[i] = s;
  }
  maxRows_ = std::max<std::size_t>(2, cacheBytes / std::max<std::size_t>(
                                          1, n * sizeof(float)));
  diag_.resize(n, 1.0f);  // K(x,x) == 1 for RBF, and y_i*y_i == 1
  dotBuf_.resize(n);
}

const std::vector<float>& QMatrix::row(std::size_t i, std::size_t pinned) {
  const auto it = map_.find(i);
  if (it != map_.end()) {
    // LRU refresh: a hit moves the row to the most-recent end, so a hot
    // row can never drift to the eviction front (list splice — existing
    // references into other entries stay valid).
    lru_.splice(lru_.end(), lru_, it->second);
    return it->second->values;
  }
  if (map_.size() >= maxRows_) {
    // Evict the least-recent row, skipping the caller's pinned row.
    // maxRows_ >= 2 guarantees a second candidate exists when one row is
    // pinned, so this never fails to make room.
    auto victim = lru_.begin();
    if (victim->index == pinned) ++victim;
    map_.erase(victim->index);
    lru_.erase(victim);
    ++evicted_;
  }
  const std::size_t n = data_.size();
  std::vector<float> r(n);
  // dot_j = x_i . x_j for all j, four lanes at a time (kernel_ops keeps
  // each lane's accumulation in scalar order, so r is byte-identical to
  // the original per-j loop).
  ops::dotProducts(packed_, data_.x[i].data(), dotBuf_.data());
  for (std::size_t j = 0; j < n; ++j) {
    const double d2 = norms_[i] + norms_[j] - 2.0 * dotBuf_[j];
    const double kij = std::exp(-gamma_ * std::max(0.0, d2));
    r[j] = float(data_.y[i] * data_.y[j] * kij);
  }
  ++computed_;
  lru_.push_back(CacheEntry{i, std::move(r)});
  map_.emplace(i, std::prev(lru_.end()));
  return lru_.back().values;
}

}  // namespace hsd::svm
