// Lazily computed, row-cached Q matrix for the SMO solver:
// Q(i,j) = y_i y_j K(x_i, x_j). Extracted from svm.cpp so the cache
// policy is unit-testable; see README.md for the row-lifetime contract.
//
// Reference-lifetime contract: row() returns a reference into the cache.
// It stays valid until a *later* row() call evicts that entry. The solver
// holds the working pair (q_i, q_j) across one iteration, so the second
// lookup must pin the first row: row(j, /*pinned=*/i) guarantees the
// eviction needed to admit row j never selects row i. Without the pin, a
// capacity eviction on the j-lookup could free row i's storage while the
// solver still reads it (the use-after-free fixed in PR 8 — reachable
// because the old FIFO order let a hot, recently *hit* row sit at the
// eviction front). Eviction is true LRU: cache hits refresh recency.
#pragma once

#include <cstddef>
#include <limits>
#include <list>
#include <unordered_map>
#include <vector>

#include "svm/dataset.hpp"
#include "svm/kernel_ops.hpp"

namespace hsd::svm {

class QMatrix {
 public:
  /// Sentinel for row()'s `pinned` parameter: no row is pinned.
  static constexpr std::size_t kNoPin = std::numeric_limits<std::size_t>::max();

  /// `cacheBytes` bounds the row cache; at least two rows are always
  /// resident so the solver's working pair can coexist.
  QMatrix(const Dataset& data, double gamma, std::size_t cacheBytes);

  QMatrix(const QMatrix&) = delete;
  QMatrix& operator=(const QMatrix&) = delete;

  /// Row i of Q (n floats). A cache hit refreshes the row's LRU recency;
  /// a miss computes the row, evicting the least-recently-used entry when
  /// at capacity — never the `pinned` row (pass the index of a row whose
  /// reference the caller still holds).
  const std::vector<float>& row(std::size_t i, std::size_t pinned = kNoPin);

  float diag(std::size_t i) const { return diag_[i]; }

  // Cache introspection (unit tests; cheap, not part of the solver path).
  std::size_t maxRows() const { return maxRows_; }
  std::size_t residentRows() const { return map_.size(); }
  bool cached(std::size_t i) const { return map_.count(i) != 0; }
  std::size_t computedRows() const { return computed_; }
  std::size_t evictedRows() const { return evicted_; }

 private:
  struct CacheEntry {
    std::size_t index;
    std::vector<float> values;
  };

  const Dataset& data_;
  double gamma_;
  std::vector<double> norms_;   ///< ||x_i||^2, precomputed
  std::vector<float> diag_;     ///< Q_ii (== 1 for RBF)
  std::size_t maxRows_;
  ops::PackedVectors packed_;   ///< blocked-transposed dataset (SIMD rows)
  std::vector<double> dotBuf_;  ///< x_i . x_j scratch, reused per row
  std::list<CacheEntry> lru_;   ///< front = least recently used
  std::unordered_map<std::size_t, std::list<CacheEntry>::iterator> map_;
  std::size_t computed_ = 0;
  std::size_t evicted_ = 0;
};

}  // namespace hsd::svm
