#include "svm/platt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hsd::svm {

double PlattModel::probability(double f) const {
  const double z = a * f + b;
  // Numerically stable logistic.
  return z >= 0 ? std::exp(-z) / (1.0 + std::exp(-z))
                : 1.0 / (1.0 + std::exp(z));
}

PlattModel fitPlatt(const std::vector<double>& f,
                    const std::vector<int>& labels, std::size_t maxIter) {
  const std::size_t n = f.size();
  if (n == 0 || labels.size() != n)
    throw std::invalid_argument("fitPlatt: size mismatch or empty");
  double np = 0, nn = 0;
  for (const int y : labels) (y > 0 ? np : nn) += 1;
  if (np == 0 || nn == 0)
    throw std::invalid_argument("fitPlatt: need both classes");

  // Regularized targets (Platt's prior smoothing).
  const double hiTarget = (np + 1.0) / (np + 2.0);
  const double loTarget = 1.0 / (nn + 2.0);
  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i)
    t[i] = labels[i] > 0 ? hiTarget : loTarget;

  // Newton iterations with backtracking line search (Lin-Lin-Weng).
  double a = 0.0;
  double b = std::log((nn + 1.0) / (np + 1.0));
  const double eps = 1e-5;
  const double sigma = 1e-12;

  const auto nll = [&](double A, double B) {
    double obj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = A * f[i] + B;
      // -[t log p + (1-t) log(1-p)] in a stable form.
      if (z >= 0)
        obj += t[i] * z + std::log1p(std::exp(-z));
      else
        obj += (t[i] - 1.0) * z + std::log1p(std::exp(z));
    }
    return obj;
  };

  double fval = nll(a, b);
  for (std::size_t it = 0; it < maxIter; ++it) {
    double h11 = sigma, h22 = sigma, h21 = 0, g1 = 0, g2 = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = a * f[i] + b;
      double p, q;
      if (z >= 0) {
        p = std::exp(-z) / (1.0 + std::exp(-z));
        q = 1.0 / (1.0 + std::exp(-z));
      } else {
        p = 1.0 / (1.0 + std::exp(z));
        q = std::exp(z) / (1.0 + std::exp(z));
      }
      const double d2 = p * q;
      h11 += f[i] * f[i] * d2;
      h22 += d2;
      h21 += f[i] * d2;
      const double d1 = t[i] - p;
      g1 += f[i] * d1;
      g2 += d1;
    }
    if (std::abs(g1) < eps && std::abs(g2) < eps) break;

    const double det = h11 * h22 - h21 * h21;
    const double dA = -(h22 * g1 - h21 * g2) / det;
    const double dB = -(-h21 * g1 + h11 * g2) / det;
    const double gd = g1 * dA + g2 * dB;

    double step = 1.0;
    bool accepted = false;
    while (step >= 1e-10) {
      const double na = a + step * dA;
      const double nb = b + step * dB;
      const double nf = nll(na, nb);
      if (nf < fval + 1e-4 * step * gd) {
        a = na;
        b = nb;
        fval = nf;
        accepted = true;
        break;
      }
      step /= 2;
    }
    if (!accepted) break;
  }
  return {a, b};
}

PlattModel fitPlatt(const SvmModel& model, const Dataset& data,
                    std::size_t maxIter) {
  std::vector<double> f(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    f[i] = model.decision(data.x[i]);
  return fitPlatt(f, data.y, maxIter);
}

}  // namespace hsd::svm
