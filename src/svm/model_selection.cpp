#include "svm/model_selection.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace hsd::svm {

std::vector<std::size_t> stratifiedFolds(const std::vector<int>& labels,
                                         std::size_t folds,
                                         std::uint64_t seed) {
  if (folds == 0) throw std::invalid_argument("stratifiedFolds: folds == 0");
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < labels.size(); ++i)
    (labels[i] > 0 ? pos : neg).push_back(i);
  std::mt19937_64 rng(seed);
  std::shuffle(pos.begin(), pos.end(), rng);
  std::shuffle(neg.begin(), neg.end(), rng);

  std::vector<std::size_t> fold(labels.size(), 0);
  std::size_t next = 0;
  for (const std::size_t i : pos) fold[i] = next++ % folds;
  next = 0;
  for (const std::size_t i : neg) fold[i] = next++ % folds;
  return fold;
}

CvResult crossValidate(const Dataset& data, const SvmParams& params,
                       std::size_t folds, std::uint64_t seed) {
  if (data.empty()) throw std::invalid_argument("crossValidate: empty data");
  folds = std::min(folds, data.size());
  const std::vector<std::size_t> fold =
      stratifiedFolds(data.y, folds, seed);

  std::size_t okTotal = 0, total = 0;
  std::size_t posOk = 0, posN = 0, negOk = 0, negN = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    Dataset trainSet;
    std::vector<std::size_t> heldOut;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (fold[i] == f)
        heldOut.push_back(i);
      else
        trainSet.add(data.x[i], data.y[i]);
    }
    if (heldOut.empty() || trainSet.countLabel(1) == 0 ||
        trainSet.countLabel(-1) == 0)
      continue;
    const SvmModel model = train(trainSet, params).model;
    for (const std::size_t i : heldOut) {
      const int pred = model.predict(data.x[i]);
      const bool ok = pred == data.y[i];
      okTotal += ok;
      ++total;
      if (data.y[i] > 0) {
        posOk += ok;
        ++posN;
      } else {
        negOk += ok;
        ++negN;
      }
    }
  }
  CvResult out;
  out.evaluated = total;
  out.accuracy = total ? double(okTotal) / double(total) : 0.0;
  out.posRecall = posN ? double(posOk) / double(posN) : 0.0;
  out.negRecall = negN ? double(negOk) / double(negN) : 0.0;
  return out;
}

GridSearchResult gridSearch(const Dataset& data, const GridSearchSpec& spec) {
  GridSearchResult out;
  double bestScore = -1.0;
  for (const double C : spec.Cs) {
    for (const double gamma : spec.gammas) {
      SvmParams p;
      p.C = C;
      p.gamma = gamma;
      GridPoint gp;
      gp.C = C;
      gp.gamma = gamma;
      gp.cv = crossValidate(data, p, spec.folds, spec.seed);
      const double score = spec.balancedScore
                               ? std::min(gp.cv.posRecall, gp.cv.negRecall)
                               : gp.cv.accuracy;
      if (score > bestScore) {
        bestScore = score;
        out.best = gp;
      }
      out.all.push_back(gp);
    }
  }
  return out;
}

}  // namespace hsd::svm
