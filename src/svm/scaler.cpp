#include "svm/scaler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hsd::svm {

void Scaler::fit(const std::vector<FeatureVector>& data) {
  lo_.clear();
  hi_.clear();
  if (data.empty()) return;
  const std::size_t d = data.front().size();
  lo_.assign(d, std::numeric_limits<double>::infinity());
  hi_.assign(d, -std::numeric_limits<double>::infinity());
  for (const FeatureVector& v : data) {
    if (v.size() != d)
      throw std::invalid_argument("Scaler: inconsistent dimension");
    for (std::size_t i = 0; i < d; ++i) {
      lo_[i] = std::min(lo_[i], v[i]);
      hi_[i] = std::max(hi_[i], v[i]);
    }
  }
}

FeatureVector Scaler::transform(const FeatureVector& v) const {
  FeatureVector out(v.size());
  transformInto(v, out.data());
  return out;
}

void Scaler::transformInto(const FeatureVector& v, double* out) const {
  if (v.size() != lo_.size())
    throw std::invalid_argument("Scaler: dimension mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double range = hi_[i] - lo_[i];
    out[i] = range > 0 ? std::clamp((v[i] - lo_[i]) / range, 0.0, 1.0) : 0.5;
  }
}

void Scaler::transformInPlace(std::vector<FeatureVector>& data) const {
  for (FeatureVector& v : data) v = transform(v);
}

}  // namespace hsd::svm
