// Per-feature min-max scaling to [0, 1] (the standard libsvm-style
// preprocessing). Fitting records the training range; constant features
// map to 0.5 so they carry no information but stay bounded.
#pragma once

#include <vector>

#include "svm/dataset.hpp"

namespace hsd::svm {

class Scaler {
 public:
  Scaler() = default;
  /// Restore a fitted scaler from stored ranges (deserialization).
  Scaler(std::vector<double> mins, std::vector<double> maxs)
      : lo_(std::move(mins)), hi_(std::move(maxs)) {}

  /// Learn per-dimension ranges from `data`.
  void fit(const std::vector<FeatureVector>& data);
  bool fitted() const { return !lo_.empty(); }
  std::size_t dim() const { return lo_.size(); }

  /// Scale one vector (clamping to [0,1] for out-of-range test values).
  FeatureVector transform(const FeatureVector& v) const;
  /// transform() into caller-provided storage of dim() doubles (the
  /// allocation-free hot path; `out` may be arena scratch). Same values
  /// and same dimension-mismatch contract as transform().
  void transformInto(const FeatureVector& v, double* out) const;
  void transformInPlace(std::vector<FeatureVector>& data) const;

  const std::vector<double>& mins() const { return lo_; }
  const std::vector<double>& maxs() const { return hi_; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace hsd::svm
