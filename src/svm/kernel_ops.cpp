#include "svm/kernel_ops.hpp"

#include <stdexcept>

#include "geom/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HSD_KERNEL_OPS_AVX2 1
#include <immintrin.h>
#endif

namespace hsd::svm::ops {

PackedVectors::PackedVectors(const std::vector<FeatureVector>& vs) {
  count_ = vs.size();
  if (count_ == 0) return;
  dim_ = vs.front().size();
  for (const FeatureVector& v : vs)
    if (v.size() != dim_)
      throw std::invalid_argument("PackedVectors: inconsistent dimension");
  data_.assign(blockCount() * dim_ * kPackWidth, 0.0);
  for (std::size_t j = 0; j < count_; ++j) {
    const std::size_t b = j / kPackWidth;
    const std::size_t lane = j % kPackWidth;
    double* const blk = data_.data() + b * dim_ * kPackWidth;
    for (std::size_t k = 0; k < dim_; ++k)
      blk[k * kPackWidth + lane] = vs[j][k];
  }
}

// ---------------------------------------------------------------------------
// Scalar oracles. Each lane's accumulator advances through k in order —
// the exact sequence the original per-vector loops performed. __restrict
// and contiguous spans let the compiler keep everything in registers; it
// cannot (and must not) vectorize the reduction itself without
// -ffast-math, which this project never enables.

void dotProductsScalar(const PackedVectors& vs, const double* x,
                       double* out) {
  const std::size_t dim = vs.dim();
  const std::size_t blocks = vs.blockCount();
  const double* __restrict xp = x;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* __restrict blk = vs.block(b);
    double acc[kPackWidth] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t k = 0; k < dim; ++k) {
      const double xk = xp[k];
      const double* const row = blk + k * kPackWidth;
      for (std::size_t l = 0; l < kPackWidth; ++l) acc[l] += row[l] * xk;
    }
    const std::size_t base = b * kPackWidth;
    const std::size_t lanes =
        base + kPackWidth <= vs.count() ? kPackWidth : vs.count() - base;
    for (std::size_t l = 0; l < lanes; ++l) out[base + l] = acc[l];
  }
}

void squaredDistancesScalar(const PackedVectors& vs, const double* x,
                            double* out) {
  const std::size_t dim = vs.dim();
  const std::size_t blocks = vs.blockCount();
  const double* __restrict xp = x;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* __restrict blk = vs.block(b);
    double acc[kPackWidth] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t k = 0; k < dim; ++k) {
      const double xk = xp[k];
      const double* const row = blk + k * kPackWidth;
      for (std::size_t l = 0; l < kPackWidth; ++l) {
        const double d = row[l] - xk;
        acc[l] += d * d;
      }
    }
    const std::size_t base = b * kPackWidth;
    const std::size_t lanes =
        base + kPackWidth <= vs.count() ? kPackWidth : vs.count() - base;
    for (std::size_t l = 0; l < lanes; ++l) out[base + l] = acc[l];
  }
}

// ---------------------------------------------------------------------------
// AVX2 paths. One ymm register carries the four accumulators of a block;
// only per-lane mul/add/sub are used (the avx2 target attribute does not
// enable FMA, so the compiler cannot contract them), which keeps every
// lane bit-identical to its scalar-oracle sequence.

#ifdef HSD_KERNEL_OPS_AVX2

__attribute__((target("avx2"))) static void dotProductsAvx2(
    const PackedVectors& vs, const double* x, double* out) {
  const std::size_t dim = vs.dim();
  const std::size_t blocks = vs.blockCount();
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* const blk = vs.block(b);
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < dim; ++k) {
      const __m256d xk = _mm256_set1_pd(x[k]);
      const __m256d v = _mm256_loadu_pd(blk + k * kPackWidth);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v, xk));
    }
    const std::size_t base = b * kPackWidth;
    if (base + kPackWidth <= vs.count()) {
      _mm256_storeu_pd(out + base, acc);
    } else {
      double tmp[kPackWidth];
      _mm256_storeu_pd(tmp, acc);
      for (std::size_t l = 0; base + l < vs.count(); ++l)
        out[base + l] = tmp[l];
    }
  }
}

__attribute__((target("avx2"))) static void squaredDistancesAvx2(
    const PackedVectors& vs, const double* x, double* out) {
  const std::size_t dim = vs.dim();
  const std::size_t blocks = vs.blockCount();
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* const blk = vs.block(b);
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < dim; ++k) {
      const __m256d xk = _mm256_set1_pd(x[k]);
      const __m256d v = _mm256_loadu_pd(blk + k * kPackWidth);
      const __m256d d = _mm256_sub_pd(v, xk);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    const std::size_t base = b * kPackWidth;
    if (base + kPackWidth <= vs.count()) {
      _mm256_storeu_pd(out + base, acc);
    } else {
      double tmp[kPackWidth];
      _mm256_storeu_pd(tmp, acc);
      for (std::size_t l = 0; base + l < vs.count(); ++l)
        out[base + l] = tmp[l];
    }
  }
}

#endif  // HSD_KERNEL_OPS_AVX2

void dotProducts(const PackedVectors& vs, const double* x, double* out) {
  if (vs.empty()) return;
#ifdef HSD_KERNEL_OPS_AVX2
  if (simd::activeLevel() == simd::Level::kAvx2) {
    dotProductsAvx2(vs, x, out);
    return;
  }
#endif
  dotProductsScalar(vs, x, out);
}

void squaredDistances(const PackedVectors& vs, const double* x, double* out) {
  if (vs.empty()) return;
#ifdef HSD_KERNEL_OPS_AVX2
  if (simd::activeLevel() == simd::Level::kAvx2) {
    squaredDistancesAvx2(vs, x, out);
    return;
  }
#endif
  squaredDistancesScalar(vs, x, out);
}

}  // namespace hsd::svm::ops
