// Platt scaling: calibrate SVM decision values into posterior
// probabilities P(hotspot | f) = 1 / (1 + exp(A*f + B)), fitted with the
// regularized maximum-likelihood procedure of Lin, Lin & Weng (2007) —
// LIBSVM's "-b 1" machinery. Lets callers rank reported hotspots by
// confidence instead of sweeping a raw decision bias.
#pragma once

#include <cstddef>
#include <vector>

#include "svm/dataset.hpp"
#include "svm/svm.hpp"

namespace hsd::svm {

/// Fitted sigmoid parameters.
struct PlattModel {
  double a = 0.0;
  double b = 0.0;

  /// Posterior probability of class +1 given decision value `f`.
  double probability(double f) const;
};

/// Fit the sigmoid on (decision value, label) pairs. Labels are +1/-1.
/// Throws std::invalid_argument when a class is missing.
PlattModel fitPlatt(const std::vector<double>& decisionValues,
                    const std::vector<int>& labels,
                    std::size_t maxIter = 100);

/// Convenience: run `model` over `data` and fit on its decision values.
/// (For unbiased calibration pass held-out data, not the training set.)
PlattModel fitPlatt(const SvmModel& model, const Dataset& data,
                    std::size_t maxIter = 100);

}  // namespace hsd::svm
