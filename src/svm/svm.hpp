// Two-class soft-margin C-SVM with Gaussian RBF kernel (paper Eq. 3),
// solved by SMO with maximal-violating-pair working-set selection — a
// from-scratch replacement for LIBSVM's C-SVC.
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "svm/dataset.hpp"
#include "svm/kernel_ops.hpp"

namespace hsd::svm {

/// Training hyperparameters.
struct SvmParams {
  double C = 1000.0;       ///< slack penalty (paper's initial value)
  double gamma = 0.01;     ///< RBF width (paper's initial value)
  double eps = 1e-3;       ///< KKT stopping tolerance
  double weightPos = 1.0;  ///< per-class C multiplier for label +1
  double weightNeg = 1.0;  ///< per-class C multiplier for label -1
  std::size_t maxIter = 200000;  ///< SMO iteration safety bound
  /// Working-set selection: true = second-order (LIBSVM WSS2, usually
  /// fewer iterations), false = maximal violating pair (WSS1). Both reach
  /// the same optimum of the convex dual.
  bool secondOrderWss = true;
  /// Q-row cache budget for the SMO solver (bytes). The default fits the
  /// production training sets entirely; tests shrink it to exercise the
  /// eviction path (see svm/qmatrix.hpp). At least two rows are always
  /// resident.
  std::size_t kernelCacheBytes = 64u << 20;
};

/// Trained model: support vectors with coefficients alpha_i * y_i and bias.
/// decision(x) = sum_i coef_i * K(sv_i, x) - rho; label = sign(decision).
class SvmModel {
 public:
  SvmModel() = default;

  bool empty() const { return sv_.empty(); }
  std::size_t supportVectorCount() const { return sv_.size(); }
  double gamma() const { return gamma_; }
  double rho() const { return rho_; }
  const std::vector<FeatureVector>& supportVectors() const { return sv_; }
  const std::vector<double>& coefficients() const { return coef_; }

  /// Signed decision value; positive means class +1 (hotspot).
  double decision(const FeatureVector& x) const;
  /// decision() over a borrowed contiguous span (the allocation-free hot
  /// path: the evaluator hands arena-backed scratch straight in). The
  /// kernel sum runs over the packed support-vector layout, four SVs per
  /// step, byte-identical to the scalar per-SV loop. Throws
  /// std::invalid_argument on a dimension mismatch.
  double decisionFrom(std::span<const double> x) const;
  /// Predicted label with an optional decision-threshold shift `bias`
  /// (predict +1 iff decision(x) > bias); bias sweeps trace the
  /// accuracy / false-alarm trade-off curve of Fig. 15.
  int predict(const FeatureVector& x, double bias = 0.0) const;
  /// predict() over a borrowed span (same NaN-maps-to--1 semantics).
  int predictFrom(std::span<const double> x, double bias = 0.0) const;

  void save(std::ostream& os) const;
  static SvmModel load(std::istream& is);

  /// Construct directly (used by the trainer and tests).
  SvmModel(std::vector<FeatureVector> sv, std::vector<double> coef,
           double rho, double gamma)
      : sv_(std::move(sv)),
        coef_(std::move(coef)),
        rho_(rho),
        gamma_(gamma),
        packed_(sv_) {}

 private:
  std::vector<FeatureVector> sv_;
  std::vector<double> coef_;
  double rho_ = 0.0;
  double gamma_ = 0.0;
  /// Blocked-transposed copy of sv_ for the vectorized decision path;
  /// rebuilt on construction/load, never serialized.
  ops::PackedVectors packed_;
};

/// Result of one training run.
struct TrainResult {
  SvmModel model;
  std::size_t iterations = 0;
  bool converged = false;  ///< false when maxIter was hit
  double objective = 0.0;  ///< final dual objective value f(a) of Eq. 3
};

/// Train a C-SVC on `data` (labels +1/-1). Throws std::invalid_argument on
/// an empty or single-class dataset.
TrainResult train(const Dataset& data, const SvmParams& params);

/// RBF kernel value exp(-gamma * ||a-b||^2).
double rbfKernel(const FeatureVector& a, const FeatureVector& b, double gamma);

/// Fraction of `data` classified correctly by `model`.
double trainingAccuracy(const SvmModel& model, const Dataset& data);

}  // namespace hsd::svm
