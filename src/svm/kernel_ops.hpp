// Hot kernel primitives of the SVM layer: batched dot products and
// squared distances of one query vector against a packed set of stored
// vectors — the inner loops of QMatrix row computation (SMO training) and
// SvmModel::decision (serving).
//
// Vectorization strategy (see geom/simd.hpp for the dispatch): lanes run
// *across stored vectors*, never across dimensions — each output's
// reduction accumulates in exactly the scalar order, so the dispatched
// implementations are byte-identical to the *Scalar oracles at every
// input. tests/test_hotpath.cpp pins this; never reassociate these loops.
#pragma once

#include <cstddef>
#include <vector>

#include "svm/dataset.hpp"

namespace hsd::svm::ops {

/// Lane width of the packed layout (AVX2: 4 doubles per vector register).
inline constexpr std::size_t kPackWidth = 4;

/// Blocked-transposed storage of `count` equal-dimension vectors: vectors
/// are grouped kPackWidth at a time, and within a block the k-th
/// components of the group sit contiguously (dim-major). One 4-wide load
/// then reads component k of four vectors — the layout that lets a kernel
/// evaluate four stored vectors per instruction while each vector's own
/// reduction stays sequential. Lanes of a ragged final block are
/// zero-filled (their outputs are never read).
class PackedVectors {
 public:
  PackedVectors() = default;
  explicit PackedVectors(const std::vector<FeatureVector>& vs);

  std::size_t count() const { return count_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return count_ == 0; }
  std::size_t blockCount() const {
    return (count_ + kPackWidth - 1) / kPackWidth;
  }
  /// Block b: dim_ * kPackWidth doubles, component-major.
  const double* block(std::size_t b) const {
    return data_.data() + b * dim_ * kPackWidth;
  }

 private:
  std::size_t count_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> data_;
};

/// out[j] = sum_k vs[j][k] * x[k] for j in [0, count). `x` must hold
/// dim() doubles, `out` count() doubles. Dispatched (AVX2 when the CPU
/// has it and HSD_SIMD does not force scalar); byte-identical to the
/// scalar oracle either way.
void dotProducts(const PackedVectors& vs, const double* x, double* out);
/// The scalar oracle: the exact accumulation order of the pre-SIMD code
/// (`dot = 0; for k: dot += vs[j][k] * x[k]`).
void dotProductsScalar(const PackedVectors& vs, const double* x, double* out);

/// out[j] = sum_k d*d with d = vs[j][k] - x[k], accumulated in scalar
/// order — the ||sv - x||^2 term of the RBF kernel. Dispatched.
void squaredDistances(const PackedVectors& vs, const double* x, double* out);
/// The scalar oracle (matches rbfKernel's loop bit-for-bit).
void squaredDistancesScalar(const PackedVectors& vs, const double* x,
                            double* out);

}  // namespace hsd::svm::ops
