// Feature vectors and labeled datasets for the SVM engine.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hsd::svm {

/// Dense feature vector.
using FeatureVector = std::vector<double>;

/// A labeled two-class dataset; labels are +1 / -1.
struct Dataset {
  std::vector<FeatureVector> x;
  std::vector<int> y;

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }
  std::size_t dim() const { return x.empty() ? 0 : x.front().size(); }

  void add(FeatureVector v, int label) {
    if (!x.empty() && v.size() != x.front().size())
      throw std::invalid_argument("Dataset: inconsistent feature dimension");
    if (label != 1 && label != -1)
      throw std::invalid_argument("Dataset: label must be +1 or -1");
    x.push_back(std::move(v));
    y.push_back(label);
  }

  std::size_t countLabel(int label) const {
    std::size_t n = 0;
    for (const int l : y)
      if (l == label) ++n;
    return n;
  }
};

}  // namespace hsd::svm
