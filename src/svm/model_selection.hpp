// Model selection for the SVM engine: stratified k-fold cross-validation
// and (C, gamma) grid search — the standard companion tooling of a C-SVC
// (the paper's iterative C/gamma doubling is a walk along this grid's
// diagonal; the grid search is used by the ablation benches to check how
// close the doubling heuristic lands to the CV optimum).
#pragma once

#include <cstdint>
#include <vector>

#include "svm/dataset.hpp"
#include "svm/svm.hpp"

namespace hsd::svm {

/// Deterministic stratified fold assignment: fold id per sample, each
/// class spread round-robin over `folds` after a seeded shuffle.
std::vector<std::size_t> stratifiedFolds(const std::vector<int>& labels,
                                         std::size_t folds,
                                         std::uint64_t seed = 1);

/// Metrics of one cross-validation run.
struct CvResult {
  double accuracy = 0.0;       ///< pooled over all folds
  double posRecall = 0.0;      ///< hotspot-class recall (the paper's focus)
  double negRecall = 0.0;
  std::size_t evaluated = 0;
};

/// k-fold cross-validation of `params` on `data`. Folds with a single
/// class in training are skipped (their samples don't count).
CvResult crossValidate(const Dataset& data, const SvmParams& params,
                       std::size_t folds, std::uint64_t seed = 1);

/// One grid-search candidate and its CV score.
struct GridPoint {
  double C = 0.0;
  double gamma = 0.0;
  CvResult cv;
};

struct GridSearchSpec {
  std::vector<double> Cs{1, 10, 100, 1000, 10000};
  std::vector<double> gammas{0.001, 0.01, 0.1, 1.0, 10.0};
  std::size_t folds = 5;
  std::uint64_t seed = 1;
  /// Selection score: min(posRecall, negRecall) mirrors the trainer's
  /// two-sided stopping criterion; set false to select on plain accuracy.
  bool balancedScore = true;
};

struct GridSearchResult {
  GridPoint best;
  std::vector<GridPoint> all;  ///< row-major over (Cs x gammas)
};

GridSearchResult gridSearch(const Dataset& data, const GridSearchSpec& spec);

}  // namespace hsd::svm
