#include "svm/svm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "svm/qmatrix.hpp"

namespace hsd::svm {

double rbfKernel(const FeatureVector& a, const FeatureVector& b,
                 double gamma) {
  if (a.size() != b.size())
    throw std::invalid_argument("svm::rbfKernel: dimension mismatch");
  double d2 = 0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-gamma * d2);
}

namespace {

constexpr double kTau = 1e-12;

}  // namespace

TrainResult train(const Dataset& data, const SvmParams& params) {
  const std::size_t n = data.size();
  if (n == 0) throw std::invalid_argument("svm::train: empty dataset");
  if (data.countLabel(1) == 0 || data.countLabel(-1) == 0)
    throw std::invalid_argument("svm::train: need both classes present");

  std::vector<double> alpha(n, 0.0);
  std::vector<double> grad(n, -1.0);  // G_i = sum_j Q_ij a_j - 1
  std::vector<double> cap(n);
  for (std::size_t i = 0; i < n; ++i)
    cap[i] = params.C * (data.y[i] > 0 ? params.weightPos : params.weightNeg);

  QMatrix q(data, params.gamma, params.kernelCacheBytes);

  const auto inUp = [&](std::size_t t) {
    return data.y[t] > 0 ? alpha[t] < cap[t] : alpha[t] > 0;
  };
  const auto inLow = [&](std::size_t t) {
    return data.y[t] > 0 ? alpha[t] > 0 : alpha[t] < cap[t];
  };

  std::size_t iter = 0;
  bool converged = false;
  for (; iter < params.maxIter; ++iter) {
    // First index: maximal violator in I_up (both WSS variants).
    double gmax = -std::numeric_limits<double>::infinity();
    double gmin = std::numeric_limits<double>::infinity();
    std::size_t i = n, j = n;
    for (std::size_t t = 0; t < n; ++t) {
      const double v = -double(data.y[t]) * grad[t];
      if (inUp(t) && v > gmax) {
        gmax = v;
        i = t;
      }
      if (inLow(t) && v < gmin) {
        gmin = v;
        j = t;
      }
    }
    if (i >= n || j >= n || gmax - gmin < params.eps) {
      converged = true;
      break;
    }

    const std::vector<float>& qi = q.row(i);
    if (params.secondOrderWss) {
      // Second index: maximal second-order objective decrease among the
      // violating I_low candidates (libsvm WSS2).
      double bestObj = -std::numeric_limits<double>::infinity();
      std::size_t bestJ = n;
      for (std::size_t t = 0; t < n; ++t) {
        if (!inLow(t)) continue;
        const double gradDiff = gmax + double(data.y[t]) * grad[t];
        if (gradDiff <= 0) continue;
        // Raw kernel value K_it = y_i y_t Q_it.
        const double kit =
            double(data.y[i]) * double(data.y[t]) * double(qi[t]);
        double quad = double(q.diag(i)) + q.diag(t) - 2.0 * kit;
        if (quad <= 0) quad = kTau;
        const double obj = gradDiff * gradDiff / quad;
        if (obj > bestObj) {
          bestObj = obj;
          bestJ = t;
        }
      }
      if (bestJ < n) j = bestJ;
    }
    // The second lookup pins row i: the solver keeps reading qi below,
    // and an unpinned capacity eviction here would dangle it (the
    // use-after-free this PR fixes; see svm/qmatrix.hpp).
    const std::vector<float>& qj = q.row(j, /*pinned=*/i);
    const double oldAi = alpha[i];
    const double oldAj = alpha[j];

    if (data.y[i] != data.y[j]) {
      double quad = double(q.diag(i)) + q.diag(j) + 2.0 * qi[j];
      if (quad <= 0) quad = kTau;
      const double delta = (-grad[i] - grad[j]) / quad;
      const double diff = alpha[i] - alpha[j];
      alpha[i] += delta;
      alpha[j] += delta;
      if (diff > 0) {
        if (alpha[j] < 0) {
          alpha[j] = 0;
          alpha[i] = diff;
        }
      } else {
        if (alpha[i] < 0) {
          alpha[i] = 0;
          alpha[j] = -diff;
        }
      }
      if (diff > cap[i] - cap[j]) {
        if (alpha[i] > cap[i]) {
          alpha[i] = cap[i];
          alpha[j] = cap[i] - diff;
        }
      } else {
        if (alpha[j] > cap[j]) {
          alpha[j] = cap[j];
          alpha[i] = cap[j] + diff;
        }
      }
    } else {
      double quad = double(q.diag(i)) + q.diag(j) - 2.0 * qi[j];
      if (quad <= 0) quad = kTau;
      const double delta = (grad[i] - grad[j]) / quad;
      const double sum = alpha[i] + alpha[j];
      alpha[i] -= delta;
      alpha[j] += delta;
      if (sum > cap[i]) {
        if (alpha[i] > cap[i]) {
          alpha[i] = cap[i];
          alpha[j] = sum - cap[i];
        }
      } else {
        if (alpha[j] < 0) {
          alpha[j] = 0;
          alpha[i] = sum;
        }
      }
      if (sum > cap[j]) {
        if (alpha[j] > cap[j]) {
          alpha[j] = cap[j];
          alpha[i] = sum - cap[j];
        }
      } else {
        if (alpha[i] < 0) {
          alpha[i] = 0;
          alpha[j] = sum;
        }
      }
    }

    const double dAi = alpha[i] - oldAi;
    const double dAj = alpha[j] - oldAj;
    for (std::size_t t = 0; t < n; ++t)
      grad[t] += qi[t] * dAi + qj[t] * dAj;
  }

  // Bias (libsvm calculate_rho).
  double ub = std::numeric_limits<double>::infinity();
  double lb = -std::numeric_limits<double>::infinity();
  double sumFree = 0;
  std::size_t nFree = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const double yg = double(data.y[t]) * grad[t];
    if (alpha[t] >= cap[t]) {
      if (data.y[t] < 0)
        ub = std::min(ub, yg);
      else
        lb = std::max(lb, yg);
    } else if (alpha[t] <= 0) {
      if (data.y[t] > 0)
        ub = std::min(ub, yg);
      else
        lb = std::max(lb, yg);
    } else {
      ++nFree;
      sumFree += yg;
    }
  }
  const double rho = nFree > 0 ? sumFree / double(nFree) : (ub + lb) / 2;

  double objMin = 0;
  for (std::size_t t = 0; t < n; ++t) objMin += alpha[t] * (grad[t] - 1.0);
  objMin /= 2;

  std::vector<FeatureVector> sv;
  std::vector<double> coef;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 0) {
      sv.push_back(data.x[t]);
      coef.push_back(alpha[t] * data.y[t]);
    }
  }

  TrainResult out;
  out.model = SvmModel(std::move(sv), std::move(coef), rho, params.gamma);
  out.iterations = iter;
  out.converged = converged;
  out.objective = -objMin;  // paper's maximization form f(a)
  return out;
}

double SvmModel::decision(const FeatureVector& x) const {
  return decisionFrom(std::span<const double>(x.data(), x.size()));
}

double SvmModel::decisionFrom(std::span<const double> x) const {
  if (sv_.empty()) return -rho_;
  if (x.size() != packed_.dim())
    throw std::invalid_argument("SvmModel::decision: dimension mismatch");
  // ||sv_i - x||^2 for all SVs, four lanes per step; each lane's
  // accumulation order matches rbfKernel's loop, and the kernel sum below
  // walks i sequentially — the whole path is byte-identical to the naive
  // per-SV rbfKernel loop it replaced.
  thread_local std::vector<double> d2;
  d2.resize(sv_.size());
  ops::squaredDistances(packed_, x.data(), d2.data());
  double s = 0;
  for (std::size_t i = 0; i < sv_.size(); ++i)
    s += coef_[i] * std::exp(-gamma_ * d2[i]);
  return s - rho_;
}

int SvmModel::predict(const FeatureVector& x, double bias) const {
  return decision(x) > bias ? 1 : -1;
}

int SvmModel::predictFrom(std::span<const double> x, double bias) const {
  return decisionFrom(x) > bias ? 1 : -1;
}

void SvmModel::save(std::ostream& os) const {
  os.precision(17);
  os << "hsd_svm_model 1\n";
  os << "gamma " << gamma_ << "\nrho " << rho_ << "\nnsv " << sv_.size()
     << " dim " << (sv_.empty() ? 0 : sv_.front().size()) << '\n';
  for (std::size_t i = 0; i < sv_.size(); ++i) {
    os << coef_[i];
    for (const double v : sv_[i]) os << ' ' << v;
    os << '\n';
  }
}

SvmModel SvmModel::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "hsd_svm_model" || version != 1)
    throw std::runtime_error("SvmModel::load: bad header");
  std::string kw;
  double gamma = 0, rho = 0;
  std::size_t nsv = 0, dim = 0;
  is >> kw >> gamma >> kw >> rho >> kw >> nsv >> kw >> dim;
  std::vector<FeatureVector> sv(nsv, FeatureVector(dim));
  std::vector<double> coef(nsv);
  for (std::size_t i = 0; i < nsv; ++i) {
    is >> coef[i];
    for (std::size_t k = 0; k < dim; ++k) is >> sv[i][k];
  }
  if (!is) throw std::runtime_error("SvmModel::load: truncated model");
  return SvmModel(std::move(sv), std::move(coef), rho, gamma);
}

double trainingAccuracy(const SvmModel& model, const Dataset& data) {
  if (data.empty()) return 1.0;
  std::size_t ok = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (model.predict(data.x[i]) == data.y[i]) ++ok;
  return double(ok) / double(data.size());
}

}  // namespace hsd::svm
