#include "core/extract.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "engine/pipeline.hpp"
#include "geom/rectset.hpp"

namespace hsd::core {

namespace {

// Cut rects wider/taller than the core side into core-sized pieces
// (Fig. 11a, second step).
std::vector<Rect> cutToCoreSize(const std::vector<Rect>& rects,
                                Coord coreSide) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    for (Coord x = r.lo.x; x < r.hi.x; x += coreSide) {
      const Coord xhi = std::min(x + coreSide, r.hi.x);
      for (Coord y = r.lo.y; y < r.hi.y; y += coreSide) {
        const Coord yhi = std::min(y + coreSide, r.hi.y);
        out.push_back({x, y, xhi, yhi});
      }
    }
  }
  return out;
}

}  // namespace

bool passesScreen(const GridIndex& index, const ClipWindow& win,
                  const ExtractParams& p) {
  const std::vector<std::size_t> ids = index.query(win.clip);
  if (ids.size() < p.minRectCount) return false;

  Area covered = 0;
  std::optional<Rect> bbox;
  std::vector<Rect> pieces;
  pieces.reserve(ids.size());
  for (const std::size_t i : ids) {
    const Rect c = index.rects()[i].intersect(win.clip);
    if (!c.valid() || c.empty()) continue;
    pieces.push_back(c);
    bbox = bbox ? bbox->unite(c) : c;
  }
  if (!bbox) return false;
  covered = unionArea(pieces);
  const double density = double(covered) / double(win.clip.area());
  if (density < p.minDensity || density > p.maxDensity) return false;

  // Margins: distance from each clip edge to the polygon bounding box.
  const Coord ml = bbox->lo.x - win.clip.lo.x;
  const Coord mr = win.clip.hi.x - bbox->hi.x;
  const Coord mb = bbox->lo.y - win.clip.lo.y;
  const Coord mt = win.clip.hi.y - bbox->hi.y;
  const Coord worst = std::max({ml, mr, mb, mt});
  return worst <= p.maxMargin;
}

std::vector<Point> candidateAnchors(const GridIndex& index, Coord coreSide) {
  const std::vector<Rect> pieces = cutToCoreSize(index.rects(), coreSide);

  // One candidate per piece, core anchored at the piece's bottom-left
  // corner (Fig. 11b); dedupe anchors, keeping first-seen order.
  std::vector<Point> anchors;
  std::unordered_set<Point> seen;
  anchors.reserve(pieces.size());
  for (const Rect& r : pieces)
    if (seen.insert(r.lo).second) anchors.push_back(r.lo);
  return anchors;
}

ClipWindow anchorWindow(const Point& a, const ClipParams& clip) {
  // Anchor the core so the piece's corner sits at the core center-ish:
  // the paper anchors the core at the piece's bottom-left corner.
  return ClipWindow::atCore(
      {a.x - clip.coreSide / 2, a.y - clip.coreSide / 2}, clip);
}

std::vector<ClipWindow> extractCandidateClips(const GridIndex& index,
                                              const ExtractParams& p,
                                              engine::RunContext& ctx) {
  auto screen = engine::filterMapStage<Point>(
      "extract/screen", [&index, &p](const Point& a) -> std::optional<ClipWindow> {
        const ClipWindow win = anchorWindow(a, p.clip);
        if (!passesScreen(index, win, p)) return std::nullopt;
        return win;
      });
  return engine::runPipeline(ctx, candidateAnchors(index, p.clip.coreSide),
                             screen);
}

std::vector<ClipWindow> extractCandidateClips(const Layout& layout,
                                              LayerId layer,
                                              const ExtractParams& p,
                                              engine::RunContext& ctx) {
  const Layer* l = layout.findLayer(layer);
  if (l == nullptr || l->empty()) return {};
  const GridIndex index(l->rects(), p.clip.clipSide);
  return extractCandidateClips(index, p, ctx);
}

std::vector<ClipWindow> extractCandidateClips(const GridIndex& index,
                                              const ExtractParams& p) {
  engine::RunContext ctx(p.threads);
  return extractCandidateClips(index, p, ctx);
}

std::vector<ClipWindow> extractCandidateClips(const Layout& layout,
                                              LayerId layer,
                                              const ExtractParams& p) {
  engine::RunContext ctx(p.threads);
  return extractCandidateClips(layout, layer, p, ctx);
}

std::vector<ClipWindow> windowScanClips(const Layout& layout, LayerId layer,
                                        const ClipParams& clip,
                                        double overlap) {
  (void)layer;
  const std::optional<Rect> bb = layout.bbox();
  if (!bb) return {};
  const Coord step =
      std::max<Coord>(1, Coord(double(clip.coreSide) * (1.0 - overlap)));
  std::vector<ClipWindow> out;
  for (Coord y = bb->lo.y; y < bb->hi.y; y += step)
    for (Coord x = bb->lo.x; x < bb->hi.x; x += step)
      out.push_back(ClipWindow::atCore({x, y}, clip));
  return out;
}

}  // namespace hsd::core
