#include "core/extract.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <unordered_set>

#include "engine/cache.hpp"
#include "engine/pipeline.hpp"
#include "geom/hashing.hpp"
#include "geom/rectset.hpp"

namespace hsd::core {

namespace {

// Cut rects wider/taller than the core side into core-sized pieces
// (Fig. 11a, second step).
std::vector<Rect> cutToCoreSize(const std::vector<Rect>& rects,
                                Coord coreSide) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    for (Coord x = r.lo.x; x < r.hi.x; x += coreSide) {
      const Coord xhi = std::min(x + coreSide, r.hi.x);
      for (Coord y = r.lo.y; y < r.hi.y; y += coreSide) {
        const Coord yhi = std::min(y + coreSide, r.hi.y);
        out.push_back({x, y, xhi, yhi});
      }
    }
  }
  return out;
}

// Rects overlapping win.clip, clipped to it: the geometry both the screen
// predicate and the cache's window-content hash consume. Every id returned
// by the index has positive-area overlap, so no piece comes out empty.
std::vector<Rect> windowPieces(const GridIndex& index, const ClipWindow& win) {
  const std::vector<std::size_t> ids = index.query(win.clip);
  std::vector<Rect> pieces;
  pieces.reserve(ids.size());
  for (const std::size_t i : ids) {
    const Rect c = index.rects()[i].intersect(win.clip);
    if (!c.valid() || c.empty()) continue;
    pieces.push_back(c);
  }
  return pieces;
}

// The screen predicate on pre-clipped window geometry. Translation
// invariant: density is relative to the window area and margins to the
// window edges, so equal window content gives an equal verdict — the
// property the content-addressed screen cache relies on.
bool screenPieces(const ClipWindow& win, const std::vector<Rect>& pieces,
                  const ExtractParams& p) {
  if (pieces.size() < p.minRectCount) return false;
  std::optional<Rect> bbox;
  for (const Rect& c : pieces) bbox = bbox ? bbox->unite(c) : c;
  if (!bbox) return false;
  const Area covered = unionArea(pieces);
  const double density = double(covered) / double(win.clip.area());
  if (density < p.minDensity || density > p.maxDensity) return false;

  // Margins: distance from each clip edge to the polygon bounding box.
  const Coord ml = bbox->lo.x - win.clip.lo.x;
  const Coord mr = win.clip.hi.x - bbox->hi.x;
  const Coord mb = bbox->lo.y - win.clip.lo.y;
  const Coord mt = win.clip.hi.y - bbox->hi.y;
  const Coord worst = std::max({ml, mr, mb, mt});
  return worst <= p.maxMargin;
}

}  // namespace

std::uint64_t ExtractParams::fingerprint() const {
  std::uint64_t h = hashString("ExtractParams/v1");
  h = hashCombine(h, clip.fingerprint());
  h = hashCombine(h, hashCoord(maxMargin));
  h = hashCombine(h, hashDouble(minDensity));
  h = hashCombine(h, hashDouble(maxDensity));
  h = hashCombine(h, hashMix(minRectCount));
  return h;
}

bool passesScreen(const GridIndex& index, const ClipWindow& win,
                  const ExtractParams& p) {
  return screenPieces(win, windowPieces(index, win), p);
}

engine::Stage<Point, ClipWindow> screenStage(const GridIndex& index,
                                             const ExtractParams& p,
                                             std::string statsName) {
  return {statsName,
          [&index, &p, statsName](engine::RunContext& ctx,
                                  std::vector<Point>&& in) {
            engine::StageCache* const cache = ctx.cache();
            std::vector<std::optional<ClipWindow>> tmp(in.size());
            if (cache == nullptr) {
              ctx.parallelFor(in.size(), [&](std::size_t i) {
                const ClipWindow win = anchorWindow(in[i], p.clip);
                if (passesScreen(index, win, p)) tmp[i] = win;
              });
            } else {
              // Canonical stage hash, NOT statsName: tiled (namespaced)
              // and monolithic runs must share screen cache entries.
              constexpr std::uint64_t kStage = hashString("extract/screen");
              const std::uint64_t cfg = p.fingerprint();
              std::atomic<std::size_t> hits{0};
              std::atomic<std::size_t> misses{0};
              std::atomic<std::size_t> evictions{0};
              ctx.parallelFor(in.size(), [&](std::size_t i) {
                const ClipWindow win = anchorWindow(in[i], p.clip);
                const std::vector<Rect> pieces = windowPieces(index, win);
                const engine::CacheKey key{
                    kStage, cfg, hashWindowContent(win.clip, pieces)};
                if (const std::optional<bool> v = cache->find<bool>(key)) {
                  hits.fetch_add(1, std::memory_order_relaxed);
                  if (*v) tmp[i] = win;
                  return;
                }
                misses.fetch_add(1, std::memory_order_relaxed);
                const bool pass = screenPieces(win, pieces, p);
                evictions.fetch_add(cache->insert(key, pass),
                                    std::memory_order_relaxed);
                if (pass) tmp[i] = win;
              });
              ctx.stats().recordCache(statsName, hits, misses, evictions);
            }
            std::vector<ClipWindow> out;
            out.reserve(in.size());
            for (std::optional<ClipWindow>& o : tmp)
              if (o.has_value()) out.push_back(*o);
            return out;
          }};
}

std::vector<Point> candidateAnchors(const GridIndex& index, Coord coreSide) {
  const std::vector<Rect> pieces = cutToCoreSize(index.rects(), coreSide);

  // One candidate per piece, core anchored at the piece's bottom-left
  // corner (Fig. 11b); dedupe anchors, keeping first-seen order.
  std::vector<Point> anchors;
  std::unordered_set<Point> seen;
  anchors.reserve(pieces.size());
  for (const Rect& r : pieces)
    if (seen.insert(r.lo).second) anchors.push_back(r.lo);
  return anchors;
}

ClipWindow anchorWindow(const Point& a, const ClipParams& clip) {
  // Anchor the core so the piece's corner sits at the core center-ish:
  // the paper anchors the core at the piece's bottom-left corner.
  return ClipWindow::atCore(
      {a.x - clip.coreSide / 2, a.y - clip.coreSide / 2}, clip);
}

std::vector<ClipWindow> extractCandidateClips(const GridIndex& index,
                                              const ExtractParams& p,
                                              engine::RunContext& ctx) {
  engine::Stage<Point, ClipWindow> screen = screenStage(index, p);
  return engine::runPipeline(ctx, candidateAnchors(index, p.clip.coreSide),
                             screen);
}

std::vector<ClipWindow> extractCandidateClips(const Layout& layout,
                                              LayerId layer,
                                              const ExtractParams& p,
                                              engine::RunContext& ctx) {
  const Layer* l = layout.findLayer(layer);
  if (l == nullptr || l->empty()) return {};
  const GridIndex index(l->rects(), p.clip.clipSide);
  return extractCandidateClips(index, p, ctx);
}

std::vector<ClipWindow> extractCandidateClips(const GridIndex& index,
                                              const ExtractParams& p) {
  engine::RunContext ctx(p.threads);
  return extractCandidateClips(index, p, ctx);
}

std::vector<ClipWindow> extractCandidateClips(const Layout& layout,
                                              LayerId layer,
                                              const ExtractParams& p) {
  engine::RunContext ctx(p.threads);
  return extractCandidateClips(layout, layer, p, ctx);
}

std::vector<ClipWindow> windowScanClips(const Layout& layout, LayerId layer,
                                        const ClipParams& clip,
                                        double overlap) {
  (void)layer;
  const std::optional<Rect> bb = layout.bbox();
  if (!bb) return {};
  const Coord step =
      std::max<Coord>(1, Coord(double(clip.coreSide) * (1.0 - overlap)));
  std::vector<ClipWindow> out;
  for (Coord y = bb->lo.y; y < bb->hi.y; y += step)
    for (Coord x = bb->lo.x; x < bb->hi.x; x += step)
      out.push_back(ClipWindow::atCore({x, y}, clip));
  return out;
}

}  // namespace hsd::core
