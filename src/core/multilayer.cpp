#include "core/multilayer.hpp"

#include <stdexcept>

namespace hsd::core {

std::vector<Rect> overlapGeometry(const std::vector<Rect>& a,
                                  const std::vector<Rect>& b) {
  std::vector<Rect> out;
  for (const Rect& ra : a) {
    for (const Rect& rb : b) {
      const Rect ov = ra.intersect(rb);
      if (ov.valid() && !ov.empty()) out.push_back(ov);
    }
  }
  return out;
}

namespace {

// Overlap sets use internal + diagonal features only (Sec. IV-A).
FeatureParams overlapParams(const FeatureParams& base) {
  FeatureParams p = base;
  p.maxExternal = 0;
  p.maxSegment = 0;
  p.densityGridN = 0;
  return p;
}

CorePattern patternOf(const Clip& clip, LayerId layer, bool coreOnly) {
  return coreOnly ? CorePattern::fromCore(clip, layer)
                  : CorePattern::fromClip(clip, layer);
}

CorePattern overlapPattern(const Clip& clip, LayerId a, LayerId b,
                           bool coreOnly) {
  const CorePattern pa = patternOf(clip, a, coreOnly);
  const CorePattern pb = patternOf(clip, b, coreOnly);
  CorePattern out;
  out.w = pa.w;
  out.h = pa.h;
  out.rects = overlapGeometry(pa.rects, pb.rects);
  return out;
}

}  // namespace

std::size_t multiLayerFeatureDim(const MultiLayerParams& p) {
  const std::size_t m = p.layers.size();
  return m * p.features.dim() + (m - 1) * overlapParams(p.features).dim();
}

svm::FeatureVector buildMultiLayerFeatureVector(const Clip& clip,
                                                const MultiLayerParams& p,
                                                bool coreOnly) {
  svm::FeatureVector v;
  v.reserve(multiLayerFeatureDim(p));
  for (const LayerId layer : p.layers) {
    const svm::FeatureVector lv =
        buildFeatureVector(patternOf(clip, layer, coreOnly), p.features);
    v.insert(v.end(), lv.begin(), lv.end());
  }
  const FeatureParams op = overlapParams(p.features);
  for (std::size_t i = 0; i + 1 < p.layers.size(); ++i) {
    const svm::FeatureVector ov = buildFeatureVector(
        overlapPattern(clip, p.layers[i], p.layers[i + 1], coreOnly), op);
    v.insert(v.end(), ov.begin(), ov.end());
  }
  return v;
}

MultiLayerDetector MultiLayerDetector::train(const std::vector<Clip>& training,
                                             const MultiLayerParams& mp) {
  if (mp.layers.empty())
    throw std::invalid_argument("MultiLayerDetector: no layers configured");
  MultiLayerDetector det;
  det.params = mp;

  std::vector<const Clip*> hs, nhs;
  for (const Clip& c : training) {
    if (c.label() == Label::kHotspot) hs.push_back(&c);
    if (c.label() == Label::kNonHotspot) nhs.push_back(&c);
  }
  if (hs.empty() || nhs.empty())
    throw std::invalid_argument(
        "MultiLayerDetector: need both classes present");

  // Classification on the first layer's core topology (Sec. IV-A).
  std::vector<CorePattern> hsPats;
  hsPats.reserve(hs.size());
  for (const Clip* c : hs)
    hsPats.push_back(CorePattern::fromCore(*c, mp.layers.front()));
  const std::vector<Cluster> hsClusters = classifyPatterns(hsPats, mp.classify);

  // Non-hotspot side: optional centroid downsampling.
  std::vector<const Clip*> nhsSel;
  if (mp.balancePopulation) {
    std::vector<CorePattern> nhsPats;
    nhsPats.reserve(nhs.size());
    for (const Clip* c : nhs)
      nhsPats.push_back(CorePattern::fromCore(*c, mp.layers.front()));
    for (const Cluster& cl : classifyPatterns(nhsPats, mp.classify))
      nhsSel.push_back(nhs[cl.representative]);
  } else {
    nhsSel = nhs;
  }

  std::vector<svm::FeatureVector> hsFeat;
  hsFeat.reserve(hs.size());
  for (const Clip* c : hs)
    hsFeat.push_back(buildMultiLayerFeatureVector(*c, mp));
  std::vector<svm::FeatureVector> nhsFeat;
  nhsFeat.reserve(nhsSel.size());
  for (const Clip* c : nhsSel)
    nhsFeat.push_back(buildMultiLayerFeatureVector(*c, mp));

  for (const Cluster& cluster : hsClusters) {
    svm::Dataset data;
    for (const std::size_t m : cluster.members) data.add(hsFeat[m], +1);
    for (const svm::FeatureVector& f : nhsFeat) data.add(f, -1);

    Kernel k;
    k.hotspotCount = cluster.members.size();
    k.scaler.fit(data.x);
    k.scaler.transformInPlace(data.x);

    double C = mp.initC;
    double gamma = mp.initGamma;
    for (std::size_t it = 0;; ++it) {
      svm::SvmParams sp;
      sp.C = C;
      sp.gamma = gamma;
      k.model = svm::train(data, sp).model;
      if (svm::trainingAccuracy(k.model, data) >= mp.targetTrainAcc ||
          it + 1 >= mp.maxSelfIter)
        break;
      C *= 2;
      gamma *= 2;
    }
    det.kernels.push_back(std::move(k));
  }
  return det;
}

bool MultiLayerDetector::evaluateClip(const Clip& clip, double bias) const {
  const svm::FeatureVector feat = buildMultiLayerFeatureVector(clip, params);
  for (const Kernel& k : kernels)
    if (k.model.decision(k.scaler.transform(feat)) > bias) return true;
  return false;
}

}  // namespace hsd::core
