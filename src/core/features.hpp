// Critical feature extraction (Sec. III-C): topological rule rectangles
// (internal / external / diagonal / segment) extracted from the MTCGs,
// plus the five non-topological features, assembled into fixed-length
// SVM feature vectors.
//
// Fixed-length note: within one topology cluster every pattern yields the
// same feature count (Theorem 1), but one SVM kernel trains on a hotspot
// cluster *plus all non-hotspot centroids*, whose topologies differ. We
// therefore lay features out in a fixed per-kind capped layout (position
// ordered, padded with a sentinel); inside a cluster the layout aligns
// features one-to-one, across clusters it stays comparable.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mtcg.hpp"
#include "core/pattern.hpp"
#include "svm/dataset.hpp"

namespace hsd::core {

enum class FeatKind : std::uint8_t {
  kInternal = 0,  ///< width/height of an isolated block tile
  kExternal,      ///< space tile between exactly two block tiles
  kDiagonal,      ///< corner gap between diagonally adjacent tiles
  kSegment,       ///< space tile touching 2-3 window boundaries
};

/// One extracted feature as a rule rectangle: dimensions plus the offset of
/// its lower-left corner from the window's reference (lower-left) corner,
/// and the number of window boundaries it touches (the "special mark").
struct RuleRect {
  FeatKind kind = FeatKind::kInternal;
  Coord w = 0;
  Coord h = 0;
  Coord dx = 0;
  Coord dy = 0;
  int boundaryMark = 0;

  friend constexpr auto operator<=>(const RuleRect&, const RuleRect&) = default;
};

/// Extract all rule rectangles of `p` from its Ch and Cv MTCGs, in a
/// deterministic order (kind, then position).
std::vector<RuleRect> extractRuleRects(const CorePattern& p);

/// The five non-topological features of Fig. 7(e).
struct NonTopoFeatures {
  int corners = 0;          ///< convex + concave corner count
  int touchPoints = 0;      ///< corner-touch points
  Coord minInternal = 0;    ///< min internally-facing edge distance (width)
  Coord minExternal = 0;    ///< min externally-facing edge distance (space)
  double density = 0.0;     ///< polygon density of the window
};

NonTopoFeatures extractNonTopo(const CorePattern& p);

/// Feature-vector layout configuration.
struct FeatureParams {
  std::size_t maxInternal = 8;
  std::size_t maxExternal = 8;
  std::size_t maxDiagonal = 4;
  std::size_t maxSegment = 4;
  /// Optional appended density grid (N x N pixels over the window); used by
  /// the Basic baseline and by the feedback kernel's ambit features. 0 = off.
  std::size_t densityGridN = 0;
  /// Rotate the pattern to its canonical orientation before extraction so
  /// all cluster members align.
  bool canonicalize = true;

  std::size_t dim() const {
    return (maxInternal + maxExternal + maxDiagonal + maxSegment) * 5 + 5 +
           densityGridN * densityGridN;
  }
};

/// Build the fixed-length feature vector of `p` under `fp`.
svm::FeatureVector buildFeatureVector(const CorePattern& p,
                                      const FeatureParams& fp);

}  // namespace hsd::core
