// Modified transitive closure graphs (MTCG, Sec. III-C / Fig. 6): the
// tiled core pattern as a constraint graph. Vertices are block/space
// tiles; edges connect adjacent tiles whose projections overlap. Only the
// horizontally tiled horizontal graph Ch carries diagonal edges between
// corner-adjacent same-type tiles with an empty corner region.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/pattern.hpp"
#include "geom/tiling.hpp"

namespace hsd::core {

struct Mtcg {
  Rect window;
  std::vector<Tile> tiles;  ///< canonical order: (lo.y, lo.x) ascending
  /// Directed adjacency: out[i] = tiles directly right of (Ch) or above
  /// (Cv) tile i with overlapping projections.
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::vector<std::size_t>> in;
  /// Diagonal edges (Ch only): corner-adjacent same-type tile pairs
  /// (i < j by canonical order).
  std::vector<std::pair<std::size_t, std::size_t>> diagonals;

  std::size_t degree(std::size_t i) const {
    return out[i].size() + in[i].size();
  }
  /// Number of window boundary edges the tile touches (0..4).
  int boundaryTouches(std::size_t i) const;
};

/// Horizontally tiled horizontal constraint graph Ch (with diagonals).
Mtcg buildCh(const CorePattern& p);

/// Vertically tiled vertical constraint graph Cv.
Mtcg buildCv(const CorePattern& p);

}  // namespace hsd::core
