#include "core/mtcg.hpp"

#include <algorithm>

namespace hsd::core {

int Mtcg::boundaryTouches(std::size_t i) const {
  const Rect& t = tiles[i].box;
  int n = 0;
  if (t.lo.x == window.lo.x) ++n;
  if (t.hi.x == window.hi.x) ++n;
  if (t.lo.y == window.lo.y) ++n;
  if (t.hi.y == window.hi.y) ++n;
  return n;
}

namespace {

std::vector<Tile> canonicalOrder(std::vector<Tile> tiles) {
  std::sort(tiles.begin(), tiles.end(), [](const Tile& a, const Tile& b) {
    if (a.box.lo.y != b.box.lo.y) return a.box.lo.y < b.box.lo.y;
    return a.box.lo.x < b.box.lo.x;
  });
  return tiles;
}

// Diagonal relation of the paper: same-type tiles in strict NE or SE
// relation whose corner region contains no other same-type tile.
void addDiagonals(Mtcg& g) {
  const std::size_t n = g.tiles.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Tile& a = g.tiles[i];
      const Tile& b = g.tiles[j];
      if (a.isBlock != b.isBlock) continue;
      if (a.box.hi.x > b.box.lo.x) continue;  // a must be left of b
      Rect corner;
      if (a.box.hi.y <= b.box.lo.y) {
        // b is northeast of a.
        corner = {a.box.hi.x, a.box.hi.y, b.box.lo.x, b.box.lo.y};
      } else if (b.box.hi.y <= a.box.lo.y) {
        // b is southeast of a.
        corner = {a.box.hi.x, b.box.hi.y, b.box.lo.x, a.box.lo.y};
      } else {
        continue;  // projections overlap: not a diagonal relation
      }
      bool blocked = false;
      for (std::size_t k = 0; k < n && !blocked; ++k) {
        if (k == i || k == j) continue;
        if (g.tiles[k].isBlock == a.isBlock &&
            g.tiles[k].box.overlaps(corner))
          blocked = true;
      }
      if (!blocked) {
        const auto lo = std::min(i, j);
        const auto hi = std::max(i, j);
        if (std::find(g.diagonals.begin(), g.diagonals.end(),
                      std::make_pair(lo, hi)) == g.diagonals.end())
          g.diagonals.emplace_back(lo, hi);
      }
    }
  }
  std::sort(g.diagonals.begin(), g.diagonals.end());
}

}  // namespace

Mtcg buildCh(const CorePattern& p) {
  Mtcg g;
  g.window = p.window();
  g.tiles = canonicalOrder(horizontalTiling(p.rects, g.window));
  const std::size_t n = g.tiles.size();
  g.out.assign(n, {});
  g.in.assign(n, {});
  // Sweep-line equivalent: tiles sharing a vertical border with
  // overlapping y projections (left -> right edges).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Rect& a = g.tiles[i].box;
      const Rect& b = g.tiles[j].box;
      if (a.hi.x == b.lo.x && a.lo.y < b.hi.y && b.lo.y < a.hi.y) {
        g.out[i].push_back(j);
        g.in[j].push_back(i);
      }
    }
  }
  addDiagonals(g);
  return g;
}

Mtcg buildCv(const CorePattern& p) {
  Mtcg g;
  g.window = p.window();
  g.tiles = canonicalOrder(verticalTiling(p.rects, g.window));
  const std::size_t n = g.tiles.size();
  g.out.assign(n, {});
  g.in.assign(n, {});
  // Bottom -> top edges between tiles sharing a horizontal border with
  // overlapping x projections.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Rect& a = g.tiles[i].box;
      const Rect& b = g.tiles[j].box;
      if (a.hi.y == b.lo.y && a.lo.x < b.hi.x && b.lo.x < a.hi.x) {
        g.out[i].push_back(j);
        g.in[j].push_back(i);
      }
    }
  }
  return g;
}

}  // namespace hsd::core
