#include "core/fuzzy_match.hpp"

#include <limits>

namespace hsd::core {

FuzzyMatcher FuzzyMatcher::train(const std::vector<Clip>& training,
                                 const FuzzyMatchParams& params) {
  FuzzyMatcher m;
  m.params_ = params;
  for (const Clip& c : training) {
    if (c.label() != Label::kHotspot) continue;
    const CorePattern p = CorePattern::fromCore(c, params.layer);
    DensityGrid g(p.rects, p.window(), params.gridN, params.gridN);
    if (params.dedupeTemplates) {
      bool dup = false;
      for (const DensityGrid& t : m.templates_) {
        if (t.distance(g) < params.tolerance / 2) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
    }
    m.templates_.push_back(std::move(g));
  }
  return m;
}

double FuzzyMatcher::nearestDistance(const CorePattern& core) const {
  const DensityGrid g(core.rects, core.window(), params_.gridN,
                      params_.gridN);
  double best = std::numeric_limits<double>::infinity();
  for (const DensityGrid& t : templates_)
    best = std::min(best, t.distance(g));
  return best;
}

}  // namespace hsd::core
