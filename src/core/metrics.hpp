// Hit / extra scoring exactly per the problem formulation (Sec. II):
// a reported clip is a *hit* when its core overlaps an actual hotspot's
// core, its clip fully covers that core, and the two clips overlap at
// least a minimum area. Accuracy counts distinct actual hotspots hit;
// every non-hit report is an *extra* (false alarm).
#pragma once

#include <cstddef>
#include <vector>

#include "layout/clip.hpp"

namespace hsd::core {

struct ScoreParams {
  /// Minimum clip-overlap area as a fraction of the clip area.
  double minClipOverlapFrac = 0.2;
};

struct Score {
  std::size_t hits = 0;            ///< distinct actual hotspots detected
  std::size_t extras = 0;          ///< reports that hit nothing
  std::size_t actualHotspots = 0;  ///< ground-truth hotspot count
  std::size_t reports = 0;         ///< total reported clips

  double accuracy() const {
    return actualHotspots == 0 ? 1.0
                               : double(hits) / double(actualHotspots);
  }
  double hitExtraRatio() const {
    return extras == 0 ? double(hits) : double(hits) / double(extras);
  }
  /// False alarm per Definition 3: extras over the testing layout area.
  double falseAlarmPerUm2(double areaUm2) const {
    return areaUm2 > 0 ? double(extras) / areaUm2 : 0.0;
  }
};

/// Score `reports` against `actual` hotspot windows.
Score scoreReports(const std::vector<ClipWindow>& reports,
                   const std::vector<ClipWindow>& actual,
                   const ScoreParams& p = {});

}  // namespace hsd::core
