// Training phase (Sec. III-D, Fig. 9): data shifting, two-level
// topological classification, population balancing, iterative multiple
// SVM-kernel learning and feedback-kernel learning. The trained Detector
// is the deployable artifact used by the evaluation phase.
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/features.hpp"
#include "core/pattern.hpp"
#include "engine/run_context.hpp"
#include "layout/clip.hpp"
#include "obs/drift.hpp"
#include "svm/platt.hpp"
#include "svm/scaler.hpp"
#include "svm/svm.hpp"

namespace hsd::core {

struct TrainParams {
  ClipParams clip;
  ClassifyParams classify;
  /// Core-region features for the per-cluster kernels.
  FeatureParams features;
  /// Core+ambit features for the feedback kernel (density grid on by
  /// default so the ambit ring is visible to it).
  FeatureParams feedbackFeatures{.densityGridN = 8};

  // Iterative learning (Sec. III-D2): C and gamma start at the paper's
  // values and are doubled until the self-training accuracy target is met
  // or the iteration bound is reached.
  double initC = 1000.0;
  double initGamma = 0.01;
  std::size_t maxSelfIter = 8;
  /// Self-training target: both the hotspot-class and non-hotspot-class
  /// accuracy (the latter measured on the *full* raw non-hotspot set, not
  /// just the downsampled centroids) must reach this rate.
  double targetTrainAcc = 0.98;

  // Population balancing (Sec. III-D3).
  Coord shiftNm = 120;          ///< data shifting distance (= l_c / 10)
  bool enableShift = true;      ///< hotspot upsampling via 4-way shifting
  bool balancePopulation = true;  ///< non-hotspot centroid downsampling
  bool enableFeedback = true;   ///< feedback kernel (Sec. III-D4)
  /// Table III's "Basic" baseline: lump every hotspot into one cluster and
  /// train a single huge SVM kernel (no topological classification).
  bool singleKernel = false;

  /// Thread count used only by the RunContext-free back-compat overload;
  /// with an explicit context, ctx.threadCount() governs (Sec. III-G).
  std::size_t threads = 1;
  LayerId layer = 1;        ///< layer the detector operates on
};

/// One trained per-cluster SVM kernel.
struct KernelEntry {
  svm::Scaler scaler;
  svm::SvmModel model;
  std::string topoKey;        ///< hotspot cluster's topology key
  std::size_t hotspotCount = 0;
  double finalC = 0;
  double finalGamma = 0;
  std::size_t selfIterations = 0;
  /// True when this kernel produced self-evaluation extras; only clips
  /// flagged exclusively by such "investigated" kernels are passed through
  /// the feedback kernel (Sec. III-D4).
  bool feedbackApplies = false;
};

/// Summary statistics of a training run (feeds Table III's #hs/#nhs
/// rebalance-ratio column and the convergence experiments).
struct TrainStats {
  std::size_t rawHotspots = 0;
  std::size_t rawNonHotspots = 0;
  std::size_t upsampledHotspots = 0;   ///< after data shifting
  std::size_t balancedNonHotspots = 0;  ///< after centroid downsampling
  std::size_t hotspotClusters = 0;
  std::size_t nonHotspotClusters = 0;
  std::size_t feedbackExtras = 0;  ///< self-evaluation extras that fed back
  double trainSeconds = 0.0;
};

/// The deployable detector: multiple SVM kernels plus an optional feedback
/// kernel. Evaluation: a core is flagged hotspot when any kernel says so;
/// flagged clips then pass the feedback kernel, which may reclaim them as
/// non-hotspots using core+ambit features.
class Detector {
 public:
  TrainParams params;
  std::vector<KernelEntry> kernels;
  bool hasFeedback = false;
  svm::Scaler feedbackScaler;
  svm::SvmModel feedbackModel;
  /// Platt calibration of the max-kernel decision value, fitted on the
  /// training cores; maps decisionValue() to P(hotspot).
  bool hasPlatt = false;
  svm::PlattModel platt;
  TrainStats stats;
  /// Training-set margin distribution per cluster, frozen at train time
  /// and persisted with the model — the drift scorer's reference (see
  /// obs/drift.hpp). Not part of fingerprint(): it summarizes evaluation
  /// behavior, it does not change it.
  bool hasBaseline = false;
  obs::ModelBaseline baseline;

  /// Multiple-kernel OR vote on a core pattern. `bias` shifts every
  /// kernel's decision threshold (positive = stricter, fewer hotspots).
  bool evaluateCore(const CorePattern& core, double bias = 0.0) const;

  /// Full clip evaluation: kernels on the core, then the feedback kernel
  /// on the whole clip (when trained and enabled).
  bool evaluateClip(const Clip& clip, double bias = 0.0,
                    bool useFeedback = true) const;

  /// Highest kernel decision value for a core (for threshold sweeps).
  double decisionValue(const CorePattern& core) const;

  /// Calibrated hotspot probability of a core (0.5 at the decision
  /// boundary when no Platt model was fitted).
  double hotspotProbability(const CorePattern& core) const;

  void save(std::ostream& os) const;
  static Detector load(std::istream& is);

  /// Per-cluster display names in kernel order: the topology key, or
  /// "k<i>" for kernels without one (the single-kernel "*" baseline keeps
  /// its literal key). Slot layout for obs::ModelStatsRecorder.
  std::vector<std::string> clusterNames() const;

  /// Stable 64-bit fingerprint of everything evaluation depends on
  /// (params, kernels, scalers, feedback and Platt models), computed by
  /// hashing the high-precision serialized form. Used as the detector
  /// component of stage-cache config keys: retraining or loading a
  /// different model invalidates every cached verdict. The drift baseline
  /// is excluded (it cannot change a verdict), so attaching or dropping
  /// one preserves every cached verdict key.
  std::uint64_t fingerprint() const;

 private:
  /// The fingerprinted core of save(): everything except the baseline.
  void saveCore(std::ostream& os) const;
};

/// Train a detector from labeled clips (labels must be kHotspot /
/// kNonHotspot). Throws std::invalid_argument when either class is absent.
/// Feature builds, per-cluster kernel fits, the self-evaluation sweep and
/// Platt calibration all run on the context's shared pool and are recorded
/// as "train/*" stages; the self-iteration loop polls the context's
/// cancellation flag between iterations.
Detector trainDetector(const std::vector<Clip>& training,
                       const TrainParams& params, engine::RunContext& ctx);

/// Back-compat overload: runs on a fresh default context with
/// params.threads.
Detector trainDetector(const std::vector<Clip>& training,
                       const TrainParams& params);

/// Generate the 4-way shifted derivatives of a hotspot clip (Sec. III-D3);
/// includes the original.
std::vector<Clip> shiftDerivatives(const Clip& clip, Coord shiftNm);

}  // namespace hsd::core
