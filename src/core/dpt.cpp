#include "core/dpt.hpp"

#include <queue>

namespace hsd::core {

namespace {

// Gap between two rects: max of the per-axis gaps; <= 0 when they touch or
// overlap. Diagonal neighbors measure through the corner (Chebyshev gap).
Coord gap(const Rect& a, const Rect& b) {
  const Coord gx = std::max(a.lo.x - b.hi.x, b.lo.x - a.hi.x);
  const Coord gy = std::max(a.lo.y - b.hi.y, b.lo.y - a.hi.y);
  return std::max(gx, gy);
}

}  // namespace

DptDecomposition decomposeDpt(const std::vector<Rect>& rects,
                              Coord minSameMaskSpacing) {
  DptDecomposition out;
  const std::size_t n = rects.size();
  // Edge kinds: "same" (touch/overlap: one polygon, same mask) and
  // "conflict" (too close: opposite masks).
  std::vector<std::vector<std::pair<std::size_t, bool>>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Coord g = gap(rects[i], rects[j]);
      if (g <= 0) {
        adj[i].push_back({j, true});
        adj[j].push_back({i, true});
      } else if (g < minSameMaskSpacing) {
        adj[i].push_back({j, false});
        adj[j].push_back({i, false});
      }
    }
  }

  // BFS two-coloring; parity violation = native conflict.
  std::vector<int> color(n, -1);
  for (std::size_t s = 0; s < n; ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    std::queue<std::size_t> q;
    q.push(s);
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (const auto& [v, same] : adj[u]) {
        const int want = same ? color[u] : 1 - color[u];
        if (color[v] == -1) {
          color[v] = want;
          q.push(v);
        } else if (color[v] != want) {
          out.decomposable = false;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    (color[i] == 0 ? out.mask1 : out.mask2).push_back(rects[i]);
  return out;
}

std::size_t dptFeatureDim(const DptParams& p) {
  return 3 * p.features.dim() + 1;
}

svm::FeatureVector buildDptFeatureVector(const CorePattern& p,
                                         const DptParams& params) {
  const DptDecomposition d =
      decomposeDpt(p.rects, params.minSameMaskSpacing);
  svm::FeatureVector v;
  v.reserve(dptFeatureDim(params));
  CorePattern m1{p.w, p.h, d.mask1};
  CorePattern m2{p.w, p.h, d.mask2};
  const svm::FeatureVector f1 = buildFeatureVector(m1, params.features);
  const svm::FeatureVector f2 = buildFeatureVector(m2, params.features);
  const svm::FeatureVector f3 = buildFeatureVector(p, params.features);
  v.insert(v.end(), f1.begin(), f1.end());
  v.insert(v.end(), f2.begin(), f2.end());
  v.insert(v.end(), f3.begin(), f3.end());
  v.push_back(d.decomposable ? 1.0 : 0.0);
  return v;
}

}  // namespace hsd::core
