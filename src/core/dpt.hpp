// Double-patterning extension (Sec. IV-B): decompose a pattern onto two
// masks (features closer than the same-mask spacing limit must alternate),
// then extract three feature sets — mask 1, mask 2, and the undecomposed
// pattern — with mask marks, concatenated into one vector.
#pragma once

#include <vector>

#include "core/features.hpp"
#include "core/pattern.hpp"

namespace hsd::core {

/// Result of two-coloring the decomposition conflict graph.
struct DptDecomposition {
  std::vector<Rect> mask1;
  std::vector<Rect> mask2;
  /// False when the conflict graph has an odd cycle (a native DPT
  /// conflict): no legal two-mask assignment exists. mask1/mask2 then hold
  /// the best-effort coloring.
  bool decomposable = true;
};

/// Decompose `rects` for double patterning: any two rects whose spacing is
/// below `minSameMaskSpacing` conflict and must land on different masks.
/// Touching/overlapping rects are merged onto the same mask (same polygon).
DptDecomposition decomposeDpt(const std::vector<Rect>& rects,
                              Coord minSameMaskSpacing);

struct DptParams {
  Coord minSameMaskSpacing = 160;
  FeatureParams features;  ///< layout of each of the three feature sets
};

/// DPT feature vector of a pattern: [mask1 set | mask2 set | full set |
/// decomposable flag]. The per-mask segments carry the paper's "mask
/// marks" implicitly by position.
svm::FeatureVector buildDptFeatureVector(const CorePattern& p,
                                         const DptParams& params);
std::size_t dptFeatureDim(const DptParams& params);

}  // namespace hsd::core
