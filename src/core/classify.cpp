#include "core/classify.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "core/topo_string.hpp"
#include "geom/density_grid.hpp"

namespace hsd::core {

namespace {

// Density-based subdivision of one string-level group (Sec. III-B2).
std::vector<Cluster> densitySubdivide(
    const std::vector<CorePattern>& patterns,
    const std::vector<std::size_t>& group, const std::string& topoKey,
    const ClassifyParams& p) {
  // Pixelate every member once.
  std::vector<DensityGrid> grids;
  grids.reserve(group.size());
  for (const std::size_t idx : group) {
    const CorePattern& pat = patterns[idx];
    grids.emplace_back(pat.rects, pat.window(), p.gridN, p.gridN);
  }

  // Eq. (2): R = max(R0, max_ij rho(p_i, p_j) / K). The pairwise scan is
  // sampled for large groups; sampling can only shrink R, i.e. produce
  // more (never coarser) clusters.
  double maxPair = 0;
  const std::size_t nSample = std::min(group.size(), p.maxPairSamples);
  const std::size_t stride = std::max<std::size_t>(1, group.size() / nSample);
  for (std::size_t i = 0; i < group.size(); i += stride)
    for (std::size_t j = i + stride; j < group.size(); j += stride)
      maxPair = std::max(maxPair, grids[i].distance(grids[j]));
  const double radius =
      std::max(p.radiusR0, maxPair / double(std::max<std::size_t>(
                               1, p.expectedClusters)));

  // Leader clustering: a pattern joins the first cluster whose centroid is
  // within the radius, else founds a new cluster.
  struct Lead {
    std::vector<std::size_t> local;   // indices into `group`
    std::vector<double> sum;          // running centroid numerator
    DensityGrid centroid;
  };
  std::vector<Lead> leads;
  for (std::size_t li = 0; li < group.size(); ++li) {
    bool placed = false;
    for (Lead& lead : leads) {
      if (lead.centroid.distance(grids[li]) <= radius) {
        lead.local.push_back(li);
        if (p.recomputeCentroid) {
          const std::vector<double>& v = grids[li].values();
          for (std::size_t k = 0; k < lead.sum.size(); ++k)
            lead.sum[k] += v[k];
          std::vector<double> mean(lead.sum.size());
          for (std::size_t k = 0; k < mean.size(); ++k)
            mean[k] = lead.sum[k] / double(lead.local.size());
          lead.centroid = DensityGrid(grids[li].window(), p.gridN, p.gridN,
                                      std::move(mean));
        }
        placed = true;
        break;
      }
    }
    if (!placed) {
      Lead lead{{li}, grids[li].values(), grids[li]};
      leads.push_back(std::move(lead));
    }
  }

  std::vector<Cluster> out;
  out.reserve(leads.size());
  for (const Lead& lead : leads) {
    Cluster c;
    c.topoKey = topoKey;
    c.members.reserve(lead.local.size());
    double bestD = std::numeric_limits<double>::infinity();
    std::size_t bestIdx = group[lead.local.front()];
    for (const std::size_t li : lead.local) {
      c.members.push_back(group[li]);
      const double d = lead.centroid.distance(grids[li]);
      if (d < bestD) {
        bestD = d;
        bestIdx = group[li];
      }
    }
    c.representative = bestIdx;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

std::vector<Cluster> classifyPatterns(const std::vector<CorePattern>& patterns,
                                      const ClassifyParams& params) {
  // Level 1: string-based classification by canonical topology key.
  std::map<std::string, std::vector<std::size_t>> byKey;
  for (std::size_t i = 0; i < patterns.size(); ++i)
    byKey[canonicalTopoKey(patterns[i])].push_back(i);

  std::vector<Cluster> out;
  for (const auto& [key, group] : byKey) {
    if (!params.useDensity) {
      Cluster c;
      c.topoKey = key;
      c.members = group;
      c.representative = group.front();
      out.push_back(std::move(c));
      continue;
    }
    // Level 2: density-based classification within the string group.
    std::vector<Cluster> sub =
        densitySubdivide(patterns, group, key, params);
    out.insert(out.end(), std::make_move_iterator(sub.begin()),
               std::make_move_iterator(sub.end()));
  }
  return out;
}

}  // namespace hsd::core
