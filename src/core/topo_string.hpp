// Four-directional string encoding of a core pattern's topology and the
// composite-string matching of Theorem 1 (Sec. III-B1).
//
// Each side (bottom/right/top/left) yields one string: the pattern is
// sliced along polygon edges perpendicular to that side; every slice
// encodes a boundary bit followed by the labels of the alternating
// block(1)/space(0) runs read *away from that side's boundary*. Slices are
// ordered along the counterclockwise traversal of the window, so rotating
// the pattern cyclically rotates the 4-tuple of side strings and mirroring
// reverses it — which is exactly what the composite-string search exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pattern.hpp"

namespace hsd::core {

/// One slice's binary run code (boundary bit + run labels), LSB-free
/// explicit representation: bits[0] is the boundary marker.
struct SliceCode {
  std::uint64_t bits = 0;  ///< bit i (from MSB order below) packed LSB-first
  std::uint8_t len = 0;

  friend constexpr auto operator<=>(const SliceCode&,
                                    const SliceCode&) = default;
};

/// The four side strings, each a sequence of slice codes in ccw traversal
/// order: bottom (left->right), right (bottom->top), top (right->left),
/// left (top->bottom).
struct DirectionalStrings {
  std::vector<SliceCode> bottom;
  std::vector<SliceCode> right;
  std::vector<SliceCode> top;
  std::vector<SliceCode> left;

  friend auto operator<=>(const DirectionalStrings&,
                          const DirectionalStrings&) = default;
};

/// Encode all four directional strings of `p`.
DirectionalStrings encodeStrings(const CorePattern& p);

/// Theorem-1 composite-string matching: true iff the two core patterns have
/// the same topology under some of the eight orientations. Chooses two
/// adjacent side strings of `a` and searches them in the counterclockwise
/// and clockwise composite strings of `b`.
bool sameTopology(const DirectionalStrings& a, const DirectionalStrings& b);
bool sameTopology(const CorePattern& a, const CorePattern& b);

/// Canonical topology key: the lexicographically smallest serialization of
/// encodeStrings over all eight orientations of `p`. Two patterns have the
/// same key iff they have the same topology (used for hash-based
/// clustering; property-tested against sameTopology).
std::string canonicalTopoKey(const CorePattern& p);

/// The orientation whose encoding attains the canonical key (ties broken by
/// kAllOrients order). Feature extraction aligns all cluster members by
/// transforming them with this orientation first.
Orient canonicalOrient(const CorePattern& p);

/// Serialize directional strings for hashing / debugging.
std::string serializeStrings(const DirectionalStrings& s);

}  // namespace hsd::core
