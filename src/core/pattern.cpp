#include "core/pattern.hpp"

#include <algorithm>

namespace hsd::core {

CorePattern CorePattern::fromCore(const Clip& clip, LayerId layer) {
  CorePattern p;
  p.w = clip.window().core.width();
  p.h = clip.window().core.height();
  p.rects = clip.localCoreRects(layer);
  return p;
}

CorePattern CorePattern::fromClip(const Clip& clip, LayerId layer) {
  CorePattern p;
  p.w = clip.window().clip.width();
  p.h = clip.window().clip.height();
  p.rects = clip.localClipRects(layer);
  return p;
}

CorePattern CorePattern::transformed(Orient o) const {
  CorePattern out;
  out.w = swapsAxes(o) ? h : w;
  out.h = swapsAxes(o) ? w : h;
  out.rects.reserve(rects.size());
  for (const Rect& r : rects) out.rects.push_back(apply(o, r, w, h));
  // Canonical ordering so equal patterns compare equal regardless of the
  // input rect order.
  std::sort(out.rects.begin(), out.rects.end());
  return out;
}

}  // namespace hsd::core
