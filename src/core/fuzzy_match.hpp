// Fuzzy pattern-matching baseline in the spirit of [14] (Lin et al.,
// DAC'13, "A novel fuzzy matching model for lithography hotspot
// detection"): store every known hotspot as a density-grid template and
// flag a testing clip when its core is within a fuzziness tolerance of
// some template under the D8 distance of Eq. (1). Used as a comparator
// row in the Table II bench — pattern matching is precise on seen
// patterns but has limited reach on unseen ones, which is exactly the
// contrast the paper draws with its ML framework.
#pragma once

#include <cstddef>
#include <vector>

#include "core/pattern.hpp"
#include "geom/density_grid.hpp"
#include "layout/clip.hpp"

namespace hsd::core {

struct FuzzyMatchParams {
  std::size_t gridN = 12;      ///< template pixelation
  double tolerance = 9.0;      ///< max D8 L1 distance to match
  bool dedupeTemplates = true; ///< drop near-duplicate templates (< tol/2)
  LayerId layer = 1;
};

class FuzzyMatcher {
 public:
  /// Build templates from the hotspot clips of `training` (non-hotspot
  /// clips are ignored; pure pattern matching has no negative class).
  static FuzzyMatcher train(const std::vector<Clip>& training,
                            const FuzzyMatchParams& params);

  std::size_t templateCount() const { return templates_.size(); }
  const FuzzyMatchParams& params() const { return params_; }

  /// Distance from `core` to the nearest template (infinity when empty).
  double nearestDistance(const CorePattern& core) const;

  /// True when some template is within the tolerance.
  bool matches(const CorePattern& core) const {
    return nearestDistance(core) <= params_.tolerance;
  }
  bool evaluateClip(const Clip& clip) const {
    return matches(CorePattern::fromCore(clip, params_.layer));
  }

 private:
  FuzzyMatchParams params_;
  std::vector<DensityGrid> templates_;
};

}  // namespace hsd::core
