// Redundant clip removal (Sec. III-F, Fig. 12): reported hotspot cores
// that pile up over the same pattern are merged into regions, reframed at
// a sub-core pitch, pruned when fully covered by other cores, recentered
// onto the polygon center of gravity, and merged/reframed once more. This
// cuts the extra count without losing any actual hotspot whose core is
// overlapped by at least one surviving core.
#pragma once

#include <cstddef>
#include <vector>

#include "engine/run_context.hpp"
#include "layout/clip.hpp"
#include "layout/spatial_index.hpp"

namespace hsd::core {

struct RemovalParams {
  ClipParams clip;
  /// Minimum core-overlap (fraction of core area) for two reports to merge
  /// into one region (paper: 20 %).
  double minCoreOverlapFrac = 0.2;
  /// Separating distance l_s of core reframing; must be < core side
  /// (paper: 1150 nm for l_c = 1200 nm).
  Coord reframeSeparation = 1150;
  /// Regions with more than this many cores get reframed (paper: 4).
  std::size_t reframeThreshold = 4;
  /// Max allowed clip-boundary-to-polygon-bbox margin before the clip is
  /// recentered on the polygon center of gravity (paper: 1440 nm).
  Coord maxMargin = 1440;

  /// Stable config fingerprint for stage-cache keys.
  std::uint64_t fingerprint() const;
};

/// Filter `reported` hotspot windows against the layout geometry index.
/// Recorded as the "eval/removal" stage; the clip-shifting pass runs on
/// the context's pool (index-stable, thread-count independent).
std::vector<ClipWindow> removeRedundantClips(
    const std::vector<ClipWindow>& reported, const GridIndex& layoutIndex,
    const RemovalParams& p, engine::RunContext& ctx);

/// Back-compat overload: serial, on a fresh default context.
std::vector<ClipWindow> removeRedundantClips(
    const std::vector<ClipWindow>& reported, const GridIndex& layoutIndex,
    const RemovalParams& p);

}  // namespace hsd::core
