// Window-local pattern: the unit that topological classification and
// feature extraction operate on. A CorePattern is the geometry of a clip's
// core (or full clip) translated so the window's lower-left corner is the
// origin, together with the window dimensions.
#pragma once

#include <vector>

#include "geom/orientation.hpp"
#include "geom/rect.hpp"
#include "layout/clip.hpp"

namespace hsd::core {

struct CorePattern {
  Coord w = 0;
  Coord h = 0;
  std::vector<Rect> rects;  ///< window-local, clipped to [0,w] x [0,h]

  Rect window() const { return {0, 0, w, h}; }
  bool empty() const { return rects.empty(); }

  /// Pattern of the clip's core region on `layer`.
  static CorePattern fromCore(const Clip& clip, LayerId layer);
  /// Pattern of the clip's full window on `layer`.
  static CorePattern fromClip(const Clip& clip, LayerId layer);

  /// Pattern transformed by one of the eight orientations.
  CorePattern transformed(Orient o) const;
};

}  // namespace hsd::core
