// Multilayer hotspot detection (Sec. IV-A): topological classification on
// one selected layer; per-clip features are the concatenation of m
// per-layer feature sets plus m-1 sets extracted from the overlapped
// polygons of adjacent layers (only internal and diagonal features for the
// overlaps, per the paper).
#pragma once

#include <vector>

#include "core/classify.hpp"
#include "core/features.hpp"
#include "core/trainer.hpp"
#include "layout/clip.hpp"
#include "svm/scaler.hpp"
#include "svm/svm.hpp"

namespace hsd::core {

struct MultiLayerParams {
  ClipParams clip;
  /// Participating layers, in stack order. classification runs on
  /// layers.front().
  std::vector<LayerId> layers{1, 2};
  ClassifyParams classify;
  FeatureParams features;  ///< per-layer feature layout
  double initC = 1000.0;
  double initGamma = 0.01;
  std::size_t maxSelfIter = 8;
  double targetTrainAcc = 0.98;
  bool balancePopulation = true;
};

/// Overlapped polygons of two rect sets (pairwise positive-area
/// intersections).
std::vector<Rect> overlapGeometry(const std::vector<Rect>& a,
                                  const std::vector<Rect>& b);

/// Multilayer feature vector of a clip: m per-layer sets + (m-1) adjacent-
/// layer overlap sets (internal + diagonal rule rects only).
svm::FeatureVector buildMultiLayerFeatureVector(const Clip& clip,
                                                const MultiLayerParams& p,
                                                bool coreOnly = true);
std::size_t multiLayerFeatureDim(const MultiLayerParams& p);

/// Per-cluster multi-kernel detector over multilayer clips. Training
/// classifies on the first layer's core topology; evaluation ORs the
/// kernels, as in the single-layer flow.
class MultiLayerDetector {
 public:
  struct Kernel {
    svm::Scaler scaler;
    svm::SvmModel model;
    std::size_t hotspotCount = 0;
  };

  MultiLayerParams params;
  std::vector<Kernel> kernels;

  bool evaluateClip(const Clip& clip, double bias = 0.0) const;

  static MultiLayerDetector train(const std::vector<Clip>& training,
                                  const MultiLayerParams& params);
};

}  // namespace hsd::core
