#include "core/metrics.hpp"

#include <algorithm>

namespace hsd::core {

Score scoreReports(const std::vector<ClipWindow>& reports,
                   const std::vector<ClipWindow>& actual,
                   const ScoreParams& p) {
  Score s;
  s.actualHotspots = actual.size();
  s.reports = reports.size();

  std::vector<bool> actualHit(actual.size(), false);
  for (const ClipWindow& rep : reports) {
    bool isHit = false;
    const double minOverlap = p.minClipOverlapFrac * double(rep.clip.area());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      const ClipWindow& act = actual[i];
      if (!rep.core.overlaps(act.core)) continue;
      if (!rep.clip.contains(act.core)) continue;
      if (double(rep.clip.overlapArea(act.clip)) < minOverlap) continue;
      isHit = true;
      actualHit[i] = true;
      // Keep scanning: one report may cover several actual hotspots.
    }
    if (!isHit) ++s.extras;
  }
  s.hits = std::size_t(std::count(actualHit.begin(), actualHit.end(), true));
  return s;
}

}  // namespace hsd::core
