// Two-level topological classification (Sec. III-B): string-based
// classification groups core patterns with identical topology (up to the
// eight orientations); density-based classification subdivides each group
// by the pixel-density distance of Eq. (1) with the cluster radius of
// Eq. (2), using leader clustering with optional centroid recomputation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/pattern.hpp"

namespace hsd::core {

struct ClassifyParams {
  std::size_t gridN = 12;  ///< density pixelation (gridN x gridN)
  double radiusR0 = 12.0;  ///< R0: user radius threshold of Eq. (2)
  std::size_t expectedClusters = 10;  ///< K: expected cluster count, Eq. (2)
  bool useDensity = true;  ///< false = string-based level only (ablation)
  bool recomputeCentroid = true;  ///< refine centroid as members join
  /// Cap on members sampled for the max-pairwise-distance term of Eq. (2)
  /// (the scan is quadratic; sampling keeps huge groups tractable).
  std::size_t maxPairSamples = 48;
};

/// One cluster of input patterns.
struct Cluster {
  std::string topoKey;  ///< canonical topology key of the string level
  std::vector<std::size_t> members;  ///< indices into the input list
  std::size_t representative = 0;    ///< input index of the centroid pattern
};

/// Classify `patterns` into clusters. Deterministic: clusters are ordered
/// by topology key, then by first-seen member.
std::vector<Cluster> classifyPatterns(const std::vector<CorePattern>& patterns,
                                      const ClassifyParams& params);

}  // namespace hsd::core
