#include "core/topo_string.hpp"

#include <algorithm>
#include <sstream>

#include "geom/interval.hpp"
#include "geom/rectset.hpp"

namespace hsd::core {

namespace {

// Append one run label (1 block / 0 space) to a slice code.
void pushBit(SliceCode& c, bool one) {
  if (c.len >= 64) return;  // physically impossible in a 1.2um core
  if (one) c.bits |= (std::uint64_t{1} << c.len);
  ++c.len;
}

// Run labels of a slice, reading from coordinate 0 upward: the merged
// covered intervals within [0, extent] alternate with space runs.
// Returns labels in ascending-coordinate order (no boundary bit).
std::vector<bool> runLabels(const std::vector<Interval>& covered,
                            Coord extent) {
  std::vector<bool> runs;
  Coord cursor = 0;
  for (const Interval& iv : covered) {
    const Coord lo = std::max<Coord>(iv.lo, 0);
    const Coord hi = std::min(iv.hi, extent);
    if (hi <= lo) continue;
    if (lo > cursor) runs.push_back(false);
    runs.push_back(true);
    cursor = hi;
  }
  if (cursor < extent || runs.empty()) runs.push_back(false);
  return runs;
}

SliceCode makeCode(const std::vector<bool>& runs, bool reversed) {
  SliceCode c;
  pushBit(c, true);  // boundary marker
  if (reversed) {
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) pushBit(c, *it);
  } else {
    for (const bool b : runs) pushBit(c, b);
  }
  return c;
}

// Distinct slice cut coordinates: polygon edges plus the window bounds.
std::vector<Coord> cutsX(const CorePattern& p) {
  std::vector<Coord> xs{0, p.w};
  for (const Rect& r : p.rects) {
    xs.push_back(r.lo.x);
    xs.push_back(r.hi.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

std::vector<Coord> cutsY(const CorePattern& p) {
  std::vector<Coord> ys{0, p.h};
  for (const Rect& r : p.rects) {
    ys.push_back(r.lo.y);
    ys.push_back(r.hi.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  return ys;
}

}  // namespace

DirectionalStrings encodeStrings(const CorePattern& p) {
  DirectionalStrings s;
  const std::vector<Coord> xs = cutsX(p);
  const std::vector<Coord> ys = cutsY(p);

  // Vertical slices (cuts at x) serve the bottom and top strings.
  std::vector<std::vector<bool>> vRuns;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i] < 0 || xs[i + 1] > p.w || xs[i] >= xs[i + 1]) continue;
    vRuns.push_back(runLabels(coveredY(p.rects, xs[i], xs[i + 1]), p.h));
  }
  for (const auto& runs : vRuns)  // bottom: slices left->right, runs up
    s.bottom.push_back(makeCode(runs, /*reversed=*/false));
  for (auto it = vRuns.rbegin(); it != vRuns.rend(); ++it)  // top: right->left
    s.top.push_back(makeCode(*it, /*reversed=*/true));

  // Horizontal slices (cuts at y) serve the left and right strings.
  std::vector<std::vector<bool>> hRuns;
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    if (ys[i] < 0 || ys[i + 1] > p.h || ys[i] >= ys[i + 1]) continue;
    hRuns.push_back(runLabels(coveredX(p.rects, ys[i], ys[i + 1]), p.w));
  }
  for (const auto& runs : hRuns)  // right: slices bottom->top, runs leftward
    s.right.push_back(makeCode(runs, /*reversed=*/true));
  for (auto it = hRuns.rbegin(); it != hRuns.rend(); ++it)  // left: top->down
    s.left.push_back(makeCode(*it, /*reversed=*/false));

  return s;
}

namespace {

std::vector<SliceCode> ccwComposite(const DirectionalStrings& s) {
  std::vector<SliceCode> out;
  out.reserve(s.bottom.size() + s.right.size() + s.top.size() +
              s.left.size());
  out.insert(out.end(), s.bottom.begin(), s.bottom.end());
  out.insert(out.end(), s.right.begin(), s.right.end());
  out.insert(out.end(), s.top.begin(), s.top.end());
  out.insert(out.end(), s.left.begin(), s.left.end());
  return out;
}

bool containsCyclic(const std::vector<SliceCode>& hay,
                    const std::vector<SliceCode>& needle) {
  if (needle.empty()) return true;
  if (needle.size() > hay.size()) return false;
  // Doubling the haystack turns cyclic search into linear search.
  std::vector<SliceCode> d = hay;
  d.insert(d.end(), hay.begin(), hay.end());
  return std::search(d.begin(), d.end(), needle.begin(), needle.end()) !=
         d.end();
}

}  // namespace

bool sameTopology(const DirectionalStrings& a, const DirectionalStrings& b) {
  // Two adjacent side strings of `a` in ccw order (left then bottom, as in
  // the paper's example; any adjacent pair works).
  std::vector<SliceCode> needle = a.left;
  needle.insert(needle.end(), a.bottom.begin(), a.bottom.end());

  const std::vector<SliceCode> ccw = ccwComposite(b);
  if (containsCyclic(ccw, needle)) return true;
  std::vector<SliceCode> cw(ccw.rbegin(), ccw.rend());
  return containsCyclic(cw, needle);
}

bool sameTopology(const CorePattern& a, const CorePattern& b) {
  return sameTopology(encodeStrings(a), encodeStrings(b));
}

std::string serializeStrings(const DirectionalStrings& s) {
  std::ostringstream os;
  const auto side = [&os](const std::vector<SliceCode>& v) {
    for (const SliceCode& c : v)
      os << std::hex << c.bits << ':' << std::dec << int(c.len) << ',';
    os << '|';
  };
  side(s.bottom);
  side(s.right);
  side(s.top);
  side(s.left);
  return os.str();
}

std::string canonicalTopoKey(const CorePattern& p) {
  std::string best;
  for (const Orient o : kAllOrients) {
    std::string k = serializeStrings(encodeStrings(p.transformed(o)));
    if (best.empty() || k < best) best = std::move(k);
  }
  return best;
}

Orient canonicalOrient(const CorePattern& p) {
  // Ties on the topology key are broken by the transformed geometry
  // itself: patterns with a topologically symmetric but dimensionally
  // asymmetric shape would otherwise canonicalize inconsistently across
  // orientations (breaking feature alignment within a cluster).
  std::string bestKey;
  std::vector<Rect> bestRects;
  Orient bestO = Orient::R0;
  bool first = true;
  for (const Orient o : kAllOrients) {
    CorePattern t = p.transformed(o);
    std::string k = serializeStrings(encodeStrings(t));
    if (first || k < bestKey ||
        (k == bestKey && t.rects < bestRects)) {
      bestKey = std::move(k);
      bestRects = std::move(t.rects);
      bestO = o;
      first = false;
    }
  }
  return bestO;
}

}  // namespace hsd::core
