// Layout clip extraction (Sec. III-E): instead of scanning the full layout
// with sliding windows, dissect every polygon into rectangles, cut pieces
// larger than the core side, anchor one candidate clip per piece, and keep
// only clips whose polygon distribution passes the user screen (density,
// polygon count, boundary margins). A window-based extractor (50 % overlap)
// is provided as the Table V baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "layout/clip.hpp"
#include "layout/layout.hpp"
#include "layout/spatial_index.hpp"

namespace hsd::core {

struct ExtractParams {
  ClipParams clip;
  /// Maximum allowed distance between the clip boundary and the bounding
  /// box of the clip's polygons. The paper uses 1440 nm on the contest
  /// layouts (no fully isolated features there); the default here is half
  /// the clip side so isolated-feature hotspots keep a covering candidate
  /// — accuracy is the primary objective.
  Coord maxMargin = 2400;
  /// Polygon-distribution screen within the clip window.
  double minDensity = 0.005;
  double maxDensity = 0.90;
  std::size_t minRectCount = 1;
  std::size_t threads = 1;
};

/// Candidate clip windows of `layout` on `layer` (deduplicated by core
/// anchor). The returned windows are screened but not yet classified.
std::vector<ClipWindow> extractCandidateClips(const Layout& layout,
                                              LayerId layer,
                                              const ExtractParams& p);

/// Same, but against a prebuilt rect index (reused across calls).
std::vector<ClipWindow> extractCandidateClips(const GridIndex& index,
                                              const ExtractParams& p);

/// Table V baseline: full sliding-window grid at `overlap` (0.5 = 50 %)
/// between adjacent windows of core size. Returns every grid window over
/// the layout bounding box (the contest baseline counts all of them).
std::vector<ClipWindow> windowScanClips(const Layout& layout, LayerId layer,
                                        const ClipParams& clip,
                                        double overlap = 0.5);

}  // namespace hsd::core
