// Layout clip extraction (Sec. III-E): instead of scanning the full layout
// with sliding windows, dissect every polygon into rectangles, cut pieces
// larger than the core side, anchor one candidate clip per piece, and keep
// only clips whose polygon distribution passes the user screen (density,
// polygon count, boundary margins). A window-based extractor (50 % overlap)
// is provided as the Table V baseline.
//
// Extraction runs as a streaming stage on engine::RunContext: anchors are
// enumerated once, then screened in batches ("extract/screen"), so the
// evaluator can chain extraction straight into scoring without
// materializing the full candidate list.
#pragma once

#include <cstddef>
#include <vector>

#include "engine/pipeline.hpp"
#include "engine/run_context.hpp"
#include "layout/clip.hpp"
#include "layout/layout.hpp"
#include "layout/spatial_index.hpp"

namespace hsd::core {

struct ExtractParams {
  ClipParams clip;
  /// Maximum allowed distance between the clip boundary and the bounding
  /// box of the clip's polygons. The paper uses 1440 nm on the contest
  /// layouts (no fully isolated features there); the default here is half
  /// the clip side so isolated-feature hotspots keep a covering candidate
  /// — accuracy is the primary objective.
  Coord maxMargin = 2400;
  /// Polygon-distribution screen within the clip window.
  double minDensity = 0.005;
  double maxDensity = 0.90;
  std::size_t minRectCount = 1;
  /// Thread count used only by the RunContext-free back-compat overloads.
  std::size_t threads = 1;

  /// Stable config fingerprint for stage-cache keys: covers every field
  /// that changes a screen verdict (threads deliberately excluded — the
  /// thread count must never change results).
  std::uint64_t fingerprint() const;
};

/// Deduplicated candidate core anchors (bottom-left corners of the
/// core-sized polygon pieces, Fig. 11b) in deterministic first-seen order
/// — the source of the streaming extraction stage.
std::vector<Point> candidateAnchors(const GridIndex& index, Coord coreSide);

/// The candidate window whose core is centered on anchor `a`.
ClipWindow anchorWindow(const Point& a, const ClipParams& clip);

/// Polygon-distribution screen of Sec. III-E: density, rect count, and the
/// four margins between the clip boundary and the polygon bounding box.
bool passesScreen(const GridIndex& index, const ClipWindow& win,
                  const ExtractParams& p);

/// The streaming "extract/screen" stage: anchors in, surviving windows
/// out. Cache-aware — when the running context has a StageCache attached,
/// screen verdicts are keyed on (stage, p.fingerprint(), window content)
/// and hit/miss/evict counts land under `statsName` in EngineStats.
/// `statsName` only renames the observability slot (the tiled evaluator
/// namespaces it "tile<k>/extract/screen"); the cache key is always the
/// canonical "extract/screen" stage hash, so tiled and monolithic runs
/// share screen verdict entries. `index` and `p` are captured by
/// reference and must outlive the stage.
engine::Stage<Point, ClipWindow> screenStage(
    const GridIndex& index, const ExtractParams& p,
    std::string statsName = "extract/screen");

/// Candidate clip windows of `layout` on `layer` (deduplicated by core
/// anchor). The returned windows are screened but not yet classified.
std::vector<ClipWindow> extractCandidateClips(const Layout& layout,
                                              LayerId layer,
                                              const ExtractParams& p,
                                              engine::RunContext& ctx);

/// Same, but against a prebuilt rect index (reused across calls).
std::vector<ClipWindow> extractCandidateClips(const GridIndex& index,
                                              const ExtractParams& p,
                                              engine::RunContext& ctx);

/// Back-compat overloads: run on a fresh default context with p.threads.
std::vector<ClipWindow> extractCandidateClips(const Layout& layout,
                                              LayerId layer,
                                              const ExtractParams& p);
std::vector<ClipWindow> extractCandidateClips(const GridIndex& index,
                                              const ExtractParams& p);

/// Table V baseline: full sliding-window grid at `overlap` (0.5 = 50 %)
/// between adjacent windows of core size. Returns every grid window over
/// the layout bounding box (the contest baseline counts all of them).
std::vector<ClipWindow> windowScanClips(const Layout& layout, LayerId layer,
                                        const ClipParams& clip,
                                        double overlap = 0.5);

}  // namespace hsd::core
