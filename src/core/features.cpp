#include "core/features.hpp"

#include <algorithm>

#include "core/topo_string.hpp"
#include "engine/arena.hpp"
#include "geom/density_grid.hpp"
#include "geom/rectset.hpp"

namespace hsd::core {

namespace {

int boundaryTouches(const Rect& t, const Rect& window) {
  int n = 0;
  if (t.lo.x == window.lo.x) ++n;
  if (t.hi.x == window.hi.x) ++n;
  if (t.lo.y == window.lo.y) ++n;
  if (t.hi.y == window.hi.y) ++n;
  return n;
}

RuleRect makeRule(FeatKind kind, const Rect& box, const Rect& window) {
  RuleRect r;
  r.kind = kind;
  r.w = box.width();
  r.h = box.height();
  r.dx = box.lo.x - window.lo.x;
  r.dy = box.lo.y - window.lo.y;
  r.boundaryMark = boundaryTouches(box, window);
  return r;
}

// Internal features: block tiles whose horizontal (Ch) or vertical (Cv)
// neighborhood is all space, touching at most one window boundary.
void extractInternal(const Mtcg& g, std::vector<RuleRect>& out) {
  for (std::size_t i = 0; i < g.tiles.size(); ++i) {
    const Tile& t = g.tiles[i];
    if (!t.isBlock) continue;
    if (g.boundaryTouches(i) > 1) continue;
    bool allSpace = true;
    for (const std::size_t j : g.out[i]) allSpace &= !g.tiles[j].isBlock;
    for (const std::size_t j : g.in[i]) allSpace &= !g.tiles[j].isBlock;
    if (allSpace && g.degree(i) > 0)
      out.push_back(makeRule(FeatKind::kInternal, t.box, g.window));
  }
}

// External features: space tiles lying between exactly two block tiles.
void extractExternal(const Mtcg& g, std::vector<RuleRect>& out) {
  for (std::size_t i = 0; i < g.tiles.size(); ++i) {
    const Tile& t = g.tiles[i];
    if (t.isBlock) continue;
    if (g.boundaryTouches(i) > 1) continue;
    if (g.degree(i) != 2) continue;
    bool allBlock = true;
    for (const std::size_t j : g.out[i]) allBlock &= g.tiles[j].isBlock;
    for (const std::size_t j : g.in[i]) allBlock &= g.tiles[j].isBlock;
    if (allBlock)
      out.push_back(makeRule(FeatKind::kExternal, t.box, g.window));
  }
}

// Diagonal features: the corner gap box between diagonally adjacent tiles.
void extractDiagonal(const Mtcg& g, std::vector<RuleRect>& out) {
  for (const auto& [i, j] : g.diagonals) {
    const Rect& a = g.tiles[i].box;
    const Rect& b = g.tiles[j].box;
    // Reconstruct the corner region (a is left of b by construction order;
    // re-derive robustly from the two boxes).
    const Rect *left = &a, *right = &b;
    if (left->hi.x > right->lo.x) std::swap(left, right);
    Rect corner;
    if (left->hi.y <= right->lo.y)
      corner = {left->hi.x, left->hi.y, right->lo.x, right->lo.y};
    else
      corner = {left->hi.x, right->hi.y, right->lo.x, left->lo.y};
    out.push_back(makeRule(FeatKind::kDiagonal, corner, g.window));
  }
}

// Segment features: space tiles with 2 or 3 window-boundary edges.
void extractSegment(const Mtcg& g, std::vector<RuleRect>& out) {
  for (std::size_t i = 0; i < g.tiles.size(); ++i) {
    const Tile& t = g.tiles[i];
    if (t.isBlock) continue;
    const int bt = g.boundaryTouches(i);
    if (bt == 2 || bt == 3)
      out.push_back(makeRule(FeatKind::kSegment, t.box, g.window));
  }
}

bool positionLess(const RuleRect& a, const RuleRect& b) {
  if (a.dy != b.dy) return a.dy < b.dy;
  if (a.dx != b.dx) return a.dx < b.dx;
  if (a.w != b.w) return a.w < b.w;
  return a.h < b.h;
}

}  // namespace

std::vector<RuleRect> extractRuleRects(const CorePattern& p) {
  const Mtcg ch = buildCh(p);
  const Mtcg cv = buildCv(p);
  std::vector<RuleRect> out;
  extractInternal(ch, out);
  extractInternal(cv, out);
  extractExternal(ch, out);
  extractExternal(cv, out);
  extractDiagonal(ch, out);
  extractSegment(ch, out);
  extractSegment(cv, out);

  // Deterministic order: kind, then position; drop duplicates (a tile can
  // qualify identically in both tilings).
  std::sort(out.begin(), out.end(), [](const RuleRect& a, const RuleRect& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return positionLess(a, b);
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

NonTopoFeatures extractNonTopo(const CorePattern& p) {
  NonTopoFeatures f;
  const BoundaryStats st = boundaryStats(p.rects);
  f.corners = st.convexCorners + st.concaveCorners;
  f.touchPoints = st.touchPoints;
  f.minInternal = std::max<Coord>(0, minInternalWidth(p.rects));
  f.minExternal = std::max<Coord>(0, minExternalSpacing(p.rects, p.window()));
  const Area wa = p.window().area();
  f.density = wa > 0 ? double(unionArea(p.rects)) / double(wa) : 0.0;
  return f;
}

svm::FeatureVector buildFeatureVector(const CorePattern& pat,
                                      const FeatureParams& fp) {
  const CorePattern p =
      fp.canonicalize ? pat.transformed(canonicalOrient(pat)) : pat;

  const std::vector<RuleRect> rules = extractRuleRects(p);
  svm::FeatureVector v;
  v.reserve(fp.dim());

  constexpr double kPad = -1.0;
  const auto emitKind = [&](FeatKind kind, std::size_t cap) {
    std::size_t n = 0;
    for (const RuleRect& r : rules) {
      if (r.kind != kind) continue;
      if (n >= cap) break;
      v.push_back(double(r.w));
      v.push_back(double(r.h));
      v.push_back(double(r.dx));
      v.push_back(double(r.dy));
      v.push_back(double(r.boundaryMark));
      ++n;
    }
    for (; n < cap; ++n)
      v.insert(v.end(), {kPad, kPad, kPad, kPad, kPad});
  };
  emitKind(FeatKind::kInternal, fp.maxInternal);
  emitKind(FeatKind::kExternal, fp.maxExternal);
  emitKind(FeatKind::kDiagonal, fp.maxDiagonal);
  emitKind(FeatKind::kSegment, fp.maxSegment);

  const NonTopoFeatures nt = extractNonTopo(p);
  v.push_back(double(nt.corners));
  v.push_back(double(nt.touchPoints));
  v.push_back(double(nt.minInternal));
  v.push_back(double(nt.minExternal));
  v.push_back(nt.density);

  if (fp.densityGridN > 0) {
    // Rasterize into thread-local arena scratch instead of constructing a
    // DensityGrid (whose pixel vector would be a fresh heap allocation on
    // every clip); the scope rewinds the scratch before returning.
    engine::ArenaScope scope(engine::threadScratch());
    const std::span<double> g =
        scope.arena().allocSpan<double>(fp.densityGridN * fp.densityGridN);
    rasterizeDensity(p.rects, p.window(), fp.densityGridN, fp.densityGridN,
                     g.data());
    v.insert(v.end(), g.begin(), g.end());
  }
  return v;
}

}  // namespace hsd::core
