#include "core/evaluator.hpp"

#include <chrono>

#include "par/thread_pool.hpp"

namespace hsd::core {

EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p) {
  const auto t0 = std::chrono::steady_clock::now();
  EvalResult res;
  res.candidateClips = candidates.size();

  // Multiple-kernel (+ feedback) evaluation, parallel over clips.
  std::vector<char> flagged(candidates.size(), 0);
  const std::vector<std::pair<LayerId, const GridIndex*>> layers{
      {det.params.layer, &index}};
  parallelFor(candidates.size(), p.threads, [&](std::size_t i) {
    const Clip clip = extractClip(layers, candidates[i]);
    flagged[i] =
        det.evaluateClip(clip, p.decisionBias, p.useFeedback) ? 1 : 0;
  });

  std::vector<ClipWindow> hits;
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (flagged[i]) hits.push_back(candidates[i]);
  res.flaggedBeforeRemoval = hits.size();

  res.reported =
      p.useRemoval ? removeRedundantClips(hits, index, p.removal) : hits;
  res.evalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p) {
  const Layer* l = layout.findLayer(det.params.layer);
  if (l == nullptr || l->empty()) return {};
  const GridIndex index(l->rects(), p.extract.clip.clipSide);
  const std::vector<ClipWindow> candidates =
      extractCandidateClips(index, p.extract);
  return evaluateCandidates(det, index, candidates, p);
}

std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports) {
  std::vector<RankedReport> out;
  out.reserve(reports.size());
  const std::vector<std::pair<LayerId, const GridIndex*>> layers{
      {det.params.layer, &index}};
  for (const ClipWindow& w : reports) {
    const Clip clip = extractClip(layers, w);
    out.push_back(
        {w, det.hotspotProbability(CorePattern::fromCore(clip, det.params.layer))});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedReport& a, const RankedReport& b) {
              return a.probability > b.probability;
            });
  return out;
}

EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p, double overlap) {
  const Layer* l = layout.findLayer(det.params.layer);
  if (l == nullptr || l->empty()) return {};
  const GridIndex index(l->rects(), p.extract.clip.clipSide);
  std::vector<ClipWindow> windows =
      windowScanClips(layout, det.params.layer, p.extract.clip, overlap);
  // Skip geometry-free windows (they can never be flagged) but keep the
  // full-scan structure otherwise.
  std::erase_if(windows, [&index](const ClipWindow& w) {
    return !index.anyOverlap(w.clip);
  });
  return evaluateCandidates(det, index, windows, p);
}

}  // namespace hsd::core
